// Command geodict queries the embedded reference location dictionary.
//
// Usage:
//
//	geodict -stats
//	geodict -iata lhr
//	geodict -icao egll
//	geodict -locode usqas
//	geodict -clli asbnva
//	geodict -place "fort collins"
//	geodict -country uk
//	geodict -address 529bryant
package main

import (
	"flag"
	"fmt"
	"os"

	"hoiho/internal/buildinfo"
	"hoiho/internal/geodict"
)

func main() {
	stats := flag.Bool("stats", false, "print dictionary statistics")
	iata := flag.String("iata", "", "look up a 3-letter IATA code")
	icao := flag.String("icao", "", "look up a 4-letter ICAO code")
	locode := flag.String("locode", "", "look up a 5-letter UN/LOCODE")
	clli := flag.String("clli", "", "look up a 6-letter CLLI prefix")
	place := flag.String("place", "", "look up a city or town name")
	country := flag.String("country", "", "canonicalise a country token")
	address := flag.String("address", "", "look up a facility street address token")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geodict")
		return
	}

	d, err := geodict.Default()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geodict:", err)
		os.Exit(1)
	}

	did := false
	if *stats {
		did = true
		s := d.Stats()
		fmt.Printf("airports=%d icao=%d locodes=%d clli=%d places=%d facilities=%d countries=%d states=%d\n",
			s.Airports, s.ICAOs, s.Locodes, s.CLLIs, s.Places, s.Facilities, s.Countries, s.States)
	}
	if *iata != "" {
		did = true
		for _, a := range d.IATA(*iata) {
			fmt.Printf("iata %s (%s): %s %s\n", a.IATA, a.ICAO, a.Loc.String(), a.Loc.Pos)
		}
	}
	if *icao != "" {
		did = true
		if a := d.ICAO(*icao); a != nil {
			fmt.Printf("icao %s (iata %s): %s %s\n", a.ICAO, a.IATA, a.Loc.String(), a.Loc.Pos)
		}
	}
	if *locode != "" {
		did = true
		if c := d.Locode(*locode); c != nil {
			fmt.Printf("locode %s: %s %s\n", c.Code, c.Loc.String(), c.Loc.Pos)
		}
	}
	if *clli != "" {
		did = true
		if c := d.CLLI(*clli); c != nil {
			fmt.Printf("clli %s: %s %s\n", c.Code, c.Loc.String(), c.Loc.Pos)
		}
	}
	if *place != "" {
		did = true
		for _, loc := range d.Place(*place) {
			fac := ""
			if d.HasFacility(loc.City, loc.Region, loc.Country) {
				fac = " [facility]"
			}
			fmt.Printf("place %s %s pop=%d%s\n", loc.String(), loc.Pos, loc.Population, fac)
		}
	}
	if *country != "" {
		did = true
		if code, ok := d.CountryCode(*country); ok {
			name, _ := d.CountryName(code)
			fmt.Printf("country %s -> %s (%s)\n", *country, code, name)
		}
	}
	if *address != "" {
		did = true
		for _, f := range d.FacilityByAddress(*address) {
			fmt.Printf("facility %s, %s: %s %s\n", f.Name, f.Address, f.Loc.String(), f.Loc.Pos)
		}
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
