// Command geodns serves learned naming conventions over DNS — the
// lookup-side counterpart to geoserve's HTTP API, for tooling that
// already speaks the resolver protocol (dig, monitoring probes, batch
// PTR pipelines). Conventions come from any Source — a compiled-index
// snapshot (-snapshot), a published conventions file (-nc), or a
// corpus to learn from (-corpus) — compiled once into an immutable
// geoloc.Index served behind an atomic pointer, exactly like geoserve.
//
// Usage:
//
//	geodns -snapshot index.snap [-addr 127.0.0.1:5353]
//	geodns -nc conventions.txt [-ttl 300] [-rate 100 -burst 200]
//
// The daemon answers queries whose QNAME is a router hostname:
//
//	TXT  key=value geolocation detail (city, region, country, lat,
//	     long, suffix, hint, type, learned) — the /v1 JSON fields
//	PTR  a synthetic <city>.<region>.<country>.geo.invalid. target
//	LOC  RFC 1876 coordinates, when the location resolves to a point
//	ANY  all of the above
//
// A hostname no convention locates is NXDOMAIN; a located hostname
// asked an unserved type is an empty authoritative NOERROR. Malformed
// frames get FORMERR, non-query opcodes and non-IN classes NOTIMP,
// EDNS versions above 0 BADVERS, and sources past the -rate budget a
// header-only REFUSED — the same taxonomy the HTTP front end spells
// as its /v1 error envelope. UDP and TCP are served on the same
// address; UDP responses honor the EDNS-negotiated payload size
// (never below 512 bytes) and drop tail records with TC set when the
// answer cannot fit, at which point resolvers retry over TCP.
//
// SIGHUP triggers the same validated zero-downtime reload as
// geoserve: re-resolve the boot source, spot-check the replacement
// index, swap the pointer. SIGINT/SIGTERM drain open TCP connections
// and exit cleanly, logging the lifetime query counters.
//
// With -admin-addr, a plain-HTTP sidecar listener serves the
// operational plane that does not belong on the DNS port:
//
//	GET /metrics/prom   Prometheus text exposition — per-outcome query
//	                    counters, limiter refusals and evictions, the
//	                    negotiated EDNS response-size histogram, index
//	                    lookup counters, reload build/swap timings, and
//	                    query-log counters, all rendered through the
//	                    same internal/promexp registry geoserve uses
//	GET /healthz        liveness, suffix count, serving generation,
//	                    build commit and go version
//	GET /debug/pprof/   net/http/pprof profiling
//
// With -qlog <path>, every handled query appends a sampled JSONL
// record (timestamp, request id, qtype, hostname, source, rcode,
// outcome, duration, serving generation) to a size-rotated access
// log; -qlog-sample keeps 1 in N. -version prints build info.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hoiho/internal/buildinfo"
	"hoiho/internal/dnsserve"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/qlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "listen address (UDP and TCP)")
	src := &geoloc.Source{}
	src.RegisterFlags(flag.CommandLine)
	ttl := flag.Uint("ttl", 300, "TTL stamped on answer records (seconds)")
	udpSize := flag.Uint("udp-size", 1232, "largest UDP payload to send (EDNS)")
	rate := flag.Float64("rate", 0, "per-source queries per second (0 disables rate limiting)")
	burst := flag.Float64("burst", 0, "per-source burst headroom (defaults to 2x rate)")
	cacheSize := flag.Int("cache", geoloc.DefaultCacheSize,
		"LRU result-cache entries (negative disables)")
	usableOnly := flag.Bool("usable-only", false, "serve only good/promising conventions")
	adminAddr := flag.String("admin-addr", "",
		"HTTP admin listener for /metrics/prom, /healthz, /debug/pprof/ (empty disables)")
	qlogPath := flag.String("qlog", "", "write a sampled JSONL query log to this file (empty disables)")
	qlogSample := flag.Int("qlog-sample", 1, "keep 1 in N query-log records")
	qlogMaxBytes := flag.Int64("qlog-max-bytes", 64<<20,
		"rotate the query log to <path>.1 before exceeding this size (0 disables rotation)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geodns")
		return
	}
	if _, err := src.Kind(); err != nil {
		fmt.Fprintln(os.Stderr, "geodns:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *burst == 0 {
		*burst = 2 * *rate
	}

	tracer := obs.New(obs.Options{})
	opts := geoloc.Options{UsableOnly: *usableOnly, CacheSize: *cacheSize, Tracer: tracer}
	resolved, err := src.Resolve(opts)
	if err != nil {
		fatal(err)
	}
	log.Printf("geodns: serving %d conventions from %s", resolved.Index.Len(), src.Describe())

	var ql *qlog.Logger
	if *qlogPath != "" {
		ql, err = qlog.New(qlog.Options{
			Path: *qlogPath, Sample: *qlogSample, MaxBytes: *qlogMaxBytes,
		})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := ql.Close(); err != nil {
				log.Printf("geodns: query log: %v", err)
			}
		}()
		log.Printf("geodns: query log at %s (1 in %d)", *qlogPath, max(1, *qlogSample))
	}

	s := dnsserve.New(resolved.Index, dnsserve.Config{
		TTL:       uint32(*ttl),
		UDPSize:   uint16(*udpSize),
		Rate:      *rate,
		Burst:     *burst,
		Tracer:    tracer,
		QueryLog:  ql,
		Source:    src,
		IndexOpts: opts,
	})

	// TCP binds first so a ":0" request resolves to one concrete port
	// shared by both transports — the single address the log line
	// advertises must answer either way.
	ln, err := net.ListenTCP("tcp", mustTCPAddr(*addr))
	if err != nil {
		fatal(err)
	}
	tcpAddr, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		fatal(fmt.Errorf("unexpected listener address %T", ln.Addr()))
	}
	uconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: tcpAddr.IP, Port: tcpAddr.Port, Zone: tcpAddr.Zone})
	if err != nil {
		fatal(err)
	}
	// The admin plane binds before the listening line is logged: a bad
	// -admin-addr fails fast, and anything scraping startup logs sees
	// the admin address before the serving address declares readiness.
	var adminLn net.Listener
	if *adminAddr != "" {
		adminLn, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		log.Printf("geodns: admin plane on http://%s (metrics, healthz, pprof)", adminLn.Addr())
	}
	log.Printf("geodns: listening on %s (udp+tcp)", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP reloads like geoserve's /v1/admin/reload; the loop joins
	// main before exit so a reload in flight at shutdown finishes.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if gen, suffixes, err := s.Reload(); err != nil {
					log.Printf("geodns: SIGHUP reload failed, still serving generation %d: %v",
						s.Generation(), err)
				} else {
					rs := s.ReloadStats()
					log.Printf("geodns: SIGHUP reload: generation %d, %d suffixes, build %dµs, swap %dµs",
						gen, suffixes, rs.LastBuildUS, rs.LastSwapUS)
				}
			}
		}
	}()

	// All serve loops return once ctx is canceled (ServeTCP drains open
	// connections, the admin server shuts down gracefully). Any loop
	// failing on its own cancels the others.
	errc := make(chan error, 3)
	loops := 2
	go func() { errc <- s.ServeUDP(ctx, uconn) }()
	go func() { errc <- s.ServeTCP(ctx, ln) }()
	if adminLn != nil {
		loops++
		go func() { errc <- serveAdmin(ctx, adminLn, newAdmin(s, ql)) }()
	}
	err = <-errc
	stop()
	for i := 1; i < loops; i++ {
		if err2 := <-errc; err == nil {
			err = err2
		}
	}
	<-hupDone
	if cerr := uconn.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := ln.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	log.Printf("geodns: shut down cleanly (%s)", statsLine(s.Stats()))
}

// statsLine renders the lifetime counters sorted by key, so shutdown
// logs are diffable across runs.
func statsLine(stats map[string]int64) string {
	if len(stats) == 0 {
		return "no queries"
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, stats[k]))
	}
	return strings.Join(parts, " ")
}

// serveAdmin runs the admin HTTP server on ln until ctx is cancelled,
// then shuts down gracefully; nil on a clean drain, mirroring
// geoserve's serve loop.
func serveAdmin(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("admin shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func mustTCPAddr(addr string) *net.TCPAddr {
	a, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		fatal(err)
	}
	return a
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geodns:", err)
	os.Exit(1)
}
