// The geodns admin plane: a plain-HTTP sidecar listener (-admin-addr)
// carrying the operational surface that does not belong on the DNS
// port — Prometheus text exposition, a liveness document, and pprof.
// The exposition renders through the shared internal/promexp registry,
// the same layer geoserve serves from, so both daemons speak one
// dialect under one conformance test.
package main

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"hoiho/internal/buildinfo"
	"hoiho/internal/dnsserve"
	"hoiho/internal/promexp"
	"hoiho/internal/qlog"
)

// admin serves /metrics/prom, /healthz, and /debug/pprof/ for a
// running dnsserve.Server.
type admin struct {
	s     *dnsserve.Server
	qlog  *qlog.Logger
	start time.Time
	prom  *promexp.Registry
	mux   *http.ServeMux
}

// newAdmin wires the admin surface. ql may be nil (query log off).
func newAdmin(s *dnsserve.Server, ql *qlog.Logger) *admin {
	a := &admin{s: s, qlog: ql, start: time.Now(), mux: http.NewServeMux()}
	a.prom = promexp.NewRegistry()
	a.prom.Register(a.promQueries, a.promLimiter, a.promEDNS, a.promIndex,
		a.promReload, a.promQlog)
	a.mux.HandleFunc("GET /metrics/prom", a.prom.ServeHTTP)
	a.mux.HandleFunc("GET /healthz", a.handleHealthz)
	a.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	a.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return a
}

func (a *admin) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Read()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	//lint:ignore droppederr a 200 header is already on the wire; an Encode failure means the client hung up
	enc.Encode(map[string]any{
		"status":     "ok",
		"suffixes":   a.s.Suffixes(),
		"generation": a.s.Generation(),
		"uptime_s":   int64(time.Since(a.start).Seconds()),
		"commit":     info.Commit,
		"go_version": info.GoVersion,
	})
}

// promQueries renders the per-query counter taxonomy: total queries,
// per-outcome response counts (the same names the query log and the
// shutdown stats line use), and TCP close errors.
func (a *admin) promQueries(pw *promexp.Writer) {
	st := a.s.Stats()
	pw.Counter("geodns_queries_total", "DNS queries received, UDP and TCP.",
		float64(st["queries"]))
	pw.Family("geodns_responses_total", "Responses per outcome (rcode taxonomy).", "counter")
	for _, k := range promexp.SortedKeys(st) {
		if k == "queries" || k == "close_errors" {
			continue
		}
		pw.Sample("geodns_responses_total", promexp.Labels("outcome", k), float64(st[k]))
	}
	pw.Counter("geodns_tcp_close_errors_total", "TCP connections that failed to close cleanly.",
		float64(st["close_errors"]))
}

// promLimiter renders the rate limiter's refusals and capacity-sweep
// evictions.
func (a *admin) promLimiter(pw *promexp.Writer) {
	pw.Counter("geodns_limiter_refused_total", "Queries refused by the per-source rate limit.",
		float64(a.s.Stats()["refused"]))
	pw.Counter("geodns_limiter_evictions_total", "Limiter buckets dropped by capacity sweeps.",
		float64(a.s.LimiterEvictions()))
}

// promEDNS renders the negotiated UDP response-size histogram.
func (a *admin) promEDNS(pw *promexp.Writer) {
	bounds, counts, sum := a.s.EDNSSizes()
	pw.Histogram("geodns_edns_udp_size_bytes",
		"Negotiated UDP response size limit per query (EDNS).",
		bounds, counts, float64(sum))
}

// promIndex renders the live index's lookup counters, mirroring
// geoserve's families under the geodns prefix.
func (a *admin) promIndex(pw *promexp.Writer) {
	st := a.s.IndexStats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"geodns_index_lookups_total", "Hostname lookups against the index.", st.Lookups},
		{"geodns_index_cache_hits_total", "Lookups answered from the LRU cache.", st.CacheHits},
		{"geodns_index_cache_misses_total", "Lookups that missed the LRU cache.", st.CacheMisses},
		{"geodns_index_matched_total", "Lookups that matched a convention.", st.Matched},
		{"geodns_index_unmatched_total", "Lookups no convention matched.", st.Unmatched},
	} {
		pw.Counter(c.name, c.help, float64(c.v))
	}
	pw.Family("geodns_index_suffix_matches_total", "Matches per convention suffix.", "counter")
	for _, k := range promexp.SortedKeys(st.BySuffix) {
		pw.Sample("geodns_index_suffix_matches_total", promexp.Labels("suffix", k), float64(st.BySuffix[k]))
	}
	pw.Family("geodns_index_class_matches_total", "Matches per convention classification.", "counter")
	for _, k := range promexp.SortedKeys(st.ByClass) {
		pw.Sample("geodns_index_class_matches_total", promexp.Labels("class", k), float64(st.ByClass[k]))
	}
}

// promReload renders the hot-reload lifecycle: serving generation,
// outcome counters, and the latest build/swap latencies.
func (a *admin) promReload(pw *promexp.Writer) {
	rs := a.s.ReloadStats()
	pw.Gauge("geodns_index_generation", "Serving index generation (1 = boot index, +1 per swap).",
		float64(rs.Generation))
	pw.Counter("geodns_reloads_total", "Successful index reloads (SIGHUP).",
		float64(rs.Reloads))
	pw.Counter("geodns_reload_failures_total", "Reload attempts rejected before the swap.",
		float64(rs.Failures))
	pw.Gauge("geodns_reload_build_seconds", "Replacement-index build time of the last successful reload.",
		float64(rs.LastBuildUS)/1e6)
	pw.Gauge("geodns_reload_swap_seconds", "Validate+swap time of the last successful reload.",
		float64(rs.LastSwapUS)/1e6)
}

// promQlog renders the query-log counters; absent families read
// unambiguously as "off".
func (a *admin) promQlog(pw *promexp.Writer) {
	if !a.qlog.Enabled() {
		return
	}
	st := a.qlog.Stats()
	pw.Counter("geodns_qlog_records_total", "Query-log records written.", float64(st.Logged))
	pw.Counter("geodns_qlog_sampled_out_total", "Queries skipped by the sampling rate.", float64(st.Skipped))
	pw.Counter("geodns_qlog_rotations_total", "Query-log file rotations.", float64(st.Rotations))
}
