package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/dnsserve"
	"hoiho/internal/dnswire"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/promexp"
	"hoiho/internal/psl"
	"hoiho/internal/qlog"
)

// testConventions matches the dnsserve and geoserve fixtures: a
// dictionary IATA convention for he.net plus a learned overlay.
const testConventions = `# test conventions
suffix he.net good tp=16 fp=0 fn=0 unk=0 hints=5
regex iata hint ^.+\.core\d+\.([a-z]{3})\d+\.he\.net$
learned iata ash 39.0437 -77.4875 ashburn|va|us tp=4 fp=0 collide=false
`

var testSrc = netip.MustParseAddr("192.0.2.1")

// adminFixture builds a server with the query log on, drives a request
// mix through the handler, and returns its admin plane: 2 NOERROR TXT
// hits, 1 NXDOMAIN, 1 dropped response message.
func adminFixture(t *testing.T) *admin {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{Dict: geodict.MustDefault(), PSL: psl.MustDefault()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ql, err := qlog.New(qlog.Options{W: &buf, Clock: func() time.Time { return time.UnixMicro(1) }})
	if err != nil {
		t.Fatal(err)
	}
	s := dnsserve.New(ix, dnsserve.Config{Tracer: obs.New(obs.Options{}), QueryLog: ql})
	ask := func(name string, response bool) {
		m := &dnswire.Message{
			ID:        0x4242,
			Response:  response,
			Questions: []dnswire.Question{{Name: name, Type: dnswire.TypeTXT, Class: dnswire.ClassINET}},
			EDNS:      &dnswire.EDNS{UDPSize: 1232},
		}
		pkt, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		s.HandlePacket(pkt, testSrc, false)
	}
	ask("xe-1.core9.ash1.he.net.", false)
	ask("et-0.core1.sjc1.he.net.", false)
	ask("nothing.example.com.", false)
	ask("xe-1.core9.ash1.he.net.", true) // inbound response: dropped
	return newAdmin(s, ql)
}

func adminGet(t *testing.T, a *admin, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	a.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// TestAdminPromConformance is the acceptance gate: the geodns admin
// exposition passes the exact same format checker geoserve's does,
// because both daemons render through internal/promexp.
func TestAdminPromConformance(t *testing.T) {
	a := adminFixture(t)
	w := adminGet(t, a, "/metrics/prom")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != promexp.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, promexp.ContentType)
	}
	body := w.Body.String()
	if err := promexp.Conform(w.Body.Bytes()); err != nil {
		t.Errorf("exposition not conformant: %v\n%s", err, body)
	}
	for _, want := range []string{
		"geodns_queries_total 4",
		`geodns_responses_total{outcome="noerror"} 2`,
		`geodns_responses_total{outcome="nxdomain"} 1`,
		`geodns_responses_total{outcome="dropped"} 1`,
		"geodns_limiter_refused_total 0",
		"geodns_limiter_evictions_total 0",
		`geodns_edns_udp_size_bytes_bucket{le="1232"} 3`,
		`geodns_edns_udp_size_bytes_bucket{le="+Inf"} 3`,
		"geodns_edns_udp_size_bytes_sum 3696",
		"geodns_index_lookups_total 3",
		`geodns_index_suffix_matches_total{suffix="he.net"} 2`,
		"geodns_index_generation 1",
		"geodns_reloads_total 0",
		"geodns_qlog_records_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

// TestAdminHealthz: liveness carries the serving generation, suffix
// count, and build identity.
func TestAdminHealthz(t *testing.T) {
	a := adminFixture(t)
	w := adminGet(t, a, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var h struct {
		Status     string `json:"status"`
		Suffixes   int    `json:"suffixes"`
		Generation uint64 `json:"generation"`
		Commit     string `json:"commit"`
		GoVersion  string `json:"go_version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Suffixes != 1 || h.Generation != 1 ||
		h.Commit == "" || h.GoVersion == "" {
		t.Errorf("healthz = %+v", h)
	}
}

// TestAdminPprof: the profiler index is reachable on the admin plane.
func TestAdminPprof(t *testing.T) {
	a := adminFixture(t)
	if w := adminGet(t, a, "/debug/pprof/"); w.Code != http.StatusOK {
		t.Errorf("pprof index status = %d", w.Code)
	}
}
