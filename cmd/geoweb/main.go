// Command geoweb renders learned naming conventions as a static website
// — the per-suffix pages the paper published so operators could verify
// or correct the inferences (§8).
//
// Usage:
//
//	geoweb -nc conventions.txt -out site/ [-title "Hoiho conventions"]
//
// The conventions file comes from `hoiho -write-nc`.
package main

import (
	"flag"
	"fmt"
	"os"

	"hoiho/internal/buildinfo"
	"hoiho/internal/core"
	"hoiho/internal/webgen"
)

func main() {
	ncFile := flag.String("nc", "", "published conventions file (required)")
	out := flag.String("out", "", "output directory (required)")
	title := flag.String("title", "Hoiho naming conventions", "site title")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geoweb")
		return
	}
	if *ncFile == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "geoweb: -nc and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*ncFile)
	if err != nil {
		fatal(err)
	}
	res, err := core.ReadConventions(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	site := webgen.NewSite(*title, res)
	pages, err := site.Generate(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d pages to %s\n", pages, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geoweb:", err)
	os.Exit(1)
}
