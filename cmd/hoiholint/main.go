// Command hoiholint runs hoiho's project-specific static analyzers —
// the machine-enforced determinism and concurrency invariants described
// in DESIGN.md — over a CFG/dataflow analysis engine. It is built only
// on the standard library's go/parser, go/ast, and go/types; there is
// no x/tools dependency, so it runs anywhere the repo builds.
//
// Usage:
//
//	hoiholint [-list] [-checks maporder,unlockpath] [-sarif|-json] [-o file] [packages...]
//
// Package patterns are module-relative: "./..." (the default) analyzes
// everything, "./internal/..." a subtree, "./internal/rex" a single
// package. Test files are exempt by design. Findings print one per
// line as file:line:col: check: message, sorted, and the exit status
// is 1 when there are any — the tool is a blocking CI step.
//
// -sarif writes a SARIF 2.1.0 report (the format GitHub code scanning
// ingests as PR annotations) and -json a plain diagnostic array, each
// to stdout or to the -o file; both are emitted even when there are no
// findings, and the exit status still reports them. The human lines
// are suppressed in machine modes.
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoiho/internal/buildinfo"
	"strings"

	"hoiho/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered checks and exit")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	verbose := flag.Bool("v", false, "report type-check errors encountered while loading")
	sarif := flag.Bool("sarif", false, "write a SARIF 2.1.0 report instead of human-readable lines")
	jsonOut := flag.Bool("json", false, "write a JSON diagnostic array instead of human-readable lines")
	outPath := flag.String("o", "", "write the report to this file (default stdout)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hoiholint")
		return
	}

	if *sarif && *jsonOut {
		fatal(fmt.Errorf("-sarif and -json are mutually exclusive"))
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		analyzers = selectChecks(analyzers, *checks)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "hoiholint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*lint.Package
	for _, pkg := range pkgs {
		for _, pattern := range patterns {
			if lint.Match(pkg.Dir, pattern) {
				selected = append(selected, pkg)
				break
			}
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %s", strings.Join(patterns, " ")))
	}

	diags := lint.Run(selected, analyzers)
	switch {
	case *sarif:
		if err := writeReport(*outPath, func(w io.Writer) error {
			return lint.WriteSARIF(w, diags, analyzers, root)
		}); err != nil {
			fatal(err)
		}
	case *jsonOut:
		if err := writeReport(*outPath, func(w io.Writer) error {
			return lint.WriteJSON(w, diags, root)
		}); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hoiholint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeReport streams a machine report to -o (atomically enough for
// CI: create/truncate then write) or to stdout.
func writeReport(path string, emit func(io.Writer) error) error {
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selectChecks filters the analyzer set by name, failing loudly on an
// unknown name so a typo cannot silently disable a check.
func selectChecks(all []*lint.Analyzer, spec string) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			fatal(fmt.Errorf("unknown check %q (run with -list to see them)", name))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-checks %q selects no checks", spec))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoiholint:", err)
	os.Exit(1)
}
