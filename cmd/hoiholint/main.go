// Command hoiholint runs hoiho's project-specific static analyzers —
// the machine-enforced determinism and concurrency invariants described
// in DESIGN.md. It is built only on the standard library's go/parser,
// go/ast, and go/types; there is no x/tools dependency, so it runs
// anywhere the repo builds.
//
// Usage:
//
//	hoiholint [-list] [-checks maporder,lazyinit] [packages...]
//
// Package patterns are module-relative: "./..." (the default) analyzes
// everything, "./internal/..." a subtree, "./internal/rex" a single
// package. Test files are exempt by design. Findings print one per
// line as file:line:col: check: message, sorted, and the exit status
// is 1 when there are any — the tool is a blocking CI step.
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hoiho/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered checks and exit")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	verbose := flag.Bool("v", false, "report type-check errors encountered while loading")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		analyzers = selectChecks(analyzers, *checks)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "hoiholint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*lint.Package
	for _, pkg := range pkgs {
		for _, pattern := range patterns {
			if lint.Match(pkg.Dir, pattern) {
				selected = append(selected, pkg)
				break
			}
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %s", strings.Join(patterns, " ")))
	}

	diags := lint.Run(selected, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hoiholint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectChecks filters the analyzer set by name, failing loudly on an
// unknown name so a typo cannot silently disable a check.
func selectChecks(all []*lint.Analyzer, spec string) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			fatal(fmt.Errorf("unknown check %q (run with -list to see them)", name))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-checks %q selects no checks", spec))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoiholint:", err)
	os.Exit(1)
}
