// Command geobench records the repo's performance trajectory: it runs
// the registered benchmark suite (pipeline runs, stage-2 tagging,
// serving-index batch lookups, golden-corpus end-to-end) against the
// committed golden corpus, merges the testing.Benchmark timings with
// the observability layer's aggregate counters and rex's compile
// counts, and writes a schema-versioned, env/commit/date-stamped
// BENCH_NNNN.json — the files committed at the repo root from PR 5 on.
//
// Usage:
//
//	geobench [-quick] [-o BENCH_0006.json]            record a run
//	geobench -quick -against BENCH_0005.json          run + regression gate
//	geobench -against a.json -candidate b.json        pure compare, no run
//	geobench -list                                    print the suite
//
// Compare mode computes per-benchmark deltas of the repeat-run medians
// and flags a regression only when a candidate is past -threshold AND
// outside the records' combined median-absolute-deviation noise bound,
// so scheduler jitter cannot fail the gate. Exit status: 0 clean, 1
// regression detected, 2 usage or I/O error.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"

	"hoiho/internal/buildinfo"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hoiho/internal/benchrec"
	"hoiho/internal/core"
	"hoiho/internal/dnsserve"
	"hoiho/internal/dnswire"
	"hoiho/internal/geoloc"
	"hoiho/internal/lint"
	"hoiho/internal/obs"
	"hoiho/internal/rex"
)

func main() {
	testing.Init() // registers -test.* flags so testing.Benchmark works outside `go test`
	// The suite learns from a corpus (default: the committed golden one).
	// The shared Source flags keep geobench's cluster identical to the
	// other commands'; passing -snapshot/-nc instead of -corpus is
	// rejected in newSuite with an explanation.
	src := &geoloc.Source{Corpus: "testdata/golden"}
	src.RegisterFlags(flag.CommandLine)
	out := flag.String("o", "", "write the candidate record to this file")
	against := flag.String("against", "", "baseline BENCH_*.json to compare the candidate against")
	candPath := flag.String("candidate", "", "load the candidate from this file instead of running the suite")
	quick := flag.Bool("quick", false, "reduced benchtime and repeats (the CI bench-record configuration)")
	repeats := flag.Int("repeats", 0, "repeat runs per benchmark (0 = 5, or 3 with -quick)")
	threshold := flag.Float64("threshold", benchrec.DefaultThreshold,
		"relative slowdown that counts as a regression (with the noise bound)")
	runPat := flag.String("run", "", "run only benchmarks matching this regexp")
	list := flag.Bool("list", false, "list the registered suite and exit")
	commitFlag := flag.String("commit", "", "commit id to stamp (default: git rev-parse, best effort)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geobench")
		return
	}
	// -corpus has a default; drop it when the user named another input
	// explicitly so Source's exactly-one contract sees their choice.
	if src.Snapshot != "" || src.NC != "" {
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "corpus" })
		if !explicit {
			src.Corpus = ""
		}
	}

	if *list {
		for _, d := range suiteNames() {
			fmt.Println(d)
		}
		return
	}

	cand, err := candidate(src, *candPath, *out, *quick, *repeats, *runPat, *commitFlag)
	if err != nil {
		fatal(err)
	}
	if *against == "" {
		return
	}
	base, err := benchrec.ReadFile(*against)
	if err != nil {
		fatal(err)
	}
	deltas, regressed := benchrec.Compare(base, cand, *threshold)
	if err := benchrec.FormatDeltas(os.Stdout, deltas); err != nil {
		fatal(err)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "geobench: regression against %s (threshold %.0f%% + noise bound)\n",
			*against, 100**threshold)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "geobench: no regression against %s\n", *against)
}

// candidate produces the record under comparison: loaded from a file in
// pure-compare mode, freshly measured otherwise.
func candidate(src *geoloc.Source, candPath, out string, quick bool, repeats int, runPat, commitFlag string) (*benchrec.File, error) {
	if candPath != "" {
		return benchrec.ReadFile(candPath)
	}
	rec, err := runSuite(src, quick, repeats, runPat, commitFlag)
	if err != nil {
		return nil, err
	}
	if out != "" {
		if err := rec.WriteFile(out); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "geobench: wrote %d benchmarks to %s\n", len(rec.Benchmarks), out)
	}
	return rec, nil
}

// runSuite measures every selected benchmark `repeats` times and stamps
// the record.
func runSuite(src *geoloc.Source, quick bool, repeats int, runPat, commitFlag string) (*benchrec.File, error) {
	benchtime := "1s"
	if repeats == 0 {
		repeats = 5
	}
	if quick {
		benchtime = "100ms"
		if repeats > 3 {
			repeats = 3
		}
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, err
	}
	var filter *regexp.Regexp
	if runPat != "" {
		var err error
		if filter, err = regexp.Compile(runPat); err != nil {
			return nil, fmt.Errorf("bad -run pattern: %w", err)
		}
	}

	s, err := newSuite(src)
	if err != nil {
		return nil, err
	}
	rec := benchrec.NewFile(time.Now().UTC().Format(time.RFC3339), commitID(commitFlag), quick)
	compiled0, probed0 := rex.CompileCounts()
	matchers0, fallbacks0 := rex.MatcherCounts()
	for _, def := range s.defs {
		if filter != nil && !filter.MatchString(def.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "geobench: %s (%d x %s)\n", def.name, repeats, benchtime)
		results := make([]testing.BenchmarkResult, repeats)
		for i := range results {
			results[i] = testing.Benchmark(def.bench)
		}
		rec.Record(def.name, results)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("-run %q selects no benchmarks", runPat)
	}
	compiled1, probed1 := rex.CompileCounts()
	matchers1, fallbacks1 := rex.MatcherCounts()
	rec.Counters = s.tracedCounters()
	rec.Counters["rex_regexes_compiled"] = compiled1 - compiled0
	rec.Counters["rex_probes_compiled"] = probed1 - probed0
	rec.Counters["rex_matchers_compiled"] = matchers1 - matchers0
	rec.Counters["rex_matcher_fallbacks"] = fallbacks1 - fallbacks0
	return rec, nil
}

// suite binds the benchmark definitions to one loaded corpus.
type suite struct {
	in    core.Inputs
	res   *core.Result
	hosts []string
	defs  []benchDef

	// Lazily built, shared by the GeoDNS benchmarks: the handler is
	// stateless (no limiter, no tracer), so repeats reuse it.
	dnsOnce sync.Once
	dnsSrv  *dnsserve.Server
	dnsPkt  []byte
	dnsErr  error
}

// dnsSetup builds (once) a dnsserve handler over the suite's learned
// conventions plus a packed TXT query for a hostname the index
// locates, preferring a located name so the benchmark measures the
// answer path, not NXDOMAIN.
func dnsSetup(s *suite) (*dnsserve.Server, []byte, error) {
	s.dnsOnce.Do(func() {
		ix, err := geoloc.New(s.res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1})
		if err != nil {
			s.dnsErr = err
			return
		}
		host := s.hosts[0]
		for _, h := range s.hosts {
			if _, ok := ix.Lookup(h); ok {
				host = h
				break
			}
		}
		m := &dnswire.Message{
			ID:               1,
			RecursionDesired: true,
			Questions: []dnswire.Question{{
				Name: host + ".", Type: dnswire.TypeTXT, Class: dnswire.ClassINET,
			}},
			EDNS: &dnswire.EDNS{UDPSize: 1232},
		}
		pkt, err := m.Pack()
		if err != nil {
			s.dnsErr = err
			return
		}
		s.dnsSrv = dnsserve.New(ix, dnsserve.Config{})
		s.dnsPkt = pkt
	})
	return s.dnsSrv, s.dnsPkt, s.dnsErr
}

type benchDef struct {
	name  string
	bench func(b *testing.B)
}

func suiteNames() []string {
	return []string{
		"CoreRunSequential    core.Run, Workers=1",
		"CoreRunParallel      core.Run, Workers=GOMAXPROCS",
		"Stage2TagSuffix      stage-2 tagging of the largest suffix group",
		"GeolocBatchColdCompile  geoloc.New + LookupBatch on cloned (uncompiled) conventions",
		"GeolocBatchWarm      compiled index, result cache disabled",
		"GeolocBatchCached    compiled index, warmed LRU",
		"GoldenEndToEnd       LoadInputs + core.Run + WriteConventions",
		"SnapshotLoad         geoloc.Load of an in-memory snapshot (decode + compile)",
		"ReloadSwap           SpotCheck + atomic Live swap between two prebuilt indexes",
		"GeoDNSQuery          one TXT query through the dnsserve handler, no socket",
		"GeoDNSServeUDP       sustained loopback UDP query/response round trips (p99_us)",
		"LintModule           lint.LoadModule + all analyzers self-hosted over this repo",
	}
}

func newSuite(src *geoloc.Source) (*suite, error) {
	kind, err := src.Kind()
	if err != nil {
		return nil, err
	}
	if kind != geoloc.FromCorpus {
		return nil, fmt.Errorf(
			"the benchmark suite measures the learning pipeline and needs -corpus (got -%s)", kind)
	}
	corpus := src.Corpus
	resolved, err := src.Resolve(geoloc.Options{})
	if err != nil {
		return nil, fmt.Errorf("loading corpus (run from the repo root, or pass -corpus): %w", err)
	}
	s := &suite{in: *resolved.Inputs, res: resolved.Result, hosts: corpusHosts(*resolved.Inputs)}
	if len(s.hosts) == 0 {
		return nil, fmt.Errorf("corpus %s has no hostnames to benchmark", corpus)
	}
	in := s.in

	// The snapshot benchmarks measure the serving cold path: one
	// serialized image in memory, decoded + compiled per iteration.
	var snapBuf bytes.Buffer
	if err := geoloc.Save(&snapBuf, s.res, nil); err != nil {
		return nil, err
	}
	snapBytes := snapBuf.Bytes()

	seqCfg := core.DefaultConfig()
	seqCfg.Workers = 1
	parCfg := core.DefaultConfig()
	// CoreRunParallel must drive the worker pool for real: BENCH_0005
	// recorded workers:1 (GOMAXPROCS on a single-CPU bench host), which
	// made it a duplicate of CoreRunSequential. Pin to min(4, GOMAXPROCS)
	// so big hosts do not skew the trajectory, floored at 2 so the pool
	// path (goroutine fan-out, ordered merge) is exercised everywhere.
	parCfg.Workers = min(4, runtime.GOMAXPROCS(0))
	if parCfg.Workers < 2 {
		parCfg.Workers = 2
	}
	suffix := largestSuffix(in)

	s.defs = []benchDef{
		{"CoreRunSequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(s.in, seqCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CoreRunParallel", func(b *testing.B) {
			b.ReportMetric(float64(parCfg.Workers), "workers")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(s.in, parCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Stage2TagSuffix", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.TagSuffix(s.in, seqCfg, suffix); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"GeolocBatchColdCompile", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cold, err := geoloc.New(cloneResult(s.res), geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1})
				if err != nil {
					b.Fatal(err)
				}
				cold.LookupBatch(s.hosts)
			}
		}},
		{"GeolocBatchWarm", func(b *testing.B) {
			ix, err := geoloc.New(s.res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(s.hosts)), "hostnames")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.LookupBatch(s.hosts)
			}
		}},
		{"GeolocBatchCached", func(b *testing.B) {
			ix, err := geoloc.New(s.res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL})
			if err != nil {
				b.Fatal(err)
			}
			ix.LookupBatch(s.hosts) // warm the LRU
			b.ReportMetric(float64(len(s.hosts)), "hostnames")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.LookupBatch(s.hosts)
			}
		}},
		{"GoldenEndToEnd", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in, err := geoloc.LoadInputs(corpus)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(in, core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if err := core.WriteConventions(io.Discard, res); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SnapshotLoad", func(b *testing.B) {
			b.ReportMetric(float64(len(snapBytes)), "snapshot-bytes")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := geoloc.Load(bytes.NewReader(snapBytes),
					geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ReloadSwap", func(b *testing.B) {
			// Two prebuilt indexes alternate through a Live handle: the
			// benchmark times only the validated hot-swap step geoserve
			// performs on SIGHUP — SpotCheck plus one atomic store — not
			// the replacement build, which happens off the request path.
			ixA, err := geoloc.New(s.res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1})
			if err != nil {
				b.Fatal(err)
			}
			ixB, err := geoloc.New(s.res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, CacheSize: -1})
			if err != nil {
				b.Fatal(err)
			}
			live := geoloc.NewLive(ixA)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := ixB
				if i%2 == 1 {
					next = ixA
				}
				if err := geoloc.SpotCheck(live.Index(), next, 16); err != nil {
					b.Fatal(err)
				}
				live.Swap(next)
			}
		}},
		{"GeoDNSQuery", func(b *testing.B) {
			// The socketless DNS serving path: decode, rate-limit check,
			// index lookup, answer build, encode — geodns's per-packet
			// work with the kernel taken out of the measurement.
			srv, pkt, err := dnsSetup(s)
			if err != nil {
				b.Fatal(err)
			}
			src := netip.MustParseAddr("127.0.0.1")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := srv.HandlePacket(pkt, src, false); resp == nil {
					b.Fatal("no response")
				}
			}
		}},
		{"GeoDNSServeUDP", func(b *testing.B) {
			// The full transport: a loopback UDP client driving the real
			// serve loop, one query in flight at a time. p99_us reports
			// the tail of the per-round-trip latencies.
			srv, pkt, err := dnsSetup(s)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- srv.ServeUDP(ctx, conn) }()
			client, err := net.Dial("udp", conn.LocalAddr().String())
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 65536)
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
					b.Fatal(err)
				}
				if _, err := client.Write(pkt); err != nil {
					b.Fatal(err)
				}
				if _, err := client.Read(buf); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			cancel()
			<-done
			if err := client.Close(); err != nil {
				b.Fatal(err)
			}
			if err := conn.Close(); err != nil {
				b.Fatal(err)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				p99 := lat[len(lat)*99/100]
				b.ReportMetric(float64(p99)/1e3, "p99_us")
			}
		}},
		{"LintModule", func(b *testing.B) {
			// Tracks the analysis engine itself: a full type-checked module
			// load plus every registered analyzer (CFG + dataflow included),
			// the same work the CI lint gate does on each push.
			root, err := lint.FindModuleRoot(".")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pkgs, err := lint.LoadModule(root)
				if err != nil {
					b.Fatal(err)
				}
				diags := lint.Run(pkgs, lint.All())
				if i == 0 {
					b.ReportMetric(float64(len(pkgs)), "packages")
					b.ReportMetric(float64(len(diags)), "findings")
				}
			}
		}},
	}
	return s, nil
}

// tracedCounters runs one traced pipeline + index + batch pass and
// flattens the span aggregates into record counters: span_<stage>_count,
// span_<stage>_us, and span_<stage>_<counter> rows.
func (s *suite) tracedCounters() map[string]int64 {
	counters := make(map[string]int64)
	tr := obs.New(obs.Options{})
	cfg := core.DefaultConfig()
	cfg.Tracer = tr
	res, err := core.Run(s.in, cfg)
	if err != nil {
		return counters
	}
	ix, err := geoloc.New(res, geoloc.Options{Dict: s.in.Dict, PSL: s.in.PSL, Tracer: tr})
	if err != nil {
		return counters
	}
	ix.LookupBatch(s.hosts)
	for _, row := range tr.Summary().Stages {
		counters["span_"+row.Name+"_count"] = row.Count
		counters["span_"+row.Name+"_us"] = row.TotalUS
		names := make([]string, 0, len(row.Counters))
		for name := range row.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			counters["span_"+row.Name+"_"+name] = row.Counters[name]
		}
	}
	return counters
}

// cloneResult deep-copies the conventions' regexes so every compile
// cache is cold — the honest cost of standing up an index from a
// freshly parsed conventions file.
func cloneResult(res *core.Result) *core.Result {
	out := *res
	out.NCs = make(map[string]*core.NamingConvention, len(res.NCs))
	for suffix, nc := range res.NCs {
		c := *nc
		c.Regexes = make([]*rex.Regex, len(nc.Regexes))
		for i, r := range nc.Regexes {
			c.Regexes[i] = r.Clone()
		}
		out.NCs[suffix] = &c
	}
	return &out
}

// corpusHosts collects the corpus's hostnames, sorted and capped at the
// index's default cache size so the cached benchmark measures hits.
func corpusHosts(in core.Inputs) []string {
	var hosts []string
	for _, r := range in.Corpus.Routers {
		hosts = append(hosts, r.Hostnames()...)
	}
	sort.Strings(hosts)
	if len(hosts) > geoloc.DefaultCacheSize {
		hosts = hosts[:geoloc.DefaultCacheSize]
	}
	return hosts
}

// largestSuffix picks the suffix group with the most hostnames, ties
// broken by name — the same group every run.
func largestSuffix(in core.Inputs) string {
	var best string
	bestN := -1
	for _, g := range in.Corpus.GroupBySuffix(in.PSL) {
		n := len(g.Hosts)
		if n > bestN || (n == bestN && g.Suffix < best) {
			best, bestN = g.Suffix, n
		}
	}
	return best
}

// commitID returns the override, or a best-effort `git rev-parse
// --short HEAD` ("" outside a checkout).
func commitID(override string) string {
	if override != "" {
		return override
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geobench:", err)
	os.Exit(2)
}
