// Command geosynth generates a synthetic ITDK-shaped corpus with its
// measurement plane and ground truth, writing the five files the other
// tools consume:
//
//	<out>/corpus.nodes   router and interface records
//	<out>/corpus.names   PTR hostname records
//	<out>/corpus.geo     per-router ground-truth locations
//	<out>/corpus.links   router-level adjacencies
//	<out>/rtt.matrix     vantage points and RTT samples
//	<out>/truth.hints    intended meaning of every embedded geohint
//	<out>/asn.map        interconnect address -> customer ASN
//
// Usage:
//
//	geosynth -preset ipv4-aug2020 -out data/aug2020 [-seed N] [-keep-spoofers]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hoiho/internal/buildinfo"
	"path/filepath"
	"sort"

	"hoiho/internal/itdk"
	"hoiho/internal/rtt"
	"hoiho/internal/synth"
)

func main() {
	preset := flag.String("preset", "ipv4-aug2020", "ITDK preset: ipv4-aug2020, ipv4-mar2021, ipv6-nov2020, ipv6-mar2021")
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 0, "override the preset's seed (0 = keep)")
	keepSpoofers := flag.Bool("keep-spoofers", false, "do not filter TCP-spoofing vantage points")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geosynth")
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "geosynth: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := synth.ITDKPreset(*preset)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	w, err := synth.Generate(p)
	if err != nil {
		fatal(err)
	}
	if !*keepSpoofers {
		if spoofers := w.CleanSpoofers(); len(spoofers) > 0 {
			fmt.Printf("filtered TCP samples from spoofing VPs: %v\n", spoofers)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	writeFile(filepath.Join(*out, "corpus.nodes"), func(f *os.File) error {
		return itdk.WriteNodes(f, w.Corpus)
	})
	writeFile(filepath.Join(*out, "corpus.names"), func(f *os.File) error {
		return itdk.WriteNames(f, w.Corpus)
	})
	writeFile(filepath.Join(*out, "corpus.geo"), func(f *os.File) error {
		return itdk.WriteGeo(f, w.Corpus)
	})
	writeFile(filepath.Join(*out, "corpus.links"), func(f *os.File) error {
		return itdk.WriteLinks(f, w.Corpus)
	})
	writeFile(filepath.Join(*out, "rtt.matrix"), func(f *os.File) error {
		return rtt.WriteMatrix(f, w.Matrix)
	})
	writeFile(filepath.Join(*out, "asn.map"), func(f *os.File) error {
		bw := bufio.NewWriter(f)
		addrs := make([]string, 0, len(w.ASNs))
		byAddr := make(map[string]uint32, len(w.ASNs))
		for addr, a := range w.ASNs {
			s := addr.String()
			addrs = append(addrs, s)
			byAddr[s] = a
		}
		sort.Strings(addrs)
		for _, s := range addrs {
			fmt.Fprintf(bw, "asn %s %d\n", s, byAddr[s])
		}
		return bw.Flush()
	})
	writeFile(filepath.Join(*out, "truth.hints"), func(f *os.File) error {
		bw := bufio.NewWriter(f)
		var suffixes []string
		for s := range w.TruthHints {
			suffixes = append(suffixes, s)
		}
		sort.Strings(suffixes)
		for _, s := range suffixes {
			hints := w.TruthHints[s]
			var codes []string
			for c := range hints {
				codes = append(codes, c)
			}
			sort.Strings(codes)
			for _, c := range codes {
				loc := hints[c]
				fmt.Fprintf(bw, "%s %s %s|%s|%s\n", s, c, loc.City, loc.Region, loc.Country)
			}
		}
		return bw.Flush()
	})

	stats := w.Corpus.Stats()
	fmt.Printf("%s: %d routers (%d with hostnames), %d VPs, %d operators -> %s\n",
		w.Name, stats.Routers, stats.WithHostname, len(w.Matrix.VPs()), len(w.Specs), *out)
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geosynth:", err)
	os.Exit(1)
}
