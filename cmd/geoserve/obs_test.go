package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
	"strings"
)

// TestMetricsRoutes exercises the per-route span aggregates: after a
// mix of requests, /metrics must report an "http" row per route pattern
// with accurate request counts, plus the index's lookup-batch spans
// when the server shares the index's tracer.
func TestMetricsRoutes(t *testing.T) {
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{})
	ix, err := geoloc.New(res, geoloc.Options{
		Dict: geodict.MustDefault(), PSL: psl.MustDefault(), Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTracedServer(ix, tr)

	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{"hostnames":["a.core1.lhr1.he.net","b.unknown.org"]}`)
	get(t, s, "/healthz")
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var m struct {
		Routes obs.Summary `json:"routes"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, w.Body)
	}
	byKey := map[string]obs.SummaryRow{}
	for _, row := range m.Routes.Keys {
		byKey[row.Name] = row
	}
	if r := byKey["POST /v1/geolocate"]; r.Count != 2 || r.Counters["requests"] != 2 {
		t.Errorf("geolocate route row = %+v, want 2 requests", r)
	}
	if r := byKey["GET /healthz"]; r.Count != 1 {
		t.Errorf("healthz route row = %+v, want 1 request", r)
	}
	// The /metrics request itself is spanned, but its span ends after
	// the summary snapshot — it appears in later scrapes, not this one.
	if _, ok := byKey["GET /metrics"]; ok {
		t.Error("in-flight /metrics span leaked into its own snapshot")
	}
	byStage := map[string]obs.SummaryRow{}
	for _, row := range m.Routes.Stages {
		byStage[row.Name] = row
	}
	if r := byStage["lookup-batch"]; r.Count != 1 || r.Counters["hostnames"] != 2 {
		t.Errorf("lookup-batch row = %+v, want one 2-hostname batch", r)
	}
	if _, ok := byStage["geoloc-compile"]; !ok {
		t.Error("index build span missing from shared-tracer metrics")
	}
}

// TestPprofEndpoints checks the profiling routes are wired: the index
// page and a heap profile respond 200 on the server's own mux (nothing
// relies on http.DefaultServeMux).
func TestPprofEndpoints(t *testing.T) {
	s := newServer(testIndex(t))
	if w := get(t, s, "/debug/pprof/"); w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d, want 200", w.Code)
	}
	w := get(t, s, "/debug/pprof/heap?debug=1")
	if w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/heap = %d, want 200", w.Code)
	}
	if w := get(t, s, "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline = %d, want 200", w.Code)
	}
}
