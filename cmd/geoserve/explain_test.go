package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hoiho/internal/geoloc"
	"hoiho/internal/qlog"
)

// TestExplainEndpoint: GET and POST produce the same trace, which
// agrees with /v1/geolocate's answer.
func TestExplainEndpoint(t *testing.T) {
	s := newServer(testIndex(t))
	wGet := get(t, s, "/v1/explain?hostname=xe-1.core9.ash1.he.net")
	wPost := postJSON(t, s, "/v1/explain", `{"hostname":"xe-1.core9.ash1.he.net"}`)
	if wGet.Code != http.StatusOK || wPost.Code != http.StatusOK {
		t.Fatalf("status: GET %d, POST %d", wGet.Code, wPost.Code)
	}
	if wGet.Body.String() != wPost.Body.String() {
		t.Errorf("GET and POST explain bodies differ:\n%s\n%s", wGet.Body, wPost.Body)
	}
	var ex geoloc.Explanation
	if err := json.Unmarshal(wGet.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if !ex.Located || !ex.Learned || ex.Location.City != "ashburn" {
		t.Errorf("explanation = %+v", ex)
	}
	if ex.Convention == nil || ex.Convention.Class != "good" || ex.Convention.PPV != 1 {
		t.Errorf("convention evidence = %+v", ex.Convention)
	}
	if len(ex.Steps) == 0 || ex.Steps[len(ex.Steps)-1].Resolution != geoloc.ResolutionLearned {
		t.Errorf("steps = %+v", ex.Steps)
	}
}

// TestExplainDeterministic: repeated calls are byte-identical — the
// serving half of the golden acceptance criterion.
func TestExplainDeterministic(t *testing.T) {
	s := newServer(testIndex(t))
	a := get(t, s, "/v1/explain?hostname=et-0.core1.sjc1.he.net").Body.String()
	b := get(t, s, "/v1/explain?hostname=et-0.core1.sjc1.he.net").Body.String()
	if a != b {
		t.Errorf("explain responses differ across runs:\n%s\n%s", a, b)
	}
}

// TestExplainTextFormat: ?format=text serves the CLI report.
func TestExplainTextFormat(t *testing.T) {
	s := newServer(testIndex(t))
	w := get(t, s, "/v1/explain?format=text&hostname=et-0.core1.sjc1.he.net")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"hostname:   et-0.core1.sjc1.he.net", "suffix:     he.net", "verdict:"} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, w.Body)
		}
	}
}

// TestExplainErrors: missing hostname, malformed body, and unknown
// format all use the /v1 error envelope.
func TestExplainErrors(t *testing.T) {
	s := newServer(testIndex(t))
	cases := []struct {
		name string
		code int
		body string
	}{
		{"missing hostname GET", get(t, s, "/v1/explain").Code,
			get(t, s, "/v1/explain").Body.String()},
		{"missing hostname POST", postJSON(t, s, "/v1/explain", `{}`).Code,
			postJSON(t, s, "/v1/explain", `{}`).Body.String()},
		{"malformed body", postJSON(t, s, "/v1/explain", `{"hostname":`).Code,
			postJSON(t, s, "/v1/explain", `{"hostname":`).Body.String()},
		{"unknown format", get(t, s, "/v1/explain?hostname=a.he.net&format=xml").Code,
			get(t, s, "/v1/explain?hostname=a.he.net&format=xml").Body.String()},
	}
	for _, tc := range cases {
		if tc.code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, tc.code)
		}
		var env apiError
		if err := json.Unmarshal([]byte(tc.body), &env); err != nil || env.Error.Code == "" {
			t.Errorf("%s: response is not the error envelope: %s", tc.name, tc.body)
		}
	}
}

// TestQlogWiring: with a logger attached, each handled request logs one
// sampled record carrying the route, status, and a request id that also
// lands on the request's span.
func TestQlogWiring(t *testing.T) {
	var buf bytes.Buffer
	ql, err := qlog.New(qlog.Options{W: &buf, Clock: func() time.Time { return time.UnixMicro(42) }})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(testIndex(t))
	s.enableQlog(ql)
	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{}`) // 400
	get(t, s, "/healthz")

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("qlog has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var rec struct {
		TS         int64  `json:"ts_us"`
		ID         string `json:"id"`
		Front      string `json:"front"`
		Op         string `json:"op"`
		Hostname   string `json:"hostname"`
		Status     int    `json:"status"`
		Outcome    string `json:"outcome"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TS != 42 || rec.ID != "q1" || rec.Front != "http" ||
		rec.Op != "POST /v1/geolocate" || rec.Hostname != "et-0.core1.sjc1.he.net" ||
		rec.Status != 200 || rec.Outcome != "2xx" || rec.Generation != 1 {
		t.Errorf("first record = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != 400 || rec.Outcome != "4xx" {
		t.Errorf("bad-request record = %+v", rec)
	}

	// The qlog counters surface in the Prometheus exposition.
	prom := get(t, s, "/metrics/prom").Body.String()
	if !strings.Contains(prom, "geoserve_qlog_records_total 3") {
		t.Errorf("exposition missing qlog counters:\n%s", prom)
	}
}
