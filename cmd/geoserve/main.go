// Command geoserve serves learned naming conventions over HTTP — the
// production shape of the paper's published-conventions workflow, where
// operators apply regexes at measurement scale rather than one hostname
// per process. Conventions are compiled once into an immutable
// geoloc.Index (regexes precompiled, learned geohints pre-resolved,
// results LRU-cached) and served concurrently.
//
// Usage:
//
//	geoserve -nc conventions.txt [-addr :8099]
//	geoserve -corpus data/aug2020 [-workers n] [-no-learn]
//
// Endpoints:
//
//	POST /v1/geolocate   {"hostname": "..."} or {"hostnames": [...]}
//	GET  /healthz        liveness and index size
//	GET  /metrics        expvar counters: requests, cache hits/misses,
//	                     matches by suffix and class, latency histogram,
//	                     per-route span aggregates ("routes") with
//	                     status-class counts; ?format=prometheus switches
//	                     to the text exposition format
//	GET  /metrics/prom   Prometheus text exposition (same content)
//	GET  /debug/pprof/   net/http/pprof profiling (heap, profile, trace, ...)
//
// With -runtime-sample <interval>, a background sampler records heap
// size, goroutine count, GC pause and scheduler-latency quantiles into
// a fixed-size ring; the newest sample is exported as gauges in the
// Prometheus rendering.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8099", "listen address")
	ncFile := flag.String("nc", "", "published conventions file to serve")
	dir := flag.String("corpus", "", "learn conventions from this corpus directory instead")
	noLearn := flag.Bool("no-learn", false, "disable stage-4 custom geohint learning (with -corpus)")
	workers := flag.Int("workers", 0, "suffix groups learned concurrently (with -corpus)")
	cacheSize := flag.Int("cache", geoloc.DefaultCacheSize,
		"LRU result-cache entries (negative disables)")
	usableOnly := flag.Bool("usable-only", false, "serve only good/promising conventions")
	runtimeSample := flag.Duration("runtime-sample", 0,
		"sample runtime telemetry (heap, goroutines, GC pauses) at this interval for /metrics (0 disables)")
	flag.Parse()
	if *ncFile == "" && *dir == "" {
		fmt.Fprintln(os.Stderr, "geoserve: one of -nc or -corpus is required")
		flag.Usage()
		os.Exit(2)
	}

	// One aggregate-only tracer spans the daemon's lifetime: learning
	// (with -corpus), the index build, per-batch lookups, and per-route
	// request handling all roll up into the /metrics "routes" section.
	tracer := obs.New(obs.Options{})
	if *runtimeSample > 0 {
		stop := tracer.StartRuntimeSampler(obs.RuntimeOptions{Interval: *runtimeSample})
		defer stop()
	}

	cfg := core.DefaultConfig()
	cfg.LearnHints = !*noLearn
	cfg.Workers = *workers
	cfg.Tracer = tracer
	res, err := geoloc.LoadResult(*ncFile, *dir, cfg)
	if err != nil {
		fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{UsableOnly: *usableOnly, CacheSize: *cacheSize, Tracer: tracer})
	if err != nil {
		fatal(err)
	}
	log.Printf("geoserve: serving %d conventions (%d learned)", ix.Len(), len(res.NCs))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("geoserve: listening on %s", ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, ln, newTracedServer(ix, tracer)); err != nil {
		fatal(err)
	}
	log.Print("geoserve: shut down cleanly")
}

// serve runs an HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get up to
// drainTimeout to complete, and nil is returned on a clean drain.
func serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("geoserve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

const drainTimeout = 10 * time.Second

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geoserve:", err)
	os.Exit(1)
}
