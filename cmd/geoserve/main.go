// Command geoserve serves learned naming conventions over HTTP — the
// production shape of the paper's published-conventions workflow, where
// operators apply regexes at measurement scale rather than one hostname
// per process. Conventions come from any Source — a compiled-index
// snapshot (-snapshot, the fast path), a published conventions file
// (-nc), or a corpus to learn from (-corpus) — and are compiled once
// into an immutable geoloc.Index (regexes precompiled, learned geohints
// pre-resolved, results LRU-cached) served behind an atomic pointer.
//
// Usage:
//
//	geoserve -snapshot index.snap [-addr :8099]
//	geoserve -nc conventions.txt
//	geoserve -corpus data/aug2020 [-workers n] [-no-learn]
//
// Endpoints:
//
//	POST /v1/geolocate      {"hostname": "..."} or {"hostnames": [...]}
//	GET  /v1/explain        ?hostname=... — full decision trace for one
//	POST /v1/explain        hostname: suffix dispatch, each regex tried,
//	                        overlay-vs-dictionary resolution, and the
//	                        convention's PPV evidence; ?format=text renders
//	                        the hoiho -explain report
//	POST /v1/admin/reload   rebuild from the boot source, validate, swap
//	GET  /healthz           liveness, index size, serving generation
//	GET  /metrics           expvar counters: requests, cache hits/misses,
//	                        matches by suffix and class, latency histogram,
//	                        reload lifecycle, per-route span aggregates
//	                        ("routes") with status-class counts;
//	                        ?format=prometheus switches to text exposition
//	GET  /metrics/prom      Prometheus text exposition (same content)
//	GET  /debug/pprof/      net/http/pprof profiling (heap, profile, trace, ...)
//
// Reloads are zero-downtime: SIGHUP or POST /v1/admin/reload re-resolves
// the boot source off the request path, spot-checks the replacement
// index against the live one, and swaps an atomic pointer; in-flight
// requests finish on the old index, which then drains to the garbage
// collector. Error responses across /v1 share one JSON envelope:
// {"error":{"code":...,"message":...}}.
//
// With -runtime-sample <interval>, a background sampler records heap
// size, goroutine count, GC pause and scheduler-latency quantiles into
// a fixed-size ring; the newest sample is exported as gauges in the
// Prometheus rendering.
//
// With -qlog <path>, every handled request appends a sampled JSONL
// record (timestamp, request id, route, status, duration, serving
// generation) to a size-rotated access log; -qlog-sample keeps 1 in N.
// The request id is also stamped on the request's trace span, joining
// access-log lines to span aggregates. -version prints build info.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hoiho/internal/buildinfo"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/qlog"
)

func main() {
	addr := flag.String("addr", ":8099", "listen address")
	src := &geoloc.Source{}
	src.RegisterFlags(flag.CommandLine)
	cacheSize := flag.Int("cache", geoloc.DefaultCacheSize,
		"LRU result-cache entries (negative disables)")
	usableOnly := flag.Bool("usable-only", false, "serve only good/promising conventions")
	runtimeSample := flag.Duration("runtime-sample", 0,
		"sample runtime telemetry (heap, goroutines, GC pauses) at this interval for /metrics (0 disables)")
	qlogPath := flag.String("qlog", "", "write a sampled JSONL query log to this file (empty disables)")
	qlogSample := flag.Int("qlog-sample", 1, "keep 1 in N query-log records")
	qlogMaxBytes := flag.Int64("qlog-max-bytes", 64<<20,
		"rotate the query log to <path>.1 before exceeding this size (0 disables rotation)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geoserve")
		return
	}
	if _, err := src.Kind(); err != nil {
		fmt.Fprintln(os.Stderr, "geoserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	// One aggregate-only tracer spans the daemon's lifetime: learning
	// (with -corpus), the index build, snapshot loads, reloads, per-batch
	// lookups, and per-route request handling all roll up into the
	// /metrics "routes" section.
	tracer := obs.New(obs.Options{})
	if *runtimeSample > 0 {
		stop := tracer.StartRuntimeSampler(obs.RuntimeOptions{Interval: *runtimeSample})
		defer stop()
	}

	opts := geoloc.Options{UsableOnly: *usableOnly, CacheSize: *cacheSize, Tracer: tracer}
	resolved, err := src.Resolve(opts)
	if err != nil {
		fatal(err)
	}
	log.Printf("geoserve: serving %d conventions from %s", resolved.Index.Len(), src.Describe())

	s := newTracedServer(resolved.Index, tracer)
	s.enableReload(src, opts)
	if *qlogPath != "" {
		ql, err := qlog.New(qlog.Options{
			Path: *qlogPath, Sample: *qlogSample, MaxBytes: *qlogMaxBytes,
		})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := ql.Close(); err != nil {
				log.Printf("geoserve: query log: %v", err)
			}
		}()
		s.enableQlog(ql)
		log.Printf("geoserve: query log at %s (1 in %d)", *qlogPath, max(1, *qlogSample))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("geoserve: listening on %s", ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP triggers the same validated hot swap as /v1/admin/reload.
	// The loop exits with the serve context; main joins it below so a
	// reload in flight at shutdown finishes logging.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if st, err := s.reload(); err != nil {
					log.Printf("geoserve: SIGHUP reload failed, still serving generation %d: %v",
						s.live.Generation(), err)
				} else {
					log.Printf("geoserve: SIGHUP reload: generation %d, %d suffixes, build %dµs, swap %dµs",
						st.Generation, st.Suffixes, st.BuildUS, st.SwapUS)
				}
			}
		}
	}()

	err = serve(ctx, ln, s)
	stop() // release the hup loop even when serve failed on its own
	<-hupDone
	if err != nil {
		fatal(err)
	}
	log.Print("geoserve: shut down cleanly")
}

// serve runs an HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get up to
// drainTimeout to complete, and nil is returned on a clean drain.
func serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("geoserve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

const drainTimeout = 10 * time.Second

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geoserve:", err)
	os.Exit(1)
}
