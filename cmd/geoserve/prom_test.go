package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/promexp"
	"hoiho/internal/psl"
)

// promServer builds a traced server with the runtime sampler on and a
// request mix behind it: 3 geolocate hits (one batch), one 400, one
// health check.
func promServer(t *testing.T) *server {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{})
	stop := tr.StartRuntimeSampler(obs.RuntimeOptions{Interval: time.Hour})
	t.Cleanup(stop)
	ix, err := geoloc.New(res, geoloc.Options{
		Dict: geodict.MustDefault(), PSL: psl.MustDefault(), Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTracedServer(ix, tr)
	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{"hostnames":["a.core1.lhr1.he.net","b.unknown.org"]}`)
	postJSON(t, s, "/v1/geolocate", `{}`) // 400
	get(t, s, "/healthz")
	return s
}

// TestPromConformance is the text-exposition format gate, now enforced
// by the shared checker both daemons run: every sample belongs to a
// family announced by HELP and TYPE lines, label sets parse with valid
// escaping, and histogram bucket series are monotone cumulative over
// ascending le bounds ending at +Inf with _count equal to the +Inf
// bucket (promexp.Conform).
func TestPromConformance(t *testing.T) {
	s := promServer(t)
	w := get(t, s, "/metrics/prom")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != promContentType {
		t.Errorf("Content-Type = %q, want %q", ct, promContentType)
	}
	body := w.Body.String()
	if err := promexp.Conform(w.Body.Bytes()); err != nil {
		t.Errorf("exposition not conformant: %v\n%s", err, body)
	}
	if !strings.Contains(body, "_bucket{") {
		t.Error("no histogram buckets in exposition")
	}

	// The request mix must be visible: 5 requests, 1 bad, 3 hostnames,
	// 3 histogram observations, runtime gauges from the live sampler.
	for _, want := range []string{
		"geoserve_requests_total 5",
		"geoserve_bad_requests_total 1",
		"geoserve_hostnames_total 3",
		`geoserve_request_duration_seconds_bucket{le="+Inf"} 3`,
		"geoserve_runtime_heap_bytes",
		"geoserve_runtime_goroutines",
		`geoserve_index_suffix_matches_total{suffix="he.net"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

// leLabel extracts the le label value from a bucket sample line.
func leLabel(t *testing.T, line string) string {
	t.Helper()
	m := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("bucket sample without le label: %q", line)
	}
	return m[1]
}

// TestPromFormatSelection: the query-parameter form serves the same
// exposition; unknown formats are 400s.
func TestPromFormatSelection(t *testing.T) {
	s := promServer(t)
	w := get(t, s, "/metrics?format=prometheus")
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != promContentType {
		t.Errorf("format=prometheus: status %d, type %q", w.Code, w.Header().Get("Content-Type"))
	}
	if !strings.Contains(w.Body.String(), "# TYPE geoserve_requests_total counter") {
		t.Error("format=prometheus body is not the exposition")
	}
	if w := get(t, s, "/metrics?format=xml"); w.Code != http.StatusBadRequest {
		t.Errorf("format=xml: status %d, want 400", w.Code)
	}
	if w := get(t, s, "/metrics?format=json"); w.Code != http.StatusOK ||
		w.Header().Get("Content-Type") != "application/json" {
		t.Errorf("format=json: status %d, type %q", w.Code, w.Header().Get("Content-Type"))
	}
}

// TestLatencyBucketOrder pins the numeric bucket order in both
// renderings — the expvar lexical-sort bug this layer replaced put
// "inf" first and "10ms" before "1ms".
func TestLatencyBucketOrder(t *testing.T) {
	s := promServer(t)

	body := get(t, s, "/metrics").Body.String()
	want := []string{`"le_100us"`, `"le_1ms"`, `"le_10ms"`, `"le_100ms"`, `"inf"`}
	last := -1
	for _, key := range want {
		idx := strings.Index(body, key)
		if idx < 0 {
			t.Fatalf("JSON metrics missing bucket %s:\n%s", key, body)
		}
		if idx < last {
			t.Errorf("JSON bucket %s out of numeric order", key)
		}
		last = idx
	}
	var m struct {
		Latency map[string]int64 `json:"latency_us"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("ordered latency object is not valid JSON: %v", err)
	}
	if len(m.Latency) != len(latencyBuckets)+1 {
		t.Errorf("latency histogram has %d keys, want %d", len(m.Latency), len(latencyBuckets)+1)
	}

	prom := get(t, s, "/metrics/prom").Body.String()
	var les []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, "geoserve_request_duration_seconds_bucket") {
			les = append(les, leLabel(t, line))
		}
	}
	if wantLes := []string{"0.0001", "0.001", "0.01", "0.1", "+Inf"}; fmt.Sprint(les) != fmt.Sprint(wantLes) {
		t.Errorf("prom le order = %v, want %v", les, wantLes)
	}
}

// TestRouteStatusClasses: the status-capturing writer attributes
// response classes per route in both renderings.
func TestRouteStatusClasses(t *testing.T) {
	s := promServer(t) // 2 OK + 1 bad on /v1/geolocate, 1 OK on /healthz

	var m struct {
		Routes obs.Summary `json:"routes"`
	}
	if err := json.Unmarshal(get(t, s, "/metrics").Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]obs.SummaryRow{}
	for _, row := range m.Routes.Keys {
		byKey[row.Name] = row
	}
	geo := byKey["POST /v1/geolocate"]
	if geo.Counters["status_2xx"] != 2 || geo.Counters["status_4xx"] != 1 {
		t.Errorf("geolocate status counters = %v, want 2xx=2 4xx=1", geo.Counters)
	}
	if byKey["GET /healthz"].Counters["status_2xx"] != 1 {
		t.Errorf("healthz status counters = %v", byKey["GET /healthz"].Counters)
	}

	prom := get(t, s, "/metrics/prom").Body.String()
	for _, want := range []string{
		`geoserve_route_status_total{route="POST /v1/geolocate",class="2xx"} 2`,
		`geoserve_route_status_total{route="POST /v1/geolocate",class="4xx"} 1`,
		`geoserve_route_status_total{route="GET /healthz",class="2xx"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q\n%s", want, prom)
		}
	}
}

// TestStatusClass covers the bucketing helper's edges.
func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{
		200: "2xx", 204: "2xx", 301: "3xx", 400: "4xx", 404: "4xx",
		500: "5xx", 599: "5xx", 42: "other", 700: "other",
	} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}
