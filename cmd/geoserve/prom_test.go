package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
)

// promServer builds a traced server with the runtime sampler on and a
// request mix behind it: 3 geolocate hits (one batch), one 400, one
// health check.
func promServer(t *testing.T) *server {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{})
	stop := tr.StartRuntimeSampler(obs.RuntimeOptions{Interval: time.Hour})
	t.Cleanup(stop)
	ix, err := geoloc.New(res, geoloc.Options{
		Dict: geodict.MustDefault(), PSL: psl.MustDefault(), Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTracedServer(ix, tr)
	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{"hostnames":["a.core1.lhr1.he.net","b.unknown.org"]}`)
	postJSON(t, s, "/v1/geolocate", `{}`) // 400
	get(t, s, "/healthz")
	return s
}

// sampleLine matches one exposition sample: metric name, optional
// well-formed label set, and a float value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
		`(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"` + // first label
		`(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*")*\})?` + // more labels
		` ([0-9.eE+-]+|\+Inf|NaN)$`)

// TestPromConformance is the text-exposition format gate: every sample
// belongs to a family announced by HELP and TYPE lines, label sets
// parse with valid escaping, and histogram bucket series are monotone
// cumulative over ascending le bounds ending at +Inf with _count equal
// to the +Inf bucket.
func TestPromConformance(t *testing.T) {
	s := promServer(t)
	w := get(t, s, "/metrics/prom")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != promContentType {
		t.Errorf("Content-Type = %q, want %q", ct, promContentType)
	}
	body := w.Body.String()

	helped := map[string]bool{}
	typed := map[string]string{}
	type bucket struct {
		le  float64
		val float64
	}
	buckets := map[string][]bucket{} // histogram family -> ordered buckets
	counts := map[string]float64{}   // histogram family -> _count value

	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		typ, ok := typed[family]
		if !ok {
			t.Fatalf("line %d: sample %s has no TYPE", ln+1, name)
		}
		val, err := strconv.ParseFloat(m[2], 64)
		if err != nil && m[2] != "+Inf" {
			t.Fatalf("line %d: bad value %q", ln+1, m[2])
		}
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			leStr := leLabel(t, line)
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("line %d: bad le %q", ln+1, leStr)
				}
			}
			buckets[family] = append(buckets[family], bucket{le, val})
		}
		if typ == "histogram" && strings.HasSuffix(name, "_count") {
			counts[family] = val
		}
	}

	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for family, bs := range buckets {
		if len(bs) < 2 {
			t.Fatalf("%s: only %d buckets", family, len(bs))
		}
		if !math.IsInf(bs[len(bs)-1].le, 1) {
			t.Errorf("%s: bucket series does not end at +Inf", family)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				t.Errorf("%s: le bounds not ascending: %v then %v", family, bs[i-1].le, bs[i].le)
			}
			if bs[i].val < bs[i-1].val {
				t.Errorf("%s: cumulative counts decrease: %v then %v", family, bs[i-1].val, bs[i].val)
			}
		}
		if got := counts[family]; got != bs[len(bs)-1].val {
			t.Errorf("%s: _count %v != +Inf bucket %v", family, got, bs[len(bs)-1].val)
		}
	}

	// The request mix must be visible: 5 requests, 1 bad, 3 hostnames,
	// 3 histogram observations, runtime gauges from the live sampler.
	for _, want := range []string{
		"geoserve_requests_total 5",
		"geoserve_bad_requests_total 1",
		"geoserve_hostnames_total 3",
		`geoserve_request_duration_seconds_bucket{le="+Inf"} 3`,
		"geoserve_runtime_heap_bytes",
		"geoserve_runtime_goroutines",
		`geoserve_index_suffix_matches_total{suffix="he.net"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

// leLabel extracts the le label value from a bucket sample line.
func leLabel(t *testing.T, line string) string {
	t.Helper()
	m := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("bucket sample without le label: %q", line)
	}
	return m[1]
}

// TestPromFormatSelection: the query-parameter form serves the same
// exposition; unknown formats are 400s.
func TestPromFormatSelection(t *testing.T) {
	s := promServer(t)
	w := get(t, s, "/metrics?format=prometheus")
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != promContentType {
		t.Errorf("format=prometheus: status %d, type %q", w.Code, w.Header().Get("Content-Type"))
	}
	if !strings.Contains(w.Body.String(), "# TYPE geoserve_requests_total counter") {
		t.Error("format=prometheus body is not the exposition")
	}
	if w := get(t, s, "/metrics?format=xml"); w.Code != http.StatusBadRequest {
		t.Errorf("format=xml: status %d, want 400", w.Code)
	}
	if w := get(t, s, "/metrics?format=json"); w.Code != http.StatusOK ||
		w.Header().Get("Content-Type") != "application/json" {
		t.Errorf("format=json: status %d, type %q", w.Code, w.Header().Get("Content-Type"))
	}
}

// TestLatencyBucketOrder pins the numeric bucket order in both
// renderings — the expvar lexical-sort bug this layer replaced put
// "inf" first and "10ms" before "1ms".
func TestLatencyBucketOrder(t *testing.T) {
	s := promServer(t)

	body := get(t, s, "/metrics").Body.String()
	want := []string{`"le_100us"`, `"le_1ms"`, `"le_10ms"`, `"le_100ms"`, `"inf"`}
	last := -1
	for _, key := range want {
		idx := strings.Index(body, key)
		if idx < 0 {
			t.Fatalf("JSON metrics missing bucket %s:\n%s", key, body)
		}
		if idx < last {
			t.Errorf("JSON bucket %s out of numeric order", key)
		}
		last = idx
	}
	var m struct {
		Latency map[string]int64 `json:"latency_us"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("ordered latency object is not valid JSON: %v", err)
	}
	if len(m.Latency) != len(latencyBuckets)+1 {
		t.Errorf("latency histogram has %d keys, want %d", len(m.Latency), len(latencyBuckets)+1)
	}

	prom := get(t, s, "/metrics/prom").Body.String()
	var les []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, "geoserve_request_duration_seconds_bucket") {
			les = append(les, leLabel(t, line))
		}
	}
	if wantLes := []string{"0.0001", "0.001", "0.01", "0.1", "+Inf"}; fmt.Sprint(les) != fmt.Sprint(wantLes) {
		t.Errorf("prom le order = %v, want %v", les, wantLes)
	}
}

// TestRouteStatusClasses: the status-capturing writer attributes
// response classes per route in both renderings.
func TestRouteStatusClasses(t *testing.T) {
	s := promServer(t) // 2 OK + 1 bad on /v1/geolocate, 1 OK on /healthz

	var m struct {
		Routes obs.Summary `json:"routes"`
	}
	if err := json.Unmarshal(get(t, s, "/metrics").Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]obs.SummaryRow{}
	for _, row := range m.Routes.Keys {
		byKey[row.Name] = row
	}
	geo := byKey["POST /v1/geolocate"]
	if geo.Counters["status_2xx"] != 2 || geo.Counters["status_4xx"] != 1 {
		t.Errorf("geolocate status counters = %v, want 2xx=2 4xx=1", geo.Counters)
	}
	if byKey["GET /healthz"].Counters["status_2xx"] != 1 {
		t.Errorf("healthz status counters = %v", byKey["GET /healthz"].Counters)
	}

	prom := get(t, s, "/metrics/prom").Body.String()
	for _, want := range []string{
		`geoserve_route_status_total{route="POST /v1/geolocate",class="2xx"} 2`,
		`geoserve_route_status_total{route="POST /v1/geolocate",class="4xx"} 1`,
		`geoserve_route_status_total{route="GET /healthz",class="2xx"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q\n%s", want, prom)
		}
	}
}

// TestEscapeLabel covers the three escaped characters.
func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
	if got := escapeLabel("plain"); got != "plain" {
		t.Errorf("escapeLabel(plain) = %q", got)
	}
}

// TestStatusClass covers the bucketing helper's edges.
func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{
		200: "2xx", 204: "2xx", 301: "3xx", 400: "4xx", 404: "4xx",
		500: "5xx", 599: "5xx", 42: "other", 700: "other",
	} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}
