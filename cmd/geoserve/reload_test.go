package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/psl"
)

// testOptions are the index options the reload tests resolve with.
func testOptions() geoloc.Options {
	return geoloc.Options{Dict: geodict.MustDefault(), PSL: psl.MustDefault()}
}

// writeTestSnapshot compiles testConventions into a snapshot file and
// returns a Source that serves (and reloads) from it.
func writeTestSnapshot(t *testing.T, dir string) *geoloc.Source {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := geoloc.Save(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "index.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return &geoloc.Source{Snapshot: path}
}

// TestErrorEnvelope pins the /v1 error contract: every error response —
// handler-raised or mux-raised — is {"error":{"code","message"}} with
// the documented status and code. A change here is an API break.
func TestErrorEnvelope(t *testing.T) {
	s := newServer(testIndex(t))
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"malformed body", "POST", "/v1/geolocate", `{"hostname":`, 400, "malformed_request"},
		{"unknown field", "POST", "/v1/geolocate", `{"host":"a.he.net"}`, 400, "malformed_request"},
		{"neither field", "POST", "/v1/geolocate", `{}`, 400, "invalid_request"},
		{"both fields", "POST", "/v1/geolocate", `{"hostname":"a","hostnames":["b"]}`, 400, "invalid_request"},
		{"wrong method", "GET", "/v1/geolocate", "", 405, "method_not_allowed"},
		{"unknown endpoint", "POST", "/v1/nope", `{}`, 404, "not_found"},
		{"reload not configured", "POST", "/v1/admin/reload", "", 503, "reload_unavailable"},
		{"bad metrics format", "GET", "/metrics?format=xml", "", 400, "unknown_format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.status, w.Body)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			// DisallowUnknownFields pins the envelope to exactly
			// {"error":{"code","message"}} — extra keys fail the test.
			var envelope struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			dec := json.NewDecoder(bytes.NewReader(w.Body.Bytes()))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&envelope); err != nil {
				t.Fatalf("body is not the error envelope: %v\n%s", err, w.Body)
			}
			if envelope.Error.Code != tc.code {
				t.Errorf("code = %q, want %q", envelope.Error.Code, tc.code)
			}
			if envelope.Error.Message == "" {
				t.Error("envelope message is empty")
			}
		})
	}
}

func TestMethodNotAllowedKeepsAllowHeader(t *testing.T) {
	s := newServer(testIndex(t))
	w := get(t, s, "/v1/geolocate")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); !strings.Contains(allow, "POST") {
		t.Errorf("Allow = %q, want POST listed", allow)
	}
}

func TestReloadSwapsGenerations(t *testing.T) {
	dir := t.TempDir()
	src := writeTestSnapshot(t, dir)
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(resolved.Index)
	s.enableReload(src, opts)

	for want := uint64(2); want <= 4; want++ {
		w := postJSON(t, s, "/v1/admin/reload", "")
		if w.Code != http.StatusOK {
			t.Fatalf("reload %d: status = %d, body %s", want, w.Code, w.Body)
		}
		var st reloadStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "ok" || st.Generation != want || st.Suffixes != 1 {
			t.Fatalf("reload status = %+v, want generation %d", st, want)
		}
	}

	// Lookups keep succeeding on the swapped-in index.
	w := postJSON(t, s, "/v1/geolocate", `{"hostname":"xe-1.core9.ash1.he.net"}`)
	var res lookupResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Located || !res.Learned {
		t.Errorf("post-reload lookup = %+v", res)
	}

	// The reload lifecycle lands in /metrics (JSON and Prometheus).
	var m struct {
		Reload reloadMetricsJSON `json:"reload"`
	}
	if err := json.Unmarshal(get(t, s, "/metrics").Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Reload.Generation != 4 || m.Reload.Reloads != 3 || m.Reload.Failures != 0 {
		t.Errorf("reload metrics = %+v", m.Reload)
	}
	prom := get(t, s, "/metrics/prom").Body.String()
	for _, want := range []string{"geoserve_index_generation 4", "geoserve_reloads_total 3"} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestReloadFailureKeepsServing covers the failure path: a reload whose
// source has gone bad reports 500, counts a failure, and leaves the old
// index serving at its old generation.
func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	src := writeTestSnapshot(t, dir)
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(resolved.Index)
	s.enableReload(src, opts)

	// Corrupt the snapshot on disk; the running index is unaffected.
	if err := os.WriteFile(src.Snapshot, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/admin/reload", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt snapshot: status = %d, body %s", w.Code, w.Body)
	}
	var envelope apiError
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "reload_failed" {
		t.Errorf("code = %q, want reload_failed", envelope.Error.Code)
	}
	if gen := s.live.Generation(); gen != 1 {
		t.Errorf("generation = %d after failed reload, want 1", gen)
	}
	if fails := s.reloadMetrics().Failures; fails != 1 {
		t.Errorf("failure counter = %d, want 1", fails)
	}
	w = postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	if w.Code != http.StatusOK {
		t.Errorf("lookup after failed reload: status = %d", w.Code)
	}
}

// TestReloadUnderLoad is the zero-downtime acceptance test: concurrent
// clients hammer /v1/geolocate over a real listener while the index is
// reloaded several times; every request must succeed. CI runs this
// under -race (it is not skipped in -short mode for exactly that
// reason).
func TestReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	src := writeTestSnapshot(t, dir)
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(resolved.Index)
	s.enableReload(src, opts)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 4
	var requests, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := `{"hostname":"xe-1.core9.ash1.he.net"}`
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/geolocate", "application/json",
					strings.NewReader(body))
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				var res lookupResult
				if json.NewDecoder(resp.Body).Decode(&res) != nil ||
					resp.StatusCode != http.StatusOK || !res.Located {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	const swaps = 5
	for i := 0; i < swaps; i++ {
		resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()

	if got := s.live.Generation(); got != swaps+1 {
		t.Errorf("generation = %d, want %d", got, swaps+1)
	}
	if requests.Load() == 0 {
		t.Fatal("no lookup requests completed during the reload storm")
	}
	if n := failures.Load(); n != 0 {
		t.Errorf("%d of %d concurrent lookups failed across %d swaps",
			n, requests.Load(), swaps)
	}
	t.Logf("%d lookups served across %d swaps, 0 failures", requests.Load(), swaps)
}
