package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hoiho/internal/buildinfo"
	"hoiho/internal/core"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/promexp"
	"hoiho/internal/qlog"
)

// maxBatch bounds one POST /v1/geolocate request; larger workloads
// paginate. The bound keeps a single request from pinning the server on
// one client's megabatch.
const maxBatch = 10000

// spotCheckSamples is how many suffixes a reload validates against the
// outgoing index before the swap (see geoloc.SpotCheck).
const spotCheckSamples = 16

// server is the geoserve HTTP API over a hot-swappable compiled lookup
// index. Lookups go through live — an atomic pointer to the current
// Index — so a reload never blocks or fails a request: handlers load
// the pointer once, the swap is a single atomic store, and the old
// index drains as in-flight requests finish (see DESIGN.md §10).
// Request counters live in expvar maps (unpublished, so tests can build
// many servers); the /metrics handler merges them with the index's own
// counters.
type server struct {
	live     *geoloc.Live
	src      *geoloc.Source // reload input; nil disables /v1/admin/reload
	ixOpts   geoloc.Options // options every reload compiles with
	mux      *http.ServeMux
	vars     *expvar.Map // requests, bad_requests, hostnames by endpoint
	latency  *expvar.Map // /v1/geolocate latency histogram buckets
	latSumUS atomic.Int64
	tracer   *obs.Tracer       // aggregate-only: per-route spans for /metrics
	prom     *promexp.Registry // /metrics/prom collectors, shared dialect with geodns
	qlog     *qlog.Logger      // sampled query log; nil (disabled) unless -qlog
	patterns []string          // registered route patterns, in registration order
	start    time.Time

	// Reload bookkeeping: one reload at a time; counters feed /metrics.
	reloadMu       sync.Mutex
	reloads        atomic.Int64
	reloadFailures atomic.Int64
	lastBuildUS    atomic.Int64
	lastSwapUS     atomic.Int64
}

func newServer(ix *geoloc.Index) *server {
	// Aggregate-only tracing: the daemon keeps per-route span rollups
	// forever but never retains raw spans, so memory stays constant no
	// matter how long it serves.
	return newTracedServer(ix, obs.New(obs.Options{}))
}

// newTracedServer wires an externally-built tracer, letting main share
// one tracer between the index (compile + batch spans) and the routes.
func newTracedServer(ix *geoloc.Index, tr *obs.Tracer) *server {
	s := &server{
		live:    geoloc.NewLive(ix),
		mux:     http.NewServeMux(),
		vars:    new(expvar.Map).Init(),
		latency: new(expvar.Map).Init(),
		tracer:  tr,
		start:   time.Now(),
	}
	// Pre-register the histogram so /metrics always shows every bucket.
	for _, b := range latencyBuckets {
		s.latency.Add(b.name, 0)
	}
	s.latency.Add(bucketInf, 0)
	s.prom = s.newPromRegistry()
	s.route("POST /v1/geolocate", s.handleGeolocate)
	s.route("GET /v1/explain", s.handleExplain)
	s.route("POST /v1/explain", s.handleExplain)
	s.route("POST /v1/admin/reload", s.handleReload)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /metrics/prom", s.handleMetricsProm)
	// Profiling endpoints, registered explicitly (the pprof package's
	// side-effect registration only covers http.DefaultServeMux).
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// enableReload arms the hot-reload path: subsequent SIGHUPs and POSTs
// to /v1/admin/reload re-resolve src with opts and swap the result in.
func (s *server) enableReload(src *geoloc.Source, opts geoloc.Options) {
	s.src, s.ixOpts = src, opts
}

// enableQlog attaches the sampled query log. Must be called before the
// server handles traffic; a nil logger leaves logging disabled at zero
// cost (every qlog call on the request path is a nil-receiver no-op).
func (s *server) enableQlog(l *qlog.Logger) {
	s.qlog = l
}

// route registers a handler wrapped in an "http" span keyed by the
// route pattern, feeding the per-route section of /metrics. The span
// also counts the response's status class (2xx/4xx/5xx), captured by a
// statusWriter. Profiling routes stay unwrapped — a 30-second CPU
// profile would dominate every latency aggregate.
func (s *server) route(pattern string, h http.HandlerFunc) {
	s.patterns = append(s.patterns, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sp := s.tracer.Start("http")
		sp.SetKey(pattern)
		sp.Count("requests", 1)
		// With -qlog on, every request gets an id stamped on both its
		// span and its query-log record, so a slow span in a trace joins
		// against the access-log line that caused it. With qlog disabled
		// NextID returns "" and neither side allocates.
		id := s.qlog.NextID()
		if id != "" {
			sp.SetAttr("request_id", id)
		}
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sp.Count("status_"+statusClass(sw.code), 1)
		sp.End()
		s.qlog.Log(qlog.Record{
			Front:      "http",
			Op:         pattern,
			ID:         id,
			Hostname:   sw.hostname,
			Source:     r.RemoteAddr,
			Status:     sw.code,
			Outcome:    statusClass(sw.code),
			DurUS:      int64(time.Since(t0) / time.Microsecond),
			Generation: s.live.Generation(),
		})
	})
}

// statusWriter captures the status code a handler writes (200 when the
// handler never calls WriteHeader explicitly) and carries the looked-up
// hostname back out to the query-log record for single-hostname ops
// (set via logHostname; batch requests leave it empty).
type statusWriter struct {
	http.ResponseWriter
	code     int
	hostname string
}

// logHostname records the hostname a single-lookup handler served, so
// the route middleware's query-log record carries it. A no-op when the
// middleware did not wrap the writer (profiling routes, tests driving
// handlers directly).
func logHostname(w http.ResponseWriter, hostname string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.hostname = hostname
	}
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into "2xx" / "4xx" / ... form.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.vars.Add("requests", 1)
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		// The mux's own 404/405 responses are plain text; under /v1 they
		// are rewritten into the JSON error envelope so every API error
		// has one shape.
		w = &v1ErrorWriter{ResponseWriter: w, srv: s}
	}
	s.mux.ServeHTTP(w, r)
}

// apiError is the uniform /v1 error envelope: every error response is
// {"error":{"code":...,"message":...}} with a stable machine-readable
// code and a human-readable message (documented in README "Errors").
type apiError struct {
	Error apiErrorDetail `json:"error"`
}

type apiErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits the envelope with the given status. 4xx responses
// count as bad_requests in /metrics.
func (s *server) writeError(w http.ResponseWriter, status int, code, msg string) {
	if status >= 400 && status < 500 {
		s.vars.Add("bad_requests", 1)
	}
	writeJSON(w, status, apiError{apiErrorDetail{Code: code, Message: msg}})
}

// v1ErrorWriter rewrites the mux's built-in plain-text error responses
// (unknown /v1 path → 404, wrong method → 405) into the envelope,
// preserving the status code and any Allow header the mux set.
type v1ErrorWriter struct {
	http.ResponseWriter
	srv         *server
	intercepted bool
}

func (w *v1ErrorWriter) WriteHeader(status int) {
	if status != http.StatusNotFound && status != http.StatusMethodNotAllowed {
		w.ResponseWriter.WriteHeader(status)
		return
	}
	w.intercepted = true
	w.srv.vars.Add("bad_requests", 1)
	code, msg := "not_found", "no such endpoint"
	if status == http.StatusMethodNotAllowed {
		code, msg = "method_not_allowed", "method not allowed for this endpoint"
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	w.ResponseWriter.WriteHeader(status)
	enc := json.NewEncoder(w.ResponseWriter)
	enc.SetEscapeHTML(false)
	//lint:ignore droppederr an Encode failure here means the client disconnected; the response is already committed
	enc.Encode(apiError{apiErrorDetail{Code: code, Message: msg}})
}

// Write swallows the original plain-text body once the envelope has
// been written in its place.
func (w *v1ErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// lookupRequest is the /v1/geolocate body: exactly one of hostname
// (single) or hostnames (batch).
type lookupRequest struct {
	Hostname  string   `json:"hostname,omitempty"`
	Hostnames []string `json:"hostnames,omitempty"`
}

// lookupResult is the JSON shape of one geolocated hostname.
type lookupResult struct {
	Hostname string        `json:"hostname"`
	Located  bool          `json:"located"`
	Suffix   string        `json:"suffix,omitempty"`
	Hint     string        `json:"hint,omitempty"`
	Type     string        `json:"type,omitempty"`
	Learned  bool          `json:"learned,omitempty"`
	Location *locationJSON `json:"location,omitempty"`
}

type locationJSON struct {
	City    string  `json:"city"`
	Region  string  `json:"region,omitempty"`
	Country string  `json:"country"`
	Lat     float64 `json:"lat"`
	Long    float64 `json:"long"`
}

type batchResponse struct {
	Results []lookupResult `json:"results"`
}

func toResult(hostname string, g *core.Geolocation) lookupResult {
	if g == nil {
		return lookupResult{Hostname: hostname}
	}
	return lookupResult{
		Hostname: hostname,
		Located:  true,
		Suffix:   g.Suffix,
		Hint:     g.Hint,
		Type:     g.Type.String(),
		Learned:  g.Learned,
		Location: &locationJSON{
			City: g.Loc.City, Region: g.Loc.Region, Country: g.Loc.Country,
			Lat: g.Loc.Pos.Lat, Long: g.Loc.Pos.Long,
		},
	}
}

func (s *server) handleGeolocate(w http.ResponseWriter, r *http.Request) {
	defer s.observeLatency(time.Now())
	// One pointer load per request: the whole request is served by a
	// single index generation even if a swap lands mid-flight.
	ix := s.live.Index()
	var req lookupRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed_request",
			fmt.Sprintf("malformed request: %v", err))
		return
	}
	single := req.Hostname != ""
	batch := len(req.Hostnames) > 0
	switch {
	case single == batch:
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			`exactly one of "hostname" and "hostnames" is required`)
	case batch && len(req.Hostnames) > maxBatch:
		s.writeError(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("batch exceeds %d hostnames", maxBatch))
	case single:
		s.vars.Add("hostnames", 1)
		logHostname(w, req.Hostname)
		g, _ := ix.Lookup(req.Hostname)
		writeJSON(w, http.StatusOK, toResult(req.Hostname, g))
	default:
		s.vars.Add("hostnames", int64(len(req.Hostnames)))
		resp := batchResponse{Results: make([]lookupResult, len(req.Hostnames))}
		for i, g := range ix.LookupBatch(req.Hostnames) {
			resp.Results[i] = toResult(req.Hostnames[i], g)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// explainRequest is the POST /v1/explain body; GET passes ?hostname=.
type explainRequest struct {
	Hostname string `json:"hostname"`
}

// handleExplain serves the full decision trace for one hostname: why
// it resolved where it did (or didn't) — suffix dispatch, every regex
// tried, overlay-vs-dictionary resolution, and the convention's
// published PPV evidence. JSON by default; `?format=text` returns the
// same deterministic report `hoiho -explain` prints.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var hostname string
	if r.Method == http.MethodGet {
		hostname = r.URL.Query().Get("hostname")
	} else {
		var req explainRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "malformed_request",
				fmt.Sprintf("malformed request: %v", err))
			return
		}
		hostname = req.Hostname
	}
	if hostname == "" {
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			`"hostname" is required`)
		return
	}
	logHostname(w, hostname)
	ex := s.live.Index().Explain(hostname)
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, ex)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:ignore droppederr the status line is already on the wire; a write failure means the client hung up
		w.Write([]byte(ex.Text()))
	default:
		s.writeError(w, http.StatusBadRequest, "unknown_format",
			fmt.Sprintf("unknown format %q (want json or text)", f))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Read()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"suffixes":   s.live.Index().Len(),
		"generation": s.live.Generation(),
		"uptime_s":   int64(time.Since(s.start).Seconds()),
		"commit":     info.Commit,
		"go_version": info.GoVersion,
	})
}

// errNoReloadSource marks a reload attempt on a server whose input was
// not configured for reloading (tests, or a future frozen mode).
var errNoReloadSource = errors.New("no reloadable source configured")

// reloadStatus is the success body of /v1/admin/reload and the log line
// payload of a SIGHUP reload. SwapUS covers validation plus the atomic
// swap — the window in which the replacement exists but is not yet
// serving; lookups proceed normally throughout.
type reloadStatus struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Suffixes   int    `json:"suffixes"`
	BuildUS    int64  `json:"build_us"`
	SwapUS     int64  `json:"swap_us"`
}

// reload builds a replacement index from the configured source,
// validates it against the live one, and swaps it in. Concurrent
// reloads serialize on reloadMu; lookups are never blocked — they keep
// hitting the old index until the single atomic store. The old index
// drains naturally: requests that loaded it finish against it, then the
// GC reclaims it.
func (s *server) reload() (reloadStatus, error) {
	if s.src == nil {
		return reloadStatus{}, errNoReloadSource
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sp := s.tracer.Start("reload")
	defer sp.End()
	t0 := time.Now()
	resolved, err := s.src.Resolve(s.ixOpts)
	if err != nil {
		s.reloadFailures.Add(1)
		sp.Count("failures", 1)
		return reloadStatus{}, err
	}
	buildUS := int64(time.Since(t0) / time.Microsecond)
	t1 := time.Now()
	if err := geoloc.SpotCheck(s.live.Index(), resolved.Index, spotCheckSamples); err != nil {
		s.reloadFailures.Add(1)
		sp.Count("failures", 1)
		return reloadStatus{}, err
	}
	_, gen := s.live.Swap(resolved.Index)
	swapUS := int64(time.Since(t1) / time.Microsecond)
	s.reloads.Add(1)
	s.lastBuildUS.Store(buildUS)
	s.lastSwapUS.Store(swapUS)
	sp.Count("suffixes", int64(resolved.Index.Len()))
	return reloadStatus{
		Status: "ok", Generation: gen, Suffixes: resolved.Index.Len(),
		BuildUS: buildUS, SwapUS: swapUS,
	}, nil
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	st, err := s.reload()
	switch {
	case errors.Is(err, errNoReloadSource):
		s.writeError(w, http.StatusServiceUnavailable, "reload_unavailable", err.Error())
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "reload_failed", err.Error())
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// reloadMetricsJSON is the "reload" section of /metrics.
type reloadMetricsJSON struct {
	Generation  uint64 `json:"generation"`
	Reloads     int64  `json:"reloads"`
	Failures    int64  `json:"failures"`
	LastBuildUS int64  `json:"last_build_us"`
	LastSwapUS  int64  `json:"last_swap_us"`
}

func (s *server) reloadMetrics() reloadMetricsJSON {
	return reloadMetricsJSON{
		Generation:  s.live.Generation(),
		Reloads:     s.reloads.Load(),
		Failures:    s.reloadFailures.Load(),
		LastBuildUS: s.lastBuildUS.Load(),
		LastSwapUS:  s.lastSwapUS.Load(),
	}
}

// handleMetrics emits one JSON document: the server's expvar counters,
// the /v1/geolocate latency histogram, the index's lookup counters, the
// reload lifecycle counters, and the per-route span aggregates.
// `?format=prometheus` switches to the text exposition format (also
// served at /metrics/prom).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
	case "prometheus", "prom":
		s.handleMetricsProm(w, r)
		return
	default:
		s.writeError(w, http.StatusBadRequest, "unknown_format",
			fmt.Sprintf("unknown format %q (want json or prometheus)", f))
		return
	}
	index, err := json.Marshal(s.live.Index().Stats())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal_error", err.Error())
		return
	}
	reload, err := json.Marshal(s.reloadMetrics())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal_error", err.Error())
		return
	}
	routes, err := json.Marshal(s.tracer.Summary())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal_error", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore droppederr a write failure means the client disconnected; there is no channel to report it
	fmt.Fprintf(w, `{"server":%s,"latency_us":%s,"index":%s,"reload":%s,"routes":%s}`+"\n",
		s.vars.String(), s.latencyJSON(), index, reload, routes)
}

// latencyJSON renders the latency histogram with buckets in numeric
// order. expvar.Map.String() sorts keys lexically — which would put
// "inf" first and interleave bucket bounds ("le_10ms" < "le_1ms") — so
// the object is assembled by hand from the canonical bucket slice.
func (s *server) latencyJSON() string {
	var b strings.Builder
	b.WriteByte('{')
	for _, bucket := range latencyBuckets {
		fmt.Fprintf(&b, "%q: %d, ", bucket.name, s.bucketValue(bucket.name))
	}
	fmt.Fprintf(&b, "%q: %d}", bucketInf, s.bucketValue(bucketInf))
	return b.String()
}

// bucketValue reads one histogram counter (0 when never incremented).
func (s *server) bucketValue(name string) int64 {
	if v, ok := s.latency.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// latencyBuckets are the upper bounds of the /v1/geolocate latency
// histogram, in ascending order; requests above the last bound land in
// bucketInf. Names carry units so the rendered order reads naturally.
var latencyBuckets = []struct {
	name string
	le   time.Duration
}{
	{"le_100us", 100 * time.Microsecond},
	{"le_1ms", time.Millisecond},
	{"le_10ms", 10 * time.Millisecond},
	{"le_100ms", 100 * time.Millisecond},
}

const bucketInf = "inf"

func (s *server) observeLatency(start time.Time) {
	d := time.Since(start)
	s.latSumUS.Add(int64(d / time.Microsecond))
	for _, b := range latencyBuckets {
		if d <= b.le {
			s.latency.Add(b.name, 1)
			return
		}
	}
	s.latency.Add(bucketInf, 1)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	//lint:ignore droppederr the status line is already on the wire; an Encode failure means the client hung up
	enc.Encode(v)
}
