package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
)

// maxBatch bounds one POST /v1/geolocate request; larger workloads
// paginate. The bound keeps a single request from pinning the server on
// one client's megabatch.
const maxBatch = 10000

// server is the geoserve HTTP API over a compiled lookup index. Request
// counters live in expvar maps (unpublished, so tests can build many
// servers); the /metrics handler merges them with the index's own
// counters.
type server struct {
	ix       *geoloc.Index
	mux      *http.ServeMux
	vars     *expvar.Map // requests, bad_requests, hostnames by endpoint
	latency  *expvar.Map // /v1/geolocate latency histogram buckets
	latSumUS atomic.Int64
	tracer   *obs.Tracer // aggregate-only: per-route spans for /metrics
	patterns []string    // registered route patterns, in registration order
	start    time.Time
}

func newServer(ix *geoloc.Index) *server {
	// Aggregate-only tracing: the daemon keeps per-route span rollups
	// forever but never retains raw spans, so memory stays constant no
	// matter how long it serves.
	return newTracedServer(ix, obs.New(obs.Options{}))
}

// newTracedServer wires an externally-built tracer, letting main share
// one tracer between the index (compile + batch spans) and the routes.
func newTracedServer(ix *geoloc.Index, tr *obs.Tracer) *server {
	s := &server{
		ix:      ix,
		mux:     http.NewServeMux(),
		vars:    new(expvar.Map).Init(),
		latency: new(expvar.Map).Init(),
		tracer:  tr,
		start:   time.Now(),
	}
	// Pre-register the histogram so /metrics always shows every bucket.
	for _, b := range latencyBuckets {
		s.latency.Add(b.name, 0)
	}
	s.latency.Add(bucketInf, 0)
	s.route("POST /v1/geolocate", s.handleGeolocate)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /metrics/prom", s.handleMetricsProm)
	// Profiling endpoints, registered explicitly (the pprof package's
	// side-effect registration only covers http.DefaultServeMux).
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// route registers a handler wrapped in an "http" span keyed by the
// route pattern, feeding the per-route section of /metrics. The span
// also counts the response's status class (2xx/4xx/5xx), captured by a
// statusWriter. Profiling routes stay unwrapped — a 30-second CPU
// profile would dominate every latency aggregate.
func (s *server) route(pattern string, h http.HandlerFunc) {
	s.patterns = append(s.patterns, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sp := s.tracer.Start("http")
		sp.SetKey(pattern)
		sp.Count("requests", 1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sp.Count("status_"+statusClass(sw.code), 1)
		sp.End()
	})
}

// statusWriter captures the status code a handler writes (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into "2xx" / "4xx" / ... form.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.vars.Add("requests", 1)
	s.mux.ServeHTTP(w, r)
}

// lookupRequest is the /v1/geolocate body: exactly one of hostname
// (single) or hostnames (batch).
type lookupRequest struct {
	Hostname  string   `json:"hostname,omitempty"`
	Hostnames []string `json:"hostnames,omitempty"`
}

// lookupResult is the JSON shape of one geolocated hostname.
type lookupResult struct {
	Hostname string        `json:"hostname"`
	Located  bool          `json:"located"`
	Suffix   string        `json:"suffix,omitempty"`
	Hint     string        `json:"hint,omitempty"`
	Type     string        `json:"type,omitempty"`
	Learned  bool          `json:"learned,omitempty"`
	Location *locationJSON `json:"location,omitempty"`
}

type locationJSON struct {
	City    string  `json:"city"`
	Region  string  `json:"region,omitempty"`
	Country string  `json:"country"`
	Lat     float64 `json:"lat"`
	Long    float64 `json:"long"`
}

type batchResponse struct {
	Results []lookupResult `json:"results"`
}

func toResult(hostname string, g *core.Geolocation) lookupResult {
	if g == nil {
		return lookupResult{Hostname: hostname}
	}
	return lookupResult{
		Hostname: hostname,
		Located:  true,
		Suffix:   g.Suffix,
		Hint:     g.Hint,
		Type:     g.Type.String(),
		Learned:  g.Learned,
		Location: &locationJSON{
			City: g.Loc.City, Region: g.Loc.Region, Country: g.Loc.Country,
			Lat: g.Loc.Pos.Lat, Long: g.Loc.Pos.Long,
		},
	}
}

func (s *server) handleGeolocate(w http.ResponseWriter, r *http.Request) {
	defer s.observeLatency(time.Now())
	var req lookupRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Sprintf("malformed request: %v", err))
		return
	}
	single := req.Hostname != ""
	batch := len(req.Hostnames) > 0
	switch {
	case single == batch:
		s.badRequest(w, `exactly one of "hostname" and "hostnames" is required`)
	case batch && len(req.Hostnames) > maxBatch:
		s.badRequest(w, fmt.Sprintf("batch exceeds %d hostnames", maxBatch))
	case single:
		s.vars.Add("hostnames", 1)
		g, _ := s.ix.Lookup(req.Hostname)
		writeJSON(w, http.StatusOK, toResult(req.Hostname, g))
	default:
		s.vars.Add("hostnames", int64(len(req.Hostnames)))
		resp := batchResponse{Results: make([]lookupResult, len(req.Hostnames))}
		for i, g := range s.ix.LookupBatch(req.Hostnames) {
			resp.Results[i] = toResult(req.Hostnames[i], g)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"suffixes": s.ix.Len(),
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// handleMetrics emits one JSON document: the server's expvar counters,
// the /v1/geolocate latency histogram, the index's lookup counters, and
// the per-route span aggregates. `?format=prometheus` switches to the
// text exposition format (also served at /metrics/prom).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
	case "prometheus", "prom":
		s.handleMetricsProm(w, r)
		return
	default:
		s.badRequest(w, fmt.Sprintf("unknown format %q (want json or prometheus)", f))
		return
	}
	index, err := json.Marshal(s.ix.Stats())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	routes, err := json.Marshal(s.tracer.Summary())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"server":%s,"latency_us":%s,"index":%s,"routes":%s}`+"\n",
		s.vars.String(), s.latencyJSON(), index, routes)
}

// latencyJSON renders the latency histogram with buckets in numeric
// order. expvar.Map.String() sorts keys lexically — which would put
// "inf" first and interleave bucket bounds ("le_10ms" < "le_1ms") — so
// the object is assembled by hand from the canonical bucket slice.
func (s *server) latencyJSON() string {
	var b strings.Builder
	b.WriteByte('{')
	for _, bucket := range latencyBuckets {
		fmt.Fprintf(&b, "%q: %d, ", bucket.name, s.bucketValue(bucket.name))
	}
	fmt.Fprintf(&b, "%q: %d}", bucketInf, s.bucketValue(bucketInf))
	return b.String()
}

// bucketValue reads one histogram counter (0 when never incremented).
func (s *server) bucketValue(name string) int64 {
	if v, ok := s.latency.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// latencyBuckets are the upper bounds of the /v1/geolocate latency
// histogram, in ascending order; requests above the last bound land in
// bucketInf. Names carry units so the rendered order reads naturally.
var latencyBuckets = []struct {
	name string
	le   time.Duration
}{
	{"le_100us", 100 * time.Microsecond},
	{"le_1ms", time.Millisecond},
	{"le_10ms", 10 * time.Millisecond},
	{"le_100ms", 100 * time.Millisecond},
}

const bucketInf = "inf"

func (s *server) observeLatency(start time.Time) {
	d := time.Since(start)
	s.latSumUS.Add(int64(d / time.Microsecond))
	for _, b := range latencyBuckets {
		if d <= b.le {
			s.latency.Add(b.name, 1)
			return
		}
	}
	s.latency.Add(bucketInf, 1)
}

func (s *server) badRequest(w http.ResponseWriter, msg string) {
	s.vars.Add("bad_requests", 1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
