// Prometheus text-exposition rendering for geoserve's /metrics.
//
// The JSON document at /metrics is the native shape; the collectors
// here render the same counters — server totals, the /v1/geolocate
// latency histogram (as a proper cumulative `le`-bucketed histogram),
// the index's lookup counters, per-route span aggregates with
// status-class counts, the query-log counters, and the
// runtime-telemetry sampler's latest snapshot — through the shared
// internal/promexp registry, the same layer cmd/geodns serves from, so
// both daemons speak one exposition dialect under one conformance test.
package main

import (
	"expvar"
	"net/http"
	"strings"

	"hoiho/internal/obs"
	"hoiho/internal/promexp"
)

const promContentType = promexp.ContentType

// newPromRegistry assembles the server's exposition in a fixed section
// order: totals, latency, index, reload, routes, qlog, runtime.
func (s *server) newPromRegistry() *promexp.Registry {
	r := promexp.NewRegistry()
	r.Register(s.promTotals, s.promLatency, s.promIndex, s.promReload,
		s.promRoutes, s.promQlog, s.promRuntime)
	return r
}

func (s *server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	s.prom.ServeHTTP(w, r)
}

// promTotals renders the server-wide request counters.
func (s *server) promTotals(pw *promexp.Writer) {
	pw.Counter("geoserve_requests_total", "HTTP requests received, any route.",
		float64(s.varValue("requests")))
	pw.Counter("geoserve_bad_requests_total", "Requests rejected with 400.",
		float64(s.varValue("bad_requests")))
	pw.Counter("geoserve_hostnames_total", "Hostnames submitted to /v1/geolocate.",
		float64(s.varValue("hostnames")))
}

// promLatency renders the request-duration histogram. The expvar
// buckets count per-band observations — exactly the shape
// promexp.Writer.Histogram cumulates from.
func (s *server) promLatency(pw *promexp.Writer) {
	bounds := make([]float64, len(latencyBuckets))
	counts := make([]int64, len(latencyBuckets)+1)
	for i, b := range latencyBuckets {
		bounds[i] = b.le.Seconds()
		counts[i] = s.bucketValue(b.name)
	}
	counts[len(latencyBuckets)] = s.bucketValue(bucketInf)
	pw.Histogram("geoserve_request_duration_seconds", "Latency of /v1/geolocate requests.",
		bounds, counts, float64(s.latSumUS.Load())/1e6)
}

// promIndex renders the lookup index's counters, including the
// per-suffix and per-class match attributions as labeled series. The
// counters belong to the current generation's index: a reload swaps in
// a fresh index whose counters start at zero (generation is exported so
// scrapes can attribute the reset).
func (s *server) promIndex(pw *promexp.Writer) {
	st := s.live.Index().Stats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"geoserve_index_lookups_total", "Hostname lookups against the index.", st.Lookups},
		{"geoserve_index_cache_hits_total", "Lookups answered from the LRU cache.", st.CacheHits},
		{"geoserve_index_cache_misses_total", "Lookups that missed the LRU cache.", st.CacheMisses},
		{"geoserve_index_matched_total", "Lookups that matched a convention.", st.Matched},
		{"geoserve_index_unmatched_total", "Lookups no convention matched.", st.Unmatched},
	} {
		pw.Counter(c.name, c.help, float64(c.v))
	}
	pw.Family("geoserve_index_suffix_matches_total", "Matches per convention suffix.", "counter")
	for _, k := range promexp.SortedKeys(st.BySuffix) {
		pw.Sample("geoserve_index_suffix_matches_total", promexp.Labels("suffix", k), float64(st.BySuffix[k]))
	}
	pw.Family("geoserve_index_class_matches_total", "Matches per convention classification.", "counter")
	for _, k := range promexp.SortedKeys(st.ByClass) {
		pw.Sample("geoserve_index_class_matches_total", promexp.Labels("class", k), float64(st.ByClass[k]))
	}
}

// promReload renders the hot-reload lifecycle: the serving generation,
// reload outcome counters, and the latest build/swap latencies.
func (s *server) promReload(pw *promexp.Writer) {
	rm := s.reloadMetrics()
	pw.Gauge("geoserve_index_generation", "Serving index generation (1 = boot index, +1 per swap).",
		float64(rm.Generation))
	pw.Counter("geoserve_reloads_total", "Successful index reloads (SIGHUP or /v1/admin/reload).",
		float64(rm.Reloads))
	pw.Counter("geoserve_reload_failures_total", "Reload attempts rejected before the swap.",
		float64(rm.Failures))
	pw.Gauge("geoserve_reload_build_seconds", "Replacement-index build time of the last successful reload.",
		float64(rm.LastBuildUS)/1e6)
	pw.Gauge("geoserve_reload_swap_seconds", "Validate+swap time of the last successful reload.",
		float64(rm.LastSwapUS)/1e6)
}

// promRoutes renders the per-route span aggregates: request counts,
// cumulative handler seconds, and status-class counts. Route rows come
// from the shared tracer's per-key table, filtered to the patterns this
// server registered (the tracer may also aggregate suffix keys when
// main shares it with the learning run). Span-name ("stage") rows are
// exported too — lookup-batch, geoloc-compile, http — so index and
// pipeline cost is scrapeable.
func (s *server) promRoutes(pw *promexp.Writer) {
	sum := s.tracer.Summary()
	registered := make(map[string]obs.SummaryRow, len(s.patterns))
	for _, row := range sum.Keys {
		registered[row.Name] = row
	}
	pw.Family("geoserve_route_requests_total", "Requests handled per route.", "counter")
	for _, pattern := range s.patterns {
		if row, ok := registered[pattern]; ok {
			pw.Sample("geoserve_route_requests_total", promexp.Labels("route", pattern), float64(row.Count))
		}
	}
	pw.Family("geoserve_route_seconds_total", "Cumulative handler time per route.", "counter")
	for _, pattern := range s.patterns {
		if row, ok := registered[pattern]; ok {
			pw.Sample("geoserve_route_seconds_total", promexp.Labels("route", pattern), float64(row.TotalUS)/1e6)
		}
	}
	pw.Family("geoserve_route_status_total", "Responses per route and status class.", "counter")
	for _, pattern := range s.patterns {
		row, ok := registered[pattern]
		if !ok {
			continue
		}
		for _, counter := range promexp.SortedKeys(row.Counters) {
			class, ok := strings.CutPrefix(counter, "status_")
			if !ok {
				continue
			}
			pw.Sample("geoserve_route_status_total",
				promexp.Labels("route", pattern, "class", class),
				float64(row.Counters[counter]))
		}
	}
	pw.Family("geoserve_span_count_total", "Finished spans per stage.", "counter")
	for _, row := range sum.Stages {
		pw.Sample("geoserve_span_count_total", promexp.Labels("span", row.Name), float64(row.Count))
	}
	pw.Family("geoserve_span_seconds_total", "Cumulative span time per stage.", "counter")
	for _, row := range sum.Stages {
		pw.Sample("geoserve_span_seconds_total", promexp.Labels("span", row.Name), float64(row.TotalUS)/1e6)
	}
}

// promQlog renders the query-log counters. Nothing is emitted when the
// log is disabled — absent families read unambiguously as "off".
func (s *server) promQlog(pw *promexp.Writer) {
	if !s.qlog.Enabled() {
		return
	}
	st := s.qlog.Stats()
	pw.Counter("geoserve_qlog_records_total", "Query-log records written.", float64(st.Logged))
	pw.Counter("geoserve_qlog_sampled_out_total", "Queries skipped by the sampling rate.", float64(st.Skipped))
	pw.Counter("geoserve_qlog_rotations_total", "Query-log file rotations.", float64(st.Rotations))
}

// promRuntime renders the newest runtime-telemetry sample as gauges.
// Nothing is emitted when the sampler is off (families with no samples
// are omitted entirely, per the format).
func (s *server) promRuntime(pw *promexp.Writer) {
	samples := s.tracer.RuntimeSamples()
	if len(samples) == 0 {
		return
	}
	latest := samples[len(samples)-1]
	pw.Gauge("geoserve_runtime_heap_bytes", "Heap bytes in use at the last runtime sample.",
		float64(latest.HeapBytes))
	pw.Gauge("geoserve_runtime_goroutines", "Goroutines at the last runtime sample.",
		float64(latest.Goroutines))
	pw.Family("geoserve_runtime_gc_pause_seconds", "GC pause quantiles at the last runtime sample.", "gauge")
	pw.Sample("geoserve_runtime_gc_pause_seconds", promexp.Labels("quantile", "0.5"), latest.GCPauseP50US/1e6)
	pw.Sample("geoserve_runtime_gc_pause_seconds", promexp.Labels("quantile", "0.99"), latest.GCPauseP99US/1e6)
	pw.Family("geoserve_runtime_sched_latency_seconds", "Scheduler latency quantiles at the last runtime sample.", "gauge")
	pw.Sample("geoserve_runtime_sched_latency_seconds", promexp.Labels("quantile", "0.5"), latest.SchedLatP50US/1e6)
	pw.Sample("geoserve_runtime_sched_latency_seconds", promexp.Labels("quantile", "0.99"), latest.SchedLatP99US/1e6)
}

// varValue reads one expvar counter from the server map.
func (s *server) varValue(name string) int64 {
	if v, ok := s.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}
