// Prometheus text-exposition rendering for geoserve's /metrics.
//
// The JSON document at /metrics is the native shape; this file renders
// the same counters — server totals, the /v1/geolocate latency
// histogram (as a proper cumulative `le`-bucketed histogram), the
// index's lookup counters, per-route span aggregates with status-class
// counts, and the runtime-telemetry sampler's latest snapshot — in the
// Prometheus text format (version 0.0.4): `# HELP`/`# TYPE` headers,
// escaped label values, and monotone bucket series ending at +Inf.
package main

import (
	"bufio"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"hoiho/internal/obs"
)

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	pw := &promWriter{w: bufio.NewWriter(w)}

	pw.family("geoserve_requests_total", "HTTP requests received, any route.", "counter")
	pw.sample("geoserve_requests_total", nil, float64(s.varValue("requests")))
	pw.family("geoserve_bad_requests_total", "Requests rejected with 400.", "counter")
	pw.sample("geoserve_bad_requests_total", nil, float64(s.varValue("bad_requests")))
	pw.family("geoserve_hostnames_total", "Hostnames submitted to /v1/geolocate.", "counter")
	pw.sample("geoserve_hostnames_total", nil, float64(s.varValue("hostnames")))

	s.promLatency(pw)
	s.promIndex(pw)
	s.promReload(pw)
	s.promRoutes(pw)
	s.promRuntime(pw)

	// bufio latches the first write error and surfaces it here; a Flush
	// failure means the scraper hung up mid-response.
	//lint:ignore droppederr client gone mid-scrape; a failed exposition write has no one left to tell
	pw.w.Flush()
}

// promLatency renders the request-duration histogram. The expvar
// buckets count per-band observations; Prometheus buckets are
// cumulative, so the running sum is emitted, ending at +Inf == _count.
func (s *server) promLatency(pw *promWriter) {
	const name = "geoserve_request_duration_seconds"
	pw.family(name, "Latency of /v1/geolocate requests.", "histogram")
	var cum int64
	for _, b := range latencyBuckets {
		cum += s.bucketValue(b.name)
		le := strconv.FormatFloat(b.le.Seconds(), 'g', -1, 64)
		pw.sample(name+"_bucket", labels("le", le), float64(cum))
	}
	cum += s.bucketValue(bucketInf)
	pw.sample(name+"_bucket", labels("le", "+Inf"), float64(cum))
	pw.sample(name+"_sum", nil, float64(s.latSumUS.Load())/1e6)
	pw.sample(name+"_count", nil, float64(cum))
}

// promIndex renders the lookup index's counters, including the
// per-suffix and per-class match attributions as labeled series. The
// counters belong to the current generation's index: a reload swaps in
// a fresh index whose counters start at zero (generation is exported so
// scrapes can attribute the reset).
func (s *server) promIndex(pw *promWriter) {
	st := s.live.Index().Stats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"geoserve_index_lookups_total", "Hostname lookups against the index.", st.Lookups},
		{"geoserve_index_cache_hits_total", "Lookups answered from the LRU cache.", st.CacheHits},
		{"geoserve_index_cache_misses_total", "Lookups that missed the LRU cache.", st.CacheMisses},
		{"geoserve_index_matched_total", "Lookups that matched a convention.", st.Matched},
		{"geoserve_index_unmatched_total", "Lookups no convention matched.", st.Unmatched},
	} {
		pw.family(c.name, c.help, "counter")
		pw.sample(c.name, nil, float64(c.v))
	}
	pw.family("geoserve_index_suffix_matches_total", "Matches per convention suffix.", "counter")
	for _, k := range sortedKeys(st.BySuffix) {
		pw.sample("geoserve_index_suffix_matches_total", labels("suffix", k), float64(st.BySuffix[k]))
	}
	pw.family("geoserve_index_class_matches_total", "Matches per convention classification.", "counter")
	for _, k := range sortedKeys(st.ByClass) {
		pw.sample("geoserve_index_class_matches_total", labels("class", k), float64(st.ByClass[k]))
	}
}

// promReload renders the hot-reload lifecycle: the serving generation,
// reload outcome counters, and the latest build/swap latencies.
func (s *server) promReload(pw *promWriter) {
	rm := s.reloadMetrics()
	pw.family("geoserve_index_generation", "Serving index generation (1 = boot index, +1 per swap).", "gauge")
	pw.sample("geoserve_index_generation", nil, float64(rm.Generation))
	pw.family("geoserve_reloads_total", "Successful index reloads (SIGHUP or /v1/admin/reload).", "counter")
	pw.sample("geoserve_reloads_total", nil, float64(rm.Reloads))
	pw.family("geoserve_reload_failures_total", "Reload attempts rejected before the swap.", "counter")
	pw.sample("geoserve_reload_failures_total", nil, float64(rm.Failures))
	pw.family("geoserve_reload_build_seconds", "Replacement-index build time of the last successful reload.", "gauge")
	pw.sample("geoserve_reload_build_seconds", nil, float64(rm.LastBuildUS)/1e6)
	pw.family("geoserve_reload_swap_seconds", "Validate+swap time of the last successful reload.", "gauge")
	pw.sample("geoserve_reload_swap_seconds", nil, float64(rm.LastSwapUS)/1e6)
}

// promRoutes renders the per-route span aggregates: request counts,
// cumulative handler seconds, and status-class counts. Route rows come
// from the shared tracer's per-key table, filtered to the patterns this
// server registered (the tracer may also aggregate suffix keys when
// main shares it with the learning run). Span-name ("stage") rows are
// exported too — lookup-batch, geoloc-compile, http — so index and
// pipeline cost is scrapeable.
func (s *server) promRoutes(pw *promWriter) {
	sum := s.tracer.Summary()
	registered := make(map[string]obs.SummaryRow, len(s.patterns))
	for _, row := range sum.Keys {
		registered[row.Name] = row
	}
	pw.family("geoserve_route_requests_total", "Requests handled per route.", "counter")
	for _, pattern := range s.patterns {
		if row, ok := registered[pattern]; ok {
			pw.sample("geoserve_route_requests_total", labels("route", pattern), float64(row.Count))
		}
	}
	pw.family("geoserve_route_seconds_total", "Cumulative handler time per route.", "counter")
	for _, pattern := range s.patterns {
		if row, ok := registered[pattern]; ok {
			pw.sample("geoserve_route_seconds_total", labels("route", pattern), float64(row.TotalUS)/1e6)
		}
	}
	pw.family("geoserve_route_status_total", "Responses per route and status class.", "counter")
	for _, pattern := range s.patterns {
		row, ok := registered[pattern]
		if !ok {
			continue
		}
		for _, counter := range sortedKeys(row.Counters) {
			class, ok := strings.CutPrefix(counter, "status_")
			if !ok {
				continue
			}
			pw.sample("geoserve_route_status_total",
				append(labels("route", pattern), [2]string{"class", class}),
				float64(row.Counters[counter]))
		}
	}
	pw.family("geoserve_span_count_total", "Finished spans per stage.", "counter")
	for _, row := range sum.Stages {
		pw.sample("geoserve_span_count_total", labels("span", row.Name), float64(row.Count))
	}
	pw.family("geoserve_span_seconds_total", "Cumulative span time per stage.", "counter")
	for _, row := range sum.Stages {
		pw.sample("geoserve_span_seconds_total", labels("span", row.Name), float64(row.TotalUS)/1e6)
	}
}

// promRuntime renders the newest runtime-telemetry sample as gauges.
// Nothing is emitted when the sampler is off (families with no samples
// are omitted entirely, per the format).
func (s *server) promRuntime(pw *promWriter) {
	samples := s.tracer.RuntimeSamples()
	if len(samples) == 0 {
		return
	}
	latest := samples[len(samples)-1]
	pw.family("geoserve_runtime_heap_bytes", "Heap bytes in use at the last runtime sample.", "gauge")
	pw.sample("geoserve_runtime_heap_bytes", nil, float64(latest.HeapBytes))
	pw.family("geoserve_runtime_goroutines", "Goroutines at the last runtime sample.", "gauge")
	pw.sample("geoserve_runtime_goroutines", nil, float64(latest.Goroutines))
	pw.family("geoserve_runtime_gc_pause_seconds", "GC pause quantiles at the last runtime sample.", "gauge")
	pw.sample("geoserve_runtime_gc_pause_seconds", labels("quantile", "0.5"), latest.GCPauseP50US/1e6)
	pw.sample("geoserve_runtime_gc_pause_seconds", labels("quantile", "0.99"), latest.GCPauseP99US/1e6)
	pw.family("geoserve_runtime_sched_latency_seconds", "Scheduler latency quantiles at the last runtime sample.", "gauge")
	pw.sample("geoserve_runtime_sched_latency_seconds", labels("quantile", "0.5"), latest.SchedLatP50US/1e6)
	pw.sample("geoserve_runtime_sched_latency_seconds", labels("quantile", "0.99"), latest.SchedLatP99US/1e6)
}

// varValue reads one expvar counter from the server map.
func (s *server) varValue(name string) int64 {
	if v, ok := s.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// promWriter emits exposition-format lines.
type promWriter struct {
	w *bufio.Writer
}

// family writes the HELP/TYPE header for a metric family.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// sample writes one sample line with optional labels.
func (p *promWriter) sample(name string, lbls [][2]string, value float64) {
	p.w.WriteString(name)
	if len(lbls) > 0 {
		p.w.WriteByte('{')
		for i, l := range lbls {
			if i > 0 {
				p.w.WriteByte(',')
			}
			fmt.Fprintf(p.w, `%s="%s"`, l[0], escapeLabel(l[1]))
		}
		p.w.WriteByte('}')
	}
	fmt.Fprintf(p.w, " %s\n", strconv.FormatFloat(value, 'g', -1, 64))
}

// labels builds a single-label slice (append more pairs as needed).
func labels(k, v string) [][2]string {
	return [][2]string{{k, v}}
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sortedKeys returns m's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
