package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/psl"
)

// testConventions is a published conventions file with a dictionary
// hint (IATA) and a stage-4 learned overlay ("ash" -> Ashburn).
const testConventions = `# test conventions
suffix he.net good tp=16 fp=0 fn=0 unk=0 hints=5
regex iata hint ^.+\.core\d+\.([a-z]{3})\d+\.he\.net$
learned iata ash 39.0437 -77.4875 ashburn|va|us tp=4 fp=0 collide=false
`

func testIndex(t *testing.T) *geoloc.Index {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{
		Dict: geodict.MustDefault(), PSL: psl.MustDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestGeolocateSingle(t *testing.T) {
	s := newServer(testIndex(t))
	w := postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0-0-0.core3.sjc1.he.net"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var res lookupResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Located || res.Location == nil || res.Location.City != "san jose" {
		t.Errorf("result = %+v", res)
	}
	if res.Suffix != "he.net" || res.Hint != "sjc" || res.Type != "iata" || res.Learned {
		t.Errorf("metadata = %+v", res)
	}
}

func TestGeolocateLearnedOverlay(t *testing.T) {
	s := newServer(testIndex(t))
	w := postJSON(t, s, "/v1/geolocate", `{"hostname":"xe-1.core9.ash1.he.net"}`)
	var res lookupResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Located || !res.Learned || res.Location.City != "ashburn" {
		t.Errorf("learned overlay result = %+v", res)
	}
}

func TestGeolocateBatch(t *testing.T) {
	s := newServer(testIndex(t))
	w := postJSON(t, s, "/v1/geolocate",
		`{"hostnames":["et-0.core1.lhr2.he.net","no-match.he.net","x.unknown-suffix.org"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var res batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(res.Results))
	}
	if !res.Results[0].Located || res.Results[0].Location.City != "london" {
		t.Errorf("results[0] = %+v", res.Results[0])
	}
	if res.Results[1].Located || res.Results[2].Located {
		t.Errorf("misses reported as located: %+v", res.Results[1:])
	}
	if res.Results[1].Hostname != "no-match.he.net" {
		t.Errorf("batch order broken: %+v", res.Results[1])
	}
}

func TestGeolocateBadRequests(t *testing.T) {
	s := newServer(testIndex(t))
	for name, body := range map[string]string{
		"empty":      `{}`,
		"both":       `{"hostname":"a.he.net","hostnames":["b.he.net"]}`,
		"malformed":  `{"hostname":`,
		"unknownkey": `{"host":"a.he.net"}`,
	} {
		if w := postJSON(t, s, "/v1/geolocate", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, w.Code)
		}
	}
	over := make([]string, maxBatch+1)
	for i := range over {
		over[i] = fmt.Sprintf("h%d.he.net", i)
	}
	body, _ := json.Marshal(lookupRequest{Hostnames: over})
	if w := postJSON(t, s, "/v1/geolocate", string(body)); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", w.Code)
	}
}

func TestGeolocateMethodNotAllowed(t *testing.T) {
	s := newServer(testIndex(t))
	if w := get(t, s, "/v1/geolocate"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/geolocate = %d, want 405", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := newServer(testIndex(t))
	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var res struct {
		Status   string `json:"status"`
		Suffixes int    `json:"suffixes"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || res.Suffixes != 1 {
		t.Errorf("healthz = %+v", res)
	}
}

func TestMetricsCounters(t *testing.T) {
	s := newServer(testIndex(t))
	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{"hostname":"et-0.core1.sjc1.he.net"}`)
	postJSON(t, s, "/v1/geolocate", `{"hostnames":["a.core1.lhr1.he.net","b.unknown.org"]}`)
	postJSON(t, s, "/v1/geolocate", `{}`)
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var m struct {
		Server struct {
			Requests    int64 `json:"requests"`
			BadRequests int64 `json:"bad_requests"`
			Hostnames   int64 `json:"hostnames"`
		} `json:"server"`
		Latency map[string]int64 `json:"latency_us"`
		Index   geoloc.Stats     `json:"index"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, w.Body)
	}
	if m.Server.Requests != 5 || m.Server.BadRequests != 1 || m.Server.Hostnames != 4 {
		t.Errorf("server counters = %+v", m.Server)
	}
	if m.Index.Lookups != 4 || m.Index.Matched != 3 || m.Index.CacheHits != 1 {
		t.Errorf("index counters = %+v", m.Index)
	}
	if m.Index.BySuffix["he.net"] != 3 || m.Index.ByClass["good"] != 3 {
		t.Errorf("match attribution = %+v", m.Index)
	}
	var observations int64
	for _, n := range m.Latency {
		observations += n
	}
	if observations != 4 {
		t.Errorf("latency histogram observed %d requests, want 4", observations)
	}
}

// TestServeGracefulShutdown drives the same serve() main runs: requests
// succeed while the context lives, and cancellation drains cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(testIndex(t))
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, s) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down within 5s of cancellation")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
