// Command geoeval regenerates the paper's tables and figures over
// synthetic ITDK worlds (see DESIGN.md for the experiment index).
//
// Usage:
//
//	geoeval -experiment all              # everything
//	geoeval -experiment table3           # one table
//	geoeval -experiment fig9 -scale 0.5  # smaller worlds
//	geoeval -experiment all -workers 8   # parallel per-suffix learning
//
// Experiments: table1 table2 table3 table4 table5 table6 fig5 fig9
// fig10 fig11 ablation all.
package main

import (
	"flag"
	"fmt"
	"os"

	"hoiho/internal/buildinfo"
	"hoiho/internal/core"
	"hoiho/internal/eval"
	"hoiho/internal/geoloc"
	"hoiho/internal/synth"
)

func main() {
	experiment := flag.String("experiment", "all", "which table/figure to regenerate")
	scale := flag.Float64("scale", 1.0, "world size multiplier")
	// geoeval generates its own worlds, so it shares only the learning
	// half of the Source flag cluster (-workers, -no-learn).
	src := &geoloc.Source{}
	src.RegisterLearnFlags(flag.CommandLine)
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geoeval")
		return
	}
	cfg := src.CoreConfig(nil)

	runAll := *experiment == "all"
	need4 := runAll
	for _, e := range []string{"table1", "table2", "table3", "table5", "fig10", "fig11"} {
		if *experiment == e {
			need4 = true
		}
	}

	var worlds []*synth.World
	var results []*core.Result
	var err error
	if need4 {
		var s *eval.Suite
		s, err = eval.Run(eval.PresetNames, *scale, cfg)
		if err != nil {
			fatal(err)
		}
		worlds, results = s.Worlds, s.Results
	} else {
		var w *synth.World
		var res *core.Result
		w, res, err = eval.RunOne("ipv4-aug2020", *scale, cfg)
		if err != nil {
			fatal(err)
		}
		worlds = []*synth.World{w}
		results = []*core.Result{res}
	}
	w0, res0 := worlds[0], results[0]

	show := func(name string) bool { return runAll || *experiment == name }

	if show("table1") {
		header("Table 1: ITDK summaries")
		fmt.Print(eval.ComputeTable1(worlds).Format())
	}
	if show("table2") {
		header("Table 2: coverage of usable NCs")
		fmt.Print(eval.ComputeTable2(worlds, results).Format())
	}
	if show("table3") {
		header("Table 3: classification of NCs")
		fmt.Print(eval.ComputeTable3(worlds, results).Format())
	}
	if show("table4") {
		header("Table 4: geohint types and annotations (" + w0.Name + ")")
		fmt.Print(eval.ComputeTable4(res0).Format())
	}
	if show("table5") {
		header("Table 5: most frequently learned 3-letter geohints (all ITDKs)")
		fmt.Print(eval.ComputeTable5Multi(results, w0.Dict, 1).Format())
	}
	if show("table6") {
		header("Table 6: validation of learned geohints")
		fmt.Print(eval.ComputeTable6(w0, res0).Format())
	}
	if show("fig5") {
		header("Figure 5: ping vs traceroute RTTs")
		fmt.Print(eval.ComputeFig5(w0).Format())
	}
	if show("fig9") {
		header("Figure 9: method comparison (40 km criterion)")
		fmt.Print(eval.ComputeFig9(w0, res0).Format())
	}
	if show("fig10") {
		header("Figure 10: learned geohint properties (all ITDKs)")
		fmt.Print(eval.ComputeFig10Multi(worlds, results).Format())
	}
	if show("fig11") {
		header("Figure 11: learned hint correctness vs closest-VP RTT (all ITDKs)")
		fmt.Print(eval.ComputeFig11Multi(worlds, results).Format())
	}
	if show("ablation") {
		header("Ablation (§6.1): learned geohints on/off")
		noLearn, err := eval.RunWorldNoLearn(w0)
		if err != nil {
			fatal(err)
		}
		fmt.Print(eval.ComputeAblation(w0, res0, noLearn).Format())
	}
}

func header(s string) {
	fmt.Printf("\n== %s ==\n", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geoeval:", err)
	os.Exit(1)
}
