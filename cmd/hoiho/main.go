// Command hoiho learns naming conventions that extract geographic hints
// from router hostnames — the reproduction of CAIDA's sc_hoiho
// geolocation module. It reads an ITDK-shaped corpus and RTT matrix
// (e.g. produced by geosynth), runs the five-stage pipeline, and prints
// the learned regexes, custom geohints, and classification per suffix.
//
// Usage:
//
//	hoiho -corpus data/aug2020 [-workers n] [-no-learn] [-suffix ntt.net] [-geolocate host]
//	hoiho -corpus data/aug2020 -write-nc conventions.txt
//	hoiho -nc conventions.txt -geolocate host      # apply without a corpus
//	hoiho -snapshot index.snap -geolocate host     # apply a compiled snapshot
//	hoiho -nc conventions.txt -explain host        # full decision trace
//	hoiho -corpus data/aug2020 -trace out.jsonl -tracesummary   # profile the run
//
// -explain prints the complete decision trace for one hostname: the
// suffix dispatch, every candidate regex tried in order, the
// extraction, whether the hint resolved through the learned overlay or
// the dictionary, and the final geohint with the convention's PPV
// evidence — the CLI twin of geoserve's /v1/explain endpoint.
// -explain-json renders the same trace as the /v1/explain JSON
// document. -version prints build info and exits.
//
// The -corpus directory must contain corpus.nodes, corpus.names, and
// rtt.matrix (corpus.geo is optional and ignored by learning). A
// conventions file written with -write-nc can later be applied with
// -nc — and a compiled-index snapshot written by geosnap with
// -snapshot — without any measurement data: the paper's
// published-regexes workflow. All three inputs resolve through the
// shared geoloc.Source API, the same compiled-index path the geoserve
// daemon serves from.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"hoiho/internal/asn"
	"hoiho/internal/buildinfo"
	"hoiho/internal/core"
	"hoiho/internal/geoloc"
	"hoiho/internal/names"
	"hoiho/internal/obs"
)

func main() {
	src := &geoloc.Source{}
	src.RegisterFlags(flag.CommandLine)
	writeNC := flag.String("write-nc", "", "write the learned conventions to this file")
	showNames := flag.Bool("names", false, "also learn and print router-name conventions")
	showASN := flag.Bool("asn", false, "also learn and print ASN conventions (needs asn.map)")
	onlySuffix := flag.String("suffix", "", "report only this suffix")
	locate := flag.String("geolocate", "", "after learning, geolocate this hostname")
	explainHost := flag.String("explain", "", "print the full decision trace for this hostname")
	explainJSON := flag.Bool("explain-json", false, "render -explain as the /v1/explain JSON document")
	usableOnly := flag.Bool("usable-only", false, "print only good/promising conventions")
	traceOut := flag.String("trace", "", "write a JSONL span trace of the run to this file")
	traceSummary := flag.Bool("tracesummary", false,
		"print the aggregated per-stage/per-suffix span table to stderr")
	runtimeStats := flag.Bool("runtimestats", false,
		"sample runtime telemetry (heap, goroutines, GC pauses) during the run and print it to stderr")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hoiho")
		return
	}
	if _, err := src.Kind(); err != nil {
		fmt.Fprintln(os.Stderr, "hoiho:", err)
		flag.Usage()
		os.Exit(2)
	}

	// One tracer covers the whole invocation: the learning run, the
	// serving-index build, and any -geolocate lookup all record into it.
	// Raw spans are only retained when a -trace file will consume them;
	// -tracesummary alone runs in constant memory off the aggregates.
	var tracer *obs.Tracer
	if *traceOut != "" || *traceSummary || *runtimeStats {
		tracer = obs.New(obs.Options{RetainSpans: *traceOut != ""})
	}
	// A CLI run lasts seconds, not hours: sample at 1s so a learning run
	// yields a usable trajectory (the first sample is synchronous, so
	// even a sub-second run records one).
	var stopSampler func()
	if *runtimeStats {
		stopSampler = tracer.StartRuntimeSampler(obs.RuntimeOptions{Interval: time.Second})
	}

	// One Resolve covers every input kind: snapshot parse, conventions
	// read, or a full learning run. The compiled Index rides along for
	// -geolocate; the corpus inputs ride along for -names/-asn.
	resolved, err := src.Resolve(geoloc.Options{Tracer: tracer})
	if err != nil {
		fatal(err)
	}
	res := resolved.Result
	var in core.Inputs
	haveCorpus := resolved.Inputs != nil
	if haveCorpus {
		in = *resolved.Inputs
	}

	if *writeNC != "" {
		f, err := os.Create(*writeNC)
		if err != nil {
			fatal(err)
		}
		if err := core.WriteConventions(f, res); err != nil {
			fatal(err) // exits; the OS reclaims the half-written file's fd
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d conventions to %s\n", len(res.NCs), *writeNC)
	}

	var suffixes []string
	for s := range res.NCs {
		if *onlySuffix != "" && s != *onlySuffix {
			continue
		}
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)

	for _, s := range suffixes {
		nc := res.NCs[s]
		if *usableOnly && !nc.Class.Usable() {
			continue
		}
		t := nc.Tally
		fmt.Printf("%s: %s  TP=%d FP=%d FN=%d UNK=%d ATP=%d PPV=%.1f%% hints=%d\n",
			s, nc.Class, t.TP, t.FP, t.FN, t.UNK, t.ATP(), 100*t.PPV(), t.UniqueHints)
		for _, r := range nc.Regexes {
			fmt.Printf("  regex [%s] %s\n", r.Hint, r)
		}
		for _, lh := range nc.Learned {
			fmt.Printf("  learned %s (tp=%d fp=%d)\n", lh, lh.TP, lh.FP)
		}
	}
	fmt.Printf("\nsuffixes with apparent geohints: %d; routers with geohints: %d; geolocated: %d\n",
		res.SuffixesWithGeohint, res.RoutersWithGeohint, res.RoutersGeolocated)

	if *showNames {
		if !haveCorpus {
			fatal(fmt.Errorf("-names requires -corpus"))
		}
		fmt.Println("\nrouter-name conventions:")
		for _, c := range names.Learn(in.Corpus, in.PSL, 2) {
			fmt.Printf("  %s: %s (routers=%d collisions=%d missed=%d)\n",
				c.Suffix, c.Pattern, c.Routers, c.Collisions, c.Missed)
		}
	}
	if *showASN {
		if !haveCorpus {
			fatal(fmt.Errorf("-asn requires -corpus"))
		}
		mapping, err := loadASNMap(filepath.Join(src.Corpus, "asn.map"))
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nASN conventions:")
		for _, c := range asn.Learn(in.Corpus, in.PSL, mapping, asn.DefaultConfig()) {
			fmt.Printf("  %s: %s (tp=%d fp=%d ppv=%.0f%%)\n",
				c.Suffix, c.Pattern, c.TP, c.FP, 100*c.PPV())
		}
	}

	if *locate != "" {
		ix := resolved.Index
		suffix := ix.Suffix(*locate)
		if ix.Convention(suffix) == nil {
			fatal(fmt.Errorf("no convention learned for suffix %q", suffix))
		}
		g, ok := ix.Lookup(*locate)
		if !ok {
			fatal(fmt.Errorf("no regex in %s matches %q", suffix, *locate))
		}
		learned := ""
		if g.Learned {
			learned = " (learned hint)"
		}
		fmt.Printf("\n%s -> %s via %s %q%s at %s\n",
			*locate, g.Loc.String(), g.Type, g.Hint, learned, g.Loc.Pos)
	}

	if *explainHost != "" {
		ex := resolved.Index.Explain(*explainHost)
		if *explainJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetEscapeHTML(false)
			if err := enc.Encode(ex); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(ex.Text())
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			fatal(err) // exits; the OS reclaims the half-written file's fd
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hoiho: wrote %d spans to %s\n", tracer.SpanCount(), *traceOut)
	}
	if *traceSummary {
		if err := tracer.Summary().Format(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *runtimeStats {
		stopSampler()
		if err := obs.FormatRuntimeSamples(os.Stderr, tracer.RuntimeSamples()); err != nil {
			fatal(err)
		}
	}
}

// loadASNMap parses "asn <addr> <asn>" records.
func loadASNMap(path string) (asn.AddrMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := asn.AddrMap{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 || fields[0] != "asn" {
			return nil, fmt.Errorf("asn.map: malformed line %q", sc.Text())
		}
		addr, err := netip.ParseAddr(fields[1])
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, err
		}
		m[addr] = uint32(n)
	}
	return m, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoiho:", err)
	os.Exit(1)
}
