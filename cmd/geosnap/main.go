// Command geosnap produces and verifies compiled-index snapshots — the
// learn-once/serve-many artifact geoserve cold-starts and hot-reloads
// from (see DESIGN.md §10 for the format). A snapshot carries learned
// conventions in a versioned, checksummed, suffix-sharded binary file
// that geoloc.Load turns into a serving index without running the
// learning pipeline.
//
// Usage:
//
//	geosnap -corpus data/aug2020 -o index.snap [-workers n] [-no-learn] [-usable-only]
//	geosnap -nc conventions.txt -o index.snap
//	geosnap -snapshot old.snap -o new.snap      # rewrite (re-shard / re-checksum)
//	geosnap -verify -snapshot index.snap        # integrity + compile check
//
// The output file is written atomically (temp file + rename in the
// destination directory), so a geoserve instance told to reload via
// SIGHUP or /v1/admin/reload can never observe a half-written snapshot.
package main

import (
	"flag"
	"fmt"
	"os"

	"hoiho/internal/buildinfo"
	"path/filepath"

	"hoiho/internal/core"
	"hoiho/internal/geoloc"
)

func main() {
	src := &geoloc.Source{}
	src.RegisterFlags(flag.CommandLine)
	out := flag.String("o", "", "write the snapshot to this file (atomically)")
	verify := flag.Bool("verify", false,
		"verify the source instead of writing: checksums, format version, and a full index compile")
	usableOnly := flag.Bool("usable-only", false,
		"snapshot only good/promising conventions (the paper's production recommendation)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "geosnap")
		return
	}
	if _, err := src.Kind(); err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		flag.Usage()
		os.Exit(2)
	}
	if !*verify && *out == "" {
		fmt.Fprintln(os.Stderr, "geosnap: -o is required (or -verify to check without writing)")
		flag.Usage()
		os.Exit(2)
	}

	// Resolve compiles the full index, so a convention whose regex does
	// not compile fails here — before a broken snapshot ships.
	resolved, err := src.Resolve(geoloc.Options{UsableOnly: *usableOnly})
	if err != nil {
		fatal(err)
	}
	res := resolved.Result
	if *usableOnly {
		kept := 0
		for suffix, nc := range res.NCs {
			if !nc.Class.Usable() {
				delete(res.NCs, suffix)
				continue
			}
			kept++
		}
		fmt.Fprintf(os.Stderr, "geosnap: keeping %d usable conventions\n", kept)
	}
	if *verify {
		fmt.Printf("ok: %s: %d conventions, %d compiled into a serving index\n",
			src.Describe(), len(res.NCs), resolved.Index.Len())
		if *out == "" {
			return
		}
	}

	n, err := writeAtomic(*out, res)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d conventions (%d bytes, format v%d) to %s\n",
		len(res.NCs), n, geoloc.SnapshotVersion, *out)
}

// writeAtomic saves the snapshot to a temp file in the destination
// directory and renames it into place, returning the byte count. The
// rename is what makes concurrent reloaders safe: they open either the
// old complete file or the new complete file, never a prefix.
func writeAtomic(path string, res *core.Result) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".geosnap-*")
	if err != nil {
		return 0, err
	}
	//lint:ignore droppederr best-effort cleanup; a no-op after the rename succeeds, and the temp dir entry is harmless if it fails
	defer os.Remove(tmp.Name())
	if err := geoloc.Save(tmp, res, nil); err != nil {
		tmp.Close()
		return 0, err
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geosnap:", err)
	os.Exit(1)
}
