package hoiho_bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWorkflow exercises the complete command-line workflow end to
// end: generate a corpus, learn conventions, publish them, apply them
// without measurement data, and render the validation website.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries")
	}
	bin := t.TempDir()
	data := filepath.Join(t.TempDir(), "corpus")
	site := filepath.Join(t.TempDir(), "site")
	ncFile := filepath.Join(t.TempDir(), "conventions.txt")

	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	run := func(path string, args ...string) string {
		cmd := exec.Command(path, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(path), args, err, out)
		}
		return string(out)
	}

	geosynth := build("geosynth")
	hoiho := build("hoiho")
	geoweb := build("geoweb")
	geodict := build("geodict")
	geosnap := build("geosnap")

	// 1. Generate a small IPv6-preset corpus.
	out := run(geosynth, "-preset", "ipv6-nov2020", "-out", data)
	if !strings.Contains(out, "routers") {
		t.Errorf("geosynth output: %s", out)
	}
	for _, f := range []string{"corpus.nodes", "corpus.names", "corpus.geo",
		"corpus.links", "rtt.matrix", "truth.hints", "asn.map"} {
		if _, err := os.Stat(filepath.Join(data, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	// 2. Learn conventions and publish them.
	out = run(hoiho, "-corpus", data, "-usable-only", "-write-nc", ncFile, "-names", "-asn")
	if !strings.Contains(out, "good") || !strings.Contains(out, "regex") {
		t.Errorf("hoiho learn output missing conventions:\n%s", out)
	}
	if !strings.Contains(out, "router-name conventions") ||
		!strings.Contains(out, "ASN conventions") {
		t.Errorf("hoiho -names/-asn output missing:\n%s", out)
	}

	// 3. Find a usable suffix and one of its hostnames from the corpus.
	ncText, err := os.ReadFile(ncFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ncText), "suffix ") {
		t.Fatalf("conventions file empty:\n%s", ncText)
	}

	// 4. Apply the published conventions without the corpus.
	suffix, host := pickGeolocatable(t, string(ncText), data)
	if host != "" {
		out = run(hoiho, "-nc", ncFile, "-suffix", suffix, "-geolocate", host)
		if !strings.Contains(out, "->") {
			t.Errorf("hoiho -nc geolocate output:\n%s", out)
		}
	}

	// 5. Compile the conventions into a snapshot and apply it — the
	// third input kind of the shared Source API, and the one geoserve
	// cold-starts from in production.
	snapFile := filepath.Join(t.TempDir(), "index.snap")
	out = run(geosnap, "-nc", ncFile, "-verify", "-o", snapFile)
	if !strings.Contains(out, "wrote") {
		t.Errorf("geosnap output: %s", out)
	}
	if fi, err := os.Stat(snapFile); err != nil || fi.Size() == 0 {
		t.Errorf("snapshot file missing or empty: %v", err)
	}
	if host != "" {
		out = run(hoiho, "-snapshot", snapFile, "-suffix", suffix, "-geolocate", host)
		if !strings.Contains(out, "->") {
			t.Errorf("hoiho -snapshot geolocate output:\n%s", out)
		}
	}

	// 6. Render the website.
	out = run(geoweb, "-nc", ncFile, "-out", site)
	if !strings.Contains(out, "pages") {
		t.Errorf("geoweb output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(site, "index.html")); err != nil {
		t.Errorf("missing index.html: %v", err)
	}

	// 7. Dictionary queries answer.
	out = run(geodict, "-iata", "ash")
	if !strings.Contains(out, "Nashua") {
		t.Errorf("geodict -iata ash: %s", out)
	}
}

// pickGeolocatable scans the names file for a hostname under a suffix
// that the conventions file covers.
func pickGeolocatable(t *testing.T, ncText, dataDir string) (string, string) {
	t.Helper()
	suffixes := map[string]bool{}
	for _, line := range strings.Split(ncText, "\n") {
		if strings.HasPrefix(line, "suffix ") {
			suffixes[strings.Fields(line)[1]] = true
		}
	}
	names, err := os.ReadFile(filepath.Join(dataDir, "corpus.names"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(names), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		host := fields[3]
		for suffix := range suffixes {
			if strings.HasSuffix(host, "."+suffix) {
				return suffix, host
			}
		}
	}
	return "", ""
}
