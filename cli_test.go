package hoiho_bench

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hoiho/internal/dnswire"
	"hoiho/internal/promexp"
)

// TestCLIWorkflow exercises the complete command-line workflow end to
// end: generate a corpus, learn conventions, publish them, apply them
// without measurement data, and render the validation website.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries")
	}
	bin := t.TempDir()
	data := filepath.Join(t.TempDir(), "corpus")
	site := filepath.Join(t.TempDir(), "site")
	ncFile := filepath.Join(t.TempDir(), "conventions.txt")

	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	run := func(path string, args ...string) string {
		cmd := exec.Command(path, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(path), args, err, out)
		}
		return string(out)
	}

	geosynth := build("geosynth")
	hoiho := build("hoiho")
	geoweb := build("geoweb")
	geodict := build("geodict")
	geosnap := build("geosnap")

	// 1. Generate a small IPv6-preset corpus.
	out := run(geosynth, "-preset", "ipv6-nov2020", "-out", data)
	if !strings.Contains(out, "routers") {
		t.Errorf("geosynth output: %s", out)
	}
	for _, f := range []string{"corpus.nodes", "corpus.names", "corpus.geo",
		"corpus.links", "rtt.matrix", "truth.hints", "asn.map"} {
		if _, err := os.Stat(filepath.Join(data, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	// 2. Learn conventions and publish them.
	out = run(hoiho, "-corpus", data, "-usable-only", "-write-nc", ncFile, "-names", "-asn")
	if !strings.Contains(out, "good") || !strings.Contains(out, "regex") {
		t.Errorf("hoiho learn output missing conventions:\n%s", out)
	}
	if !strings.Contains(out, "router-name conventions") ||
		!strings.Contains(out, "ASN conventions") {
		t.Errorf("hoiho -names/-asn output missing:\n%s", out)
	}

	// 3. Find a usable suffix and one of its hostnames from the corpus.
	ncText, err := os.ReadFile(ncFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ncText), "suffix ") {
		t.Fatalf("conventions file empty:\n%s", ncText)
	}

	// 4. Apply the published conventions without the corpus, and ask
	// for the decision trace behind the answer.
	suffix, host := pickGeolocatable(t, string(ncText), data)
	if host != "" {
		out = run(hoiho, "-nc", ncFile, "-suffix", suffix, "-geolocate", host)
		if !strings.Contains(out, "->") {
			t.Errorf("hoiho -nc geolocate output:\n%s", out)
		}
		out = run(hoiho, "-nc", ncFile, "-suffix", suffix, "-explain", host)
		for _, want := range []string{"hostname:", "suffix:", "regex 1:", "verdict:"} {
			if !strings.Contains(out, want) {
				t.Errorf("hoiho -explain output missing %q:\n%s", want, out)
			}
		}
	}

	// 5. Compile the conventions into a snapshot and apply it — the
	// third input kind of the shared Source API, and the one geoserve
	// cold-starts from in production.
	snapFile := filepath.Join(t.TempDir(), "index.snap")
	out = run(geosnap, "-nc", ncFile, "-verify", "-o", snapFile)
	if !strings.Contains(out, "wrote") {
		t.Errorf("geosnap output: %s", out)
	}
	if fi, err := os.Stat(snapFile); err != nil || fi.Size() == 0 {
		t.Errorf("snapshot file missing or empty: %v", err)
	}
	if host != "" {
		out = run(hoiho, "-snapshot", snapFile, "-suffix", suffix, "-geolocate", host)
		if !strings.Contains(out, "->") {
			t.Errorf("hoiho -snapshot geolocate output:\n%s", out)
		}
	}

	// 6. Render the website.
	out = run(geoweb, "-nc", ncFile, "-out", site)
	if !strings.Contains(out, "pages") {
		t.Errorf("geoweb output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(site, "index.html")); err != nil {
		t.Errorf("missing index.html: %v", err)
	}

	// 7. Dictionary queries answer.
	out = run(geodict, "-iata", "ash")
	if !strings.Contains(out, "Nashua") {
		t.Errorf("geodict -iata ash: %s", out)
	}

	// 8. Serve the snapshot over DNS and HTTP and compare the fronts:
	// the TXT answer (UDP and TCP byte-identical) must agree with the
	// /v1/geolocate JSON for the same hostname.
	if host != "" {
		geodns := build("geodns")
		geoserve := build("geoserve")
		dnsAddr, adminAddr, stopDNS := startDaemon(t, geodns,
			"-snapshot", snapFile, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0")
		defer stopDNS()
		httpAddr, _, stopHTTP := startDaemon(t, geoserve, "-snapshot", snapFile, "-addr", "127.0.0.1:0")
		defer stopHTTP()
		if adminAddr == "" {
			t.Fatal("geodns never logged its admin-plane address")
		}

		pkt := packQuery(t, host+".", dnswire.TypeTXT)
		udpResp := dnsExchangeUDP(t, dnsAddr, pkt)
		tcpResp := dnsExchangeTCP(t, dnsAddr, pkt)
		if !bytes.Equal(udpResp, tcpResp) {
			t.Errorf("UDP and TCP answers differ:\n udp %x\n tcp %x", udpResp, tcpResp)
		}
		r, err := dnswire.Unpack(udpResp)
		if err != nil {
			t.Fatalf("geodns answer does not decode: %v", err)
		}
		if r.RCode != dnswire.RCodeNoError || len(r.Answers) != 1 {
			t.Fatalf("geodns answer for %s: rcode %v, %d answers", host, r.RCode, len(r.Answers))
		}
		txt, ok := r.Answers[0].Data.(dnswire.TXT)
		if !ok {
			t.Fatalf("geodns answer is %T, want TXT", r.Answers[0].Data)
		}

		// An unknown hostname is NXDOMAIN, authoritatively.
		miss, err := dnswire.Unpack(dnsExchangeUDP(t, dnsAddr,
			packQuery(t, "no.such.host.example.", dnswire.TypeTXT)))
		if err != nil {
			t.Fatal(err)
		}
		if miss.RCode != dnswire.RCodeNXDomain || !miss.Authoritative {
			t.Errorf("miss rcode = %v authoritative = %v", miss.RCode, miss.Authoritative)
		}

		// HTTP equivalence: the same snapshot behind /v1/geolocate.
		resp, err := http.Post("http://"+httpAddr+"/v1/geolocate", "application/json",
			strings.NewReader(fmt.Sprintf("{%q:%q}", "hostname", host)))
		if err != nil {
			t.Fatal(err)
		}
		var httpRes struct {
			Located  bool `json:"located"`
			Location *struct {
				City    string  `json:"city"`
				Country string  `json:"country"`
				Lat     float64 `json:"lat"`
				Long    float64 `json:"long"`
			} `json:"location"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&httpRes); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
		if !httpRes.Located || httpRes.Location == nil {
			t.Fatalf("geoserve does not locate %s but geodns does", host)
		}
		kv := map[string]string{}
		for _, s := range txt {
			if k, v, ok := strings.Cut(s, "="); ok {
				kv[k] = v
			}
		}
		if kv["city"] != httpRes.Location.City || kv["country"] != httpRes.Location.Country {
			t.Errorf("fronts disagree: DNS %v vs HTTP %+v", kv, httpRes.Location)
		}
		if kv["lat"] != fmt.Sprintf("%g", httpRes.Location.Lat) ||
			kv["long"] != fmt.Sprintf("%g", httpRes.Location.Long) {
			t.Errorf("coordinates disagree: DNS %v vs HTTP %+v", kv, httpRes.Location)
		}

		// 9. Explain equivalence: the /v1/explain JSON document and the
		// hoiho -explain-json line for the same hostname over the same
		// snapshot must be byte-identical — one trace, two fronts.
		exResp, err := http.Get("http://" + httpAddr + "/v1/explain?hostname=" + host)
		if err != nil {
			t.Fatal(err)
		}
		exBody, err := io.ReadAll(exResp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := exResp.Body.Close(); err != nil {
			t.Error(err)
		}
		if exResp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/explain status %d: %s", exResp.StatusCode, exBody)
		}
		cliOut := run(hoiho, "-snapshot", snapFile, "-suffix", suffix, "-explain", host, "-explain-json")
		cliLines := strings.Split(strings.TrimRight(cliOut, "\n"), "\n")
		cliJSON := cliLines[len(cliLines)-1]
		if httpJSON := strings.TrimRight(string(exBody), "\n"); cliJSON != httpJSON {
			t.Errorf("explain fronts disagree:\n cli  %s\n http %s", cliJSON, httpJSON)
		}

		// 10. The geodns admin plane serves liveness and a conformant
		// Prometheus exposition that reflects the queries above.
		hz, err := http.Get("http://" + adminAddr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string `json:"status"`
			Commit string `json:"commit"`
		}
		if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		if err := hz.Body.Close(); err != nil {
			t.Error(err)
		}
		if health.Status != "ok" || health.Commit == "" {
			t.Errorf("geodns healthz = %+v", health)
		}
		pm, err := http.Get("http://" + adminAddr + "/metrics/prom")
		if err != nil {
			t.Fatal(err)
		}
		promBody, err := io.ReadAll(pm.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.Body.Close(); err != nil {
			t.Error(err)
		}
		if err := promexp.Conform(promBody); err != nil {
			t.Errorf("geodns admin exposition not conformant: %v\n%s", err, promBody)
		}
		for _, want := range []string{
			"geodns_queries_total",
			`geodns_responses_total{outcome="noerror"}`,
			"geodns_edns_udp_size_bytes_bucket",
			"geodns_index_generation 1",
		} {
			if !strings.Contains(string(promBody), want) {
				t.Errorf("geodns exposition missing %q\n%s", want, promBody)
			}
		}
	}
}

// startDaemon launches a server binary, waits for its "listening on"
// line, and returns the bound address, the admin-plane address (empty
// unless the daemon logged one before declaring readiness), plus a
// stop function that SIGTERMs the process and waits for a clean exit.
func startDaemon(t *testing.T, path string, args ...string) (string, string, func()) {
	t.Helper()
	cmd := exec.Command(path, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	adminCh := make(chan string, 1)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			// The admin line is logged before the listening line, so by
			// the time addrCh fires, adminCh is already filled if the
			// daemon has an admin plane.
			if i := strings.Index(line, "admin plane on http://"); i >= 0 {
				addr := line[i+len("admin plane on http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case adminCh <- addr:
				default:
				}
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := line[i+len("listening on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	stop := func() {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return // already stopped
		}
		<-drained
		if err := cmd.Wait(); err != nil {
			t.Errorf("%s did not shut down cleanly: %v", filepath.Base(path), err)
		}
	}
	select {
	case addr := <-addrCh:
		admin := ""
		select {
		case admin = <-adminCh:
		default:
		}
		return addr, admin, stop
	case <-time.After(30 * time.Second):
		stop()
		t.Fatalf("%s never reported its listen address", filepath.Base(path))
		return "", "", nil
	}
}

func packQuery(t *testing.T, name string, typ dnswire.Type) []byte {
	t.Helper()
	m := &dnswire.Message{
		ID:               0x7357,
		RecursionDesired: true,
		Questions:        []dnswire.Question{{Name: name, Type: typ, Class: dnswire.ClassINET}},
		EDNS:             &dnswire.EDNS{UDPSize: 1232},
	}
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func dnsExchangeUDP(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	c, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func dnsExchangeTCP(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var lenbuf [2]byte
	binary.BigEndian.PutUint16(lenbuf[:], uint16(len(pkt)))
	if _, err := c.Write(append(lenbuf[:], pkt...)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, lenbuf[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint16(lenbuf[:]))
	if _, err := io.ReadFull(c, resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// pickGeolocatable scans the names file for a hostname under a suffix
// that the conventions file covers.
func pickGeolocatable(t *testing.T, ncText, dataDir string) (string, string) {
	t.Helper()
	suffixes := map[string]bool{}
	for _, line := range strings.Split(ncText, "\n") {
		if strings.HasPrefix(line, "suffix ") {
			suffixes[strings.Fields(line)[1]] = true
		}
	}
	names, err := os.ReadFile(filepath.Join(dataDir, "corpus.names"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(names), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		host := fields[3]
		for suffix := range suffixes {
			if strings.HasSuffix(host, "."+suffix) {
				return suffix, host
			}
		}
	}
	return "", ""
}
