package hoiho_bench

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/benchrec"
)

// TestGeobenchCompareExitCodes drives the geobench regression gate end
// to end in pure-compare mode (no benchmarks run): a record compared
// against itself exits 0, and a synthetic 2x-slower injected candidate
// exits nonzero — the contract CI's bench-record job relies on.
func TestGeobenchCompareExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the geobench binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "geobench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/geobench").CombinedOutput(); err != nil {
		t.Fatalf("build geobench: %v\n%s", err, out)
	}

	write := func(name string, scale float64) string {
		f := benchrec.NewFile("2026-08-06T00:00:00Z", "deadbee", true)
		f.Benchmarks = []benchrec.Benchmark{
			{Name: "CoreRunParallel", Samples: []float64{1e6 * scale, 1.02e6 * scale, 0.99e6 * scale},
				NsPerOp: 1e6 * scale, MADNs: 1e4 * scale},
			{Name: "GeolocBatchCached", Samples: []float64{2e5 * scale},
				NsPerOp: 2e5 * scale, MADNs: 1e3 * scale},
		}
		path := filepath.Join(dir, name)
		if err := f.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 1)
	slow := write("slow.json", 2)

	out, err := exec.Command(bin, "-against", base, "-candidate", base).CombinedOutput()
	if err != nil {
		t.Fatalf("self-compare exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no regression") {
		t.Errorf("self-compare output missing verdict:\n%s", out)
	}

	out, err = exec.Command(bin, "-against", base, "-candidate", slow).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("2x-slower candidate: err = %v (want exit error)\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Errorf("2x-slower candidate exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "REGRESSION") {
		t.Errorf("regression verdict missing from output:\n%s", out)
	}
}
