// Package undns reimplements the undns rule engine from Rocketfuel
// (Spring et al., SIGCOMM 2002) as the paper describes it (§3.2):
// manually-assembled per-suffix regexes whose captured code is looked up
// in a per-rule table mapping codes to location names. Because humans
// curated each entry, precision is very high (the paper measured 98.3%
// PPV) — but the database covers only a subset of each suffix's codes
// and stopped being updated in 2014, so coverage is poor.
//
// The ruleset format is line-oriented:
//
//	suffix <domain>
//	rule <regex-with-one-capture>
//	map <code> <city>|<region>|<country>
//
// A Builder also constructs rulesets programmatically; the evaluation
// harness uses it to synthesise an "old, partial, hand-curated" ruleset
// from a past corpus, mirroring how undns would have covered a network
// years ago.
package undns

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
	"sync"

	"hoiho/internal/geodict"
)

// compiledRules caches compiled rule regexes by pattern text,
// process-wide: the evaluation harness re-parses the published ruleset
// per figure and synthesises rulesets that share rule shapes, so each
// distinct pattern compiles exactly once per process rather than once
// per load.
var compiledRules sync.Map // pattern string -> *regexp.Regexp

// compileRule returns the cached compiled form of a rule pattern,
// enforcing the exactly-one-capture contract shared by AddRule and
// Parse. Patterns that fail either check are not cached.
func compileRule(pattern string) (*regexp.Regexp, error) {
	if cached, ok := compiledRules.Load(pattern); ok {
		return cached.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	if re.NumSubexp() != 1 {
		return nil, fmt.Errorf("pattern %q must have exactly one capture", pattern)
	}
	compiledRules.Store(pattern, re)
	return re, nil
}

// Rule is one undns regex with its manually-curated code table.
type Rule struct {
	Re    *regexp.Regexp
	Codes map[string]*geodict.Location
}

// RuleSet maps suffixes to their rules.
type RuleSet struct {
	Rules map[string][]*Rule
}

// NewRuleSet returns an empty ruleset.
func NewRuleSet() *RuleSet {
	return &RuleSet{Rules: make(map[string][]*Rule)}
}

// AddRule registers a rule for a suffix. The regex must contain exactly
// one capture group.
func (rs *RuleSet) AddRule(suffix, pattern string, codes map[string]*geodict.Location) error {
	re, err := compileRule(pattern)
	if err != nil {
		return fmt.Errorf("undns: bad pattern %q: %w", pattern, err)
	}
	rs.Rules[suffix] = append(rs.Rules[suffix], &Rule{Re: re, Codes: codes})
	return nil
}

// Geolocate applies the suffix's rules to a hostname. Unlike DRoP and
// HLOC, a match whose code is not in the curated table yields nothing —
// the undns database only answers for codes a human has mapped.
func (rs *RuleSet) Geolocate(host, suffix string) (*geodict.Location, bool) {
	for _, rule := range rs.Rules[suffix] {
		m := rule.Re.FindStringSubmatch(strings.ToLower(host))
		if m == nil {
			continue
		}
		if loc, ok := rule.Codes[m[1]]; ok {
			return loc, true
		}
	}
	return nil, false
}

// Suffixes returns the number of suffixes with at least one rule.
func (rs *RuleSet) Suffixes() int { return len(rs.Rules) }

// Parse reads a ruleset in the text format described in the package
// comment. Coordinates for locations are resolved through the supplied
// dictionary's place table; unknown places are an error (the curated
// database always named real places).
func Parse(r io.Reader, dict *geodict.Dictionary) (*RuleSet, error) {
	rs := NewRuleSet()
	sc := bufio.NewScanner(r)
	var suffix string
	var current *Rule
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.SplitN(text, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("undns: line %d: malformed", line)
		}
		switch fields[0] {
		case "suffix":
			suffix = fields[1]
			current = nil
		case "rule":
			if suffix == "" {
				return nil, fmt.Errorf("undns: line %d: rule before suffix", line)
			}
			re, err := compileRule(fields[1])
			if err != nil {
				return nil, fmt.Errorf("undns: line %d: %w", line, err)
			}
			current = &Rule{Re: re, Codes: make(map[string]*geodict.Location)}
			rs.Rules[suffix] = append(rs.Rules[suffix], current)
		case "map":
			if current == nil {
				return nil, fmt.Errorf("undns: line %d: map before rule", line)
			}
			parts := strings.SplitN(fields[1], " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("undns: line %d: malformed map", line)
			}
			trip := strings.Split(parts[1], "|")
			if len(trip) != 3 {
				return nil, fmt.Errorf("undns: line %d: location must be city|region|country", line)
			}
			loc := findPlace(dict, trip[0], trip[1], trip[2])
			if loc == nil {
				return nil, fmt.Errorf("undns: line %d: unknown place %q", line, parts[1])
			}
			current.Codes[parts[0]] = loc
		default:
			return nil, fmt.Errorf("undns: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

func findPlace(dict *geodict.Dictionary, city, region, country string) *geodict.Location {
	for _, loc := range dict.Place(city) {
		if loc.Region == region && loc.Country == country {
			return loc
		}
	}
	return nil
}
