package undns

import (
	_ "embed"
	"strings"
	"sync"

	"hoiho/internal/geodict"
)

//go:embed data/undns.rules
var embeddedRules string

var (
	defaultOnce sync.Once
	defaultSet  *RuleSet
	defaultErr  error
)

// Default returns the embedded starter database — hand-curated rules for
// a handful of classic suffixes, frozen the way the 2014 Rocketfuel
// distribution was. Locations resolve against the default dictionary.
func Default() (*RuleSet, error) {
	defaultOnce.Do(func() {
		dict, err := geodict.Default()
		if err != nil {
			defaultErr = err
			return
		}
		defaultSet, defaultErr = Parse(strings.NewReader(embeddedRules), dict)
	})
	return defaultSet, defaultErr
}
