package undns

import (
	"strings"
	"testing"

	"hoiho/internal/geodict"
)

const sampleRules = `
# curated rules in the style of the Rocketfuel undns database
suffix ntt.net
rule ^.+\.([a-z]{6})\d+\.[a-z]{2}\.[a-z]{2}\.gin\.ntt\.net$
map snjsca san jose|ca|us
map sttlwa seattle|wa|us
map kslrml kuala lumpur||my

suffix he.net
rule ^.+\.core\d+\.([a-z]{3})\d+\.he\.net$
map sjc san jose|ca|us
map fra frankfurt am main|he|de
`

func TestParseAndGeolocate(t *testing.T) {
	d := geodict.MustDefault()
	rs, err := Parse(strings.NewReader(sampleRules), d)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Suffixes() != 2 {
		t.Errorf("suffixes = %d", rs.Suffixes())
	}
	loc, ok := rs.Geolocate("ae-2.r20.snjsca04.us.bb.gin.ntt.net", "ntt.net")
	if !ok || loc.City != "san jose" {
		t.Errorf("geolocate = %v, %v", loc, ok)
	}
	// Codes outside the curated table yield nothing — undns coverage is
	// bounded by the human-maintained map.
	if _, ok := rs.Geolocate("ae-2.r20.nycmny01.us.bb.gin.ntt.net", "ntt.net"); ok {
		t.Error("unmapped code should yield nothing")
	}
	// The paper's single stale entry: kslrml was hand-mapped to the
	// wrong city (Kuala Lumpur instead of Kuala Selangor).
	loc, ok = rs.Geolocate("ae-1.r01.kslrml02.my.bb.gin.ntt.net", "ntt.net")
	if !ok || loc.City != "kuala lumpur" {
		t.Errorf("stale entry should answer kuala lumpur, got %v %v", loc, ok)
	}
	if _, ok := rs.Geolocate("x.unknown.org", "unknown.org"); ok {
		t.Error("unknown suffix should fail")
	}
}

// TestGeolocateTable sweeps Geolocate over the hit / miss / malformed
// input space with the sample ruleset.
func TestGeolocateTable(t *testing.T) {
	d := geodict.MustDefault()
	rs, err := Parse(strings.NewReader(sampleRules), d)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, host, suffix string
		wantCity           string
		wantOK             bool
	}{
		{"hit ntt clli", "ae-2.r20.sttlwa01.us.bb.gin.ntt.net", "ntt.net", "seattle", true},
		{"hit he iata", "10ge1-2.core3.fra2.he.net", "he.net", "frankfurt am main", true},
		{"hit uppercase host", "AE-2.R20.SNJSCA04.US.BB.GIN.NTT.NET", "ntt.net", "san jose", true},
		{"miss unmapped code", "ae-2.r20.nycmny01.us.bb.gin.ntt.net", "ntt.net", "", false},
		{"miss unknown suffix", "cr1.fra1.other.org", "other.org", "", false},
		{"malformed shape", "not-a-router-hostname", "ntt.net", "", false},
		{"malformed empty host", "", "he.net", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loc, ok := rs.Geolocate(tc.host, tc.suffix)
			if ok != tc.wantOK {
				t.Fatalf("Geolocate(%q) ok = %v, want %v", tc.host, ok, tc.wantOK)
			}
			if ok && loc.City != tc.wantCity {
				t.Errorf("Geolocate(%q) = %s, want %s", tc.host, loc.City, tc.wantCity)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	d := geodict.MustDefault()
	cases := []string{
		"rule ^x$",                                     // rule before suffix
		"suffix a.net\nmap x y|z|w",                    // map before rule
		"suffix a.net\nrule ^(a)(b)$",                  // two captures
		"suffix a.net\nrule ^[a$",                      // bad regex
		"bogus thing",                                  // unknown directive
		"suffix a.net\nrule ^(a)$\nmap x atlantis||zz", // unknown place
		"suffix a.net\nrule ^(a)$\nmap x",              // malformed map
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in), d); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestAddRule(t *testing.T) {
	d := geodict.MustDefault()
	rs := NewRuleSet()
	loc := d.Place("london")[0]
	if err := rs.AddRule("x.net", `^([a-z]{3})\.x\.net$`,
		map[string]*geodict.Location{"lon": loc}); err != nil {
		t.Fatal(err)
	}
	got, ok := rs.Geolocate("lon.x.net", "x.net")
	if !ok || got.City != "london" {
		t.Errorf("geolocate = %v %v", got, ok)
	}
	if err := rs.AddRule("x.net", `^no-capture$`, nil); err == nil {
		t.Error("zero captures should be rejected")
	}
	if err := rs.AddRule("x.net", `^([a)$`, nil); err == nil {
		t.Error("bad regex should be rejected")
	}
}

func TestDefaultDatabase(t *testing.T) {
	rs, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Suffixes() < 5 {
		t.Errorf("embedded database has %d suffixes", rs.Suffixes())
	}
	loc, ok := rs.Geolocate("100ge1-1.core2.fra1.he.net", "he.net")
	if !ok || loc.City != "frankfurt am main" {
		t.Errorf("he.net fra = %v, %v", loc, ok)
	}
	loc, ok = rs.Geolocate("4.69.1.1.ashburn1.level3.net", "level3.net")
	if !ok || loc.City != "ashburn" {
		t.Errorf("level3 ashburn = %v, %v", loc, ok)
	}
	// A code outside the frozen table: no answer (the coverage limit).
	if _, ok := rs.Geolocate("100ge1-1.core2.tyo1.he.net", "he.net"); ok {
		t.Error("tyo is not in the frozen he.net table")
	}
}
