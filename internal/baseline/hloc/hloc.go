// Package hloc reimplements the HLOC technique of Scheitle et al.
// (TMA 2017) as the paper describes it (§3.2, §6.1), preserving its
// documented behaviours:
//
//   - no learned rules: candidate geohints are found in each hostname at
//     run time by dictionary lookup over its punctuation-delimited
//     tokens, filtered by a manually-curated blocklist of strings known
//     not to be geohints ("level", "atlas", ...);
//   - confirmation bias: each candidate location is checked only against
//     the vantage points CLOSEST TO THAT LOCATION — a large RTT from a
//     nearby VP never refutes the candidate, it merely fails to confirm
//     it, and VPs far from the candidate that could refute it are never
//     consulted (the paper's Waco/Chiclayo example);
//   - no custom geohints: strings outside the dictionary are ignored;
//   - a candidate fails when no nearby VP has an RTT sample for the
//     router (the paper's nysernet case).
package hloc

import (
	"sort"
	"strings"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/rtt"
)

// Config parameterises an HLOC instance.
type Config struct {
	// VPsPerCandidate is how many VPs nearest the candidate location are
	// consulted (HLOC limits probing to conserve RIPE Atlas credits).
	VPsPerCandidate int
	// Blocklist contains strings never considered as geohints.
	Blocklist map[string]bool
}

// DefaultConfig mirrors the published configuration: few VPs per
// candidate and a starter blocklist (the paper mentions 468 entries;
// ours covers the structural vocabulary of router hostnames).
func DefaultConfig() Config {
	bl := make(map[string]bool)
	for _, s := range []string{
		"level", "atlas", "vodafone", "static", "dynamic", "cust",
		"customer", "net", "core", "edge", "peer", "router", "rtr",
		"gw", "ge", "xe", "ae", "te", "eth", "gig", "cpe", "pos",
		"serial", "vlan", "bundle", "port", "host", "ip", "dsl",
		"cable", "fiber", "mpls", "bgp",
	} {
		bl[s] = true
	}
	return Config{VPsPerCandidate: 3, Blocklist: bl}
}

// HLOC is a run-time hostname geolocator.
type HLOC struct {
	cfg    Config
	dict   *geodict.Dictionary
	matrix *rtt.Matrix
}

// New returns an HLOC instance over the dictionary and RTT matrix.
func New(cfg Config, dict *geodict.Dictionary, matrix *rtt.Matrix) *HLOC {
	return &HLOC{cfg: cfg, dict: dict, matrix: matrix}
}

// candidate pairs a possible geohint with one interpretation.
type candidate struct {
	token string
	loc   *geodict.Location
}

// tokens splits a hostname's prefix into candidate strings.
func tokens(host, suffix string) []string {
	host = strings.ToLower(host)
	if !strings.HasSuffix(host, "."+suffix) {
		return nil
	}
	prefix := strings.TrimSuffix(host, "."+suffix)
	raw := strings.FieldsFunc(prefix, func(r rune) bool {
		return r == '.' || r == '-' || r == '_'
	})
	var out []string
	for _, t := range raw {
		// Strip trailing digits ("lhr15" -> "lhr"); HLOC normalises
		// tokens this way before dictionary lookup.
		t = strings.TrimRight(t, "0123456789")
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// candidates enumerates the dictionary interpretations of a hostname's
// tokens, honouring the blocklist.
func (h *HLOC) candidates(host, suffix string) []candidate {
	var out []candidate
	seen := make(map[string]bool)
	for _, tok := range tokens(host, suffix) {
		if h.cfg.Blocklist[tok] || seen[tok] {
			continue
		}
		seen[tok] = true
		switch len(tok) {
		case 3:
			for _, a := range h.dict.IATA(tok) {
				loc := a.Loc
				out = append(out, candidate{tok, &loc})
			}
		case 5:
			if c := h.dict.Locode(tok); c != nil {
				loc := c.Loc
				out = append(out, candidate{tok, &loc})
			}
		case 6:
			if c := h.dict.CLLI(tok); c != nil {
				loc := c.Loc
				out = append(out, candidate{tok, &loc})
			}
		}
		if len(tok) >= 4 {
			for _, loc := range h.dict.Place(tok) {
				out = append(out, candidate{tok, loc})
			}
		}
	}
	return out
}

// Geolocate evaluates a router hostname: each candidate location is
// checked against the RTT samples of the VPs closest to it; a candidate
// is confirmed when the measured RTT from such a VP is feasible for the
// candidate (the one-sided test, applied only from nearby VPs). Among
// confirmed candidates the one whose confirming VP measured the smallest
// RTT wins.
func (h *HLOC) Geolocate(routerID, host, suffix string) (*geodict.Location, bool) {
	cands := h.candidates(host, suffix)
	if len(cands) == 0 {
		return nil, false
	}
	var bestLoc *geodict.Location
	bestRTT := -1.0
	for _, c := range cands {
		rttMs, ok := h.confirm(routerID, c.loc)
		if !ok {
			continue
		}
		if bestRTT < 0 || rttMs < bestRTT {
			bestRTT = rttMs
			bestLoc = c.loc
		}
	}
	return bestLoc, bestLoc != nil
}

// confirm checks a candidate location against the VPs nearest to it.
func (h *HLOC) confirm(routerID string, loc *geodict.Location) (float64, bool) {
	vps := append([]*rtt.VP(nil), h.matrix.VPs()...)
	sort.Slice(vps, func(i, j int) bool {
		return geo.DistanceKm(vps[i].Pos, loc.Pos) < geo.DistanceKm(vps[j].Pos, loc.Pos)
	})
	n := h.cfg.VPsPerCandidate
	if n > len(vps) {
		n = len(vps)
	}
	for _, vp := range vps[:n] {
		s, ok := h.matrix.Ping(routerID, vp.Name)
		if !ok {
			continue // no sample from this VP (the nysernet failure mode)
		}
		// One-sided feasibility from a VP near the candidate: the
		// candidate is "confirmed" whenever the RTT disc around the VP
		// covers it — which a large RTT always does. VPs far from the
		// candidate, which could refute it, are never consulted.
		if geo.MaxDistanceKm(s.RTTms) >= geo.DistanceKm(vp.Pos, loc.Pos) {
			return s.RTTms, true
		}
	}
	return 0, false
}
