package hloc

import (
	"reflect"
	"testing"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/rtt"
)

func testMatrix(d *geodict.Dictionary) *rtt.Matrix {
	mk := func(name, city string) *rtt.VP {
		return &rtt.VP{Name: name, City: city, Pos: d.Place(city)[0].Pos}
	}
	return rtt.NewMatrix([]*rtt.VP{
		mk("fra-de", "frankfurt am main"),
		mk("lon-gb", "london"),
		mk("nyc-us", "new york"),
		mk("dal-us", "dallas"),
		mk("lim-pe", "lima"),
	})
}

func TestTokens(t *testing.T) {
	got := tokens("de-cix1.rt.act.fkt.de.retn.net", "retn.net")
	want := []string{"de", "cix", "rt", "act", "fkt", "de"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	if tokens("a.other.org", "retn.net") != nil {
		t.Error("suffix mismatch should be nil")
	}
}

func TestBlocklist(t *testing.T) {
	d := geodict.MustDefault()
	m := testMatrix(d)
	h := New(DefaultConfig(), d, m)
	// "eth" and "gig" are IATA codes but blocklisted.
	cands := h.candidates("eth0.gig1.core.example.net", "example.net")
	if len(cands) != 0 {
		t.Errorf("blocklisted tokens produced candidates: %+v", cands)
	}
}

func TestGeolocateConfirms(t *testing.T) {
	d := geodict.MustDefault()
	m := testMatrix(d)
	fra := d.Place("frankfurt am main")[0]
	// Honest samples for a Frankfurt router.
	for _, vp := range m.VPs() {
		_ = m.SetPing("R1", vp.Name, rtt.Sample{
			RTTms: geo.MinRTTms(vp.Pos, fra.Pos)*1.3 + 1})
	}
	h := New(DefaultConfig(), d, m)
	loc, ok := h.Geolocate("R1", "cr1.fra1.example.net", "example.net")
	if !ok || loc.City != "frankfurt am main" {
		t.Errorf("geolocate = %v, %v", loc, ok)
	}
}

func TestConfirmationBias(t *testing.T) {
	// The paper's retn.net example: a Frankfurt router whose hostname
	// contains "act" (Waco, TX) and "cix" (Chiclayo, PE). HLOC consults
	// only VPs near Waco/Chiclayo; the ~110ms RTT from Dallas/Lima to
	// Frankfurt easily covers Waco/Chiclayo, so HLOC wrongly confirms
	// them.
	d := geodict.MustDefault()
	m := testMatrix(d)
	fra := d.Place("frankfurt am main")[0]
	for _, vp := range m.VPs() {
		_ = m.SetPing("R1", vp.Name, rtt.Sample{
			RTTms: geo.MinRTTms(vp.Pos, fra.Pos)*1.3 + 1})
	}
	h := New(DefaultConfig(), d, m)
	// No "fkt" in the dictionary, so the true hint is invisible to HLOC;
	// the false candidates get confirmed.
	loc, ok := h.Geolocate("R1", "de-cix1.rt.act.fkt.de.retn.net", "retn.net")
	if !ok {
		t.Fatal("HLOC should (wrongly) confirm a candidate")
	}
	if loc.City != "waco" && loc.City != "chiclayo" {
		t.Errorf("expected the confirmation-bias false positive, got %s", loc.City)
	}
}

func TestNoSamplesNoAnswer(t *testing.T) {
	// The nysernet failure mode: the nearby VPs have no samples.
	d := geodict.MustDefault()
	m := testMatrix(d)
	h := New(DefaultConfig(), d, m)
	if _, ok := h.Geolocate("R9", "cr1.fra1.example.net", "example.net"); ok {
		t.Error("no samples should mean no answer")
	}
}

func TestNoCustomHints(t *testing.T) {
	// "ash" maps to Nashua in the dictionary; for an Ashburn router the
	// one-sided test from the VP nearest Nashua (nyc-us, ~300km away)
	// still "confirms" Nashua because the measured 6ms RTT disc covers
	// it — HLOC cannot learn the operator meant Ashburn.
	d := geodict.MustDefault()
	m := testMatrix(d)
	ashburn := d.Place("ashburn")[0]
	for _, vp := range m.VPs() {
		_ = m.SetPing("R1", vp.Name, rtt.Sample{
			RTTms: geo.MinRTTms(vp.Pos, ashburn.Pos)*1.3 + 1})
	}
	h := New(DefaultConfig(), d, m)
	loc, ok := h.Geolocate("R1", "core1.ash1.he.net", "he.net")
	if !ok {
		t.Fatal("expected an answer")
	}
	if loc.City == "ashburn" {
		t.Error("HLOC has no custom-hint learning; it cannot answer ashburn")
	}
}

// TestGeolocateTable sweeps Geolocate over the hit / miss / malformed
// input space against one honest Frankfurt router.
func TestGeolocateTable(t *testing.T) {
	d := geodict.MustDefault()
	m := testMatrix(d)
	fra := d.Place("frankfurt am main")[0]
	for _, vp := range m.VPs() {
		_ = m.SetPing("R1", vp.Name, rtt.Sample{
			RTTms: geo.MinRTTms(vp.Pos, fra.Pos)*1.3 + 1})
	}
	h := New(DefaultConfig(), d, m)
	cases := []struct {
		name, router, host, suffix string
		wantCity                   string
		wantOK                     bool
	}{
		{"hit iata", "R1", "cr1.fra1.example.net", "example.net", "frankfurt am main", true},
		{"miss no dictionary token", "R1", "xx0.yy1.example.net", "example.net", "", false},
		{"miss blocklisted only", "R1", "eth0.core.example.net", "example.net", "", false},
		{"miss router without samples", "R9", "cr1.fra1.example.net", "example.net", "", false},
		{"malformed wrong suffix", "R1", "cr1.fra1.other.org", "example.net", "", false},
		{"malformed empty host", "R1", "", "example.net", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loc, ok := h.Geolocate(tc.router, tc.host, tc.suffix)
			if ok != tc.wantOK {
				t.Fatalf("Geolocate(%q) ok = %v, want %v", tc.host, ok, tc.wantOK)
			}
			if ok && loc.City != tc.wantCity {
				t.Errorf("Geolocate(%q) = %s, want %s", tc.host, loc.City, tc.wantCity)
			}
		})
	}
}

func TestCandidateTypes(t *testing.T) {
	d := geodict.MustDefault()
	m := testMatrix(d)
	h := New(DefaultConfig(), d, m)
	cands := h.candidates("a1.usnyc.nycmny.dallas.example.net", "example.net")
	var kinds []string
	for _, c := range cands {
		kinds = append(kinds, c.token)
	}
	// usnyc (locode), nycmny (clli), dallas (place).
	wantTokens := map[string]bool{"usnyc": true, "nycmny": true, "dallas": true}
	for _, k := range kinds {
		if !wantTokens[k] {
			t.Errorf("unexpected candidate token %q", k)
		}
		delete(wantTokens, k)
	}
	if len(wantTokens) != 0 {
		t.Errorf("missing candidates: %v (got %v)", wantTokens, kinds)
	}
}
