package drop

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

func TestSegments(t *testing.T) {
	got := segments("xe-0-0.cr1.lhr1.example.net", "example.net")
	// Rightmost first: lhr1, cr1, 0, 0, xe
	want := []string{"lhr1", "cr1", "0", "0", "xe"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
	if segments("foo.other.org", "example.net") != nil {
		t.Error("suffix mismatch should yield nil")
	}
}

func TestLookupStrict(t *testing.T) {
	d := geodict.MustDefault()
	// DRoP requires the segment to be exactly the code: "lhr15" fails.
	if locs := lookup(d, "lhr15", geodict.HintIATA); locs != nil {
		t.Error("lhr15 should not match (no digit handling in DRoP)")
	}
	if locs := lookup(d, "lhr", geodict.HintIATA); len(locs) != 1 {
		t.Errorf("lhr should match, got %v", locs)
	}
	if locs := lookup(d, "snjsca", geodict.HintCLLI); len(locs) != 1 {
		t.Errorf("snjsca should match CLLI, got %v", locs)
	}
	if locs := lookup(d, "dallas", geodict.HintPlace); len(locs) == 0 {
		t.Error("dallas should match place")
	}
}

// buildTrainingWorld creates a corpus where the suffix embeds bare IATA
// codes as the second segment from the end, with traceroute RTTs from a
// single distant VP.
func buildTrainingWorld(t *testing.T) (*itdk.Corpus, *rtt.Matrix, *geodict.Dictionary, *psl.List) {
	t.Helper()
	d := geodict.MustDefault()
	list := psl.MustDefault()
	corpus := itdk.NewCorpus("drop-train", false)
	vp := &rtt.VP{Name: "obs", City: "london", Country: "gb",
		Pos: d.Place("london")[0].Pos}
	m := rtt.NewMatrix([]*rtt.VP{vp})

	sites := []struct {
		code string
		city string
	}{
		{"fra", "frankfurt am main"}, {"ams", "amsterdam"}, {"prg", "prague"},
		{"mad", "madrid"}, {"vie", "vienna"},
	}
	id := 0
	for _, s := range sites {
		loc := d.Place(s.city)[0]
		for i := 0; i < 2; i++ {
			id++
			rid := fmt.Sprintf("N%d", id)
			r := &itdk.Router{ID: rid, Interfaces: []itdk.Interface{{
				Addr:     netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", id)),
				Hostname: fmt.Sprintf("cr%d.%s.example360.net", i, s.code),
			}}}
			if err := corpus.Add(r); err != nil {
				t.Fatal(err)
			}
			// Traceroute-observed RTT: heavily inflated but physical.
			rttMs := geo.MinRTTms(vp.Pos, loc.Pos)*3 + 10
			if err := m.SetTrace(rid, "obs", rtt.Sample{RTTms: rttMs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return corpus, m, d, list
}

func TestLearnAndGeolocate(t *testing.T) {
	corpus, m, d, list := buildTrainingWorld(t)
	rs := Learn(corpus, list, d, m)
	rule := rs.Rules["example360.net"]
	if rule == nil {
		t.Fatal("no rule learned")
	}
	if rule.PosFromEnd != 1 || rule.Type != geodict.HintIATA {
		t.Errorf("rule = %+v, want pos 1 iata", rule)
	}
	if rule.Consistency <= 0.5 {
		t.Errorf("consistency = %f", rule.Consistency)
	}
	loc, ok := rs.Geolocate("cr9.fra.example360.net", "example360.net", d)
	if !ok || loc.City != "frankfurt am main" {
		t.Errorf("geolocate = %v, %v", loc, ok)
	}
	// DRoP's digit limitation: "fra2" fails even though a human reads it.
	if _, ok := rs.Geolocate("cr9.fra2.example360.net", "example360.net", d); ok {
		t.Error("fra2 should not match DRoP's rigid rule")
	}
	// Unknown suffix.
	if _, ok := rs.Geolocate("cr9.fra.other.net", "other.net", d); ok {
		t.Error("unknown suffix should fail")
	}
}

// TestGeolocateTable sweeps Geolocate over the hit / miss / malformed
// input space with one learned ruleset.
func TestGeolocateTable(t *testing.T) {
	corpus, m, d, list := buildTrainingWorld(t)
	rs := Learn(corpus, list, d, m)
	cases := []struct {
		name, host, suffix string
		wantCity           string
		wantOK             bool
	}{
		{"hit iata", "cr9.ams.example360.net", "example360.net", "amsterdam", true},
		{"hit other site", "cr9.vie.example360.net", "example360.net", "vienna", true},
		{"miss unknown code", "cr9.qqq.example360.net", "example360.net", "", false},
		{"miss trailing digit", "cr9.fra2.example360.net", "example360.net", "", false},
		{"miss unlearned suffix", "cr9.fra.other.net", "other.net", "", false},
		{"malformed no prefix", "example360.net", "example360.net", "", false},
		{"malformed empty host", "", "example360.net", "", false},
		{"malformed wrong suffix", "cr9.fra.example360.org", "example360.net", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loc, ok := rs.Geolocate(tc.host, tc.suffix, d)
			if ok != tc.wantOK {
				t.Fatalf("Geolocate(%q) ok = %v, want %v", tc.host, ok, tc.wantOK)
			}
			if ok && loc.City != tc.wantCity {
				t.Errorf("Geolocate(%q) = %s, want %s", tc.host, loc.City, tc.wantCity)
			}
		})
	}
}

func TestDRoPNoCustomHints(t *testing.T) {
	corpus, m, d, list := buildTrainingWorld(t)
	rs := Learn(corpus, list, d, m)
	// "ash" resolves to Nashua (dictionary verbatim) even when the
	// operator means Ashburn — DRoP never learns deviations.
	loc, ok := rs.Geolocate("cr9.ash.example360.net", "example360.net", d)
	if !ok {
		t.Fatal("ash matches the IATA dictionary")
	}
	if loc.City != "nashua" {
		t.Errorf("DRoP should answer nashua, got %s", loc.City)
	}
}

func TestLooseConstraintAcceptsWrongContinentCity(t *testing.T) {
	// A 100ms traceroute RTT from London covers most of the planet; a
	// geohint for a far city on the same continent is "consistent".
	d := geodict.MustDefault()
	vpPos := d.Place("london")[0].Pos
	obs := []rtt.Measurement{{
		VP:     &rtt.VP{Name: "obs", Pos: vpPos},
		Sample: rtt.Sample{RTTms: 100},
	}}
	loc := d.Place("moscow")[0]
	if !traceConsistent(obs, []*geodict.Location{loc}) {
		t.Error("loose trace constraint should accept moscow from london at 100ms")
	}
	// But no observation at all means not consistent.
	if traceConsistent(nil, []*geodict.Location{loc}) {
		t.Error("no observations should not be consistent")
	}
}
