// Package drop reimplements the DRoP technique of Huffaker et al.
// (CCR 2014) as the paper describes it (§3.3, fig. 2), preserving the
// documented design limitations that Hoiho addresses:
//
//   - rules assume the geohint always sits at the same position relative
//     to the END of the hostname, as an entire punctuation-delimited
//     segment — a segment with trailing digits ("lhr15") does not match;
//   - a rule is kept when a simple MAJORITY (>50%) of its extractions
//     are consistent with training RTTs;
//   - the only RTTs available are those observed in the traceroutes that
//     built the topology — typically from a single, distant vantage
//     point — so the consistency test constrains locations only to
//     within a continent;
//   - dictionaries are used verbatim: DRoP never learns that an operator
//     repurposed or invented a geohint.
package drop

import (
	"sort"
	"strings"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// Rule is a learned DRoP rule: for a suffix, the geohint is the whole
// segment PosFromEnd positions before the suffix, interpreted with the
// Type dictionary.
type Rule struct {
	Suffix     string
	PosFromEnd int // 1 = segment immediately before the suffix
	Type       geodict.HintType

	// Consistency is the fraction of training extractions that were
	// consistent with traceroute RTTs (kept when > 0.5).
	Consistency float64
	Samples     int
}

// RuleSet maps suffixes to their learned rule.
type RuleSet struct {
	Rules map[string]*Rule
}

// segments splits the hostname prefix into the punctuation-delimited
// segments DRoP indexes, rightmost first.
func segments(host, suffix string) []string {
	host = strings.ToLower(host)
	suffix = strings.ToLower(suffix)
	if !strings.HasSuffix(host, "."+suffix) {
		return nil
	}
	prefix := strings.TrimSuffix(host, "."+suffix)
	segs := strings.FieldsFunc(prefix, func(r rune) bool { return r == '.' || r == '-' })
	// Reverse so index 0 is the segment nearest the suffix.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// lookup interprets a whole segment with one dictionary. DRoP requires
// the segment to be exactly the code — no digit stripping.
func lookup(d *geodict.Dictionary, seg string, t geodict.HintType) []*geodict.Location {
	var locs []*geodict.Location
	switch t {
	case geodict.HintIATA:
		if len(seg) != 3 {
			return nil
		}
		for _, a := range d.IATA(seg) {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintCLLI:
		if len(seg) != 6 {
			return nil
		}
		if c := d.CLLI(seg); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintLocode:
		if len(seg) != 5 {
			return nil
		}
		if c := d.Locode(seg); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintPlace:
		if len(seg) < 4 {
			return nil
		}
		locs = append(locs, d.Place(seg)...)
	}
	return locs
}

// hintTypes is the order DRoP tries dictionaries.
var hintTypes = []geodict.HintType{
	geodict.HintIATA, geodict.HintCLLI, geodict.HintLocode, geodict.HintPlace,
}

// Learn builds DRoP rules for every suffix in the corpus using only the
// traceroute-observed RTTs in the matrix (the paper's critique: the
// observing VP is rarely the closest, so these constraints are loose).
func Learn(corpus *itdk.Corpus, list *psl.List, dict *geodict.Dictionary, m *rtt.Matrix) *RuleSet {
	rs := &RuleSet{Rules: make(map[string]*Rule)}
	for _, group := range corpus.GroupBySuffix(list) {
		rule := learnSuffix(group, dict, m)
		if rule != nil {
			rs.Rules[group.Suffix] = rule
		}
	}
	return rs
}

func learnSuffix(group *itdk.SuffixGroup, dict *geodict.Dictionary, m *rtt.Matrix) *Rule {
	type key struct {
		pos int
		t   geodict.HintType
	}
	consistent := make(map[key]int)
	total := make(map[key]int)

	for _, rh := range group.Hosts {
		segs := segments(rh.Hostname, rh.Suffix)
		obs := m.TraceMeasurements(rh.Router.ID)
		for pos, seg := range segs {
			for _, t := range hintTypes {
				locs := lookup(dict, seg, t)
				if len(locs) == 0 {
					continue
				}
				k := key{pos + 1, t}
				total[k]++
				if traceConsistent(obs, locs) {
					consistent[k]++
				}
			}
		}
	}

	// Pick the (position, type) with the most consistent extractions;
	// keep it if a majority of its extractions were consistent.
	var best *Rule
	keys := make([]key, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if consistent[keys[i]] != consistent[keys[j]] {
			return consistent[keys[i]] > consistent[keys[j]]
		}
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		frac := float64(consistent[k]) / float64(total[k])
		if frac > 0.5 && consistent[k] >= 2 {
			best = &Rule{
				Suffix: group.Suffix, PosFromEnd: k.pos, Type: k.t,
				Consistency: frac, Samples: total[k],
			}
			break
		}
	}
	return best
}

// traceConsistent applies DRoP's loose constraint: every traceroute-
// observed RTT must be feasible for at least one interpretation. With
// trace RTTs of tens of milliseconds this only constrains locations to
// within a continent.
func traceConsistent(obs []rtt.Measurement, locs []*geodict.Location) bool {
	if len(obs) == 0 {
		return false
	}
	for _, o := range obs {
		ok := false
		for _, loc := range locs {
			if geo.RTTConsistent(o.VP.Pos, loc.Pos, o.Sample.RTTms, 1.0) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Geolocate applies the suffix's rule to a hostname. Multiple dictionary
// interpretations are disambiguated by population alone — DRoP has no
// facility ranking and no custom-hint table.
func (rs *RuleSet) Geolocate(host, suffix string, dict *geodict.Dictionary) (*geodict.Location, bool) {
	rule, ok := rs.Rules[suffix]
	if !ok {
		return nil, false
	}
	segs := segments(host, suffix)
	if rule.PosFromEnd > len(segs) {
		return nil, false
	}
	seg := segs[rule.PosFromEnd-1]
	locs := lookup(dict, seg, rule.Type)
	if len(locs) == 0 {
		return nil, false
	}
	best := locs[0]
	for _, loc := range locs[1:] {
		if loc.Population > best.Population {
			best = loc
		}
	}
	return best, true
}
