package dnswire

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// FuzzDNSMessage is the decode→encode→decode fixpoint fuzzer: any
// frame Unpack accepts must Pack again, decode back to a DeepEqual
// message, and re-encode byte-identically. Together with the no-panic
// guarantee on rejected frames, this is the codec's whole contract.
// The golden corpus seeds the fuzzer alongside the checked-in seeds
// under testdata/fuzz/FuzzDNSMessage.
func FuzzDNSMessage(f *testing.F) {
	frames, err := filepath.Glob(filepath.Join("testdata", "frames", "*.hex"))
	if err != nil {
		f.Fatal(err)
	}
	for _, fr := range frames {
		name := strings.TrimSuffix(filepath.Base(fr), ".hex")
		f.Add(loadFrame(f, name))
	}
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // header-only
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return // rejected input: not panicking is the whole assertion
		}
		p, err := m.Pack()
		if errors.Is(err, ErrMessageTooLong) {
			// Decompression can legitimately expand a near-64KiB frame
			// past the wire ceiling (a 2-byte pointer inflates to a full
			// name); the fixpoint claim applies to packable messages.
			return
		}
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v\n%#v", err, m)
		}
		m2, err := Unpack(p)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v\n%x", err, p)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode→encode→decode diverged:\n got %#v\nwant %#v", m2, m)
		}
		p2, err := m2.Pack()
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("encode is not a fixpoint:\n got %x\nwant %x", p2, p)
		}
	})
}
