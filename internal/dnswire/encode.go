package dnswire

// Pack encodes the message. Owner names and PTR targets are compressed
// against every name already written (RFC 1035 §4.1.4); the first
// occurrence of each suffix is the canonical pointer target, so
// encoding is deterministic — the same Message always yields the same
// bytes. A message that cannot fit 65535 bytes is ErrMessageTooLong.
func (m *Message) Pack() ([]byte, error) {
	return m.pack(MaxMessageLen, false)
}

// PackTruncated encodes the message to fit within limit bytes — the
// negotiated UDP payload size — by dropping whole records from the
// tail: additional records go first, then authority, then answers (the
// EDNS OPT record, which carries the size negotiation itself, is
// always kept). The TC bit is set only when an answer or authority
// record was dropped; losing additional data alone does not ask the
// client to retry over TCP. The header, question section, and OPT must
// fit outright, or the result is ErrMessageTooLong.
func (m *Message) PackTruncated(limit int) ([]byte, error) {
	if limit > MaxMessageLen {
		limit = MaxMessageLen
	}
	return m.pack(limit, true)
}

// packer accumulates the wire image and the compression map. The map
// records where each name suffix was written; mark/rollback undo a
// record that overflowed the size limit, compression entries included,
// so later records cannot point into bytes that were rolled away.
type packer struct {
	buf     []byte
	cmp     map[string]int
	cmpKeys []string // insertion log, for rollback
}

type packMark struct {
	buf, keys int
}

func (p *packer) mark() packMark { return packMark{len(p.buf), len(p.cmpKeys)} }

func (p *packer) rollback(m packMark) {
	for _, k := range p.cmpKeys[m.keys:] {
		delete(p.cmp, k)
	}
	p.cmpKeys = p.cmpKeys[:m.keys]
	p.buf = p.buf[:m.buf]
}

func (m *Message) pack(limit int, truncate bool) ([]byte, error) {
	if m.RCode > 0xFFF || (m.RCode > 0xF && m.EDNS == nil) {
		return nil, ErrBadRCode
	}
	if len(m.Questions) > MaxMessageLen {
		return nil, ErrMessageTooLong // section counts are 16-bit
	}
	p := &packer{buf: make([]byte, headerLen, 512), cmp: make(map[string]int)}

	// The OPT record is written last but reserved for throughout: no
	// earlier record may eat the bytes it needs.
	optLen := 0
	if m.EDNS != nil {
		optLen = 11 // root name + type + class + ttl + rdlength
		for _, o := range m.EDNS.Options {
			optLen += 4 + len(o.Data)
		}
	}

	for _, q := range m.Questions {
		if err := p.packName(q.Name, true); err != nil {
			return nil, err
		}
		p.buf = append(p.buf, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	if len(p.buf)+optLen > limit {
		return nil, ErrMessageTooLong // questions and OPT cannot be dropped
	}

	// Records are packed answer → authority → additional; the first one
	// that would overflow the limit stops the message there.
	full := true
	packSection := func(rrs []RR) (kept int, err error) {
		for _, rr := range rrs {
			if !full {
				return kept, nil
			}
			mk := p.mark()
			if err := p.packRR(rr); err != nil {
				return 0, err
			}
			if len(p.buf)+optLen > limit {
				p.rollback(mk)
				full = false
				return kept, nil
			}
			kept++
		}
		return kept, nil
	}
	an, err := packSection(m.Answers)
	if err != nil {
		return nil, err
	}
	ns, err := packSection(m.Authority)
	if err != nil {
		return nil, err
	}
	ar, err := packSection(m.Additional)
	if err != nil {
		return nil, err
	}
	dropped := len(m.Answers) - an + len(m.Authority) - ns
	if !full && !truncate {
		return nil, ErrMessageTooLong
	}
	if m.EDNS != nil {
		if err := p.packOPT(m.EDNS, m.RCode); err != nil {
			return nil, err
		}
		ar++
	}

	flags := uint16(m.RCode & 0xF)
	if m.Response {
		flags |= 0x8000
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 0x0400
	}
	if m.Truncated || dropped > 0 {
		flags |= 0x0200
	}
	if m.RecursionDesired {
		flags |= 0x0100
	}
	if m.RecursionAvailable {
		flags |= 0x0080
	}
	if m.Zero {
		flags |= 0x0040
	}
	if m.AuthenticData {
		flags |= 0x0020
	}
	if m.CheckingDisabled {
		flags |= 0x0010
	}
	h := p.buf[:headerLen]
	put16(h[0:], m.ID)
	put16(h[2:], flags)
	put16(h[4:], uint16(len(m.Questions)))
	put16(h[6:], uint16(an))
	put16(h[8:], uint16(ns))
	put16(h[10:], uint16(ar))
	return p.buf, nil
}

// packName writes a name, reusing an existing suffix via a compression
// pointer when compress is set. Every suffix actually written at an
// offset below 0x4000 (the 14-bit pointer ceiling) is registered as a
// future target, first occurrence winning.
func (p *packer) packName(name string, compress bool) error {
	labels, err := splitName(name)
	if err != nil {
		return err
	}
	for i := range labels {
		key := suffixKey(labels[i:])
		if off, ok := p.cmp[key]; ok && compress {
			p.buf = append(p.buf, 0xC0|byte(off>>8), byte(off))
			return nil
		}
		if off := len(p.buf); off < 0x4000 {
			if _, exists := p.cmp[key]; !exists {
				p.cmp[key] = off
				p.cmpKeys = append(p.cmpKeys, key)
			}
		}
		p.buf = append(p.buf, byte(len(labels[i])))
		p.buf = append(p.buf, labels[i]...)
	}
	p.buf = append(p.buf, 0)
	return nil
}

// suffixKey is the exact-bytes identity of a label suffix: length-
// prefixed labels, the uncompressed wire spelling. Compression is
// byte-exact (no case folding), which keeps encoding deterministic.
func suffixKey(labels [][]byte) string {
	n := 0
	for _, l := range labels {
		n += 1 + len(l)
	}
	key := make([]byte, 0, n)
	for _, l := range labels {
		key = append(key, byte(len(l)))
		key = append(key, l...)
	}
	return string(key)
}

// packRR writes one resource record: owner name (compressible), fixed
// header, and typed RDATA with its length backpatched.
func (p *packer) packRR(rr RR) error {
	if rr.Data == nil {
		return ErrBadRData
	}
	if err := p.packName(rr.Name, true); err != nil {
		return err
	}
	typ := rr.Data.Type()
	p.buf = append(p.buf,
		byte(typ>>8), byte(typ),
		byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL),
		0, 0) // RDLENGTH, backpatched below
	lenAt := len(p.buf) - 2
	start := len(p.buf)
	switch d := rr.Data.(type) {
	case A:
		p.buf = append(p.buf, d[:]...)
	case PTR:
		if err := p.packName(string(d), true); err != nil {
			return err
		}
	case TXT:
		for _, s := range d {
			if len(s) > 255 {
				return ErrBadRData
			}
			p.buf = append(p.buf, byte(len(s)))
			p.buf = append(p.buf, s...)
		}
	case LOC:
		p.buf = append(p.buf, d.Version, d.Size, d.HorizPre, d.VertPre)
		p.buf = append32(p.buf, d.Latitude)
		p.buf = append32(p.buf, d.Longitude)
		p.buf = append32(p.buf, d.Altitude)
	case Raw:
		if len(d.Data) > MaxMessageLen {
			return ErrBadRData
		}
		p.buf = append(p.buf, d.Data...)
	default: // optData or a foreign RData implementation
		return ErrBadOPT
	}
	rdlen := len(p.buf) - start
	if rdlen > MaxMessageLen {
		return ErrBadRData
	}
	put16(p.buf[lenAt:], uint16(rdlen))
	return nil
}

// packOPT writes the EDNS OPT pseudo-record: root owner, payload size
// in CLASS, extended rcode/version/flags in TTL, options as RDATA.
func (p *packer) packOPT(e *EDNS, rcode RCode) error {
	ttl := uint32(rcode>>4)<<24 | uint32(e.Version)<<16 | uint32(e.Z&0x7FFF)
	if e.DO {
		ttl |= 0x8000
	}
	p.buf = append(p.buf, 0, // root name
		byte(TypeOPT>>8), byte(TypeOPT),
		byte(e.UDPSize>>8), byte(e.UDPSize),
		byte(ttl>>24), byte(ttl>>16), byte(ttl>>8), byte(ttl),
		0, 0)
	lenAt := len(p.buf) - 2
	start := len(p.buf)
	for _, o := range e.Options {
		if len(o.Data) > MaxMessageLen {
			return ErrBadRData
		}
		p.buf = append(p.buf, byte(o.Code>>8), byte(o.Code), byte(len(o.Data)>>8), byte(len(o.Data)))
		p.buf = append(p.buf, o.Data...)
	}
	rdlen := len(p.buf) - start
	if rdlen > MaxMessageLen {
		return ErrBadRData
	}
	put16(p.buf[lenAt:], uint16(rdlen))
	return nil
}

func put16(p []byte, v uint16) {
	p[0], p[1] = byte(v>>8), byte(v)
}

func append32(p []byte, v uint32) []byte {
	return append(p, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
