package dnswire

// Unpack decodes a complete DNS message. It never panics, whatever the
// input: every length is bounds-checked against the frame, compression
// pointers are loop-safe (see unpackName), RDATA must exactly fit its
// declared RDLENGTH, and bytes after the last counted record are an
// error. An OPT record in the additional section is lifted into
// Message.EDNS (its extended-rcode bits merged into Message.RCode);
// OPT anywhere else, a second OPT, or an OPT with a non-root owner is
// ErrBadOPT.
func Unpack(p []byte) (*Message, error) {
	if len(p) < headerLen {
		return nil, ErrShortMessage
	}
	flags := be16(p[2:])
	m := &Message{
		ID:                 be16(p[0:]),
		Response:           flags&0x8000 != 0,
		Opcode:             Opcode(flags >> 11 & 0xF),
		Authoritative:      flags&0x0400 != 0,
		Truncated:          flags&0x0200 != 0,
		RecursionDesired:   flags&0x0100 != 0,
		RecursionAvailable: flags&0x0080 != 0,
		Zero:               flags&0x0040 != 0,
		AuthenticData:      flags&0x0020 != 0,
		CheckingDisabled:   flags&0x0010 != 0,
		RCode:              RCode(flags & 0xF),
	}
	qd, an, ns, ar := int(be16(p[4:])), int(be16(p[6:])), int(be16(p[8:])), int(be16(p[10:]))

	off := headerLen
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = unpackName(p, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(p) {
			return nil, ErrShortMessage
		}
		q.Type, q.Class = Type(be16(p[off:])), Class(be16(p[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	if m.Answers, off, err = unpackSection(p, off, an); err != nil {
		return nil, err
	}
	if m.Authority, off, err = unpackSection(p, off, ns); err != nil {
		return nil, err
	}
	for i := 0; i < ar; i++ {
		rr, end, err := unpackRR(p, off)
		if err != nil {
			return nil, err
		}
		if opt, ok := rr.Data.(optData); ok {
			if m.EDNS != nil || rr.Name != "." {
				return nil, ErrBadOPT
			}
			// The OPT header fields are repurposed (RFC 6891): CLASS is
			// the UDP payload size, TTL packs ext-rcode/version/flags.
			m.EDNS = &EDNS{
				UDPSize: uint16(rr.Class),
				Version: uint8(rr.TTL >> 16),
				DO:      rr.TTL&0x8000 != 0,
				Z:       uint16(rr.TTL & 0x7FFF),
				Options: opt.opts,
			}
			m.RCode |= RCode(rr.TTL>>24) << 4
		} else {
			m.Additional = append(m.Additional, rr)
		}
		off = end
	}
	if off != len(p) {
		return nil, ErrTrailingGarbage
	}
	return m, nil
}

// unpackSection decodes count records of the answer or authority
// section, where OPT pseudo-records may not appear.
func unpackSection(p []byte, off, count int) ([]RR, int, error) {
	var rrs []RR
	for i := 0; i < count; i++ {
		rr, end, err := unpackRR(p, off)
		if err != nil {
			return nil, 0, err
		}
		if _, ok := rr.Data.(optData); ok {
			return nil, 0, ErrBadOPT
		}
		rrs = append(rrs, rr)
		off = end
	}
	return rrs, off, nil
}

// unpackRR decodes one resource record, returning the offset just past
// its RDATA. The RDATA of known types must match the type's shape and
// consume RDLENGTH exactly; unknown types are preserved as Raw bytes.
func unpackRR(p []byte, off int) (RR, int, error) {
	name, off, err := unpackName(p, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(p) {
		return RR{}, 0, ErrShortMessage
	}
	typ := Type(be16(p[off:]))
	rr := RR{Name: name, Class: Class(be16(p[off+2:])), TTL: be32(p[off+4:])}
	rdlen := int(be16(p[off+8:]))
	off += 10
	end := off + rdlen
	if end > len(p) {
		return RR{}, 0, ErrShortMessage
	}
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return RR{}, 0, ErrBadRData
		}
		var a A
		copy(a[:], p[off:end])
		rr.Data = a
	case TypePTR:
		target, n, err := unpackName(p, off)
		if err != nil {
			return RR{}, 0, err
		}
		if n != end {
			return RR{}, 0, ErrBadRData
		}
		rr.Data = PTR(target)
	case TypeTXT:
		var txt TXT
		for pos := off; pos < end; {
			n := int(p[pos])
			pos++
			if pos+n > end {
				return RR{}, 0, ErrBadRData
			}
			txt = append(txt, string(p[pos:pos+n]))
			pos += n
		}
		rr.Data = txt
	case TypeLOC:
		if rdlen != 16 {
			return RR{}, 0, ErrBadRData
		}
		rr.Data = LOC{
			Version: p[off], Size: p[off+1], HorizPre: p[off+2], VertPre: p[off+3],
			Latitude:  be32(p[off+4:]),
			Longitude: be32(p[off+8:]),
			Altitude:  be32(p[off+12:]),
		}
	case TypeOPT:
		var opts []Option
		for pos := off; pos < end; {
			if pos+4 > end {
				return RR{}, 0, ErrBadRData
			}
			code, n := be16(p[pos:]), int(be16(p[pos+2:]))
			pos += 4
			if pos+n > end {
				return RR{}, 0, ErrBadRData
			}
			opts = append(opts, Option{Code: code, Data: append([]byte(nil), p[pos:pos+n]...)})
			pos += n
		}
		rr.Data = optData{opts: opts}
	default:
		rr.Data = Raw{RRType: typ, Data: append([]byte(nil), p[off:end]...)}
	}
	return rr, end, nil
}

func be16(p []byte) uint16 { return uint16(p[0])<<8 | uint16(p[1]) }

func be32(p []byte) uint32 {
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
}
