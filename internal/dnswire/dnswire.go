// Package dnswire is a self-contained DNS message codec — the wire
// layer under the geodns daemon. It packs and unpacks complete DNS
// messages (RFC 1035): header, questions, and the resource-record
// types the serving layer answers with (A, PTR, TXT, LOC) plus EDNS0
// (RFC 6891) payload-size negotiation. Unknown record types round-trip
// as opaque RDATA.
//
// The codec is built for hostile input. Decoding never panics on any
// byte string: every length is bounds-checked, compression pointers
// must jump strictly backwards with a hard hop budget (so a crafted
// pointer cycle terminates immediately), names are capped at their
// RFC wire limit, and trailing bytes after the last record are an
// error rather than silently ignored. Encoding is deterministic: the
// same Message always packs to the same bytes, with RFC 1035 name
// compression applied to owner names and PTR targets. PackTruncated
// implements the TC-bit policy a UDP responder needs: drop whole
// records from the tail until the message fits, keeping the OPT
// record, and set TC only when an answer or authority record was
// dropped.
//
// These properties are pinned by a golden corpus of hand-assembled
// frames (testdata/frames), a decode→encode→decode fixpoint fuzzer
// (FuzzDNSMessage), and table-driven verdict tests mapping each
// corrupted frame to its exact typed error.
package dnswire

import (
	"errors"
	"fmt"
)

// Type is a DNS resource-record or query type.
type Type uint16

// The record types the codec understands natively. Anything else
// decodes as Raw RDATA and re-encodes byte-for-byte.
const (
	TypeA   Type = 1
	TypePTR Type = 12
	TypeTXT Type = 16
	TypeLOC Type = 29
	TypeOPT Type = 41
	TypeANY Type = 255
)

// String names the type the way dig prints it.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypePTR:
		return "PTR"
	case TypeTXT:
		return "TXT"
	case TypeLOC:
		return "LOC"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. Geodns serves the Internet class only.
type Class uint16

const (
	ClassINET Class = 1
	ClassANY  Class = 255
)

// Opcode is the 4-bit operation field of the header. Geodns implements
// only OpcodeQuery; the codec preserves the rest for round-trips.
type Opcode uint8

const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// RCode is the response code. Values above 15 (extended rcodes such as
// BADVERS) need an EDNS OPT record to carry their upper bits; Pack
// enforces that.
type RCode uint16

const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
	RCodeBadVers  RCode = 16
)

// String names the rcode the way dig prints it.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	case RCodeBadVers:
		return "BADVERS"
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Decode and encode errors. Decoding distinguishes how a frame is bad
// so the golden-corpus verdict tests can pin each corruption class;
// all are matched with errors.Is.
var (
	// ErrShortMessage: the frame ends before a length it promised.
	ErrShortMessage = errors.New("dnswire: message truncated")
	// ErrBadLabel: a label length byte uses the reserved 0x40–0xBF range.
	ErrBadLabel = errors.New("dnswire: reserved label type")
	// ErrNameTooLong: a name exceeds 255 wire bytes (RFC 1035 §2.3.4),
	// counting every label walked through compression pointers.
	ErrNameTooLong = errors.New("dnswire: name exceeds 255 wire bytes")
	// ErrLabelTooLong: a presentation-format label exceeds 63 bytes.
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 bytes")
	// ErrPointerLoop: a compression pointer does not jump strictly
	// backwards, or the walk exceeds the hop budget. Both conditions
	// guarantee termination on crafted cycles.
	ErrPointerLoop = errors.New("dnswire: compression pointer loop")
	// ErrBadRData: a record's RDATA does not fit its type (wrong fixed
	// length, character-string or option overrunning RDLENGTH, a PTR
	// target not consuming the whole RDATA).
	ErrBadRData = errors.New("dnswire: rdata does not match its type")
	// ErrBadOPT: an OPT record outside the additional section, more
	// than one OPT, or an OPT with a non-root owner name.
	ErrBadOPT = errors.New("dnswire: malformed OPT record")
	// ErrTrailingGarbage: bytes remain after the last counted record.
	ErrTrailingGarbage = errors.New("dnswire: trailing bytes after message")
	// ErrBadName: a presentation-format name fails to parse on encode
	// (bad escape, empty label, empty name).
	ErrBadName = errors.New("dnswire: malformed name")
	// ErrMessageTooLong: the packed message exceeds 65535 bytes, or a
	// fixed section (header, questions, OPT) exceeds a PackTruncated
	// limit that only records may be dropped to meet.
	ErrMessageTooLong = errors.New("dnswire: message exceeds size limit")
	// ErrBadRCode: an extended rcode (>15) packed without an EDNS OPT
	// record to carry its upper bits, or an rcode above 12 bits.
	ErrBadRCode = errors.New("dnswire: extended rcode requires EDNS")
)

// headerLen is the fixed DNS header size.
const headerLen = 12

// MaxMessageLen is the largest message either transport can carry
// (the TCP two-byte length prefix bounds it).
const MaxMessageLen = 65535

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is one resource record. The concrete RDATA type in Data carries
// the record type; OPT pseudo-records never appear here — decoding
// lifts them into Message.EDNS, and encoding emits Message.EDNS as the
// final additional record.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type reports the record type carried by the RDATA.
func (rr *RR) Type() Type { return rr.Data.Type() }

// RData is the typed payload of a resource record.
type RData interface {
	// Type identifies the wire type this payload encodes as.
	Type() Type
}

// A is an IPv4 address record payload.
type A [4]byte

// Type implements RData.
func (A) Type() Type { return TypeA }

// PTR is a domain-name pointer payload (the target name, presentation
// format). Targets are compressed on encode and decompressed on
// decode, per RFC 1035's well-known-type rule.
type PTR string

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

// TXT is a text record payload: one or more character-strings, each at
// most 255 bytes.
type TXT []string

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

// LOC is an RFC 1876 location record payload. Fields are kept in wire
// units so arbitrary records round-trip exactly; NewLOC and LatLong
// convert to and from decimal degrees.
type LOC struct {
	Version  uint8 // must be 0 on records this package creates
	Size     uint8 // sphere diameter, exponent-mantissa cm encoding
	HorizPre uint8 // horizontal precision, same encoding
	VertPre  uint8 // vertical precision, same encoding
	// Latitude and Longitude are thousandths of an arcsecond offset
	// from 2^31 (the equator / prime meridian); Altitude is centimeters
	// above a base 100km below the WGS-84 ellipsoid.
	Latitude  uint32
	Longitude uint32
	Altitude  uint32
}

// Type implements RData.
func (LOC) Type() Type { return TypeLOC }

// locDegree is LOC wire units (milliarcseconds) per degree.
const locDegree = 3_600_000

// locAltitudeBase is the wire value of zero altitude (sea level).
const locAltitudeBase = 10_000_000

// NewLOC builds a LOC payload at the given coordinates with the RFC
// 1876 default precision fields (size 1m, horizontal 10km, vertical
// 10m) and sea-level altitude — the shape geodns serves for a located
// hostname, where the dictionary pins a city, not a street address.
func NewLOC(lat, long float64) LOC {
	return LOC{
		Size:      0x12, // 1e2 cm = 1m
		HorizPre:  0x16, // 1e6 cm = 10km
		VertPre:   0x13, // 1e3 cm = 10m
		Latitude:  uint32(int64(lat*locDegree) + 1<<31),
		Longitude: uint32(int64(long*locDegree) + 1<<31),
		Altitude:  locAltitudeBase,
	}
}

// LatLong converts the wire coordinates back to decimal degrees.
func (l LOC) LatLong() (lat, long float64) {
	lat = float64(int64(l.Latitude)-1<<31) / locDegree
	long = float64(int64(l.Longitude)-1<<31) / locDegree
	return lat, long
}

// Raw is the payload of a record type the codec has no model for. The
// bytes are preserved exactly; embedded compression pointers (which
// only well-known types may carry) are not interpreted.
type Raw struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (r Raw) Type() Type { return r.RRType }

// optData is the decoded body of an OPT record in transit between
// unpackRR and the EDNS extraction in Unpack. It is unexported: user
// messages express EDNS through Message.EDNS, never as a section RR.
type optData struct {
	opts []Option
}

func (optData) Type() Type { return TypeOPT }

// EDNS is the RFC 6891 OPT pseudo-record, lifted out of the additional
// section: UDP payload negotiation, the DO bit, and any options the
// peer sent (unknown options are preserved verbatim so foreign OPT
// data round-trips). The extended-rcode bits live in Message.RCode.
type EDNS struct {
	// UDPSize is the sender's advertised maximum UDP payload.
	UDPSize uint16
	// Version is the EDNS version; only 0 is defined.
	Version uint8
	// DO is the DNSSEC-OK flag.
	DO bool
	// Z preserves the 15 reserved flag bits for round-trips.
	Z uint16
	// Options are the EDNS options, in wire order.
	Options []Option
}

// Option is one EDNS option TLV.
type Option struct {
	Code uint16
	Data []byte
}

// Message is a decoded DNS message. Every header bit is modeled (the
// reserved Z bit included) so any frame that decodes re-encodes
// without information loss.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	Zero               bool // reserved header bit, preserved
	AuthenticData      bool
	CheckingDisabled   bool
	// RCode is the full response code: the header's 4 bits combined
	// with the EDNS extended bits when an OPT record is present.
	RCode RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR // OPT excluded; see EDNS
	EDNS       *EDNS
}

// Reply starts a response to q: same ID and opcode, QR set, the
// recursion-desired bit echoed, and the question section copied.
func Reply(q *Message) *Message {
	r := &Message{
		ID:               q.ID,
		Response:         true,
		Opcode:           q.Opcode,
		RecursionDesired: q.RecursionDesired,
	}
	r.Questions = append(r.Questions, q.Questions...)
	return r
}
