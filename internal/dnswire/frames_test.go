package dnswire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFrame reads a hand-assembled wire frame from testdata/frames:
// hex bytes separated by whitespace, '#' starting a comment.
func loadFrame(t testing.TB, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "frames", name+".hex"))
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	var sb strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(strings.Join(strings.Fields(line), ""))
	}
	p, err := hex.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("frame %s is not valid hex: %v", name, err)
	}
	return p
}

// frameVerdicts pins each golden frame to its decode outcome: nil for
// the canonical frames (which must also re-encode byte-identical), a
// specific typed error for each corruption class.
var frameVerdicts = []struct {
	name string
	err  error
}{
	{"query_txt", nil},
	{"response_compressed", nil},
	{"response_loc", nil},
	{"ptr_answer", nil},
	{"foreign_opt", nil},
	{"pointer_loop", ErrPointerLoop},
	{"pointer_forward", ErrPointerLoop},
	{"truncated_header", ErrShortMessage},
	{"truncated_question", ErrShortMessage},
	{"bad_label", ErrBadLabel},
	{"rdlength_overrun", ErrShortMessage},
	{"txt_overrun", ErrBadRData},
	{"edns_option_overrun", ErrBadRData},
	{"edns_rdlen_overrun", ErrShortMessage},
	{"double_opt", ErrBadOPT},
	{"opt_in_answer", ErrBadOPT},
	{"opt_nonroot", ErrBadOPT},
	{"trailing_garbage", ErrTrailingGarbage},
	{"name_too_long", ErrNameTooLong},
}

func TestGoldenFrames(t *testing.T) {
	for _, tc := range frameVerdicts {
		t.Run(tc.name, func(t *testing.T) {
			p := loadFrame(t, tc.name)
			m, err := Unpack(p)
			if tc.err != nil {
				if !errors.Is(err, tc.err) {
					t.Fatalf("Unpack error = %v, want %v", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			p2, err := m.Pack()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(p, p2) {
				t.Fatalf("re-encode diverged:\n got %x\nwant %x", p2, p)
			}
		})
	}
}

// TestGoldenFramesCoverDir fails when a frame file exists without a
// verdict entry, so new corpus additions cannot silently go untested.
func TestGoldenFramesCoverDir(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "frames", "*.hex"))
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool, len(frameVerdicts))
	for _, tc := range frameVerdicts {
		covered[tc.name] = true
	}
	if len(files) == 0 {
		t.Fatal("no frames found")
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".hex")
		if !covered[name] {
			t.Errorf("frame %s has no verdict entry", name)
		}
	}
}

// TestPointerPingPong covers the loop shape the strictly-decreasing
// rule exists for: two pointers bouncing between offsets where each
// target is below its pointer's position but not below the previous
// target (12 -> 20 is caught as forward; 22 -> 14 -> 16 ping-pongs).
func TestPointerPingPong(t *testing.T) {
	p := []byte{
		0, 0x11, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		1, 'a', 0xC0, 16, // offset 12: label "a", pointer -> 16
		1, 'b', 0xC0, 12, // offset 16: label "b", pointer -> 12
	}
	// Question name starts at 12: a -> ptr(16) -> b -> ptr(12): the
	// second hop's target 12 is below pos but not below lastTarget 16
	// on the *next* round (12 < 16 passes, then 16 >= 12 fails).
	if _, err := Unpack(p); !errors.Is(err, ErrPointerLoop) {
		t.Fatalf("error = %v, want ErrPointerLoop", err)
	}
}

// TestPointerChainNameTooLong builds a legal strictly-backwards
// pointer chain whose accumulated labels pass 255 wire bytes: the
// per-hop wire accounting must reject it even though every pointer is
// well-formed.
func TestPointerChainNameTooLong(t *testing.T) {
	buf := []byte{0, 0x12, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	label := append([]byte{63}, bytes.Repeat([]byte{'a'}, 63)...)
	// Segment 0 at offset 12: 63-byte label, then root.
	seg := make([]int, 5)
	seg[0] = len(buf)
	buf = append(buf, label...)
	buf = append(buf, 0)
	// Segments 1..4: 63-byte label, then a pointer to the previous
	// segment — each hop target strictly below the last.
	for i := 1; i < 5; i++ {
		seg[i] = len(buf)
		buf = append(buf, label...)
		buf = append(buf, 0xC0|byte(seg[i-1]>>8), byte(seg[i-1]))
	}
	// The question name is segment 4: five labels = 321 wire bytes.
	qname := seg[4]
	buf = append(buf, 0xC0|byte(qname>>8), byte(qname), 0, 16, 0, 1)
	// unpackName starts at the question offset; patch the header so the
	// question section begins there. Easiest: call unpackName directly.
	name, _, err := unpackName(buf, qname)
	if !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("error = %v (name %q), want ErrNameTooLong", err, name)
	}
	// A three-segment walk (193 wire bytes) stays legal.
	name, _, err = unpackName(buf, seg[2])
	if err != nil {
		t.Fatalf("three-segment chain: %v", err)
	}
	if want := strings.Repeat(strings.Repeat("a", 63)+".", 3); name != want {
		t.Fatalf("name = %q, want %q", name, want)
	}
}
