package dnswire

// Domain names cross the codec boundary as presentation-format strings
// — labels joined with dots, fully qualified with a trailing dot, root
// spelled "." — because that is what the serving layer looks up and
// what tests want to read. Label bytes that would be ambiguous or
// unprintable are escaped RFC 1035-style: `\.` and `\\` for the two
// metacharacters, `\DDD` (three decimal digits) for anything outside
// the visible-ASCII range. Decoding always emits this canonical form,
// so decode→encode→decode is a fixpoint even for names whose labels
// contain dots, backslashes, or arbitrary bytes.

// maxPointerHops bounds a decompression walk. Strictly-decreasing
// pointer targets already guarantee termination; the budget is a
// second, unconditional stop so a review of unpackName never has to
// trust the monotonicity argument alone (DESIGN.md §12).
const maxPointerHops = 127

// maxNameWire is the RFC 1035 §2.3.4 limit on a name's wire length:
// every label length byte plus label bytes plus the final zero.
const maxNameWire = 255

// maxLabel is the longest single label.
const maxLabel = 63

// splitName parses a presentation-format name into raw label byte
// slices. Both fully-qualified ("a.b.") and bare ("a.b") spellings are
// accepted; "." is the root (no labels). Empty names, empty labels,
// dangling or malformed escapes, 64-byte labels, and names beyond the
// 255-byte wire limit are errors.
func splitName(name string) ([][]byte, error) {
	if name == "" {
		return nil, ErrBadName
	}
	if name == "." {
		return nil, nil
	}
	var labels [][]byte
	var cur []byte
	i := 0
	for i < len(name) {
		switch c := name[i]; {
		case c == '\\':
			if i+1 >= len(name) {
				return nil, ErrBadName
			}
			d := name[i+1]
			if d >= '0' && d <= '9' {
				if i+3 >= len(name) || !isDigit(name[i+2]) || !isDigit(name[i+3]) {
					return nil, ErrBadName
				}
				v := int(d-'0')*100 + int(name[i+2]-'0')*10 + int(name[i+3]-'0')
				if v > 255 {
					return nil, ErrBadName
				}
				cur = append(cur, byte(v))
				i += 4
			} else {
				cur = append(cur, d)
				i += 2
			}
		case c == '.':
			if len(cur) == 0 {
				return nil, ErrBadName // leading dot or ".."
			}
			if len(cur) > maxLabel {
				return nil, ErrLabelTooLong
			}
			labels = append(labels, cur)
			cur = nil
			i++
		default:
			cur = append(cur, c)
			i++
		}
	}
	if len(cur) > 0 { // bare spelling: final label has no trailing dot
		if len(cur) > maxLabel {
			return nil, ErrLabelTooLong
		}
		labels = append(labels, cur)
	}
	wire := 1
	for _, l := range labels {
		wire += 1 + len(l)
	}
	if wire > maxNameWire {
		return nil, ErrNameTooLong
	}
	return labels, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// appendEscaped appends one label in canonical presentation form.
func appendEscaped(dst, label []byte) []byte {
	for _, b := range label {
		switch {
		case b == '.' || b == '\\':
			dst = append(dst, '\\', b)
		case b < '!' || b > '~':
			dst = append(dst, '\\', '0'+b/100, '0'+(b/10)%10, '0'+b%10)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// unpackName decodes the name starting at off, following compression
// pointers. It returns the canonical presentation form and the offset
// of the first byte after the name's in-place portion (i.e. after the
// first pointer, or after the terminating zero).
//
// Loop safety is structural, not heuristic: every pointer must target
// an offset strictly below both its own position and every previous
// target, which is exactly what a real encoder produces (each stored
// name's tail can only reference an earlier stored name) and which
// makes the walk's target sequence strictly decreasing — so it
// terminates. maxPointerHops is a belt-and-braces cap on top, and the
// 255-byte wire accounting bounds the label bytes walked between hops.
func unpackName(msg []byte, off int) (string, int, error) {
	var out []byte
	pos, next := off, -1
	hops, wire := 0, 0
	lastTarget := 1 << 30
	for {
		if pos >= len(msg) {
			return "", 0, ErrShortMessage
		}
		switch b := msg[pos]; {
		case b == 0:
			wire++
			if wire > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			if next < 0 {
				next = pos + 1
			}
			if len(out) == 0 {
				return ".", next, nil
			}
			return string(out), next, nil
		case b < 0x40: // ordinary label
			end := pos + 1 + int(b)
			if end > len(msg) {
				return "", 0, ErrShortMessage
			}
			wire += 1 + int(b)
			if wire > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			out = appendEscaped(out, msg[pos+1:end])
			out = append(out, '.')
			pos = end
		case b >= 0xC0: // compression pointer
			if pos+2 > len(msg) {
				return "", 0, ErrShortMessage
			}
			target := int(b&0x3F)<<8 | int(msg[pos+1])
			if next < 0 {
				next = pos + 2
			}
			if target >= pos || target >= lastTarget {
				return "", 0, ErrPointerLoop
			}
			hops++
			if hops > maxPointerHops {
				return "", 0, ErrPointerLoop
			}
			lastTarget = target
			pos = target
		default: // 0x40–0xBF: reserved label types
			return "", 0, ErrBadLabel
		}
	}
}
