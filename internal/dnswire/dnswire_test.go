package dnswire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// query builds a simple one-question query message.
func query(id uint16, name string, typ Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: typ, Class: ClassINET}},
	}
}

// mustPack fails the test on any pack error.
func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	p, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return p
}

// mustUnpack fails the test on any unpack error.
func mustUnpack(t *testing.T, p []byte) *Message {
	t.Helper()
	m, err := Unpack(p)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return m
}

func TestNameRoundTrip(t *testing.T) {
	cases := []string{
		".",
		"ash1.he.net.",
		"ash1.he.net", // bare spelling packs like the FQDN
		"a.b.c.d.e.f.g.",
		strings.Repeat("x", 63) + ".example.",
		`with\.dot.example.`,      // escaped dot inside a label
		`back\\slash.example.`,    // escaped backslash
		`sp\032ace.example.`,      // escaped space (non-printable range)
		`\001\255binary.example.`, // arbitrary bytes
	}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			m := query(1, name, TypeTXT)
			p := mustPack(t, m)
			got := mustUnpack(t, p).Questions[0].Name
			want := name
			if want != "." && !strings.HasSuffix(want, ".") {
				want += "."
			}
			if got != want {
				t.Errorf("round trip = %q, want %q", got, want)
			}
			// The canonical form must itself be a fixpoint.
			p2 := mustPack(t, query(1, got, TypeTXT))
			if !bytes.Equal(p, p2) {
				t.Errorf("canonical form re-packs differently")
			}
		})
	}
}

func TestNameErrors(t *testing.T) {
	cases := []struct {
		name string
		want error
	}{
		{"", ErrBadName},
		{"..", ErrBadName},
		{".leading.", ErrBadName},
		{`dangling\`, ErrBadName},
		{`bad\25`, ErrBadName},   // two-digit decimal escape
		{`big\256.`, ErrBadName}, // escape above 255
		{strings.Repeat("x", 64) + ".", ErrLabelTooLong},
		{strings.Repeat("abcdefgh.", 32), ErrNameTooLong}, // 32*9 = 288 wire bytes
	}
	for _, tc := range cases {
		if _, err := query(1, tc.name, TypeTXT).Pack(); !errors.Is(err, tc.want) {
			t.Errorf("Pack(%q) error = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// fullMessage exercises every modeled record type, compression, and
// EDNS in one message.
func fullMessage() *Message {
	return &Message{
		ID:               0xBEEF,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: true,
		RCode:            RCodeNoError,
		Questions:        []Question{{Name: "ash1.he.net.", Type: TypeANY, Class: ClassINET}},
		Answers: []RR{
			{Name: "ash1.he.net.", Class: ClassINET, TTL: 300,
				Data: TXT{"city=ashburn", "country=us"}},
			{Name: "ash1.he.net.", Class: ClassINET, TTL: 300,
				Data: PTR("ashburn.va.us.geo.invalid.")},
			{Name: "ash1.he.net.", Class: ClassINET, TTL: 300,
				Data: NewLOC(39.0437, -77.4875)},
			{Name: "ash1.he.net.", Class: ClassINET, TTL: 300,
				Data: A{192, 0, 2, 1}},
		},
		Additional: []RR{
			{Name: "meta.he.net.", Class: ClassINET, TTL: 60,
				Data: Raw{RRType: 99, Data: []byte{1, 2, 3}}},
		},
		EDNS: &EDNS{UDPSize: 1232, Options: []Option{{Code: 10, Data: []byte("cookiecookie")}}},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := fullMessage()
	p := mustPack(t, m)
	got := mustUnpack(t, p)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip diverged:\n got %#v\nwant %#v", got, m)
	}
	p2 := mustPack(t, got)
	if !bytes.Equal(p, p2) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestCompressionShrinksRepeatedNames(t *testing.T) {
	m := fullMessage()
	p := mustPack(t, m)
	// "ash1.he.net." appears five times; compressed, it is written once
	// (13 bytes) and referenced by 2-byte pointers afterwards.
	if n := bytes.Count(p, []byte("\x04ash1\x02he\x03net\x00")); n != 1 {
		t.Errorf("full owner name written %d times, want 1", n)
	}
	// The PTR target's "invalid" tail shares no suffix with the owners,
	// so it must appear in full exactly once too.
	if n := bytes.Count(p, []byte("\x07invalid\x00")); n != 1 {
		t.Errorf("PTR tail written %d times, want 1", n)
	}
	// The four answer owners compress to pointers at offset 12, where
	// the question name was written.
	if n := bytes.Count(p, []byte{0xC0, 0x0C}); n != 4 {
		t.Errorf("found %d pointers to the question name, want 4", n)
	}
}

func TestPackTruncated(t *testing.T) {
	m := fullMessage()
	full := mustPack(t, m)
	limit := len(full) - 1 // force at least the last record out
	p, err := m.PackTruncated(limit)
	if err != nil {
		t.Fatalf("PackTruncated: %v", err)
	}
	if len(p) > limit {
		t.Fatalf("truncated message is %d bytes, limit %d", len(p), limit)
	}
	got := mustUnpack(t, p)
	if got.EDNS == nil {
		t.Error("OPT record dropped by truncation; it must survive")
	}
	if len(got.Additional) != 0 {
		t.Errorf("additional kept %d records, want 0 (dropped first)", len(got.Additional))
	}
	// Dropping the additional record alone must not set TC.
	if got.Truncated {
		t.Error("TC set although no answer/authority was dropped")
	}

	// Squeeze until answers drop: now TC must be set. The question (17
	// bytes) plus OPT (27 bytes) floor is 56; 62 admits no answer.
	p, err = m.PackTruncated(headerLen + 50)
	if err != nil {
		t.Fatalf("PackTruncated(tight): %v", err)
	}
	got = mustUnpack(t, p)
	if !got.Truncated {
		t.Error("TC clear although answers were dropped")
	}
	if len(got.Answers) >= len(m.Answers) {
		t.Errorf("answers = %d, want fewer than %d", len(got.Answers), len(m.Answers))
	}
	if got.EDNS == nil {
		t.Error("OPT record lost under tight truncation")
	}

	// A limit the question+OPT cannot meet is an error, not silence.
	if _, err := m.PackTruncated(headerLen); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("impossible limit error = %v, want ErrMessageTooLong", err)
	}
}

func TestExtendedRCode(t *testing.T) {
	m := query(7, "v.example.", TypeTXT)
	m.Response = true
	m.RCode = RCodeBadVers // 16: needs the OPT extended bits
	if _, err := m.Pack(); !errors.Is(err, ErrBadRCode) {
		t.Fatalf("BADVERS without EDNS error = %v, want ErrBadRCode", err)
	}
	m.EDNS = &EDNS{UDPSize: 512}
	p := mustPack(t, m)
	got := mustUnpack(t, p)
	if got.RCode != RCodeBadVers {
		t.Errorf("rcode = %v, want BADVERS", got.RCode)
	}
	if got.RCode.String() != "BADVERS" {
		t.Errorf("String() = %q", got.RCode.String())
	}
}

func TestLOCConversion(t *testing.T) {
	cases := [][2]float64{
		{39.0437, -77.4875},
		{-33.8688, 151.2093},
		{0, 0},
		{90, 180},
		{-90, -180},
	}
	for _, c := range cases {
		loc := NewLOC(c[0], c[1])
		lat, long := loc.LatLong()
		if math.Abs(lat-c[0]) > 1e-6 || math.Abs(long-c[1]) > 1e-6 {
			t.Errorf("LOC(%v) round trip = (%v, %v)", c, lat, long)
		}
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := query(42, "ash1.he.net.", TypeTXT)
	r := Reply(q)
	if r.ID != 42 || !r.Response || !r.RecursionDesired {
		t.Errorf("reply header = %+v", r)
	}
	if !reflect.DeepEqual(r.Questions, q.Questions) {
		t.Errorf("reply questions = %+v", r.Questions)
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	p := append(mustPack(t, query(1, "a.example.", TypeTXT)), 0xDE, 0xAD)
	if _, err := Unpack(p); !errors.Is(err, ErrTrailingGarbage) {
		t.Errorf("error = %v, want ErrTrailingGarbage", err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || TypeLOC.String() != "LOC" || Type(7).String() != "TYPE7" {
		t.Error("Type.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(9).String() != "RCODE9" {
		t.Error("RCode.String mismatch")
	}
}
