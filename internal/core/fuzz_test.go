package core

import (
	"strings"
	"testing"
)

// FuzzReadConventions: arbitrary conventions files must never panic and
// anything accepted must re-serialise without error.
func FuzzReadConventions(f *testing.F) {
	f.Add("suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\n" +
		"regex iata hint ^.+\\.([a-z]{3})\\d*\\.a\\.net$\n" +
		"learned iata ash 39.0438 -77.4874 ashburn|va|us tp=4 fp=0 collide=true\n")
	f.Add("# empty\n")
	f.Add("suffix")
	f.Add("suffix a.net good tp=x fp=0 fn=0 unk=0 hints=1")
	f.Fuzz(func(t *testing.T, in string) {
		res, err := ReadConventions(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteConventions(&sb, res); err != nil {
			t.Fatalf("accepted conventions failed to serialise: %v", err)
		}
		// And the serialisation must parse back.
		if _, err := ReadConventions(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
	})
}
