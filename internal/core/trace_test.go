// Tracing integration tests for the pipeline; like the parallel tests,
// they need synth and so live in core_test.
package core_test

import (
	"bytes"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/obs"
)

// TestTracedRunParallel runs the traced pipeline on the worker pool and
// checks the span tree is complete and worker-attributed. Run with
// -race this is the tentpole's concurrency proof: many workers ending
// spans into one tracer.
func TestTracedRunParallel(t *testing.T) {
	w := testWorld(t)
	cfg := core.DefaultConfig()
	cfg.Workers = 8
	cfg.Tracer = obs.New(obs.Options{RetainSpans: true})
	if _, err := core.Run(w.Inputs(), cfg); err != nil {
		t.Fatal(err)
	}

	recs := cfg.Tracer.Export()
	if len(recs) == 0 {
		t.Fatal("traced run exported no spans")
	}
	groups, runs := 0, 0
	for _, r := range recs {
		switch r.Name {
		case "run":
			runs++
			if r.Counters["suffix_groups"] == 0 {
				t.Errorf("run span has no suffix_groups counter: %+v", r)
			}
			if r.Counters["matchers_compiled"] == 0 {
				t.Errorf("run span counted no compiled matchers: %+v", r)
			}
		case "group":
			groups++
			if r.Key == "" {
				t.Errorf("group span without suffix key: %+v", r)
			}
			if r.Worker < 1 || r.Worker > 8 {
				t.Errorf("group span worker %d outside pool 1..8", r.Worker)
			}
			if r.Parent == 0 {
				t.Errorf("group span %q detached from run span", r.Key)
			}
		}
	}
	if runs != 1 {
		t.Fatalf("exported %d run spans, want 1", runs)
	}
	if g := int(findRun(t, recs).Counters["suffix_groups"]); groups != g {
		t.Fatalf("exported %d group spans, run counted %d groups", groups, g)
	}

	var buf bytes.Buffer
	if err := cfg.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSONL export")
	}
}

func findRun(t *testing.T, recs []obs.TraceRecord) obs.TraceRecord {
	t.Helper()
	for _, r := range recs {
		if r.Name == "run" {
			return r
		}
	}
	t.Fatal("no run span")
	return obs.TraceRecord{}
}

// TestTracedCountersWorkerInvariant checks that the aggregated stage
// counters — hostnames seen, tagged, RTT checks, evaluations — do not
// depend on the worker count: the same work happens no matter how it is
// scheduled.
func TestTracedCountersWorkerInvariant(t *testing.T) {
	w := testWorld(t)
	counters := func(workers int) map[string]int64 {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		cfg.Tracer = obs.New(obs.Options{})
		if _, err := core.Run(w.Inputs(), cfg); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]int64)
		for _, row := range cfg.Tracer.Summary().Stages {
			if row.Name != "stage2" && row.Name != "learn" {
				continue
			}
			for k, v := range row.Counters {
				out[row.Name+"/"+k] = v
			}
		}
		return out
	}

	seq := counters(1)
	if seq["stage2/hostnames"] == 0 || seq["learn/evaluations"] == 0 {
		t.Fatalf("sequential run recorded implausible counters: %v", seq)
	}
	par := counters(8)
	if len(par) != len(seq) {
		t.Fatalf("parallel counters %v, sequential %v", par, seq)
	}
	for k, v := range seq {
		if par[k] != v {
			t.Errorf("counter %s: workers=8 got %d, workers=1 got %d", k, par[k], v)
		}
	}
}
