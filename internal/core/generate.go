package core

import (
	"hoiho/internal/geodict"
	"hoiho/internal/hostname"
	"hoiho/internal/rex"
)

// capSpec describes how to render one special (captured) run.
type capSpec struct {
	role      rex.Role
	kind      rex.Kind
	n         int
	prefixLen int // >0: capture only the first prefixLen characters
}

// hintCaptureSpec returns the capture component spec for a geohint type.
func hintCaptureSpec(t geodict.HintType, text string) capSpec {
	switch t {
	case geodict.HintIATA:
		return capSpec{role: rex.RoleHint, kind: rex.KindAlphaFixed, n: 3}
	case geodict.HintICAO:
		return capSpec{role: rex.RoleHint, kind: rex.KindAlphaFixed, n: 4}
	case geodict.HintLocode:
		return capSpec{role: rex.RoleHint, kind: rex.KindAlphaFixed, n: 5}
	case geodict.HintCLLI:
		return capSpec{role: rex.RoleHint, kind: rex.KindAlphaFixed, n: 6}
	case geodict.HintFacility:
		return capSpec{role: rex.RoleHint, kind: rex.KindAlnum}
	default: // place names
		return capSpec{role: rex.RoleHint, kind: rex.KindAlpha}
	}
}

// baseRegexes implements phase 1 of appendix A for one tagged hostname
// and one of its apparent geohints: regexes that extract the geohint
// (and any state/country annotation) at its observed position, with
// structural components for the labels carrying captures,
// punctuation-excluding components for other trailing labels, and both
// a ".+" and a per-label "[^\.]+" variant for the leading labels.
func baseRegexes(t *Tagged, tag Apparent) []*rex.Regex {
	h := t.H

	// Map (span,run) -> capture spec for the hint and annotations.
	specials := make(map[[2]int]capSpec)
	spanCapture := make(map[int]capSpec) // whole-span captures (facility)

	if tag.Type == geodict.HintFacility {
		spanCapture[tag.SpanIdx] = hintCaptureSpec(tag.Type, tag.Text)
	} else if tag.Run2Span >= 0 {
		// Split CLLI: capture 4-letter and 2-letter halves.
		specials[[2]int{tag.SpanIdx, tag.RunIdx}] = capSpec{role: rex.RoleCLLI4, kind: rex.KindAlphaFixed, n: 4}
		specials[[2]int{tag.Run2Span, tag.Run2Idx}] = capSpec{role: rex.RoleCLLI2, kind: rex.KindAlphaFixed, n: 2}
	} else {
		spec := hintCaptureSpec(tag.Type, tag.Text)
		spec.prefixLen = tag.PrefixLen
		specials[[2]int{tag.SpanIdx, tag.RunIdx}] = spec
	}
	if tag.CCSpan >= 0 {
		specials[[2]int{tag.CCSpan, tag.CCRun}] = capSpec{
			role: rex.RoleCountry, kind: rex.KindAlphaFixed, n: len(tag.Country)}
	}
	if tag.StSpan >= 0 {
		specials[[2]int{tag.StSpan, tag.StRun}] = capSpec{
			role: rex.RoleState, kind: rex.KindAlphaFixed, n: len(tag.State)}
	}

	// Which labels carry captures?
	specialLabel := make(map[int]bool)
	for key := range specials {
		specialLabel[h.Spans[key[0]].Label] = true
	}
	for si := range spanCapture {
		specialLabel[h.Spans[si].Label] = true
	}
	firstSpecial := len(h.Labels)
	for li := range h.Labels {
		if specialLabel[li] {
			firstSpecial = li
			break
		}
	}
	if firstSpecial == len(h.Labels) {
		return nil
	}

	// Render labels from firstSpecial onward.
	var tail []rex.Component
	for li := firstSpecial; li < len(h.Labels); li++ {
		if li > firstSpecial {
			tail = append(tail, rex.Component{Kind: rex.KindDot})
		}
		if specialLabel[li] {
			tail = append(tail, renderLabel(h, li, specials, spanCapture)...)
		} else {
			tail = append(tail, rex.Component{Kind: rex.KindNotDot})
		}
	}
	tail = append(tail, rex.Component{Kind: rex.KindLiteral, Lit: "." + h.Suffix})

	hintType := tag.Type
	var out []*rex.Regex
	if firstSpecial == 0 {
		out = append(out, rex.New(hintType, tail...))
	} else {
		// Variant A: collapse leading labels into ".+".
		a := []rex.Component{{Kind: rex.KindAny}, {Kind: rex.KindDot}}
		out = append(out, rex.New(hintType, append(a, tail...)...))
		// Variant B: one "[^\.]+" per leading label.
		var b []rex.Component
		for i := 0; i < firstSpecial; i++ {
			b = append(b, rex.Component{Kind: rex.KindNotDot}, rex.Component{Kind: rex.KindDot})
		}
		out = append(out, rex.New(hintType, append(b, tail...)...))
	}
	// Drop structurally invalid candidates.
	valid := out[:0]
	for _, r := range out {
		if r.Validate() == nil {
			valid = append(valid, r)
		}
	}
	return valid
}

// renderLabel renders one label structurally: captured runs become
// capture groups, other alphabetic runs become [a-z]+, digit gaps become
// \d+, and span separators become dashes.
func renderLabel(h *hostname.Hostname, labelIdx int, specials map[[2]int]capSpec, spanCapture map[int]capSpec) []rex.Component {
	var comps []rex.Component
	first := true
	for si := range h.Spans {
		sp := &h.Spans[si]
		if sp.Label != labelIdx {
			continue
		}
		if !first {
			comps = append(comps, rex.Component{Kind: rex.KindDash})
		}
		first = false
		if spec, ok := spanCapture[si]; ok {
			comps = append(comps, rex.Component{
				Kind: spec.kind, N: spec.n, Capture: true, Role: spec.role})
			continue
		}
		comps = append(comps, renderSpan(sp, si, specials)...)
	}
	return comps
}

// renderSpan renders the alternating alpha/digit structure of a span.
func renderSpan(sp *hostname.Span, spanIdx int, specials map[[2]int]capSpec) []rex.Component {
	var comps []rex.Component
	text := sp.Text
	i := 0
	runIdx := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c >= 'a' && c <= 'z':
			j := i
			for j < len(text) && text[j] >= 'a' && text[j] <= 'z' {
				j++
			}
			runLen := j - i
			if spec, ok := specials[[2]int{spanIdx, runIdx}]; ok {
				if spec.prefixLen > 0 && spec.prefixLen < runLen {
					// Capture the prefix; the remainder generalises to
					// a variable alphabetic sequence.
					comps = append(comps,
						rex.Component{Kind: spec.kind, N: spec.n, Capture: true, Role: spec.role},
						rex.Component{Kind: rex.KindAlpha})
				} else {
					comps = append(comps, rex.Component{
						Kind: spec.kind, N: spec.n, Capture: true, Role: spec.role})
				}
			} else {
				comps = append(comps, rex.Component{Kind: rex.KindAlpha})
			}
			runIdx++
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(text) && text[j] >= '0' && text[j] <= '9' {
				j++
			}
			comps = append(comps, rex.Component{Kind: rex.KindDigits})
			i = j
		default:
			// Unexpected byte inside a span; be conservative.
			comps = append(comps, rex.Component{Kind: rex.KindNotDot})
			i++
		}
	}
	return comps
}

// generateCandidates runs phases 1-3 over a suffix group's tagged
// hostnames: base regexes for every apparent geohint, digit-merges of
// similar pairs, and character-class specializations, deduplicated.
func generateCandidates(tagged []*Tagged, maxCandidates int) []*rex.Regex {
	var pool []*rex.Regex
	for _, t := range tagged {
		for _, tag := range t.Apparent {
			pool = append(pool, baseRegexes(t, tag)...)
		}
	}
	pool = rex.Dedupe(pool)
	rex.SortStable(pool)
	if len(pool) > maxCandidates {
		pool = pool[:maxCandidates]
	}

	// Phase 2: digit merges. Only regexes with the same hint type can
	// merge; quadratic in the pool but cheap per comparison.
	var merged []*rex.Regex
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			if m, ok := rex.MergeDigits(pool[i], pool[j]); ok {
				merged = append(merged, m)
			}
		}
	}
	pool = rex.Dedupe(append(pool, merged...))

	// Phase 3: embed character classes using the group's hostnames.
	hostnames := make([]string, 0, len(tagged))
	for _, t := range tagged {
		hostnames = append(hostnames, t.H.Full)
	}
	var specialized []*rex.Regex
	for _, r := range pool {
		s := rex.Specialize(r, hostnames)
		if s != r && s.Validate() == nil {
			specialized = append(specialized, s)
		}
	}
	pool = rex.Dedupe(append(pool, specialized...))
	rex.SortStable(pool)
	if len(pool) > maxCandidates {
		pool = pool[:maxCandidates]
	}
	return pool
}
