package core

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/itdk"
)

// TestRunSuffixZeroTagShortCircuit is the regression test for the
// Run/RunSuffix divergence: a suffix whose hostnames all parse but
// carry zero apparent geohints (here, routers without RTT samples) must
// short-circuit before candidate generation in BOTH entry points, since
// they now share runGroup. Previously RunSuffix skipped the anyTag
// check and fed the untagged group to the candidate generator.
func TestRunSuffixZeroTagShortCircuit(t *testing.T) {
	f := newFixture(t)
	for i := 1; i <= 3; i++ {
		r := &itdk.Router{ID: fmt.Sprintf("Z%d", i), Interfaces: []itdk.Interface{{
			Addr:     netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", i)),
			Hostname: fmt.Sprintf("cr%d.lhr%d.notags.net", i, i),
		}}}
		if err := f.corpus.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	nc, tagged, err := RunSuffix(f.inputs(), DefaultConfig(), "notags.net")
	if err != nil {
		t.Fatal(err)
	}
	if nc != nil {
		t.Errorf("zero-tag suffix yielded a convention: %+v", nc)
	}
	if len(tagged) != 3 {
		t.Errorf("tagged = %d hostnames, want 3 (parse results are still returned)", len(tagged))
	}
	for _, tg := range tagged {
		if tg.HasTags() {
			t.Errorf("hostname %s should carry no tags", tg.RH.Hostname)
		}
	}

	// Run must agree suffix-for-suffix: notags.net contributes nothing.
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SuffixesWithGeohint != 0 || len(res.NCs) != 0 ||
		res.RoutersWithGeohint != 0 || res.RoutersGeolocated != 0 {
		t.Errorf("zero-tag corpus produced non-empty result: %+v", res)
	}
}

// TestRunWorkersFixtureEquivalence checks the deterministic merge on
// the hand-built multi-suffix fixture: any worker count must reproduce
// the sequential Result, counters and serialized conventions alike.
func TestRunWorkersFixtureEquivalence(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	cities := []string{"munich", "stuttgart", "dresden", "hamburg"}
	regions := []string{"by", "bw", "sn", "hh"}
	for i, city := range cities {
		f.addRouter(fmt.Sprintf("M%d", i), f.place(city, regions[i], "de"),
			fmt.Sprintf("pos-%d.%s%d.de.alter.net", i, city, i))
	}

	run := func(workers int) (*Result, string) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := Run(f.inputs(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := WriteConventions(&b, res); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}

	base, baseText := run(1)
	if len(base.NCs) == 0 {
		t.Fatal("fixture learned no conventions")
	}
	for _, workers := range []int{0, 2, 8} {
		res, text := run(workers)
		if text != baseText {
			t.Errorf("workers=%d conventions differ from sequential:\n%s\nvs\n%s",
				workers, text, baseText)
		}
		if res.SuffixesWithGeohint != base.SuffixesWithGeohint ||
			res.RoutersWithGeohint != base.RoutersWithGeohint ||
			res.RoutersGeolocated != base.RoutersGeolocated {
			t.Errorf("workers=%d counters = (%d, %d, %d), want (%d, %d, %d)", workers,
				res.SuffixesWithGeohint, res.RoutersWithGeohint, res.RoutersGeolocated,
				base.SuffixesWithGeohint, base.RoutersWithGeohint, base.RoutersGeolocated)
		}
	}
}
