package core

import (
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/rex"
)

// mkIATARegex builds ^.+\.([a-z]{3})\d*\.<suffix>$.
func mkIATARegex(suffix string) *rex.Regex {
	re, err := rex.ParsePattern(geodict.HintIATA,
		`^.+\.([a-z]{3})\d*\.`+quoteSuffix(suffix)+`$`, []rex.Role{rex.RoleHint})
	if err != nil {
		panic(err)
	}
	return re
}

func quoteSuffix(s string) string {
	out := ""
	for _, r := range s {
		if r == '.' {
			out += `\.`
		} else {
			out += string(r)
		}
	}
	return out
}

func TestOutcomeClassification(t *testing.T) {
	f := newFixture(t)
	london := f.place("london", "", "gb")
	tokyo := f.place("tokyo", "", "jp")

	// N1: London router, hostname says lhr -> TP.
	f.addRouter("N1", london, "ae-1.cr1.lhr1.out.net")
	// N2: London router, hostname says nrt (Tokyo) -> FP.
	f.addRouter("N2", london, "ae-1.cr1.nrt1.out.net")
	// N3: Tokyo router, hostname says zzq (not in dictionary) -> UNK.
	f.addRouter("N3", tokyo, "ae-1.cr1.zzq1.out.net")
	// N4: London router, hostname in a shape the regex cannot match but
	// carrying an apparent geohint -> FN.
	f.addRouter("N4", london, "lhr-cr1.out.net")

	tagged := tagAll(t, f)
	if len(tagged) != 4 {
		t.Fatalf("tagged = %d", len(tagged))
	}
	e := newEvalCtx(f.inputs(), DefaultConfig())
	re := mkIATARegex("out.net")
	ev := e.evaluateSet([]*rex.Regex{re}, tagged)

	want := map[string]Outcome{
		"ae-1.cr1.lhr1.out.net": OutcomeTP,
		"ae-1.cr1.nrt1.out.net": OutcomeFP,
		"ae-1.cr1.zzq1.out.net": OutcomeUNK,
		"lhr-cr1.out.net":       OutcomeFN,
	}
	for hi, ho := range ev.PerHost {
		host := tagged[hi].H.Full
		if ho.Outcome != want[host] {
			t.Errorf("%s: outcome = %v, want %v", host, ho.Outcome, want[host])
		}
	}
	if ev.Tally.TP != 1 || ev.Tally.FP != 1 || ev.Tally.UNK != 1 || ev.Tally.FN != 1 {
		t.Errorf("tally = %+v", ev.Tally)
	}
}

func TestOutcomeNoneWithoutRTT(t *testing.T) {
	f := newFixture(t)
	// Hostname with an IATA-shaped token but no RTT samples at all.
	f.nextIP++
	r := &itdk.Router{ID: "N1", Interfaces: []itdk.Interface{{
		Addr:     netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", f.nextIP%250+1)),
		Hostname: "ae-1.cr1.lhr1.out.net",
	}}}
	if err := f.corpus.Add(r); err != nil {
		t.Fatal(err)
	}
	tagged := tagAll(t, f)
	e := newEvalCtx(f.inputs(), DefaultConfig())
	ev := e.evaluateSet([]*rex.Regex{mkIATARegex("out.net")}, tagged)
	if ev.PerHost[0].Outcome != OutcomeNone {
		t.Errorf("no-RTT router outcome = %v, want none", ev.PerHost[0].Outcome)
	}
}

// TestAnnotationContradictionIsFP: a regex extracting a country code
// that contradicts every dictionary interpretation yields FP.
func TestAnnotationContradictionIsFP(t *testing.T) {
	f := newFixture(t)
	london := f.place("london", "", "gb")
	// Hostname pairs lhr with "jp" — the annotation contradicts GB.
	f.addRouter("N1", london, "ae-1.cr1.lhr1.jp.out.net")
	tagged := tagAll(t, f)
	re, err := rex.ParsePattern(geodict.HintIATA,
		`^.+\.([a-z]{3})\d*\.([a-z]{2})\.out\.net$`,
		[]rex.Role{rex.RoleHint, rex.RoleCountry})
	if err != nil {
		t.Fatal(err)
	}
	e := newEvalCtx(f.inputs(), DefaultConfig())
	ev := e.evaluateSet([]*rex.Regex{re}, tagged)
	if ev.PerHost[0].Outcome != OutcomeFP {
		t.Errorf("outcome = %v, want FP (annotation contradiction)", ev.PerHost[0].Outcome)
	}
}

// TestMissedAnnotationIsFN: the hostname carries "lhr ... uk" and the
// regex extracts only "lhr" — paper §5.3 charges an FN.
func TestMissedAnnotationIsFN(t *testing.T) {
	f := newFixture(t)
	london := f.place("london", "", "gb")
	f.addRouter("N1", london, "ae-1.cr1.lhr1.uk.out.net")
	tagged := tagAll(t, f)
	// Regex that matches but ignores the country label.
	re, err := rex.ParsePattern(geodict.HintIATA,
		`^.+\.([a-z]{3})\d*\.[a-z]{2}\.out\.net$`, []rex.Role{rex.RoleHint})
	if err != nil {
		t.Fatal(err)
	}
	e := newEvalCtx(f.inputs(), DefaultConfig())
	ev := e.evaluateSet([]*rex.Regex{re}, tagged)
	if ev.PerHost[0].Outcome != OutcomeFN {
		t.Errorf("outcome = %v, want FN (missed uk annotation)", ev.PerHost[0].Outcome)
	}
}

// TestICAOConvention: operators rarely use ICAO codes (paper §2 finds no
// systematic use), but the machinery supports them.
func TestICAOConvention(t *testing.T) {
	f := newFixture(t)
	sites := []struct {
		icao                  string
		city, region, country string
	}{
		{"egll", "london", "", "gb"},
		{"eddf", "frankfurt am main", "he", "de"},
		{"ksjc", "san jose", "ca", "us"},
		{"rjtt", "tokyo", "", "jp"},
	}
	id := 0
	for _, s := range sites {
		loc := f.place(s.city, s.region, s.country)
		for i := 1; i <= 3; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), loc,
				fmt.Sprintf("ae-%d.core%d.%s.icao.net", i, i, s.icao))
		}
	}
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "icao.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	if got := nc.HintTypes(); len(got) != 1 || got[0] != geodict.HintICAO {
		t.Errorf("hint types = %v, want icao", got)
	}
	if !nc.Class.Usable() {
		t.Errorf("class = %s", nc.Class)
	}
}

// TestComplexEncodingLimitation documents the §7 limitation: AT&T-style
// five-character codes with no punctuation around them ("atngat",
// "dlltx" fused into longer tokens) are not learnable, and crucially
// the pipeline must not hallucinate a convention from them.
func TestComplexEncodingLimitation(t *testing.T) {
	f := newFixture(t)
	sites := []struct {
		code                  string
		city, region, country string
	}{
		{"atnga00002cce9", "atlanta", "ga", "us"},
		{"dlltx00001cce9", "dallas", "tx", "us"},
		{"nycny00002cce9", "new york", "ny", "us"},
		{"scaca00002cce9", "sacramento", "ca", "us"},
	}
	id := 0
	for _, s := range sites {
		loc := f.place(s.city, s.region, s.country)
		for i := 1; i <= 2; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), loc,
				fmt.Sprintf("%s-irb-%d.infra.att-style.net", s.code, i))
		}
	}
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "att-style.net")
	if err != nil {
		t.Fatal(err)
	}
	// Either nothing is learned, or whatever is learned is not usable —
	// the honest outcome for an encoding outside the method's scope.
	if nc != nil && nc.Class.Usable() && nc.Tally.TP > 2 {
		t.Errorf("AT&T-style encoding should not produce a confident convention: %+v", nc.Tally)
	}
}
