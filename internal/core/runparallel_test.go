// Package core_test holds the parallel-pipeline tests that need the
// synthetic-world generator; synth imports core, so they cannot live in
// the internal test package.
package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/synth"
)

var (
	worldOnce sync.Once
	world     *synth.World
	worldErr  error
)

// testWorld generates the seeded ipv6-nov2020 preset once per process —
// a multi-operator corpus with every convention style, custom hints,
// noise, and spoofing VPs cleaned.
func testWorld(t *testing.T) *synth.World {
	t.Helper()
	worldOnce.Do(func() {
		p, err := synth.ITDKPreset("ipv6-nov2020")
		if err != nil {
			worldErr = err
			return
		}
		w, err := synth.Generate(p)
		if err != nil {
			worldErr = err
			return
		}
		w.CleanSpoofers()
		world = w
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

func serializeResult(t *testing.T, res *core.Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := core.WriteConventions(&b, res); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunParallelMatchesSequential is the tentpole's acceptance test:
// on a seeded synthetic corpus, core.Run with workers ∈ {2, 8} must
// produce a Result byte-identical (in serialized form) to the
// sequential run, with equal coverage counters.
func TestRunParallelMatchesSequential(t *testing.T) {
	w := testWorld(t)

	run := func(workers int) (*core.Result, string) {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		res, err := core.Run(w.Inputs(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, serializeResult(t, res)
	}

	base, baseText := run(1)
	if len(base.NCs) == 0 {
		t.Fatal("seeded world learned no conventions")
	}
	for _, workers := range []int{2, 8} {
		res, text := run(workers)
		if text != baseText {
			t.Errorf("workers=%d serialized conventions differ from sequential run", workers)
		}
		if len(res.NCs) != len(base.NCs) {
			t.Errorf("workers=%d learned %d NCs, sequential %d", workers, len(res.NCs), len(base.NCs))
		}
		if res.SuffixesWithGeohint != base.SuffixesWithGeohint ||
			res.RoutersWithGeohint != base.RoutersWithGeohint ||
			res.RoutersGeolocated != base.RoutersGeolocated {
			t.Errorf("workers=%d counters = (%d, %d, %d), want (%d, %d, %d)", workers,
				res.SuffixesWithGeohint, res.RoutersWithGeohint, res.RoutersGeolocated,
				base.SuffixesWithGeohint, base.RoutersWithGeohint, base.RoutersGeolocated)
		}
	}
}

// TestGeolocateParallelSharedNC stresses concurrent Geolocate calls on
// one shared naming convention whose regex caches start cold — the
// published-conventions scenario: a Result read from a conventions file
// is served to many concurrent callers. Run with -race to exercise the
// rex cache guards.
func TestGeolocateParallelSharedNC(t *testing.T) {
	w := testWorld(t)
	res, err := core.Run(w.Inputs(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the published format so every regex cache is
	// cold when the concurrent callers arrive.
	fresh, err := core.ReadConventions(strings.NewReader(serializeResult(t, res)))
	if err != nil {
		t.Fatal(err)
	}

	// Pick a usable convention with hostnames in the corpus.
	var nc *core.NamingConvention
	var hosts []string
	for _, cand := range fresh.UsableNCs() {
		hosts = hosts[:0]
		for h, suffix := range w.HintHostnames {
			if suffix == cand.Suffix {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) >= 2 {
			nc = cand
			break
		}
	}
	if nc == nil {
		t.Fatal("no usable NC with hostnames found")
	}

	for g := 0; g < 8; g++ {
		g := g
		t.Run(fmt.Sprintf("caller%d", g), func(t *testing.T) {
			t.Parallel()
			matched := 0
			for i := 0; i < 50; i++ {
				for _, h := range hosts {
					if loc, ok := core.Geolocate(nc, w.Dict, h); ok {
						matched++
						if loc.Loc == nil {
							t.Fatalf("geolocate %s returned nil location", h)
						}
					}
				}
			}
			if matched == 0 {
				t.Errorf("caller %d: no hostname of %s geolocated", g, nc.Suffix)
			}
		})
	}
}
