package core

import (
	"sort"

	"hoiho/internal/abbrev"
	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// learnHints implements stage 4 (paper §5.4): for a convention whose
// extractions are mostly trustworthy, interpret the false-positive and
// unknown extractions as operator-specific geohints by matching them as
// abbreviations of place names, ranking candidate places by facility
// presence, population, and RTT congruence.
//
// Learned hints are installed into the eval context's overrides so a
// re-evaluation of the convention credits them.
func (e *evalCtx) learnHints(suffix string, ev ncEval, tagged []*Tagged, cfg Config) []*LearnedHint {
	// Gate: the NC must already identify at least MinUniqueHints unique
	// RTT-consistent geohints with PPV above the learning threshold.
	if ev.Tally.UniqueHints < cfg.MinUniqueHints || ev.Tally.PPV() <= cfg.LearnStartPPV {
		return nil
	}

	// Group FP/UNK extractions by (type, hint).
	type group struct {
		hosts []int // indices into tagged
		ext   rex.Extraction
	}
	groups := make(map[overrideKey]*group)
	var order []overrideKey
	for hi, ho := range ev.PerHost {
		if ho.Outcome != OutcomeFP && ho.Outcome != OutcomeUNK {
			continue
		}
		if ho.Hint == "" {
			continue
		}
		k := overrideKey{ho.Ext.Type, ho.Hint}
		g := groups[k]
		if g == nil {
			g = &group{ext: ho.Ext}
			groups[k] = g
			order = append(order, k)
		}
		g.hosts = append(g.hosts, hi)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].t != order[j].t {
			return order[i].t < order[j].t
		}
		return order[i].hint < order[j].hint
	})

	var learned []*LearnedHint
	for _, k := range order {
		if _, exists := e.overrides[k]; exists {
			continue // already learned from a higher-ranked NC
		}
		g := groups[k]
		if lh := e.learnOne(suffix, k, g.ext, g.hosts, tagged, cfg); lh != nil {
			learned = append(learned, lh)
			e.overrides[k] = lh.Loc
		}
	}
	return learned
}

// learnOne attempts to learn the location of a single extracted hint.
func (e *evalCtx) learnOne(suffix string, k overrideKey, ext rex.Extraction, hosts []int, tagged []*Tagged, cfg Config) *LearnedHint {
	cands := e.candidatePlaces(k, ext, cfg)
	if len(cands) == 0 {
		return nil
	}

	// Count congruence per candidate.
	type scored struct {
		loc      *geodict.Location
		tp, fp   int
		facility bool
	}
	var best *scored
	scoredCands := make([]*scored, 0, len(cands))
	for _, loc := range cands {
		s := &scored{loc: loc}
		for _, hi := range hosts {
			t := tagged[hi]
			if e.consistent(t.RH.Router.ID, loc.Pos) {
				s.tp++
			} else {
				s.fp++
			}
		}
		s.facility = e.in.Dict.HasFacility(loc.City, loc.Region, loc.Country)
		scoredCands = append(scoredCands, s)
	}
	// Rank: facility first, then population, then TPs (paper §5.4).
	// Either prior can be ablated through the config.
	sort.SliceStable(scoredCands, func(i, j int) bool {
		a, b := scoredCands[i], scoredCands[j]
		if cfg.LearnRankFacility && a.facility != b.facility {
			return a.facility
		}
		if cfg.LearnRankPopulation && a.loc.Population != b.loc.Population {
			return a.loc.Population > b.loc.Population
		}
		if a.tp != b.tp {
			return a.tp > b.tp
		}
		return a.loc.Key() < b.loc.Key()
	})
	best = scoredCands[0]

	// The learned hint must be generally correct.
	if best.tp+best.fp == 0 ||
		float64(best.tp)/float64(best.tp+best.fp) < cfg.LearnHintPPV {
		return nil
	}

	// Congruent-router threshold: the presence of a state/country code
	// in the extraction reduces the over-fitting risk (paper §5.4).
	need := cfg.LearnCongruentNoCC
	if ext.Country != "" || ext.State != "" {
		need = cfg.LearnCongruentCC
	}
	if best.tp < need {
		return nil
	}

	// The learned interpretation must beat the existing dictionary
	// interpretation by more than LearnMarginTP true positives.
	collide := false
	if existing, inDict := e.dictLocations(k); inDict {
		collide = true
		existTP := 0
		for _, hi := range hosts {
			t := tagged[hi]
			for _, loc := range existing {
				if e.consistent(t.RH.Router.ID, loc.Pos) {
					existTP++
					break
				}
			}
		}
		if best.tp <= existTP+cfg.LearnMarginTP {
			return nil
		}
	}

	return &LearnedHint{
		Suffix: suffix, Hint: k.hint, Type: k.t,
		Loc: best.loc, TP: best.tp, FP: best.fp, Collide: collide,
	}
}

// dictLocations returns the unfiltered dictionary interpretations of a
// hint, ignoring overrides.
func (e *evalCtx) dictLocations(k overrideKey) ([]*geodict.Location, bool) {
	saved := e.overrides
	e.overrides = map[overrideKey]*geodict.Location{}
	locs, inDict := e.resolve(rex.Extraction{Hint: k.hint, Type: k.t})
	e.overrides = saved
	return locs, inDict
}

// candidatePlaces enumerates the place-dictionary entries the hint could
// abbreviate, honouring the structural rules of each hint type and any
// extracted annotation codes.
func (e *evalCtx) candidatePlaces(k overrideKey, ext rex.Extraction, cfg Config) []*geodict.Location {
	d := e.in.Dict
	var out []*geodict.Location

	match := func(loc *geodict.Location, abbr string, minContig int) {
		if ext.Country != "" && !d.CountryEquivalent(ext.Country, loc.Country) {
			return
		}
		if ext.State != "" && !d.StateEquivalent(ext.State, loc.Country, loc.Region) {
			return
		}
		if minContig > 1 {
			if !abbrev.MatchesPlaceName(abbr, loc.City, minContig) {
				return
			}
		} else if !abbrev.Matches(abbr, loc.City) {
			return
		}
		out = append(out, loc)
	}

	switch k.t {
	case geodict.HintIATA:
		// Three-letter codes may abbreviate any place name.
		for _, loc := range d.Places() {
			match(loc, k.hint, 0)
		}
	case geodict.HintLocode:
		// The first two letters must be the country; the rest
		// abbreviates a place in that country.
		if len(k.hint) != 5 {
			return nil
		}
		country, ok := d.CountryCode(k.hint[:2])
		if !ok {
			return nil
		}
		rest := k.hint[2:]
		for _, loc := range d.Places() {
			if loc.Country != country {
				continue
			}
			match(loc, rest, 0)
		}
	case geodict.HintCLLI:
		// Four city letters plus a two-letter state or country.
		if len(k.hint) != 6 {
			return nil
		}
		city4, reg2 := k.hint[:4], k.hint[4:]
		for _, loc := range d.Places() {
			regionOK := false
			if loc.Region != "" && d.StateEquivalent(reg2, loc.Country, loc.Region) {
				regionOK = true
			} else if d.CountryEquivalent(reg2, loc.Country) {
				regionOK = true
			} else if loc.Country == "gb" {
				// CLLI uses "en" for England; GB places have no region
				// in our place table.
				if n, ok := d.StateName("gb", reg2); ok && n == "england" {
					regionOK = true
				}
			}
			if !regionOK {
				continue
			}
			match(loc, city4, 0)
		}
	case geodict.HintPlace:
		for _, loc := range d.Places() {
			match(loc, k.hint, cfg.PlaceMinContiguous)
		}
	default:
		// ICAO and facility hints are too structured to learn from
		// abbreviations.
		return nil
	}
	return out
}
