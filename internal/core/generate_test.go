package core

import (
	"fmt"
	"testing"

	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// tagAll runs stage 2 over every hostname of a fixture's corpus.
func tagAll(t *testing.T, f *fixture) []*Tagged {
	t.Helper()
	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	var tagged []*Tagged
	for _, group := range f.corpus.GroupBySuffix(f.list) {
		for _, rh := range group.Hosts {
			if tgd := tg.tag(rh); tgd != nil {
				tagged = append(tagged, tgd)
			}
		}
	}
	return tagged
}

// TestBaseRegexesMatchSource asserts the fundamental generation
// invariant: every phase-1 regex built from a tagged hostname must match
// that hostname and extract the tagged geohint.
func TestBaseRegexesMatchSource(t *testing.T) {
	f := newFixture(t)
	hosts := []struct {
		city, region, country string
		hostname              string
	}{
		{"london", "", "gb", "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com"},
		{"san jose", "ca", "us", "ae-2.r20.snjsca04.us.bb.gin.zayo.com"},
		{"san jose", "ca", "us", "ae2-0.agr2.snjs-ca.zayo.com"},
		{"newark", "nj", "us", "0.csi1.nwrknjnb-mse01.zayo.com"},
		{"palo alto", "ca", "us", "be-33.529bryant.ca.zayo.com"},
		{"munich", "by", "de", "pos-00008.munich1.de.zayo.com"},
		{"amsterdam", "", "nl", "core1.nlams2.zayo.com"},
		{"tokyo", "", "jp", "xe-1-2-0.gw3.tyo1.jp.zayo.com"},
	}
	for i, h := range hosts {
		f.addRouter(fmt.Sprintf("N%d", i), f.place(h.city, h.region, h.country), h.hostname)
	}
	tagged := tagAll(t, f)
	if len(tagged) != len(hosts) {
		t.Fatalf("tagged %d of %d hostnames", len(tagged), len(hosts))
	}
	total := 0
	for _, tg := range tagged {
		if !tg.HasTags() {
			t.Errorf("%s: no tags", tg.H.Full)
			continue
		}
		for _, tag := range tg.Apparent {
			regexes := baseRegexes(tg, tag)
			if len(regexes) == 0 {
				t.Errorf("%s: tag %q produced no regexes", tg.H.Full, tag.Text)
				continue
			}
			for _, re := range regexes {
				total++
				if err := re.Validate(); err != nil {
					t.Errorf("%s: invalid regex %s: %v", tg.H.Full, re, err)
					continue
				}
				ext, ok := re.Match(tg.H.Full)
				if !ok {
					t.Errorf("%s: regex %s does not match its source", tg.H.Full, re)
					continue
				}
				if ext.Hint != tag.Text {
					t.Errorf("%s: regex %s extracted %q, want %q", tg.H.Full, re, ext.Hint, tag.Text)
				}
				if tag.Country != "" && ext.Country != tag.Country {
					t.Errorf("%s: regex %s extracted country %q, want %q",
						tg.H.Full, re, ext.Country, tag.Country)
				}
			}
		}
	}
	if total < 12 {
		t.Errorf("only %d regexes generated across the corpus", total)
	}
}

// TestGenerateCandidatesDedupes checks the pool has no duplicates and
// respects the cap.
func TestGenerateCandidatesDedupes(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	tagged := tagAll(t, f)
	pool := generateCandidates(tagged, 5)
	if len(pool) > 5 {
		t.Errorf("pool exceeds cap: %d", len(pool))
	}
	pool = generateCandidates(tagged, 4000)
	seen := make(map[string]bool)
	for _, r := range pool {
		if seen[r.Key()] {
			t.Errorf("duplicate regex in pool: %s", r)
		}
		seen[r.Key()] = true
	}
}

// Per-style end-to-end coverage: each convention family must produce a
// usable NC from a well-behaved corpus.
func TestPipelinePerStyle(t *testing.T) {
	type site struct {
		code                  string
		city, region, country string
	}
	cases := []struct {
		name   string
		format string // code placeholder, suffix appended
		hint   geodict.HintType
		sites  []site
	}{
		{
			name: "locode", format: "ae-%d.core%d.%s1", hint: geodict.HintLocode,
			sites: []site{
				{"nlams", "amsterdam", "", "nl"},
				{"defra", "frankfurt am main", "he", "de"},
				{"gblon", "london", "", "gb"},
				{"jptyo", "tokyo", "", "jp"},
			},
		},
		{
			name: "city-cc", format: "pos-%d.id%d.%s.de", hint: geodict.HintPlace,
			sites: []site{
				{"munich", "munich", "by", "de"},
				{"stuttgart", "stuttgart", "bw", "de"},
				{"dresden", "dresden", "sn", "de"},
				{"hamburg", "hamburg", "hh", "de"},
			},
		},
		{
			name: "split-clli", format: "xe-%d-0.agr%d.%s", hint: geodict.HintCLLI,
			sites: []site{
				{"snjs-ca", "san jose", "ca", "us"},
				{"sttl-wa", "seattle", "wa", "us"},
				{"nycm-ny", "new york", "ny", "us"},
				{"chcg-il", "chicago", "il", "us"},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := newFixture(t)
			suffix := "style.net"
			id := 0
			for _, s := range c.sites {
				loc := f.place(s.city, s.region, s.country)
				for i := 1; i <= 3; i++ {
					id++
					host := fmt.Sprintf(c.format, i, i, s.code)
					f.addRouter(fmt.Sprintf("N%d", id), loc,
						fmt.Sprintf("%s.%s", host, suffix))
				}
			}
			nc, tagged, err := RunSuffix(f.inputs(), DefaultConfig(), suffix)
			if err != nil {
				t.Fatal(err)
			}
			if nc == nil {
				t.Fatalf("no NC learned (%d tagged)", len(tagged))
			}
			if !nc.Class.Usable() {
				t.Errorf("class = %s (tally %+v)", nc.Class, nc.Tally)
			}
			found := false
			for _, ht := range nc.HintTypes() {
				if ht == c.hint {
					found = true
				}
			}
			if !found {
				t.Errorf("hint types = %v, want %v", nc.HintTypes(), c.hint)
			}
		})
	}
}

// TestLearnLocodeOverride reproduces the paper's "jptky" case: an
// operator uses a LOCODE-shaped code that the dictionary maps to
// Tokuyama to mean Tokyo; with the RTT evidence the pipeline must
// relearn it.
func TestLearnLocodeOverride(t *testing.T) {
	f := newFixture(t)
	sites := []struct {
		code                  string
		city, region, country string
		n                     int
	}{
		{"nlams", "amsterdam", "", "nl", 3},
		{"defra", "frankfurt am main", "he", "de", 3},
		{"gblon", "london", "", "gb", 3},
		{"jptky", "tokyo", "", "jp", 3}, // override: dictionary says Tokuyama
	}
	id := 0
	for _, s := range sites {
		loc := f.place(s.city, s.region, s.country)
		for i := 1; i <= s.n; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), loc,
				fmt.Sprintf("ae-%d.core%d.%s1.locode.net", i, i, s.code))
		}
	}
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "locode.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	var tky *LearnedHint
	for _, lh := range nc.Learned {
		if lh.Hint == "jptky" {
			tky = lh
		}
	}
	if tky == nil {
		t.Fatalf("jptky not learned; learned=%v tally=%+v", nc.Learned, nc.Tally)
	}
	if tky.Loc.City != "tokyo" {
		t.Errorf("jptky learned as %s, want Tokyo", tky.Loc.String())
	}
	if !tky.Collide {
		t.Error("jptky collides with the dictionary entry for Tokuyama")
	}
}

// TestFacilityConvention exercises the comcast-style street-address
// convention end to end (paper figs. 6f, 7f).
func TestFacilityConvention(t *testing.T) {
	f := newFixture(t)
	sites := []struct {
		addr                  string
		city, region, country string
	}{
		{"529bryant", "palo alto", "ca", "us"},
		{"1118thave", "new york", "ny", "us"},
		{"350ecermak", "chicago", "il", "us"},
		{"60hudson", "new york", "ny", "us"},
	}
	id := 0
	for _, s := range sites {
		loc := f.place(s.city, s.region, s.country)
		for i := 1; i <= 3; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), loc,
				fmt.Sprintf("be-%d.%s.%s.fac.net", i, s.addr, s.country))
		}
	}
	nc, tagged, err := RunSuffix(f.inputs(), DefaultConfig(), "fac.net")
	if err != nil {
		t.Fatal(err)
	}
	if nc == nil {
		nTags := 0
		for _, tg := range tagged {
			nTags += len(tg.Apparent)
		}
		t.Fatalf("no NC learned (%d tagged hostnames, %d tags)", len(tagged), nTags)
	}
	hasFacility := false
	for _, ht := range nc.HintTypes() {
		if ht == geodict.HintFacility {
			hasFacility = true
		}
	}
	if !hasFacility {
		t.Errorf("hint types = %v, want facility", nc.HintTypes())
	}
	g, ok := Geolocate(nc, f.dict, "be-9.529bryant.us.fac.net")
	if !ok || g.Loc.City != "palo alto" {
		t.Errorf("geolocate = %+v, %v", g, ok)
	}
}

// TestStaleHostnameCountedFP reproduces fig. 3a's evaluation effect: a
// stale hostname extracts a geohint that the RTTs contradict, and the
// convention charges it as a false positive rather than silently
// accepting it.
func TestStaleHostnameCountedFP(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	// A router physically in Ashburn with a stale sjc hostname.
	f.addRouter("stale", f.place("ashburn", "va", "us"),
		"100ge9-1.core9.sjc1.he.net")
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "he.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	if nc.Tally.FP == 0 {
		t.Errorf("stale hostname should be a false positive, tally = %+v", nc.Tally)
	}
}

func TestHintCaptureSpecs(t *testing.T) {
	cases := map[geodict.HintType]rex.Kind{
		geodict.HintIATA:     rex.KindAlphaFixed,
		geodict.HintICAO:     rex.KindAlphaFixed,
		geodict.HintLocode:   rex.KindAlphaFixed,
		geodict.HintCLLI:     rex.KindAlphaFixed,
		geodict.HintPlace:    rex.KindAlpha,
		geodict.HintFacility: rex.KindAlnum,
	}
	for ht, kind := range cases {
		spec := hintCaptureSpec(ht, "x")
		if spec.kind != kind || spec.role != rex.RoleHint {
			t.Errorf("hintCaptureSpec(%v) = %+v", ht, spec)
		}
	}
}
