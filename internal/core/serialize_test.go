package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestConventionsRoundTrip(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConventions(&buf, res); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "suffix he.net") {
		t.Fatalf("serialized output missing suffix:\n%s", text)
	}
	if !strings.Contains(text, "learned iata ash") {
		t.Errorf("serialized output missing learned hint:\n%s", text)
	}

	got, err := ReadConventions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := res.NCs["he.net"]
	nc := got.NCs["he.net"]
	if nc == nil {
		t.Fatal("he.net lost in round trip")
	}
	if nc.Class != orig.Class {
		t.Errorf("class = %s, want %s", nc.Class, orig.Class)
	}
	if nc.Tally != orig.Tally {
		t.Errorf("tally = %+v, want %+v", nc.Tally, orig.Tally)
	}
	if len(nc.Regexes) != len(orig.Regexes) {
		t.Fatalf("regexes = %d, want %d", len(nc.Regexes), len(orig.Regexes))
	}
	for i := range nc.Regexes {
		if !nc.Regexes[i].Equal(orig.Regexes[i]) {
			t.Errorf("regex %d: %s != %s", i, nc.Regexes[i], orig.Regexes[i])
		}
	}
	if len(nc.Learned) != len(orig.Learned) {
		t.Fatalf("learned = %d, want %d", len(nc.Learned), len(orig.Learned))
	}

	// The restored conventions geolocate identically — the paper's
	// "regexes are available for others to use" claim.
	for _, host := range []string{
		"100ge1-1.core1.ash1.he.net",
		"100ge2-1.core3.sjc1.he.net",
	} {
		g1, ok1 := Geolocate(orig, f.dict, host)
		g2, ok2 := Geolocate(nc, f.dict, host)
		if ok1 != ok2 {
			t.Fatalf("geolocate availability differs for %s", host)
		}
		if ok1 && !g1.Loc.SameCity(g2.Loc) {
			t.Errorf("geolocate(%s): %s != %s", host, g1.Loc, g2.Loc)
		}
	}
}

func TestReadConventionsErrors(t *testing.T) {
	cases := []string{
		"regex iata hint ^(a)$",                            // regex before suffix
		"learned iata x 1 2 a||us tp=1 fp=0 collide=false", // learned before suffix
		"suffix a.net bogus tp=1 fp=0 fn=0 unk=0 hints=1",  // bad class
		"suffix a.net good tp=x fp=0 fn=0 unk=0 hints=1",   // bad count
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 zz=1",      // unknown field
		"suffix a.net good tp=1",                           // short record
		"bogus record",                                     // unknown record
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nregex wat hint ^([a-z]{3})\\.a\\.net$",            // bad hint type
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nregex iata wat ^([a-z]{3})\\.a\\.net$",            // bad role
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nregex iata hint ^(a|b)$",                          // foreign pattern
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nlearned iata x y z a||us tp=1 fp=0 collide=false", // bad coords
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nlearned iata x 1 2 nope tp=1 fp=0 collide=false",  // bad triple
		"suffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1\nsuffix a.net good tp=1 fp=0 fn=0 unk=0 hints=1",   // dup suffix
	}
	for _, in := range cases {
		if _, err := ReadConventions(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadConventionsMultiWordCity(t *testing.T) {
	in := `suffix a.net good tp=3 fp=0 fn=0 unk=0 hints=3
regex iata hint ^.+\.([a-z]{3})\d*\.a\.net$
learned iata nyk 40.7128 -74.0060 new york|ny|us tp=3 fp=0 collide=false
`
	res, err := ReadConventions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	lh := res.NCs["a.net"].Learned[0]
	if lh.Loc.City != "new york" || lh.Loc.Region != "ny" {
		t.Errorf("multi-word city lost: %+v", lh.Loc)
	}
	if lh.TP != 3 || lh.Collide {
		t.Errorf("fields lost: %+v", lh)
	}
}
