package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// The published naming-convention format mirrors the dataset the paper
// releases alongside the source code: a line-oriented file others can
// apply without access to a measurement infrastructure.
//
//	suffix <domain> <class> tp=<n> fp=<n> fn=<n> unk=<n> hints=<n>
//	regex <hint-type> <role,role,...> <pattern>
//	learned <hint-type> <hint> <lat> <long> <city>|<region>|<country> tp=<n> fp=<n> collide=<bool>
//
// Records for a suffix follow its suffix line; comments begin with '#'.

// WriteConventions serialises the result's conventions, sorted by
// suffix, in the published format.
func WriteConventions(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hoiho naming conventions: %d suffixes\n", len(res.NCs))
	var suffixes []string
	for s := range res.NCs {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	for _, s := range suffixes {
		nc := res.NCs[s]
		t := nc.Tally
		fmt.Fprintf(bw, "suffix %s %s tp=%d fp=%d fn=%d unk=%d hints=%d\n",
			nc.Suffix, nc.Class, t.TP, t.FP, t.FN, t.UNK, t.UniqueHints)
		for _, r := range nc.Regexes {
			roles := make([]string, 0, 2)
			for _, role := range r.Roles() {
				roles = append(roles, role.String())
			}
			fmt.Fprintf(bw, "regex %s %s %s\n", r.Hint, strings.Join(roles, ","), r)
		}
		for _, lh := range nc.Learned {
			fmt.Fprintf(bw, "learned %s %s %.4f %.4f %s|%s|%s tp=%d fp=%d collide=%v\n",
				lh.Type, lh.Hint, lh.Loc.Pos.Lat, lh.Loc.Pos.Long,
				lh.Loc.City, lh.Loc.Region, lh.Loc.Country, lh.TP, lh.FP, lh.Collide)
		}
	}
	return bw.Flush()
}

// ReadConventions parses a published conventions file back into a
// Result whose NCs can geolocate hostnames (tallies and classes are
// restored; the training corpus is not needed).
func ReadConventions(r io.Reader) (*Result, error) {
	res := &Result{NCs: make(map[string]*NamingConvention)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var cur *NamingConvention
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "suffix":
			if len(fields) != 8 {
				return nil, fmt.Errorf("core: line %d: malformed suffix record", line)
			}
			cls, err := parseClass(fields[2])
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %w", line, err)
			}
			cur = &NamingConvention{Suffix: fields[1], Class: cls}
			for _, kv := range fields[3:] {
				if err := parseTallyKV(&cur.Tally, kv); err != nil {
					return nil, fmt.Errorf("core: line %d: %w", line, err)
				}
			}
			if _, dup := res.NCs[cur.Suffix]; dup {
				return nil, fmt.Errorf("core: line %d: duplicate suffix %s", line, cur.Suffix)
			}
			res.NCs[cur.Suffix] = cur
		case "regex":
			if cur == nil {
				return nil, fmt.Errorf("core: line %d: regex before suffix", line)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("core: line %d: malformed regex record", line)
			}
			ht, err := rex.ParseHintType(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %w", line, err)
			}
			var roles []rex.Role
			if fields[2] != "" {
				for _, name := range strings.Split(fields[2], ",") {
					role, err := rex.ParseRole(name)
					if err != nil {
						return nil, fmt.Errorf("core: line %d: %w", line, err)
					}
					roles = append(roles, role)
				}
			}
			pattern := strings.Join(fields[3:], " ")
			re, err := rex.ParsePattern(ht, pattern, roles)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %w", line, err)
			}
			cur.Regexes = append(cur.Regexes, re)
			for _, role := range roles {
				switch role {
				case rex.RoleState:
					cur.AnnotatesState = true
				case rex.RoleCountry:
					cur.AnnotatesCountry = true
				}
			}
		case "learned":
			if cur == nil {
				return nil, fmt.Errorf("core: line %d: learned before suffix", line)
			}
			if len(fields) < 9 {
				return nil, fmt.Errorf("core: line %d: malformed learned record", line)
			}
			ht, err := rex.ParseHintType(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %w", line, err)
			}
			lat, err1 := strconv.ParseFloat(fields[3], 64)
			long, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("core: line %d: bad coordinates", line)
			}
			// The location triple may contain spaces in the city name;
			// rejoin everything between the coordinates and the first
			// kv field.
			rest := fields[5:]
			kvStart := len(rest)
			for i, f := range rest {
				if strings.Contains(f, "=") {
					kvStart = i
					break
				}
			}
			trip := strings.Split(strings.Join(rest[:kvStart], " "), "|")
			if len(trip) != 3 {
				return nil, fmt.Errorf("core: line %d: bad location triple", line)
			}
			lh := &LearnedHint{
				Suffix: cur.Suffix, Hint: fields[2], Type: ht,
				Loc: &geodict.Location{
					City: trip[0], Region: trip[1], Country: trip[2],
					Pos: geo.LatLong{Lat: lat, Long: long},
				},
			}
			for _, kv := range rest[kvStart:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("core: line %d: bad field %q", line, kv)
				}
				switch k {
				case "tp":
					lh.TP, err = strconv.Atoi(v)
				case "fp":
					lh.FP, err = strconv.Atoi(v)
				case "collide":
					lh.Collide, err = strconv.ParseBool(v)
				default:
					err = fmt.Errorf("unknown field %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("core: line %d: %w", line, err)
				}
			}
			cur.Learned = append(cur.Learned, lh)
		default:
			return nil, fmt.Errorf("core: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func parseClass(s string) (Classification, error) {
	switch s {
	case "good":
		return Good, nil
	case "promising":
		return Promising, nil
	case "poor":
		return Poor, nil
	}
	return Poor, fmt.Errorf("unknown classification %q", s)
}

func parseTallyKV(t *Tally, kv string) error {
	k, v, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("bad field %q", kv)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("bad count %q: %w", kv, err)
	}
	switch k {
	case "tp":
		t.TP = n
	case "fp":
		t.FP = n
	case "fn":
		t.FN = n
	case "unk":
		t.UNK = n
	case "hints":
		t.UniqueHints = n
	default:
		return fmt.Errorf("unknown field %q", k)
	}
	return nil
}
