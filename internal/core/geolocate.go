package core

import (
	"sort"

	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// Geolocation is the result of applying a learned naming convention to a
// hostname.
type Geolocation struct {
	Hostname string
	Suffix   string
	Hint     string
	Type     geodict.HintType
	Loc      *geodict.Location
	Learned  bool // the hint resolved through a stage-4 learned geohint
}

// Geolocate applies a naming convention to a hostname: the first
// matching regex extracts a geohint, which ResolveExtraction interprets.
// It is a thin wrapper kept for one-off application; services applying
// conventions at volume should compile them into a geoloc.Index, which
// shares the exported resolution helpers below.
func Geolocate(nc *NamingConvention, dict *geodict.Dictionary, host string) (*Geolocation, bool) {
	if nc == nil {
		return nil, false
	}
	for _, r := range nc.Regexes {
		ext, ok := r.Match(host)
		if !ok {
			continue
		}
		loc, learned, ok := ResolveExtraction(nc, dict, ext)
		if !ok {
			return nil, false
		}
		return &Geolocation{
			Hostname: host, Suffix: nc.Suffix, Hint: ext.Hint, Type: ext.Type,
			Loc: loc, Learned: learned,
		}, true
	}
	return nil, false
}

// ResolveExtraction interprets a regex extraction: first through the
// convention's learned geohints and then through the reference
// dictionary, disambiguating multiple interpretations by facility
// presence and population (the paper's ranking for learned hints, which
// Lakhina et al.'s population-density observation motivates). ok is
// false when the extracted string resolves to no location.
func ResolveExtraction(nc *NamingConvention, dict *geodict.Dictionary, ext rex.Extraction) (loc *geodict.Location, learned, ok bool) {
	// Learned geohints take precedence over the dictionary.
	for _, lh := range nc.Learned {
		if lh.Type == ext.Type && lh.Hint == ext.Hint {
			return lh.Loc, true, true
		}
	}
	locs := DictionaryLocations(dict, ext)
	if len(locs) == 0 {
		return nil, false, false
	}
	return PickLocation(dict, locs), false, true
}

// DictionaryLocations resolves an extraction against the reference
// dictionary, filtered by any annotation codes.
func DictionaryLocations(d *geodict.Dictionary, ext rex.Extraction) []*geodict.Location {
	var locs []*geodict.Location
	switch ext.Type {
	case geodict.HintIATA:
		for _, a := range d.IATA(ext.Hint) {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintICAO:
		if a := d.ICAO(ext.Hint); a != nil {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintLocode:
		if c := d.Locode(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintCLLI:
		if c := d.CLLI(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintPlace:
		locs = append(locs, d.Place(ext.Hint)...)
	case geodict.HintFacility:
		for _, f := range d.FacilityByAddress(ext.Hint) {
			loc := f.Loc
			locs = append(locs, &loc)
		}
	}
	out := locs[:0]
	for _, loc := range locs {
		if ext.Country != "" && !d.CountryEquivalent(ext.Country, loc.Country) {
			continue
		}
		if ext.State != "" && !d.StateEquivalent(ext.State, loc.Country, loc.Region) {
			continue
		}
		out = append(out, loc)
	}
	return out
}

// PickLocation disambiguates multiple interpretations: facility presence
// first, then population, then a stable key order.
func PickLocation(d *geodict.Dictionary, locs []*geodict.Location) *geodict.Location {
	if len(locs) == 1 {
		return locs[0]
	}
	sorted := append([]*geodict.Location(nil), locs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		af := d.HasFacility(a.City, a.Region, a.Country)
		bf := d.HasFacility(b.City, b.Region, b.Country)
		if af != bf {
			return af
		}
		if a.Population != b.Population {
			return a.Population > b.Population
		}
		return a.Key() < b.Key()
	})
	return sorted[0]
}
