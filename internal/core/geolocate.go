package core

import (
	"sort"

	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// Geolocation is the result of applying a learned naming convention to a
// hostname.
type Geolocation struct {
	Hostname string
	Suffix   string
	Hint     string
	Type     geodict.HintType
	Loc      *geodict.Location
	Learned  bool // the hint resolved through a stage-4 learned geohint
}

// Geolocate applies a naming convention to a hostname: the first
// matching regex extracts a geohint, which is resolved first through the
// convention's learned geohints and then through the reference
// dictionary, disambiguating multiple interpretations by facility
// presence and population (the paper's ranking for learned hints, which
// Lakhina et al.'s population-density observation motivates).
func Geolocate(nc *NamingConvention, dict *geodict.Dictionary, host string) (*Geolocation, bool) {
	if nc == nil {
		return nil, false
	}
	for _, r := range nc.Regexes {
		ext, ok := r.Match(host)
		if !ok {
			continue
		}
		g := &Geolocation{
			Hostname: host, Suffix: nc.Suffix, Hint: ext.Hint, Type: ext.Type,
		}
		// Learned geohints take precedence over the dictionary.
		for _, lh := range nc.Learned {
			if lh.Type == ext.Type && lh.Hint == ext.Hint {
				g.Loc = lh.Loc
				g.Learned = true
				return g, true
			}
		}
		locs := dictionaryLocations(dict, ext)
		if len(locs) == 0 {
			return nil, false
		}
		g.Loc = pickLocation(dict, locs)
		return g, true
	}
	return nil, false
}

// dictionaryLocations resolves an extraction against the reference
// dictionary, filtered by any annotation codes.
func dictionaryLocations(d *geodict.Dictionary, ext rex.Extraction) []*geodict.Location {
	var locs []*geodict.Location
	switch ext.Type {
	case geodict.HintIATA:
		for _, a := range d.IATA(ext.Hint) {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintICAO:
		if a := d.ICAO(ext.Hint); a != nil {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintLocode:
		if c := d.Locode(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintCLLI:
		if c := d.CLLI(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintPlace:
		locs = append(locs, d.Place(ext.Hint)...)
	case geodict.HintFacility:
		for _, f := range d.FacilityByAddress(ext.Hint) {
			loc := f.Loc
			locs = append(locs, &loc)
		}
	}
	out := locs[:0]
	for _, loc := range locs {
		if ext.Country != "" && !d.CountryEquivalent(ext.Country, loc.Country) {
			continue
		}
		if ext.State != "" && !d.StateEquivalent(ext.State, loc.Country, loc.Region) {
			continue
		}
		out = append(out, loc)
	}
	return out
}

// pickLocation disambiguates multiple interpretations: facility presence
// first, then population, then a stable key order.
func pickLocation(d *geodict.Dictionary, locs []*geodict.Location) *geodict.Location {
	if len(locs) == 1 {
		return locs[0]
	}
	sorted := append([]*geodict.Location(nil), locs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		af := d.HasFacility(a.City, a.Region, a.Country)
		bf := d.HasFacility(b.City, b.Region, b.Country)
		if af != bf {
			return af
		}
		if a.Population != b.Population {
			return a.Population > b.Population
		}
		return a.Key() < b.Key()
	})
	return sorted[0]
}
