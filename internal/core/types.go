// Package core implements the paper's primary contribution: the
// five-stage method that learns naming conventions (NCs) — sets of
// regexes — which extract and interpret geographic hints from router
// hostnames (paper §5).
//
// Stage 1 assembles inputs (dictionary, public suffix list, topology
// corpus, RTT matrix); stage 2 identifies apparent geohints in hostnames
// by joint dictionary and RTT-consistency search; stage 3 builds and
// evaluates candidate regexes; stage 4 learns operator-specific geohints
// that deviate from the dictionaries; stage 5 ranks regex sets into a
// final per-suffix NC and classifies it good, promising, or poor.
package core

import (
	"fmt"
	"sort"

	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
	"hoiho/internal/rtt"
)

// Config collects the method's thresholds. DefaultConfig returns the
// values the paper uses.
type Config struct {
	// ToleranceMs absorbs RTT measurement granularity in the
	// speed-of-light consistency test.
	ToleranceMs float64

	// MinUniqueHints is the number of distinct RTT-consistent geohints a
	// usable NC must extract (paper §5.5: three).
	MinUniqueHints int

	// GoodPPV and PromisingPPV classify NCs (paper §5.5: 0.90 / 0.80).
	GoodPPV      float64
	PromisingPPV float64

	// LearnStartPPV gates which NCs stage 4 refines (paper §5.4: >40%).
	LearnStartPPV float64
	// LearnHintPPV is the minimum PPV a learned geohint must reach
	// (paper §5.4: 80%).
	LearnHintPPV float64
	// LearnMarginTP is how many more true positives a learned hint must
	// have than the existing dictionary interpretation (paper: one).
	LearnMarginTP int
	// LearnCongruentNoCC and LearnCongruentCC are the congruent-router
	// thresholds with and without an extracted state/country code
	// (paper: three and one).
	LearnCongruentNoCC int
	LearnCongruentCC   int

	// PlaceMinContiguous is the contiguous-character requirement when
	// learning abbreviations for place-name conventions (paper: four).
	PlaceMinContiguous int

	// NCSlackTP is the TP slack when preferring an NC with fewer regexes
	// (paper §5.5: three).
	NCSlackTP int

	// SetPPVSlack is how much lower a combined NC's PPV may be than the
	// PPV of the regex it grew from (paper appendix A: 10%).
	SetPPVSlack float64

	// MaxCandidates caps the per-suffix candidate regex pool after
	// deduplication, keeping runtime bounded on adversarial corpora.
	MaxCandidates int

	// Workers bounds how many suffix groups Run learns concurrently.
	// 0 (the default) uses runtime.GOMAXPROCS(0); 1 reproduces the
	// sequential pipeline. Per-suffix learning is independent and the
	// merge is suffix-ordered, so the Result is identical for any
	// worker count.
	Workers int

	// LearnHints enables stage 4 (disabled for the §6.1 ablation).
	LearnHints bool

	// LearnRankFacility and LearnRankPopulation control the candidate
	// ranking priors of stage 4 (§5.4: facility presence first, then
	// population, then congruent routers). Disabling them is the
	// design-choice ablation DESIGN.md §4 calls out.
	LearnRankFacility   bool
	LearnRankPopulation bool

	// Tracer, when non-nil, records hierarchical spans and counters for
	// the run (see internal/obs). The nil default disables tracing at
	// zero cost: instrumentation points call nil-safe no-ops and the hot
	// paths allocate nothing extra.
	Tracer *obs.Tracer
}

// DefaultConfig returns the thresholds from the paper.
func DefaultConfig() Config {
	return Config{
		ToleranceMs:         1.0,
		MinUniqueHints:      3,
		GoodPPV:             0.90,
		PromisingPPV:        0.80,
		LearnStartPPV:       0.40,
		LearnHintPPV:        0.80,
		LearnMarginTP:       1,
		LearnCongruentNoCC:  3,
		LearnCongruentCC:    1,
		PlaceMinContiguous:  4,
		NCSlackTP:           3,
		SetPPVSlack:         0.10,
		MaxCandidates:       4000,
		LearnHints:          true,
		LearnRankFacility:   true,
		LearnRankPopulation: true,
	}
}

// Inputs bundles the stage-1 data sources.
type Inputs struct {
	Dict   *geodict.Dictionary
	PSL    *psl.List
	Corpus *itdk.Corpus
	RTT    *rtt.Matrix
}

// Outcome is the per-hostname classification of a regex extraction
// (paper §5.3).
type Outcome int

// Outcomes. OutcomeNone means the regex did not match a hostname that
// carried no apparent geohint — such hostnames do not count against a
// convention.
const (
	OutcomeNone Outcome = iota
	OutcomeTP           // plausible geohint, required annotations extracted
	OutcomeFP           // extracted geohint not RTT-consistent
	OutcomeFN           // missed an apparent geohint or its annotation
	OutcomeUNK          // extracted string not in the dictionary
)

// String returns the outcome abbreviation used in the paper.
func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return "-"
	case OutcomeTP:
		return "TP"
	case OutcomeFP:
		return "FP"
	case OutcomeFN:
		return "FN"
	case OutcomeUNK:
		return "UNK"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Tally aggregates outcomes for a regex or NC.
type Tally struct {
	TP, FP, FN, UNK int
	// UniqueHints counts distinct RTT-consistent geohint strings the
	// convention extracted — the paper requires at least three.
	UniqueHints int
}

// ATP is the Absolute True Positive score: TP - (FP + FN + UNK)
// (paper §5.5).
func (t Tally) ATP() int { return t.TP - (t.FP + t.FN + t.UNK) }

// PPV is the positive predictive value TP / (TP + FP); 0 when undefined.
func (t Tally) PPV() float64 {
	if t.TP+t.FP == 0 {
		return 0
	}
	return float64(t.TP) / float64(t.TP+t.FP)
}

// Add accumulates another tally.
func (t *Tally) Add(o Tally) {
	t.TP += o.TP
	t.FP += o.FP
	t.FN += o.FN
	t.UNK += o.UNK
}

// Classification buckets NCs by quality (paper §5.5).
type Classification int

// NC classifications. Good and Promising NCs are "usable".
const (
	Poor Classification = iota
	Promising
	Good
)

// String returns the classification name.
func (c Classification) String() string {
	switch c {
	case Good:
		return "good"
	case Promising:
		return "promising"
	case Poor:
		return "poor"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Usable reports whether the classification is good or promising.
func (c Classification) Usable() bool { return c != Poor }

// LearnedHint is a stage-4 inference: within a suffix, an operator uses
// hint (of the given type) to mean Loc, overriding or extending the
// reference dictionary.
type LearnedHint struct {
	Suffix  string
	Hint    string
	Type    geodict.HintType
	Loc     *geodict.Location
	TP, FP  int  // congruence counts backing the inference
	Collide bool // the hint collides with a different dictionary entry
}

// String renders "ash -> Ashburn, VA, US (iata)".
func (l *LearnedHint) String() string {
	return fmt.Sprintf("%s -> %s (%s)", l.Hint, l.Loc.String(), l.Type)
}

// NamingConvention is the final learned convention for a suffix: one or
// more regexes, the learned hint overrides, and its evaluation.
type NamingConvention struct {
	Suffix  string
	Regexes []*rex.Regex
	Learned []*LearnedHint
	Tally   Tally
	Class   Classification

	// AnnotatesState / AnnotatesCountry record whether the convention
	// extracts state or country codes alongside the geohint (Table 4).
	AnnotatesState   bool
	AnnotatesCountry bool
}

// HintTypes returns the distinct geohint types the NC's regexes extract.
func (nc *NamingConvention) HintTypes() []geodict.HintType {
	seen := make(map[geodict.HintType]bool)
	var out []geodict.HintType
	for _, r := range nc.Regexes {
		if !seen[r.Hint] {
			seen[r.Hint] = true
			out = append(out, r.Hint)
		}
	}
	return out
}

// Result is the output of a pipeline run.
type Result struct {
	// NCs maps suffix to the selected naming convention; suffixes where
	// no convention was learnable are absent.
	NCs map[string]*NamingConvention
	// SuffixesWithGeohint counts suffixes where stage 2 tagged at least
	// one apparent geohint.
	SuffixesWithGeohint int
	// RoutersWithGeohint counts routers with an apparent geohint.
	RoutersWithGeohint int
	// RoutersGeolocated counts routers whose hostname a usable NC
	// extracted a geohint from.
	RoutersGeolocated int
}

// UsableNCs returns the good and promising conventions, sorted by
// suffix so output derived from it is deterministic (the guarantee
// webgen and eval already provide for their own map walks).
func (r *Result) UsableNCs() []*NamingConvention {
	var out []*NamingConvention
	for _, nc := range r.NCs {
		if nc.Class.Usable() {
			out = append(out, nc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suffix < out[j].Suffix })
	return out
}
