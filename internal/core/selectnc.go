package core

import (
	"sort"

	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// rankedRegex pairs a candidate regex with its standalone evaluation.
type rankedRegex struct {
	re   *rex.Regex
	eval ncEval
}

// ncCandidate is one regex set the set-building phase produced, with
// its evaluation.
type ncCandidate struct {
	set  []*rex.Regex
	eval ncEval
}

// selectNC implements phase 4 of appendix A and stage 5 (§5.5): evaluate
// every candidate regex, rank by ATP, greedily grow regex sets, and
// select the final NC for the suffix. It also returns the other
// candidate NCs considered — stage 4 learns operator geohints from
// every qualifying NC, not just the winner. Returns nil when no
// candidate extracts anything useful.
func selectNC(pool []*rex.Regex, tagged []*Tagged, e *evalCtx, cfg Config) ([]*rex.Regex, ncEval, []ncCandidate) {
	if len(pool) == 0 || len(tagged) == 0 {
		return nil, ncEval{}, nil
	}

	// Evaluate singles; discard regexes that never produced a TP.
	var ranked []rankedRegex
	for _, r := range pool {
		ev := e.evaluateSet([]*rex.Regex{r}, tagged)
		if ev.Tally.TP == 0 {
			continue
		}
		ranked = append(ranked, rankedRegex{re: r, eval: ev})
	}
	if len(ranked) == 0 {
		return nil, ncEval{}, nil
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		ai, aj := ranked[i].eval.Tally.ATP(), ranked[j].eval.Tally.ATP()
		if ai != aj {
			return ai > aj
		}
		ti, tj := ranked[i].eval.Tally.TP, ranked[j].eval.Tally.TP
		if ti != tj {
			return ti > tj
		}
		return ranked[i].re.String() < ranked[j].re.String()
	})
	// Bound the combinatorial stage.
	const maxRanked = 64
	if len(ranked) > maxRanked {
		ranked = ranked[:maxRanked]
	}

	// Grow a set from each of the top few starting points.
	const maxStarts = 8
	starts := len(ranked)
	if starts > maxStarts {
		starts = maxStarts
	}
	var candidates []ncCandidate
	for s := 0; s < starts; s++ {
		set := []*rex.Regex{ranked[s].re}
		ev := ranked[s].eval
		startPPV := ev.Tally.PPV()
		for {
			improved := false
			for _, rr := range ranked {
				if inSet(set, rr.re) {
					continue
				}
				trial := append(append([]*rex.Regex(nil), set...), rr.re)
				tev := e.evaluateSet(trial, tagged)
				if !acceptSet(tev, ev, startPPV, cfg) {
					continue
				}
				set, ev = trial, tev
				improved = true
			}
			if !improved {
				break
			}
		}
		candidates = append(candidates, ncCandidate{set: set, eval: ev})
	}

	// Stage 5: rank candidate NCs by ATP; prefer an NC with fewer
	// regexes when it is within NCSlackTP true positives of the best.
	sort.SliceStable(candidates, func(i, j int) bool {
		ai, aj := candidates[i].eval.Tally.ATP(), candidates[j].eval.Tally.ATP()
		if ai != aj {
			return ai > aj
		}
		return len(candidates[i].set) < len(candidates[j].set)
	})
	best := candidates[0]
	for _, c := range candidates[1:] {
		if len(c.set) < len(best.set) &&
			c.eval.Tally.TP >= best.eval.Tally.TP-cfg.NCSlackTP {
			best = c
		}
	}
	return best.set, best.eval, candidates
}

// learnAndSelect runs selection, then stage 4 over every qualifying
// candidate NC (the paper learns from all NCs with at least three
// unique hints and PPV above the threshold, not only the winner), and —
// when anything was learned — re-selects with the learned overrides in
// effect, since previously-penalised regexes may now rank best.
func learnAndSelect(suffix string, pool []*rex.Regex, tagged []*Tagged, e *evalCtx, cfg Config) ([]*rex.Regex, ncEval, []*LearnedHint) {
	set, ev, candidates := selectNC(pool, tagged, e, cfg)
	if set == nil || !cfg.LearnHints {
		return set, ev, nil
	}
	var learned []*LearnedHint
	for _, c := range candidates {
		learned = append(learned, e.learnHints(suffix, c.eval, tagged, cfg)...)
	}
	if len(learned) == 0 {
		return set, ev, nil
	}
	set, ev, _ = selectNC(pool, tagged, e, cfg)
	// Keep only the hints the final convention can actually extract.
	types := make(map[geodict.HintType]bool)
	for _, r := range set {
		types[r.Hint] = true
	}
	kept := learned[:0]
	for _, lh := range learned {
		if types[lh.Type] {
			kept = append(kept, lh)
		}
	}
	return set, ev, kept
}

// acceptSet implements the appendix-A inclusion test: the expanded set
// must raise ATP, every member must extract at least MinUniqueHints
// unique geohints, and the PPV must not fall more than SetPPVSlack below
// the starting regex's PPV.
func acceptSet(trial, cur ncEval, startPPV float64, cfg Config) bool {
	if trial.Tally.ATP() <= cur.Tally.ATP() {
		return false
	}
	for _, pr := range trial.PerRegex {
		if pr.UniqueHints < cfg.MinUniqueHints {
			return false
		}
	}
	return trial.Tally.PPV() >= startPPV-cfg.SetPPVSlack
}

func inSet(set []*rex.Regex, r *rex.Regex) bool {
	for _, s := range set {
		if s.Equal(r) {
			return true
		}
	}
	return false
}

// classify applies the §5.5 thresholds.
func classify(t Tally, cfg Config) Classification {
	if t.UniqueHints >= cfg.MinUniqueHints {
		switch {
		case t.PPV() >= cfg.GoodPPV:
			return Good
		case t.PPV() >= cfg.PromisingPPV:
			return Promising
		}
	}
	return Poor
}
