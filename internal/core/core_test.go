package core

import (
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// fixture assembles Inputs over a hand-built corpus with honest,
// deterministic RTTs (min-of-light * 1.25 + 1ms from every VP).
type fixture struct {
	t      *testing.T
	dict   *geodict.Dictionary
	list   *psl.List
	corpus *itdk.Corpus
	matrix *rtt.Matrix
	nextIP int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dict := geodict.MustDefault()
	vps := []*rtt.VP{
		vpAt(dict, "cgs-us", "college park", "md", "us"),
		vpAt(dict, "lon-gb", "london", "", "gb"),
		vpAt(dict, "zrh-ch", "zurich", "zh", "ch"),
		vpAt(dict, "tyo-jp", "tokyo", "", "jp"),
		vpAt(dict, "sjc-us", "san jose", "ca", "us"),
	}
	return &fixture{
		t:      t,
		dict:   dict,
		list:   psl.MustDefault(),
		corpus: itdk.NewCorpus("test", false),
		matrix: rtt.NewMatrix(vps),
	}
}

func vpAt(d *geodict.Dictionary, name, city, region, country string) *rtt.VP {
	for _, loc := range d.Place(city) {
		if loc.Region == region && loc.Country == country {
			return &rtt.VP{Name: name, City: city, Country: country, Pos: loc.Pos}
		}
	}
	panic("vpAt: unknown city " + city)
}

// place returns the dictionary location for a city triple.
func (f *fixture) place(city, region, country string) *geodict.Location {
	f.t.Helper()
	for _, loc := range f.dict.Place(city) {
		if loc.Region == region && loc.Country == country {
			return loc
		}
	}
	f.t.Fatalf("place %s/%s/%s not in dictionary", city, region, country)
	return nil
}

// addRouter creates a router at the given true location with one
// hostname, and records honest pings from every VP.
func (f *fixture) addRouter(id string, loc *geodict.Location, hostname string) {
	f.t.Helper()
	f.nextIP++
	addr := netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", f.nextIP%250+1))
	if f.nextIP >= 250 {
		addr = netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", f.nextIP%250+1))
	}
	r := &itdk.Router{
		ID:         id,
		Interfaces: []itdk.Interface{{Addr: addr, Hostname: hostname}},
		Truth: &itdk.GroundTruth{
			City: loc.City, Region: loc.Region, Country: loc.Country, Pos: loc.Pos,
		},
	}
	if err := f.corpus.Add(r); err != nil {
		f.t.Fatal(err)
	}
	for _, vp := range f.matrix.VPs() {
		rttMs := geo.MinRTTms(vp.Pos, loc.Pos)*1.25 + 1.0
		if err := f.matrix.SetPing(id, vp.Name, rtt.Sample{RTTms: rttMs, Method: rtt.ICMP}); err != nil {
			f.t.Fatal(err)
		}
	}
}

func (f *fixture) inputs() Inputs {
	return Inputs{Dict: f.dict, PSL: f.list, Corpus: f.corpus, RTT: f.matrix}
}

func TestTagZayoStyle(t *testing.T) {
	f := newFixture(t)
	london := f.place("london", "", "gb")
	f.addRouter("N1", london, "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com")

	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	group := f.corpus.GroupBySuffix(f.list)[0]
	tagged := tg.tag(group.Hosts[0])
	if tagged == nil {
		t.Fatal("tag returned nil")
	}
	var gotLHR, gotNTT bool
	for _, a := range tagged.Apparent {
		if a.Text == "lhr" && a.Type == geodict.HintIATA {
			gotLHR = true
			if a.Country != "uk" {
				t.Errorf("lhr tag should carry country uk, got %q", a.Country)
			}
		}
		if a.Text == "ntt" {
			gotNTT = true
		}
	}
	if !gotLHR {
		t.Errorf("lhr should be tagged; tags = %+v", tagged.Apparent)
	}
	if gotNTT {
		t.Error("ntt (Niuatoputapu, Tonga) must be rejected by the London VP's RTT")
	}
}

func TestTagRequiresRTT(t *testing.T) {
	f := newFixture(t)
	london := f.place("london", "", "gb")
	// Router with hostname but no RTT samples.
	r := &itdk.Router{ID: "N9", Interfaces: []itdk.Interface{{
		Addr: netip.MustParseAddr("203.0.113.9"), Hostname: "cr1.lhr1.example.net"}}}
	_ = f.corpus.Add(r)
	_ = london

	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	group := f.corpus.GroupBySuffix(f.list)[0]
	tagged := tg.tag(group.Hosts[0])
	if tagged == nil || tagged.HasTags() {
		t.Errorf("router without RTT samples must not be tagged: %+v", tagged)
	}
}

func TestTagSplitCLLI(t *testing.T) {
	f := newFixture(t)
	sj := f.place("san jose", "ca", "us")
	f.addRouter("N1", sj, "ae2-0.agr2.snjs-ca.windstream.net")
	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	group := f.corpus.GroupBySuffix(f.list)[0]
	tagged := tg.tag(group.Hosts[0])
	found := false
	for _, a := range tagged.Apparent {
		if a.Type == geodict.HintCLLI && a.Text == "snjsca" && a.Run2Span >= 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("split CLLI snjs-ca not tagged: %+v", tagged.Apparent)
	}
}

func TestTagLongCLLIPrefix(t *testing.T) {
	f := newFixture(t)
	newark := f.place("newark", "nj", "us")
	f.addRouter("N1", newark, "0.csi1.nwrknjnb-mse01.alter.net")
	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	group := f.corpus.GroupBySuffix(f.list)[0]
	tagged := tg.tag(group.Hosts[0])
	found := false
	for _, a := range tagged.Apparent {
		if a.Type == geodict.HintCLLI && a.Text == "nwrknj" && a.PrefixLen == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("long CLLI nwrknjnb not tagged as prefix: %+v", tagged.Apparent)
	}
}

func TestTagFacilityAddress(t *testing.T) {
	f := newFixture(t)
	pa := f.place("palo alto", "ca", "us")
	f.addRouter("N1", pa, "be-33.529bryant.ca.example.net")
	tg := &tagger{in: f.inputs(), cfg: DefaultConfig()}
	group := f.corpus.GroupBySuffix(f.list)[0]
	tagged := tg.tag(group.Hosts[0])
	found := false
	for _, a := range tagged.Apparent {
		if a.Type == geodict.HintFacility && a.Text == "529bryant" {
			found = true
		}
	}
	if !found {
		t.Errorf("street address 529bryant not tagged: %+v", tagged.Apparent)
	}
}

// buildHENet populates the fixture with an he.net-style IATA convention,
// including the custom "ash" geohint for Ashburn (paper fig. 8a).
func buildHENet(f *fixture) {
	cities := []struct {
		code string
		loc  *geodict.Location
		n    int
	}{
		{"sjc", f.place("san jose", "ca", "us"), 3},
		{"fra", f.place("frankfurt am main", "he", "de"), 3},
		{"lhr", f.place("london", "", "gb"), 3},
		{"tyo", f.place("tokyo", "", "jp"), 3},
		{"ash", f.place("ashburn", "va", "us"), 4}, // custom hint
	}
	id := 0
	for _, c := range cities {
		for i := 1; i <= c.n; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), c.loc,
				fmt.Sprintf("100ge%d-1.core%d.%s1.he.net", i, i, c.code))
		}
	}
}

func TestPipelineLearnsIATAConventionWithCustomHint(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)

	nc, tagged, err := RunSuffix(f.inputs(), DefaultConfig(), "he.net")
	if err != nil {
		t.Fatal(err)
	}
	if nc == nil {
		t.Fatalf("no NC learned; %d tagged", len(tagged))
	}
	if !nc.Class.Usable() {
		t.Errorf("NC should be usable, got %s (tally %+v, ppv %.2f)",
			nc.Class, nc.Tally, nc.Tally.PPV())
	}
	if got := nc.HintTypes(); len(got) != 1 || got[0] != geodict.HintIATA {
		t.Errorf("hint types = %v, want [iata]", got)
	}
	// The custom "ash" hint must be learned as Ashburn, VA.
	var ash *LearnedHint
	for _, lh := range nc.Learned {
		if lh.Hint == "ash" {
			ash = lh
		}
	}
	if ash == nil {
		t.Fatalf("ash not learned; learned = %v, tally %+v", nc.Learned, nc.Tally)
	}
	if ash.Loc.City != "ashburn" || ash.Loc.Region != "va" {
		t.Errorf("ash learned as %s, want Ashburn VA", ash.Loc.String())
	}
	if !ash.Collide {
		t.Error("ash collides with the IATA code for Nashua and should be flagged")
	}
	// After learning, the convention should be good: every extraction is
	// a TP.
	if nc.Class != Good {
		t.Errorf("post-learning class = %s, want good (tally %+v)", nc.Class, nc.Tally)
	}
	if nc.Tally.FP != 0 {
		t.Errorf("post-learning FP = %d, want 0", nc.Tally.FP)
	}
}

func TestAblationNoLearnedHints(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	cfg := DefaultConfig()
	cfg.LearnHints = false
	nc, _, err := RunSuffix(f.inputs(), cfg, "he.net")
	if err != nil {
		t.Fatal(err)
	}
	if nc == nil {
		t.Fatal("no NC learned")
	}
	if len(nc.Learned) != 0 {
		t.Error("ablation must not learn hints")
	}
	// Without learning, the ash routers stay FPs.
	if nc.Tally.FP == 0 {
		t.Errorf("ablation should leave FPs, tally = %+v", nc.Tally)
	}
}

func TestPipelineLearnsNTTCLLIConvention(t *testing.T) {
	f := newFixture(t)
	cities := []struct {
		clli, cc string
		loc      *geodict.Location
		n        int
	}{
		{"snjsca", "us", f.place("san jose", "ca", "us"), 3},
		{"sttlwa", "us", f.place("seattle", "wa", "us"), 3},
		{"nycmny", "us", f.place("new york", "ny", "us"), 3},
		{"londen", "uk", f.place("london", "", "gb"), 3},
		{"mlanit", "it", f.place("milan", "", "it"), 2}, // operator-invented
	}
	id := 0
	for _, c := range cities {
		for i := 1; i <= c.n; i++ {
			id++
			f.addRouter(fmt.Sprintf("N%d", id), c.loc,
				fmt.Sprintf("ae-%d.r%02d.%s%02d.%s.bb.gin.ntt.net", i, i, c.clli, i, c.cc))
		}
	}
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "ntt.net")
	if err != nil {
		t.Fatal(err)
	}
	if nc == nil {
		t.Fatal("no NC learned for ntt.net")
	}
	if !nc.AnnotatesCountry {
		t.Error("NTT convention should extract the country annotation")
	}
	var mlanit *LearnedHint
	for _, lh := range nc.Learned {
		if lh.Hint == "mlanit" {
			mlanit = lh
		}
	}
	if mlanit == nil {
		t.Fatalf("mlanit not learned; learned=%v tally=%+v class=%s", nc.Learned, nc.Tally, nc.Class)
	}
	if mlanit.Loc.City != "milan" || mlanit.Loc.Country != "it" {
		t.Errorf("mlanit learned as %s, want Milan IT", mlanit.Loc.String())
	}
	if mlanit.Collide {
		t.Error("mlanit is not in the CLLI dictionary, so no collision")
	}
	if nc.Class != Good {
		t.Errorf("class = %s, want good (tally %+v)", nc.Class, nc.Tally)
	}
}

func TestRunFullCorpus(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	// A second suffix with a city-name convention.
	for i, c := range []struct {
		loc *geodict.Location
	}{
		{f.place("munich", "by", "de")},
		{f.place("stuttgart", "bw", "de")},
		{f.place("dresden", "sn", "de")},
		{f.place("hamburg", "hh", "de")},
	} {
		f.addRouter(fmt.Sprintf("M%d", i),
			c.loc, fmt.Sprintf("pos-%d.%s%d.de.alter.net", i, geodict.NormalizeName(c.loc.City), i))
	}
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SuffixesWithGeohint != 2 {
		t.Errorf("SuffixesWithGeohint = %d, want 2", res.SuffixesWithGeohint)
	}
	if len(res.NCs) != 2 {
		t.Fatalf("NCs = %d, want 2 (%v)", len(res.NCs), res.NCs)
	}
	alter := res.NCs["alter.net"]
	if alter == nil || !alter.Class.Usable() {
		t.Fatalf("alter.net NC missing or unusable: %+v", alter)
	}
	if got := alter.HintTypes(); len(got) != 1 || got[0] != geodict.HintPlace {
		t.Errorf("alter.net hint types = %v, want [place]", got)
	}
	if res.RoutersGeolocated == 0 || res.RoutersWithGeohint == 0 {
		t.Errorf("coverage counters zero: %+v", res)
	}
	if res.RoutersGeolocated > res.RoutersWithGeohint {
		t.Errorf("geolocated %d exceeds with-geohint %d",
			res.RoutersGeolocated, res.RoutersWithGeohint)
	}
	if len(res.UsableNCs()) == 0 {
		t.Error("expected usable NCs")
	}
}

func TestGeolocate(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	nc, _, err := RunSuffix(f.inputs(), DefaultConfig(), "he.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	// A new hostname the pipeline never saw, using the learned hint.
	g, ok := Geolocate(nc, f.dict, "gcr-company.ve42.core9.ash1.he.net")
	if !ok {
		t.Fatal("geolocate failed")
	}
	if g.Loc.City != "ashburn" || !g.Learned {
		t.Errorf("geolocate(ash1) = %+v, want learned ashburn", g)
	}
	// A dictionary hint resolves without learning.
	g, ok = Geolocate(nc, f.dict, "te0-0-0.core1.sjc1.he.net")
	if !ok || g.Loc.City != "san jose" || g.Learned {
		t.Errorf("geolocate(sjc1) = %+v, ok=%v", g, ok)
	}
	// Non-matching hostname.
	if _, ok := Geolocate(nc, f.dict, "unrelated.example.org"); ok {
		t.Error("foreign hostname should not geolocate")
	}
	if _, ok := Geolocate(nil, f.dict, "x.he.net"); ok {
		t.Error("nil NC should not geolocate")
	}
}

func TestTallyMath(t *testing.T) {
	tl := Tally{TP: 8, FP: 1, FN: 2, UNK: 1}
	if tl.ATP() != 4 {
		t.Errorf("ATP = %d, want 4", tl.ATP())
	}
	if ppv := tl.PPV(); ppv < 0.88 || ppv > 0.90 {
		t.Errorf("PPV = %f, want 8/9", ppv)
	}
	var zero Tally
	if zero.PPV() != 0 {
		t.Error("PPV of zero tally should be 0")
	}
	zero.Add(tl)
	if zero.TP != 8 || zero.UNK != 1 {
		t.Errorf("Add failed: %+v", zero)
	}
}

func TestClassify(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		t    Tally
		want Classification
	}{
		{Tally{TP: 10, UniqueHints: 3}, Good},
		{Tally{TP: 9, FP: 1, UniqueHints: 3}, Good},
		{Tally{TP: 8, FP: 2, UniqueHints: 3}, Promising},
		{Tally{TP: 5, FP: 5, UniqueHints: 3}, Poor},
		{Tally{TP: 10, UniqueHints: 2}, Poor}, // too few unique hints
	}
	for _, c := range cases {
		if got := classify(c.t, cfg); got != c.want {
			t.Errorf("classify(%+v) = %s, want %s", c.t, got, c.want)
		}
	}
	if !Good.Usable() || !Promising.Usable() || Poor.Usable() {
		t.Error("usability flags wrong")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeNone: "-", OutcomeTP: "TP", OutcomeFP: "FP",
		OutcomeFN: "FN", OutcomeUNK: "UNK",
	} {
		if o.String() != want {
			t.Errorf("outcome %d = %q", o, o.String())
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Inputs{}, DefaultConfig()); err == nil {
		t.Error("incomplete inputs should error")
	}
	f := newFixture(t)
	if _, _, err := RunSuffix(f.inputs(), DefaultConfig(), "missing.net"); err == nil {
		t.Error("unknown suffix should error")
	}
}

// sparseFixture builds a fixture whose nearest vantage point (Atlanta)
// is close enough to rule out Nashua for the "ash" routers but too far
// to separate Ashburn VA from the other Ash* cities — the regime where
// stage 4's facility/population priors decide (paper figs. 8a and 11).
func sparseFixture(t *testing.T) *fixture {
	t.Helper()
	dict := geodict.MustDefault()
	vps := []*rtt.VP{
		vpAt(dict, "atl-us", "atlanta", "ga", "us"),
		vpAt(dict, "lon-gb", "london", "", "gb"),
		vpAt(dict, "tyo-jp", "tokyo", "", "jp"),
		vpAt(dict, "sjc-us", "san jose", "ca", "us"),
	}
	return &fixture{
		t: t, dict: dict, list: psl.MustDefault(),
		corpus: itdk.NewCorpus("sparse", false),
		matrix: rtt.NewMatrix(vps),
	}
}

func TestAblationRankingPriors(t *testing.T) {
	// With only distant VPs, several abbreviation-compatible east-coast
	// cities are RTT-consistent for the "ash" routers; the priors are
	// what select Ashburn, VA. Disabling them changes (and worsens) the
	// learned interpretation.
	run := func(facility, population bool) *LearnedHint {
		f := sparseFixture(t)
		buildHENet(f)
		cfg := DefaultConfig()
		cfg.LearnRankFacility = facility
		cfg.LearnRankPopulation = population
		nc, _, err := RunSuffix(f.inputs(), cfg, "he.net")
		if err != nil || nc == nil {
			t.Fatalf("nc=%v err=%v", nc, err)
		}
		for _, lh := range nc.Learned {
			if lh.Hint == "ash" {
				return lh
			}
		}
		return nil
	}
	withPriors := run(true, true)
	if withPriors == nil || withPriors.Loc.City != "ashburn" || withPriors.Loc.Region != "va" {
		t.Fatalf("with priors: ash = %v, want Ashburn VA", withPriors)
	}
	without := run(false, false)
	if without != nil && without.Loc.City == "ashburn" && without.Loc.Region == "va" {
		t.Errorf("priors disabled but ash still resolved to Ashburn VA — ablation has no effect")
	}
}

func TestConfigPPVThresholds(t *testing.T) {
	// Raising GoodPPV to an impossible level demotes good conventions.
	f := newFixture(t)
	buildHENet(f)
	cfg := DefaultConfig()
	cfg.GoodPPV = 1.01
	cfg.PromisingPPV = 1.01
	nc, _, err := RunSuffix(f.inputs(), cfg, "he.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	if nc.Class != Poor {
		t.Errorf("impossible thresholds should classify poor, got %s", nc.Class)
	}
}

func TestConfigCongruenceThreshold(t *testing.T) {
	// Raising the no-annotation congruence requirement above the number
	// of ash routers suppresses the learned hint.
	f := newFixture(t)
	buildHENet(f)
	cfg := DefaultConfig()
	cfg.LearnCongruentNoCC = 10
	nc, _, err := RunSuffix(f.inputs(), cfg, "he.net")
	if err != nil || nc == nil {
		t.Fatalf("nc=%v err=%v", nc, err)
	}
	for _, lh := range nc.Learned {
		if lh.Hint == "ash" {
			t.Error("congruence threshold of 10 should suppress ash (only 4 routers)")
		}
	}
}
