package core

import (
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/geo"
	"hoiho/internal/itdk"
	"hoiho/internal/rtt"
)

// addMultiHostnameRouter creates a router whose interfaces carry several
// hostnames, with honest pings from every VP for its true location.
func (f *fixture) addMultiHostnameRouter(id string, loc *locref, hostnames ...string) {
	f.t.Helper()
	r := &itdk.Router{ID: id}
	for _, hn := range hostnames {
		f.nextIP++
		r.Interfaces = append(r.Interfaces, itdk.Interface{
			Addr:     netip.MustParseAddr(netipFor(f.nextIP)),
			Hostname: hn,
		})
	}
	if err := f.corpus.Add(r); err != nil {
		f.t.Fatal(err)
	}
	for _, vp := range f.matrix.VPs() {
		s := rtt.Sample{RTTms: geo.MinRTTms(vp.Pos, loc.pos)*1.25 + 1, Method: rtt.ICMP}
		if err := f.matrix.SetPing(id, vp.Name, s); err != nil {
			f.t.Fatal(err)
		}
	}
}

type locref struct{ pos geo.LatLong }

func netipFor(n int) string {
	return fmt.Sprintf("203.0.113.%d", n%254+1)
}

func TestDetectStaleConsensus(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)

	// Figure 3a: a router in Ashburn with three consistent "iad"
	// hostnames and one stale "sjc" hostname (the router is nowhere
	// near San Jose, which the cgs VP's 1.4 ms RTT proves).
	ashburn := f.place("ashburn", "va", "us")
	f.addMultiHostnameRouter("stale1", &locref{pos: ashburn.Pos},
		"xe-0-0.core1.iad1.he.net",
		"xe-0-1.core1.iad1.he.net",
		"xe-0-2.core1.iad1.he.net",
		"xe-0-3.core1.sjc1.he.net", // stale
	)

	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stales := DetectStale(f.inputs(), res)
	var hit *StaleHostname
	for i := range stales {
		if stales[i].RouterID == "stale1" {
			hit = &stales[i]
		}
	}
	if hit == nil {
		t.Fatalf("stale hostname not detected; stales = %+v", stales)
	}
	if hit.Hostname != "xe-0-3.core1.sjc1.he.net" || hit.Hint != "sjc" {
		t.Errorf("wrong hostname flagged: %+v", hit)
	}
	if hit.Consensus == nil || hit.Consensus.City != "washington" && hit.Consensus.City != "ashburn" {
		t.Errorf("consensus = %+v, want the iad interpretation", hit.Consensus)
	}
	if hit.ConsensusCount < 3 {
		t.Errorf("consensus count = %d, want >= 3", hit.ConsensusCount)
	}
	// The consistent hostnames must not be flagged.
	for _, s := range stales {
		if s.RouterID == "stale1" && s.Hint != "sjc" {
			t.Errorf("consistent hostname flagged: %+v", s)
		}
	}
}

func TestDetectStaleSingleHostname(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	// A router in Tokyo whose only hostname claims Frankfurt: RTT
	// contradiction without consensus.
	tokyo := f.place("tokyo", "", "jp")
	f.addMultiHostnameRouter("stale2", &locref{pos: tokyo.Pos},
		"xe-1-1.core1.fra1.he.net",
	)
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stales := DetectStale(f.inputs(), res)
	found := false
	for _, s := range stales {
		if s.RouterID == "stale2" {
			found = true
			if s.Consensus != nil {
				t.Errorf("single-hostname stale should have no consensus: %+v", s)
			}
		}
	}
	if !found {
		t.Error("RTT-contradicted single hostname not flagged")
	}
}

func TestDetectStaleCleanCorpus(t *testing.T) {
	f := newFixture(t)
	buildHENet(f)
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stales := DetectStale(f.inputs(), res); len(stales) != 0 {
		t.Errorf("clean corpus flagged stales: %+v", stales)
	}
}

func TestDetectStaleIgnoresPoorNCs(t *testing.T) {
	f := newFixture(t)
	// A suffix too small to learn anything usable.
	london := f.place("london", "", "gb")
	f.addRouter("L1", london, "x.lhr1.tiny.net")
	res, err := Run(f.inputs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stales := DetectStale(f.inputs(), res); len(stales) != 0 {
		t.Errorf("poor/absent NC should contribute no stales: %+v", stales)
	}
}
