package core

import (
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

// overrideKey identifies a learned geohint within a suffix.
type overrideKey struct {
	t    geodict.HintType
	hint string
}

// resolveEntry memoizes one dictionary resolution. The slice is shared
// across lookups; resolve callers only iterate it.
type resolveEntry struct {
	locs   []*geodict.Location
	inDict bool
}

// consistKey identifies one RTT-consistency question: the matrix and
// tolerance are fixed for the life of an evalCtx, so (router, position)
// determines the verdict.
type consistKey struct {
	router string
	pos    geo.LatLong
}

// evalCtx carries everything needed to classify regex extractions.
type evalCtx struct {
	in        Inputs
	cfg       Config
	overrides map[overrideKey]*geodict.Location

	// Stage 3 evaluates every candidate regex against every hostname in
	// the group, so the same extraction strings and the same
	// (router, location) consistency questions recur across candidates.
	// Both answers are pure functions of immutable inputs (the dictionary
	// and the RTT matrix), so they memoize exactly. resolveMemo sits
	// below the override check in resolve, keeping stage-4 installs
	// visible.
	resolveMemo map[rex.Extraction]resolveEntry
	rttMemo     map[consistKey]bool

	// Set building re-applies the same regex to the same hostnames
	// across trial sets (selectNC grows sets member by member, and
	// re-selects after learning), so regex applications memoize per
	// (regex, host index). A regex earns a memo slice on its second
	// evaluateSet appearance — singles-only regexes never pay the
	// memory — and memoBudget bounds total entries. The evals counter
	// keeps counting applications, cached or not.
	matchMemo  map[*rex.Regex][]matchEntry
	matchSeen  map[*rex.Regex]bool
	memoTagged *Tagged // identity guard: first element of the memoized tagged slice
	memoHosts  int
	memoBudget int

	// evals counts regex applications and rttChecks counts consistency
	// tests across the whole stage 3-5 lifetime of the context. Plain
	// fields (an evalCtx belongs to one worker), reported to a span only
	// once the group finishes.
	evals     int64
	rttChecks int64
}

// matchMemoBudget caps the total memoized regex applications per
// evalCtx (~40 MB at 80 bytes/entry); past it, applications recompute.
const matchMemoBudget = 1 << 19

// matchEntry memoizes one regex application to one tagged hostname.
type matchEntry struct {
	ext  rex.Extraction
	ok   bool
	done bool
}

func newEvalCtx(in Inputs, cfg Config) *evalCtx {
	return &evalCtx{
		in: in, cfg: cfg,
		overrides:   make(map[overrideKey]*geodict.Location),
		resolveMemo: make(map[rex.Extraction]resolveEntry),
		rttMemo:     make(map[consistKey]bool),
		matchMemo:   make(map[*rex.Regex][]matchEntry),
		matchSeen:   make(map[*rex.Regex]bool),
		memoBudget:  matchMemoBudget,
	}
}

// regexMemo returns the memo slice for r over the current tagged slice,
// or nil when r should be evaluated directly (first appearance, or
// budget exhausted).
func (e *evalCtx) regexMemo(r *rex.Regex, tagged []*Tagged) []matchEntry {
	if len(tagged) == 0 {
		return nil
	}
	// Memoized entries are keyed by host index, so they are only valid
	// against the tagged slice they were computed for.
	if e.memoTagged != tagged[0] || e.memoHosts != len(tagged) {
		clear(e.matchMemo)
		clear(e.matchSeen)
		e.memoTagged, e.memoHosts = tagged[0], len(tagged)
		e.memoBudget = matchMemoBudget
	}
	if mm, ok := e.matchMemo[r]; ok {
		return mm
	}
	if !e.matchSeen[r] {
		e.matchSeen[r] = true
		return nil
	}
	if e.memoBudget < len(tagged) {
		return nil
	}
	e.memoBudget -= len(tagged)
	mm := make([]matchEntry, len(tagged))
	e.matchMemo[r] = mm
	return mm
}

// consistent answers the RTT-consistency question through the memo.
// Callers count rttChecks themselves: the counter measures questions
// asked, which stays invariant whether or not the answer was cached.
func (e *evalCtx) consistent(router string, pos geo.LatLong) bool {
	k := consistKey{router, pos}
	if v, ok := e.rttMemo[k]; ok {
		return v
	}
	v := e.in.RTT.Consistent(router, pos, e.cfg.ToleranceMs)
	e.rttMemo[k] = v
	return v
}

// resolve maps an extraction to candidate locations. inDict reports
// whether the extracted string exists in the dictionary (or overrides)
// at all — when false the outcome is UNK. Candidates are filtered by any
// extracted state/country annotation.
func (e *evalCtx) resolve(ext rex.Extraction) (locs []*geodict.Location, inDict bool) {
	if ov, ok := e.overrides[overrideKey{ext.Type, ext.Hint}]; ok {
		return []*geodict.Location{ov}, true
	}
	if ent, ok := e.resolveMemo[ext]; ok {
		return ent.locs, ent.inDict
	}
	locs, inDict = e.resolveDict(ext)
	e.resolveMemo[ext] = resolveEntry{locs, inDict}
	return locs, inDict
}

// resolveDict is the uncached dictionary resolution behind resolve.
func (e *evalCtx) resolveDict(ext rex.Extraction) (locs []*geodict.Location, inDict bool) {
	d := e.in.Dict
	switch ext.Type {
	case geodict.HintIATA:
		for _, a := range d.IATA(ext.Hint) {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintICAO:
		if a := d.ICAO(ext.Hint); a != nil {
			loc := a.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintLocode:
		if c := d.Locode(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintCLLI:
		if c := d.CLLI(ext.Hint); c != nil {
			loc := c.Loc
			locs = append(locs, &loc)
		}
	case geodict.HintPlace:
		locs = append(locs, d.Place(ext.Hint)...)
	case geodict.HintFacility:
		for _, f := range d.FacilityByAddress(ext.Hint) {
			loc := f.Loc
			locs = append(locs, &loc)
		}
	}
	if len(locs) == 0 {
		return nil, false
	}
	inDict = true
	locs = e.filterAnnotations(locs, ext)
	return locs, inDict
}

// filterAnnotations drops candidate locations contradicted by extracted
// state/country codes.
func (e *evalCtx) filterAnnotations(locs []*geodict.Location, ext rex.Extraction) []*geodict.Location {
	d := e.in.Dict
	out := locs[:0]
	for _, loc := range locs {
		if ext.Country != "" && !d.CountryEquivalent(ext.Country, loc.Country) {
			continue
		}
		if ext.State != "" && !d.StateEquivalent(ext.State, loc.Country, loc.Region) {
			continue
		}
		out = append(out, loc)
	}
	return out
}

// outcome classifies a single regex application to a tagged hostname
// (paper §5.3). matched/ext come from the regex; the tagged hostname
// supplies the apparent-geohint expectations.
func (e *evalCtx) outcome(t *Tagged, ext rex.Extraction, matched bool) (Outcome, string) {
	if !e.in.RTT.HasPing(t.RH.Router.ID) {
		// No delay constraints: the hostname can neither confirm nor
		// refute a convention.
		return OutcomeNone, ""
	}
	if !matched {
		if t.HasTags() {
			return OutcomeFN, ""
		}
		return OutcomeNone, ""
	}
	locs, inDict := e.resolve(ext)
	if !inDict {
		return OutcomeUNK, ext.Hint
	}
	if len(locs) == 0 {
		// The extracted annotation contradicts every interpretation.
		return OutcomeFP, ext.Hint
	}
	consistent := false
	for _, loc := range locs {
		e.rttChecks++
		if e.consistent(t.RH.Router.ID, loc.Pos) {
			consistent = true
			break
		}
	}
	if !consistent {
		return OutcomeFP, ext.Hint
	}
	// The extraction is plausible; penalise a missed state/country
	// annotation that stage 2 tagged as part of this apparent geohint.
	for i := range t.Apparent {
		tag := &t.Apparent[i]
		if tag.Text != ext.Hint {
			continue
		}
		if tag.Country != "" && ext.Country == "" {
			return OutcomeFN, ext.Hint
		}
		if tag.State != "" && ext.State == "" && tag.Country == "" {
			// State-only conventions; when a country is present the
			// country annotation dominates.
			return OutcomeFN, ext.Hint
		}
		break
	}
	return OutcomeTP, ext.Hint
}

// hostOutcome records how an NC classified one hostname.
type hostOutcome struct {
	Outcome  Outcome
	Hint     string // extracted geohint (TP/FP/UNK)
	RegexIdx int    // which regex decided (-1 when none matched)
	Ext      rex.Extraction
}

// ncEval is the detailed evaluation of a regex set over a suffix group.
type ncEval struct {
	Tally    Tally
	PerHost  []hostOutcome
	PerRegex []Tally // per-regex contribution, including unique hints
}

// evaluateSet applies an ordered regex set to every tagged hostname: the
// first matching regex decides the hostname's outcome (paper §5.3's NC
// semantics). Per-regex tallies support the set-building requirement
// that every member extract at least three unique geohints.
func (e *evalCtx) evaluateSet(regexes []*rex.Regex, tagged []*Tagged) ncEval {
	ev := ncEval{
		PerHost:  make([]hostOutcome, len(tagged)),
		PerRegex: make([]Tally, len(regexes)),
	}
	uniq := make(map[string]bool)
	perRegexUniq := make([]map[string]bool, len(regexes))
	memos := make([][]matchEntry, len(regexes))
	for i := range perRegexUniq {
		perRegexUniq[i] = make(map[string]bool)
		memos[i] = e.regexMemo(regexes[i], tagged)
	}

	for hi, t := range tagged {
		decided := false
		for ri, r := range regexes {
			e.evals++
			var ext rex.Extraction
			var ok bool
			if mm := memos[ri]; mm != nil {
				me := &mm[hi]
				if !me.done {
					me.ext, me.ok = r.Match(t.H.Full)
					me.done = true
				}
				ext, ok = me.ext, me.ok
			} else {
				ext, ok = r.Match(t.H.Full)
			}
			if !ok {
				continue
			}
			o, hint := e.outcome(t, ext, true)
			ev.PerHost[hi] = hostOutcome{Outcome: o, Hint: hint, RegexIdx: ri, Ext: ext}
			bump(&ev.Tally, o)
			bump(&ev.PerRegex[ri], o)
			if o == OutcomeTP {
				uniq[hint] = true
				perRegexUniq[ri][hint] = true
			}
			decided = true
			break
		}
		if !decided {
			o, _ := e.outcome(t, rex.Extraction{}, false)
			ev.PerHost[hi] = hostOutcome{Outcome: o, RegexIdx: -1}
			bump(&ev.Tally, o)
		}
	}
	ev.Tally.UniqueHints = len(uniq)
	for i := range regexes {
		ev.PerRegex[i].UniqueHints = len(perRegexUniq[i])
	}
	return ev
}

func bump(t *Tally, o Outcome) {
	switch o {
	case OutcomeTP:
		t.TP++
	case OutcomeFP:
		t.FP++
	case OutcomeFN:
		t.FN++
	case OutcomeUNK:
		t.UNK++
	}
}
