package core

import (
	"hoiho/internal/geodict"
	"hoiho/internal/hostname"
	"hoiho/internal/itdk"
)

// Apparent is a stage-2 tag: a string in a hostname that the dictionary
// can interpret as a location whose theoretical best-case RTT from every
// vantage point is no larger than the measured RTT (paper §5.2).
type Apparent struct {
	Text string              // the candidate geohint string
	Type geodict.HintType    // dictionary that interpreted it
	Locs []*geodict.Location // RTT-consistent interpretations

	// State and Country record annotation codes found elsewhere in the
	// hostname that correspond to an interpretation ("lhr" + "uk"); a
	// regex that fails to extract them is penalised with an FN.
	State   string
	Country string

	// Structural references for the regex builder.
	SpanIdx   int // index into Hostname.Spans of the hint's span
	RunIdx    int // index into span.Runs
	PrefixLen int // >0: hint is the first PrefixLen chars of a longer run
	// Split CLLI: second component's location (-1 when not split).
	Run2Span, Run2Idx int
	// Annotation token positions (-1 when absent).
	CCSpan, CCRun int
	StSpan, StRun int
}

// Tagged pairs a router hostname with its parse and apparent geohints.
type Tagged struct {
	RH       itdk.RouterHostname
	H        *hostname.Hostname
	Apparent []Apparent
}

// HasTags reports whether stage 2 found any apparent geohint.
func (t *Tagged) HasTags() bool { return len(t.Apparent) > 0 }

// tagger performs stage-2 identification over one suffix group.
type tagger struct {
	in  Inputs
	cfg Config

	// rttChecks counts speed-of-light consistency tests since the last
	// reset. A plain int on the per-worker tagger, reported to a span
	// only at group boundaries, so counting costs the hot path nothing.
	rttChecks int64
}

// tag parses and tags a single router hostname. It returns nil when the
// hostname cannot be parsed. Routers without RTT samples produce a
// Tagged with no apparent geohints: with no delay constraints the method
// cannot distinguish a geohint from a chance dictionary collision.
func (tg *tagger) tag(rh itdk.RouterHostname) *Tagged {
	h, err := hostname.Parse(rh.Hostname, rh.Suffix)
	if err != nil {
		return nil
	}
	t := &Tagged{RH: rh, H: h}
	if !tg.in.RTT.HasPing(rh.Router.ID) {
		return t
	}
	consistent := func(loc *geodict.Location) bool {
		tg.rttChecks++
		return tg.in.RTT.Consistent(rh.Router.ID, loc.Pos, tg.cfg.ToleranceMs)
	}

	addTag := func(a Apparent) {
		// Locate annotation codes for the consistent interpretations,
		// never re-using a run the hint itself occupies.
		a.CCSpan, a.CCRun, a.StSpan, a.StRun = -1, -1, -1, -1
		skip := hintRuns(&a)
		for _, loc := range a.Locs {
			cc, ccs, ccr := tg.findCountryToken(h, loc, skip)
			if cc != "" && a.Country == "" {
				a.Country, a.CCSpan, a.CCRun = cc, ccs, ccr
			}
			st, sts, str := tg.findStateToken(h, loc, skip)
			if st != "" && a.State == "" {
				a.State, a.StSpan, a.StRun = st, sts, str
			}
		}
		t.Apparent = append(t.Apparent, a)
	}

	d := tg.in.Dict
	for si := range h.Spans {
		sp := &h.Spans[si]
		for ri := range sp.Runs {
			run := sp.Runs[ri].Text
			base := Apparent{Text: run, SpanIdx: si, RunIdx: ri, Run2Span: -1, Run2Idx: -1}

			switch len(run) {
			case 3:
				var locs []*geodict.Location
				for _, a := range d.IATA(run) {
					if consistent(&a.Loc) {
						loc := a.Loc
						locs = append(locs, &loc)
					}
				}
				if len(locs) > 0 {
					a := base
					a.Type = geodict.HintIATA
					a.Locs = locs
					addTag(a)
				}
			case 4:
				if ap := d.ICAO(run); ap != nil && consistent(&ap.Loc) {
					a := base
					a.Type = geodict.HintICAO
					loc := ap.Loc
					a.Locs = []*geodict.Location{&loc}
					addTag(a)
				}
			case 5:
				if c := d.Locode(run); c != nil && consistent(&c.Loc) {
					a := base
					a.Type = geodict.HintLocode
					loc := c.Loc
					a.Locs = []*geodict.Location{&loc}
					addTag(a)
				}
			}

			// CLLI prefixes: exact six letters, or the first six letters
			// of a longer embedding (paper fig. 6d, alter.net).
			if len(run) >= 6 {
				prefix := run[:6]
				if c := d.CLLI(prefix); c != nil && consistent(&c.Loc) {
					a := base
					a.Type = geodict.HintCLLI
					loc := c.Loc
					a.Locs = []*geodict.Location{&loc}
					a.Text = prefix
					if len(run) > 6 {
						a.PrefixLen = 6
					}
					addTag(a)
				}
			}

			// City/town names, exact normalized match (min length 4 to
			// avoid swamping three-letter codes).
			if len(run) >= 4 {
				var locs []*geodict.Location
				for _, loc := range d.Place(run) {
					if consistent(loc) {
						locs = append(locs, loc)
					}
				}
				if len(locs) > 0 {
					a := base
					a.Type = geodict.HintPlace
					a.Locs = locs
					addTag(a)
				}
			}
		}

		// Facility street addresses: spans mixing digits and letters
		// ("529bryant"), matched against PeeringDB-style records.
		if sp.HasDigit() && len(sp.Runs) > 0 && len(sp.Text) >= 4 {
			var locs []*geodict.Location
			for _, f := range d.FacilityByAddress(sp.Text) {
				if consistent(&f.Loc) {
					loc := f.Loc
					locs = append(locs, &loc)
				}
			}
			if len(locs) > 0 {
				a := Apparent{
					Text: sp.Text, Type: geodict.HintFacility, Locs: locs,
					SpanIdx: si, RunIdx: -1, Run2Span: -1, Run2Idx: -1,
				}
				addTag(a)
			}
		}
	}

	// Split CLLI prefixes: adjacent 4- and 2-letter runs across a span
	// boundary (paper fig. 6e, Windstream).
	tg.tagSplitCLLI(t, consistent)
	return t
}

// tagSplitCLLI finds 4+2 split CLLI prefixes in adjacent spans.
func (tg *tagger) tagSplitCLLI(t *Tagged, consistent func(*geodict.Location) bool) {
	h := t.H
	for si := 0; si+1 < len(h.Spans); si++ {
		a, b := &h.Spans[si], &h.Spans[si+1]
		if len(a.Runs) == 0 || len(b.Runs) == 0 {
			continue
		}
		// Spans must be adjacent within the same label.
		if a.Label != b.Label {
			continue
		}
		ra := a.Runs[len(a.Runs)-1]
		rb := b.Runs[0]
		if len(ra.Text) != 4 || len(rb.Text) != 2 {
			continue
		}
		prefix := ra.Text + rb.Text
		c := tg.in.Dict.CLLI(prefix)
		if c == nil || !consistent(&c.Loc) {
			continue
		}
		loc := c.Loc
		tag := Apparent{
			Text: prefix, Type: geodict.HintCLLI,
			Locs:    []*geodict.Location{&loc},
			SpanIdx: si, RunIdx: len(a.Runs) - 1,
			Run2Span: si + 1, Run2Idx: 0,
			CCSpan: -1, CCRun: -1, StSpan: -1, StRun: -1,
		}
		skip := hintRuns(&tag)
		cc, ccs, ccr := tg.findCountryToken(h, &loc, skip)
		if cc != "" {
			tag.Country, tag.CCSpan, tag.CCRun = cc, ccs, ccr
		}
		st, sts, str := tg.findStateToken(h, &loc, skip)
		if st != "" {
			tag.State, tag.StSpan, tag.StRun = st, sts, str
		}
		t.Apparent = append(t.Apparent, tag)
	}
}

// hintRuns returns the (span, run) pairs a tag's hint occupies, which
// annotation scanning must skip.
func hintRuns(a *Apparent) map[[2]int]bool {
	skip := map[[2]int]bool{{a.SpanIdx, a.RunIdx}: true}
	if a.Run2Span >= 0 {
		skip[[2]int{a.Run2Span, a.Run2Idx}] = true
	}
	return skip
}

// findCountryToken searches the hostname's other runs for a token that
// denotes loc's country (including aliases: "uk" for GB). It returns the
// token and its span/run indices, or "" when absent.
func (tg *tagger) findCountryToken(h *hostname.Hostname, loc *geodict.Location, skip map[[2]int]bool) (string, int, int) {
	if loc.Country == "" {
		return "", -1, -1
	}
	for si := range h.Spans {
		for ri := range h.Spans[si].Runs {
			if skip[[2]int{si, ri}] {
				continue
			}
			tok := h.Spans[si].Runs[ri].Text
			if len(tok) < 2 || len(tok) > 3 {
				continue
			}
			if tg.in.Dict.CountryEquivalent(tok, loc.Country) {
				return tok, si, ri
			}
		}
	}
	return "", -1, -1
}

// findStateToken searches for a token denoting loc's state/region.
func (tg *tagger) findStateToken(h *hostname.Hostname, loc *geodict.Location, skip map[[2]int]bool) (string, int, int) {
	if loc.Region == "" {
		return "", -1, -1
	}
	for si := range h.Spans {
		for ri := range h.Spans[si].Runs {
			if skip[[2]int{si, ri}] {
				continue
			}
			tok := h.Spans[si].Runs[ri].Text
			if len(tok) < 2 || len(tok) > 3 {
				continue
			}
			if tg.in.Dict.StateEquivalent(tok, loc.Country, loc.Region) {
				return tok, si, ri
			}
		}
	}
	return "", -1, -1
}
