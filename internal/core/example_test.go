package core_test

import (
	"fmt"
	"log"
	"net/netip"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// Example demonstrates the full public API surface: assemble inputs,
// learn a convention for a suffix, and geolocate an unseen hostname —
// including one that uses the operator's custom "ash" code for Ashburn.
func Example() {
	dict := geodict.MustDefault()
	list := psl.MustDefault()

	// Vantage points with known locations.
	var vps []*rtt.VP
	for _, v := range []struct{ name, city, region, country string }{
		{"cgs-us", "college park", "md", "us"},
		{"sjc-us", "san jose", "ca", "us"},
		{"lon-gb", "london", "", "gb"},
		{"tyo-jp", "tokyo", "", "jp"},
	} {
		for _, loc := range dict.Place(v.city) {
			if loc.Region == v.region && loc.Country == v.country {
				vps = append(vps, &rtt.VP{Name: v.name, City: v.city,
					Country: v.country, Pos: loc.Pos})
			}
		}
	}
	matrix := rtt.NewMatrix(vps)
	corpus := itdk.NewCorpus("example", false)

	// A small corpus: IATA codes, with "ash" repurposed for Ashburn VA.
	ip := 0
	addRouter := func(city, region, country, hostname string) {
		var pos geo.LatLong
		for _, loc := range dict.Place(city) {
			if loc.Region == region && loc.Country == country {
				pos = loc.Pos
			}
		}
		ip++
		r := &itdk.Router{ID: fmt.Sprintf("N%d", ip), Interfaces: []itdk.Interface{{
			Addr:     netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", ip)),
			Hostname: hostname,
		}}}
		if err := corpus.Add(r); err != nil {
			log.Fatal(err)
		}
		for _, vp := range vps {
			s := rtt.Sample{RTTms: geo.MinRTTms(vp.Pos, pos)*1.25 + 1, Method: rtt.ICMP}
			if err := matrix.SetPing(r.ID, vp.Name, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 1; i <= 3; i++ {
		addRouter("san jose", "ca", "us", fmt.Sprintf("ae-%d.core%d.sjc1.example.net", i, i))
		addRouter("london", "", "gb", fmt.Sprintf("ae-%d.core%d.lhr1.example.net", i, i))
		addRouter("tokyo", "", "jp", fmt.Sprintf("ae-%d.core%d.tyo1.example.net", i, i))
		addRouter("ashburn", "va", "us", fmt.Sprintf("ae-%d.core%d.ash1.example.net", i, i))
	}

	in := core.Inputs{Dict: dict, PSL: list, Corpus: corpus, RTT: matrix}
	res, err := core.Run(in, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	nc := res.NCs["example.net"]
	fmt.Printf("class: %s\n", nc.Class)
	for _, lh := range nc.Learned {
		fmt.Printf("learned: %s\n", lh)
	}
	g, _ := core.Geolocate(nc, dict, "xe-9.core9.ash2.example.net")
	fmt.Printf("geolocated: %s\n", g.Loc.String())
	// Output:
	// class: good
	// learned: ash -> Ashburn, VA, US (iata)
	// geolocated: Ashburn, VA, US
}
