package core

import (
	"fmt"
	"runtime"
	"sync"

	"hoiho/internal/itdk"
	"hoiho/internal/obs"
	"hoiho/internal/rex"
)

// groupResult is the outcome of running stages 2-5 over one suffix
// group. Workers produce these independently; the merge step folds them
// into a Result in suffix-sorted order.
type groupResult struct {
	// tagged holds every parseable hostname in the group with its
	// stage-2 apparent geohints (including hostnames with none).
	tagged []*Tagged
	// anyTag reports whether stage 2 tagged at least one hostname — a
	// group without a single apparent geohint cannot yield a convention
	// and short-circuits before candidate generation.
	anyTag bool
	// nc is the selected naming convention, nil when none qualified.
	nc *NamingConvention
	// taggedRouters lists router IDs stage 2 tagged; geolocated lists
	// router IDs a usable NC extracted a true-positive geohint from.
	taggedRouters []string
	geolocated    []string
}

// tagGroup runs stage 2 — apparent-geohint tagging — over one suffix
// group. Shared by runGroup and the exported TagSuffix.
func tagGroup(tg *tagger, group *itdk.SuffixGroup) *groupResult {
	gr := &groupResult{}
	for _, rh := range group.Hosts {
		t := tg.tag(rh)
		if t == nil {
			continue
		}
		gr.tagged = append(gr.tagged, t)
		if t.HasTags() {
			gr.anyTag = true
			gr.taggedRouters = append(gr.taggedRouters, rh.Router.ID)
		}
	}
	return gr
}

// runGroup executes stages 2-5 on one suffix group — the shared body of
// Run and RunSuffix. sp is the group's span (nil when tracing is off);
// stage counters accumulate in plain fields on the tagger and evalCtx
// and are reported only at stage boundaries, so the per-hostname paths
// cost nothing extra with tracing disabled.
func runGroup(tg *tagger, cfg Config, group *itdk.SuffixGroup, sp *obs.Span) *groupResult {
	// Stage 2: tag apparent geohints.
	s2 := sp.Child("stage2")
	tg.rttChecks = 0
	gr := tagGroup(tg, group)
	s2.Count("hostnames", int64(len(group.Hosts)))
	s2.Count("hostnames_parsed", int64(len(gr.tagged)))
	s2.Count("hostnames_tagged", int64(len(gr.taggedRouters)))
	s2.Count("rtt_checks", tg.rttChecks)
	s2.End()
	if !gr.anyTag {
		return gr
	}

	// Stage 3: build and evaluate candidate regexes; stage 4: learn
	// operator geohints from every qualifying candidate NC; re-select
	// with overrides in effect.
	s3 := sp.Child("learn")
	pool := generateCandidates(gr.tagged, cfg.MaxCandidates)
	e := newEvalCtx(tg.in, cfg)
	set, ev, learned := learnAndSelect(group.Suffix, pool, gr.tagged, e, cfg)
	s3.Count("candidates", int64(len(pool)))
	s3.Count("evaluations", e.evals)
	s3.Count("rtt_checks", e.rttChecks)
	s3.Count("learned_hints", int64(len(learned)))
	s3.End()
	if set == nil {
		return gr
	}

	// Stage 5: classify.
	nc := &NamingConvention{
		Suffix:  group.Suffix,
		Regexes: set,
		Learned: learned,
		Tally:   ev.Tally,
		Class:   classify(ev.Tally, cfg),
	}
	for _, r := range set {
		for _, role := range r.Roles() {
			switch role {
			case rex.RoleState:
				nc.AnnotatesState = true
			case rex.RoleCountry:
				nc.AnnotatesCountry = true
			}
		}
	}
	gr.nc = nc

	if nc.Class.Usable() {
		for hi, ho := range ev.PerHost {
			if ho.Outcome == OutcomeTP {
				gr.geolocated = append(gr.geolocated, gr.tagged[hi].RH.Router.ID)
			}
		}
	}
	return gr
}

// Run executes the five-stage pipeline over the assembled inputs and
// returns the learned naming conventions for every suffix with an
// apparent geohint.
//
// Suffix groups are independent (§5.2-§5.5 learn each registrable
// domain in isolation), so stages 2-5 run concurrently across groups on
// a pool of cfg.Workers goroutines. The merge happens in suffix-sorted
// order, so the Result is identical for any worker count.
func Run(in Inputs, cfg Config) (*Result, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, fmt.Errorf("core: incomplete inputs")
	}
	groups := in.Corpus.GroupBySuffix(in.PSL)
	outcomes := make([]*groupResult, len(groups))

	root := cfg.Tracer.Start("run")
	root.Count("suffix_groups", int64(len(groups)))
	compiled0, probed0 := rex.CompileCounts()
	matchers0, _ := rex.MatcherCounts()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		tg := &tagger{in: in, cfg: cfg}
		for i, group := range groups {
			outcomes[i] = runTracedGroup(tg, cfg, group, root, 1)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				tg := &tagger{in: in, cfg: cfg}
				for i := range next {
					outcomes[i] = runTracedGroup(tg, cfg, groups[i], root, wid)
				}
			}(w + 1)
		}
		for i := range groups {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Candidate regexes build specialized rexmatch programs on the probe
	// path; the regexes/probes counters keep tracking the (now rare)
	// stdlib-fallback compiles so the two engine families stay visible
	// side by side in the bench fingerprint.
	compiled1, probed1 := rex.CompileCounts()
	matchers1, _ := rex.MatcherCounts()
	root.Count("regexes_compiled", compiled1-compiled0)
	root.Count("probes_compiled", probed1-probed0)
	root.Count("matchers_compiled", matchers1-matchers0)
	defer root.End()

	// Merge per-suffix outcomes. GroupBySuffix returns groups sorted by
	// suffix, so iterating outcomes in index order is deterministic no
	// matter which worker computed each slot.
	res := &Result{NCs: make(map[string]*NamingConvention)}
	routersWithGeohint := make(map[string]bool)
	routersGeolocated := make(map[string]bool)
	for _, gr := range outcomes {
		if !gr.anyTag {
			continue
		}
		res.SuffixesWithGeohint++
		for _, id := range gr.taggedRouters {
			routersWithGeohint[id] = true
		}
		if gr.nc == nil {
			continue
		}
		res.NCs[gr.nc.Suffix] = gr.nc
		for _, id := range gr.geolocated {
			routersGeolocated[id] = true
			// A hostname a learned hint geolocates carries an apparent
			// geohint even when stage 2's dictionary pass could not
			// tag it.
			routersWithGeohint[id] = true
		}
	}
	res.RoutersWithGeohint = len(routersWithGeohint)
	res.RoutersGeolocated = len(routersGeolocated)
	return res, nil
}

// runTracedGroup wraps runGroup in its per-suffix span, attributed to
// worker slot wid. With tracing disabled the Child/SetKey/SetWorker/End
// calls are nil no-ops.
func runTracedGroup(tg *tagger, cfg Config, group *itdk.SuffixGroup, root *obs.Span, wid int) *groupResult {
	sp := root.Child("group")
	sp.SetKey(group.Suffix)
	sp.SetWorker(wid)
	gr := runGroup(tg, cfg, group, sp)
	sp.End()
	return gr
}

// RunSuffix runs stages 2-5 for a single suffix group already extracted
// from a corpus — the unit the examples and unit tests exercise. It
// shares runGroup with Run, so a suffix where stage 2 tags no hostname
// short-circuits to a nil convention exactly as Run would skip it.
func RunSuffix(in Inputs, cfg Config, suffix string) (*NamingConvention, []*Tagged, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, nil, fmt.Errorf("core: incomplete inputs")
	}
	tg := &tagger{in: in, cfg: cfg}
	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		if group.Suffix != suffix {
			continue
		}
		sp := cfg.Tracer.Start("group")
		sp.SetKey(group.Suffix)
		gr := runGroup(tg, cfg, group, sp)
		sp.End()
		return gr.nc, gr.tagged, nil
	}
	return nil, nil, fmt.Errorf("core: suffix %q not in corpus", suffix)
}

// TagSuffix runs stage 2 alone — parse and apparent-geohint tagging —
// over a single suffix group, returning every parseable hostname with
// its tags. It exists so benchmarks and diagnostics can measure the
// tagging stage in isolation from regex learning.
func TagSuffix(in Inputs, cfg Config, suffix string) ([]*Tagged, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, fmt.Errorf("core: incomplete inputs")
	}
	tg := &tagger{in: in, cfg: cfg}
	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		if group.Suffix != suffix {
			continue
		}
		return tagGroup(tg, group).tagged, nil
	}
	return nil, fmt.Errorf("core: suffix %q not in corpus", suffix)
}
