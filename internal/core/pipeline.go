package core

import (
	"fmt"

	"hoiho/internal/rex"
)

// Run executes the five-stage pipeline over the assembled inputs and
// returns the learned naming conventions for every suffix with an
// apparent geohint.
func Run(in Inputs, cfg Config) (*Result, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, fmt.Errorf("core: incomplete inputs")
	}
	res := &Result{NCs: make(map[string]*NamingConvention)}
	tg := &tagger{in: in, cfg: cfg}

	routersWithGeohint := make(map[string]bool)
	routersGeolocated := make(map[string]bool)

	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		// Stage 2: tag apparent geohints.
		var tagged []*Tagged
		anyTag := false
		for _, rh := range group.Hosts {
			t := tg.tag(rh)
			if t == nil {
				continue
			}
			tagged = append(tagged, t)
			if t.HasTags() {
				anyTag = true
				routersWithGeohint[rh.Router.ID] = true
			}
		}
		if !anyTag {
			continue
		}
		res.SuffixesWithGeohint++

		// Stage 3: build and evaluate candidate regexes; stage 4:
		// learn operator geohints from every qualifying candidate NC;
		// re-select with overrides in effect.
		pool := generateCandidates(tagged, cfg.MaxCandidates)
		e := newEvalCtx(in, cfg)
		set, ev, learned := learnAndSelect(group.Suffix, pool, tagged, e, cfg)
		if set == nil {
			continue
		}

		// Stage 5: classify.
		nc := &NamingConvention{
			Suffix:  group.Suffix,
			Regexes: set,
			Learned: learned,
			Tally:   ev.Tally,
			Class:   classify(ev.Tally, cfg),
		}
		for _, r := range set {
			for _, role := range r.Roles() {
				switch role {
				case rex.RoleState:
					nc.AnnotatesState = true
				case rex.RoleCountry:
					nc.AnnotatesCountry = true
				}
			}
		}
		res.NCs[group.Suffix] = nc

		if nc.Class.Usable() {
			for hi, ho := range ev.PerHost {
				if ho.Outcome == OutcomeTP {
					routersGeolocated[tagged[hi].RH.Router.ID] = true
					// A hostname a learned hint geolocates carries an
					// apparent geohint even when stage 2's dictionary
					// pass could not tag it.
					routersWithGeohint[tagged[hi].RH.Router.ID] = true
				}
			}
		}
	}
	res.RoutersWithGeohint = len(routersWithGeohint)
	res.RoutersGeolocated = len(routersGeolocated)
	return res, nil
}

// RunSuffix runs stages 2-5 for a single suffix group already extracted
// from a corpus — the unit the examples and unit tests exercise.
func RunSuffix(in Inputs, cfg Config, suffix string) (*NamingConvention, []*Tagged, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, nil, fmt.Errorf("core: incomplete inputs")
	}
	tg := &tagger{in: in, cfg: cfg}
	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		if group.Suffix != suffix {
			continue
		}
		var tagged []*Tagged
		for _, rh := range group.Hosts {
			if t := tg.tag(rh); t != nil {
				tagged = append(tagged, t)
			}
		}
		pool := generateCandidates(tagged, cfg.MaxCandidates)
		e := newEvalCtx(in, cfg)
		set, ev, learned := learnAndSelect(suffix, pool, tagged, e, cfg)
		if set == nil {
			return nil, tagged, nil
		}
		nc := &NamingConvention{
			Suffix: suffix, Regexes: set, Learned: learned,
			Tally: ev.Tally, Class: classify(ev.Tally, cfg),
		}
		for _, r := range set {
			for _, role := range r.Roles() {
				switch role {
				case rex.RoleState:
					nc.AnnotatesState = true
				case rex.RoleCountry:
					nc.AnnotatesCountry = true
				}
			}
		}
		return nc, tagged, nil
	}
	return nil, nil, fmt.Errorf("core: suffix %q not in corpus", suffix)
}
