package core

import (
	"fmt"
	"runtime"
	"sync"

	"hoiho/internal/itdk"
	"hoiho/internal/rex"
)

// groupResult is the outcome of running stages 2-5 over one suffix
// group. Workers produce these independently; the merge step folds them
// into a Result in suffix-sorted order.
type groupResult struct {
	// tagged holds every parseable hostname in the group with its
	// stage-2 apparent geohints (including hostnames with none).
	tagged []*Tagged
	// anyTag reports whether stage 2 tagged at least one hostname — a
	// group without a single apparent geohint cannot yield a convention
	// and short-circuits before candidate generation.
	anyTag bool
	// nc is the selected naming convention, nil when none qualified.
	nc *NamingConvention
	// taggedRouters lists router IDs stage 2 tagged; geolocated lists
	// router IDs a usable NC extracted a true-positive geohint from.
	taggedRouters []string
	geolocated    []string
}

// runGroup executes stages 2-5 on one suffix group — the shared body of
// Run and RunSuffix.
func runGroup(tg *tagger, cfg Config, group *itdk.SuffixGroup) *groupResult {
	gr := &groupResult{}

	// Stage 2: tag apparent geohints.
	for _, rh := range group.Hosts {
		t := tg.tag(rh)
		if t == nil {
			continue
		}
		gr.tagged = append(gr.tagged, t)
		if t.HasTags() {
			gr.anyTag = true
			gr.taggedRouters = append(gr.taggedRouters, rh.Router.ID)
		}
	}
	if !gr.anyTag {
		return gr
	}

	// Stage 3: build and evaluate candidate regexes; stage 4: learn
	// operator geohints from every qualifying candidate NC; re-select
	// with overrides in effect.
	pool := generateCandidates(gr.tagged, cfg.MaxCandidates)
	e := newEvalCtx(tg.in, cfg)
	set, ev, learned := learnAndSelect(group.Suffix, pool, gr.tagged, e, cfg)
	if set == nil {
		return gr
	}

	// Stage 5: classify.
	nc := &NamingConvention{
		Suffix:  group.Suffix,
		Regexes: set,
		Learned: learned,
		Tally:   ev.Tally,
		Class:   classify(ev.Tally, cfg),
	}
	for _, r := range set {
		for _, role := range r.Roles() {
			switch role {
			case rex.RoleState:
				nc.AnnotatesState = true
			case rex.RoleCountry:
				nc.AnnotatesCountry = true
			}
		}
	}
	gr.nc = nc

	if nc.Class.Usable() {
		for hi, ho := range ev.PerHost {
			if ho.Outcome == OutcomeTP {
				gr.geolocated = append(gr.geolocated, gr.tagged[hi].RH.Router.ID)
			}
		}
	}
	return gr
}

// Run executes the five-stage pipeline over the assembled inputs and
// returns the learned naming conventions for every suffix with an
// apparent geohint.
//
// Suffix groups are independent (§5.2-§5.5 learn each registrable
// domain in isolation), so stages 2-5 run concurrently across groups on
// a pool of cfg.Workers goroutines. The merge happens in suffix-sorted
// order, so the Result is identical for any worker count.
func Run(in Inputs, cfg Config) (*Result, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, fmt.Errorf("core: incomplete inputs")
	}
	groups := in.Corpus.GroupBySuffix(in.PSL)
	outcomes := make([]*groupResult, len(groups))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		tg := &tagger{in: in, cfg: cfg}
		for i, group := range groups {
			outcomes[i] = runGroup(tg, cfg, group)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tg := &tagger{in: in, cfg: cfg}
				for i := range next {
					outcomes[i] = runGroup(tg, cfg, groups[i])
				}
			}()
		}
		for i := range groups {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Merge per-suffix outcomes. GroupBySuffix returns groups sorted by
	// suffix, so iterating outcomes in index order is deterministic no
	// matter which worker computed each slot.
	res := &Result{NCs: make(map[string]*NamingConvention)}
	routersWithGeohint := make(map[string]bool)
	routersGeolocated := make(map[string]bool)
	for _, gr := range outcomes {
		if !gr.anyTag {
			continue
		}
		res.SuffixesWithGeohint++
		for _, id := range gr.taggedRouters {
			routersWithGeohint[id] = true
		}
		if gr.nc == nil {
			continue
		}
		res.NCs[gr.nc.Suffix] = gr.nc
		for _, id := range gr.geolocated {
			routersGeolocated[id] = true
			// A hostname a learned hint geolocates carries an apparent
			// geohint even when stage 2's dictionary pass could not
			// tag it.
			routersWithGeohint[id] = true
		}
	}
	res.RoutersWithGeohint = len(routersWithGeohint)
	res.RoutersGeolocated = len(routersGeolocated)
	return res, nil
}

// RunSuffix runs stages 2-5 for a single suffix group already extracted
// from a corpus — the unit the examples and unit tests exercise. It
// shares runGroup with Run, so a suffix where stage 2 tags no hostname
// short-circuits to a nil convention exactly as Run would skip it.
func RunSuffix(in Inputs, cfg Config, suffix string) (*NamingConvention, []*Tagged, error) {
	if in.Dict == nil || in.PSL == nil || in.Corpus == nil || in.RTT == nil {
		return nil, nil, fmt.Errorf("core: incomplete inputs")
	}
	tg := &tagger{in: in, cfg: cfg}
	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		if group.Suffix != suffix {
			continue
		}
		gr := runGroup(tg, cfg, group)
		return gr.nc, gr.tagged, nil
	}
	return nil, nil, fmt.Errorf("core: suffix %q not in corpus", suffix)
}
