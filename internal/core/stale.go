package core

import (
	"sort"

	"hoiho/internal/geo"
	"hoiho/internal/geodict"
)

// StaleHostname flags a hostname whose geohint contradicts the other
// evidence for its router — the fig. 3a pathology, where an address was
// re-assigned to a different router and kept its old PTR record. The
// paper (§7, citing Zhang et al.) lists detecting these as the
// mitigation for geolocation distortion.
type StaleHostname struct {
	RouterID string
	Hostname string
	Hint     string
	Loc      *geodict.Location // the (stale) location the hostname names

	// Consensus is the location the router's other hostnames agree on;
	// nil when staleness was established by RTT contradiction alone.
	Consensus      *geodict.Location
	ConsensusCount int
}

// staleAgreeKm is how close two hostname locations must be to count as
// agreeing on the router's location (the 40 km criterion).
const staleAgreeKm = 40.0

// DetectStale scans a corpus with learned conventions for stale
// hostnames using two signals:
//
//  1. consensus: a router has several hostnames whose geohints agree on
//     one location, and one hostname naming somewhere else that the
//     measured RTTs rule out (hostname 1d in fig. 3a);
//  2. contradiction: a router's only geolocatable hostname names a
//     location the measured RTTs rule out.
//
// Only usable (good/promising) conventions participate: a poor
// convention's extractions are not evidence.
func DetectStale(in Inputs, res *Result) []StaleHostname {
	type located struct {
		hostname string
		loc      *geodict.Location
		hint     string
	}
	var out []StaleHostname
	for _, group := range in.Corpus.GroupBySuffix(in.PSL) {
		nc := res.NCs[group.Suffix]
		if nc == nil || !nc.Class.Usable() {
			continue
		}
		// Collect per-router hostname locations under this suffix.
		byRouter := make(map[string][]located)
		var order []string
		for _, rh := range group.Hosts {
			g, ok := Geolocate(nc, in.Dict, rh.Hostname)
			if !ok {
				continue
			}
			if _, seen := byRouter[rh.Router.ID]; !seen {
				order = append(order, rh.Router.ID)
			}
			byRouter[rh.Router.ID] = append(byRouter[rh.Router.ID],
				located{rh.Hostname, g.Loc, g.Hint})
		}
		for _, rid := range order {
			locs := byRouter[rid]
			if !in.RTT.HasPing(rid) {
				continue
			}
			inconsistent := func(l *geodict.Location) bool {
				return !in.RTT.Consistent(rid, l.Pos, 1.0)
			}
			// Consensus: the largest cluster of agreeing, RTT-consistent
			// hostname locations.
			var consensus *geodict.Location
			consensusN := 0
			for _, a := range locs {
				if inconsistent(a.loc) {
					continue
				}
				n := 0
				for _, b := range locs {
					if geo.DistanceKm(a.loc.Pos, b.loc.Pos) <= staleAgreeKm {
						n++
					}
				}
				if n > consensusN {
					consensus, consensusN = a.loc, n
				}
			}
			for _, l := range locs {
				if !inconsistent(l.loc) {
					continue
				}
				s := StaleHostname{
					RouterID: rid, Hostname: l.hostname, Hint: l.hint, Loc: l.loc,
				}
				if consensus != nil && consensusN >= 2 &&
					geo.DistanceKm(consensus.Pos, l.loc.Pos) > staleAgreeKm {
					s.Consensus = consensus
					s.ConsensusCount = consensusN
				}
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RouterID != out[j].RouterID {
			return out[i].RouterID < out[j].RouterID
		}
		return out[i].Hostname < out[j].Hostname
	})
	return out
}
