// Package alias implements IP alias resolution in the style of MIDAR
// (Keys et al., ToN 2013), the technique that builds the router-level
// ITDK the paper learns from (§5.1.3): interfaces of one router share a
// central, monotonically increasing IP-ID counter, so two addresses
// belong to the same router when their interleaved IP-ID time series
// remains monotonic (modulo 16-bit wrap) at a plausible velocity —
// MIDAR's Monotonic Bounds Test (MBT).
//
// The package follows MIDAR's three-phase structure:
//
//  1. estimation — probe every address, estimate its counter velocity,
//     and discard addresses with non-monotonic (random or constant)
//     IP-ID behaviour;
//  2. candidate selection — only address pairs with overlapping
//     velocity ranges can share a counter, which prunes the O(n²)
//     pair space;
//  3. elimination — interleave dedicated probe runs for each candidate
//     pair and apply the MBT;
//  4. corroboration — re-test each surviving pair at a distant time
//     (two counters can transiently look shared when their offsets
//     align, but the alignment drifts away); corroborated pairs are
//     aliases, and transitive closure yields routers.
package alias

import (
	"fmt"
	"net/netip"
	"sort"
)

// Sample is one IP-ID observation.
type Sample struct {
	T    float64 // seconds since the run began
	IPID uint16
	OK   bool // false: no response
}

// Prober obtains IP-ID samples for addresses — the measurement substrate
// (scamper in the paper's toolchain; a simulator here).
type Prober interface {
	// Probe returns the IP-ID of addr at time t.
	Probe(addr netip.Addr, t float64) Sample
}

// Config bounds the resolution run.
type Config struct {
	// EstimationSamples per address in phase 1 (MIDAR uses ~30).
	EstimationSamples int
	// EstimationSpacing in seconds between phase-1 probes.
	EstimationSpacing float64
	// EliminationSamples per address in each pairwise MBT run.
	EliminationSamples int
	// EliminationSpacing in seconds between interleaved probes.
	EliminationSpacing float64
	// MaxVelocity is the highest plausible counter rate (IDs/second);
	// addresses faster than this wrap too quickly to test.
	MaxVelocity float64
	// VelocityOverlap is the multiplicative slack when deciding whether
	// two addresses' velocity ranges overlap.
	VelocityOverlap float64
}

// DefaultConfig mirrors MIDAR's published shape at test scale.
func DefaultConfig() Config {
	return Config{
		EstimationSamples:  20,
		EstimationSpacing:  0.5,
		EliminationSamples: 15,
		EliminationSpacing: 0.3,
		MaxVelocity:        10000,
		VelocityOverlap:    1.6,
	}
}

// estimate holds an address's phase-1 result.
type estimate struct {
	addr     netip.Addr
	velocity float64 // IDs per second
	samples  []Sample
}

// Result is the outcome of a resolution run.
type Result struct {
	// Routers are the inferred alias sets (two or more addresses each),
	// sorted by their lowest address.
	Routers [][]netip.Addr
	// Singletons are addresses that responded monotonically but matched
	// no other address.
	Singletons []netip.Addr
	// Discarded are addresses with unusable IP-ID behaviour (random,
	// constant, or unresponsive).
	Discarded []netip.Addr
}

// Resolve runs the three MIDAR phases over the addresses.
func Resolve(p Prober, addrs []netip.Addr, cfg Config) (*Result, error) {
	if cfg.EstimationSamples < 4 || cfg.EliminationSamples < 4 {
		return nil, fmt.Errorf("alias: need at least 4 samples per phase")
	}
	res := &Result{}

	// Phase 1: estimation.
	var usable []estimate
	t := 0.0
	for _, addr := range addrs {
		var ss []Sample
		for i := 0; i < cfg.EstimationSamples; i++ {
			ss = append(ss, p.Probe(addr, t+float64(i)*cfg.EstimationSpacing))
		}
		est, ok := estimateVelocity(addr, ss, cfg)
		if !ok {
			res.Discarded = append(res.Discarded, addr)
			continue
		}
		usable = append(usable, est)
		t += 0.01 // stagger runs slightly, as a real prober would
	}

	// Phase 2: candidate selection by velocity overlap.
	sort.Slice(usable, func(i, j int) bool {
		return usable[i].velocity < usable[j].velocity
	})
	type pair struct{ a, b int }
	var candidates []pair
	for i := 0; i < len(usable); i++ {
		for j := i + 1; j < len(usable); j++ {
			if !velocityCompatible(usable[i].velocity, usable[j].velocity, cfg.VelocityOverlap) {
				// Sorted by velocity: nothing further can match i.
				break
			}
			candidates = append(candidates, pair{i, j})
		}
	}

	// Phase 3: elimination with interleaved probes + MBT.
	parent := make([]int, len(usable))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	tBase := 1000.0
	for _, c := range candidates {
		if find(c.a) == find(c.b) {
			continue // already aliased transitively
		}
		vmax := usable[c.a].velocity
		if usable[c.b].velocity > vmax {
			vmax = usable[c.b].velocity
		}
		// Phase 3 elimination, then phase 4 corroboration at a distant
		// time: a coincidental counter alignment drifts apart, a shared
		// counter does not.
		if mbt(p, usable[c.a].addr, usable[c.b].addr, tBase, vmax, cfg) &&
			mbt(p, usable[c.a].addr, usable[c.b].addr, tBase+517, vmax, cfg) {
			union(c.a, c.b)
		}
		tBase += 100
	}

	groups := make(map[int][]netip.Addr)
	for i, e := range usable {
		root := find(i)
		groups[root] = append(groups[root], e.addr)
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
		if len(g) >= 2 {
			res.Routers = append(res.Routers, g)
		} else {
			res.Singletons = append(res.Singletons, g[0])
		}
	}
	sort.Slice(res.Routers, func(i, j int) bool {
		return res.Routers[i][0].Less(res.Routers[j][0])
	})
	sort.Slice(res.Singletons, func(i, j int) bool {
		return res.Singletons[i].Less(res.Singletons[j])
	})
	return res, nil
}

// estimateVelocity checks phase-1 samples for usable monotonic
// behaviour and estimates the counter rate.
func estimateVelocity(addr netip.Addr, ss []Sample, cfg Config) (estimate, bool) {
	var got []Sample
	for _, s := range ss {
		if s.OK {
			got = append(got, s)
		}
	}
	if len(got) < 4 {
		return estimate{}, false
	}
	// Total ID advance with wrap unrolling; reject if any interval is
	// implausibly large (random IP-IDs) or everything is constant.
	total := 0.0
	constant := true
	for i := 1; i < len(got); i++ {
		d := float64(uint16(got[i].IPID - got[i-1].IPID)) // wraps naturally
		dt := got[i].T - got[i-1].T
		if dt <= 0 {
			return estimate{}, false
		}
		if d != 0 {
			constant = false
		}
		if d/dt > cfg.MaxVelocity {
			return estimate{}, false // too fast: random or wrapping
		}
		total += d
	}
	if constant {
		return estimate{}, false
	}
	span := got[len(got)-1].T - got[0].T
	return estimate{addr: addr, velocity: total / span, samples: got}, true
}

// velocityCompatible reports whether two counter velocities could come
// from the same counter, within slack.
func velocityCompatible(a, b, slack float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	hi, lo := a, b
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi <= lo*slack
}

// mbt interleaves probes to two addresses and applies the Monotonic
// Bounds Test: the merged sample sequence must be monotonically
// increasing modulo wrap, and every gap must advance no faster than the
// pair's own estimated counter velocity allows (MIDAR bounds each gap
// with the target's measured velocity, not a global limit — two
// distinct counters at similar rates but different offsets produce
// alternating jumps far above the per-gap bound).
func mbt(p Prober, a, b netip.Addr, tBase, vmax float64, cfg Config) bool {
	var merged []Sample
	t := tBase
	fromA, fromB := 0, 0
	for i := 0; i < cfg.EliminationSamples; i++ {
		if sa := p.Probe(a, t); sa.OK {
			merged = append(merged, sa)
			fromA++
		}
		t += cfg.EliminationSpacing
		if sb := p.Probe(b, t); sb.OK {
			merged = append(merged, sb)
			fromB++
		}
		t += cfg.EliminationSpacing
	}
	// Lost probes are skipped, not fatal, but both addresses must
	// contribute enough interleaved evidence.
	need := cfg.EliminationSamples * 2 / 3
	if fromA < need || fromB < need {
		return false
	}
	// Per-gap bound: velocity slack plus an additive allowance for
	// other traffic consuming IDs between probes.
	const idAllowance = 64
	for i := 1; i < len(merged); i++ {
		d := float64(uint16(merged[i].IPID - merged[i-1].IPID))
		dt := merged[i].T - merged[i-1].T
		if dt <= 0 || d > vmax*cfg.VelocityOverlap*dt+idAllowance {
			return false
		}
	}
	return true
}
