package alias

import (
	"math/rand"
	"net/netip"
	"sort"
)

// SimDevice is a simulated router: a shared IP-ID counter serving all of
// its interface addresses — the behaviour MIDAR exploits.
type SimDevice struct {
	Addrs []netip.Addr
	// Base is the counter's offset at t=0; Rate its advance per second.
	Base uint16
	Rate float64
	// JitterIDs adds at most this many extra increments per probe
	// (other traffic also consumes IDs).
	JitterIDs int
	// Unresponsive interfaces never answer.
	Unresponsive map[netip.Addr]bool
	// RandomID devices assign random IP-IDs (many modern stacks);
	// MIDAR must discard them.
	RandomID bool
	// ConstantID devices always answer zero (another common stack).
	ConstantID bool
}

// SimProber answers probes from a set of simulated devices.
type SimProber struct {
	byAddr map[netip.Addr]*SimDevice
	rng    *rand.Rand
	// Loss is the probability any single probe goes unanswered.
	Loss float64
}

// NewSimProber indexes the devices. Addresses must be unique across
// devices.
func NewSimProber(devices []*SimDevice, seed int64, loss float64) *SimProber {
	p := &SimProber{
		byAddr: make(map[netip.Addr]*SimDevice),
		rng:    rand.New(rand.NewSource(seed)),
		Loss:   loss,
	}
	for _, d := range devices {
		for _, a := range d.Addrs {
			p.byAddr[a] = d
		}
	}
	return p
}

// Addrs returns every simulated address, sorted.
func (p *SimProber) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(p.byAddr))
	for a := range p.byAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Probe implements Prober.
func (p *SimProber) Probe(addr netip.Addr, t float64) Sample {
	d, ok := p.byAddr[addr]
	if !ok || d.Unresponsive[addr] || p.rng.Float64() < p.Loss {
		return Sample{T: t}
	}
	s := Sample{T: t, OK: true}
	switch {
	case d.RandomID:
		s.IPID = uint16(p.rng.Intn(65536))
	case d.ConstantID:
		s.IPID = 0
	default:
		jitter := 0
		if d.JitterIDs > 0 {
			jitter = p.rng.Intn(d.JitterIDs + 1)
		}
		s.IPID = d.Base + uint16(int(d.Rate*t)+jitter)
	}
	return s
}
