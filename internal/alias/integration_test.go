package alias

import (
	"math/rand"
	"net/netip"
	"testing"

	"hoiho/internal/synth"
)

// TestReconstructSynthCorpus closes the loop the paper's toolchain
// implies: the synthetic world's routers (ground truth) are turned into
// simulated devices with shared IP-ID counters, and alias resolution
// must reconstruct the router-level corpus from interface-level probing
// — the role MIDAR plays in building the ITDK (§5.1.3).
func TestReconstructSynthCorpus(t *testing.T) {
	p, err := synth.ITDKPreset("ipv4-aug2020")
	if err != nil {
		t.Fatal(err)
	}
	p.Operators = 4
	p.Tiny = 0
	p.Noise = 0
	p.VPs = 8
	p.SpoofVPs = 0
	p.AnonymousFrac = 0
	w, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	var devices []*SimDevice
	truth := make(map[netip.Addr]string) // addr -> router ID
	multi := 0
	for _, r := range w.Corpus.Routers {
		if len(r.Interfaces) < 2 {
			continue // single-interface routers resolve trivially
		}
		multi++
		d := &SimDevice{
			Base:      uint16(rng.Intn(65536)),
			Rate:      20 + rng.Float64()*500,
			JitterIDs: 2,
		}
		for _, ifc := range r.Interfaces {
			d.Addrs = append(d.Addrs, ifc.Addr)
			truth[ifc.Addr] = r.ID
		}
		devices = append(devices, d)
		if multi >= 30 {
			break // keep the pairwise phase fast
		}
	}
	if multi < 10 {
		t.Fatalf("too few multi-interface routers: %d", multi)
	}

	prober := NewSimProber(devices, 7, 0.01)
	res, err := Resolve(prober, prober.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// No inferred router may span two true routers.
	reconstructed := 0
	for _, g := range res.Routers {
		first := truth[g[0]]
		for _, a := range g[1:] {
			if truth[a] != first {
				t.Fatalf("false alias: group %v spans %s and %s", g, first, truth[a])
			}
		}
		reconstructed++
	}
	// The vast majority of true routers must be reconstructed whole
	// (probe loss may fragment a few).
	if reconstructed < multi*8/10 {
		t.Errorf("reconstructed %d of %d routers", reconstructed, multi)
	}
}
