package alias

import (
	"fmt"
	"net/netip"
	"testing"
)

func addr(n int) netip.Addr {
	return netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", n))
}

func device(rate float64, base uint16, addrs ...int) *SimDevice {
	d := &SimDevice{Base: base, Rate: rate, JitterIDs: 2}
	for _, n := range addrs {
		d.Addrs = append(d.Addrs, addr(n))
	}
	return d
}

func TestResolveGroupsAliases(t *testing.T) {
	devices := []*SimDevice{
		device(40, 100, 1, 2, 3), // router A: three interfaces
		device(45, 9000, 4, 5),   // router B: similar velocity, different counter
		device(400, 42, 6, 7),    // router C: much faster counter
		device(55, 500, 8),       // lone interface
	}
	p := NewSimProber(devices, 1, 0)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routers) != 3 {
		t.Fatalf("routers = %d, want 3: %v", len(res.Routers), res.Routers)
	}
	want := [][]int{{1, 2, 3}, {4, 5}, {6, 7}}
	for i, g := range res.Routers {
		if len(g) != len(want[i]) {
			t.Errorf("router %d = %v, want addrs %v", i, g, want[i])
			continue
		}
		for j, n := range want[i] {
			if g[j] != addr(n) {
				t.Errorf("router %d = %v, want %v", i, g, want[i])
				break
			}
		}
	}
	if len(res.Singletons) != 1 || res.Singletons[0] != addr(8) {
		t.Errorf("singletons = %v, want [.8]", res.Singletons)
	}
	if len(res.Discarded) != 0 {
		t.Errorf("discarded = %v", res.Discarded)
	}
}

func TestResolveDiscardsUnusableIPIDs(t *testing.T) {
	randomDev := &SimDevice{Addrs: []netip.Addr{addr(1), addr(2)}, RandomID: true}
	constDev := &SimDevice{Addrs: []netip.Addr{addr(3)}, ConstantID: true}
	silent := &SimDevice{Addrs: []netip.Addr{addr(4)},
		Unresponsive: map[netip.Addr]bool{addr(4): true}}
	good := device(50, 7, 5, 6)
	p := NewSimProber([]*SimDevice{randomDev, constDev, silent, good}, 2, 0)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discarded) != 4 {
		t.Errorf("discarded = %v, want the random pair, constant, and silent", res.Discarded)
	}
	if len(res.Routers) != 1 || len(res.Routers[0]) != 2 {
		t.Errorf("routers = %v, want the good pair", res.Routers)
	}
}

func TestResolveSeparatesSameVelocityDifferentCounters(t *testing.T) {
	// Two routers with identical velocity — candidate selection cannot
	// prune them; the MBT must separate them by counter offset.
	a := device(60, 0, 1, 2)
	b := device(60, 30000, 3, 4)
	p := NewSimProber([]*SimDevice{a, b}, 3, 0)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routers) != 2 {
		t.Fatalf("routers = %v, want 2 separate devices", res.Routers)
	}
	for _, g := range res.Routers {
		if len(g) != 2 {
			t.Errorf("group %v should have exactly 2 addresses", g)
		}
	}
}

func TestResolveHandlesCounterWrap(t *testing.T) {
	// A counter near the 16-bit wrap point must still group correctly.
	d := device(50, 65500, 1, 2)
	p := NewSimProber([]*SimDevice{d}, 4, 0)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routers) != 1 || len(res.Routers[0]) != 2 {
		t.Errorf("wrap case: routers = %v", res.Routers)
	}
}

func TestResolveToleratesLoss(t *testing.T) {
	devices := []*SimDevice{device(40, 100, 1, 2), device(300, 5, 3, 4)}
	p := NewSimProber(devices, 5, 0.08)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Loss may discard an address or break one MBT run, but it must not
	// invent a false alias across devices.
	for _, g := range res.Routers {
		first := g[0]
		for _, a := range g[1:] {
			if deviceOf(devices, first) != deviceOf(devices, a) {
				t.Fatalf("false alias across devices: %v", g)
			}
		}
	}
}

func deviceOf(devices []*SimDevice, a netip.Addr) int {
	for i, d := range devices {
		for _, x := range d.Addrs {
			if x == a {
				return i
			}
		}
	}
	return -1
}

func TestVelocityCompatible(t *testing.T) {
	if !velocityCompatible(40, 50, 1.6) {
		t.Error("40 and 50 should be compatible at 1.6x slack")
	}
	if velocityCompatible(40, 400, 1.6) {
		t.Error("40 and 400 should not be compatible")
	}
	if velocityCompatible(0, 50, 1.6) {
		t.Error("zero velocity is not compatible with anything")
	}
}

func TestResolveConfigValidation(t *testing.T) {
	p := NewSimProber(nil, 1, 0)
	cfg := DefaultConfig()
	cfg.EstimationSamples = 1
	if _, err := Resolve(p, nil, cfg); err == nil {
		t.Error("tiny sample counts should be rejected")
	}
}

func TestScaleResolution(t *testing.T) {
	// 40 devices, 2-4 interfaces each: resolution must reconstruct every
	// device exactly.
	var devices []*SimDevice
	n := 1
	for i := 0; i < 40; i++ {
		k := 2 + i%3
		var addrs []int
		for j := 0; j < k; j++ {
			addrs = append(addrs, n)
			n++
		}
		devices = append(devices, device(20+float64(i*13%900), uint16(i*1021), addrs...))
	}
	p := NewSimProber(devices, 6, 0)
	res, err := Resolve(p, p.Addrs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routers) != len(devices) {
		t.Fatalf("routers = %d, want %d", len(res.Routers), len(devices))
	}
	for _, g := range res.Routers {
		dev := deviceOf(devices, g[0])
		if len(g) != len(devices[dev].Addrs) {
			t.Errorf("device %d resolved as %v, want %d interfaces", dev, g, len(devices[dev].Addrs))
		}
		for _, a := range g[1:] {
			if deviceOf(devices, a) != dev {
				t.Errorf("false alias in %v", g)
			}
		}
	}
}
