// Package lint is hoiho's project-specific static-analysis framework:
// a stdlib-only (go/parser + go/ast + go/types) analyzer harness that
// machine-enforces the determinism and concurrency invariants the
// pipeline depends on, instead of rediscovering their violations in
// review each PR.
//
// The framework loads every package in the module, type-checks them in
// dependency order (project packages against each other, standard
// library packages from source), and runs each registered Analyzer over
// the selected packages. Diagnostics carry file:line:column positions,
// are reported in deterministic sorted order, and can be suppressed at
// a specific line with a justified comment:
//
//	//lint:ignore <check> <reason>
//
// The comment suppresses findings of <check> on its own line and on the
// line immediately following (so it works both as a trailing comment
// and as a standalone comment above the flagged statement). A reason is
// mandatory: an ignore without one is itself reported, because an
// unexplained suppression is exactly the unreviewable state the tool
// exists to prevent.
//
// Test files (*_test.go) are exempt from analysis: the invariants the
// checks enforce — deterministic output, race-free lazy caches, no
// per-request compilation, joined goroutines, seeded randomness — are
// production-path properties, and the test suite asserts determinism
// behaviorally instead.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a check name, a position, and a message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path ("hoiho/internal/rex").
	Path string
	// Dir is the package directory relative to the module root
	// ("internal/rex"; "." for the module root itself).
	Dir string
	// Fset positions all files of all packages loaded together.
	Fset *token.FileSet
	// Files are the package's non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package; it is non-nil even when type
	// checking reported errors (analysis proceeds with partial info).
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
	// TypeErrors collects type-checking errors, if any. Analyzers that
	// depend on type information degrade gracefully: an expression
	// without type info is skipped, never guessed at.
	TypeErrors []error

	// suppressions maps file name -> line -> checks suppressed there.
	suppressions map[string]map[int][]string
	// malformed records lint:ignore comments missing a check or reason.
	malformed []Diagnostic
	// cfgs memoizes one control-flow graph per function body, shared
	// by every flow-aware analyzer that visits the package.
	cfgs map[*ast.BlockStmt]*CFG
}

// newPackage builds an empty Package with its suppression table ready,
// so collectSuppressions never lazily initializes shared state.
func newPackage(path, dir string, fset *token.FileSet) *Package {
	return &Package{
		Path:         path,
		Dir:          dir,
		Fset:         fset,
		suppressions: make(map[string]map[int][]string),
		cfgs:         make(map[*ast.BlockStmt]*CFG),
	}
}

// An Analyzer is one named check. Run inspects a package and reports
// findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass couples a package with an analyzer invocation's reporter.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at n's position.
func (p *Pass) Reportf(n ast.Node, format string, args ...any) {
	pos := p.Pkg.Fset.Position(n.Pos())
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression compactly for diagnostics ("res.NCs").
func (p *Pass) ExprString(e ast.Expr) string { return ExprString(p.Pkg.Fset, e) }

// TypeOf returns the type of e, or nil when type information is
// unavailable (for example when the package had type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// FuncCFG returns the control-flow graph for a function body, building
// it on first request and memoizing it on the package so every
// flow-aware analyzer shares one graph per function.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG {
	if c, ok := p.Pkg.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	p.Pkg.cfgs[body] = c
	return c
}

// ExprString renders an expression through go/printer.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return b.String()
}

// All returns the registered analyzers, sorted by name.
func All() []*Analyzer {
	as := []*Analyzer{
		Atomicmix(),
		Droppederr(),
		Envelopecheck(),
		Errsentinel(),
		Hotcompile(),
		Lazyinit(),
		Maporder(),
		Nakedgo(),
		Randsource(),
		Tickerstop(),
		Unlockpath(),
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Run executes the analyzers over the packages and returns the
// surviving diagnostics — suppressed findings removed, malformed
// suppression comments added — sorted by file, line, column, check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a, diags: &diags}
			a.Run(pass)
		}
		diags = append(diags, pkg.malformed...)
	}
	seen := make(map[Diagnostic]bool, len(diags))
	kept := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		suppressed := false
		for _, pkg := range pkgs {
			if pkg.suppressed(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return kept
}

// suppressed reports whether d is covered by a lint:ignore comment in
// this package's files.
func (pkg *Package) suppressed(d Diagnostic) bool {
	lines, ok := pkg.suppressions[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, check := range lines[d.Pos.Line] {
		if check == d.Check {
			return true
		}
	}
	return false
}

// collectSuppressions scans a file's comments for lint:ignore
// directives, populating the package's suppression table and recording
// malformed directives as diagnostics. newPackage initialized the
// suppression table, so there is no lazy path here.
func (pkg *Package) collectSuppressions(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
			if len(fields) < 2 {
				pkg.malformed = append(pkg.malformed, Diagnostic{
					Pos:     pos,
					Check:   "lintdirective",
					Message: "malformed lint:ignore: want `//lint:ignore <check> <reason>` (the reason is mandatory)",
				})
				continue
			}
			check := fields[0]
			byLine := pkg.suppressions[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				pkg.suppressions[pos.Filename] = byLine
			}
			// The directive covers its own line (trailing comment) and
			// the next line (standalone comment above the statement).
			byLine[pos.Line] = append(byLine[pos.Line], check)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], check)
		}
	}
}
