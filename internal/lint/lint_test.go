package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCheck type-checks one fixture file and runs a single analyzer
// over it, returning the surviving diagnostics.
func runCheck(t *testing.T, a *Analyzer, filename, src string) []Diagnostic {
	t.Helper()
	pkg, err := CheckSource(filename, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

func wantFindings(t *testing.T, diags []Diagnostic, check string, lines ...int) {
	t.Helper()
	if len(diags) != len(lines) {
		t.Fatalf("got %d finding(s), want %d: %v", len(diags), len(lines), diags)
	}
	for i, d := range diags {
		if d.Check != check {
			t.Errorf("finding %d: check = %q, want %q", i, d.Check, check)
		}
		if d.Pos.Line != lines[i] {
			t.Errorf("finding %d: line = %d, want %d (%s)", i, d.Pos.Line, lines[i], d)
		}
	}
}

func TestMaporderFlagged(t *testing.T) {
	src := `package fix

import "fmt"

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`
	diags := runCheck(t, Maporder(), "maporder_flagged.go", src)
	wantFindings(t, diags, "maporder", 6, 13)
}

func TestMaporderClean(t *testing.T) {
	src := `package fix

import (
	"fmt"
	"sort"
)

// The collect-keys, sort, iterate idiom: the append target is sorted.
func sorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Writing into another map is order-insensitive.
func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sort.Slice as evidence, and a loop-local append target.
func pairs(m map[string]int) [][2]string {
	var out [][2]string
	for k := range m {
		out = append(out, [2]string{k, "x"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
`
	if diags := runCheck(t, Maporder(), "maporder_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

// TestLazyinitCatchesRexCachePattern deliberately re-introduces the
// PR-1 rex.Regex lazy-cache bug — a compiled-regexp field populated
// under a bare nil check on a pointer receiver — and requires lazyinit
// to catch it.
func TestLazyinitCatchesRexCachePattern(t *testing.T) {
	src := `package fix

import "regexp"

type Regex struct {
	pattern  string
	compiled *regexp.Regexp
}

func (r *Regex) Compile() (*regexp.Regexp, error) {
	if r.compiled == nil {
		re, err := regexp.Compile(r.pattern)
		if err != nil {
			return nil, err
		}
		r.compiled = re
	}
	return r.compiled, nil
}
`
	diags := runCheck(t, Lazyinit(), "lazyinit_rex.go", src)
	wantFindings(t, diags, "lazyinit", 11)
}

func TestLazyinitEarlyReturnForm(t *testing.T) {
	src := `package fix

type box struct{ v []int }

func (b *box) get() []int {
	if b.v != nil {
		return b.v
	}
	b.v = make([]int, 8)
	return b.v
}
`
	diags := runCheck(t, Lazyinit(), "lazyinit_earlyreturn.go", src)
	wantFindings(t, diags, "lazyinit", 6)
}

func TestLazyinitClean(t *testing.T) {
	src := `package fix

import (
	"regexp"
	"sync"
)

type guarded struct {
	mu       sync.Mutex
	once     sync.Once
	compiled *regexp.Regexp
}

// Mutex-guarded lazy init is fine.
func (g *guarded) withLock() *regexp.Regexp {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.compiled == nil {
		g.compiled = regexp.MustCompile("x")
	}
	return g.compiled
}

// sync.Once is the sanctioned pattern.
func (g *guarded) withOnce() *regexp.Regexp {
	g.once.Do(func() {
		g.compiled = regexp.MustCompile("x")
	})
	return g.compiled
}

// Locals constructed in the function cannot race.
func local() []int {
	var v []int
	if v == nil {
		v = make([]int, 4)
	}
	return v
}
`
	if diags := runCheck(t, Lazyinit(), "lazyinit_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

func TestHotcompileFlagged(t *testing.T) {
	src := `package fix

import (
	"net/http"
	"regexp"
)

func inLoop(patterns []string) int {
	n := 0
	for _, p := range patterns {
		re := regexp.MustCompile(p)
		n += re.NumSubexp()
	}
	return n
}

func handler(w http.ResponseWriter, r *http.Request) {
	re, err := regexp.Compile(r.URL.Query().Get("re"))
	if err == nil && re.MatchString(r.URL.Path) {
		w.WriteHeader(http.StatusOK)
	}
}
`
	diags := runCheck(t, Hotcompile(), "hotcompile_flagged.go", src)
	wantFindings(t, diags, "hotcompile", 11, 18)
}

func TestHotcompileClean(t *testing.T) {
	src := `package fix

import "regexp"

// Package-level compilation runs once.
var hostRe = regexp.MustCompile("^[a-z]+$")

// Build-time compilation outside any loop or handler is fine.
func build(pattern string) (*regexp.Regexp, error) {
	return regexp.Compile(pattern)
}

// Reusing a compiled regex inside a loop is the point.
func countMatches(hosts []string) int {
	n := 0
	for _, h := range hosts {
		if hostRe.MatchString(h) {
			n++
		}
	}
	return n
}
`
	if diags := runCheck(t, Hotcompile(), "hotcompile_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

func TestNakedgoFlagged(t *testing.T) {
	src := `package fix

func fireAndForget(work func()) {
	go work()
}
`
	diags := runCheck(t, Nakedgo(), "nakedgo_flagged.go", src)
	wantFindings(t, diags, "nakedgo", 4)
}

func TestNakedgoClean(t *testing.T) {
	src := `package fix

import "sync"

// WaitGroup-joined workers.
func pool(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j func()) {
			defer wg.Done()
			j()
		}(j)
	}
	wg.Wait()
}

// Channel-joined goroutine.
func withResult(f func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- f() }()
	return <-errc
}
`
	if diags := runCheck(t, Nakedgo(), "nakedgo_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

// TestNakedgoStructFieldWaitGroup covers the struct-field pattern: the
// spawning method registers with s.wg.Add and the matching Wait lives
// in another method. The Add on a (possibly embedded or pointer-held)
// sync.WaitGroup is join evidence; the spawn must not be flagged.
func TestNakedgoStructFieldWaitGroup(t *testing.T) {
	src := `package fix

import "sync"

type server struct {
	wg sync.WaitGroup
}

func (s *server) start(loop func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		loop()
	}()
}

// The harder shape: the goroutine body is a method call, so the Done
// is invisible here — only the Add accounts for the spawn.
func (s *server) startOpaque(loop func()) {
	s.wg.Add(1)
	go loop()
}

type holder struct {
	wg *sync.WaitGroup
}

// Pointer-held WaitGroup field counts too.
func (h *holder) launch(f func()) {
	h.wg.Add(1)
	go f()
}

func (s *server) close() {
	s.wg.Wait()
}
`
	if diags := runCheck(t, Nakedgo(), "nakedgo_structwg.go", src); len(diags) != 0 {
		t.Fatalf("struct-field WaitGroup join flagged: %v", diags)
	}
}

// TestNakedgoNonWaitGroupAdd is the counter-fixture: an Add call on
// something that is not a sync.WaitGroup (an atomic counter here) is
// not join discipline, so the naked spawn is still flagged.
func TestNakedgoNonWaitGroupAdd(t *testing.T) {
	src := `package fix

import "sync/atomic"

type stats struct {
	launched atomic.Int64
}

func (s *stats) fire(f func()) {
	s.launched.Add(1)
	go f()
}
`
	diags := runCheck(t, Nakedgo(), "nakedgo_counteradd.go", src)
	wantFindings(t, diags, "nakedgo", 11)
}

func TestRandsourceFlagged(t *testing.T) {
	src := `package fix

import "math/rand"

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func pick(n int) int { return rand.Intn(n) }
`
	diags := runCheck(t, Randsource(), "randsource_flagged.go", src)
	wantFindings(t, diags, "randsource", 6, 9)
}

func TestRandsourceClean(t *testing.T) {
	src := `package fix

import "math/rand"

func pick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
`
	if diags := runCheck(t, Randsource(), "randsource_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

func TestRandsourceExemptPackages(t *testing.T) {
	src := `package fix

import "math/rand"

func pick(n int) int { return rand.Intn(n) }
`
	pkg, err := CheckSource("randsource_exempt.go", src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	pkg.Dir = "internal/synth"
	if diags := Run([]*Package{pkg}, []*Analyzer{Randsource()}); len(diags) != 0 {
		t.Fatalf("exempt package flagged: %v", diags)
	}
}

func TestSuppression(t *testing.T) {
	src := `package fix

import "fmt"

func printAll(m map[string]int) {
	//lint:ignore maporder diagnostic output where order is irrelevant
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func printTrailing(m map[string]int) {
	for k, v := range m { //lint:ignore maporder same-line suppression
		fmt.Println(k, v)
	}
}
`
	if diags := runCheck(t, Maporder(), "suppress.go", src); len(diags) != 0 {
		t.Fatalf("suppressed findings survived: %v", diags)
	}
}

func TestSuppressionWrongCheckDoesNotApply(t *testing.T) {
	src := `package fix

import "fmt"

func printAll(m map[string]int) {
	//lint:ignore nakedgo wrong check name on purpose
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`
	diags := runCheck(t, Maporder(), "suppress_wrong.go", src)
	wantFindings(t, diags, "maporder", 7)
}

func TestMalformedSuppressionIsReported(t *testing.T) {
	src := `package fix

import "fmt"

func printAll(m map[string]int) {
	//lint:ignore maporder
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`
	diags := runCheck(t, Maporder(), "suppress_malformed.go", src)
	if len(diags) != 2 {
		t.Fatalf("got %d finding(s), want 2 (maporder + lintdirective): %v", len(diags), diags)
	}
	var checks []string
	for _, d := range diags {
		checks = append(checks, d.Check)
	}
	got := strings.Join(checks, ",")
	if got != "lintdirective,maporder" {
		t.Fatalf("checks = %s, want lintdirective,maporder", got)
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		dir, pattern string
		want         bool
	}{
		{"internal/rex", "./...", true},
		{".", "./...", true},
		{"internal/rex", "./internal/...", true},
		{"internal/rex", "internal/...", true},
		{"cmd/hoiho", "./internal/...", false},
		{"internal/rex", "./internal/rex", true},
		{"internal/rexx", "./internal/rex", false},
		{"internal/rex/sub", "./internal/rex", false},
		{"internal/rex/sub", "./internal/rex/...", true},
	}
	for _, c := range cases {
		if got := Match(c.dir, c.pattern); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.dir, c.pattern, got, c.want)
		}
	}
}

// TestLoadModule builds a throwaway two-package module and checks that
// cross-package type information flows: a map type defined in one
// package must be recognized by maporder when ranged in another.
func TestLoadModule(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.test\n\ngo 1.22\n")
	write("table/table.go", `package table

// Table is a map type ranged by the dependent package.
type Table struct{ Rows map[string]int }
`)
	write("use/use.go", `package use

import (
	"fmt"

	"example.test/table"
)

func Dump(t *table.Table) {
	for k, v := range t.Rows {
		fmt.Println(k, v)
	}
}
`)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2: %+v", len(pkgs), pkgs)
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", pkg.Path, pkg.TypeErrors)
		}
	}
	diags := Run(pkgs, []*Analyzer{Maporder()})
	if len(diags) != 1 || diags[0].Check != "maporder" {
		t.Fatalf("got %v, want one maporder finding in use/use.go", diags)
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, "use/use.go") {
		t.Fatalf("finding in %s, want use/use.go", diags[0].Pos.Filename)
	}
}

// TestAllSortedAndNamed pins the registry: eleven analyzers, sorted,
// each documented.
func TestAllSortedAndNamed(t *testing.T) {
	as := All()
	if len(as) != 11 {
		t.Fatalf("got %d analyzers, want 11", len(as))
	}
	var names []string
	for _, a := range as {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		names = append(names, a.Name)
	}
	want := "atomicmix,droppederr,envelopecheck,errsentinel,hotcompile,lazyinit,maporder,nakedgo,randsource,tickerstop,unlockpath"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("analyzers = %s, want %s", got, want)
	}
}
