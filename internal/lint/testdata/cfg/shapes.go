// Package cfgshapes is the committed fixture corpus for the CFG
// builder tests: one function per control-flow shape the builder must
// lower correctly. The golden file shapes.golden pins the DebugString
// of every function's graph; regenerate it with
//
//	go test ./internal/lint -run TestCFGShapesGolden -update
//
// after a deliberate builder change, and review the diff like code.
package cfgshapes

import (
	"errors"
	"os"
)

func ifReturn(x int) int {
	if x > 0 {
		return x
	}
	return -x
}

func ifElseChain(x int) string {
	var s string
	if x > 10 {
		s = "big"
	} else if x > 0 {
		s = "small"
	} else {
		s = "neg"
	}
	return s
}

func forLoop(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		sum += i
	}
	return sum
}

func forever() {
	for {
	}
}

func rangeLoop(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

func switchKinds(x int) string {
	switch x {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	default:
		return "big"
	}
}

func switchNoDefault(x int) string {
	out := ""
	switch {
	case x > 0:
		out = "pos"
	case x < 0:
		out = "neg"
	}
	return out
}

func typeSwitch(v any) string {
	switch v.(type) {
	case int:
		return "int"
	case string:
		return "string"
	}
	return "other"
}

func selectTwo(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

func deferAndPanic(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	return f
}

func gotoRetry() error {
	tries := 0
retry:
	tries++
	if tries < 3 {
		goto retry
	}
	if tries > 10 {
		return errors.New("too many tries")
	}
	return nil
}

func labeledBreak(grid [][]int) int {
	hits := 0
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == 0 {
				break outer
			}
			hits++
			_ = j
		}
	}
	return hits
}

func deadTail(x int) int {
	return x
	x++ // unreachable: starts a predecessor-less block
	return x
}

func exits(code int) {
	if code != 0 {
		os.Exit(code)
	}
}
