// Fixture for the atomicmix analyzer: a field accessed through
// sync/atomic anywhere in the package must be atomic everywhere.
package fix

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1) // ok: the atomic protocol itself
	atomic.AddInt64(&c.total, 1)
}

func (c *counter) read() int64 {
	return c.hits // flagged: plain read races with the atomic adds
}

func (c *counter) reset() {
	c.hits = 0 // flagged: plain write races with the atomic adds
	_ = atomic.LoadInt64(&c.total)
}
