// Fixture for the unlockpath analyzer: every Lock must reach an
// Unlock on every path to a normal return.
package fix

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

func (s *store) leakOnEarlyReturn(k string) int {
	s.mu.Lock() // flagged: the found-return path skips Unlock
	if v, ok := s.data[k]; ok {
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) leakOnBranch() {
	s.rw.RLock() // flagged: only the empty branch unlocks
	if len(s.data) == 0 {
		s.rw.RUnlock()
	}
}

func (s *store) deferOK() int {
	s.mu.Lock() // ok: defer covers every exit
	defer s.mu.Unlock()
	return len(s.data)
}

func (s *store) allPathsOK(k string) int {
	s.mu.Lock() // ok: both paths unlock
	if v, ok := s.data[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) panicPathOK() {
	s.mu.Lock() // ok: a panic is not a normal return
	if s.data == nil {
		panic("nil store")
	}
	s.mu.Unlock()
}
