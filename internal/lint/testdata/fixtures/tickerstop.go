// Fixture for the tickerstop analyzer: tickers leak a goroutine
// unless Stop is reachable.
package fix

import "time"

func pollForever(stop chan struct{}) {
	t := time.NewTicker(time.Second) // flagged: never stopped
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

func pollStopped(stop chan struct{}) {
	t := time.NewTicker(time.Second) // ok: defer t.Stop()
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}
