// Fixture for the randsource analyzer: the global math/rand source is
// unseeded nondeterminism outside the sanctioned simulation packages.
package fix

import "math/rand"

func jitter() float64 {
	return rand.Float64() // flagged: global source
}

func seeded() float64 {
	r := rand.New(rand.NewSource(42)) // ok: local seeded source
	return r.Float64()
}
