// Fixture for the hotcompile analyzer: regex compilation belongs at
// package init, not inside loops.
package fix

import "regexp"

func matchAll(lines []string) int {
	n := 0
	for _, l := range lines {
		re := regexp.MustCompile(`^[a-z]+[0-9]+$`) // flagged: compiled per iteration
		if re.MatchString(l) {
			n++
		}
	}
	return n
}

var linePat = regexp.MustCompile(`^[a-z]+$`) // ok: compiled once

func matchOnce(l string) bool {
	return linePat.MatchString(l)
}
