// Fixture for the maporder analyzer: map iteration order is random,
// so order-dependent effects need sorting.
package fix

import (
	"fmt"
	"sort"
)

func printAll(m map[string]int) {
	for k, v := range m { // flagged: output in map order
		fmt.Println(k, v)
	}
}

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // flagged: appended order leaks out
		keys = append(keys, k)
	}
	return keys
}

func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
