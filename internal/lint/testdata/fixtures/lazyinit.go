// Fixture for the lazyinit analyzer: nil-check-then-assign caches on
// shared state need a lock or sync.Once.
package fix

import "sync"

type cache struct {
	mu       sync.Mutex
	compiled map[string]int
}

func (c *cache) getUnguarded(k string) int {
	if c.compiled == nil {
		c.compiled = make(map[string]int) // flagged: two goroutines both get here
	}
	return c.compiled[k]
}

func (c *cache) getGuarded(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.compiled == nil {
		c.compiled = make(map[string]int) // ok: under the lock
	}
	return c.compiled[k]
}
