// Fixture for the errsentinel analyzer: sentinel errors must be
// matched with errors.Is, never with ==/!= or Error() text.
package fix

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

var ErrStale = errors.New("stale")

func eqSentinel(err error) bool {
	return err == ErrStale // flagged: wrapped errors never compare equal
}

func neSentinel(err error) bool {
	if err != io.EOF { // flagged
		return true
	}
	return false
}

func switchSentinel(err error) string {
	switch err { // flagged: switch compares with ==
	case ErrStale:
		return "stale"
	case nil:
		return "ok"
	}
	return "other"
}

func errorText(err error) bool {
	return err.Error() == "stale" // flagged: matching on message text
}

func errorContains(err error) bool {
	return strings.Contains(err.Error(), "stale") // flagged
}

func nilChecksFine(err error) error {
	if err != nil { // ok: nil comparison is the idiom
		return fmt.Errorf("wrap: %w", err)
	}
	if errors.Is(err, ErrStale) { // ok: the sanctioned form
		return nil
	}
	return nil
}
