// Fixture for the nakedgo analyzer: goroutines need a visible join or
// cancellation in the spawning function.
package fix

import "sync"

func fireAndForget(work []string) {
	for range work {
		go process() // flagged: nothing joins or cancels this
	}
}

func process() {}

func joined(work []string) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() { // ok: WaitGroup join
			defer wg.Done()
			process()
		}()
	}
	wg.Wait()
}
