// Fixture for the envelopecheck analyzer. The fixtures test places
// this file in cmd/geoserve, where every error response must go
// through the v1 envelope plumbing.
package fix

import "net/http"

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status) // ok: the envelope plumbing itself
	_, _, _ = status, code, msg
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", http.StatusBadRequest) // flagged: plain-text body
}

func handleWorse(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(500) // flagged: raw error status
}

func handleUnavailable(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusServiceUnavailable) // flagged
}

func handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK) // ok: success statuses are unrestricted
}

type v1ErrorWriter struct{ http.ResponseWriter }

func (w *v1ErrorWriter) WriteHeader(status int) {
	w.ResponseWriter.WriteHeader(status) // ok: allowlisted receiver
}
