// Fixture for the droppederr analyzer. The fixtures test places this
// file in internal/geoloc, inside the syntactic layer's scope; the
// flow-based dead-definition layer runs everywhere.
package fix

import (
	"fmt"
	"os"
	"strings"
)

type sink struct{}

func (sink) Flush() error { return nil }

func flushAll() error { return nil }

func write(p []byte) (int, error) { return len(p), nil }

func bareCall() {
	flushAll() // flagged: bare call discards the error
}

func deferredDrop() {
	var s sink
	defer s.Flush() // flagged: deferred call discards the error
}

func blankDiscard() {
	_ = flushAll() // flagged: explicit discard is still a discard
}

func tupleBlank() int {
	n, _ := write([]byte("x")) // flagged: error position blanked
	return n
}

func overwritten() error {
	err := flushAll() // flagged by the flow layer: never consulted
	err = flushAll()
	return err
}

func readOnlyCloseOK(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // ok: closing a read-only handle cannot lose data
	return nil
}

func cleanupBeforeReturnOK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close() // ok: the write error is already being returned
		return err
	}
	return f.Close()
}

func builderOK() string {
	var b strings.Builder
	b.WriteString("hi") // ok: strings.Builder cannot fail
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}
