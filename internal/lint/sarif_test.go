package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags(root string) []Diagnostic {
	return []Diagnostic{
		{
			Pos:     token.Position{Filename: filepath.Join(root, "internal", "rex", "rex.go"), Line: 10, Column: 3},
			Check:   "maporder",
			Message: "iteration over map m has an order-dependent effect",
		},
		{
			Pos:     token.Position{Filename: filepath.Join(root, "cmd", "geoserve", "server.go"), Line: 42, Column: 7},
			Check:   "lintdirective",
			Message: "malformed lint:ignore",
		},
	}
}

// decodeSARIF unmarshals into untyped JSON so the test checks the wire
// shape, not our own struct round-trip.
func decodeSARIF(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	return doc
}

// TestSARIFConformance pins the SARIF 2.1.0 subset GitHub code
// scanning requires: schema/version headers, a named driver with a
// rule table, and results whose locations carry module-relative URIs
// against %SRCROOT%.
func TestSARIFConformance(t *testing.T) {
	root := filepath.Join("/", "work", "hoiho")
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(root), All(), root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	doc := decodeSARIF(t, buf.Bytes())

	if got := doc["$schema"]; got != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %v", got)
	}
	if got := doc["version"]; got != "2.1.0" {
		t.Errorf("version = %v", got)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "hoiholint" {
		t.Errorf("driver.name = %v", driver["name"])
	}

	rules := driver["rules"].([]any)
	if len(rules) != len(All())+1 { // every analyzer + lintdirective
		t.Fatalf("got %d rules, want %d", len(rules), len(All())+1)
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rule := r.(map[string]any)
		ruleIDs[i] = rule["id"].(string)
		if rule["shortDescription"].(map[string]any)["text"] == "" {
			t.Errorf("rule %s has empty shortDescription", rule["id"])
		}
		if lvl := rule["defaultConfiguration"].(map[string]any)["level"]; lvl != "error" {
			t.Errorf("rule %s level = %v", rule["id"], lvl)
		}
	}

	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "maporder" {
		t.Errorf("results[0].ruleId = %v", first["ruleId"])
	}
	// ruleIndex must point at the matching rule table entry.
	idx := int(first["ruleIndex"].(float64))
	if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != "maporder" {
		t.Errorf("results[0].ruleIndex = %d, rules[%d] = %q", idx, idx, ruleIDs[idx])
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/rex/rex.go" {
		t.Errorf("uri = %v, want module-relative forward-slash path", art["uri"])
	}
	if art["uriBaseId"] != "%SRCROOT%" {
		t.Errorf("uriBaseId = %v", art["uriBaseId"])
	}
	region := loc["region"].(map[string]any)
	if region["startLine"].(float64) != 10 || region["startColumn"].(float64) != 3 {
		t.Errorf("region = %v", region)
	}

	// The unregistered lintdirective check still resolves to a rule.
	second := results[1].(map[string]any)
	idx = int(second["ruleIndex"].(float64))
	if ruleIDs[idx] != "lintdirective" {
		t.Errorf("lintdirective ruleIndex = %d, rules[%d] = %q", idx, idx, ruleIDs[idx])
	}
}

// TestSARIFEmpty checks the clean-run report: still a valid log, with
// the full rule table and an empty (not absent, not null) results
// array — how code scanning learns old findings are resolved.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, All(), "/work/hoiho"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	doc := decodeSARIF(t, buf.Bytes())
	run := doc["runs"].([]any)[0].(map[string]any)
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatalf("results missing or null: %v", run["results"])
	}
	if len(results) != 0 {
		t.Errorf("got %d results, want 0", len(results))
	}
	rules := run["tool"].(map[string]any)["driver"].(map[string]any)["rules"].([]any)
	if len(rules) != len(All()) {
		t.Errorf("got %d rules, want %d", len(rules), len(All()))
	}
}

// TestWriteJSON pins the -json element shape and the empty-array case.
func TestWriteJSON(t *testing.T) {
	root := "/work/hoiho"
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags(root), root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("-json output invalid: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d diags, want 2", len(out))
	}
	if out[0]["file"] != "internal/rex/rex.go" || out[0]["check"] != "maporder" {
		t.Errorf("out[0] = %v", out[0])
	}
	if out[0]["line"].(float64) != 10 || out[0]["column"].(float64) != 3 {
		t.Errorf("out[0] position = %v", out[0])
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil, root); err != nil {
		t.Fatalf("WriteJSON(empty): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty run renders %q, want []", got)
	}
}
