package lint

import (
	"go/ast"
	"testing"
)

// udForFunc type-checks the fixture, finds the named function, and
// returns its use-def solution.
func udForFunc(t *testing.T, src, fname string) (*Package, *UseDef) {
	t.Helper()
	pkg, err := CheckSource("df_fixture.go", src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fname {
				continue
			}
			cfg := BuildCFG(fd.Body)
			return pkg, NewUseDef(cfg, fd.Type.Results, pkg.Info)
		}
	}
	t.Fatalf("function %s not found", fname)
	return nil, nil
}

// deadNames renders DeadDefs as "name@line" for compact assertions.
func deadNames(pkg *Package, ud *UseDef) []string {
	var out []string
	for _, d := range ud.DeadDefs() {
		pos := pkg.Fset.Position(d.Id.Pos())
		out = append(out, d.Obj.Name()+"@"+itoa(pos.Line))
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func wantDead(t *testing.T, pkg *Package, ud *UseDef, want ...string) {
	t.Helper()
	got := deadNames(pkg, ud)
	if len(got) != len(want) {
		t.Fatalf("dead defs = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("dead def %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUseDefOverwriteIsDead(t *testing.T) {
	src := `package df

func f() int {
	x := 1
	x = 2
	return x
}
`
	pkg, ud := udForFunc(t, src, "f")
	wantDead(t, pkg, ud, "x@4")
}

func TestUseDefBranchUseIsLive(t *testing.T) {
	src := `package df

func f(c bool) int {
	x := 1
	if c {
		return x
	}
	x = 2
	return x
}
`
	// The first definition reaches the use inside the branch, so only
	// a def with no reachable use would be dead — here there is none.
	pkg, ud := udForFunc(t, src, "f")
	wantDead(t, pkg, ud)
}

func TestUseDefLoopCarriedUse(t *testing.T) {
	src := `package df

func f(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}
`
	// sum's initial def flows around the loop's back edge; i's def in
	// the init reaches the condition. Nothing is dead.
	pkg, ud := udForFunc(t, src, "f")
	wantDead(t, pkg, ud)
}

func TestUseDefEscapes(t *testing.T) {
	src := `package df

func addr() *int {
	x := 1
	x = 2
	return &x
}

func captured() func() int {
	y := 1
	y = 2
	return func() int { return y }
}

func named() (err error) {
	err = nil
	return
}
`
	// Address-taken, closure-captured, and named-result variables all
	// have invisible readers: no dead defs even though the first
	// assignments are overwritten.
	for _, fname := range []string{"addr", "captured", "named"} {
		pkg, ud := udForFunc(t, src, fname)
		wantDead(t, pkg, ud)
	}
}

func TestUseDefRangeBindings(t *testing.T) {
	src := `package df

func f(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

func g(xs []int) {
	for i := range xs {
		_ = i
	}
}
`
	pkg, ud := udForFunc(t, src, "f")
	wantDead(t, pkg, ud)
	// _ is not a variable; i is used by the blank assign's RHS.
	pkg, ud = udForFunc(t, src, "g")
	wantDead(t, pkg, ud)
}

func TestUseDefReachingDefsAtUse(t *testing.T) {
	src := `package df

func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`
	pkg, ud := udForFunc(t, src, "f")
	// Find the use of x in the return statement and check both defs
	// reach it.
	var useID *ast.Ident
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "x" {
				useID = id
			}
			return true
		})
	}
	if useID == nil {
		t.Fatal("no use of x in return found")
	}
	defs := ud.ReachingDefs(useID)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at return, want 2 (both branches)", len(defs))
	}
}

func TestUseDefDeterministicOrder(t *testing.T) {
	src := `package df

func f(c bool) int {
	a := 1
	b := 2
	a = 3
	b = 4
	if c {
		a = 5
	}
	return a + b
}
`
	pkg, ud := udForFunc(t, src, "f")
	first := deadNames(pkg, ud)
	for i := 0; i < 10; i++ {
		pkgN, udN := udForFunc(t, src, "f")
		got := deadNames(pkgN, udN)
		if len(got) != len(first) {
			t.Fatalf("run %d: dead defs %v, want %v", i, got, first)
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: dead defs %v, want %v", i, got, first)
			}
		}
		_ = pkgN
	}
	// And the expected content: a@4 and b@5 are overwritten unread.
	wantDead(t, pkg, ud, "a@4", "b@5")
}
