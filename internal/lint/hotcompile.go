package lint

import (
	"go/ast"
	"strings"
)

// Hotcompile flags regexp compilation on hot paths — the PR-2 geoloc
// bug class, where patterns were recompiled on every Lookup instead of
// once at index build time. A call to regexp.Compile, MustCompile,
// CompilePOSIX, or MustCompilePOSIX is reported when it sits
// (lexically) inside a for/range loop, or inside an HTTP handler — a
// function taking an http.ResponseWriter or *http.Request.
//
// Compilation at package level, in init, or in ordinary construction
// code that runs once per build is fine and not reported. Loops that
// genuinely must compile dynamic patterns (the learning pipeline's
// candidate evaluation) document that with //lint:ignore hotcompile.
func Hotcompile() *Analyzer {
	return &Analyzer{
		Name: "hotcompile",
		Doc:  "regexp compilation inside a loop or per-request handler",
		Run:  runHotcompile,
	}
}

func runHotcompile(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		regexpName := importName(f, "regexp")
		if regexpName == "" {
			continue
		}
		forEachFunc(f, func(fn funcNode) {
			checkHotcompileFunc(pass, fn, regexpName)
		})
	}
}

func checkHotcompileFunc(pass *Pass, fn funcNode, regexpName string) {
	handler := isHandlerFunc(pass, fn)
	var walk func(n ast.Node, loops int)
	walk = func(n ast.Node, loops int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loops++
		case *ast.FuncLit:
			// A literal defined inside a loop still runs per iteration;
			// keep the loop depth. Its own loops nest on top.
		case *ast.CallExpr:
			if name, ok := regexpCompileCall(n, regexpName); ok {
				switch {
				case loops > 0:
					pass.Reportf(n, "%s inside a loop; compile once at init or index build time and reuse", name)
				case handler:
					pass.Reportf(n, "%s inside a request handler; compile once at init or index build time and reuse", name)
				}
			}
		}
		for _, child := range childNodes(n) {
			walk(child, loops)
		}
	}
	walk(fn.body, 0)
}

// regexpCompileCall matches regexp.Compile / MustCompile /
// CompilePOSIX / MustCompilePOSIX through the file's import name.
func regexpCompileCall(call *ast.CallExpr, regexpName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != regexpName {
		return "", false
	}
	switch sel.Sel.Name {
	case "Compile", "MustCompile", "CompilePOSIX", "MustCompilePOSIX":
		return "regexp." + sel.Sel.Name, true
	}
	return "", false
}

// isHandlerFunc reports whether the function takes an
// http.ResponseWriter or *http.Request — the request-scoped signature.
func isHandlerFunc(pass *Pass, fn funcNode) bool {
	if fn.params == nil {
		return false
	}
	for _, field := range fn.params.List {
		t := pass.ExprString(field.Type)
		if strings.HasSuffix(t, "http.ResponseWriter") || strings.HasSuffix(t, "http.Request") {
			return true
		}
	}
	return false
}

// importName returns the local name the file imports path under, or ""
// when the file does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// childNodes lists a node's direct children via ast.Inspect's
// first-level callbacks.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			depth--
			return true
		}
		depth++
		if depth == 2 {
			out = append(out, c)
			depth--
			return false
		}
		return true
	})
	return out
}
