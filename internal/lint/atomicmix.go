package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Atomicmix flags a variable or field accessed both through sync/atomic
// functions and through plain reads/writes in the same package. Mixing
// the two is a data race that the race detector only catches when the
// schedule cooperates: the atomic side establishes no ordering for the
// plain side, so a plain read can observe a torn or stale value. This
// is the `Live`-pointer / stats-era bug class — one hot path upgraded
// to atomic.Load while a forgotten maintenance path still wrote the
// field directly.
//
// The analyzer keys accesses by the type-checker's object for the
// field or variable, so `s.count` in one file and `srv.count` in
// another are the same field. Every plain access of a mixed object is
// reported (the atomic sites are the intended protocol; the plain
// sites are the bug). The modern typed atomics (atomic.Int64 and
// friends) make this mistake unrepresentable — preferring them is the
// real fix — but the old function-based API is still what the fix-up
// path reaches for.
func Atomicmix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "field accessed both via sync/atomic and by plain read/write",
		Run:  runAtomicmix,
	}
}

func runAtomicmix(pass *Pass) {
	// First pass over the whole package: find atomic accesses and
	// remember the exact identifier nodes inside the &arg, so the
	// second pass can tell a plain access from the atomic site itself.
	atomicSites := make(map[types.Object][]ast.Node)
	atomicIdents := make(map[*ast.Ident]bool)
	for _, f := range pass.Pkg.Files {
		atomicName := importName(f, "sync/atomic")
		if atomicName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(call, atomicName) || len(call.Args) == 0 {
				return true
			}
			obj, ids := addressedObject(pass, call.Args[0])
			if obj == nil {
				return true
			}
			atomicSites[obj] = append(atomicSites[obj], call)
			for _, id := range ids {
				atomicIdents[id] = true
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return
	}

	// Second pass: any use of a mixed object outside an atomic call is
	// a plain access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicIdents[id] {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, mixed := atomicSites[obj]; !mixed {
				return true
			}
			pass.Reportf(id, "%s is accessed with sync/atomic elsewhere in this package; this plain access races with it — use atomic for every access (or a typed atomic field)",
				id.Name)
			return true
		})
	}
}

// isAtomicFuncCall matches the function-based sync/atomic API:
// atomic.LoadX/StoreX/AddX/SwapX/CompareAndSwapX.
func isAtomicFuncCall(call *ast.CallExpr, atomicName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != atomicName {
		return false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedObject resolves the &x / &x.f argument of an atomic call to
// the variable or field object being accessed, along with the
// identifier chain inside the operand (so those occurrences are not
// double-counted as plain accesses).
func addressedObject(pass *Pass, arg ast.Expr) (types.Object, []*ast.Ident) {
	un, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return nil, nil
	}
	var ids []*ast.Ident
	ast.Inspect(un.X, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids = append(ids, id)
		}
		return true
	})
	switch x := unparen(un.X).(type) {
	case *ast.Ident:
		return pass.Pkg.Info.Uses[x], ids
	case *ast.SelectorExpr:
		return pass.Pkg.Info.Uses[x.Sel], ids
	}
	return nil, nil
}
