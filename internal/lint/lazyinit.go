package lint

import (
	"go/ast"
	"go/token"
)

// Lazyinit flags the check-then-assign lazy-initialization pattern on
// shared state without a synchronization guard — the PR-1 rex.Regex
// bug class, where a regex cache field was populated under a bare nil
// check and raced as soon as the worker pool arrived:
//
//	if r.compiled == nil {
//		r.compiled = compile(r)   // two goroutines both get here
//	}
//
// Both directions are recognized: `if x.f == nil { ... x.f = ... }`
// and the early-return form `if x.f != nil { return ... }` followed by
// an assignment to x.f. The base of the field chain must be a receiver
// or parameter (state that escapes the function); locals constructed
// inside the function cannot race and are not flagged.
//
// A function showing any synchronization discipline — calls to Lock,
// RLock, (sync.Once).Do, LoadOrStore, CompareAndSwap, or Swap — is
// trusted and skipped; the analyzer looks for *unguarded* caches, not
// for lock-correctness.
func Lazyinit() *Analyzer {
	return &Analyzer{
		Name: "lazyinit",
		Doc:  "nil-check-then-assign lazy init of shared state without a lock or sync.Once",
		Run:  runLazyinit,
	}
}

func runLazyinit(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		forEachFunc(f, func(fn funcNode) {
			checkLazyinitFunc(pass, fn)
		})
	}
}

func checkLazyinitFunc(pass *Pass, fn funcNode) {
	if callsMethodNamed(fn.body, "Lock", "RLock", "Do", "LoadOrStore", "CompareAndSwap", "Swap") {
		return
	}
	shared := paramNames(fn.params)
	if fn.recv != "" {
		shared[fn.recv] = true
	}
	walkFuncBody(fn.body, func(n ast.Node) {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return
		}
		for i, stmt := range block.List {
			ifStmt, ok := stmt.(*ast.IfStmt)
			if !ok {
				continue
			}
			field, op := nilCheckedField(pass, ifStmt.Cond, shared)
			if field == "" {
				continue
			}
			switch op {
			case token.EQL:
				if assignsTo(pass, ifStmt.Body, field) {
					pass.Reportf(ifStmt, "lazy init of %s is guarded only by a nil check; concurrent callers race — use sync.Once or a mutex", field)
				}
			case token.NEQ:
				if !returnsFrom(ifStmt.Body) {
					continue
				}
				for _, later := range block.List[i+1:] {
					if nodeAssignsTo(pass, later, field) {
						pass.Reportf(ifStmt, "lazy init of %s (early-return nil check then assign) races under concurrent use — use sync.Once or a mutex", field)
						break
					}
				}
			}
		}
	})
}

// nilCheckedField matches `x.f == nil` / `x.f != nil` (either operand
// order) where the chain's base identifier is shared (receiver or
// parameter). It returns the rendered field expression and the
// comparison operator.
func nilCheckedField(pass *Pass, cond ast.Expr, shared map[string]bool) (string, token.Token) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return "", token.ILLEGAL
	}
	expr := bin.X
	other := bin.Y
	if isNilIdent(expr) {
		expr, other = other, expr
	}
	if !isNilIdent(other) {
		return "", token.ILLEGAL
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", token.ILLEGAL
	}
	base := baseIdent(sel)
	if base == nil || !shared[base.Name] {
		return "", token.ILLEGAL
	}
	return pass.ExprString(sel), bin.Op
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// assignsTo reports whether the block assigns to the rendered field
// expression.
func assignsTo(pass *Pass, body *ast.BlockStmt, field string) bool {
	return nodeAssignsTo(pass, body, field)
}

// nodeAssignsTo reports whether any assignment under n (nested
// statements included) targets the rendered field expression.
func nodeAssignsTo(pass *Pass, n ast.Node, field string) bool {
	found := false
	ast.Inspect(n, func(sub ast.Node) bool {
		if found {
			return false
		}
		if stmtAssignsTo(pass, sub, field) {
			found = true
			return false
		}
		return true
	})
	return found
}

func stmtAssignsTo(pass *Pass, n ast.Node, field string) bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range assign.Lhs {
		if pass.ExprString(lhs) == field {
			return true
		}
	}
	return false
}

func returnsFrom(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if _, ok := stmt.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}
