package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureDirs places directory-scoped fixtures inside their analyzer's
// scope; everything else type-checks as a module-root package.
var fixtureDirs = map[string]string{
	"droppederr.go":    "internal/geoloc",
	"envelopecheck.go": "cmd/geoserve",
}

// runFixtures analyzes every file in testdata/fixtures with all eleven
// analyzers and returns the rendered diagnostics, sorted.
func runFixtures(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "fixtures", "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	sort.Strings(paths)
	var lines []string
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		base := filepath.Base(path)
		dir := fixtureDirs[base]
		if dir == "" {
			dir = "."
		}
		pkg, err := CheckSourceAt(base, dir, string(src))
		if err != nil {
			t.Fatalf("check %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s has type errors: %v", path, pkg.TypeErrors)
		}
		for _, d := range Run([]*Package{pkg}, All()) {
			lines = append(lines, d.String())
		}
	}
	return lines
}

// TestFixturesGolden pins the complete sorted file:line:col output of
// all eleven analyzers over the fixture corpus. Regenerate with
// -update after a deliberate analyzer change and review the diff.
func TestFixturesGolden(t *testing.T) {
	got := strings.Join(runFixtures(t), "\n") + "\n"
	goldenPath := filepath.Join("testdata", "fixtures", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from golden.\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestFixturesCoverEveryAnalyzer requires the corpus to exercise each
// analyzer: at least two distinct diagnostics for every v2 analyzer
// and at least one for the originals (which also have dedicated unit
// tests in lint_test.go).
func TestFixturesCoverEveryAnalyzer(t *testing.T) {
	counts := make(map[string]int)
	for _, line := range runFixtures(t) {
		// file:line:col: check: message
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) < 3 {
			t.Fatalf("malformed diagnostic line %q", line)
		}
		counts[parts[1]]++
	}
	mins := map[string]int{
		"atomicmix":     2,
		"droppederr":    2,
		"envelopecheck": 2,
		"errsentinel":   2,
		"unlockpath":    2,
		"hotcompile":    1,
		"lazyinit":      1,
		"maporder":      1,
		"nakedgo":       1,
		"randsource":    1,
		"tickerstop":    1,
	}
	for check, min := range mins {
		if counts[check] < min {
			t.Errorf("fixture corpus produced %d %s diagnostic(s), want >= %d", counts[check], check, min)
		}
	}
}

// TestFixtureDirsExist keeps the scoping map honest: a renamed
// analyzer scope directory must not silently strand a fixture.
func TestFixtureDirsExist(t *testing.T) {
	for fixture, dir := range fixtureDirs {
		if _, err := os.Stat(filepath.Join("testdata", "fixtures", fixture)); err != nil {
			t.Errorf("fixtureDirs names missing fixture %s", fixture)
		}
		scoped := false
		for _, d := range append(append([]string{}, droppederrDirs...), envelopeDirs...) {
			if dir == d {
				scoped = true
			}
		}
		if !scoped {
			t.Errorf("fixture %s mapped to %s, which no analyzer scopes", fixture, dir)
		}
	}
}
