package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// Envelopecheck pins the /v1 error-envelope contract in cmd/geoserve:
// every error response the daemon emits must be the uniform
// {"error":{"code","message"}} JSON document, produced by the server's
// writeError helper (or the v1ErrorWriter that rewrites the mux's own
// 404/405s). A handler that calls http.Error or writes a non-2xx
// status directly hands a client a plain-text body that breaks every
// parser expecting the envelope — precisely the drift the contract
// exists to prevent, and invisible to tests that only exercise the
// happy path.
//
// The check is scoped to the serving package (envelopeDirs); inside it,
// the only functions allowed to write an error status are the envelope
// plumbing itself: writeError, writeJSON (writeError's transport), and
// methods on v1ErrorWriter / statusWriter.
func Envelopecheck() *Analyzer {
	return &Analyzer{
		Name: "envelopecheck",
		Doc:  "geoserve handler writes a non-2xx response outside the v1 error envelope",
		Run:  runEnvelopecheck,
	}
}

// envelopeDirs are the packages bound by the envelope contract.
var envelopeDirs = []string{"cmd/geoserve"}

// envelopeAllowedFuncs may write raw statuses: they are the envelope.
var envelopeAllowedFuncs = map[string]bool{
	"writeError": true,
	"writeJSON":  true,
}

// envelopeAllowedRecvs are writer types whose methods implement the
// envelope or capture statuses without emitting them.
var envelopeAllowedRecvs = map[string]bool{
	"v1ErrorWriter": true,
	"statusWriter":  true,
}

func runEnvelopecheck(pass *Pass) {
	inScope := false
	for _, d := range envelopeDirs {
		if pass.Pkg.Dir == d || strings.HasPrefix(pass.Pkg.Dir, d+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || envelopeExempt(fd) {
				continue
			}
			// Function literals inside a handler are the handler's code;
			// they are scanned as part of the declaration they live in.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkEnvelopeCall(pass, call)
				return true
			})
		}
	}
}

func envelopeExempt(fd *ast.FuncDecl) bool {
	if envelopeAllowedFuncs[fd.Name.Name] {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	id, ok := t.(*ast.Ident)
	return ok && envelopeAllowedRecvs[id.Name]
}

func checkEnvelopeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// http.Error writes a text/plain body — never envelope-shaped.
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "http" && sel.Sel.Name == "Error" {
		pass.Reportf(call, "http.Error writes a plain-text error; use writeError so the /v1 envelope shape holds")
		return
	}
	// w.WriteHeader(status) with a constant error status.
	if sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	status, ok := constStatus(pass, call.Args[0])
	if !ok || status < 300 {
		return
	}
	pass.Reportf(call, "WriteHeader(%d) outside the envelope plumbing; route error responses through writeError", status)
}

// constStatus extracts a compile-time constant integer status code.
func constStatus(pass *Pass, e ast.Expr) (int64, bool) {
	if pass.Pkg.Info == nil {
		return 0, false
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
