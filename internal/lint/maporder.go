package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags range statements over maps whose bodies have
// order-dependent effects — writing output directly, or appending to a
// slice that outlives the loop — without evidence that the order is
// later fixed by sorting. Go randomizes map iteration order, so such a
// loop leaks nondeterminism into results, serialized conventions, and
// generated pages (the PR-1 webgen/eval bug class).
//
// A loop is clean when its order-dependent effect is an append whose
// target is passed to a sort call (sort.Strings, sort.Slice, sort.Sort,
// slices.Sort, ...) later in the same function — the collect-keys,
// sort, iterate idiom. Writes into other maps, counters, and other
// order-insensitive effects are not flagged.
func Maporder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "map iteration with order-dependent effects and no sorting",
		Run:  runMaporder,
	}
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		forEachFunc(f, func(fn funcNode) {
			checkMaporderFunc(pass, fn)
		})
	}
}

func checkMaporderFunc(pass *Pass, fn funcNode) {
	walkFuncBody(fn.body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypeOf(rng.X)
		if t == nil || !isMapType(t) {
			return
		}
		effect, target := orderEffect(pass, rng)
		if effect == "" {
			return
		}
		if target != "" && sortedInFunc(pass, fn.body, target) {
			return
		}
		pass.Reportf(rng, "iteration over map %s has an order-dependent effect (%s); map order is randomized — sort the keys first or sort the result",
			pass.ExprString(rng.X), effect)
	})
}

func isMapType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderEffect scans the range body for an order-dependent effect. It
// returns a description of the first one found and, for appends, the
// rendered append target (so the caller can look for a later sort).
// Direct output — fmt printing to a stream, writer/builder Write calls,
// encoder Encode calls — has no sortable target and is always flagged.
func orderEffect(pass *Pass, rng *ast.RangeStmt) (effect, target string) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := outputCall(n); ok {
				effect = "writes output via " + name
				return false
			}
		case *ast.AssignStmt:
			if tgt, ok := appendTarget(pass, n, rng); ok {
				effect = "appends to " + tgt
				target = tgt
				return false
			}
		}
		return true
	})
	return effect, target
}

// outputCall recognizes calls that emit bytes in call order: fmt
// Print/Fprint families and Write/WriteString/Encode-style methods.
func outputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + name, true
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return "." + name, true
	}
	return "", false
}

// appendTarget matches `x = append(x, ...)` (or `x.f = append(x.f, ...)`)
// where the target is declared outside the range statement, so the
// iteration order determines the final element order.
func appendTarget(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) (string, bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return "", false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return "", false
	}
	base := baseIdent(assign.Lhs[0])
	if base == nil || declaredWithin(pass, base, rng.Pos(), rng.End()) {
		return "", false
	}
	return pass.ExprString(assign.Lhs[0]), true
}

// baseIdent returns the leftmost identifier of an expression chain
// (x in x, x.f, x.f[i]), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's declaration lies inside [lo, hi)
// — used to skip variables scoped to the loop itself. Without type
// information it conservatively returns false.
func declaredWithin(pass *Pass, id *ast.Ident, lo, hi token.Pos) bool {
	info := pass.Pkg.Info
	if info == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() < hi
}

// sortedInFunc reports whether the function body contains a sort call
// whose arguments mention target: sort.Strings(x), sort.Slice(x, less),
// sort.Sort(byFoo(x)), slices.Sort(x), slices.SortFunc(x, cmp), ...
func sortedInFunc(pass *Pass, body *ast.BlockStmt, target string) bool {
	found := false
	walkFuncBody(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(call) {
			return
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(sub ast.Node) bool {
				if e, ok := sub.(ast.Expr); ok && pass.ExprString(e) == target {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return
			}
		}
	})
	return found
}

func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch pkg.Name {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
