package lint

import "testing"

func TestTickerstopFlagged(t *testing.T) {
	src := `package fix

import "time"

// Never stopped: used only through C.
func pollForever(every time.Duration) {
	t := time.NewTicker(every)
	for range t.C {
	}
}

// Inline form: the Ticker is unreachable after evaluation.
func waitOne(every time.Duration) {
	<-time.NewTicker(every).C
}

// Result discarded outright.
func discard(every time.Duration) {
	_ = time.NewTimer(every)
}

// Bare call statement.
func bare(every time.Duration) {
	time.NewTicker(every)
}
`
	diags := runCheck(t, Tickerstop(), "tickerstop_flagged.go", src)
	wantFindings(t, diags, "tickerstop", 7, 14, 19, 24)
}

func TestTickerstopClean(t *testing.T) {
	src := `package fix

import "time"

// The canonical shape: defer Stop in the same function.
func sample(every time.Duration, done chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-done:
			return
		}
	}
}

// Stop inside the goroutine the ticker drives — nested literals count
// as evidence for the creating scope.
func spawn(every time.Duration, done chan struct{}) {
	t := time.NewTicker(every)
	go func() {
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-done:
				return
			}
		}
	}()
}

// Escapes: returned, stored in a field, passed along — Stop is the
// new owner's job.
func build(every time.Duration) *time.Ticker {
	return time.NewTicker(every)
}

type sampler struct {
	tick *time.Ticker
}

func (s *sampler) init(every time.Duration) {
	s.tick = time.NewTicker(every)
}

func handoff(every time.Duration, sink func(*time.Ticker)) {
	t := time.NewTicker(every)
	sink(t)
}

// Timer variant with an explicit Stop on the drain path.
func timeout(d time.Duration, ch chan int) int {
	tm := time.NewTimer(d)
	select {
	case v := <-ch:
		tm.Stop()
		return v
	case <-tm.C:
		return -1
	}
}
`
	if diags := runCheck(t, Tickerstop(), "tickerstop_clean.go", src); len(diags) != 0 {
		t.Fatalf("clean fixture flagged: %v", diags)
	}
}

// TestTickerstopShadowing: a same-named non-timer variable must not be
// mistaken for evidence, and an inner shadowing ticker is judged in its
// own right.
func TestTickerstopShadowing(t *testing.T) {
	src := `package fix

import "time"

type stopper struct{}

func (stopper) Stop() {}

// The t.Stop() here is on a stopper, not the ticker: still a leak.
func shadowed(every time.Duration) {
	tick := time.NewTicker(every)
	_ = tick.C
	t := stopper{}
	t.Stop()
}
`
	diags := runCheck(t, Tickerstop(), "tickerstop_shadow.go", src)
	wantFindings(t, diags, "tickerstop", 11)
}

// TestTickerstopIgnoreDirective: a justified suppression is honored.
func TestTickerstopIgnoreDirective(t *testing.T) {
	src := `package fix

import "time"

func intentional(every time.Duration) {
	//lint:ignore tickerstop process-lifetime ticker, stopped by exit
	t := time.NewTicker(every)
	for range t.C {
	}
}
`
	if diags := runCheck(t, Tickerstop(), "tickerstop_ignored.go", src); len(diags) != 0 {
		t.Fatalf("suppressed finding survived: %v", diags)
	}
}
