package lint

// Control-flow graphs: the flow layer under the v2 analyzers. PR 3's
// analyzers are single-pass AST walkers; they cannot answer "is there a
// path from this Lock to a return that skips the Unlock" or "is this
// error definition ever read again". BuildCFG lowers one function body
// into basic blocks with explicit edges for branches, loops, switches,
// selects, gotos, returns, and panics, and the dataflow layer
// (dataflow.go) runs reaching definitions over it. Analyzers opt in
// through Pass.FuncCFG, which memoizes one graph per function body.
//
// The graph is deliberately simple and deterministic:
//
//   - Blocks[0] is the synthetic entry, Blocks[1] the synthetic exit.
//     Every return statement edges to the exit; falling off the end of
//     the body does too (the implicit return).
//   - A block's Nodes are the statements and control expressions it
//     executes, in order. Compound statements never appear themselves —
//     their pieces (init statements, conditions, case expressions,
//     bodies) are distributed over the blocks the construct creates.
//   - Calls that cannot return — panic, os.Exit, log.Fatal*,
//     runtime.Goexit, testing's (*T).Fatal* — terminate their block
//     with no successor. They are not edges to exit: a path that ends
//     in panic is not a normal return, and checks like unlockpath must
//     not treat it as one (deferred unlocks still run during unwind).
//   - Defer statements execute in place (their arguments are evaluated
//     immediately) and are additionally recorded in Defers, since their
//     calls run at every function exit.
//   - Function literals are opaque: a FuncLit is a value, not control
//     flow of the enclosing function, and analyzers get a separate
//     graph for its body.
//
// Unreachable statements (after a return, break, or panic) start a
// fresh block with no predecessors, so every statement of the function
// appears in exactly one block either way.
import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: straight-line nodes, then a transfer of
// control to every block in Succs.
type Block struct {
	Index int
	// Kind names the role the builder gave the block ("entry", "exit",
	// "if.then", "for.head", ...) — for tests and debugging only.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of a single function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body (nested literals
	// excluded): their calls run at each exit, normal or panicking.
	Defers []*ast.DeferStmt
}

// BuildCFG lowers a function body into a control-flow graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit) // implicit return off the end
	}
	return b.cfg
}

// DebugString renders the graph one block per line —
// "b2 for.head n=1 -> b3 b1" — deterministically, for the fixture
// tests that pin construction shapes.
func (c *CFG) DebugString() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s n=%d", blk.Index, blk.Kind, len(blk.Nodes))
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// frame is one enclosing breakable construct. Loops set cont; switches
// and selects leave it nil so `continue` skips past them.
type frame struct {
	label string
	brk   *Block
	cont  *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, goto, panic) until the next statement starts an
	// unreachable block or a join is installed.
	cur    *Block
	frames []frame
	labels map[string]*Block
	// pendingLabel names the label wrapping the next loop/switch
	// statement, so `break L` / `continue L` resolve to its frames.
	pendingLabel string
	// fallTo is the next case body during switch construction, the
	// target of a fallthrough statement.
	fallTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting an unreachable
// block when control cannot reach here.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) ensure() {
	//lint:ignore lazyinit cfgBuilder is created and driven by a single goroutine per BuildCFG call; cur is builder state, not a shared cache
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than the labeled loop/switch the label waits
	// for consumes it as a plain goto-style target.
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body, "switch", b.takeLabel(), true)
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body, "typeswitch", b.takeLabel(), true)
	case *ast.SelectStmt:
		b.switchClauses(s.Body, "select", b.takeLabel(), false)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil
		}
	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// takeLabel consumes the pending label so it binds to the construct
// being built right now, not to one nested inside it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	b.ensure()
	cond := b.cur

	then := b.newBlock("if.then")
	b.edge(cond, then)
	var els *Block
	if s.Else != nil {
		els = b.newBlock("if.else")
		b.edge(cond, els)
	}

	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	// Join only where some path actually continues.
	var into []*Block
	if thenEnd != nil {
		into = append(into, thenEnd)
	}
	if s.Else == nil {
		into = append(into, cond)
	} else if elseEnd != nil {
		into = append(into, elseEnd)
	}
	if len(into) == 0 {
		b.cur = nil
		return
	}
	join := b.newBlock("if.join")
	for _, from := range into {
		b.edge(from, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	b.add(s.Init)
	b.ensure()
	from := b.cur

	head := b.newBlock("for.head")
	b.edge(from, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	join := b.newBlock("for.join")
	if s.Cond != nil {
		b.edge(head, join)
	}
	body := b.newBlock("for.body")
	b.edge(head, body)

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}

	b.frames = append(b.frames, frame{label: label, brk: join, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.ensure()
	from := b.cur

	// The range statement itself is the head's node: it evaluates X and
	// defines Key/Value each iteration.
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, s)
	b.edge(from, head)
	join := b.newBlock("range.join")
	b.edge(head, join)
	body := b.newBlock("range.body")
	b.edge(head, body)

	b.frames = append(b.frames, frame{label: label, brk: join, cont: head})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// switchClauses builds the clause fan-out shared by switch, type
// switch, and select. tagged switches fall through to the join when no
// default clause matches; a select blocks until some clause is ready,
// so it gets no such edge.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, kind, label string, defaultFallsThrough bool) {
	b.ensure()
	head := b.cur
	join := b.newBlock(kind + ".join")
	b.frames = append(b.frames, frame{label: label, brk: join})

	// Create every clause block first so fallthrough can target the
	// next body before it is built.
	type clause struct {
		blk  *Block
		body []ast.Stmt
	}
	var clauses []clause
	hasDefault := false
	for _, cs := range body.List {
		switch cs := cs.(type) {
		case *ast.CaseClause:
			ckind := kind + ".case"
			if cs.List == nil {
				ckind = kind + ".default"
				hasDefault = true
			}
			blk := b.newBlock(ckind)
			for _, e := range cs.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			b.edge(head, blk)
			clauses = append(clauses, clause{blk, cs.Body})
		case *ast.CommClause:
			ckind := kind + ".case"
			if cs.Comm == nil {
				ckind = kind + ".default"
				hasDefault = true
			}
			blk := b.newBlock(ckind)
			if cs.Comm != nil {
				blk.Nodes = append(blk.Nodes, cs.Comm)
			}
			b.edge(head, blk)
			clauses = append(clauses, clause{blk, cs.Body})
		}
	}
	if defaultFallsThrough && !hasDefault {
		b.edge(head, join)
	}

	prevFall := b.fallTo
	for i, c := range clauses {
		b.fallTo = nil
		if i+1 < len(clauses) {
			b.fallTo = clauses[i+1].blk
		}
		b.cur = c.blk
		b.stmtList(c.body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.fallTo = prevFall

	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			b.edge(b.cur, f.brk)
		}
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			b.edge(b.cur, f.cont)
		}
	case token.GOTO:
		b.edge(b.cur, b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.edge(b.cur, b.fallTo)
		}
	}
	b.cur = nil
}

// findFrame resolves a break/continue target: the innermost frame, the
// innermost loop frame (needLoop), or the frame carrying the label.
func (b *cfgBuilder) findFrame(label string, needLoop bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// ShallowParts returns the sub-nodes of a block node that the block
// itself executes. For most nodes that is just the node; for a
// RangeStmt — the one compound statement stored whole, as the loop
// head — it is the key, value, and ranged expression, because the body
// lives in its own blocks and scanning it from the head would count
// loop-body work on the head's paths.
func ShallowParts(n ast.Node) []ast.Node {
	rng, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	var parts []ast.Node
	if rng.Key != nil {
		parts = append(parts, rng.Key)
	}
	if rng.Value != nil {
		parts = append(parts, rng.Value)
	}
	return append(parts, rng.X)
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic, os.Exit, runtime.Goexit, log.Fatal*/Panic*, or a
// method named Fatal/Fatalf (testing.T and friends). Purely syntactic —
// the graph must be buildable before type checking succeeds.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch pkg.Name {
			case "os":
				return name == "Exit"
			case "runtime":
				return name == "Goexit"
			case "log":
				return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
			}
		}
		return name == "Fatal" || name == "Fatalf"
	}
	return false
}
