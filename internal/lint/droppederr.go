package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Droppederr flags error values that vanish without being consulted.
// On the snapshot/IO/reload paths a swallowed error is silent
// corruption: a short write that "succeeded", a checksum mismatch that
// never surfaced, a reload that half-happened. Two layers:
//
// Syntactic discards — scoped to the corruption-critical directories
// listed in droppederrDirs, because a blanket rule would bury the
// signal under every fmt.Println in a CLI:
//
//   - a bare call statement (or deferred call) whose final result is
//     an error, and
//   - an error result assigned to the blank identifier (`_ = f()`,
//     `v, _ := f()`).
//
// Exempt by type, everywhere: writes that cannot fail —
// strings.Builder and bytes.Buffer methods, fmt.Fprint* into either,
// and fmt.Print*/fmt.Fprint* to os.Stdout/os.Stderr (a process cannot
// report its own stdout failing).
//
// Flow-based dead definitions — every package: an error assigned to a
// variable that is then overwritten or falls out of scope with no
// read on any path, found with the reaching-definitions layer:
//
//	err := f()
//	err = g() // f's error never consulted
//
// This layer is precise (escapes, closures, and named results are
// treated as uses), so it runs unscoped.
func Droppederr() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "error result discarded or overwritten without being consulted",
		Run:  runDroppederr,
	}
}

// droppederrDirs are the module directories where the syntactic
// discard rules apply: the snapshot/serving/reload data paths and the
// CLIs that write artifacts. A discarded error here can silently
// corrupt what the pipeline persists or serves.
var droppederrDirs = []string{
	"internal/geoloc",
	"internal/benchrec",
	"internal/obs",
	"internal/dnswire",
	"internal/dnsserve",
	"cmd/geoserve",
	"cmd/geosnap",
	"cmd/geodns",
	"cmd/geobench",
	"cmd/hoiho",
}

func droppederrScoped(dir string) bool {
	for _, d := range droppederrDirs {
		if dir == d || strings.HasPrefix(dir, d+"/") {
			return true
		}
	}
	return false
}

func runDroppederr(pass *Pass) {
	scoped := droppederrScoped(pass.Pkg.Dir)
	for _, f := range pass.Pkg.Files {
		if scoped {
			forEachFunc(f, func(fn funcNode) {
				checkSyntacticDrops(pass, fn)
			})
		}
		checkDeadErrorDefs(pass, f)
	}
}

// checkSyntacticDrops reports bare calls and blank assignments that
// lose an error in one function body. Two idioms are exempted with
// help from the flow layer:
//
//   - Close() on a handle whose every reaching definition is os.Open:
//     closing a read-only descriptor cannot lose buffered writes, so
//     its error is noise.
//   - a bare Close() immediately before a return that carries a
//     non-nil error: failure-path cleanup, where the primary error is
//     already being reported and the Close error is secondary.
func checkSyntacticDrops(pass *Pass, fn funcNode) {
	next := nextStmtMap(fn.body)
	var ud *UseDef
	lazyUD := func() *UseDef {
		if ud == nil {
			ud = NewUseDef(pass.FuncCFG(fn.body), nil, pass.Pkg.Info)
		}
		return ud
	}
	walkFuncBody(fn.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := unparen(n.X).(*ast.CallExpr)
			if !ok || !callReturnsError(pass, call) || infallibleCall(pass, call) {
				return
			}
			if readOnlyClose(lazyUD(), call) || closeBeforeErrorReturn(pass, call, n, next) {
				return
			}
			pass.Reportf(call, "call discards its error result; check it (or `//lint:ignore droppederr <why>` if it truly cannot matter)")
		case *ast.DeferStmt:
			if !callReturnsError(pass, n.Call) || infallibleCall(pass, n.Call) {
				return
			}
			if readOnlyClose(lazyUD(), n.Call) {
				return
			}
			pass.Reportf(n.Call, "deferred call discards its error result; check it (or `//lint:ignore droppederr <why>` if it truly cannot matter)")
		case *ast.AssignStmt:
			checkBlankErrAssign(pass, n)
		}
	})
}

// nextStmtMap records, for every statement in the body (function
// literals excluded), the statement that lexically follows it in the
// same list.
func nextStmtMap(body *ast.BlockStmt) map[ast.Stmt]ast.Stmt {
	next := make(map[ast.Stmt]ast.Stmt)
	record := func(list []ast.Stmt) {
		for i := 0; i+1 < len(list); i++ {
			next[list[i]] = list[i+1]
		}
	}
	record(body.List)
	walkFuncBody(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
	})
	return next
}

// readOnlyClose reports whether the call is recv.Close() where every
// definition of recv that reaches this use is an os.Open result — a
// read-only file, whose Close error carries no information a caller
// could act on.
func readOnlyClose(ud *UseDef, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	defs := ud.ReachingDefs(id)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !defIsOsOpen(d) {
			return false
		}
	}
	return true
}

// defIsOsOpen matches `f, err := os.Open(...)` / `var f, _ = os.Open(...)`
// definitions. Purely syntactic on the qualified name: the repo does
// not shadow the os package.
func defIsOsOpen(d Def) bool {
	var rhs []ast.Expr
	switch n := d.Node.(type) {
	case *ast.AssignStmt:
		rhs = n.Rhs
	case *ast.ValueSpec:
		rhs = n.Values
	default:
		return false
	}
	if len(rhs) != 1 {
		return false
	}
	call, ok := unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "os"
}

// closeBeforeErrorReturn reports whether stmt is a Close() immediately
// followed by a return whose results include a non-nil error — the
// cleanup-then-report shape of a failure path.
func closeBeforeErrorReturn(pass *Pass, call *ast.CallExpr, stmt ast.Stmt, next map[ast.Stmt]ast.Stmt) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	ret, ok := next[stmt].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if isErrorType(pass.TypeOf(r)) && !isNilExpr(pass, r) {
			return true
		}
	}
	return false
}

// checkBlankErrAssign flags `_ = f()` and `v, _ := f()` where the
// blanked position is error-typed.
func checkBlankErrAssign(pass *Pass, a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// v, _ := f(): one call, tuple result.
		call, ok := unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok || infallibleCall(pass, call) {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(a.Lhs) {
			return
		}
		for i, lhs := range a.Lhs {
			if isBlankIdent(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(a, "error result of %s discarded with _", pass.ExprString(call.Fun))
				return
			}
		}
		return
	}
	for i, lhs := range a.Lhs {
		if !isBlankIdent(lhs) || i >= len(a.Rhs) {
			continue
		}
		rhs := unparen(a.Rhs[i])
		if !isErrorType(pass.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && infallibleCall(pass, call) {
			continue
		}
		pass.Reportf(a, "error value %s discarded with _", pass.ExprString(a.Rhs[i]))
	}
}

// checkDeadErrorDefs runs the reaching-definitions layer over every
// function in the file and reports error definitions produced by a
// call that no path ever reads.
func checkDeadErrorDefs(pass *Pass, f *ast.File) {
	var funcs []struct {
		body    *ast.BlockStmt
		results *ast.FieldList
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcs = append(funcs, struct {
					body    *ast.BlockStmt
					results *ast.FieldList
				}{n.Body, n.Type.Results})
			}
		case *ast.FuncLit:
			funcs = append(funcs, struct {
				body    *ast.BlockStmt
				results *ast.FieldList
			}{n.Body, n.Type.Results})
		}
		return true
	})
	for _, fn := range funcs {
		cfg := pass.FuncCFG(fn.body)
		ud := NewUseDef(cfg, fn.results, pass.Pkg.Info)
		for _, d := range ud.DeadDefs() {
			if !isErrorType(d.Obj.Type()) || !defFromCall(d) {
				continue
			}
			pass.Reportf(d.Id, "error assigned to %s is never consulted on any path (overwritten or dropped)", d.Obj.Name())
		}
	}
}

// defFromCall reports whether the definition's right-hand side
// contains a call — `err := f()` is a dropped error, `err := nil` or
// `var err error` is just initialization.
func defFromCall(d Def) bool {
	var rhs []ast.Expr
	switch n := d.Node.(type) {
	case *ast.AssignStmt:
		rhs = n.Rhs
	case *ast.ValueSpec:
		rhs = n.Values
	default:
		return false
	}
	for _, e := range rhs {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := x.(*ast.CallExpr); ok {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// callReturnsError reports whether the call's only or final result is
// an error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// infallibleCall exempts calls whose per-call error can never carry
// information by documented contract: strings.Builder / bytes.Buffer
// writers, bufio.Writer's sticky-error writes (everything but Flush —
// the first error is latched and returned there, which is where the
// check belongs), and fmt printing to the process's own stdout/stderr
// or into any of those writers.
func infallibleCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on infallible buffers: b.WriteString(...), buf.Write(...).
	recvT := pass.TypeOf(sel.X)
	if isInfallibleWriter(recvT) {
		return true
	}
	if isBufioWriter(recvT) && sel.Sel.Name != "Flush" {
		return true
	}
	// fmt.Print*/Fprint* variants.
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return false
	}
	if obj, isPkg := pass.Pkg.Info.Uses[pkg].(*types.PkgName); !isPkg || obj.Imported().Path() != "fmt" {
		return false
	}
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Print") {
		return true // process stdout; a failure has nowhere to be reported
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		w := unparen(call.Args[0])
		if t := pass.TypeOf(w); isInfallibleWriter(t) || isBufioWriter(t) {
			return true
		}
		if s := ExprString(pass.Pkg.Fset, w); s == "os.Stdout" || s == "os.Stderr" {
			return true
		}
	}
	return false
}

// isInfallibleWriter matches *strings.Builder and *bytes.Buffer (and
// their value forms), whose Write methods are documented to always
// return a nil error.
func isInfallibleWriter(t types.Type) bool {
	return namedTypeIs(t, "strings", "Builder") || namedTypeIs(t, "bytes", "Buffer")
}

// isBufioWriter matches *bufio.Writer, whose write errors are sticky:
// the first failure is remembered and returned by every later call and
// by Flush, so only Flush needs checking.
func isBufioWriter(t types.Type) bool {
	return namedTypeIs(t, "bufio", "Writer")
}

// namedTypeIs reports whether t (or its pointee) is the named type
// path.name.
func namedTypeIs(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
