package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// parseShapes parses the committed CFG fixture corpus and returns its
// function declarations in source order.
func parseShapes(t *testing.T) []*ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "cfg", "shapes.go"), nil, 0)
	if err != nil {
		t.Fatalf("parse shapes.go: %v", err)
	}
	var funcs []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			funcs = append(funcs, fd)
		}
	}
	if len(funcs) == 0 {
		t.Fatal("no functions in shapes.go")
	}
	return funcs
}

// TestCFGShapesGolden pins the lowered graph of every fixture function.
// A diff here means the builder changed shape — review it, then rerun
// with -update.
func TestCFGShapesGolden(t *testing.T) {
	var sb strings.Builder
	for _, fd := range parseShapes(t) {
		fmt.Fprintf(&sb, "== %s\n%s", fd.Name.Name, BuildCFG(fd.Body).DebugString())
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "cfg", "shapes.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG shapes drifted from golden.\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestCFGInvariants checks the structural properties every graph must
// satisfy, independent of the golden rendering.
func TestCFGInvariants(t *testing.T) {
	for _, fd := range parseShapes(t) {
		cfg := BuildCFG(fd.Body)
		name := fd.Name.Name
		if cfg.Entry != cfg.Blocks[0] {
			t.Errorf("%s: entry is not Blocks[0]", name)
		}
		if cfg.Exit != cfg.Blocks[1] {
			t.Errorf("%s: exit is not Blocks[1]", name)
		}
		if len(cfg.Exit.Succs) != 0 {
			t.Errorf("%s: exit has successors %v", name, cfg.Exit.Succs)
		}
		for _, blk := range cfg.Blocks {
			if blk.Index >= len(cfg.Blocks) || cfg.Blocks[blk.Index] != blk {
				t.Errorf("%s: block index %d does not round-trip", name, blk.Index)
			}
			for _, s := range blk.Succs {
				if !containsBlock(s.Preds, blk) {
					t.Errorf("%s: edge b%d->b%d missing from Preds", name, blk.Index, s.Index)
				}
			}
			for _, p := range blk.Preds {
				if !containsBlock(p.Succs, blk) {
					t.Errorf("%s: pred edge b%d->b%d missing from Succs", name, p.Index, blk.Index)
				}
			}
		}
	}
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// TestCFGTerminators pins the panic/os.Exit semantics: a terminated
// block has no successors (it is not a normal return), and the
// function's defers are recorded.
func TestCFGTerminators(t *testing.T) {
	funcs := make(map[string]*ast.FuncDecl)
	for _, fd := range parseShapes(t) {
		funcs[fd.Name.Name] = fd
	}

	// deferAndPanic: one recorded defer; the panic block dead-ends.
	cfg := BuildCFG(funcs["deferAndPanic"].Body)
	if len(cfg.Defers) != 1 {
		t.Errorf("deferAndPanic: %d defers recorded, want 1", len(cfg.Defers))
	}
	if blk := blockContaining(cfg, "panic"); blk == nil {
		t.Error("deferAndPanic: no block contains the panic call")
	} else if len(blk.Succs) != 0 {
		t.Errorf("deferAndPanic: panic block has successors %v, want none", blk.Succs)
	}

	// exits: the os.Exit block dead-ends the same way.
	cfg = BuildCFG(funcs["exits"].Body)
	if blk := blockContaining(cfg, "os.Exit"); blk == nil {
		t.Error("exits: no block contains os.Exit")
	} else if len(blk.Succs) != 0 {
		t.Errorf("exits: os.Exit block has successors %v, want none", blk.Succs)
	}

	// forever: an empty infinite loop never reaches exit from entry.
	// (The loop's join block still edges to exit by the fall-off
	// convention, but nothing reaches that join.)
	cfg = BuildCFG(funcs["forever"].Body)
	if reachableFromEntry(cfg)[cfg.Exit.Index] {
		t.Error("forever: exit is reachable from entry, want unreachable")
	}

	// deadTail: the statements after return land in a block with no
	// predecessors.
	cfg = BuildCFG(funcs["deadTail"].Body)
	found := false
	for _, blk := range cfg.Blocks {
		if blk.Kind == "unreachable" && len(blk.Preds) == 0 && len(blk.Nodes) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("deadTail: no predecessor-less unreachable block for the dead statements")
	}
}

func reachableFromEntry(cfg *CFG) []bool {
	seen := make([]bool, len(cfg.Blocks))
	stack := []*Block{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

func blockContaining(cfg *CFG, callText string) *Block {
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if ExprString(token.NewFileSet(), call.Fun) == callText {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// FuzzCFG feeds arbitrary statement lists through the builder and
// checks the structural invariants hold for whatever parses.
func FuzzCFG(f *testing.F) {
	f.Add("x := 1\nif x > 0 { return }")
	f.Add("for i := 0; i < 3; i++ { continue }")
	f.Add("switch x := 1; x {\ncase 1:\n\tfallthrough\ncase 2:\n}")
	f.Add("L:\nfor {\n\tbreak L\n}")
	f.Add("goto done\ndone:\nreturn")
	f.Add("defer f()\npanic(1)")
	f.Add("select {\ncase <-c:\ndefault:\n}")
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		file, err := parser.ParseFile(token.NewFileSet(), "fuzz.go", src, 0)
		if err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg := BuildCFG(fd.Body)
			if cfg.Entry != cfg.Blocks[0] || cfg.Exit != cfg.Blocks[1] {
				t.Fatal("entry/exit not at fixed indexes")
			}
			for _, blk := range cfg.Blocks {
				for _, s := range blk.Succs {
					if !containsBlock(s.Preds, blk) {
						t.Fatalf("asymmetric edge b%d->b%d", blk.Index, s.Index)
					}
				}
			}
			if a, b := cfg.DebugString(), cfg.DebugString(); a != b {
				t.Fatal("DebugString not deterministic")
			}
		}
	})
}
