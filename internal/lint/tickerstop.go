package lint

import (
	"go/ast"
	"go/types"
)

// Tickerstop flags time.NewTicker / time.NewTimer calls whose result
// can never be stopped. Unlike time.After, a Ticker holds a runtime
// timer (and, until it is stopped, keeps firing) for as long as the
// program runs; a sampler or poll loop that creates one per call and
// forgets Stop leaks timers at exactly the rate it was meant to bound.
// The obs runtime sampler is the motivating case: its ticker must die
// with the sampler goroutine.
//
// A creation is fine when, in the same function:
//
//   - Stop is called on the variable holding it (anywhere in the
//     function, nested literals included — `defer t.Stop()` inside the
//     spawned goroutine is the usual shape), or
//   - the value escapes: it is returned, passed to another call, sent
//     on a channel, or stored in a struct field, slice, map, or global
//     — ownership moved, so Stop is some other scope's job.
//
// Flagged shapes: a result used only through its C field (including
// the unstoppable inline form `<-time.NewTicker(d).C`), a result
// discarded with `_`, and a bare call statement.
func Tickerstop() *Analyzer {
	return &Analyzer{
		Name: "tickerstop",
		Doc:  "time.NewTicker/NewTimer whose Stop is unreachable",
		Run:  runTickerstop,
	}
}

func runTickerstop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		timeName := importName(f, "time")
		if timeName == "" {
			continue
		}
		forEachFunc(f, func(fn funcNode) {
			checkTickerstopFunc(pass, fn, timeName)
		})
	}
}

func checkTickerstopFunc(pass *Pass, fn funcNode, timeName string) {
	// Creations are scoped to this function body (nested literals are
	// their own funcNode), but Stop/escape evidence is searched through
	// the whole body including literals — the Stop that accounts for a
	// ticker usually lives inside the goroutine it drives.
	parents := parentMap(fn.body)
	walkFuncBody(fn.body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := timerCtor(call, timeName)
		if !ok {
			return
		}
		if reason := tickerLeak(pass, fn.body, call, parents); reason != "" {
			pass.Reportf(call, "%s %s; call Stop (usually `defer t.Stop()`) so the runtime timer is released", name, reason)
		}
	})
}

// tickerLeak classifies one NewTicker/NewTimer call by how its result
// is consumed, returning a non-empty description when Stop is
// unreachable.
func tickerLeak(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, parents map[ast.Node]ast.Node) string {
	switch parent := parents[call].(type) {
	case *ast.AssignStmt:
		if ident := assignTarget(parent, call); ident != nil {
			if ident.Name == "_" {
				return "result is discarded"
			}
			if !tickerAccounted(pass, body, ident.Name, parents) {
				return "is never stopped"
			}
		}
		// Non-identifier target (struct field, map/slice element):
		// ownership moved out of this scope.
		return ""
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v == call && i < len(parent.Names) {
				if parent.Names[i].Name == "_" {
					return "result is discarded"
				}
				if !tickerAccounted(pass, body, parent.Names[i].Name, parents) {
					return "is never stopped"
				}
			}
		}
		return ""
	case *ast.SelectorExpr:
		// time.NewTicker(d).C — the Ticker itself is unreachable the
		// moment the expression is evaluated; nothing can ever stop it.
		if parent.Sel.Name != "Stop" {
			return "is used inline, so its Stop is unreachable"
		}
		return ""
	case *ast.ExprStmt:
		return "result is discarded"
	}
	// Remaining parents — return statements, call arguments, channel
	// sends, composite literals — all move the value to another owner.
	return ""
}

// tickerAccounted reports whether the named ticker variable is stopped
// or escapes this function. Uses are matched by name and confirmed by
// type (a shadowing non-timer `t` does not count as evidence).
func tickerAccounted(pass *Pass, body *ast.BlockStmt, name string, parents map[ast.Node]ast.Node) bool {
	accounted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if accounted {
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok || ident.Name != name || !isTimerType(pass.TypeOf(ident)) {
			return true
		}
		switch use := timerUseKind(ident, parents); use {
		case "stop", "escape":
			accounted = true
			return false
		}
		return true
	})
	return accounted
}

// timerUseKind classifies one identifier occurrence: "stop" for
// t.Stop(), "neutral" for t.C / t.Reset / the defining assignment, and
// "escape" for every other use (returned, passed along, sent, stored).
func timerUseKind(ident *ast.Ident, parents map[ast.Node]ast.Node) string {
	switch parent := parents[ident].(type) {
	case *ast.SelectorExpr:
		if parent.X != ident {
			return "neutral" // ident is the field name, not the receiver
		}
		switch parent.Sel.Name {
		case "Stop":
			return "stop"
		case "C", "Reset":
			return "neutral"
		}
		return "escape"
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ident {
				return "neutral" // definition or reassignment target
			}
		}
		return "escape" // ident on the RHS: aliased away
	case *ast.ValueSpec:
		for _, n := range parent.Names {
			if n == ident {
				return "neutral"
			}
		}
		return "escape"
	}
	return "escape"
}

// timerCtor matches time.NewTicker / time.NewTimer through the file's
// import name for "time".
func timerCtor(call *ast.CallExpr, timeName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != timeName {
		return "", false
	}
	switch sel.Sel.Name {
	case "NewTicker", "NewTimer":
		return "time." + sel.Sel.Name, true
	}
	return "", false
}

// isTimerType reports whether t is *time.Ticker or *time.Timer.
func isTimerType(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Ticker" || obj.Name() == "Timer"
}

// assignTarget returns the identifier an assignment binds call's result
// to, or nil when the target is not a plain identifier.
func assignTarget(assign *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range assign.Rhs {
		if rhs != call {
			continue
		}
		if len(assign.Lhs) == len(assign.Rhs) {
			ident, _ := assign.Lhs[i].(*ast.Ident)
			return ident
		}
	}
	return nil
}

// parentMap records each node's immediate parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
