package lint

import (
	"go/ast"
	"strings"
)

// Randsource flags use of math/rand's global source. The pipeline's
// synthetic corpora, RTT simulation, and alias resolution must be
// reproducible from a seed: rand.Intn and friends draw from a shared,
// non-deterministically interleaved source, so identical runs diverge.
// Constructing an explicit seeded source — rand.New(rand.NewSource(s))
// — is the sanctioned pattern and is never flagged.
//
// The simulation packages that own randomness (internal/synth,
// internal/rtt, internal/alias) are exempt wholesale, as are test
// files; everywhere else a global-source draw is a finding.
func Randsource() *Analyzer {
	return &Analyzer{
		Name: "randsource",
		Doc:  "math/rand global source outside the seeded simulation packages",
		Run:  runRandsource,
	}
}

// randsourceExempt lists module-relative directories where randomness
// is owned and seeded at the package boundary.
var randsourceExempt = []string{
	"internal/synth",
	"internal/rtt",
	"internal/alias",
}

func runRandsource(pass *Pass) {
	for _, dir := range randsourceExempt {
		if pass.Pkg.Dir == dir || strings.HasPrefix(pass.Pkg.Dir, dir+"/") {
			return
		}
	}
	for _, f := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		randName := importName(f, "math/rand")
		randV2 := importName(f, "math/rand/v2")
		if randName == "" && randV2 == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != randName && pkg.Name != randV2) {
				return true
			}
			switch sel.Sel.Name {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Explicit-source construction: the seeded pattern.
				return true
			}
			pass.Reportf(call, "%s.%s draws from math/rand's global source; use a seeded rand.New(rand.NewSource(...)) so runs are reproducible", pkg.Name, sel.Sel.Name)
			return true
		})
	}
}
