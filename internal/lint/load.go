package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadModule parses and type-checks every package of the Go module
// rooted at root. All packages are loaded (cross-package type
// information needs the full graph); callers select which ones to
// analyze with Match. Packages are returned sorted by import path.
//
// Type checking is self-contained: project packages are checked in
// dependency order against each other, and standard-library imports
// are type-checked from GOROOT source via go/importer's "source"
// compiler — no export data, no golang.org/x/tools.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package, len(dirs))
	var paths []string
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no non-test Go files
			continue
		}
		byPath[pkg.Path] = pkg
		paths = append(paths, pkg.Path)
	}
	sort.Strings(paths)

	order, err := topoOrder(modPath, byPath, paths)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package, len(order)),
	}
	for _, path := range order {
		pkg := byPath[path]
		typeCheck(fset, imp, pkg)
		imp.pkgs[path] = pkg.Types
	}

	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, byPath[path])
	}
	return out, nil
}

// Match reports whether the package (by module-relative directory)
// matches a Go-style package pattern: "./..." selects everything,
// "./cmd/..." a subtree, and "./internal/rex" (or "internal/rex") a
// single package.
func Match(dir, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "..." || pattern == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		return dir == rest || strings.HasPrefix(dir, rest+"/")
	}
	return dir == pattern || dir == strings.TrimSuffix(pattern, "/")
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root that may hold a
// package, excluding VCS metadata, testdata, and hidden directories.
// Paths are relative to root and sorted.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory into a
// Package (nil when the directory has none). File names are processed
// in sorted order so positions and diagnostics are deterministic.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	abs := filepath.Join(root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	path := modPath
	if dir != "." {
		path = modPath + "/" + dir
	}
	pkg := newPackage(path, dir, fset)
	for _, name := range names {
		file := filepath.Join(abs, name)
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.collectSuppressions(f)
	}
	return pkg, nil
}

// topoOrder sorts the project packages so every package is
// type-checked after its intra-module imports.
func topoOrder(modPath string, byPath map[string]*Package, paths []string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg := byPath[path]
		for _, imp := range moduleImports(modPath, pkg) {
			if _, ok := byPath[imp]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no Go files", path, imp)
			}
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports returns the package's intra-module imports, sorted and
// deduplicated.
func moduleImports(modPath string, pkg *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != modPath && !strings.HasPrefix(path, modPath+"/") {
				continue
			}
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// moduleImporter resolves intra-module imports from the already
// type-checked packages and everything else (the standard library)
// from GOROOT source.
type moduleImporter struct {
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p := m.pkgs[path]; p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("lint: module package %s not yet type-checked", path)
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over the package, tolerating errors: the
// resulting (possibly partial) type information is attached either way.
func typeCheck(fset *token.FileSet, imp types.Importer, pkg *Package) {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// checkSource's fileset and importer are shared across calls so the
// standard library is type-checked from source only once per process;
// the mutex serializes access because the source importer is not
// documented as concurrency-safe.
var (
	checkSourceMu   sync.Mutex
	checkSourceFset = token.NewFileSet()
	checkSourceImp  = importer.ForCompiler(checkSourceFset, "source", nil)
)

// CheckSource parses and type-checks a single in-memory file as its
// own package — the fixture harness for analyzer unit tests. Imports
// are restricted to the standard library.
func CheckSource(filename, src string) (*Package, error) {
	return CheckSourceAt(filename, ".", src)
}

// CheckSourceAt is CheckSource with an explicit module-relative
// directory, so tests can place a fixture inside the scope of a
// directory-gated analyzer (droppederr's syntactic layer,
// envelopecheck).
func CheckSourceAt(filename, dir, src string) (*Package, error) {
	checkSourceMu.Lock()
	defer checkSourceMu.Unlock()
	f, err := parser.ParseFile(checkSourceFset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg := newPackage(f.Name.Name, dir, checkSourceFset)
	pkg.Files = []*ast.File{f}
	pkg.collectSuppressions(f)
	typeCheck(checkSourceFset, checkSourceImp, pkg)
	return pkg, nil
}
