package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errsentinel flags error comparisons that break under wrapping: the
// snapshot reader's typed sentinels (geoloc.ErrSnapshotTruncated and
// friends) are documented as "distinguishable with errors.Is", which
// is only true if every caller actually uses errors.Is. A plain
// `err == ErrSnapshotChecksum` silently stops matching the moment any
// layer wraps the error with fmt.Errorf("...: %w", err) — corruption
// handling downgrades to the generic path and nobody notices.
//
// Flagged shapes:
//
//   - err == X / err != X where both operands are error-typed and
//     neither is nil (nil checks are the sanctioned use of ==)
//   - switch err { case ErrA, ErrB: } on an error-typed tag — the
//     same identity comparison in clause form
//   - err.Error() compared with == / !=, or fed to strings.Contains /
//     HasPrefix / HasSuffix / EqualFold — matching on rendered text is
//     the least stable comparison of all
func Errsentinel() *Analyzer {
	return &Analyzer{
		Name: "errsentinel",
		Doc:  "error compared with ==/!= or by Error() text instead of errors.Is",
		Run:  runErrsentinel,
	}
}

func runErrsentinel(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(pass, n)
			case *ast.SwitchStmt:
				if n.Tag != nil && isErrorExpr(pass, n.Tag) {
					pass.Reportf(n.Tag, "switch on error value %s compares with ==; use if/else with errors.Is",
						pass.ExprString(n.Tag))
				}
			case *ast.CallExpr:
				checkErrStringMatch(pass, n)
			}
			return true
		})
	}
}

func checkErrComparison(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// Text matching: err.Error() on either side of ==/!=.
	for _, side := range []ast.Expr{e.X, e.Y} {
		if isErrorTextCall(pass, side) {
			pass.Reportf(e, "comparing err.Error() text with %s; compare the error itself with errors.Is", e.Op)
			return
		}
	}
	if !isErrorExpr(pass, e.X) || !isErrorExpr(pass, e.Y) {
		return
	}
	// Identity against nil is the one sanctioned use of == on errors.
	if isNilExpr(pass, e.X) || isNilExpr(pass, e.Y) {
		return
	}
	pass.Reportf(e, "error compared with %s breaks under wrapping; use errors.Is(%s, %s)",
		e.Op, pass.ExprString(e.X), pass.ExprString(e.Y))
}

// checkErrStringMatch flags strings.Contains/HasPrefix/HasSuffix/
// EqualFold calls whose argument is err.Error() — substring-matching
// an error's rendered text.
func checkErrStringMatch(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	// Confirm it is the stdlib strings package, not a local variable.
	if obj, isPkg := pass.Pkg.Info.Uses[pkg].(*types.PkgName); !isPkg || obj.Imported().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(pass, arg) {
			pass.Reportf(call, "matching err.Error() text with strings.%s; use errors.Is (or errors.As for typed inspection)",
				sel.Sel.Name)
			return
		}
	}
}

// isErrorTextCall matches a call of the form x.Error() where x is
// error-typed.
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(pass, sel.X)
}

func isErrorExpr(pass *Pass, e ast.Expr) bool {
	return isErrorType(pass.TypeOf(e))
}

// isErrorType reports whether t is the predeclared error interface.
// Concrete error implementations compared by identity are a different
// (rarer) hazard; the sentinel bug class is interface-against-sentinel.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	if pass.Pkg.Info == nil {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.IsNil()
}
