package lint

import (
	"go/ast"
	"go/types"
)

// Nakedgo flags `go` statements launched without any visible join or
// cancellation discipline in the spawning function. A goroutine that
// nothing waits for can outlive the work it belongs to, race shutdown,
// and leak — the pipeline's worker pool and the geoserve drain logic
// both exist because of this.
//
// Evidence that the spawn is accounted for, anywhere in the same
// function (including the goroutine body itself):
//
//   - a Wait or Done call (sync.WaitGroup, errgroup.Group, ctx.Done)
//   - an Add call on a value whose type is sync.WaitGroup — the spawn
//     is registered with a group whose Wait lives in another method
//     (the struct-field WaitGroup pattern)
//   - a channel receive or a select statement (completion signalling)
//   - a range over a channel (draining results)
//
// The analyzer checks discipline, not correctness: it asks "does
// anything join this goroutine?", not "is the join right".
func Nakedgo() *Analyzer {
	return &Analyzer{
		Name: "nakedgo",
		Doc:  "goroutine without a visible join or cancellation in the spawning function",
		Run:  runNakedgo,
	}
}

func runNakedgo(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		forEachFunc(f, func(fn funcNode) {
			checkNakedgoFunc(pass, fn)
		})
	}
}

func checkNakedgoFunc(pass *Pass, fn funcNode) {
	var spawns []*ast.GoStmt
	walkFuncBody(fn.body, func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
	})
	if len(spawns) == 0 || hasJoinEvidence(pass, fn.body) {
		return
	}
	for _, g := range spawns {
		pass.Reportf(g, "goroutine has no visible join or cancellation (WaitGroup/errgroup Wait, channel receive, or select) in the spawning function")
	}
}

// hasJoinEvidence scans the whole function body, nested literals
// included — the Done call that accounts for a spawn usually lives
// inside the goroutine's own literal.
func hasJoinEvidence(pass *Pass, body *ast.BlockStmt) bool {
	if callsMethodNamed(body, "Wait", "Done") {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			// wg.Add(n) registers the spawn with a WaitGroup even when
			// the matching Wait lives in another method (the struct-field
			// pattern: s.wg.Add(1); go s.loop() with Wait in Close).
			// Type-checked so an unrelated Add — a metrics counter, a
			// custom set — is not mistaken for join discipline.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" &&
				isWaitGroup(pass.TypeOf(sel.X)) {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a receive; without type info we
			// cannot tell, so any range does not count — receives and
			// selects are the explicit signals.
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
