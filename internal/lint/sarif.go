package lint

// Machine-readable diagnostic output. WriteSARIF emits SARIF 2.1.0 —
// the interchange format GitHub code scanning ingests, so hoiholint
// findings surface as inline annotations on pull requests — and
// WriteJSON emits a minimal array for ad-hoc tooling. Both renderings
// are deterministic for a given diagnostic slice (lint.Run already
// sorts), and both are written even when there are no findings: an
// empty `results` array is how CI tells code scanning "previous
// findings are resolved".

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// sarifLog is the SARIF 2.1.0 top level. Field shapes follow the OASIS
// schema; the conformance test pins the subset we rely on.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string              `json:"id"`
	ShortDescription sarifMessage        `json:"shortDescription"`
	DefaultConfig    *sarifConfiguration `json:"defaultConfiguration,omitempty"`
}

type sarifConfiguration struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as one SARIF 2.1.0 run. analyzers
// seed the rule table (so every registered check appears, findings or
// not); checks that report without being registered — lintdirective —
// get rules appended on demand. root, when non-empty, rebases file
// paths to module-relative form, which is what GitHub's uploader
// expects ("%SRCROOT%" is SARIF's name for the checkout root).
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	var rules []sarifRule
	index := make(map[string]int)
	addRule := func(id, doc string) int {
		if i, ok := index[id]; ok {
			return i
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
			DefaultConfig:    &sarifConfiguration{Level: "error"},
		})
		return index[id]
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	// Unregistered checks, in deterministic order.
	extra := make(map[string]bool)
	for _, d := range diags {
		if _, ok := index[d.Check]; !ok {
			extra[d.Check] = true
		}
	}
	extras := make([]string, 0, len(extra))
	for id := range extra {
		extras = append(extras, id)
	}
	sort.Strings(extras)
	for _, id := range extras {
		addRule(id, "reported by the lint framework")
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: index[d.Check],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "hoiholint",
				Rules: rules,
			}},
			Results: results,
		}},
	})
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// jsonDiag is the -json element shape.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders the diagnostics as a JSON array (empty array, not
// null, when clean). Paths are rebased like WriteSARIF.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !hasDotDotPrefix(rel) && rel != ".." {
				file = rel
			}
		}
		out = append(out, jsonDiag{
			File:    filepath.ToSlash(file),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
