package lint

// Reaching definitions over the CFG: the use-def layer flow-aware
// analyzers build on. For every local variable the layer records each
// definition (assignment, declaration, range binding, inc/dec) and
// computes, with the standard worklist iteration, which definitions
// reach each use. Two derived facts matter to the analyzers:
//
//   - UsesOf(def): the identifiers that may read the value this
//     definition stored. A definition with no uses is dead — its value
//     is overwritten or falls out of scope unread, which for an error
//     value means the error was silently dropped (droppederr).
//   - Escaped(obj): the variable's address was taken, or it is
//     captured by a function literal, or it is a named result.
//     Escaped variables have invisible readers, so the layer reports
//     no dead definitions for them — conservative, never wrong.
//
// Blank identifiers are not variables and are never tracked; struct
// fields and package-level variables have lifetimes beyond one
// function and are excluded for the same reason.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Def is one definition of a local variable: Id is the defined
// identifier occurrence, Node the statement that performs it.
type Def struct {
	Obj  types.Object
	Id   *ast.Ident
	Node ast.Node
}

// UseDef holds the reaching-definitions solution for one function.
type UseDef struct {
	// Defs lists every definition in deterministic (block, statement)
	// order.
	Defs []Def
	// reaches maps each use identifier to the indexes (into Defs) of
	// the definitions that may have produced its value.
	reaches map[*ast.Ident][]int
	// usedBy is the inverse: definition index -> use identifiers.
	usedBy map[int][]*ast.Ident
	// escaped marks variables with invisible readers (address taken,
	// closure capture, named result).
	escaped map[types.Object]bool
}

// ReachingDefs returns the definitions that may reach the given use
// identifier.
func (u *UseDef) ReachingDefs(id *ast.Ident) []Def {
	var out []Def
	for _, i := range u.reaches[id] {
		out = append(out, u.Defs[i])
	}
	return out
}

// UsesOf returns the identifiers that may read the value stored by
// Defs[i].
func (u *UseDef) UsesOf(i int) []*ast.Ident { return u.usedBy[i] }

// Escaped reports whether the variable has readers the flow analysis
// cannot see.
func (u *UseDef) Escaped(obj types.Object) bool { return u.escaped[obj] }

// DeadDefs returns the definitions whose stored value is provably
// never read: the variable does not escape and no use is reached.
func (u *UseDef) DeadDefs() []Def {
	var out []Def
	for i, d := range u.Defs {
		if u.escaped[d.Obj] {
			continue
		}
		if len(u.usedBy[i]) == 0 {
			out = append(out, d)
		}
	}
	return out
}

// NewUseDef computes reaching definitions for one function. results is
// the function's result list: named results are treated as escaped
// (every return statement reads them implicitly). info supplies
// identifier resolution and may be partial — unresolved identifiers
// are simply not tracked.
func NewUseDef(cfg *CFG, results *ast.FieldList, info *types.Info) *UseDef {
	u := &UseDef{
		reaches: make(map[*ast.Ident][]int),
		usedBy:  make(map[int][]*ast.Ident),
		escaped: make(map[types.Object]bool),
	}
	if info == nil {
		return u
	}
	if results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					u.escaped[obj] = true
				}
			}
		}
	}

	// Pass 1: collect per-block event sequences (defs and uses in
	// execution order) and escape facts.
	events := make([][]dfEvent, len(cfg.Blocks))
	c := &dfCollector{u: u, info: info}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			c.node(n, &events[blk.Index])
		}
	}

	// Number the defs and build per-block gen/kill.
	type last map[types.Object]int // obj -> def index
	gen := make([]last, len(cfg.Blocks))
	for bi := range events {
		gen[bi] = make(last)
		for ei := range events[bi] {
			ev := &events[bi][ei]
			if !ev.isDef {
				continue
			}
			ev.defIndex = len(u.Defs)
			u.Defs = append(u.Defs, Def{Obj: ev.obj, Id: ev.id, Node: ev.node})
			gen[bi][ev.obj] = ev.defIndex
		}
	}

	// Worklist iteration at block granularity. in[b] and out[b] map an
	// object to the set of reaching def indexes.
	type defset map[types.Object]map[int]bool
	in := make([]defset, len(cfg.Blocks))
	out := make([]defset, len(cfg.Blocks))
	for i := range cfg.Blocks {
		in[i], out[i] = defset{}, defset{}
	}
	copyInto := func(dst defset, src defset) bool {
		changed := false
		for obj, defs := range src {
			d := dst[obj]
			if d == nil {
				d = make(map[int]bool, len(defs))
				dst[obj] = d
			}
			for i := range defs {
				if !d[i] {
					d[i] = true
					changed = true
				}
			}
		}
		return changed
	}
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	inWork := make([]bool, len(cfg.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		bi := blk.Index
		for _, p := range blk.Preds {
			copyInto(in[bi], out[p.Index])
		}
		// out = gen ∪ (in − kill): kill is every obj defined in the block.
		next := defset{}
		for obj, defs := range in[bi] {
			if _, killed := gen[bi][obj]; killed {
				continue
			}
			next[obj] = defs
		}
		for obj, di := range gen[bi] {
			next[obj] = map[int]bool{di: true}
		}
		if copyInto(out[bi], next) {
			for _, s := range blk.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}

	// Pass 2: replay each block's events against its in-state to
	// resolve uses.
	for _, blk := range cfg.Blocks {
		bi := blk.Index
		cur := make(map[types.Object][]int)
		for obj, defs := range in[bi] {
			ids := make([]int, 0, len(defs))
			for i := range defs {
				ids = append(ids, i)
			}
			sort.Ints(ids)
			cur[obj] = ids
		}
		for _, ev := range events[bi] {
			if ev.isDef {
				cur[ev.obj] = []int{ev.defIndex}
				continue
			}
			for _, di := range cur[ev.obj] {
				u.reaches[ev.id] = append(u.reaches[ev.id], di)
				u.usedBy[di] = append(u.usedBy[di], ev.id)
			}
		}
	}
	return u
}

// dfEvent is one def or use of a local variable, in block order.
type dfEvent struct {
	obj      types.Object
	id       *ast.Ident
	node     ast.Node
	isDef    bool
	defIndex int
}

// dfCollector walks one block node emitting events. It understands the
// evaluation order that matters here: assignment right-hand sides are
// read before left-hand sides are written.
type dfCollector struct {
	u    *UseDef
	info *types.Info
}

func (c *dfCollector) node(n ast.Node, evs *[]dfEvent) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			c.expr(rhs, evs)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					// Compound assignment (+=, &^=, ...) reads before it writes.
					c.use(id, evs)
				}
				c.def(id, n, evs)
				continue
			}
			// x.f = v, x[i] = v: the base is read, nothing local defined.
			c.expr(lhs, evs)
		}
	case *ast.ExprStmt:
		c.expr(n.X, evs)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				c.expr(v, evs)
			}
			for _, name := range vs.Names {
				c.def(name, vs, evs)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			c.use(id, evs)
			c.def(id, n, evs)
			return
		}
		c.expr(n.X, evs)
	case *ast.RangeStmt:
		c.expr(n.X, evs)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				if e != nil {
					c.expr(e, evs)
				}
				continue
			}
			if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
				c.def(id, n, evs)
			}
		}
	case *ast.SendStmt:
		c.expr(n.Chan, evs)
		c.expr(n.Value, evs)
	case *ast.GoStmt:
		c.expr(n.Call, evs)
	case *ast.DeferStmt:
		// Defer evaluates the call's operands immediately.
		c.expr(n.Call, evs)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.expr(r, evs)
		}
	case ast.Expr:
		c.expr(n, evs)
	case ast.Stmt:
		// Init statements of compound constructs arrive through the
		// cases above; anything else (labeled empties, ...) has no
		// dataflow effect.
	}
}

// expr emits use events for every variable read in e, and escape facts
// for address-taken and closure-captured variables.
func (c *dfCollector) expr(e ast.Expr, evs *[]dfEvent) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		c.use(e, evs)
	case *ast.SelectorExpr:
		// Only the base is a variable read; Sel names a field or method.
		c.expr(e.X, evs)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				c.use(id, evs)
				if obj := c.objOf(id); obj != nil {
					c.u.escaped[obj] = true
				}
				return
			}
		}
		c.expr(e.X, evs)
	case *ast.FuncLit:
		// The literal's body is another function; every outer variable
		// it mentions escapes into it.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil {
					c.u.escaped[obj] = true
				}
			}
			return true
		})
	case *ast.CallExpr:
		c.expr(e.Fun, evs)
		for _, a := range e.Args {
			c.expr(a, evs)
		}
	case *ast.BinaryExpr:
		c.expr(e.X, evs)
		c.expr(e.Y, evs)
	case *ast.ParenExpr:
		c.expr(e.X, evs)
	case *ast.StarExpr:
		c.expr(e.X, evs)
	case *ast.IndexExpr:
		c.expr(e.X, evs)
		c.expr(e.Index, evs)
	case *ast.IndexListExpr:
		c.expr(e.X, evs)
		for _, i := range e.Indices {
			c.expr(i, evs)
		}
	case *ast.SliceExpr:
		c.expr(e.X, evs)
		c.expr(e.Low, evs)
		c.expr(e.High, evs)
		c.expr(e.Max, evs)
	case *ast.TypeAssertExpr:
		c.expr(e.X, evs)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct field keys are not variable reads; map keys are.
				if _, isId := kv.Key.(*ast.Ident); !isId {
					c.expr(kv.Key, evs)
				}
				c.expr(kv.Value, evs)
				continue
			}
			c.expr(el, evs)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Key, evs)
		c.expr(e.Value, evs)
	}
	// Type expressions (ArrayType, MapType, ...) read no variables.
}

// objOf resolves an identifier to a trackable local variable object,
// or nil: blanks, fields, package-level variables, constants, and
// functions are not tracked.
func (c *dfCollector) objOf(id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := c.info.Uses[id]
	if obj == nil {
		obj = c.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}

func (c *dfCollector) use(id *ast.Ident, evs *[]dfEvent) {
	if obj := c.objOf(id); obj != nil {
		*evs = append(*evs, dfEvent{obj: obj, id: id, node: id})
	}
}

func (c *dfCollector) def(id *ast.Ident, node ast.Node, evs *[]dfEvent) {
	if obj := c.objOf(id); obj != nil {
		*evs = append(*evs, dfEvent{obj: obj, id: id, node: node, isDef: true})
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
