package lint

import (
	"go/ast"
)

// funcNode is a function under analysis: a declared function or a
// function literal, each treated as its own scope. name is "" for
// literals; recv is the receiver name for methods.
type funcNode struct {
	name   string
	recv   string
	params *ast.FieldList
	body   *ast.BlockStmt
}

// forEachFunc visits every function declaration and function literal
// in the file, each exactly once.
func forEachFunc(f *ast.File, visit func(funcNode)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			fn := funcNode{name: n.Name.Name, params: n.Type.Params, body: n.Body}
			if n.Recv != nil && len(n.Recv.List) > 0 && len(n.Recv.List[0].Names) > 0 {
				fn.recv = n.Recv.List[0].Names[0].Name
			}
			visit(fn)
		case *ast.FuncLit:
			visit(funcNode{params: n.Type.Params, body: n.Body})
		}
		return true
	})
}

// walkFuncBody visits the nodes of one function body without
// descending into nested function literals — those are separate scopes
// that forEachFunc hands out on their own.
func walkFuncBody(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// paramNames returns the named parameters of a field list.
func paramNames(params *ast.FieldList) map[string]bool {
	names := make(map[string]bool)
	if params == nil {
		return names
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			names[name.Name] = true
		}
	}
	return names
}

// callsMethodNamed reports whether the body (including nested function
// literals) contains a call to a method with one of the given names.
func callsMethodNamed(body *ast.BlockStmt, names ...string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, name := range names {
			if sel.Sel.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
