package lint

import (
	"go/ast"
	"go/types"
)

// Unlockpath is the CFG check that every mutex Lock has a matching
// Unlock on every path to a normal return. The single-pass walkers
// cannot see "Unlock missing on one branch": the classic leak is
//
//	mu.Lock()
//	if cond {
//		return x // still holding mu
//	}
//	mu.Unlock()
//
// which deadlocks the next locker — in this repo that would wedge the
// reload mutex or the obs aggregation mutex forever, with no crash to
// point at the cause.
//
// For each Lock()/RLock() on a sync.Mutex/RWMutex (or sync.Locker),
// the analyzer walks the control-flow graph from the lock site: a path
// is accounted when it passes a matching Unlock()/RUnlock() on the
// same receiver expression, and the whole lock is accounted when a
// defer of the matching unlock (directly, or inside a deferred
// function literal) exists in the function. Reaching the function exit
// otherwise is a finding. Paths that end in panic or os.Exit are not
// normal returns and are not flagged — deferred unlocks run during
// unwind, and a panic while locked is a different bug class.
//
// Receivers are matched textually ("s.mu" == "s.mu"), so aliasing a
// mutex through a pointer variable defeats the check; the repo's
// mutexes are all addressed as fields, where the textual match is
// exact.
func Unlockpath() *Analyzer {
	return &Analyzer{
		Name: "unlockpath",
		Doc:  "a mutex Lock with no Unlock on some path to return",
		Run:  runUnlockpath,
	}
}

// unlockOf pairs each lock method with the unlock that releases it.
var unlockOf = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runUnlockpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		forEachFunc(f, func(fn funcNode) {
			checkUnlockpathFunc(pass, fn)
		})
	}
}

func checkUnlockpathFunc(pass *Pass, fn funcNode) {
	cfg := pass.FuncCFG(fn.body)
	for _, blk := range cfg.Blocks {
		for ni, n := range blk.Nodes {
			lockCall, recv, method := mutexLockIn(pass, n)
			if lockCall == nil {
				continue
			}
			unlock := unlockOf[method]
			if deferredUnlock(pass, cfg, recv, unlock) {
				continue
			}
			if leakBlock := lockLeaks(pass, cfg, blk, ni, recv, unlock); leakBlock != nil {
				pass.Reportf(lockCall, "%s.%s() is not released on every path: a return is reachable without %s.%s() (and no defer covers it)",
					recv, method, recv, unlock)
			}
		}
	}
}

// mutexLockIn scans one block node for a Lock/RLock call on a
// mutex-typed receiver, returning the call, the receiver's rendering,
// and the method name. Nested function literals are skipped — their
// bodies get their own graphs.
func mutexLockIn(pass *Pass, n ast.Node) (call *ast.CallExpr, recv, method string) {
	for _, part := range ShallowParts(n) {
		ast.Inspect(part, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if call != nil {
				return false
			}
			c, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, locks := unlockOf[sel.Sel.Name]; !locks || !isMutexType(pass.TypeOf(sel.X)) {
				return true
			}
			call, recv, method = c, pass.ExprString(sel.X), sel.Sel.Name
			return false
		})
	}
	return call, recv, method
}

// unlockIn reports whether the node contains `recv.unlock()` (outside
// nested literals).
func unlockIn(pass *Pass, n ast.Node, recv, unlock string) bool {
	found := false
	for _, part := range ShallowParts(n) {
		ast.Inspect(part, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if found {
				return false
			}
			if c, ok := x.(*ast.CallExpr); ok && isUnlockCall(pass, c, recv, unlock) {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

func isUnlockCall(pass *Pass, c *ast.CallExpr, recv, unlock string) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != unlock {
		return false
	}
	return pass.ExprString(sel.X) == recv
}

// deferredUnlock reports whether the function registers a defer that
// releases recv: `defer recv.Unlock()` directly, or a deferred
// function literal whose body contains the unlock. A registered defer
// covers every exit, normal or panicking.
func deferredUnlock(pass *Pass, cfg *CFG, recv, unlock string) bool {
	for _, d := range cfg.Defers {
		if isUnlockCall(pass, d.Call, recv, unlock) {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			hit := false
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if hit {
					return false
				}
				if c, ok := x.(*ast.CallExpr); ok && isUnlockCall(pass, c, recv, unlock) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				return true
			}
		}
	}
	return false
}

// lockLeaks walks forward from the lock at blk.Nodes[ni]. It returns a
// block through which a normal exit is reachable without passing the
// unlock, or nil when every such path is covered.
func lockLeaks(pass *Pass, cfg *CFG, blk *Block, ni int, recv, unlock string) *Block {
	// Rest of the lock's own block first: blocks are straight-line, so
	// an unlock later in the block covers every path through it.
	for _, n := range blk.Nodes[ni+1:] {
		if unlockIn(pass, n, recv, unlock) {
			return nil
		}
	}
	seen := make([]bool, len(cfg.Blocks))
	stack := append([]*Block(nil), blk.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		if b == cfg.Exit {
			return b
		}
		released := false
		for _, n := range b.Nodes {
			if unlockIn(pass, n, recv, unlock) {
				released = true
				break
			}
		}
		if released {
			continue
		}
		stack = append(stack, b.Succs...)
	}
	return nil
}

// isMutexType matches sync.Mutex, sync.RWMutex, and the sync.Locker
// interface, by value or pointer.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}
