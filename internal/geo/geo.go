// Package geo provides the geodesic primitives that the Hoiho geolocation
// pipeline relies on: great-circle distances, speed-of-light delay bounds
// through optical fibre, and constraint-based geolocation (CBG) style
// multilateration over round-trip-time constraints.
//
// All distances are in kilometres and all delays in milliseconds unless a
// name says otherwise. Latitudes and longitudes are in decimal degrees,
// positive north and east.
package geo

import (
	"errors"
	"fmt"
	"math"
)

const (
	// EarthRadiusKm is the mean radius of the Earth used for great-circle
	// computations, in kilometres.
	EarthRadiusKm = 6371.0

	// SpeedOfLightKmPerMs is the speed of light in a vacuum expressed in
	// kilometres per millisecond.
	SpeedOfLightKmPerMs = 299792.458 / 1e6 * 1e3 // 299.792458 km/ms

	// FibreFactor is the fraction of c at which signals propagate in an
	// optical fibre (refractive index ~1.5), the constant used by CBG and
	// by the paper when computing theoretical best-case RTTs.
	FibreFactor = 2.0 / 3.0

	// FibreKmPerMs is the one-way propagation speed through fibre in
	// kilometres per millisecond.
	FibreKmPerMs = SpeedOfLightKmPerMs * FibreFactor
)

// LatLong is a point on the Earth's surface in decimal degrees.
type LatLong struct {
	Lat  float64
	Long float64
}

// Valid reports whether the coordinates are within the legal ranges
// [-90,90] for latitude and [-180,180] for longitude.
func (p LatLong) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Long >= -180 && p.Long <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Long)
}

// String renders the point as "lat,long" with four decimal places.
func (p LatLong) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Long)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// DistanceKm returns the great-circle distance between a and b in
// kilometres, computed with the haversine formula.
func DistanceKm(a, b LatLong) float64 {
	lat1, lon1 := radians(a.Lat), radians(a.Long)
	lat2, lon2 := radians(b.Lat), radians(b.Long)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp to [0,1] to guard against floating point drift before Asin.
	if h > 1 {
		h = 1
	} else if h < 0 {
		h = 0
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// MinRTTms returns the theoretical best-case round-trip time in
// milliseconds between two points, assuming light propagating through a
// great-circle optical fibre at FibreFactor of c. This is the bound the
// paper uses to decide whether a candidate geohint is RTT-consistent.
func MinRTTms(a, b LatLong) float64 {
	return RTTForDistance(DistanceKm(a, b))
}

// RTTForDistance converts a one-way great-circle distance in kilometres to
// the minimum feasible RTT in milliseconds through fibre.
func RTTForDistance(km float64) float64 {
	return 2 * km / FibreKmPerMs
}

// MaxDistanceKm converts a measured RTT in milliseconds into the maximum
// one-way distance in kilometres that the responding host can be from the
// prober, assuming propagation through fibre at FibreFactor of c.
func MaxDistanceKm(rttMs float64) float64 {
	if rttMs < 0 {
		return 0
	}
	return rttMs * FibreKmPerMs / 2
}

// RTTConsistent reports whether a measured RTT between vp and candidate is
// physically feasible: the measured RTT must be no smaller than the
// theoretical best-case RTT. A small tolerance (in milliseconds) absorbs
// clock granularity in measurement systems.
func RTTConsistent(vp, candidate LatLong, measuredMs, toleranceMs float64) bool {
	return measuredMs+toleranceMs >= MinRTTms(vp, candidate)
}

// AreaForRTTkm2 returns the area in square kilometres of the disc that an
// RTT constraint of rttMs confines a target to (πr²), the figure of merit
// the paper uses when comparing ping and traceroute RTTs (Fig. 5).
func AreaForRTTkm2(rttMs float64) float64 {
	r := MaxDistanceKm(rttMs)
	return math.Pi * r * r
}

// Destination returns the point reached by travelling distanceKm from
// origin along the given initial bearing (degrees clockwise from north).
func Destination(origin LatLong, bearingDeg, distanceKm float64) LatLong {
	lat1 := radians(origin.Lat)
	lon1 := radians(origin.Long)
	brg := radians(bearingDeg)
	d := distanceKm / EarthRadiusKm

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) +
		math.Cos(lat1)*math.Sin(d)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(math.Sin(brg)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2))

	// Normalise longitude to [-180, 180).
	lonDeg := math.Mod(degrees(lon2)+540, 360) - 180
	return LatLong{Lat: degrees(lat2), Long: lonDeg}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b LatLong) LatLong {
	lat1, lon1 := radians(a.Lat), radians(a.Long)
	lat2, lon2 := radians(b.Lat), radians(b.Long)
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	lonDeg := math.Mod(degrees(lon3)+540, 360) - 180
	return LatLong{Lat: degrees(lat3), Long: lonDeg}
}

// Centroid returns the spherical centroid of the given points. It returns
// an error when points is empty or when the points are spread so evenly
// that the centroid is undefined (the mean vector vanishes).
func Centroid(points []LatLong) (LatLong, error) {
	if len(points) == 0 {
		return LatLong{}, errors.New("geo: centroid of no points")
	}
	var x, y, z float64
	for _, p := range points {
		lat, lon := radians(p.Lat), radians(p.Long)
		x += math.Cos(lat) * math.Cos(lon)
		y += math.Cos(lat) * math.Sin(lon)
		z += math.Sin(lat)
	}
	n := float64(len(points))
	x, y, z = x/n, y/n, z/n
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-9 {
		return LatLong{}, errors.New("geo: centroid undefined (antipodal spread)")
	}
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lon := math.Atan2(y, x)
	return LatLong{Lat: degrees(lat), Long: degrees(lon)}, nil
}
