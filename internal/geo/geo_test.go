package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Well-known reference points used throughout the tests.
var (
	london    = LatLong{51.5074, -0.1278}
	newYork   = LatLong{40.7128, -74.0060}
	sydney    = LatLong{-33.8688, 151.2093}
	tokyo     = LatLong{35.6762, 139.6503}
	ashburn   = LatLong{39.0438, -77.4874}
	nashua    = LatLong{42.7654, -71.4676}
	sanFran   = LatLong{37.7749, -122.4194}
	nullPoint = LatLong{0, 0}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b LatLong
		want float64 // km
		tol  float64
	}{
		{"london-newyork", london, newYork, 5570, 30},
		{"london-sydney", london, sydney, 16993, 60},
		{"tokyo-sanfran", tokyo, sanFran, 8280, 50},
		{"ashburn-nashua", ashburn, nashua, 657, 15},
		{"same-point", london, london, 0, 1e-9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f±%.1f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLong{clampLat(lat1), clampLon(lon1)}
		b := LatLong{clampLat(lat2), clampLon(lon2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLong{clampLat(lat1), clampLon(lon1)}
		b := LatLong{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		// Max possible great-circle distance is half the circumference.
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := LatLong{clampLat(lat1), clampLon(lon1)}
		b := LatLong{clampLat(lat2), clampLon(lon2)}
		c := LatLong{clampLat(lat3), clampLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityOfIndiscernibles(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := LatLong{clampLat(lat), clampLon(lon)}
		return DistanceKm(p, p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 360) - 180
}

func TestMinRTT(t *testing.T) {
	// London to New York: ~5570 km -> RTT = 2*5570 / (199.86 km/ms) ≈ 55.7ms.
	rtt := MinRTTms(london, newYork)
	if rtt < 54 || rtt > 58 {
		t.Errorf("MinRTTms(london,newYork) = %.1f, want ≈55.7", rtt)
	}
	if MinRTTms(london, london) != 0 {
		t.Errorf("MinRTTms of identical points should be 0")
	}
}

func TestRTTDistanceRoundTrip(t *testing.T) {
	f := func(km float64) bool {
		km = math.Abs(math.Mod(km, 20000))
		if math.IsNaN(km) {
			km = 0
		}
		rtt := RTTForDistance(km)
		back := MaxDistanceKm(rtt)
		return math.Abs(back-km) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDistanceNegativeRTT(t *testing.T) {
	if got := MaxDistanceKm(-5); got != 0 {
		t.Errorf("MaxDistanceKm(-5) = %v, want 0", got)
	}
}

func TestRTTConsistent(t *testing.T) {
	minRTT := MinRTTms(london, newYork) // ≈55.7ms
	if RTTConsistent(london, newYork, minRTT-5, 0) {
		t.Errorf("RTT %0.f ms should be infeasible for london-newyork", minRTT-5)
	}
	if !RTTConsistent(london, newYork, minRTT+5, 0) {
		t.Errorf("RTT %0.f ms should be feasible for london-newyork", minRTT+5)
	}
	// Tolerance rescues borderline measurements.
	if !RTTConsistent(london, newYork, minRTT-0.5, 1.0) {
		t.Errorf("tolerance should make borderline RTT feasible")
	}
}

func TestAreaForRTT(t *testing.T) {
	// 16ms -> ~1600km radius (paper: "within 1,600km").
	r := MaxDistanceKm(16)
	if r < 1500 || r < 0 || r > 1700 {
		t.Errorf("MaxDistanceKm(16) = %.0f, want ≈1600", r)
	}
	a16 := AreaForRTTkm2(16)
	a68 := AreaForRTTkm2(68)
	ratio := a68 / a16
	// Paper: 68ms vs 16ms is a 4.25x radius ratio and ~18x area... the paper
	// says 180x larger which includes their probing radius conventions; pure
	// πr² with RTT ratio 4.25 gives 18.06x.
	if math.Abs(ratio-18.06) > 0.2 {
		t.Errorf("area ratio 68ms/16ms = %.2f, want ≈18.06", ratio)
	}
}

func TestDestinationAndBack(t *testing.T) {
	p := Destination(london, 90, 1000)
	d := DistanceKm(london, p)
	if math.Abs(d-1000) > 1 {
		t.Errorf("Destination 1000km east: distance back %.1f", d)
	}
}

func TestDestinationProperty(t *testing.T) {
	f := func(lat, lon, brg, dist float64) bool {
		origin := LatLong{clampLat(lat), clampLon(lon)}
		b := math.Mod(math.Abs(brg), 360)
		km := math.Mod(math.Abs(dist), 19000)
		if math.IsNaN(b) || math.IsNaN(km) {
			return true
		}
		p := Destination(origin, b, km)
		if !p.Valid() {
			return false
		}
		return math.Abs(DistanceKm(origin, p)-km) < 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(london, newYork)
	d1 := DistanceKm(london, m)
	d2 := DistanceKm(newYork, m)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint not equidistant: %.1f vs %.1f", d1, d2)
	}
}

func TestCentroid(t *testing.T) {
	c, err := Centroid([]LatLong{{10, 10}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Lat-10) > 1e-6 || math.Abs(c.Long-10) > 1e-6 {
		t.Errorf("centroid of identical points = %v", c)
	}

	if _, err := Centroid(nil); err == nil {
		t.Error("centroid of empty slice should error")
	}

	// Antipodal points have an undefined centroid.
	if _, err := Centroid([]LatLong{{0, 0}, {0, 180}}); err == nil {
		t.Error("centroid of antipodal points should error")
	}
}

func TestCentroidSymmetricPoints(t *testing.T) {
	c, err := Centroid([]LatLong{{10, 0}, {-10, 0}, {0, 10}, {0, -10}})
	if err != nil {
		t.Fatal(err)
	}
	if DistanceKm(c, nullPoint) > 1 {
		t.Errorf("centroid of symmetric ring = %v, want ≈(0,0)", c)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    LatLong
		want bool
	}{
		{LatLong{0, 0}, true},
		{LatLong{90, 180}, true},
		{LatLong{-90, -180}, true},
		{LatLong{91, 0}, false},
		{LatLong{0, 181}, false},
		{LatLong{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLatLongString(t *testing.T) {
	s := LatLong{39.0438, -77.4874}.String()
	if s != "39.0438,-77.4874" {
		t.Errorf("String() = %q", s)
	}
}
