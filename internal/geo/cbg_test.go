package geo

import (
	"math"
	"testing"
)

func TestConstraintContains(t *testing.T) {
	c := Constraint{VP: london, RTTms: MinRTTms(london, newYork) + 10}
	if !c.Contains(newYork) {
		t.Error("new york should be within a constraint with slack")
	}
	tight := Constraint{VP: london, RTTms: 1}
	if tight.Contains(newYork) {
		t.Error("new york should be outside a 1ms constraint from london")
	}
}

func TestMultilaterateSingleConstraint(t *testing.T) {
	cs := []Constraint{{VP: london, RTTms: 10}}
	r, err := Multilaterate(cs, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Centroid of a disc around London should be near London.
	if DistanceKm(r.Center, london) > 100 {
		t.Errorf("center %v too far from london", r.Center)
	}
	if r.ErrorRadiusKm > MaxDistanceKm(10)+50 {
		t.Errorf("error radius %.1f exceeds disc radius", r.ErrorRadiusKm)
	}
}

func TestMultilaterateIntersection(t *testing.T) {
	// Target at the midpoint of two VPs; constraints just covering it.
	target := Midpoint(london, newYork)
	rtt := MinRTTms(london, target) * 1.2
	cs := []Constraint{
		{VP: london, RTTms: rtt},
		{VP: newYork, RTTms: MinRTTms(newYork, target) * 1.2},
	}
	r, err := Multilaterate(cs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if DistanceKm(r.Center, target) > 800 {
		t.Errorf("center %v is %.0fkm from target %v", r.Center, DistanceKm(r.Center, target), target)
	}
	if !Feasible(r.Center, cs) {
		t.Error("estimated center violates its own constraints")
	}
}

func TestMultilaterateInfeasible(t *testing.T) {
	// Two tiny discs on opposite sides of the planet cannot intersect.
	cs := []Constraint{
		{VP: london, RTTms: 1},
		{VP: sydney, RTTms: 1},
	}
	if _, err := Multilaterate(cs, 16); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestMultilaterateNoConstraints(t *testing.T) {
	if _, err := Multilaterate(nil, 16); err == nil {
		t.Error("want error for empty constraints")
	}
}

func TestMultilaterateZeroRTT(t *testing.T) {
	cs := []Constraint{{VP: tokyo, RTTms: 0}}
	r, err := Multilaterate(cs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if DistanceKm(r.Center, tokyo) > 1e-6 {
		t.Errorf("zero RTT should pin target at VP, got %v", r.Center)
	}
}

func TestMultilaterateZeroRTTConflict(t *testing.T) {
	cs := []Constraint{
		{VP: tokyo, RTTms: 0},
		{VP: london, RTTms: 1},
	}
	if _, err := Multilaterate(cs, 16); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestMultilaterateTighterConstraintsShrinkRegion(t *testing.T) {
	loose := []Constraint{{VP: london, RTTms: 40}}
	tight := []Constraint{{VP: london, RTTms: 10}}
	rl, err := Multilaterate(loose, 24)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Multilaterate(tight, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rt.AreaKm2 >= rl.AreaKm2 {
		t.Errorf("tight area %.0f should be < loose area %.0f", rt.AreaKm2, rl.AreaKm2)
	}
	if rt.ErrorRadiusKm >= rl.ErrorRadiusKm {
		t.Errorf("tight error radius %.0f should be < loose %.0f", rt.ErrorRadiusKm, rl.ErrorRadiusKm)
	}
}

func TestShortestPing(t *testing.T) {
	cs := []Constraint{
		{VP: london, RTTms: 30},
		{VP: newYork, RTTms: 5},
		{VP: tokyo, RTTms: 80},
	}
	if got := ShortestPing(cs); got != 1 {
		t.Errorf("ShortestPing = %d, want 1", got)
	}
	if got := ShortestPing(nil); got != -1 {
		t.Errorf("ShortestPing(nil) = %d, want -1", got)
	}
}

func TestSortByRTT(t *testing.T) {
	cs := []Constraint{
		{VP: london, RTTms: 30},
		{VP: newYork, RTTms: 5},
		{VP: tokyo, RTTms: 80},
	}
	SortByRTT(cs)
	if cs[0].RTTms != 5 || cs[1].RTTms != 30 || cs[2].RTTms != 80 {
		t.Errorf("SortByRTT produced %v", cs)
	}
}

func TestFeasible(t *testing.T) {
	cs := []Constraint{
		{VP: london, RTTms: 100},
		{VP: newYork, RTTms: 100},
	}
	if !Feasible(Midpoint(london, newYork), cs) {
		t.Error("midpoint should satisfy generous constraints")
	}
	if Feasible(sydney, []Constraint{{VP: london, RTTms: 1}}) {
		t.Error("sydney cannot satisfy a 1ms constraint from london")
	}
}

func TestMultilaterateSamplesClamped(t *testing.T) {
	// samplesPerAxis below 8 must be clamped rather than panicking.
	cs := []Constraint{{VP: london, RTTms: 10}}
	if _, err := Multilaterate(cs, 1); err != nil {
		t.Fatalf("clamped sampling failed: %v", err)
	}
}

func TestRegionErrorRadiusGrowsWithRTT(t *testing.T) {
	var prev float64
	for _, rtt := range []float64{5, 15, 45} {
		r, err := Multilaterate([]Constraint{{VP: ashburn, RTTms: rtt}}, 24)
		if err != nil {
			t.Fatal(err)
		}
		if r.ErrorRadiusKm < prev {
			t.Errorf("error radius should grow with RTT: %.0f after %.0f", r.ErrorRadiusKm, prev)
		}
		prev = r.ErrorRadiusKm
	}
	if prev > math.Pi*EarthRadiusKm {
		t.Errorf("error radius %.0f exceeds planetary bound", prev)
	}
}
