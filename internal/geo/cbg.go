package geo

import (
	"errors"
	"math"
	"sort"
)

// Constraint is a single delay-derived distance constraint: the target is
// at most MaxDistanceKm(RTTms) kilometres from VP.
type Constraint struct {
	VP    LatLong // location of the vantage point
	RTTms float64 // measured round-trip time in milliseconds
}

// RadiusKm returns the constraint's disc radius in kilometres.
func (c Constraint) RadiusKm() float64 { return MaxDistanceKm(c.RTTms) }

// Contains reports whether p satisfies the constraint.
func (c Constraint) Contains(p LatLong) bool {
	return DistanceKm(c.VP, p) <= c.RadiusKm()
}

// Region is the result of a CBG multilateration: an estimated position and
// an error radius describing the extent of the feasible region.
type Region struct {
	Center        LatLong // estimated location (centroid of the feasible set)
	ErrorRadiusKm float64 // maximum distance from Center to a feasible sample
	AreaKm2       float64 // approximate area of the feasible region
	Samples       int     // number of feasible samples backing the estimate
}

// ErrInfeasible is returned by Multilaterate when no point satisfies every
// constraint — typically a sign of an underestimated RTT or a spoofed
// response.
var ErrInfeasible = errors.New("geo: constraints admit no feasible region")

// Feasible reports whether p satisfies every constraint in cs.
func Feasible(p LatLong, cs []Constraint) bool {
	for _, c := range cs {
		if !c.Contains(p) {
			return false
		}
	}
	return true
}

// Multilaterate estimates the location of a target from a set of delay
// constraints using the CBG approach of Gueye et al.: the target must lie
// in the intersection of the constraint discs; the estimate is the
// centroid of that intersection, and the error radius is the maximal
// distance from the centroid to the intersection's boundary.
//
// The intersection is evaluated numerically: the disc of the tightest
// constraint is sampled on a polar grid and each sample is tested against
// the remaining constraints. samplesPerAxis controls grid density (values
// of 32–128 are reasonable; <8 is clamped to 8).
func Multilaterate(cs []Constraint, samplesPerAxis int) (Region, error) {
	if len(cs) == 0 {
		return Region{}, errors.New("geo: no constraints")
	}
	if samplesPerAxis < 8 {
		samplesPerAxis = 8
	}
	// Identify the tightest constraint; its disc bounds the search.
	tight := cs[0]
	for _, c := range cs[1:] {
		if c.RadiusKm() < tight.RadiusKm() {
			tight = c
		}
	}
	maxR := tight.RadiusKm()
	if maxR <= 0 {
		// Degenerate: RTT of zero pins the target at the VP itself if the
		// other constraints allow it.
		if Feasible(tight.VP, cs) {
			return Region{Center: tight.VP, Samples: 1}, nil
		}
		return Region{}, ErrInfeasible
	}

	var feasible []LatLong
	// Sample the tight disc on a polar grid: rings of constant radius.
	for ri := 0; ri <= samplesPerAxis; ri++ {
		r := maxR * float64(ri) / float64(samplesPerAxis)
		steps := 1
		if ri > 0 {
			// Keep approximately uniform sample density over the disc.
			steps = 6 * ri
		}
		for bi := 0; bi < steps; bi++ {
			b := 360 * float64(bi) / float64(steps)
			p := Destination(tight.VP, b, r)
			if Feasible(p, cs) {
				feasible = append(feasible, p)
			}
		}
	}
	if len(feasible) == 0 {
		return Region{}, ErrInfeasible
	}
	center, err := Centroid(feasible)
	if err != nil {
		return Region{}, err
	}
	var maxDist float64
	for _, p := range feasible {
		if d := DistanceKm(center, p); d > maxDist {
			maxDist = d
		}
	}
	// Approximate area: fraction of feasible samples times tight disc area.
	total := 1
	for ri := 1; ri <= samplesPerAxis; ri++ {
		total += 6 * ri
	}
	area := math.Pi * maxR * maxR * float64(len(feasible)) / float64(total)
	return Region{
		Center:        center,
		ErrorRadiusKm: maxDist,
		AreaKm2:       area,
		Samples:       len(feasible),
	}, nil
}

// ShortestPing returns the index of the constraint with the smallest RTT,
// implementing the Shortest Ping geolocation heuristic of Katz-Bassett et
// al. (the target is assumed co-located with the closest vantage point).
// It returns -1 for an empty slice.
func ShortestPing(cs []Constraint) int {
	best := -1
	for i, c := range cs {
		if best == -1 || c.RTTms < cs[best].RTTms {
			best = i
		}
	}
	return best
}

// SortByRTT sorts constraints in ascending RTT order, in place.
func SortByRTT(cs []Constraint) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].RTTms < cs[j].RTTms })
}
