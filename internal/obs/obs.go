// Package obs is the pipeline's observability layer: a stdlib-only
// tracer that records hierarchical spans (run → stage → suffix group →
// step) with wall time, worker id, and named counters, and exports them
// as deterministic JSONL traces plus an aggregated per-stage/per-key
// summary table.
//
// The layer is built around two contracts the rest of the stack relies
// on:
//
//   - Zero cost when disabled. Every method is safe to call on a nil
//     *Tracer or nil *Span and returns immediately without allocating;
//     instrumented code needs no "is tracing on?" branches. The hot
//     paths of core.Run therefore run at full speed with a nil tracer
//     (proved by TestNilTracerZeroAlloc and the BenchmarkRunParallel
//     comparison).
//
//   - Deterministic export. Finished spans are canonically ordered
//     (by path, key, then start sequence), ids are renumbered in output
//     order, and counters serialize with sorted keys — so two runs of
//     the same seeded corpus with the same worker count and a frozen
//     clock produce byte-identical traces. TestGoldenTraceDeterministic
//     locks this down.
//
// A Tracer is safe for concurrent use: spans may start and end on any
// goroutine (each span itself belongs to one goroutine, matching the
// worker-pool shape of the pipeline). Long-running servers that only
// need aggregates set RetainSpans to false, bounding memory regardless
// of request volume while Summary keeps working.
package obs

import (
	"sync"
	"time"
)

// Options configures a Tracer.
type Options struct {
	// Clock reports elapsed time since an arbitrary fixed origin. nil
	// uses a monotonic clock anchored at New. FrozenClock pins every
	// timestamp to zero, which makes exported traces byte-identical
	// across runs (the golden-test configuration).
	Clock func() time.Duration

	// RetainSpans keeps every finished span for WriteJSONL. When false
	// only the running aggregates behind Summary are maintained —
	// constant memory, the geoserve configuration.
	RetainSpans bool
}

// FrozenClock is a Clock that always reports zero elapsed time,
// removing wall-clock nondeterminism from exported traces.
func FrozenClock() time.Duration { return 0 }

// Tracer records spans. The zero value is not usable; construct with
// New. A nil *Tracer is valid everywhere and records nothing.
type Tracer struct {
	clock  func() time.Duration
	retain bool

	mu       sync.Mutex
	seq      uint64
	finished []spanRecord
	agg      map[string]*aggregate // per span name
	keyAgg   map[string]*aggregate // per span key (suffix, route, ...)

	// Runtime-telemetry ring (see runtime.go). Guarded by its own mutex
	// so a sampler tick never contends with span recording.
	rtMu    sync.Mutex
	rtRing  []RuntimeSample
	rtNext  int
	rtCount int
}

// New returns a Tracer ready to record.
func New(opts Options) *Tracer {
	clock := opts.Clock
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	return &Tracer{
		clock:  clock,
		retain: opts.RetainSpans,
		agg:    make(map[string]*aggregate),
		keyAgg: make(map[string]*aggregate),
	}
}

// Span is one timed unit of work. A span belongs to the goroutine that
// started it until End; Child spans may be handed to other goroutines.
// All methods are no-ops on a nil *Span.
type Span struct {
	tr     *Tracer
	parent *Span
	name   string
	path   string // slash-joined name chain, for canonical ordering
	key    string // suffix / route / world the span is about
	worker int    // worker pool slot (0 = unattributed)
	seq    uint64
	start  time.Duration
	counts []counterKV // small, append-only; most spans carry <8 counters
	attrs  []attrKV    // string annotations (request ids); most spans carry none
}

type counterKV struct {
	name string
	n    int64
}

type attrKV struct {
	name  string
	value string
}

// Start begins a root span. Returns nil (safely inert) on a nil Tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(nil, name)
}

// Child begins a sub-span of s. Returns nil on a nil *Span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, name)
}

func (t *Tracer) newSpan(parent *Span, name string) *Span {
	path := name
	if parent != nil {
		path = parent.path + "/" + name
	}
	t.mu.Lock()
	t.seq++
	seq := t.seq
	t.mu.Unlock()
	return &Span{
		tr:     t,
		parent: parent,
		name:   name,
		path:   path,
		seq:    seq,
		start:  t.clock(),
	}
}

// SetKey labels the span with the entity it is about — a suffix, an
// HTTP route, a world name. Keys drive the per-key summary table.
func (s *Span) SetKey(key string) {
	if s == nil {
		return
	}
	s.key = key
}

// SetWorker records which worker-pool slot ran the span (1-based; zero
// means unattributed and is omitted from the trace).
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.worker = w
}

// SetAttr attaches a string annotation to the span — a query-log
// request id, a client identity. Attrs ride along into retained-span
// export (sorted keys, like counters) but are deliberately excluded
// from aggregation: they identify one span, they don't accumulate.
// Setting the same name again overwrites.
func (s *Span) SetAttr(name, value string) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].name == name {
			s.attrs[i].value = value
			return
		}
	}
	s.attrs = append(s.attrs, attrKV{name, value})
}

// Count adds n to the span's named counter.
func (s *Span) Count(name string, n int64) {
	if s == nil {
		return
	}
	for i := range s.counts {
		if s.counts[i].name == name {
			s.counts[i].n += n
			return
		}
	}
	s.counts = append(s.counts, counterKV{name, n})
}

// End finishes the span, folding it into the tracer's aggregates and —
// when the tracer retains spans — the export buffer. End must be called
// exactly once per span; calling it on a nil *Span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tr.clock()
	rec := spanRecord{
		name:    s.name,
		path:    s.path,
		key:     s.key,
		worker:  s.worker,
		seq:     s.seq,
		startNS: int64(s.start),
		durNS:   int64(end - s.start),
		counts:  s.counts,
		attrs:   s.attrs,
	}
	if s.parent != nil {
		rec.parentSeq = s.parent.seq
	}
	s.tr.record(rec)
}

// spanRecord is a finished span, pre-serialization.
type spanRecord struct {
	name      string
	path      string
	key       string
	worker    int
	seq       uint64
	parentSeq uint64
	startNS   int64
	durNS     int64
	counts    []counterKV
	attrs     []attrKV
}

// aggregate is the running per-name (or per-key) rollup behind Summary.
type aggregate struct {
	count  int64
	totalN int64 // total duration, ns
	counts map[string]int64
}

func (a *aggregate) fold(rec spanRecord) {
	a.count++
	a.totalN += rec.durNS
	for _, kv := range rec.counts {
		a.counts[kv.name] += kv.n
	}
}

func newAggregate() *aggregate {
	return &aggregate{counts: make(map[string]int64)}
}

func (t *Tracer) record(rec spanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[rec.name]
	if a == nil {
		a = newAggregate()
		t.agg[rec.name] = a
	}
	a.fold(rec)
	if rec.key != "" {
		k := t.keyAgg[rec.key]
		if k == nil {
			k = newAggregate()
			t.keyAgg[rec.key] = k
		}
		k.fold(rec)
	}
	if t.retain {
		t.finished = append(t.finished, rec)
	}
}

// SpanCount returns how many spans have finished so far.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int64(0)
	for _, a := range t.agg {
		n += a.count
	}
	return int(n)
}

// StageCounters snapshots the named stage's counters — the map a
// daemon's shutdown report or metrics endpoint reads without paying
// for a full Summary. The result is a copy; nil when the stage has
// recorded no spans (or on a nil Tracer).
func (t *Tracer) StageCounters(name string) map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[name]
	if a == nil || len(a.counts) == 0 {
		return nil
	}
	out := make(map[string]int64, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}
