package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSample is one snapshot of the Go runtime's health metrics, as
// read from runtime/metrics. Elapsed time comes from the tracer's clock
// (so FrozenClock pins it to zero); the metric values themselves are
// inherently nondeterministic and are therefore never part of the
// deterministic span export — WriteJSONL and golden traces exclude them
// by construction.
type RuntimeSample struct {
	ElapsedUS     int64   `json:"elapsed_us"`
	HeapBytes     uint64  `json:"heap_bytes"`
	Goroutines    int64   `json:"goroutines"`
	GCPauseP50US  float64 `json:"gc_pause_p50_us"`
	GCPauseP99US  float64 `json:"gc_pause_p99_us"`
	SchedLatP50US float64 `json:"sched_lat_p50_us"`
	SchedLatP99US float64 `json:"sched_lat_p99_us"`
}

// RuntimeOptions configures StartRuntimeSampler.
type RuntimeOptions struct {
	// Interval between samples. Zero means DefaultRuntimeInterval.
	Interval time.Duration
	// RingSize bounds the retained samples (oldest overwritten). Zero
	// means DefaultRuntimeRing.
	RingSize int
}

// Defaults for RuntimeOptions: a sample every 10 seconds, keeping the
// last 120 (twenty minutes of history in a long-running daemon).
const (
	DefaultRuntimeInterval = 10 * time.Second
	DefaultRuntimeRing     = 120
)

// runtimeMetricNames are the runtime/metrics keys the sampler reads.
var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// StartRuntimeSampler launches a background goroutine that snapshots
// the Go runtime every Interval and appends the sample to a fixed-size
// ring on the tracer. It is opt-in: nothing samples unless a caller
// starts it, so the nil-tracer zero-alloc contract and the disabled-by-
// default cost model are untouched. The returned stop function halts
// the sampler and waits for its goroutine to exit; it is idempotent.
// On a nil tracer nothing starts and stop is a no-op.
//
// One sample is taken synchronously before the goroutine starts, so
// even a run shorter than Interval records a snapshot.
func (t *Tracer) StartRuntimeSampler(opts RuntimeOptions) (stop func()) {
	if t == nil {
		return func() {}
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRuntimeRing
	}
	t.rtMu.Lock()
	if t.rtRing == nil || len(t.rtRing) != size {
		t.rtRing = make([]RuntimeSample, size)
		t.rtNext, t.rtCount = 0, 0
	}
	t.rtMu.Unlock()

	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	t.sampleRuntime(samples)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				t.sampleRuntime(samples)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// sampleRuntime reads the metric set and pushes one sample onto the
// ring. The samples slice is owned by one sampler goroutine (plus the
// synchronous first read before it starts), so reads never race.
func (t *Tracer) sampleRuntime(samples []metrics.Sample) {
	metrics.Read(samples)
	s := RuntimeSample{ElapsedUS: int64(t.clock() / time.Microsecond)}
	for _, m := range samples {
		switch m.Name {
		case "/memory/classes/heap/objects:bytes":
			if m.Value.Kind() == metrics.KindUint64 {
				s.HeapBytes = m.Value.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if m.Value.Kind() == metrics.KindUint64 {
				s.Goroutines = int64(m.Value.Uint64())
			}
		case "/gc/pauses:seconds":
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				h := m.Value.Float64Histogram()
				s.GCPauseP50US = histQuantile(h, 0.50) * 1e6
				s.GCPauseP99US = histQuantile(h, 0.99) * 1e6
			}
		case "/sched/latencies:seconds":
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				h := m.Value.Float64Histogram()
				s.SchedLatP50US = histQuantile(h, 0.50) * 1e6
				s.SchedLatP99US = histQuantile(h, 0.99) * 1e6
			}
		}
	}
	t.rtMu.Lock()
	t.rtRing[t.rtNext] = s
	t.rtNext = (t.rtNext + 1) % len(t.rtRing)
	if t.rtCount < len(t.rtRing) {
		t.rtCount++
	}
	t.rtMu.Unlock()
}

// histQuantile extracts an approximate quantile from a runtime/metrics
// Float64Histogram: the left edge of the first bucket whose cumulative
// count reaches q of the total (0 when the histogram is empty).
// Unbounded edge buckets fall back to their finite edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= want {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the finite
			// lower edge (upper edge for the -Inf underflow bucket).
			lo := h.Buckets[i]
			if math.IsInf(lo, -1) {
				lo = h.Buckets[i+1]
			}
			if math.IsInf(lo, +1) {
				lo = h.Buckets[i]
			}
			return lo
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RuntimeSamples returns the retained samples, oldest first. Nil tracer
// or never-started sampler yields nil.
func (t *Tracer) RuntimeSamples() []RuntimeSample {
	if t == nil {
		return nil
	}
	t.rtMu.Lock()
	defer t.rtMu.Unlock()
	if t.rtCount == 0 {
		return nil
	}
	out := make([]RuntimeSample, 0, t.rtCount)
	start := t.rtNext - t.rtCount
	if start < 0 {
		start += len(t.rtRing)
	}
	for i := 0; i < t.rtCount; i++ {
		out = append(out, t.rtRing[(start+i)%len(t.rtRing)])
	}
	return out
}

// FormatRuntimeSamples renders a sample history as an aligned table —
// the hoiho -runtimestats output. A nil/empty history prints a note
// instead of an empty table.
func FormatRuntimeSamples(w io.Writer, samples []RuntimeSample) error {
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "runtime: no samples recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s  %12s  %10s  %14s  %14s\n",
		"elapsed", "heap", "goroutines", "gc_pause_p99", "sched_lat_p99"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%12s  %12d  %10d  %14s  %14s\n",
			time.Duration(s.ElapsedUS)*time.Microsecond,
			s.HeapBytes, s.Goroutines,
			time.Duration(s.GCPauseP99US*float64(time.Microsecond)),
			time.Duration(s.SchedLatP99US*float64(time.Microsecond))); err != nil {
			return err
		}
	}
	return nil
}
