package obs

import (
	"bytes"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

// TestRuntimeSamplerNilTracer: starting the sampler on a nil tracer is
// inert — no goroutine, no samples, stop is callable.
func TestRuntimeSamplerNilTracer(t *testing.T) {
	var tr *Tracer
	stop := tr.StartRuntimeSampler(RuntimeOptions{})
	stop()
	stop() // idempotent
	if s := tr.RuntimeSamples(); s != nil {
		t.Fatalf("nil tracer RuntimeSamples = %v, want nil", s)
	}
}

// TestRuntimeSamplerOffByDefault: a tracer that never starts the
// sampler holds no samples — runtime telemetry is strictly opt-in.
func TestRuntimeSamplerOffByDefault(t *testing.T) {
	tr := New(Options{})
	sp := tr.Start("run")
	sp.End()
	if s := tr.RuntimeSamples(); s != nil {
		t.Fatalf("RuntimeSamples without sampler = %v, want nil", s)
	}
}

// TestRuntimeSamplerRecords: the synchronous first sample means even an
// immediate stop leaves one plausible snapshot in the ring.
func TestRuntimeSamplerRecords(t *testing.T) {
	tr := New(Options{})
	stop := tr.StartRuntimeSampler(RuntimeOptions{Interval: time.Hour})
	stop()
	samples := tr.RuntimeSamples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (the synchronous first sample)", len(samples))
	}
	s := samples[0]
	if s.HeapBytes == 0 {
		t.Error("sample has zero heap bytes")
	}
	if s.Goroutines < 1 {
		t.Errorf("sample reports %d goroutines, want >= 1", s.Goroutines)
	}
}

// TestRuntimeSamplerTicks: with a short interval the background
// goroutine keeps appending until stopped.
func TestRuntimeSamplerTicks(t *testing.T) {
	tr := New(Options{})
	stop := tr.StartRuntimeSampler(RuntimeOptions{Interval: time.Millisecond})
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for len(tr.RuntimeSamples()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler recorded %d samples in 5s, want >= 3", len(tr.RuntimeSamples()))
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	n := len(tr.RuntimeSamples())
	time.Sleep(5 * time.Millisecond)
	if got := len(tr.RuntimeSamples()); got != n {
		t.Fatalf("sampler still recording after stop: %d -> %d", n, got)
	}
}

// TestRuntimeSamplerRingWraps: the ring keeps only the newest RingSize
// samples, oldest first.
func TestRuntimeSamplerRingWraps(t *testing.T) {
	tr := New(Options{})
	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	tr.rtMu.Lock()
	tr.rtRing = make([]RuntimeSample, 3)
	tr.rtMu.Unlock()
	for i := 0; i < 7; i++ {
		tr.sampleRuntime(samples)
		tr.rtMu.Lock()
		tr.rtRing[(tr.rtNext+len(tr.rtRing)-1)%len(tr.rtRing)].ElapsedUS = int64(i)
		tr.rtMu.Unlock()
	}
	got := tr.RuntimeSamples()
	if len(got) != 3 {
		t.Fatalf("ring holds %d samples, want 3", len(got))
	}
	for i, want := range []int64{4, 5, 6} {
		if got[i].ElapsedUS != want {
			t.Fatalf("sample %d elapsed = %d, want %d (oldest-first order)", i, got[i].ElapsedUS, want)
		}
	}
}

// TestRuntimeSamplerFrozenClock: under FrozenClock the only
// deterministic field — elapsed time — is pinned to zero, matching the
// golden-trace configuration.
func TestRuntimeSamplerFrozenClock(t *testing.T) {
	tr := New(Options{Clock: FrozenClock})
	stop := tr.StartRuntimeSampler(RuntimeOptions{Interval: time.Hour})
	stop()
	for _, s := range tr.RuntimeSamples() {
		if s.ElapsedUS != 0 {
			t.Fatalf("frozen-clock sample elapsed = %d, want 0", s.ElapsedUS)
		}
	}
}

// TestRuntimeSamplesExcludedFromExport: runtime samples never appear in
// the deterministic span export — the golden-trace contract is
// untouched by the sampler.
func TestRuntimeSamplesExcludedFromExport(t *testing.T) {
	tr := New(Options{Clock: FrozenClock, RetainSpans: true})
	stop := tr.StartRuntimeSampler(RuntimeOptions{Interval: time.Hour})
	sp := tr.Start("run")
	sp.End()
	stop()
	recs := tr.Export()
	if len(recs) != 1 || recs[0].Name != "run" {
		t.Fatalf("export = %+v, want exactly the run span", recs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "heap") {
		t.Fatalf("runtime telemetry leaked into the span trace:\n%s", buf.String())
	}
}

// TestHistQuantile exercises the bucket-walk on a hand-built histogram.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if got := histQuantile(h, 0.50); got != 2 {
		t.Errorf("p50 = %v, want 2 (lower edge of the 80-count bucket)", got)
	}
	if got := histQuantile(h, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("zero-count histogram quantile = %v, want 0", got)
	}
}

// TestFormatRuntimeSamples pins the -runtimestats table shape.
func TestFormatRuntimeSamples(t *testing.T) {
	var buf strings.Builder
	if err := FormatRuntimeSamples(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Fatalf("empty history output = %q", buf.String())
	}
	buf.Reset()
	samples := []RuntimeSample{{ElapsedUS: 1500, HeapBytes: 1 << 20, Goroutines: 7, GCPauseP99US: 120}}
	if err := FormatRuntimeSamples(&buf, samples); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"heap", "goroutines", "1048576", "7", "1.5ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
