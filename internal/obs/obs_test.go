package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerSafe exercises every method on nil receivers; any panic
// fails the test.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("run")
	if sp != nil {
		t.Fatalf("nil tracer Start returned non-nil span")
	}
	child := sp.Child("stage")
	if child != nil {
		t.Fatalf("nil span Child returned non-nil span")
	}
	sp.SetKey("example.net")
	sp.SetWorker(3)
	sp.Count("hostnames", 10)
	sp.End()
	if got := tr.SpanCount(); got != 0 {
		t.Fatalf("nil tracer SpanCount = %d, want 0", got)
	}
	if recs := tr.Export(); recs != nil {
		t.Fatalf("nil tracer Export = %v, want nil", recs)
	}
	if s := tr.Summary(); len(s.Stages) != 0 || len(s.Keys) != 0 {
		t.Fatalf("nil tracer Summary = %+v, want empty", s)
	}
}

// TestNilTracerZeroAlloc proves the disabled-tracing contract: the full
// instrumentation call pattern used by the pipeline allocates nothing
// when the tracer is nil.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("run")
		g := sp.Child("group")
		g.SetKey("example.net")
		g.SetWorker(1)
		g.Count("hostnames", 64)
		g.Count("rtt_checks", 128)
		g.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer instrumentation allocates %.1f/op, want 0", allocs)
	}
}

func recordFixture(tr *Tracer) {
	run := tr.Start("run")
	run.Count("suffix_groups", 2)
	for _, suffix := range []string{"b.example.net", "a.example.net"} {
		g := run.Child("group")
		g.SetKey(suffix)
		g.SetWorker(1)
		g.Count("hostnames", 10)
		g.Count("rtt_checks", 25)
		step := g.Child("stage2")
		step.Count("hostnames_tagged", 7)
		step.End()
		g.End()
	}
	run.End()
}

// TestExportDeterministic records the same span tree twice on separate
// tracers — once in reversed start order — and requires byte-identical
// JSONL, the golden-trace contract.
func TestExportDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr := New(Options{Clock: FrozenClock, RetainSpans: true})
		recordFixture(tr)
		if err := tr.WriteJSONL(&bufs[i]); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("traces differ:\n--- a ---\n%s\n--- b ---\n%s", bufs[0].String(), bufs[1].String())
	}
	if bufs[0].Len() == 0 {
		t.Fatal("empty trace export")
	}
}

// TestExportCanonicalOrder checks the sort (path, key, seq), the id
// renumbering, and parent-id remapping.
func TestExportCanonicalOrder(t *testing.T) {
	tr := New(Options{Clock: FrozenClock, RetainSpans: true})
	recordFixture(tr)
	recs := tr.Export()
	if len(recs) != 5 {
		t.Fatalf("exported %d spans, want 5", len(recs))
	}
	for i, r := range recs {
		if r.ID != i+1 {
			t.Fatalf("record %d has id %d, want %d", i, r.ID, i+1)
		}
	}
	// Canonical order: run, then groups sorted by key (a before b even
	// though b started first), each group's children after all groups
	// (path "run/group" < "run/group/stage2").
	wantNames := []string{"run", "group", "group", "stage2", "stage2"}
	wantKeys := []string{"", "a.example.net", "b.example.net", "", ""}
	for i, r := range recs {
		if r.Name != wantNames[i] || r.Key != wantKeys[i] {
			t.Fatalf("record %d = (%s,%q), want (%s,%q)", i, r.Name, r.Key, wantNames[i], wantKeys[i])
		}
	}
	// Parent links must point at the renumbered ids.
	if recs[1].Parent != recs[0].ID || recs[2].Parent != recs[0].ID {
		t.Fatalf("group parents = %d,%d, want %d", recs[1].Parent, recs[2].Parent, recs[0].ID)
	}
	if recs[3].Parent == 0 || recs[4].Parent == 0 {
		t.Fatalf("stage2 spans lost their parents: %d, %d", recs[3].Parent, recs[4].Parent)
	}
	// The a-group sorts first, so the first stage2's parent is the a-group.
	if recs[3].Parent != recs[1].ID && recs[3].Parent != recs[2].ID {
		t.Fatalf("stage2 parent %d is not a group id", recs[3].Parent)
	}
}

func TestSummaryAggregation(t *testing.T) {
	tr := New(Options{Clock: FrozenClock}) // aggregate-only: no retention
	recordFixture(tr)
	if tr.SpanCount() != 5 {
		t.Fatalf("SpanCount = %d, want 5", tr.SpanCount())
	}
	if recs := tr.Export(); len(recs) != 0 {
		t.Fatalf("aggregate-only tracer exported %d spans, want 0", len(recs))
	}
	s := tr.Summary()
	byName := map[string]SummaryRow{}
	for _, r := range s.Stages {
		byName[r.Name] = r
	}
	g, ok := byName["group"]
	if !ok {
		t.Fatalf("no group row in %+v", s.Stages)
	}
	if g.Count != 2 || g.Counters["hostnames"] != 20 || g.Counters["rtt_checks"] != 50 {
		t.Fatalf("group row = %+v, want count=2 hostnames=20 rtt_checks=50", g)
	}
	if byName["stage2"].Counters["hostnames_tagged"] != 14 {
		t.Fatalf("stage2 row = %+v, want hostnames_tagged=14", byName["stage2"])
	}
	byKey := map[string]SummaryRow{}
	for _, r := range s.Keys {
		byKey[r.Name] = r
	}
	if byKey["a.example.net"].Counters["hostnames"] != 10 {
		t.Fatalf("per-key row = %+v, want hostnames=10", byKey["a.example.net"])
	}
}

func TestSummaryFormat(t *testing.T) {
	tr := New(Options{Clock: FrozenClock})
	recordFixture(tr)
	var buf strings.Builder
	if err := tr.Summary().Format(&buf); err != nil {
		t.Fatalf("Format: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"stage", "group", "hostnames=20", "a.example.net", "key"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary table missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines; run
// under -race this proves the tracer is safe beneath the worker pool.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{RetainSpans: true})
	const workers, perWorker = 8, 50
	run := tr.Start("run")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g := run.Child("group")
				g.SetKey(fmt.Sprintf("suffix-%d-%d.net", w, i))
				g.SetWorker(w + 1)
				g.Count("hostnames", int64(i))
				g.End()
			}
		}(w)
	}
	wg.Wait()
	run.End()
	if got := tr.SpanCount(); got != workers*perWorker+1 {
		t.Fatalf("SpanCount = %d, want %d", got, workers*perWorker+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != workers*perWorker+1 {
		t.Fatalf("exported %d lines, want %d", lines, workers*perWorker+1)
	}
}

func TestStageCounters(t *testing.T) {
	tr := New(Options{})
	s := tr.Start("serve")
	s.Count("queries", 3)
	s.Count("refused", 1)
	s.End()
	s = tr.Start("serve")
	s.Count("queries", 2)
	s.End()

	got := tr.StageCounters("serve")
	if got["queries"] != 5 || got["refused"] != 1 {
		t.Errorf("StageCounters = %v", got)
	}
	// The snapshot is a copy: mutating it must not touch the tracer.
	got["queries"] = 99
	if tr.StageCounters("serve")["queries"] != 5 {
		t.Error("StageCounters returned a live reference")
	}
	if tr.StageCounters("absent") != nil {
		t.Error("unknown stage should yield nil")
	}
	var nilTr *Tracer
	if nilTr.StageCounters("serve") != nil {
		t.Error("nil tracer should yield nil")
	}
}

// TestStageCountersConcurrent hammers StageCounters from readers while
// writers fold spans in — run under -race this proves the snapshot
// path takes the tracer lock. Counts must also come out exact: no
// increment may be lost to a torn read.
func TestStageCountersConcurrent(t *testing.T) {
	tr := New(Options{})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers snapshot continuously until the writers finish.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := tr.StageCounters("serve")
				// Any observed value must be a multiple of nothing in
				// particular, but never exceed the final total.
				if m["queries"] > writers*perWriter {
					t.Error("counter overshot final total")
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for i := 0; i < writers; i++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for j := 0; j < perWriter; j++ {
				s := tr.Start("serve")
				s.Count("queries", 1)
				s.End()
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := tr.StageCounters("serve")["queries"]; got != writers*perWriter {
		t.Errorf("queries = %d, want %d", got, writers*perWriter)
	}
}

// TestSetAttrExport checks both halves of the attrs contract: attrs
// ride into TraceRecord.Attrs with last-write-wins semantics, and
// spans that never call SetAttr serialize without the field at all —
// so pre-attr golden traces stay byte-identical.
func TestSetAttrExport(t *testing.T) {
	tr := New(Options{Clock: FrozenClock, RetainSpans: true})
	s := tr.Start("query")
	s.SetAttr("request_id", "q1")
	s.SetAttr("client", "127.0.0.1")
	s.SetAttr("request_id", "q2") // overwrite, not duplicate
	s.End()
	plain := tr.Start("query")
	plain.Count("hits", 1)
	plain.End()

	recs := tr.Export()
	if len(recs) != 2 {
		t.Fatalf("Export returned %d records, want 2", len(recs))
	}
	var withAttrs, without *TraceRecord
	for i := range recs {
		if len(recs[i].Attrs) > 0 {
			withAttrs = &recs[i]
		} else {
			without = &recs[i]
		}
	}
	if withAttrs == nil || without == nil {
		t.Fatalf("expected one span with attrs and one without, got %+v", recs)
	}
	want := map[string]string{"request_id": "q2", "client": "127.0.0.1"}
	if len(withAttrs.Attrs) != len(want) {
		t.Fatalf("Attrs = %v, want %v", withAttrs.Attrs, want)
	}
	for k, v := range want {
		if withAttrs.Attrs[k] != v {
			t.Errorf("Attrs[%q] = %q, want %q", k, withAttrs.Attrs[k], v)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("WriteJSONL produced %d lines, want 2", len(lines))
	}
	var sawAttr, sawPlain bool
	for _, ln := range lines {
		if strings.Contains(ln, `"attrs"`) {
			sawAttr = true
			if !strings.Contains(ln, `"request_id":"q2"`) {
				t.Errorf("attr line missing overwritten request_id: %s", ln)
			}
		} else {
			sawPlain = true
		}
	}
	if !sawAttr || !sawPlain {
		t.Errorf("want one line with attrs and one without:\n%s", buf.String())
	}

	// SetAttr on a nil span is a no-op, like every other span method.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
}
