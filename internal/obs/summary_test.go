package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSummaryEmptyTracer: a live tracer with no finished spans yields
// empty tables and a header-only text rendering — no panic, no rows.
func TestSummaryEmptyTracer(t *testing.T) {
	tr := New(Options{})
	s := tr.Summary()
	if len(s.Stages) != 0 || len(s.Keys) != 0 {
		t.Fatalf("empty tracer summary = %+v, want empty tables", s)
	}
	var buf strings.Builder
	if err := s.Format(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "stage") {
		t.Fatalf("empty summary rendered %d lines:\n%s", len(lines), buf.String())
	}
}

// TestSummarySingleSpan: one span, no key — exactly one stage row, no
// key table.
func TestSummarySingleSpan(t *testing.T) {
	tr := New(Options{Clock: FrozenClock})
	sp := tr.Start("run")
	sp.Count("hostnames", 3)
	sp.End()
	s := tr.Summary()
	if len(s.Stages) != 1 || len(s.Keys) != 0 {
		t.Fatalf("summary = %+v, want one stage row and no key rows", s)
	}
	row := s.Stages[0]
	if row.Name != "run" || row.Count != 1 || row.Counters["hostnames"] != 3 {
		t.Fatalf("row = %+v", row)
	}
	var buf strings.Builder
	if err := s.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "key") {
		t.Fatalf("key table rendered with no keyed spans:\n%s", buf.String())
	}
}

// TestSummaryZeroDurationSpans: spans whose start and end coincide
// (frozen clock) aggregate to zero total time; ties sort by name so the
// table order is still deterministic.
func TestSummaryZeroDurationSpans(t *testing.T) {
	tr := New(Options{Clock: FrozenClock})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		sp := tr.Start(name)
		sp.End()
	}
	s := tr.Summary()
	if len(s.Stages) != 3 {
		t.Fatalf("got %d rows, want 3", len(s.Stages))
	}
	wantOrder := []string{"alpha", "mid", "zeta"}
	for i, row := range s.Stages {
		if row.TotalUS != 0 {
			t.Errorf("row %q TotalUS = %d, want 0 under frozen clock", row.Name, row.TotalUS)
		}
		if row.Name != wantOrder[i] {
			t.Errorf("row %d = %q, want %q (name order on zero-duration ties)", i, row.Name, wantOrder[i])
		}
	}
	var buf strings.Builder
	if err := s.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0s") {
		t.Fatalf("zero duration not rendered:\n%s", buf.String())
	}
}

// TestSummaryKeyTruncation: a pathologically long key is truncated in
// the -tracesummary text table (display only) while the structured
// summary keeps the full key.
func TestSummaryKeyTruncation(t *testing.T) {
	long := strings.Repeat("verylongsubdomain.", 5) + "example.net" // 101 bytes
	tr := New(Options{Clock: FrozenClock})
	sp := tr.Start("group")
	sp.SetKey(long)
	sp.End()
	s := tr.Summary()
	if len(s.Keys) != 1 || s.Keys[0].Name != long {
		t.Fatalf("structured summary must keep the full key, got %+v", s.Keys)
	}
	var buf strings.Builder
	if err := s.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, long) {
		t.Fatalf("full %d-byte key rendered untruncated:\n%s", len(long), out)
	}
	want := long[:maxNameWidth-3] + "..."
	if !strings.Contains(out, want) {
		t.Fatalf("truncated key %q missing from:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, long[:10]) && !strings.Contains(line, "...") {
			t.Fatalf("key row lost its ellipsis: %q", line)
		}
	}
}

// TestTruncNameBoundary: exactly-at-limit names pass through untouched.
func TestTruncNameBoundary(t *testing.T) {
	at := strings.Repeat("a", maxNameWidth)
	if got := truncName(at); got != at {
		t.Errorf("truncName(len=%d) = %q, want unchanged", maxNameWidth, got)
	}
	over := at + "b"
	got := truncName(over)
	if len(got) != maxNameWidth || !strings.HasSuffix(got, "...") {
		t.Errorf("truncName(len=%d) = %q (len %d), want %d bytes ending in ellipsis",
			len(over), got, len(got), maxNameWidth)
	}
}

// TestSummaryFormatAlignment: the count column right-aligns to the
// widest count even with multi-digit mixes.
func TestSummaryFormatAlignment(t *testing.T) {
	tr := New(Options{Clock: func() time.Duration { return 0 }})
	for i := 0; i < 12; i++ {
		sp := tr.Start("many")
		sp.End()
	}
	one := tr.Start("one")
	one.End()
	var buf strings.Builder
	if err := tr.Summary().Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "12") || !strings.Contains(out, " 1 ") {
		t.Fatalf("counts missing:\n%s", out)
	}
}
