package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SummaryRow aggregates all finished spans sharing a stage name (or,
// in the per-key table, a key).
type SummaryRow struct {
	Name     string           `json:"name"`
	Count    int64            `json:"count"`
	TotalUS  int64            `json:"total_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Summary is the aggregated view of a trace: one table keyed by span
// name (the pipeline stages) and one keyed by span key (suffixes,
// routes, worlds). Both are sorted by total time descending, then name,
// so the hottest rows lead.
type Summary struct {
	Stages []SummaryRow `json:"stages"`
	Keys   []SummaryRow `json:"keys,omitempty"`
}

// Summary snapshots the tracer's aggregates. Works on any tracer,
// including aggregate-only ones; a nil tracer yields an empty summary.
func (t *Tracer) Summary() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	stages := rowsFrom(t.agg)
	keys := rowsFrom(t.keyAgg)
	t.mu.Unlock()
	return Summary{Stages: stages, Keys: keys}
}

func rowsFrom(m map[string]*aggregate) []SummaryRow {
	rows := make([]SummaryRow, 0, len(m))
	for name, a := range m {
		row := SummaryRow{Name: name, Count: a.count, TotalUS: a.totalN / 1000}
		if len(a.counts) > 0 {
			row.Counters = make(map[string]int64, len(a.counts))
			for k, v := range a.counts {
				row.Counters[k] = v
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalUS != rows[j].TotalUS {
			return rows[i].TotalUS > rows[j].TotalUS
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// Format renders the summary as an aligned text table for terminal
// output (the -tracesummary flag).
func (s Summary) Format(w io.Writer) error {
	if err := formatRows(w, "stage", s.Stages); err != nil {
		return err
	}
	if len(s.Keys) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return formatRows(w, "key", s.Keys)
}

// maxNameWidth caps the name/key column of the text table. Keys are
// suffixes, routes, or world names; a pathological hostname suffix must
// not push the timing columns off-screen. The JSON summary always
// carries the full key — truncation is display-only.
const maxNameWidth = 48

// truncName shortens s to maxNameWidth display bytes, marking the cut
// with an ellipsis.
func truncName(s string) string {
	if len(s) <= maxNameWidth {
		return s
	}
	return s[:maxNameWidth-3] + "..."
}

func formatRows(w io.Writer, header string, rows []SummaryRow) error {
	nameW, countW := len(header), len("count")
	for _, r := range rows {
		if n := len(truncName(r.Name)); n > nameW {
			nameW = n
		}
		if n := len(fmt.Sprintf("%d", r.Count)); n > countW {
			countW = n
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %*s  %12s  counters\n", nameW, header, countW, "count", "total"); err != nil {
		return err
	}
	for _, r := range rows {
		total := time.Duration(r.TotalUS) * time.Microsecond
		if _, err := fmt.Fprintf(w, "%-*s  %*d  %12s  %s\n",
			nameW, truncName(r.Name), countW, r.Count, total, formatCounters(r.Counters)); err != nil {
			return err
		}
	}
	return nil
}

func formatCounters(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
