package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceRecord is one exported span, the JSONL schema. Ids are assigned
// in canonical output order (1..n), so the same recorded spans always
// serialize to the same bytes. Durations are microseconds: fine enough
// for stage-level profiling, coarse enough that the schema does not
// invite nanosecond-diffing.
type TraceRecord struct {
	ID       int              `json:"id"`
	Parent   int              `json:"parent,omitempty"`
	Name     string           `json:"name"`
	Key      string           `json:"key,omitempty"`
	Worker   int              `json:"worker,omitempty"`
	StartUS  int64            `json:"start_us"`
	DurUS    int64            `json:"dur_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// Attrs carry per-span string annotations (request ids). Spans
	// without attrs omit the field, so traces from code that never calls
	// SetAttr — the whole learning pipeline — are byte-identical to
	// those from before the field existed.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Export returns all finished spans in canonical order: by path (the
// slash-joined name chain), then key, then start sequence. Requires a
// tracer built with RetainSpans; a nil or aggregate-only tracer exports
// nothing.
func (t *Tracer) Export() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := make([]spanRecord, len(t.finished))
	copy(recs, t.finished)
	t.mu.Unlock()

	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].path != recs[j].path {
			return recs[i].path < recs[j].path
		}
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].seq < recs[j].seq
	})

	// Renumber ids in output order so they carry no trace of the
	// (scheduling-dependent) order spans were started in.
	newID := make(map[uint64]int, len(recs))
	for i, r := range recs {
		newID[r.seq] = i + 1
	}
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		tr := TraceRecord{
			ID:      i + 1,
			Parent:  newID[r.parentSeq], // zero when parent unknown/absent
			Name:    r.name,
			Key:     r.key,
			Worker:  r.worker,
			StartUS: r.startNS / 1000,
			DurUS:   r.durNS / 1000,
		}
		if len(r.counts) > 0 {
			tr.Counters = make(map[string]int64, len(r.counts))
			for _, kv := range r.counts {
				tr.Counters[kv.name] = kv.n
			}
		}
		if len(r.attrs) > 0 {
			tr.Attrs = make(map[string]string, len(r.attrs))
			for _, kv := range r.attrs {
				tr.Attrs[kv.name] = kv.value
			}
		}
		out[i] = tr
	}
	return out
}

// WriteJSONL writes the canonical trace, one JSON object per line.
// encoding/json marshals map keys sorted, so output is byte-stable for
// a given set of recorded spans.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, rec := range t.Export() {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal span %d: %w", rec.ID, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
