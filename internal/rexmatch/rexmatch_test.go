package rexmatch

import (
	"regexp"
	"strings"
	"testing"
)

// render builds the stdlib pattern a spec sequence corresponds to, for
// differential assertions.
func render(specs []Spec) string {
	var b strings.Builder
	b.WriteByte('^')
	for _, s := range specs {
		if s.Capture {
			b.WriteByte('(')
		}
		switch s.Op {
		case OpLit:
			b.WriteString(regexp.QuoteMeta(s.Lit))
		case OpAny:
			b.WriteString(`.+`)
		case OpNotDot:
			b.WriteString(`[^\.]+`)
		case OpNotDash:
			b.WriteString(`[^-]+`)
		case OpAlpha:
			b.WriteString(`[a-z]+`)
		case OpAlphaFixed:
			b.WriteString(`[a-z]{`)
			b.WriteString(strings.Repeat("", 0))
			for _, d := range intDigits(s.N) {
				b.WriteByte(d)
			}
			b.WriteByte('}')
		case OpDigits:
			b.WriteString(`\d+`)
		case OpDigitsOpt:
			b.WriteString(`\d*`)
		case OpAlnum:
			b.WriteString(`[a-z\d]+`)
		}
		if s.Capture {
			b.WriteByte(')')
		}
	}
	b.WriteByte('$')
	return b.String()
}

func intDigits(n int) []byte {
	var out []byte
	if n == 0 {
		return []byte{'0'}
	}
	for n > 0 {
		out = append([]byte{byte('0' + n%10)}, out...)
		n /= 10
	}
	return out
}

// diff cross-checks a program against the stdlib engine on one input:
// same match verdict, and identical spans for every component.
func diff(t *testing.T, specs []Spec, input string) {
	t.Helper()
	p, err := Compile(specs)
	if err != nil {
		t.Fatalf("Compile(%v): %v", specs, err)
	}
	// All-capture variant so every component span is visible.
	all := make([]Spec, len(specs))
	copy(all, specs)
	for i := range all {
		all[i].Capture = true
	}
	re := regexp.MustCompile(render(all))
	want := re.FindStringSubmatch(input)
	var res Result
	got := p.Run(input, &res)
	if (want != nil) != got {
		t.Fatalf("%q on %q: stdlib match=%v, rexmatch match=%v", render(all), input, want != nil, got)
	}
	if !got {
		return
	}
	parts := res.Parts(nil)
	if len(parts) != len(want)-1 {
		t.Fatalf("%q on %q: %d parts, stdlib %d groups", render(all), input, len(parts), len(want)-1)
	}
	for i, part := range parts {
		if part != want[i+1] {
			t.Fatalf("%q on %q: part %d = %q, stdlib %q", render(all), input, i, part, want[i+1])
		}
	}
}

func TestDialectAgainstStdlib(t *testing.T) {
	cases := []struct {
		specs  []Spec
		inputs []string
	}{
		// The paper's alter.net IATA convention: ^.+\.([a-z]{3})\d+\.alter\.net$
		{
			[]Spec{{Op: OpAny}, {Op: OpLit, Lit: "."}, {Op: OpAlphaFixed, N: 3, Capture: true},
				{Op: OpDigits}, {Op: OpLit, Lit: ".alter.net"}},
			[]string{
				"0.xe-10-0-0.gw1.sfo16.alter.net",
				"a.b.lhr1.alter.net",
				"lhr1.alter.net",    // .+ needs a leading label
				"a.lhrx1.alter.net", // four letters before digits
				"a.lhr.alter.net",   // no digits
				"",
			},
		},
		// Greedy/backtrack interplay: ([^\.]+) must give back to the dot.
		{
			[]Spec{{Op: OpNotDot, Capture: true}, {Op: OpLit, Lit: "."}, {Op: OpNotDot, Capture: true}},
			[]string{"a.b", "a.b.c", "ab", ".", "a.", ".b", "a..b"},
		},
		// .+ gives back across multiple dots (leftmost-first greed).
		{
			[]Spec{{Op: OpAny, Capture: true}, {Op: OpLit, Lit: "."}, {Op: OpNotDot, Capture: true}, {Op: OpLit, Lit: ".net"}},
			[]string{"a.b.c.net", "a.net.b.net", "x.net", "a.b.net"},
		},
		// \d* optional digits, zero-width at both ends.
		{
			[]Spec{{Op: OpAlpha, Capture: true}, {Op: OpDigitsOpt, Capture: true}},
			[]string{"abc", "abc12", "12", "abc12x", ""},
		},
		// Adjacent same-class repetitions split greedily left.
		{
			[]Spec{{Op: OpDigits, Capture: true}, {Op: OpDigitsOpt, Capture: true}},
			[]string{"1", "12", "123", "", "a1"},
		},
		// [^-]+ spanning dots but not dashes.
		{
			[]Spec{{Op: OpNotDash, Capture: true}, {Op: OpLit, Lit: "-"}, {Op: OpAlnum, Capture: true}},
			[]string{"a.b-c1", "a-b-c", "a-", "-b", "a.b.c-xyz9"},
		},
		// Split-CLLI shape: ([a-z]{4})([a-z]{2}) fixed widths.
		{
			[]Spec{{Op: OpAlphaFixed, N: 4, Capture: true}, {Op: OpAlphaFixed, N: 2, Capture: true},
				{Op: OpDigits}, {Op: OpLit, Lit: ".example.com"}},
			[]string{"nycmny83.example.com", "nycmn83.example.com", "nycmnyx83.example.com"},
		},
		// Literal-only program.
		{
			[]Spec{{Op: OpLit, Lit: "router.example.net"}},
			[]string{"router.example.net", "router.example.nex", "xrouter.example.net", ""},
		},
		// Empty program matches only the empty string.
		{
			nil,
			[]string{"", "a"},
		},
	}
	for _, c := range cases {
		for _, in := range c.inputs {
			diff(t, c.specs, in)
		}
	}
}

func TestNonASCIIAndNewlineAgainstStdlib(t *testing.T) {
	specs := []Spec{{Op: OpAny, Capture: true}, {Op: OpLit, Lit: "."}, {Op: OpNotDot, Capture: true}}
	for _, in := range []string{
		"café.net", "a\nb.c", "\n.x", "\xff\xfe.ok", "a.\x80", "日本.jp",
	} {
		diff(t, specs, in)
	}
	notdash := []Spec{{Op: OpNotDash, Capture: true}, {Op: OpLit, Lit: "-"}, {Op: OpAny, Capture: true}}
	for _, in := range []string{"a\n-b", "\xc3\xa9-x", "--"} {
		diff(t, notdash, in)
	}
}

// TestRuneCountingAgainstStdlib pins the divergence the differential
// fuzz target found: stdlib repetition counts are in runes, so adjacent
// negated-class repetitions must not split a multi-byte rune the way a
// byte-wise scan would. "0ی" is three bytes but two runes — three
// one-or-more groups must NOT match it.
func TestRuneCountingAgainstStdlib(t *testing.T) {
	threeNotDot := []Spec{
		{Op: OpNotDot, Capture: true}, {Op: OpNotDot, Capture: true}, {Op: OpNotDot, Capture: true},
	}
	twoAny := []Spec{{Op: OpAny, Capture: true}, {Op: OpAny, Capture: true}}
	mixed := []Spec{{Op: OpAny, Capture: true}, {Op: OpNotDash, Capture: true}, {Op: OpNotDot, Capture: true}}
	inputs := []string{
		"0ی",                    // the fuzz-found witness: 3 bytes, 2 runes
		"é",                     // 2 bytes, 1 rune
		"éé",                    // 4 bytes, 2 runes
		"日本語",                   // 9 bytes, 3 runes
		"a\xffb",                // invalid byte: one U+FFFD unit per byte
		"\xff\xfe",              // two invalid bytes = two units
		"\xe0\x80",              // truncated sequence: forward-decodes as 1+1
		"café.net",              // multi-byte rune mid-label
		"0ی0ی",                  // alternating widths
		strings.Repeat("é", 20), // give-back over many 2-byte units
	}
	for _, specs := range [][]Spec{threeNotDot, twoAny, mixed} {
		for _, in := range inputs {
			diff(t, specs, in)
		}
	}
	// Rune counting composed with literals and positive classes.
	labeled := []Spec{
		{Op: OpNotDot, Capture: true}, {Op: OpLit, Lit: "."},
		{Op: OpAlphaFixed, N: 3, Capture: true},
	}
	for _, in := range []string{"héllo.net", "ی.net", "ی.nété", "日本.jpx"} {
		diff(t, labeled, in)
	}
}

func TestCompileDeclines(t *testing.T) {
	if _, err := Compile([]Spec{{Op: OpAlphaFixed, N: 0}}); err == nil {
		t.Fatal("repeat 0 accepted")
	}
	if _, err := Compile([]Spec{{Op: OpAlphaFixed, N: maxRepeat + 1}}); err == nil {
		t.Fatalf("repeat %d accepted", maxRepeat+1)
	}
	if _, err := Compile([]Spec{{Op: Op(250)}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCapturesSubset(t *testing.T) {
	specs := []Spec{
		{Op: OpAny}, {Op: OpLit, Lit: "."},
		{Op: OpAlphaFixed, N: 3, Capture: true},
		{Op: OpDigits}, {Op: OpLit, Lit: ".alter.net"},
	}
	p, err := Compile(specs)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCapture() != 1 || p.NumSpec() != 5 {
		t.Fatalf("NumCapture=%d NumSpec=%d", p.NumCapture(), p.NumSpec())
	}
	var res Result
	if !p.Run("0.xe-1.gw1.sfo16.alter.net", &res) {
		t.Fatal("no match")
	}
	caps := res.Captures(nil)
	if len(caps) != 1 || caps[0] != "sfo" {
		t.Fatalf("captures = %q, want [sfo]", caps)
	}
}

// TestResultReuse drives one Result through matches of different
// shapes and sizes to ensure scratch resizing is sound.
func TestResultReuse(t *testing.T) {
	p1, _ := Compile([]Spec{{Op: OpAny, Capture: true}, {Op: OpLit, Lit: ".x"}})
	p2, _ := Compile([]Spec{{Op: OpAlpha, Capture: true}})
	var res Result
	for i := 0; i < 3; i++ {
		if !p1.Run("aaaa.bbbb.cccc.x", &res) {
			t.Fatal("p1 no match")
		}
		if got := res.Captures(nil)[0]; got != "aaaa.bbbb.cccc" {
			t.Fatalf("p1 capture %q", got)
		}
		if !p2.Run("zz", &res) {
			t.Fatal("p2 no match")
		}
		if got := res.Captures(nil)[0]; got != "zz" {
			t.Fatalf("p2 capture %q", got)
		}
		if p2.Run("z9", &res) {
			t.Fatal("p2 matched alnum")
		}
	}
}

// TestSteadyStateAllocs asserts the zero-alloc contract for a reused
// Result.
func TestSteadyStateAllocs(t *testing.T) {
	p, _ := Compile([]Spec{
		{Op: OpAny}, {Op: OpLit, Lit: "."},
		{Op: OpAlphaFixed, N: 3, Capture: true},
		{Op: OpDigits}, {Op: OpLit, Lit: ".alter.net"},
	})
	var res Result
	host := "0.xe-1.gw1.sfo16.alter.net"
	p.Run(host, &res) // size the scratch
	allocs := testing.AllocsPerRun(200, func() {
		if !p.Run(host, &res) {
			t.Fatal("no match")
		}
		if res.Part(2) != "sfo" {
			t.Fatal("bad capture")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f/op, want 0", allocs)
	}
}

// TestPathologicalBacktracking: memoization keeps heavy give-back
// cases cheap and correct (stdlib agrees on the verdict).
func TestPathologicalBacktracking(t *testing.T) {
	// ^(.+)\.(.+)\.(.+)\.(.+)\.zz$ over a long dotted non-matching tail.
	specs := []Spec{
		{Op: OpAny, Capture: true}, {Op: OpLit, Lit: "."},
		{Op: OpAny, Capture: true}, {Op: OpLit, Lit: "."},
		{Op: OpAny, Capture: true}, {Op: OpLit, Lit: "."},
		{Op: OpAny, Capture: true}, {Op: OpLit, Lit: ".zz"},
	}
	in := strings.Repeat("ab.", 60) + "yy"
	diff(t, specs, in) // no match, must terminate fast
	diff(t, specs, strings.Repeat("ab.", 60)+"zz")
}

func BenchmarkRunAlterIATA(b *testing.B) {
	p, _ := Compile([]Spec{
		{Op: OpAny}, {Op: OpLit, Lit: "."},
		{Op: OpAlphaFixed, N: 3, Capture: true},
		{Op: OpDigits}, {Op: OpLit, Lit: ".alter.net"},
	})
	var res Result
	host := "0.xe-10-0-0.gw1.sfo16.alter.net"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Run(host, &res) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkStdlibAlterIATA(b *testing.B) {
	re := regexp.MustCompile(`^.+\.([a-z]{3})\d+\.alter\.net$`)
	host := "0.xe-10-0-0.gw1.sfo16.alter.net"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if re.FindStringSubmatch(host) == nil {
			b.Fatal("no match")
		}
	}
}
