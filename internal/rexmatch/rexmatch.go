// Package rexmatch compiles the restricted regex dialect that
// internal/rex renders — anchored sequences of literals, punctuation
// separators, and bounded character classes — into a specialized
// submatch matcher that runs without the general-purpose regexp engine.
//
// The dialect admits a very cheap evaluation strategy. Every component
// is either a fixed string or a greedy repetition of a single byte
// class, so a match is an assignment of one contiguous span per
// component covering the whole input. The engine explores those
// assignments in leftmost-first order (longest span first for greedy
// repetitions, exactly the order the stdlib engine prefers) and
// memoizes failed (component, position) states in a bitset, so the
// scan is a single pass over the product graph: each state is expanded
// at most once, giving O(components × input) worst-case work instead
// of the stdlib engine's NFA simulation, and typically one forward
// scan with no backtracking at all. Successful matches therefore
// report byte-identical submatch spans to regexp.FindStringSubmatch on
// the rendered pattern — a property enforced by a differential fuzz
// target in internal/rex.
//
// The hot path scans bytes, which is equivalent to the stdlib's
// rune-wise scanning whenever every repetition unit is one byte: the
// positive classes ([a-z], \d, [a-z\d]) are pure ASCII, so programs
// without negated classes take the byte path on every input, and any
// program does on pure-ASCII input (the production case — router
// hostnames are ASCII). Equivalence does NOT extend to negated
// classes ([^\.], [^-], the newline-excluding .) over non-ASCII
// input: those match multi-byte runes, and the stdlib counts each
// rune as ONE repetition unit, so byte-wise counting would let
// adjacent repetitions split a rune that the stdlib treats as
// indivisible (found by the differential fuzz target: three adjacent
// ([^\.]+) groups must not match a two-rune three-byte input). Run
// therefore routes negated-class programs over non-ASCII input
// through a slower rune-counting variant of the same search.
//
// Compile declines — returns an error rather than a wrong program —
// any spec sequence outside the dialect (unknown ops, repeat counts
// past the stdlib's {1000} limit); callers fall back to the stdlib
// engine for those. Scratch state (span arrays and the visited bitset)
// lives in a caller-held Result that is reused across calls, so a
// steady-state match allocates nothing.
package rexmatch

import (
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"
)

// Op enumerates the component shapes of the rex dialect.
type Op uint8

// Dialect operations. OpLit covers rex's literal, dot, and dash
// components (all fixed text once rendered); the rest map 1:1 onto the
// class components rex emits.
const (
	OpLit        Op = iota // fixed text, matched byte-for-byte
	OpAny                  // .+   one or more of any byte except '\n'
	OpNotDot               // [^\.]+
	OpNotDash              // [^-]+
	OpAlpha                // [a-z]+
	OpAlphaFixed           // [a-z]{N}
	OpDigits               // \d+
	OpDigitsOpt            // \d*
	OpAlnum                // [a-z\d]+
)

// maxRepeat mirrors the stdlib regexp parser's repetition bound: a
// rendered [a-z]{N} with N past this fails regexp.Compile, so the
// specialized engine must decline it too rather than diverge.
const maxRepeat = 1000

// Spec is one component of a dialect program.
type Spec struct {
	Op      Op
	N       int    // repeat count for OpAlphaFixed
	Capture bool   // whether the component is a capture group
	Lit     string // text for OpLit
}

// Byte-class indices. Index 0 is the literal sentinel; the rest index
// classTabs.
const (
	clsLit = iota
	clsAny
	clsNotDot
	clsNotDash
	clsAlpha
	clsDigit
	clsAlnum
	numCls
)

// classTabs holds one membership table per byte class.
var classTabs [numCls][256]bool

func init() {
	for b := 0; b < 256; b++ {
		classTabs[clsAny][b] = b != '\n'
		classTabs[clsNotDot][b] = b != '.'
		classTabs[clsNotDash][b] = b != '-'
		classTabs[clsAlpha][b] = b >= 'a' && b <= 'z'
		classTabs[clsDigit][b] = b >= '0' && b <= '9'
		classTabs[clsAlnum][b] = (b >= 'a' && b <= 'z') || (b >= '0' && b <= '9')
	}
}

// cspec is a compiled component: either a literal or a greedy
// class repetition with inclusive length bounds.
type cspec struct {
	lit     string
	cls     uint8 // clsLit for literals
	min     int32
	max     int32 // -1 = unbounded
	capture bool
}

// Prog is a compiled dialect program. Immutable and safe for
// concurrent use; per-match scratch lives in the caller's Result.
type Prog struct {
	specs  []cspec
	ncap   int
	minLen int    // sum of minimum component widths: quick length reject
	maxLen int    // sum of maximum widths, -1 when any is unbounded
	head   string // leading literal, "" when the program starts elsewhere
	tail   string // trailing literal, "" when the program ends elsewhere
	hasNeg bool   // any negated class: rune-counting needed on non-ASCII input
}

// Compile translates a spec sequence into a program, or reports why the
// sequence is outside the dialect (the caller's cue to fall back to the
// stdlib engine).
func Compile(specs []Spec) (*Prog, error) {
	p := &Prog{specs: make([]cspec, 0, len(specs))}
	for i, s := range specs {
		var c cspec
		c.capture = s.Capture
		switch s.Op {
		case OpLit:
			c.lit = s.Lit
			c.cls = clsLit
			c.min = int32(len(s.Lit))
			c.max = c.min
		case OpAny:
			c.cls, c.min, c.max = clsAny, 1, -1
		case OpNotDot:
			c.cls, c.min, c.max = clsNotDot, 1, -1
		case OpNotDash:
			c.cls, c.min, c.max = clsNotDash, 1, -1
		case OpAlpha:
			c.cls, c.min, c.max = clsAlpha, 1, -1
		case OpAlphaFixed:
			if s.N < 1 || s.N > maxRepeat {
				return nil, fmt.Errorf("rexmatch: spec %d: repeat %d outside [1,%d]", i, s.N, maxRepeat)
			}
			c.cls, c.min, c.max = clsAlpha, int32(s.N), int32(s.N)
		case OpDigits:
			c.cls, c.min, c.max = clsDigit, 1, -1
		case OpDigitsOpt:
			c.cls, c.min, c.max = clsDigit, 0, -1
		case OpAlnum:
			c.cls, c.min, c.max = clsAlnum, 1, -1
		default:
			return nil, fmt.Errorf("rexmatch: spec %d: unknown op %d", i, s.Op)
		}
		if s.Capture {
			p.ncap++
		}
		p.specs = append(p.specs, c)
	}
	p.minLen, p.maxLen = 0, 0
	for _, c := range p.specs {
		p.hasNeg = p.hasNeg || c.cls == clsAny || c.cls == clsNotDot || c.cls == clsNotDash
		p.minLen += int(c.min)
		if p.maxLen >= 0 {
			if c.max < 0 {
				p.maxLen = -1
			} else {
				p.maxLen += int(c.max)
			}
		}
	}
	if n := len(p.specs); n > 0 {
		if c := p.specs[0]; c.cls == clsLit {
			p.head = c.lit
		}
		if c := p.specs[n-1]; c.cls == clsLit {
			p.tail = c.lit
		}
	}
	return p, nil
}

// NumSpec returns the number of components in the program.
func (p *Prog) NumSpec() int { return len(p.specs) }

// NumCapture returns the number of captured components.
func (p *Prog) NumCapture() int { return p.ncap }

// Result holds the component spans of a successful Run plus the
// engine's scratch state. A Result may be reused across calls (that is
// the point: steady-state matching allocates nothing) but is only
// valid until the next Run that writes into it, and must not be shared
// between concurrent matchers.
type Result struct {
	in      string
	prog    *Prog
	starts  []int32
	lens    []int32
	visited []uint64
}

// grow sizes the scratch for an m-spec program over an n-byte input.
func (r *Result) grow(m, n int) {
	if cap(r.starts) < m {
		r.starts = make([]int32, m)
		r.lens = make([]int32, m)
	}
	r.starts = r.starts[:m]
	r.lens = r.lens[:m]
	words := (m*(n+1) + 63) / 64
	if cap(r.visited) < words {
		r.visited = make([]uint64, words)
	}
	r.visited = r.visited[:words]
	clear(r.visited)
}

// Part returns the substring component i matched in the last
// successful Run.
func (r *Result) Part(i int) string {
	return r.in[r.starts[i] : r.starts[i]+r.lens[i]]
}

// Parts appends every component's matched substring to dst — the
// shape of the all-captures probe regex the learning pipeline's
// specialization phase uses.
func (r *Result) Parts(dst []string) []string {
	for i := range r.prog.specs {
		dst = append(dst, r.Part(i))
	}
	return dst
}

// Captures appends the captured components' substrings to dst, in
// component order — the submatches regexp.FindStringSubmatch would
// report (minus the full-match element).
func (r *Result) Captures(dst []string) []string {
	for i, c := range r.prog.specs {
		if c.capture {
			dst = append(dst, r.Part(i))
		}
	}
	return dst
}

// resultPool backs the convenience MatchString entry point; hot-path
// callers hold their own Results.
var resultPool = sync.Pool{New: func() any { return new(Result) }}

// MatchString reports whether the program matches the whole input.
func (p *Prog) MatchString(in string) bool {
	res := resultPool.Get().(*Result)
	ok := p.Run(in, res)
	resultPool.Put(res)
	return ok
}

// Run matches the program against the whole input (the dialect is
// implicitly ^…$-anchored). On success the Result holds every
// component's span; on failure its contents are unspecified.
func (p *Prog) Run(in string, res *Result) bool {
	n := len(in)
	if n < p.minLen || (p.maxLen >= 0 && n > p.maxLen) {
		return false
	}
	if p.head != "" && !strings.HasPrefix(in, p.head) {
		return false
	}
	if p.tail != "" && !strings.HasSuffix(in, p.tail) {
		return false
	}
	res.grow(len(p.specs), n)
	// The byte-wise search is exact whenever every repetition unit is
	// one byte; only negated classes can consume multi-byte runes, and
	// the stdlib counts those as single units, so such programs take
	// the rune-counting search on non-ASCII input.
	ok := false
	if p.hasNeg && !isASCII(in) {
		ok = p.matchRunes(in, res)
	} else {
		ok = p.match(in, res)
	}
	if !ok {
		return false
	}
	res.in = in
	res.prog = p
	return true
}

// isASCII reports whether the input is free of multi-byte runes (and
// of invalid UTF-8, which the stdlib also decodes one byte at a time
// but as U+FFFD units).
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// match runs the memoized leftmost-first search. starts/lens in res
// describe the successful path when it returns true.
func (p *Prog) match(in string, res *Result) bool {
	m := len(p.specs)
	n := len(in)
	starts, lens, visited := res.starts, res.lens, res.visited
	stride := n + 1
	ci, pos := 0, 0
	for {
		// Forward: place component ci at pos with its greediest width.
		if ci == m {
			if pos == n {
				return true
			}
			// Input left over: fall through to backtracking.
		} else if bit := ci*stride + pos; visited[bit>>6]&(1<<(bit&63)) == 0 {
			sp := &p.specs[ci]
			starts[ci] = int32(pos)
			if sp.cls == clsLit {
				if len(sp.lit) <= n-pos && in[pos:pos+len(sp.lit)] == sp.lit {
					lens[ci] = int32(len(sp.lit))
					pos += len(sp.lit)
					ci++
					continue
				}
				visited[bit>>6] |= 1 << (bit & 63)
			} else {
				tab := &classTabs[sp.cls]
				limit := n - pos
				if sp.max >= 0 && int(sp.max) < limit {
					limit = int(sp.max)
				}
				run := 0
				for run < limit && tab[in[pos+run]] {
					run++
				}
				if run >= int(sp.min) {
					lens[ci] = int32(run)
					pos += run
					ci++
					continue
				}
				visited[bit>>6] |= 1 << (bit & 63)
			}
		}
		// Backtrack: shrink the most recent repetition that still has
		// slack; components exhausted at their position are memoized as
		// dead states so no other path re-explores them.
		for {
			ci--
			if ci < 0 {
				return false
			}
			sp := &p.specs[ci]
			pos = int(starts[ci])
			if sp.cls != clsLit && lens[ci] > sp.min {
				lens[ci]--
				pos += int(lens[ci])
				ci++
				break
			}
			bit := ci*stride + pos
			visited[bit>>6] |= 1 << (bit & 63)
		}
	}
}

// matchRunes is the rune-counting variant of match, used for programs
// with negated classes on non-ASCII input. Positions and spans stay in
// bytes (Part slices the input), but repetition bounds count stdlib
// units: one unit per rune, with each invalid-UTF-8 byte a one-byte
// U+FFFD unit, exactly utf8.DecodeRuneInString's decomposition. The
// unit decomposition from a given byte offset is deterministic, so the
// memo bitset over (component, byte position) states stays sound, and
// shrinking a repetition by one unit can rescan its already-matched
// bytes instead of carrying per-width scratch.
func (p *Prog) matchRunes(in string, res *Result) bool {
	m := len(p.specs)
	n := len(in)
	starts, lens, visited := res.starts, res.lens, res.visited
	stride := n + 1
	ci, pos := 0, 0
	for {
		if ci == m {
			if pos == n {
				return true
			}
		} else if bit := ci*stride + pos; visited[bit>>6]&(1<<(bit&63)) == 0 {
			sp := &p.specs[ci]
			starts[ci] = int32(pos)
			if sp.cls == clsLit {
				if len(sp.lit) <= n-pos && in[pos:pos+len(sp.lit)] == sp.lit {
					lens[ci] = int32(len(sp.lit))
					pos += len(sp.lit)
					ci++
					continue
				}
				visited[bit>>6] |= 1 << (bit & 63)
			} else {
				tab := &classTabs[sp.cls]
				// Positive classes (clsAlpha and later in the index
				// order) are pure ASCII and never match a multi-byte
				// rune; negated classes exclude one ASCII character,
				// so every non-ASCII rune (and U+FFFD) matches.
				neg := sp.cls < clsAlpha
				blen, units := 0, 0
				for pos+blen < n && (sp.max < 0 || units < int(sp.max)) {
					if c := in[pos+blen]; c < utf8.RuneSelf {
						if !tab[c] {
							break
						}
						blen++
					} else if neg {
						_, size := utf8.DecodeRuneInString(in[pos+blen:])
						blen += size
					} else {
						break
					}
					units++
				}
				if units >= int(sp.min) {
					lens[ci] = int32(blen)
					pos += blen
					ci++
					continue
				}
				visited[bit>>6] |= 1 << (bit & 63)
			}
		}
		for {
			ci--
			if ci < 0 {
				return false
			}
			sp := &p.specs[ci]
			pos = int(starts[ci])
			if sp.cls != clsLit && lens[ci] > 0 {
				nl, nu := runeBack(in, pos, int(lens[ci]))
				if nu >= int(sp.min) {
					lens[ci] = int32(nl)
					pos += nl
					ci++
					break
				}
			}
			bit := ci*stride + pos
			visited[bit>>6] |= 1 << (bit & 63)
		}
	}
}

// runeBack rescans a matched repetition of blen bytes starting at
// start and returns the byte length and unit count of the run shrunk
// by one unit. Rescanning forward reproduces the exact decomposition
// the greedy scan used; decoding backwards would not (an invalid lead
// byte followed by a continuation byte is two forward units but one
// ambiguous backward step).
func runeBack(in string, start, blen int) (newLen, newUnits int) {
	prev, units, b := 0, 0, 0
	for b < blen {
		prev = b
		if in[start+b] < utf8.RuneSelf {
			b++
		} else {
			_, size := utf8.DecodeRuneInString(in[start+b:])
			b += size
		}
		units++
	}
	return prev, units - 1
}
