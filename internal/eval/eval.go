// Package eval reproduces the paper's evaluation: every table and figure
// in §6 (plus fig. 5 from §5.1.4 and the §6.1 ablation), computed over
// synthetic ITDK worlds with retained ground truth. Each experiment has
// a Compute function returning a typed result and a Format method that
// prints rows shaped like the paper's.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/synth"
)

// TruePositiveKm is the paper's correctness criterion: an inference is a
// true positive when it lands within 40 km of ground truth (§6.1, after
// DRoP).
const TruePositiveKm = 40.0

// Within reports whether an inferred position is a true positive for a
// true position.
func Within(inferred, truth geo.LatLong) bool {
	return geo.DistanceKm(inferred, truth) <= TruePositiveKm
}

// MethodResult tallies one geolocation method over a hostname set.
type MethodResult struct {
	TP, FP, FN int
}

// Total returns the number of evaluated hostnames.
func (m MethodResult) Total() int { return m.TP + m.FP + m.FN }

// TPPct is the percentage of hostnames correctly geolocated.
func (m MethodResult) TPPct() float64 { return pct(m.TP, m.Total()) }

// FPPct is the percentage of hostnames incorrectly geolocated.
func (m MethodResult) FPPct() float64 { return pct(m.FP, m.Total()) }

// FNPct is the percentage of hostnames with no answer.
func (m MethodResult) FNPct() float64 { return pct(m.FN, m.Total()) }

// PPV is TP / (TP+FP) — precision over answered hostnames.
func (m MethodResult) PPV() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Add accumulates another result.
func (m *MethodResult) Add(o MethodResult) {
	m.TP += o.TP
	m.FP += o.FP
	m.FN += o.FN
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// quantile returns the p-quantile (0..1) of a sorted slice.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF summarises a distribution at standard quantiles.
type CDF struct {
	N         int
	Quantiles map[int]float64 // percent -> value
}

func makeCDF(values []float64) CDF {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	q := make(map[int]float64)
	for _, p := range []int{10, 25, 50, 75, 80, 90, 95} {
		q[p] = quantile(sorted, float64(p)/100)
	}
	return CDF{N: len(sorted), Quantiles: q}
}

// Format renders the CDF quantiles on one line.
func (c CDF) Format(unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d ", c.N)
	for _, p := range []int{10, 25, 50, 75, 80, 90, 95} {
		fmt.Fprintf(&b, " p%d=%.1f%s", p, c.Quantiles[p], unit)
	}
	return b.String()
}

// closestVPRTTms returns the theoretical best-case RTT from the nearest
// vantage point to a location — the paper's "RTT from the closest VP"
// proxy for VP density (figs. 10a, 11).
func closestVPRTTms(w *synth.World, pos geo.LatLong) float64 {
	best := math.Inf(1)
	for _, vp := range w.Matrix.VPs() {
		if r := geo.MinRTTms(vp.Pos, pos); r < best {
			best = r
		}
	}
	return best
}

// hostRouterIndex maps hostname -> router ID for a world.
func hostRouterIndex(w *synth.World) map[string]string {
	ix := make(map[string]string)
	for _, r := range w.Corpus.Routers {
		for _, ifc := range r.Interfaces {
			if ifc.Hostname != "" {
				ix[ifc.Hostname] = r.ID
			}
		}
	}
	return ix
}

// usableNC returns the learned convention for a suffix, if any.
func usableNC(res *core.Result, suffix string) *core.NamingConvention {
	return res.NCs[suffix]
}
