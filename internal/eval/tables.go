package eval

import (
	"fmt"
	"sort"
	"strings"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/synth"
)

// Table1Row summarises one ITDK (paper Table 1).
type Table1Row struct {
	Name         string
	Routers      int
	WithHostname int
	WithRTT      int
	VPs          int
}

// Table1 is the ITDK summary table.
type Table1 struct{ Rows []Table1Row }

// ComputeTable1 summarises each world.
func ComputeTable1(worlds []*synth.World) Table1 {
	var t Table1
	for _, w := range worlds {
		row := Table1Row{Name: w.Name, VPs: len(w.Matrix.VPs())}
		for _, r := range w.Corpus.Routers {
			row.Routers++
			if r.HasHostname() {
				row.WithHostname++
			}
			if w.Matrix.HasPing(r.ID) {
				row.WithRTT++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table.
func (t Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %14s %14s %6s\n", "ITDK", "routers", "w/hostname", "w/RTT", "VPs")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %8d %8d (%4.1f%%) %8d (%4.1f%%) %6d\n",
			r.Name, r.Routers,
			r.WithHostname, pct(r.WithHostname, r.Routers),
			r.WithRTT, pct(r.WithRTT, r.Routers), r.VPs)
	}
	return b.String()
}

// Table2Row is one world's NC coverage (paper Table 2).
type Table2Row struct {
	Name                string
	Routers             int
	WithHostname        int
	WithApparentGeohint int
	Geolocated          int
}

// Table2 is the usable-NC coverage table.
type Table2 struct{ Rows []Table2Row }

// ComputeTable2 runs the pipeline on each world and reports coverage.
func ComputeTable2(worlds []*synth.World, results []*core.Result) Table2 {
	var t Table2
	for i, w := range worlds {
		res := results[i]
		row := Table2Row{Name: w.Name}
		for _, r := range w.Corpus.Routers {
			row.Routers++
			if r.HasHostname() {
				row.WithHostname++
			}
		}
		row.WithApparentGeohint = res.RoutersWithGeohint
		row.Geolocated = res.RoutersGeolocated
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table.
func (t Table2) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %12s %14s %12s\n",
		"ITDK", "routers", "w/hostname", "w/geohint", "geolocated")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %8d %6d (%4.1f%%) %6d (%4.1f%%) %6d (%4.1f%%)\n",
			r.Name, r.Routers,
			r.WithHostname, pct(r.WithHostname, r.Routers),
			r.WithApparentGeohint, pct(r.WithApparentGeohint, r.Routers),
			r.Geolocated, pct(r.Geolocated, r.Routers))
	}
	return b.String()
}

// Table3Row is one world's NC classification counts (paper Table 3).
type Table3Row struct {
	Name                  string
	Good, Promising, Poor int
}

// Total is the number of suffixes with an NC.
func (r Table3Row) Total() int { return r.Good + r.Promising + r.Poor }

// Table3 is the NC classification table.
type Table3 struct{ Rows []Table3Row }

// ComputeTable3 classifies each world's NCs.
func ComputeTable3(worlds []*synth.World, results []*core.Result) Table3 {
	var t Table3
	for i, w := range worlds {
		row := Table3Row{Name: w.Name}
		for _, nc := range results[i].NCs {
			switch nc.Class {
			case core.Good:
				row.Good++
			case core.Promising:
				row.Promising++
			default:
				row.Poor++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table.
func (t Table3) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %6s\n", "ITDK", "good", "promising", "poor", "total")
	for _, r := range t.Rows {
		n := r.Total()
		fmt.Fprintf(&b, "%-14s %6d (%4.1f%%) %6d (%4.1f%%) %6d (%4.1f%%) %6d\n",
			r.Name, r.Good, pct(r.Good, n), r.Promising, pct(r.Promising, n),
			r.Poor, pct(r.Poor, n), n)
	}
	return b.String()
}

// Table4Cell counts NCs by geohint type and annotation (paper Table 4).
type Table4Cell struct {
	Type       geodict.HintType
	Annotation string // "none", "state", "country", "both"
	Good       int
	Promising  int
}

// Table4 is the annotation breakdown for one world.
type Table4 struct {
	Cells          []Table4Cell
	GoodTotal      int
	PromisingTotal int
}

// ComputeTable4 breaks down the good/promising NCs of one result.
func ComputeTable4(res *core.Result) Table4 {
	counts := make(map[geodict.HintType]map[string][2]int)
	bump := func(t geodict.HintType, ann string, cls core.Classification) {
		m := counts[t]
		if m == nil {
			m = make(map[string][2]int)
			counts[t] = m
		}
		c := m[ann]
		if cls == core.Good {
			c[0]++
		} else {
			c[1]++
		}
		m[ann] = c
	}
	var t4 Table4
	for _, nc := range res.NCs {
		if !nc.Class.Usable() {
			continue
		}
		if nc.Class == core.Good {
			t4.GoodTotal++
		} else {
			t4.PromisingTotal++
		}
		ann := "none"
		switch {
		case nc.AnnotatesState && nc.AnnotatesCountry:
			ann = "both"
		case nc.AnnotatesState:
			ann = "state"
		case nc.AnnotatesCountry:
			ann = "country"
		}
		for _, ht := range nc.HintTypes() {
			bump(ht, ann, nc.Class)
		}
	}
	var types []geodict.HintType
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ht := range types {
		for _, ann := range []string{"none", "state", "country", "both"} {
			c, ok := counts[ht][ann]
			if !ok {
				continue
			}
			t4.Cells = append(t4.Cells, Table4Cell{
				Type: ht, Annotation: ann, Good: c[0], Promising: c[1]})
		}
	}
	return t4
}

// Format renders the table.
func (t Table4) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %14s %14s\n", "geohint", "annotation", "good", "promising")
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-10s %-10s %6d (%4.1f%%) %6d (%4.1f%%)\n",
			c.Type, c.Annotation,
			c.Good, pct(c.Good, t.GoodTotal),
			c.Promising, pct(c.Promising, t.PromisingTotal))
	}
	fmt.Fprintf(&b, "%-10s %-10s %6d %15d\n", "overall", "", t.GoodTotal, t.PromisingTotal)
	return b.String()
}

// Table5Row is one frequently-learned 3-letter geohint (paper Table 5).
type Table5Row struct {
	Hint        string
	Suffixes    int    // suffixes whose NC learned this hint
	Location    string // the learned meaning
	IATACollide bool   // an airport holds this IATA code elsewhere
	NearestIATA string // dictionary code nearest the learned location
}

// Table5 lists learned hints shared across suffixes.
type Table5 struct{ Rows []Table5Row }

// ComputeTable5 aggregates learned 3-letter hints across a result's NCs.
func ComputeTable5(res *core.Result, dict *geodict.Dictionary, minSuffixes int) Table5 {
	type agg struct {
		count int
		loc   *geodict.Location
	}
	m := make(map[string]*agg)
	// Iterate suffixes in sorted order: when two suffixes learn the same
	// hint with different locations, the reported location is the
	// first-seen one, which must not depend on map iteration order.
	suffixes := make([]string, 0, len(res.NCs))
	for suffix := range res.NCs {
		suffixes = append(suffixes, suffix)
	}
	sort.Strings(suffixes)
	for _, suffix := range suffixes {
		for _, lh := range res.NCs[suffix].Learned {
			if lh.Type != geodict.HintIATA || len(lh.Hint) != 3 {
				continue
			}
			a := m[lh.Hint]
			if a == nil {
				a = &agg{loc: lh.Loc}
				m[lh.Hint] = a
			}
			a.count++
		}
	}
	var rows []Table5Row
	for hint, a := range m {
		if a.count < minSuffixes {
			continue
		}
		rows = append(rows, Table5Row{
			Hint: hint, Suffixes: a.count, Location: a.loc.String(),
			IATACollide: len(dict.IATA(hint)) > 0,
			NearestIATA: nearestAirport(dict, a.loc.Pos),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Suffixes != rows[j].Suffixes {
			return rows[i].Suffixes > rows[j].Suffixes
		}
		return rows[i].Hint < rows[j].Hint
	})
	return Table5{Rows: rows}
}

func nearestAirport(d *geodict.Dictionary, pos geo.LatLong) string {
	best := ""
	bestKm := 0.0
	for _, a := range d.Airports() {
		km := geo.DistanceKm(a.Loc.Pos, pos)
		if best == "" || km < bestKm {
			best, bestKm = a.IATA, km
		}
	}
	return best
}

// Format renders the table.
func (t Table5) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %4s %-26s %-8s %s\n", "hint", "#", "location", "collide", "nearest-iata")
	for _, r := range t.Rows {
		col := " "
		if r.IATACollide {
			col = "x"
		}
		fmt.Fprintf(&b, "%-6s %4d %-26s %-8s %s\n", r.Hint, r.Suffixes, r.Location, col, r.NearestIATA)
	}
	return b.String()
}

// Table6Row validates one suffix's learned hints against ground truth
// (paper Table 6).
type Table6Row struct {
	Suffix  string
	Correct int
	Total   int
}

// Table6 is the learned-geohint validation table.
type Table6 struct {
	Rows    []Table6Row
	Correct int
	Total   int
}

// ComputeTable6 checks every learned hint against the generator's
// intent, standing in for the paper's operator validation.
func ComputeTable6(w *synth.World, res *core.Result) Table6 {
	var t Table6
	var suffixes []string
	for suffix := range res.NCs {
		suffixes = append(suffixes, suffix)
	}
	sort.Strings(suffixes)
	for _, suffix := range suffixes {
		nc := res.NCs[suffix]
		if len(nc.Learned) == 0 {
			continue
		}
		truth := w.TruthHints[suffix]
		row := Table6Row{Suffix: suffix}
		for _, lh := range nc.Learned {
			row.Total++
			hintKey := lh.Hint
			if want, ok := truth[hintKey]; ok && Within(lh.Loc.Pos, want.Pos) {
				row.Correct++
			}
		}
		t.Rows = append(t.Rows, row)
		t.Correct += row.Correct
		t.Total += row.Total
	}
	return t
}

// Format renders the table.
func (t Table6) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s\n", "suffix", "verified")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %3d/%-3d (%.1f%%)\n", r.Suffix, r.Correct, r.Total,
			pct(r.Correct, r.Total))
	}
	fmt.Fprintf(&b, "%-22s %3d/%-3d (%.1f%%)\n", "overall", t.Correct, t.Total,
		pct(t.Correct, t.Total))
	return b.String()
}
