package eval

import (
	"strings"
	"sync"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/synth"
)

// The test world is expensive enough to share across tests.
var (
	worldOnce sync.Once
	testWorld *synth.World
	testRes   *core.Result
)

func sharedWorld(t *testing.T) (*synth.World, *core.Result) {
	t.Helper()
	worldOnce.Do(func() {
		w, res, err := RunOne("ipv4-aug2020", 1.0, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		testWorld, testRes = w, res
	})
	if testWorld == nil {
		t.Fatal("world init failed")
	}
	return testWorld, testRes
}

func TestWithin(t *testing.T) {
	a := geo.LatLong{Lat: 39.0438, Long: -77.4874}
	b := geo.LatLong{Lat: 39.0438, Long: -77.9} // ~36km west
	c := geo.LatLong{Lat: 39.0438, Long: -78.5} // ~88km west
	if !Within(a, a) || !Within(a, b) {
		t.Error("nearby points should be within 40km")
	}
	if Within(a, c) {
		t.Error("distant points should not be within 40km")
	}
}

func TestMethodResultMath(t *testing.T) {
	m := MethodResult{TP: 8, FP: 1, FN: 1}
	if m.Total() != 10 || m.TPPct() != 80 || m.FPPct() != 10 || m.FNPct() != 10 {
		t.Errorf("percentages wrong: %+v", m)
	}
	if ppv := m.PPV(); ppv < 0.88 || ppv > 0.89 {
		t.Errorf("PPV = %f", ppv)
	}
	var z MethodResult
	if z.PPV() != 0 || z.TPPct() != 0 {
		t.Error("zero result should yield zeros")
	}
	z.Add(m)
	if z.TP != 8 {
		t.Error("Add failed")
	}
}

func TestTable1(t *testing.T) {
	w, _ := sharedWorld(t)
	t1 := ComputeTable1([]*synth.World{w})
	if len(t1.Rows) != 1 {
		t.Fatal("want one row")
	}
	r := t1.Rows[0]
	if r.Routers == 0 || r.WithHostname == 0 || r.WithRTT == 0 || r.VPs == 0 {
		t.Errorf("row has zeros: %+v", r)
	}
	if r.WithHostname > r.Routers || r.WithRTT > r.Routers {
		t.Errorf("counts exceed total: %+v", r)
	}
	// Roughly 70-90% of routers respond (DelayModel defaults).
	frac := float64(r.WithRTT) / float64(r.Routers)
	if frac < 0.6 || frac > 0.99 {
		t.Errorf("RTT fraction = %.2f", frac)
	}
	if !strings.Contains(t1.Format(), "ipv4-aug2020") {
		t.Error("Format should include world name")
	}
}

func TestTable2And3(t *testing.T) {
	w, res := sharedWorld(t)
	t2 := ComputeTable2([]*synth.World{w}, []*core.Result{res})
	r := t2.Rows[0]
	if r.WithApparentGeohint == 0 || r.Geolocated == 0 {
		t.Errorf("coverage zeros: %+v", r)
	}
	if r.Geolocated > r.WithApparentGeohint {
		t.Errorf("geolocated %d > with geohint %d", r.Geolocated, r.WithApparentGeohint)
	}
	t3 := ComputeTable3([]*synth.World{w}, []*core.Result{res})
	r3 := t3.Rows[0]
	if r3.Total() == 0 || r3.Good == 0 {
		t.Errorf("classification zeros: %+v", r3)
	}
	if !strings.Contains(t2.Format(), "%") || !strings.Contains(t3.Format(), "good") {
		t.Error("formatting broken")
	}
}

func TestTable4(t *testing.T) {
	_, res := sharedWorld(t)
	t4 := ComputeTable4(res)
	if t4.GoodTotal == 0 || len(t4.Cells) == 0 {
		t.Fatalf("table4 empty: %+v", t4)
	}
	sum := 0
	for _, c := range t4.Cells {
		sum += c.Good
	}
	if sum < t4.GoodTotal {
		t.Errorf("cells cover %d < %d good NCs", sum, t4.GoodTotal)
	}
	out := t4.Format()
	if !strings.Contains(out, "iata") && !strings.Contains(out, "clli") {
		t.Errorf("format missing hint types:\n%s", out)
	}
}

func TestTable5(t *testing.T) {
	w, res := sharedWorld(t)
	t5 := ComputeTable5(res, w.Dict, 1)
	// The generator invents IATA-style custom hints, so some should be
	// learned.
	if len(t5.Rows) == 0 {
		t.Fatal("no learned 3-letter hints")
	}
	for _, r := range t5.Rows {
		if len(r.Hint) != 3 || r.Suffixes < 1 || r.NearestIATA == "" {
			t.Errorf("malformed row: %+v", r)
		}
	}
	if !strings.Contains(t5.Format(), t5.Rows[0].Hint) {
		t.Error("format missing hint")
	}
}

func TestTable6(t *testing.T) {
	w, res := sharedWorld(t)
	t6 := ComputeTable6(w, res)
	if t6.Total == 0 {
		t.Fatal("no learned hints validated")
	}
	frac := float64(t6.Correct) / float64(t6.Total)
	// Paper: 78.6% of learned hints verified; our VP density is lower,
	// accept a broad band but demand clear signal.
	if frac < 0.5 {
		t.Errorf("learned hints mostly wrong: %d/%d", t6.Correct, t6.Total)
	}
	if !strings.Contains(t6.Format(), "overall") {
		t.Error("format missing overall row")
	}
}

func TestFig5(t *testing.T) {
	w, _ := sharedWorld(t)
	f := ComputeFig5(w)
	if f.MedianPing <= 0 || f.MedianTrace <= 0 {
		t.Fatalf("medians: %+v", f)
	}
	// Traceroute RTTs must be substantially larger than ping RTTs — the
	// paper's headline (4.25x RTT, 18x area by πr²).
	if f.MedianTrace < 1.5*f.MedianPing {
		t.Errorf("trace median %.1f not >> ping median %.1f", f.MedianTrace, f.MedianPing)
	}
	if f.AreaRatio < 2 {
		t.Errorf("area ratio %.1f too small", f.AreaRatio)
	}
	if f.FracOneTraceVP <= 0.2 || f.FracOneTraceVP >= 0.95 {
		t.Errorf("one-VP fraction = %.2f", f.FracOneTraceVP)
	}
	if f.FracMostVPsPing <= 0.5 {
		t.Errorf("most-VPs fraction = %.2f", f.FracMostVPsPing)
	}
	if !strings.Contains(f.Format(), "fig5a") {
		t.Error("format broken")
	}
}

func TestFig9Shapes(t *testing.T) {
	w, res := sharedWorld(t)
	f := ComputeFig9(w, res)
	if len(f.Suffixes) == 0 {
		t.Fatal("no suffixes evaluated")
	}
	hoiho := f.Overall["hoiho"]
	dropR := f.Overall["drop"]
	hlocR := f.Overall["hloc"]
	undnsR := f.Overall["undns"]
	if hoiho.Total() == 0 {
		t.Fatal("no hostnames evaluated")
	}
	// The paper's ordering: hoiho > hloc > drop on TP%.
	if hoiho.TPPct() <= dropR.TPPct() {
		t.Errorf("hoiho TP %.1f%% should beat drop %.1f%%", hoiho.TPPct(), dropR.TPPct())
	}
	if hoiho.TPPct() <= hlocR.TPPct() {
		t.Errorf("hoiho TP %.1f%% should beat hloc %.1f%%", hoiho.TPPct(), hlocR.TPPct())
	}
	// Hoiho should correctly geolocate the large majority.
	if hoiho.TPPct() < 75 {
		t.Errorf("hoiho TP%% = %.1f, want >= 75", hoiho.TPPct())
	}
	// undns: highest precision (hand-curated) but incomplete coverage.
	if undnsR.PPV() < hoiho.PPV()-0.05 {
		t.Errorf("undns PPV %.2f should rival hoiho %.2f", undnsR.PPV(), hoiho.PPV())
	}
	if undnsR.FNPct() <= hoiho.FNPct() {
		t.Errorf("undns FN %.1f%% should exceed hoiho FN %.1f%% (stale partial DB)",
			undnsR.FNPct(), hoiho.FNPct())
	}
	out := f.Format()
	if !strings.Contains(out, "OVERALL") || !strings.Contains(out, "PPV") {
		t.Error("format broken")
	}
}

func TestFig10(t *testing.T) {
	w, res := sharedWorld(t)
	f := ComputeFig10(w, res)
	if f.ClosestVPRTT.N == 0 {
		t.Fatal("no learned hints")
	}
	if f.AirportKm.N > 0 {
		// Learned IATA hints that collide with real codes should mostly
		// be far from the colliding airport (paper: 50% >= 7600km).
		if f.AirportKm.Quantiles[50] < 100 {
			t.Errorf("median collision distance %.0fkm suspiciously small",
				f.AirportKm.Quantiles[50])
		}
	}
	if !strings.Contains(f.Format(), "fig10a") {
		t.Error("format broken")
	}
}

func TestFig11(t *testing.T) {
	w, res := sharedWorld(t)
	f := ComputeFig11(w, res)
	if len(f.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(f.Buckets))
	}
	all := f.Buckets[3]
	if all.Total == 0 {
		t.Fatal("no learned hints")
	}
	// Correctness should not increase as the RTT bound loosens.
	for i := 1; i < len(f.Buckets); i++ {
		if f.Buckets[i].Total < f.Buckets[i-1].Total {
			t.Errorf("cumulative totals must be monotone: %+v", f.Buckets)
		}
	}
	if !strings.Contains(f.Format(), "fig11") {
		t.Error("format broken")
	}
}

func TestAblation(t *testing.T) {
	w, res := sharedWorld(t)
	noLearn, err := RunWorldNoLearn(w)
	if err != nil {
		t.Fatal(err)
	}
	a := ComputeAblation(w, res, noLearn)
	// Learning custom hints must improve correctness (paper: 94.0% vs
	// 82.4%).
	if a.With.TPPct() <= a.Without.TPPct() {
		t.Errorf("learning should improve TP%%: with=%.1f without=%.1f",
			a.With.TPPct(), a.Without.TPPct())
	}
	if !strings.Contains(a.Format(), "with") {
		t.Error("format broken")
	}
}

func TestBuildUndnsCoverage(t *testing.T) {
	w, _ := sharedWorld(t)
	full := BuildUndnsRuleset(w, 1.0, 1)
	partial := BuildUndnsRuleset(w, 0.3, 1)
	if full.Suffixes() == 0 {
		t.Fatal("no rules built")
	}
	if partial.Suffixes() > full.Suffixes() {
		t.Error("partial coverage cannot exceed full")
	}
}

func TestRunSuiteScaling(t *testing.T) {
	s, err := Run([]string{"ipv6-nov2020"}, 0.5, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Worlds) != 1 || len(s.Results) != 1 {
		t.Fatal("suite size wrong")
	}
	if _, err := Run([]string{"bogus"}, 1, core.DefaultConfig()); err == nil {
		t.Error("unknown preset should error")
	}
}
