package eval

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"hoiho/internal/baseline/drop"
	"hoiho/internal/baseline/hloc"
	"hoiho/internal/baseline/undns"
	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/synth"
)

// Fig5 summarises the value of followup pings over traceroute RTTs
// (paper fig. 5): the CDFs of minimum ping and traceroute RTTs per
// responsive router, the implied search-area ratio, and how many VPs
// observe each router.
type Fig5 struct {
	PingCDF                 CDF
	TraceCDF                CDF
	MedianPing, MedianTrace float64
	AreaRatio               float64 // (median trace / median ping)^2
	// FracOneTraceVP is the fraction of routers observed by exactly one
	// VP in traceroute (paper: 35.8%).
	FracOneTraceVP float64
	// FracMostVPsPing is the fraction of ping-responsive routers with
	// samples from >= 90% of VPs (paper: 89.4% of routers from all VPs).
	FracMostVPsPing float64
}

// ComputeFig5 evaluates the measurement campaign of one world.
func ComputeFig5(w *synth.World) Fig5 {
	var pings, traces []float64
	oneTrace, traced := 0, 0
	most, respond := 0, 0
	nVPs := len(w.Matrix.VPs())
	for _, r := range w.Corpus.Routers {
		pm := w.Matrix.PingMeasurements(r.ID)
		tm := w.Matrix.TraceMeasurements(r.ID)
		if len(tm) > 0 {
			traced++
			traces = append(traces, tm[0].Sample.RTTms)
			if len(tm) == 1 {
				oneTrace++
			}
		}
		if len(pm) > 0 {
			respond++
			pings = append(pings, pm[0].Sample.RTTms)
			if float64(len(pm)) >= 0.9*float64(nVPs) {
				most++
			}
		}
	}
	f := Fig5{PingCDF: makeCDF(pings), TraceCDF: makeCDF(traces)}
	f.MedianPing = f.PingCDF.Quantiles[50]
	f.MedianTrace = f.TraceCDF.Quantiles[50]
	if f.MedianPing > 0 {
		ratio := f.MedianTrace / f.MedianPing
		f.AreaRatio = ratio * ratio
	}
	if traced > 0 {
		f.FracOneTraceVP = float64(oneTrace) / float64(traced)
	}
	if respond > 0 {
		f.FracMostVPsPing = float64(most) / float64(respond)
	}
	return f
}

// Format renders the figure's series.
func (f Fig5) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig5a ping  RTT CDF: %s\n", f.PingCDF.Format("ms"))
	fmt.Fprintf(&b, "fig5a trace RTT CDF: %s\n", f.TraceCDF.Format("ms"))
	fmt.Fprintf(&b, "fig5a medians: ping=%.1fms trace=%.1fms ratio=%.2fx area=%.1fx\n",
		f.MedianPing, f.MedianTrace, f.MedianTrace/f.MedianPing, f.AreaRatio)
	fmt.Fprintf(&b, "fig5b routers observed by one VP in traceroute: %.1f%%\n", 100*f.FracOneTraceVP)
	fmt.Fprintf(&b, "fig5b ping-responsive routers sampled from >=90%% of VPs: %.1f%%\n", 100*f.FracMostVPsPing)
	return b.String()
}

// Methods evaluated in fig. 9, in display order.
var Fig9Methods = []string{"hoiho", "undns", "drop", "hloc"}

// Fig9MinHosts is the minimum number of geohint-bearing hostnames a
// suffix needs to enter the figure-9 comparison. The paper evaluates
// over networks whose operators answered validation requests — all
// substantial deployments; the long tail of tiny suffixes is out of
// scope there (it shows up in Table 3's "poor" row instead).
const Fig9MinHosts = 8

// Fig9 compares router geolocation methods over hostnames known to
// carry geohints (paper fig. 9).
type Fig9 struct {
	Suffixes  []string
	PerSuffix map[string]map[string]MethodResult
	Overall   map[string]MethodResult
}

// BuildUndnsRuleset synthesises a hand-curated, partially-stale undns
// database for a world: for each operator it writes the rule a careful
// human would have written, but covers only `coverage` of the operator's
// site codes — modelling the 2014-frozen database's partial tables.
func BuildUndnsRuleset(w *synth.World, coverage float64, seed int64) *undns.RuleSet {
	rng := rand.New(rand.NewSource(seed))
	rs := undns.NewRuleSet()
	for _, spec := range w.Specs {
		pattern, keyFn := undnsPattern(spec)
		if pattern == "" {
			continue
		}
		codes := make(map[string]*geodict.Location)
		for _, site := range spec.Sites {
			if rng.Float64() > coverage {
				continue
			}
			codes[keyFn(site.Code)] = site.Loc
		}
		if len(codes) == 0 {
			continue
		}
		if err := rs.AddRule(spec.Suffix, pattern, codes); err != nil {
			panic(err) // patterns below are statically valid
		}
	}
	return rs
}

// undnsPattern returns the capture pattern and code-key function for a
// convention style.
func undnsPattern(spec *synth.OperatorSpec) (string, func(string) string) {
	suffix := regexp.QuoteMeta("." + spec.Suffix)
	ident := func(s string) string { return s }
	switch spec.Style {
	case synth.StyleIATA:
		return `^.+\.([a-z]{3})\d*` + suffix + `$`, ident
	case synth.StyleIATACC:
		return `^.+\.([a-z]{3})\d*\.[a-z]{2,3}` + suffix + `$`, ident
	case synth.StyleCLLI:
		return `^.+\.([a-z]{6})\d*\.[a-z]{2,3}\.bb` + suffix + `$`, ident
	case synth.StyleSplitCLLI:
		return `^.+\.([a-z]{4}-[a-z]{2})` + suffix + `$`,
			func(s string) string { return s[:4] + "-" + s[4:] }
	case synth.StyleLocode:
		return `^.+\.([a-z]{5})\d*` + suffix + `$`, ident
	case synth.StyleCity:
		return `^[^\.]+\.([a-z]+)\d*\.[a-z]{2,3}` + suffix + `$`, ident
	case synth.StyleCityState:
		return `^[^\.]+\.([a-z]+)\d*\.[a-z]{2,3}\.[a-z]{2,3}` + suffix + `$`, ident
	default:
		return "", nil // the database never covered facility addresses
	}
}

// ComputeFig9 evaluates Hoiho (the pipeline result), DRoP, HLOC, and
// undns over every convention-rendered hostname in the world, using the
// 40 km criterion against generator ground truth.
func ComputeFig9(w *synth.World, res *core.Result) Fig9 {
	hostRouter := hostRouterIndex(w)
	dropRules := drop.Learn(w.Corpus, w.PSL, w.Dict, w.Matrix)
	hlocInst := hloc.New(hloc.DefaultConfig(), w.Dict, w.Matrix)
	undnsRules := BuildUndnsRuleset(w, 0.6, 14)

	f := Fig9{PerSuffix: make(map[string]map[string]MethodResult),
		Overall: make(map[string]MethodResult)}

	type hostCase struct {
		host, suffix, router string
		truth                geo.LatLong
	}
	perSuffix := make(map[string]int)
	for _, suffix := range w.HintHostnames {
		perSuffix[suffix]++
	}
	var cases []hostCase
	for host, suffix := range w.HintHostnames {
		if perSuffix[suffix] < Fig9MinHosts {
			continue
		}
		rid, ok := hostRouter[host]
		if !ok {
			continue
		}
		truth := w.TruthRouter[rid]
		if truth == nil {
			continue
		}
		cases = append(cases, hostCase{host, suffix, rid, truth.Pos})
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].host < cases[j].host })

	score := func(suffix, method string, loc *geodict.Location, answered bool, truth geo.LatLong) {
		m := f.PerSuffix[suffix]
		if m == nil {
			m = make(map[string]MethodResult)
			f.PerSuffix[suffix] = m
		}
		r := m[method]
		switch {
		case !answered:
			r.FN++
		case Within(loc.Pos, truth):
			r.TP++
		default:
			r.FP++
		}
		m[method] = r
	}

	for _, c := range cases {
		// Hoiho: the learned NC for the suffix.
		if nc := usableNC(res, c.suffix); nc != nil {
			g, ok := core.Geolocate(nc, w.Dict, c.host)
			var loc *geodict.Location
			if ok {
				loc = g.Loc
			}
			score(c.suffix, "hoiho", loc, ok, c.truth)
		} else {
			score(c.suffix, "hoiho", nil, false, c.truth)
		}
		loc, ok := dropRules.Geolocate(c.host, c.suffix, w.Dict)
		score(c.suffix, "drop", loc, ok, c.truth)
		loc, ok = hlocInst.Geolocate(c.router, c.host, c.suffix)
		score(c.suffix, "hloc", loc, ok, c.truth)
		loc, ok = undnsRules.Geolocate(c.host, c.suffix)
		score(c.suffix, "undns", loc, ok, c.truth)
	}

	for suffix, m := range f.PerSuffix {
		f.Suffixes = append(f.Suffixes, suffix)
		for method, r := range m {
			o := f.Overall[method]
			o.Add(r)
			f.Overall[method] = o
		}
	}
	sort.Strings(f.Suffixes)
	return f
}

// Format renders per-suffix bars and the overall comparison.
func (f Fig9) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "suffix")
	for _, m := range Fig9Methods {
		fmt.Fprintf(&b, " %18s", m+" TP/FP/FN%")
	}
	b.WriteByte('\n')
	rowFor := func(name string, m map[string]MethodResult) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, method := range Fig9Methods {
			r := m[method]
			fmt.Fprintf(&b, "   %5.1f/%4.1f/%5.1f", r.TPPct(), r.FPPct(), r.FNPct())
		}
		b.WriteByte('\n')
	}
	for _, s := range f.Suffixes {
		rowFor(s, f.PerSuffix[s])
	}
	rowFor("OVERALL", f.Overall)
	fmt.Fprintf(&b, "%-22s", "PPV")
	for _, method := range Fig9Methods {
		fmt.Fprintf(&b, " %17.1f%%", 100*f.Overall[method].PPV())
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig10 summarises learned-geohint properties (paper fig. 10): the RTT
// from the closest VP to each learned location, and the distance from
// each learned location to the airport holding the colliding IATA code.
type Fig10 struct {
	ClosestVPRTT CDF // ms, one sample per learned hint
	AirportKm    CDF // km, for hints colliding with an IATA code
}

// ComputeFig10 evaluates the learned hints of a result.
func ComputeFig10(w *synth.World, res *core.Result) Fig10 {
	var rtts, kms []float64
	//lint:ignore maporder order-insensitive: makeCDF sorts the pooled samples before use
	for _, nc := range res.NCs {
		for _, lh := range nc.Learned {
			rtts = append(rtts, closestVPRTTms(w, lh.Loc.Pos))
			if lh.Type == geodict.HintIATA {
				for _, a := range w.Dict.IATA(lh.Hint) {
					kms = append(kms, geo.DistanceKm(a.Loc.Pos, lh.Loc.Pos))
				}
			}
		}
	}
	return Fig10{ClosestVPRTT: makeCDF(rtts), AirportKm: makeCDF(kms)}
}

// Format renders the figure's series.
func (f Fig10) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig10a closest-VP RTT to learned hints: %s\n", f.ClosestVPRTT.Format("ms"))
	fmt.Fprintf(&b, "fig10b distance to colliding-IATA airport: %s\n", f.AirportKm.Format("km"))
	return b.String()
}

// Fig11Bucket is one cumulative RTT bucket of learned-hint correctness.
type Fig11Bucket struct {
	MaxRTTms float64 // hints whose closest-VP RTT is <= this
	Correct  int
	Total    int
}

// Frac is the correctness fraction.
func (b Fig11Bucket) Frac() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Correct) / float64(b.Total)
}

// Fig11 relates learned-hint correctness to VP proximity (paper fig. 11:
// <=7ms 90% correct, <=11ms 84%, <=16ms 80%).
type Fig11 struct{ Buckets []Fig11Bucket }

// ComputeFig11 validates learned hints against generator truth, bucketed
// by the closest-VP RTT.
func ComputeFig11(w *synth.World, res *core.Result) Fig11 {
	type sample struct {
		rtt     float64
		correct bool
	}
	var samples []sample
	//lint:ignore maporder order-insensitive: samples are only counted into RTT buckets, never emitted in slice order
	for suffix, nc := range res.NCs {
		truth := w.TruthHints[suffix]
		for _, lh := range nc.Learned {
			want, ok := truth[lh.Hint]
			correct := ok && Within(lh.Loc.Pos, want.Pos)
			samples = append(samples, sample{closestVPRTTms(w, lh.Loc.Pos), correct})
		}
	}
	var f Fig11
	for _, max := range []float64{7, 11, 16, 1e9} {
		var b Fig11Bucket
		b.MaxRTTms = max
		for _, s := range samples {
			if s.rtt <= max {
				b.Total++
				if s.correct {
					b.Correct++
				}
			}
		}
		f.Buckets = append(f.Buckets, b)
	}
	return f
}

// Format renders the buckets.
func (f Fig11) Format() string {
	var b strings.Builder
	for _, bk := range f.Buckets {
		label := fmt.Sprintf("<=%.0fms", bk.MaxRTTms)
		if bk.MaxRTTms >= 1e9 {
			label = "all"
		}
		fmt.Fprintf(&b, "fig11 %-8s %3d/%-3d correct (%.0f%%)\n",
			label, bk.Correct, bk.Total, 100*bk.Frac())
	}
	return b.String()
}

// Ablation compares the pipeline with and without stage-4 hint learning
// (paper §6.1: 94.0% vs 82.4% correct; PPV 95.6% vs 94.5%).
type Ablation struct {
	With    MethodResult
	Without MethodResult
}

// ComputeAblation runs the hoiho side of fig. 9 twice.
func ComputeAblation(w *synth.World, withRes, withoutRes *core.Result) Ablation {
	with := ComputeFig9Hoiho(w, withRes)
	without := ComputeFig9Hoiho(w, withoutRes)
	return Ablation{With: with, Without: without}
}

// ComputeFig9Hoiho scores only the hoiho method over the world (used by
// the ablation to avoid re-running the baselines).
func ComputeFig9Hoiho(w *synth.World, res *core.Result) MethodResult {
	hostRouter := hostRouterIndex(w)
	perSuffix := make(map[string]int)
	for _, suffix := range w.HintHostnames {
		perSuffix[suffix]++
	}
	var out MethodResult
	for host, suffix := range w.HintHostnames {
		if perSuffix[suffix] < Fig9MinHosts {
			continue
		}
		rid, ok := hostRouter[host]
		if !ok {
			continue
		}
		truth := w.TruthRouter[rid]
		if truth == nil {
			continue
		}
		nc := usableNC(res, suffix)
		if nc == nil {
			out.FN++
			continue
		}
		g, ok := core.Geolocate(nc, w.Dict, host)
		switch {
		case !ok:
			out.FN++
		case Within(g.Loc.Pos, truth.Pos):
			out.TP++
		default:
			out.FP++
		}
	}
	return out
}

// Format renders the ablation comparison.
func (a Ablation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s\n", "", "with", "without")
	fmt.Fprintf(&b, "%-22s %7.1f%% %7.1f%%\n", "correct (TP%)", a.With.TPPct(), a.Without.TPPct())
	fmt.Fprintf(&b, "%-22s %7.1f%% %7.1f%%\n", "PPV", 100*a.With.PPV(), 100*a.Without.PPV())
	return b.String()
}

// ComputeTable5Multi aggregates learned 3-letter hints across several
// results — the paper pools its two IPv4 and two IPv6 ITDKs when
// counting learned geohints.
func ComputeTable5Multi(results []*core.Result, dict *geodict.Dictionary, minSuffixes int) Table5 {
	merged := &core.Result{NCs: make(map[string]*core.NamingConvention)}
	for wi, res := range results {
		for suffix, nc := range res.NCs {
			merged.NCs[fmt.Sprintf("%d/%s", wi, suffix)] = nc
		}
	}
	return ComputeTable5(merged, dict, minSuffixes)
}

// ComputeFig10Multi pools learned-hint properties across worlds. The
// NCs map iteration order does not matter here: makeCDF sorts its
// samples, so the pooled CDFs are order-insensitive (the same holds for
// ComputeFig10, ComputeFig11, and the bucket counting below).
func ComputeFig10Multi(worlds []*synth.World, results []*core.Result) Fig10 {
	var rtts, kms []float64
	for i, w := range worlds {
		//lint:ignore maporder order-insensitive: makeCDF sorts the pooled samples before use
		for _, nc := range results[i].NCs {
			for _, lh := range nc.Learned {
				rtts = append(rtts, closestVPRTTms(w, lh.Loc.Pos))
				if lh.Type == geodict.HintIATA {
					for _, a := range w.Dict.IATA(lh.Hint) {
						kms = append(kms, geo.DistanceKm(a.Loc.Pos, lh.Loc.Pos))
					}
				}
			}
		}
	}
	return Fig10{ClosestVPRTT: makeCDF(rtts), AirportKm: makeCDF(kms)}
}

// ComputeFig11Multi pools learned-hint correctness across worlds.
func ComputeFig11Multi(worlds []*synth.World, results []*core.Result) Fig11 {
	type sample struct {
		rtt     float64
		correct bool
	}
	var samples []sample
	for i, w := range worlds {
		//lint:ignore maporder order-insensitive: samples are only counted into RTT buckets, never emitted in slice order
		for suffix, nc := range results[i].NCs {
			truth := w.TruthHints[suffix]
			for _, lh := range nc.Learned {
				want, ok := truth[lh.Hint]
				correct := ok && Within(lh.Loc.Pos, want.Pos)
				samples = append(samples, sample{closestVPRTTms(w, lh.Loc.Pos), correct})
			}
		}
	}
	var f Fig11
	for _, max := range []float64{7, 11, 16, 1e9} {
		var b Fig11Bucket
		b.MaxRTTms = max
		for _, s := range samples {
			if s.rtt <= max {
				b.Total++
				if s.correct {
					b.Correct++
				}
			}
		}
		f.Buckets = append(f.Buckets, b)
	}
	return f
}
