package eval

import (
	"fmt"

	"hoiho/internal/core"
	"hoiho/internal/synth"
)

// PresetNames are the four ITDK-shaped worlds the paper evaluates.
var PresetNames = []string{"ipv4-aug2020", "ipv4-mar2021", "ipv6-nov2020", "ipv6-mar2021"}

// Suite bundles generated worlds with their pipeline results.
type Suite struct {
	Worlds  []*synth.World
	Results []*core.Result
}

// RunSuite generates each named world (scaled by scale, 1.0 = preset
// size), cleans spoofing VPs, and runs the pipeline with the default
// configuration.
func RunSuite(names []string, scale float64) (*Suite, error) {
	return RunSuiteConfig(names, scale, core.DefaultConfig())
}

// RunSuiteConfig is RunSuite with an explicit pipeline configuration —
// the hook through which cmd/geoeval's -workers flag (and any threshold
// override) reaches core.Run. World generation is unaffected by cfg, so
// results differ from RunSuite only as the configuration dictates.
func RunSuiteConfig(names []string, scale float64, cfg core.Config) (*Suite, error) {
	if scale <= 0 {
		scale = 1
	}
	s := &Suite{}
	for _, name := range names {
		p, err := synth.ITDKPreset(name)
		if err != nil {
			return nil, err
		}
		p.Operators = max1(int(float64(p.Operators) * scale))
		p.Noise = int(float64(p.Noise) * scale)
		p.VPs = max1(int(float64(p.VPs) * scale))
		if p.SpoofVPs >= p.VPs {
			p.SpoofVPs = 0
		}
		w, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		w.CleanSpoofers()
		res, err := core.Run(w.Inputs(), cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: pipeline on %s: %w", name, err)
		}
		s.Worlds = append(s.Worlds, w)
		s.Results = append(s.Results, res)
	}
	return s, nil
}

// RunWorld generates and evaluates one preset world.
func RunWorld(name string, scale float64) (*synth.World, *core.Result, error) {
	return RunWorldConfig(name, scale, core.DefaultConfig())
}

// RunWorldConfig generates and evaluates one preset world with an
// explicit pipeline configuration.
func RunWorldConfig(name string, scale float64, cfg core.Config) (*synth.World, *core.Result, error) {
	s, err := RunSuiteConfig([]string{name}, scale, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.Worlds[0], s.Results[0], nil
}

// RunWorldNoLearn re-runs the pipeline on an existing world with stage-4
// hint learning disabled (the §6.1 ablation).
func RunWorldNoLearn(w *synth.World) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.LearnHints = false
	return core.Run(w.Inputs(), cfg)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
