package eval

import (
	"fmt"

	"hoiho/internal/core"
	"hoiho/internal/synth"
)

// PresetNames are the four ITDK-shaped worlds the paper evaluates.
var PresetNames = []string{"ipv4-aug2020", "ipv4-mar2021", "ipv6-nov2020", "ipv6-mar2021"}

// Suite bundles generated worlds with their pipeline results.
type Suite struct {
	Worlds  []*synth.World
	Results []*core.Result
}

// Run generates each named world (scaled by scale, 1.0 = preset size),
// cleans spoofing VPs, and runs the pipeline with cfg. World generation
// is unaffected by cfg, so results differ across configurations only as
// the pipeline thresholds dictate. Callers without threshold overrides
// pass core.DefaultConfig().
//
// When cfg.Tracer is set, each world records an "eval-world" span keyed
// by the world name with a "generate" child covering synthesis, and the
// pipeline's own "run" spans land in the same tracer.
func Run(names []string, scale float64, cfg core.Config) (*Suite, error) {
	if scale <= 0 {
		scale = 1
	}
	s := &Suite{}
	for _, name := range names {
		ws := cfg.Tracer.Start("eval-world")
		ws.SetKey(name)
		p, err := synth.ITDKPreset(name)
		if err != nil {
			return nil, err
		}
		p.Operators = max1(int(float64(p.Operators) * scale))
		p.Noise = int(float64(p.Noise) * scale)
		p.VPs = max1(int(float64(p.VPs) * scale))
		if p.SpoofVPs >= p.VPs {
			p.SpoofVPs = 0
		}
		gs := ws.Child("generate")
		w, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		w.CleanSpoofers()
		gs.Count("routers", int64(w.Inputs().Corpus.Len()))
		gs.End()
		res, err := core.Run(w.Inputs(), cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: pipeline on %s: %w", name, err)
		}
		ws.Count("suffixes_learned", int64(len(res.NCs)))
		ws.End()
		s.Worlds = append(s.Worlds, w)
		s.Results = append(s.Results, res)
	}
	return s, nil
}

// RunOne generates and evaluates one preset world with cfg.
func RunOne(name string, scale float64, cfg core.Config) (*synth.World, *core.Result, error) {
	s, err := Run([]string{name}, scale, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.Worlds[0], s.Results[0], nil
}

// RunWorldNoLearn re-runs the pipeline on an existing world with stage-4
// hint learning disabled (the §6.1 ablation).
func RunWorldNoLearn(w *synth.World) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.LearnHints = false
	return core.Run(w.Inputs(), cfg)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
