package tbg

import (
	"sync"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/eval"
	"hoiho/internal/geo"
	"hoiho/internal/synth"
)

var (
	worldOnce    sync.Once
	cachedWorld  *synth.World
	cachedRes    *core.Result
	cachedAnchor Anchors
	worldErr     error
)

func world(t *testing.T) (*synth.World, *core.Result, Anchors) {
	t.Helper()
	worldOnce.Do(func() {
		cachedWorld, cachedRes, worldErr = eval.RunOne("ipv4-aug2020", 0.5, core.DefaultConfig())
		if worldErr == nil {
			cachedAnchor = BuildAnchors(cachedWorld.Inputs(), cachedRes, cachedWorld.PSL)
		}
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return cachedWorld, cachedRes, cachedAnchor
}

func TestBuildAnchors(t *testing.T) {
	w, _, anchors := world(t)
	if len(anchors) < 50 {
		t.Fatalf("anchors = %d, want many", len(anchors))
	}
	// Anchors must be accurate: located within 40km of truth.
	wrong := 0
	for id, loc := range anchors {
		truth := w.TruthRouter[id]
		if truth == nil {
			continue
		}
		if geo.DistanceKm(loc.Pos, truth.Pos) > eval.TruePositiveKm {
			wrong++
		}
	}
	frac := float64(wrong) / float64(len(anchors))
	if frac > 0.1 {
		t.Errorf("%.0f%% of anchors are wrong (%d of %d)", 100*frac, wrong, len(anchors))
	}
}

func TestTBGTightensEstimates(t *testing.T) {
	w, _, anchors := world(t)
	cfg := DefaultConfig()

	// Evaluate unanchored routers that have at least one anchored
	// neighbor: TBG with anchors should (weakly) shrink the feasible
	// region vs. VP constraints alone, and keep truth feasible.
	tested, improved := 0, 0
	var errSum, errSumVPOnly float64
	for _, r := range w.Corpus.Routers {
		if _, isAnchor := anchors[r.ID]; isAnchor {
			continue
		}
		hasAnchorNbr := false
		for _, nbr := range w.Corpus.Neighbors(r.ID) {
			if _, ok := anchors[nbr]; ok {
				hasAnchorNbr = true
				break
			}
		}
		if !hasAnchorNbr || !w.Matrix.HasPing(r.ID) {
			continue
		}
		truth := w.TruthRouter[r.ID]

		full, ok := Geolocate(w.Corpus, w.Matrix, anchors, r.ID, cfg)
		if !ok || full.AnchorLinks == 0 {
			continue
		}
		vpOnly, ok2 := Geolocate(w.Corpus, w.Matrix, Anchors{}, r.ID, cfg)
		if !ok2 {
			continue
		}
		tested++
		errSum += geo.DistanceKm(full.Region.Center, truth.Pos)
		errSumVPOnly += geo.DistanceKm(vpOnly.Region.Center, truth.Pos)
		if full.Region.ErrorRadiusKm <= vpOnly.Region.ErrorRadiusKm {
			improved++
		}
		if tested >= 40 {
			break
		}
	}
	if tested < 10 {
		t.Fatalf("too few TBG-eligible routers tested: %d", tested)
	}
	if float64(improved)/float64(tested) < 0.8 {
		t.Errorf("anchors shrank the region for only %d/%d targets", improved, tested)
	}
	if errSum >= errSumVPOnly {
		t.Errorf("mean error with anchors %.0f should beat VP-only %.0f",
			errSum/float64(tested), errSumVPOnly/float64(tested))
	}
}

func TestGeolocateNoConstraints(t *testing.T) {
	w, _, anchors := world(t)
	if _, ok := Geolocate(w.Corpus, w.Matrix, anchors, "no-such-router", DefaultConfig()); ok {
		t.Error("unknown router should not geolocate")
	}
}

func TestLinkBound(t *testing.T) {
	w, _, _ := world(t)
	// A router and its neighbor: the bound must be positive and finite.
	for _, l := range w.Corpus.Links {
		if !w.Matrix.HasPing(l.A) || !w.Matrix.HasPing(l.B) {
			continue
		}
		bound, ok := linkBoundMs(w.Matrix, l.A, l.B, 2.0)
		if !ok {
			continue
		}
		if bound <= 0 {
			t.Fatalf("bound = %f", bound)
		}
		return
	}
	t.Skip("no pingable link pair found")
}
