// Package tbg implements topology-based geolocation in the style of
// Katz-Bassett et al. (IMC 2006, paper §3.1), using hostname-geolocated
// routers as anchors — the integration the paper's conclusion names as
// the most promising next step: "synthesize this new capability with
// tools that perform alias resolution and router-level topology
// mapping".
//
// For a target router the method combines two constraint families:
//
//  1. its own delay constraints — each vantage point's RTT bounds the
//     target to a disc around the VP;
//  2. topology constraints — for each router-level neighbor with a
//     known (hostname-derived) location, the per-VP RTT difference
//     between target and neighbor bounds the link's propagation length,
//     confining the target to a disc around the anchor.
//
// The constraints are intersected with CBG multilateration. Hostname
// anchors typically shrink the feasible region by an order of magnitude
// compared to VP constraints alone.
package tbg

import (
	"math"
	"sort"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// Anchors maps router IDs to hostname-derived locations.
type Anchors map[string]*geodict.Location

// BuildAnchors geolocates every router it can through the learned
// conventions, returning the anchor set. Only usable conventions
// contribute, and a router anchors only when its geolocated hostnames
// agree (within 40 km) and the location is RTT-consistent.
func BuildAnchors(in core.Inputs, res *core.Result, list *psl.List) Anchors {
	anchors := make(Anchors)
	reject := make(map[string]bool)
	for _, group := range in.Corpus.GroupBySuffix(list) {
		nc := res.NCs[group.Suffix]
		if nc == nil || !nc.Class.Usable() {
			continue
		}
		for _, rh := range group.Hosts {
			g, ok := core.Geolocate(nc, in.Dict, rh.Hostname)
			if !ok {
				continue
			}
			if !in.RTT.Consistent(rh.Router.ID, g.Loc.Pos, 1.0) {
				continue
			}
			if prev, exists := anchors[rh.Router.ID]; exists {
				if geo.DistanceKm(prev.Pos, g.Loc.Pos) > 40 {
					reject[rh.Router.ID] = true
				}
				continue
			}
			anchors[rh.Router.ID] = g.Loc
		}
	}
	for id := range reject {
		delete(anchors, id)
	}
	return anchors
}

// Config bounds constraint derivation.
type Config struct {
	// LinkSlackMs is added to per-VP RTT differences before converting
	// them to link-length bounds, absorbing queueing asymmetry.
	LinkSlackMs float64
	// MaxAnchors caps how many neighbor anchors contribute constraints.
	MaxAnchors int
	// Samples controls the CBG grid density.
	Samples int
}

// DefaultConfig returns reasonable bounds.
func DefaultConfig() Config {
	return Config{LinkSlackMs: 2.0, MaxAnchors: 8, Samples: 32}
}

// Estimate is a TBG geolocation result.
type Estimate struct {
	Region      geo.Region
	VPs         int // VP delay constraints used
	AnchorLinks int // neighbor anchor constraints used
}

// Geolocate estimates the location of a target router. ok is false when
// no constraints exist or they are mutually infeasible.
func Geolocate(corpus *itdk.Corpus, matrix *rtt.Matrix, anchors Anchors, target string, cfg Config) (Estimate, bool) {
	if cfg.Samples <= 0 {
		cfg.Samples = 32
	}
	var est Estimate
	cs := matrix.Constraints(target)
	est.VPs = len(cs)

	// Topology constraints from anchored neighbors.
	nbrs := append([]string(nil), corpus.Neighbors(target)...)
	sort.Strings(nbrs)
	for _, nbr := range nbrs {
		loc, ok := anchors[nbr]
		if !ok {
			continue
		}
		bound, ok := linkBoundMs(matrix, target, nbr, cfg.LinkSlackMs)
		if !ok {
			continue
		}
		cs = append(cs, geo.Constraint{VP: loc.Pos, RTTms: bound})
		est.AnchorLinks++
		if est.AnchorLinks >= cfg.MaxAnchors {
			break
		}
	}
	if len(cs) == 0 {
		return est, false
	}
	region, err := geo.Multilaterate(cs, cfg.Samples)
	if err != nil {
		return est, false
	}
	est.Region = region
	return est, true
}

// linkBoundMs derives an RTT-equivalent bound on the target's distance
// from a neighbor: the smallest per-VP difference between the RTT to
// the target and the RTT to the neighbor, plus slack. When the target
// is farther than the neighbor from some VP, the difference upper-bounds
// twice the link's propagation delay.
func linkBoundMs(matrix *rtt.Matrix, target, nbr string, slackMs float64) (float64, bool) {
	best := math.Inf(1)
	for _, mt := range matrix.PingMeasurements(target) {
		sn, ok := matrix.Ping(nbr, mt.VP.Name)
		if !ok {
			continue
		}
		diff := mt.Sample.RTTms - sn.RTTms
		if diff < 0 {
			diff = -diff
		}
		if diff < best {
			best = diff
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best + slackMs, true
}
