package rtt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := NewMatrix([]*VP{
		{Name: "a", Pos: vpLondon.Pos},
		{Name: "b", Pos: vpTokyo.Pos, SpoofTCP: true},
	})
	_ = m.SetPing("N1", "a", Sample{RTTms: 12.5, Method: ICMP})
	_ = m.SetPing("N1", "b", Sample{RTTms: 99.25, Method: TCP})
	_ = m.SetPing("N2", "a", Sample{RTTms: 3, Method: UDP})
	_ = m.SetTrace("N1", "a", Sample{RTTms: 80})

	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VPs()) != 2 || !got.VP("b").SpoofTCP {
		t.Fatalf("VPs lost: %+v", got.VPs())
	}
	s, ok := got.Ping("N1", "b")
	if !ok || s.Method != TCP || math.Abs(s.RTTms-99.25) > 1e-9 {
		t.Errorf("ping lost: %+v %v", s, ok)
	}
	if s, ok := got.Ping("N2", "a"); !ok || s.Method != UDP || s.RTTms != 3 {
		t.Errorf("N2 ping lost: %+v %v", s, ok)
	}
	tr, ok := got.Trace("N1", "a")
	if !ok || tr.RTTms != 80 {
		t.Errorf("trace lost: %+v %v", tr, ok)
	}
	if got.VP("a").Pos.Lat == 0 {
		t.Error("coordinates lost")
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := []string{
		"vp a 1 2\nping N1 a 5 icmp\nvp b 1 2", // vp after samples
		"vp a x y",                             // bad coords
		"vp a 1 2 bogus",                       // unknown flag
		"ping N1 a 5 icmp",                     // sample without any vp... actually allowed? unknown vp -> error
		"vp a 1 2\nping N1 b 5 icmp",           // unknown vp
		"vp a 1 2\nping N1 a x icmp",           // bad rtt
		"vp a 1 2\nping N1 a 5 smoke",          // bad method
		"vp a 1 2\ntrace N1 a",                 // short trace
		"bogus",                                // unknown record
		"vp a",                                 // malformed vp
	}
	for _, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadMatrixEmpty(t *testing.T) {
	m, err := ReadMatrix(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.VPs()) != 0 {
		t.Error("expected empty matrix")
	}
}
