package rtt

import (
	"math"
	"math/rand"
	"testing"

	"hoiho/internal/geo"
)

var (
	vpLondon  = &VP{Name: "lon-gb", City: "london", Country: "gb", Pos: geo.LatLong{Lat: 51.5074, Long: -0.1278}}
	vpNewYork = &VP{Name: "nyc-us", City: "new york", Country: "us", Pos: geo.LatLong{Lat: 40.7128, Long: -74.0060}}
	vpTokyo   = &VP{Name: "tyo-jp", City: "tokyo", Country: "jp", Pos: geo.LatLong{Lat: 35.6762, Long: 139.6503}}
	ashburnP  = geo.LatLong{Lat: 39.0438, Long: -77.4874}
)

func newTestMatrix() *Matrix {
	return NewMatrix([]*VP{vpLondon, vpNewYork, vpTokyo})
}

func TestSetAndGet(t *testing.T) {
	m := newTestMatrix()
	if err := m.SetPing("N1", "nyc-us", Sample{RTTms: 5, Method: ICMP}); err != nil {
		t.Fatal(err)
	}
	s, ok := m.Ping("N1", "nyc-us")
	if !ok || s.RTTms != 5 {
		t.Errorf("Ping = %+v, %v", s, ok)
	}
	if _, ok := m.Ping("N1", "lon-gb"); ok {
		t.Error("no sample should exist for lon-gb")
	}
	if _, ok := m.Ping("N2", "nyc-us"); ok {
		t.Error("no sample should exist for N2")
	}
	if err := m.SetPing("N1", "nowhere", Sample{RTTms: 1}); err == nil {
		t.Error("unknown VP should error")
	}
	if err := m.SetPing("N1", "nyc-us", Sample{RTTms: -1}); err == nil {
		t.Error("negative RTT should error")
	}
	if err := m.SetPing("N1", "nyc-us", Sample{RTTms: math.NaN()}); err == nil {
		t.Error("NaN RTT should error")
	}
}

func TestMinimumFiltering(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 9, Method: ICMP})
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 5, Method: UDP})
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 7, Method: ICMP})
	s, _ := m.Ping("N1", "nyc-us")
	if s.RTTms != 5 || s.Method != UDP {
		t.Errorf("minimum filtering failed: %+v", s)
	}
}

func TestMinPingAndSorting(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetPing("N1", "lon-gb", Sample{RTTms: 80})
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 6})
	_ = m.SetPing("N1", "tyo-jp", Sample{RTTms: 160})
	min, ok := m.MinPing("N1")
	if !ok || min.VP.Name != "nyc-us" || min.Sample.RTTms != 6 {
		t.Errorf("MinPing = %+v, %v", min, ok)
	}
	ms := m.PingMeasurements("N1")
	if len(ms) != 3 || ms[0].Sample.RTTms > ms[1].Sample.RTTms || ms[1].Sample.RTTms > ms[2].Sample.RTTms {
		t.Errorf("measurements unsorted: %+v", ms)
	}
	if _, ok := m.MinPing("N9"); ok {
		t.Error("MinPing of unknown router should be false")
	}
}

func TestConsistent(t *testing.T) {
	m := newTestMatrix()
	// A 6ms RTT from New York is consistent with Ashburn (~330km), but a
	// 6ms RTT from London is not.
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 6})
	if !m.Consistent("N1", ashburnP, 0.5) {
		t.Error("ashburn should be consistent with 6ms from nyc")
	}
	_ = m.SetPing("N1", "lon-gb", Sample{RTTms: 6})
	if m.Consistent("N1", ashburnP, 0.5) {
		t.Error("ashburn cannot be 6ms from london")
	}
	// Unknown router: vacuously consistent.
	if !m.Consistent("N9", ashburnP, 0.5) {
		t.Error("router without samples should be vacuously consistent")
	}
}

func TestConstraints(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 6})
	_ = m.SetPing("N1", "lon-gb", Sample{RTTms: 90})
	cs := m.Constraints("N1")
	if len(cs) != 2 {
		t.Fatalf("constraints = %d", len(cs))
	}
	if !geo.Feasible(ashburnP, cs) {
		t.Error("ashburn should be feasible under these constraints")
	}
}

func TestRouters(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetPing("N2", "nyc-us", Sample{RTTms: 5})
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 5})
	ids := m.Routers()
	if len(ids) != 2 || ids[0] != "N1" || ids[1] != "N2" {
		t.Errorf("Routers = %v", ids)
	}
}

func TestTraceSeparateFromPing(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetTrace("N1", "nyc-us", Sample{RTTms: 40})
	if m.HasPing("N1") {
		t.Error("trace sample should not count as ping")
	}
	tr, ok := m.Trace("N1", "nyc-us")
	if !ok || tr.RTTms != 40 {
		t.Errorf("Trace = %+v, %v", tr, ok)
	}
	if min, ok := m.MinTrace("N1"); !ok || min.Sample.RTTms != 40 {
		t.Errorf("MinTrace = %+v, %v", min, ok)
	}
}

func TestDropTCPFrom(t *testing.T) {
	m := newTestMatrix()
	_ = m.SetPing("N1", "nyc-us", Sample{RTTms: 2, Method: TCP})
	_ = m.SetPing("N1", "lon-gb", Sample{RTTms: 2, Method: TCP})
	_ = m.SetPing("N2", "nyc-us", Sample{RTTms: 5, Method: ICMP})
	removed := m.DropTCPFrom([]string{"nyc-us", "ghost"})
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if _, ok := m.Ping("N1", "nyc-us"); ok {
		t.Error("TCP sample from nyc-us should be dropped")
	}
	if _, ok := m.Ping("N1", "lon-gb"); !ok {
		t.Error("TCP sample from lon-gb should remain")
	}
	if _, ok := m.Ping("N2", "nyc-us"); !ok {
		t.Error("ICMP sample should remain")
	}
}

func TestDetectTCPSpoofers(t *testing.T) {
	m := newTestMatrix()
	// nyc-us spoofs: tiny TCP RTTs to many routers.
	for i := 0; i < 20; i++ {
		id := "N" + string(rune('a'+i))
		_ = m.SetPing(id, "nyc-us", Sample{RTTms: 1.5, Method: TCP})
		_ = m.SetPing(id, "lon-gb", Sample{RTTms: 50 + float64(i), Method: TCP})
	}
	got := m.DetectTCPSpoofers(10)
	if len(got) != 1 || got[0] != "nyc-us" {
		t.Errorf("DetectTCPSpoofers = %v", got)
	}
	// Below the sample threshold nothing is flagged.
	m2 := newTestMatrix()
	_ = m2.SetPing("N1", "nyc-us", Sample{RTTms: 1.5, Method: TCP})
	if got := m2.DetectTCPSpoofers(10); len(got) != 0 {
		t.Errorf("spoofers below threshold = %v", got)
	}
}

func TestDelayModelNeverViolatesPhysics(t *testing.T) {
	dm := DefaultDelayModel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		from := geo.LatLong{Lat: rng.Float64()*160 - 80, Long: rng.Float64()*360 - 180}
		to := geo.LatLong{Lat: rng.Float64()*160 - 80, Long: rng.Float64()*360 - 180}
		got := dm.MinOfN(rng, from, to, 3)
		if got < geo.MinRTTms(from, to) {
			t.Fatalf("sampled RTT %.2f below physical minimum %.2f", got, geo.MinRTTms(from, to))
		}
	}
}

func TestDelayModelMinOfNShrinks(t *testing.T) {
	dm := DefaultDelayModel()
	from := vpLondon.Pos
	to := ashburnP
	rng1 := rand.New(rand.NewSource(1))
	rng2 := rand.New(rand.NewSource(1))
	var sum1, sum10 float64
	for i := 0; i < 200; i++ {
		sum1 += dm.MinOfN(rng1, from, to, 1)
		sum10 += dm.MinOfN(rng2, from, to, 10)
	}
	if sum10 >= sum1 {
		t.Errorf("min-of-10 mean %.1f should be below min-of-1 mean %.1f", sum10/200, sum1/200)
	}
}

func TestProbeMethodOrder(t *testing.T) {
	dm := DefaultDelayModel()
	rng := rand.New(rand.NewSource(3))
	vp := vpNewYork
	s, ok := dm.Probe(rng, vp, ashburnP, Responsiveness{ICMP: true, UDP: true, TCP: true})
	if !ok || s.Method != ICMP {
		t.Errorf("ICMP-responsive router should be probed with ICMP, got %+v", s)
	}
	s, ok = dm.Probe(rng, vp, ashburnP, Responsiveness{UDP: true, TCP: true})
	if !ok || s.Method != UDP {
		t.Errorf("UDP before TCP, got %+v", s)
	}
	s, ok = dm.Probe(rng, vp, ashburnP, Responsiveness{TCP: true})
	if !ok || s.Method != TCP {
		t.Errorf("TCP fallback, got %+v", s)
	}
	if _, ok := dm.Probe(rng, vp, ashburnP, Responsiveness{}); ok {
		t.Error("unresponsive router should yield no sample from honest VP")
	}
}

func TestSpoofingVP(t *testing.T) {
	dm := DefaultDelayModel()
	rng := rand.New(rand.NewSource(4))
	spoof := &VP{Name: "bad", Pos: vpTokyo.Pos, SpoofTCP: true}
	// Even an unresponsive router "answers" through a spoofing VP...
	s, ok := dm.Probe(rng, spoof, ashburnP, Responsiveness{})
	if !ok || s.Method != TCP || s.RTTms >= 3 {
		t.Errorf("spoofed sample = %+v, %v; want tiny TCP RTT", s, ok)
	}
	// ...and the RTT violates physics (Tokyo to Ashburn in <3 ms).
	if s.RTTms >= geo.MinRTTms(spoof.Pos, ashburnP) {
		t.Error("spoofed RTT should violate the physical minimum (that's the pathology)")
	}
	// But ICMP responsiveness bypasses the spoofer.
	s, _ = dm.Probe(rng, spoof, ashburnP, Responsiveness{ICMP: true})
	if s.Method != ICMP || s.RTTms < geo.MinRTTms(spoof.Pos, ashburnP) {
		t.Errorf("ICMP probe through spoofing VP should be honest, got %+v", s)
	}
}

func TestTraceObservationInflated(t *testing.T) {
	dm := DefaultDelayModel()
	rng := rand.New(rand.NewSource(5))
	var pingSum, traceSum float64
	for i := 0; i < 200; i++ {
		pingSum += dm.MinOfN(rng, vpLondon.Pos, ashburnP, 3)
		traceSum += dm.TraceObservation(rng, vpLondon, ashburnP).RTTms
	}
	if traceSum < 2*pingSum {
		t.Errorf("trace RTTs should be much larger than ping RTTs: %.0f vs %.0f", traceSum/200, pingSum/200)
	}
}

func TestResponsivenessDraw(t *testing.T) {
	dm := DefaultDelayModel()
	rng := rand.New(rand.NewSource(6))
	responding := 0
	n := 2000
	for i := 0; i < n; i++ {
		if dm.DrawResponsiveness(rng).Responds() {
			responding++
		}
	}
	frac := float64(responding) / float64(n)
	// With defaults ~0.70 + extras, expect roughly 80-95% responding.
	if frac < 0.75 || frac > 0.98 {
		t.Errorf("responding fraction = %.2f, want ~0.82-0.95", frac)
	}
}

func TestMethodString(t *testing.T) {
	if ICMP.String() != "icmp" || UDP.String() != "udp" || TCP.String() != "tcp" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestVPLookup(t *testing.T) {
	m := newTestMatrix()
	if vp := m.VP("lon-gb"); vp == nil || vp.City != "london" {
		t.Errorf("VP(lon-gb) = %+v", vp)
	}
	if m.VP("nope") != nil {
		t.Error("unknown VP should be nil")
	}
	if len(m.VPs()) != 3 {
		t.Error("VPs() wrong length")
	}
}
