package rtt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The matrix file format is line-oriented:
//
//	vp <name> <lat> <long> [spoof-tcp]
//	ping <router> <vp> <rtt-ms> <icmp|udp|tcp>
//	trace <router> <vp> <rtt-ms>
//
// Comment lines begin with '#'. All vp records must precede the sample
// records that reference them.

// WriteMatrix serialises a matrix.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vantage points\n", len(m.vps))
	for _, vp := range m.vps {
		fmt.Fprintf(bw, "vp %s %.4f %.4f", vp.Name, vp.Pos.Lat, vp.Pos.Long)
		if vp.SpoofTCP {
			bw.WriteString(" spoof-tcp")
		}
		bw.WriteByte('\n')
	}
	for _, router := range m.Routers() {
		for _, me := range m.PingMeasurements(router) {
			fmt.Fprintf(bw, "ping %s %s %.3f %s\n", router, me.VP.Name, me.Sample.RTTms, me.Sample.Method)
		}
	}
	traceRouters := make([]string, 0, len(m.trace))
	for router := range m.trace {
		traceRouters = append(traceRouters, router)
	}
	sort.Strings(traceRouters)
	for _, router := range traceRouters {
		for _, me := range m.TraceMeasurements(router) {
			fmt.Fprintf(bw, "trace %s %s %.3f\n", router, me.VP.Name, me.Sample.RTTms)
		}
	}
	return bw.Flush()
}

// ReadMatrix parses a matrix file.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var vps []*VP
	var m *Matrix
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "vp":
			if m != nil {
				return nil, fmt.Errorf("rtt: line %d: vp record after samples", line)
			}
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("rtt: line %d: malformed vp", line)
			}
			lat, err1 := strconv.ParseFloat(fields[2], 64)
			long, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("rtt: line %d: bad coordinates", line)
			}
			vp := &VP{Name: fields[1]}
			vp.Pos.Lat, vp.Pos.Long = lat, long
			if len(fields) == 5 {
				if fields[4] != "spoof-tcp" {
					return nil, fmt.Errorf("rtt: line %d: unknown flag %q", line, fields[4])
				}
				vp.SpoofTCP = true
			}
			vps = append(vps, vp)
		case "ping", "trace":
			if m == nil {
				m = NewMatrix(vps)
			}
			want := 5
			if fields[0] == "trace" {
				want = 4
			}
			if len(fields) != want {
				return nil, fmt.Errorf("rtt: line %d: malformed %s", line, fields[0])
			}
			rttMs, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("rtt: line %d: bad rtt: %w", line, err)
			}
			s := Sample{RTTms: rttMs}
			if fields[0] == "ping" {
				switch fields[4] {
				case "icmp":
					s.Method = ICMP
				case "udp":
					s.Method = UDP
				case "tcp":
					s.Method = TCP
				default:
					return nil, fmt.Errorf("rtt: line %d: bad method %q", line, fields[4])
				}
				if err := m.SetPing(fields[1], fields[2], s); err != nil {
					return nil, fmt.Errorf("rtt: line %d: %w", line, err)
				}
			} else {
				if err := m.SetTrace(fields[1], fields[2], s); err != nil {
					return nil, fmt.Errorf("rtt: line %d: %w", line, err)
				}
			}
		default:
			return nil, fmt.Errorf("rtt: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		m = NewMatrix(vps)
	}
	return m, nil
}
