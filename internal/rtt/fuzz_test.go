package rtt

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrix: arbitrary matrix files must never panic, and anything
// accepted must survive a write/read round trip.
func FuzzReadMatrix(f *testing.F) {
	f.Add("vp a 1.0 2.0\nvp b 3.0 4.0 spoof-tcp\nping N1 a 5.5 icmp\ntrace N1 b 80 \n")
	f.Add("# empty\n")
	f.Add("vp a x y\n")
	f.Add("ping N1 a 5 icmp\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrix(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, m); err != nil {
			t.Fatalf("accepted matrix failed to serialise: %v", err)
		}
		m2, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(m2.VPs()) != len(m.VPs()) || len(m2.Routers()) != len(m.Routers()) {
			t.Fatalf("round trip changed shape")
		}
	})
}
