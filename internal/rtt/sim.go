package rtt

import (
	"math/rand"

	"hoiho/internal/geo"
)

// DelayModel parameterises the synthetic probe campaign that substitutes
// for the Ark measurement infrastructure. RTTs are generated as
//
//	rtt = minRTT(vp, router) * inflation + lastMile + jitter
//
// where inflation models route stretch (fibre does not follow great
// circles), lastMile models access/queueing floors, and jitter adds
// per-probe noise. Generated RTTs are never below the speed-of-light
// minimum for honest VPs, so the RTT-consistency predicate holds for
// true locations by construction — the property the paper's method
// relies on.
type DelayModel struct {
	InflationMin float64 // minimum multiplicative path stretch (>= 1)
	InflationMax float64 // maximum multiplicative path stretch
	LastMileMs   float64 // additive floor per measurement
	JitterMs     float64 // maximum additive per-probe noise

	// Response probabilities per probe method, tried in order
	// (ICMP, then UDP, then TCP), matching the paper's campaign.
	RespondICMP float64
	RespondUDP  float64
	RespondTCP  float64

	// Samples is the number of probes per router/VP pair; the minimum is
	// recorded (paper: minimum of three).
	Samples int
}

// DefaultDelayModel returns the model used for the reproduction corpora:
// moderate path stretch, a 1 ms floor, 2 ms jitter, ~82% of routers
// responsive (the paper's IPv4 figure) mostly via ICMP.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		InflationMin: 1.15,
		InflationMax: 2.2,
		LastMileMs:   1.0,
		JitterMs:     2.0,
		RespondICMP:  0.70,
		RespondUDP:   0.25,
		RespondTCP:   0.60,
		Samples:      3,
	}
}

// sampleRTT draws one probe RTT between two points.
func (dm *DelayModel) sampleRTT(rng *rand.Rand, from, to geo.LatLong) float64 {
	minRTT := geo.MinRTTms(from, to)
	inflation := dm.InflationMin + rng.Float64()*(dm.InflationMax-dm.InflationMin)
	return minRTT*inflation + dm.LastMileMs + rng.Float64()*dm.JitterMs
}

// MinOfN draws n probes and returns the minimum RTT, mirroring the
// campaign's min-of-three filtering.
func (dm *DelayModel) MinOfN(rng *rand.Rand, from, to geo.LatLong, n int) float64 {
	if n < 1 {
		n = 1
	}
	best := dm.sampleRTT(rng, from, to)
	for i := 1; i < n; i++ {
		if r := dm.sampleRTT(rng, from, to); r < best {
			best = r
		}
	}
	return best
}

// Responsiveness describes which probe method a router answers, drawn
// once per router so that a router unresponsive to ICMP stays
// unresponsive to ICMP from every VP.
type Responsiveness struct {
	ICMP bool
	UDP  bool
	TCP  bool
}

// Responds reports whether the router answers any probe method.
func (r Responsiveness) Responds() bool { return r.ICMP || r.UDP || r.TCP }

// DrawResponsiveness samples a router's probe-method responsiveness.
func (dm *DelayModel) DrawResponsiveness(rng *rand.Rand) Responsiveness {
	return Responsiveness{
		ICMP: rng.Float64() < dm.RespondICMP,
		UDP:  rng.Float64() < dm.RespondUDP,
		TCP:  rng.Float64() < dm.RespondTCP,
	}
}

// Probe simulates the campaign's probing of one router from one VP:
// ICMP first, then UDP, then TCP (the paper used TCP only when ICMP and
// UDP failed, to minimise impact). It returns the sample and true when
// the router answered any method. A spoofing VP returns a bogus 1-2 ms
// TCP sample even for unresponsive routers.
func (dm *DelayModel) Probe(rng *rand.Rand, vp *VP, routerPos geo.LatLong, resp Responsiveness) (Sample, bool) {
	switch {
	case resp.ICMP:
		return Sample{RTTms: dm.MinOfN(rng, vp.Pos, routerPos, dm.Samples), Method: ICMP}, true
	case resp.UDP:
		return Sample{RTTms: dm.MinOfN(rng, vp.Pos, routerPos, dm.Samples), Method: UDP}, true
	case vp.SpoofTCP:
		// The VP's access router answers the TCP ACK itself.
		return Sample{RTTms: 1 + rng.Float64(), Method: TCP}, true
	case resp.TCP:
		return Sample{RTTms: dm.MinOfN(rng, vp.Pos, routerPos, dm.Samples), Method: TCP}, true
	default:
		return Sample{}, false
	}
}

// TraceObservation models the RTT recorded when a traceroute from vp
// happened to traverse the router: substantially more inflated than a
// direct ping (the paper measured a 4.25x median gap, fig. 5a).
func (dm *DelayModel) TraceObservation(rng *rand.Rand, vp *VP, routerPos geo.LatLong) Sample {
	base := dm.MinOfN(rng, vp.Pos, routerPos, 1)
	// Traceroute RTTs include detours through the destination-ward path
	// and router control-plane generation latency.
	inflate := 2.0 + rng.Float64()*4.0
	return Sample{RTTms: base*inflate + 2.0, Method: ICMP}
}
