// Package rtt implements the delay-measurement plane of the Hoiho method
// (paper §5.1.4): a set of vantage points (VPs) with known locations, a
// matrix of minimum round-trip times from each VP to each router, and the
// RTT-consistency predicate that decides whether a candidate geohint
// location is physically plausible given every measurement.
//
// The package also provides the probe simulator that substitutes for
// CAIDA's Ark measurement infrastructure: it synthesises ping campaigns
// (ICMP, then UDP, then TCP probes; minimum of three samples) over a
// ground-truth topology, including the pathological access routers the
// paper found spoofing TCP resets with 1–2 ms RTTs.
package rtt

import (
	"fmt"
	"math"
	"sort"

	"hoiho/internal/geo"
)

// Method identifies how an RTT sample was solicited.
type Method int

// Probe methods, in the order the paper's campaign tries them.
const (
	ICMP Method = iota // ICMP echo
	UDP                // UDP to an unused port, ICMP port unreachable back
	TCP                // TCP ACK to port 80, TCP RST back
)

// String returns the probe method name.
func (m Method) String() string {
	switch m {
	case ICMP:
		return "icmp"
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// VP is a measurement vantage point with a known location.
type VP struct {
	Name    string // e.g. "cgs-us"
	City    string
	Country string
	Pos     geo.LatLong
	// SpoofTCP marks a VP whose access router spoofs TCP RST responses,
	// returning 1-2ms RTTs regardless of target distance (paper §5.1.4
	// discarded TCP RTTs from seven such VPs).
	SpoofTCP bool
}

// Sample is one minimum-of-three RTT measurement.
type Sample struct {
	RTTms  float64
	Method Method
}

// Matrix stores per-router RTT samples from every VP, for both the
// followup ping campaign and the RTTs observed in the traceroutes that
// assembled the topology (the only RTTs DRoP used; see paper fig. 5).
type Matrix struct {
	vps   []*VP
	vpIx  map[string]int
	ping  map[string][]Sample // router ID -> per-VP sample (NaN = none)
	trace map[string][]Sample
}

// NewMatrix returns a matrix over the given vantage points.
func NewMatrix(vps []*VP) *Matrix {
	m := &Matrix{
		vps:   vps,
		vpIx:  make(map[string]int, len(vps)),
		ping:  make(map[string][]Sample),
		trace: make(map[string][]Sample),
	}
	for i, vp := range vps {
		m.vpIx[vp.Name] = i
	}
	return m
}

// VPs returns the matrix's vantage points.
func (m *Matrix) VPs() []*VP { return m.vps }

// VP returns the vantage point with the given name, or nil.
func (m *Matrix) VP(name string) *VP {
	if i, ok := m.vpIx[name]; ok {
		return m.vps[i]
	}
	return nil
}

func (m *Matrix) row(table map[string][]Sample, router string) []Sample {
	row := table[router]
	if row == nil {
		row = make([]Sample, len(m.vps))
		for i := range row {
			row[i].RTTms = math.NaN()
		}
		table[router] = row
	}
	return row
}

// SetPing records a followup ping sample; an existing larger sample is
// replaced (minimum RTT filtering).
func (m *Matrix) SetPing(router, vp string, s Sample) error {
	return m.set(m.ping, router, vp, s)
}

// SetTrace records a traceroute-observed RTT sample.
func (m *Matrix) SetTrace(router, vp string, s Sample) error {
	return m.set(m.trace, router, vp, s)
}

func (m *Matrix) set(table map[string][]Sample, router, vp string, s Sample) error {
	i, ok := m.vpIx[vp]
	if !ok {
		return fmt.Errorf("rtt: unknown VP %q", vp)
	}
	if s.RTTms < 0 || math.IsNaN(s.RTTms) {
		return fmt.Errorf("rtt: invalid RTT %v", s.RTTms)
	}
	row := m.row(table, router)
	if math.IsNaN(row[i].RTTms) || s.RTTms < row[i].RTTms {
		row[i] = s
	}
	return nil
}

// Ping returns the followup ping sample from vp to router.
func (m *Matrix) Ping(router, vp string) (Sample, bool) {
	return m.get(m.ping, router, vp)
}

// Trace returns the traceroute-observed sample from vp to router.
func (m *Matrix) Trace(router, vp string) (Sample, bool) {
	return m.get(m.trace, router, vp)
}

func (m *Matrix) get(table map[string][]Sample, router, vp string) (Sample, bool) {
	i, ok := m.vpIx[vp]
	if !ok {
		return Sample{}, false
	}
	row, ok := table[router]
	if !ok || math.IsNaN(row[i].RTTms) {
		return Sample{}, false
	}
	return row[i], true
}

// Measurement pairs a VP with its RTT sample toward some router.
type Measurement struct {
	VP     *VP
	Sample Sample
}

// PingMeasurements returns every followup ping measurement for router,
// sorted by ascending RTT.
func (m *Matrix) PingMeasurements(router string) []Measurement {
	return m.measurements(m.ping, router)
}

// TraceMeasurements returns every traceroute-observed measurement for
// router, sorted by ascending RTT.
func (m *Matrix) TraceMeasurements(router string) []Measurement {
	return m.measurements(m.trace, router)
}

func (m *Matrix) measurements(table map[string][]Sample, router string) []Measurement {
	row, ok := table[router]
	if !ok {
		return nil
	}
	out := make([]Measurement, 0, len(row))
	for i, s := range row {
		if !math.IsNaN(s.RTTms) {
			out = append(out, Measurement{VP: m.vps[i], Sample: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sample.RTTms < out[j].Sample.RTTms })
	return out
}

// MinPing returns the smallest followup ping RTT for router and the VP
// that measured it.
func (m *Matrix) MinPing(router string) (Measurement, bool) {
	ms := m.PingMeasurements(router)
	if len(ms) == 0 {
		return Measurement{}, false
	}
	return ms[0], true
}

// MinTrace returns the smallest traceroute-observed RTT for router.
func (m *Matrix) MinTrace(router string) (Measurement, bool) {
	ms := m.TraceMeasurements(router)
	if len(ms) == 0 {
		return Measurement{}, false
	}
	return ms[0], true
}

// HasPing reports whether any VP has a ping sample for router. It is
// called once per hostname in stage 2 and once per candidate evaluation
// in stage 3, so it scans the row directly instead of materializing the
// sorted measurement slice.
func (m *Matrix) HasPing(router string) bool {
	for _, s := range m.ping[router] {
		if !math.IsNaN(s.RTTms) {
			return true
		}
	}
	return false
}

// Consistent reports whether a candidate location for router is
// RTT-consistent: for every VP with a ping sample, the measured RTT must
// be no smaller than the theoretical best-case RTT from the VP to the
// candidate (paper §5.2). toleranceMs absorbs measurement granularity.
// A router with no samples is vacuously consistent with any location.
func (m *Matrix) Consistent(router string, candidate geo.LatLong, toleranceMs float64) bool {
	row, ok := m.ping[router]
	if !ok {
		return true
	}
	for i, s := range row {
		if math.IsNaN(s.RTTms) {
			continue
		}
		if !geo.RTTConsistent(m.vps[i].Pos, candidate, s.RTTms, toleranceMs) {
			return false
		}
	}
	return true
}

// Constraints converts a router's ping measurements into CBG constraints.
func (m *Matrix) Constraints(router string) []geo.Constraint {
	var out []geo.Constraint
	for _, me := range m.PingMeasurements(router) {
		out = append(out, geo.Constraint{VP: me.VP.Pos, RTTms: me.Sample.RTTms})
	}
	return out
}

// Routers returns the IDs of routers with at least one ping sample,
// sorted lexicographically.
func (m *Matrix) Routers() []string {
	out := make([]string, 0, len(m.ping))
	for id := range m.ping {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// DropTCPFrom removes TCP-method ping samples recorded from the named
// VPs — the paper's remedy after detecting spoofed TCP resets.
func (m *Matrix) DropTCPFrom(vpNames []string) int {
	drop := make(map[int]bool)
	for _, n := range vpNames {
		if i, ok := m.vpIx[n]; ok {
			drop[i] = true
		}
	}
	removed := 0
	for _, row := range m.ping {
		for i := range row {
			if drop[i] && !math.IsNaN(row[i].RTTms) && row[i].Method == TCP {
				row[i].RTTms = math.NaN()
				removed++
			}
		}
	}
	return removed
}

// DetectTCPSpoofers identifies VPs whose TCP samples are implausibly
// small across many distant routers: a VP is flagged when it has at
// least minSamples TCP samples and at least 90% of them are under 3 ms.
// Real campaigns see sub-3ms TCP RTTs only to nearby targets, so a VP
// answering everything in 1-2 ms has a spoofing access router.
func (m *Matrix) DetectTCPSpoofers(minSamples int) []string {
	type acc struct{ total, tiny int }
	counts := make([]acc, len(m.vps))
	for _, row := range m.ping {
		for i, s := range row {
			if math.IsNaN(s.RTTms) || s.Method != TCP {
				continue
			}
			counts[i].total++
			if s.RTTms < 3 {
				counts[i].tiny++
			}
		}
	}
	var out []string
	for i, c := range counts {
		if c.total >= minSamples && float64(c.tiny) >= 0.9*float64(c.total) {
			out = append(out, m.vps[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
