package abbrev

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExamples(t *testing.T) {
	cases := []struct {
		abbr, place string
		want        bool
	}{
		// §5.4 examples.
		{"ash", "Ashburn", true},
		{"mlan", "Milan", true},
		{"nyk", "New York", true},
		{"nwk", "New York", false}, // k in "york" but y never matched
		{"tok", "Tokyo", true},
		{"tor", "Toronto", true},
		{"wdc", "Washington", false}, // d,c not in order... d-c? wash-ing-ton: no d
		{"ldn", "London", true},
		{"zur", "Zurich", true},
		{"hlm", "Haarlem", true},
		{"hlm", "Helmond", true},
		{"hlm", "Hilversum", true},
		// "mancen" is a CLLI-shaped code: stage 4 strips the country part
		// ("en") and matches the 4-letter city part against the name.
		{"manc", "Manchester", true},
		{"mancen", "Manchester", false}, // the trailing "n" after "e" breaks the subsequence
		{"mlanit", "Milan", false},      // "it" is a country code, not part of the city
		{"fra", "Frankfurt am Main", true},
	}
	for _, c := range cases {
		if got := Matches(c.abbr, c.place); got != c.want {
			t.Errorf("Matches(%q,%q) = %v, want %v", c.abbr, c.place, got, c.want)
		}
	}
}

func TestFirstCharacterMustMatch(t *testing.T) {
	if Matches("sh", "Ashburn") {
		t.Error("sh should not match Ashburn (first char differs)")
	}
	if Matches("burn", "Ashburn") {
		t.Error("burn should not match Ashburn")
	}
}

func TestInOrderSubsequence(t *testing.T) {
	if Matches("anh", "Ashburn") {
		t.Error("anh is not an in-order subsequence of ashburn")
	}
	if !Matches("abrn", "Ashburn") {
		t.Error("abrn is an in-order subsequence of ashburn")
	}
	if !Matches("ashburn", "Ashburn") {
		t.Error("full name should match itself")
	}
}

func TestMultiWordFirstLetterRule(t *testing.T) {
	cases := []struct {
		abbr, place string
		want        bool
	}{
		{"sj", "San Jose", true},
		{"sjc", "San Jose", false}, // c not in san jose after j... "jose": j-o-s-e, no c
		{"sanjose", "San Jose", true},
		{"slc", "Salt Lake City", true},
		{"sl", "Salt Lake City", true},
		{"sfo", "San Francisco", false}, // o only after f? s(an) f(rancisco) o? f-r-a-n... o at end: francisco has o. true?
	}
	// "sfo": s matches "san" first letter, f matches "francisco" first
	// letter, o appears later in "francisco" — so it IS a valid match.
	cases[5].want = true
	for _, c := range cases {
		if got := Matches(c.abbr, c.place); got != c.want {
			t.Errorf("Matches(%q,%q) = %v, want %v", c.abbr, c.place, got, c.want)
		}
	}
}

func TestSkippingWordsAllowed(t *testing.T) {
	// An abbreviation may skip leading words only if the first characters
	// still match (rule 1 anchors to the full name's first char).
	if Matches("lake", "Salt Lake City") {
		t.Error("lake does not start with s")
	}
	// But skipping middle words is fine: "scity" = s(alt) + city.
	if !Matches("scity", "Salt Lake City") {
		t.Error("scity should match Salt Lake City")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Matches("", "Ashburn") {
		t.Error("empty abbr should not match")
	}
	if Matches("a", "") {
		t.Error("empty place should not match")
	}
	if Matches("", "") {
		t.Error("both empty should not match")
	}
	if !Matches("a", "Ashburn") {
		t.Error("single matching char should match")
	}
}

func TestMatchesPlaceName(t *testing.T) {
	// §5.4: place-name conventions require >= 4 contiguous characters.
	if !MatchesPlaceName("ftcollins", "Fort Collins", 4) {
		t.Error("ftcollins should match Fort Collins with 4 contiguous chars")
	}
	if MatchesPlaceName("ftcl", "Fort Collins", 4) {
		t.Error("ftcl shares no 4 contiguous chars with fortcollins")
	}
	if !MatchesPlaceName("ftcl", "Fort Collins", 1) {
		t.Error("with minContig=1 the subsequence rule alone decides")
	}
	if MatchesPlaceName("xcollins", "Fort Collins", 4) {
		t.Error("first character must still match")
	}
	if !MatchesPlaceName("washington", "Washington", 4) {
		t.Error("identical name should pass")
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ftcollins", "fortcollins", 8}, // "tcollins"
		{"abc", "xyz", 0},
		{"", "abc", 0},
		{"abc", "", 0},
		{"abc", "abc", 3},
		{"xabcy", "zabcw", 3},
	}
	for _, c := range cases {
		if got := longestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("lcs(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMatchesProperties(t *testing.T) {
	// Any prefix of a single-word place name matches.
	f := func(n uint8) bool {
		place := "amsterdam"
		k := 1 + int(n)%len(place)
		return Matches(place[:k], place)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Deleting interior characters of a one-word name preserves matching.
	g := func(n uint8) bool {
		place := "rotterdam"
		i := 1 + int(n)%(len(place)-1)
		abbr := place[:i] + place[i+1:]
		return Matches(abbr, place)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchesNeverPanicsOnArbitraryInput(t *testing.T) {
	f := func(abbr, place string) bool {
		// Just exercise; any result is fine as long as no panic and the
		// empty-abbr invariant holds.
		got := Matches(abbr, place)
		if strings.TrimSpace(strings.ToLower(abbr)) == "" && got {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if !Matches("ASH", "ashburn") {
		t.Error("matching should be case-insensitive")
	}
	if !Matches("ash", "ASHBURN") {
		t.Error("matching should be case-insensitive")
	}
}

func TestBacktrackingNeeded(t *testing.T) {
	// Greedy left-to-right matching would consume the first 'o' of
	// "colorado" for the 'o' in "cos" and still succeed here; construct a
	// case where naive greedy fails but backtracking succeeds:
	// abbr "cdo" vs "colorado springs": c-d-o must use colorado's d then
	// a later o; a greedy matcher that binds the first o before d would
	// fail. Our matcher must succeed.
	if !Matches("cdo", "Colorado Springs") {
		t.Error("cdo should match colorado (c..d..o)")
	}
}
