// Package abbrev implements the abbreviation heuristics the Hoiho method
// uses to learn operator-specific geohints (paper §5.4). Lacking the
// surrounding text that NLP acronym learners rely on, the method accepts
// a candidate string as an abbreviation of a place name when:
//
//  1. every character of the candidate appears in the place name in
//     order, and the first characters match ("ash" ~ "Ashburn",
//     "mlan" ~ "Milan");
//  2. for multi-word place names, characters of a word may only be
//     matched after that word's first letter has been matched
//     ("nyk" ~ "New York", but "nwk" is rejected because "k" belongs to
//     "york" whose "y" was never matched);
//  3. when the convention being refined extracts full place names, the
//     candidate must additionally share at least four contiguous
//     characters with the place name ("ftcollins" ~ "Fort Collins").
package abbrev

import (
	"strings"

	"hoiho/internal/geodict"
)

// Matches reports whether abbr is an acceptable abbreviation of the
// place name under rules 1 and 2. Both arguments may contain arbitrary
// case and punctuation; matching is performed on lower-case words.
func Matches(abbr, place string) bool {
	abbr = strings.ToLower(strings.TrimSpace(abbr))
	if abbr == "" {
		return false
	}
	words := geodict.SplitWords(place)
	if len(words) == 0 {
		return false
	}
	// Rule 1: the first character of the abbreviation must match the
	// first character of the place name.
	if abbr[0] != words[0][0] {
		return false
	}
	return matchWords(abbr, words)
}

// matchWords reports whether abbr can be matched as an in-order
// subsequence of the concatenated words, where within each word the
// word's first letter must be matched before any other letter of that
// word. Implemented with memoized backtracking over (abbr index, word
// index, position within word).
func matchWords(abbr string, words []string) bool {
	type state struct{ ai, wi, pi int }
	seen := make(map[state]bool)

	var rec func(ai, wi, pi int) bool
	rec = func(ai, wi, pi int) bool {
		if ai == len(abbr) {
			return true
		}
		if wi == len(words) {
			return false
		}
		st := state{ai, wi, pi}
		if seen[st] {
			return false
		}
		seen[st] = true

		word := words[wi]
		// Option A: advance to the next word (abandoning the rest of the
		// current word). The next word's matching must begin at its
		// first letter (pi=0 enforces rule 2: the first character
		// matched in a word is its first letter).
		if rec(ai, wi+1, 0) {
			return true
		}
		// Option B: match abbr[ai] within the current word.
		if pi == 0 {
			// Must match the word's first letter first.
			if abbr[ai] == word[0] && rec(ai+1, wi, 1) {
				return true
			}
			return false
		}
		// The word has started; abbr[ai] may match any later character.
		for p := pi; p < len(word); p++ {
			if word[p] == abbr[ai] && rec(ai+1, wi, p+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0, 0)
}

// MatchesPlaceName applies rule 3 on top of Matches: the candidate must
// share a contiguous common substring of at least minContig characters
// with the normalized place name. The paper uses minContig = 4 for
// conventions that extract full place names.
func MatchesPlaceName(abbr, place string, minContig int) bool {
	if !Matches(abbr, place) {
		return false
	}
	if minContig <= 1 {
		return true
	}
	a := geodict.NormalizeName(abbr)
	p := geodict.NormalizeName(place)
	return longestCommonSubstring(a, p) >= minContig
}

// longestCommonSubstring returns the length of the longest contiguous
// substring common to a and b (classic DP, O(len(a)*len(b))).
func longestCommonSubstring(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}
