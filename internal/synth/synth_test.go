package synth

import (
	"strings"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/names"

	"hoiho/internal/abbrev"
	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
)

func smallParams(seed int64) Params {
	p, _ := ITDKPreset("ipv4-aug2020")
	p.Seed = seed
	p.Operators = 8
	p.Tiny = 3
	p.Noise = 4
	p.VPs = 12
	p.SpoofVPs = 1
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Corpus.Len() != w2.Corpus.Len() {
		t.Fatalf("non-deterministic router counts: %d vs %d", w1.Corpus.Len(), w2.Corpus.Len())
	}
	for i, r1 := range w1.Corpus.Routers {
		r2 := w2.Corpus.Routers[i]
		if r1.ID != r2.ID || len(r1.Interfaces) != len(r2.Interfaces) {
			t.Fatalf("router %d differs: %s vs %s", i, r1.ID, r2.ID)
		}
		if r1.Interfaces[0].Hostname != r2.Interfaces[0].Hostname {
			t.Fatalf("hostname differs: %q vs %q", r1.Interfaces[0].Hostname, r2.Interfaces[0].Hostname)
		}
	}
	// Different seeds diverge.
	w3, _ := Generate(smallParams(8))
	same := w1.Corpus.Len() == w3.Corpus.Len()
	if same {
		diff := false
		for i := range w1.Corpus.Routers {
			if w1.Corpus.Routers[i].Interfaces[0].Hostname != w3.Corpus.Routers[i].Interfaces[0].Hostname {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"ipv4-aug2020", "ipv4-mar2021", "ipv6-nov2020", "ipv6-mar2021"} {
		p, err := ITDKPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.Operators == 0 || p.VPs == 0 {
			t.Errorf("preset %s malformed: %+v", name, p)
		}
	}
	if _, err := ITDKPreset("bogus"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestWorldShape(t *testing.T) {
	w, err := Generate(smallParams(42))
	if err != nil {
		t.Fatal(err)
	}
	if w.Corpus.Len() < 50 {
		t.Errorf("corpus too small: %d routers", w.Corpus.Len())
	}
	if len(w.Matrix.VPs()) != 12 {
		t.Errorf("VPs = %d, want 12", len(w.Matrix.VPs()))
	}
	stats := w.Corpus.Stats()
	if stats.WithTruth != stats.Routers {
		t.Errorf("every synthetic router has ground truth: %+v", stats)
	}
	frac := float64(stats.WithHostname) / float64(stats.Routers)
	if frac < 0.3 || frac > 1.0 {
		t.Errorf("hostname fraction = %.2f", frac)
	}
	// Every spec site code is recorded in TruthHints.
	for _, spec := range w.Specs {
		hints := w.TruthHints[spec.Suffix]
		for _, site := range spec.Sites {
			if hints[site.Code] == nil {
				t.Errorf("%s: site code %q missing from TruthHints", spec.Suffix, site.Code)
			}
		}
	}
}

func TestCustomCodesAreLearnableAbbreviations(t *testing.T) {
	w, err := Generate(smallParams(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range w.Specs {
		for _, site := range spec.Sites {
			if !site.Custom {
				continue
			}
			switch spec.Style {
			case StyleIATA, StyleIATACC:
				if !abbrev.Matches(site.Code, site.Loc.City) {
					t.Errorf("%s: custom IATA %q is not an abbreviation of %q",
						spec.Suffix, site.Code, site.Loc.City)
				}
			case StyleCLLI, StyleSplitCLLI:
				if len(site.Code) != 6 {
					t.Errorf("custom CLLI %q not 6 letters", site.Code)
				} else if !abbrev.Matches(site.Code[:4], site.Loc.City) {
					t.Errorf("custom CLLI city part %q !~ %q", site.Code[:4], site.Loc.City)
				}
			case StyleLocode:
				if len(site.Code) != 5 {
					t.Errorf("custom LOCODE %q not 5 letters", site.Code)
				} else if !strings.HasPrefix(site.Code, site.Loc.Country) {
					t.Errorf("custom LOCODE %q lacks country prefix %q", site.Code, site.Loc.Country)
				}
			}
		}
	}
}

func TestHonestPingsRespectPhysics(t *testing.T) {
	w, err := Generate(smallParams(5))
	if err != nil {
		t.Fatal(err)
	}
	w.CleanSpoofers()
	checked := 0
	for _, id := range w.Matrix.Routers() {
		loc := w.TruthRouter[id]
		for _, m := range w.Matrix.PingMeasurements(id) {
			if m.Sample.RTTms < geo.MinRTTms(m.VP.Pos, loc.Pos)-1e-9 {
				t.Fatalf("router %s: RTT %.2f from %s below physical floor %.2f",
					id, m.Sample.RTTms, m.VP.Name, geo.MinRTTms(m.VP.Pos, loc.Pos))
			}
			checked++
		}
	}
	if checked < 100 {
		t.Errorf("too few samples checked: %d", checked)
	}
}

func TestSpooferDetection(t *testing.T) {
	p := smallParams(11)
	p.SpoofVPs = 2
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	spoofers := w.CleanSpoofers()
	if len(spoofers) == 0 {
		t.Error("spoofing VPs should be detected")
	}
	// The flagged VPs must be the configured spoofers.
	for _, name := range spoofers {
		if vp := w.Matrix.VP(name); vp == nil || !vp.SpoofTCP {
			t.Errorf("flagged VP %s is not a spoofer", name)
		}
	}
}

func TestPipelineOnSyntheticWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	w, err := Generate(smallParams(2021))
	if err != nil {
		t.Fatal(err)
	}
	w.CleanSpoofers()
	res, err := core.Run(w.Inputs(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	usable := res.UsableNCs()
	substantial := 0
	for _, spec := range w.Specs {
		if len(spec.Sites) >= 3 {
			substantial++
		}
	}
	if len(usable) < substantial/2 {
		t.Errorf("usable NCs = %d of %d substantial operators", len(usable), substantial)
	}
	// Learned hints should usually match the generator's intent.
	correct, wrong := 0, 0
	for _, nc := range res.NCs {
		truth := w.TruthHints[nc.Suffix]
		for _, lh := range nc.Learned {
			want := truth[lh.Hint]
			if want == nil {
				continue
			}
			if geo.DistanceKm(lh.Loc.Pos, want.Pos) <= 40 {
				correct++
			} else {
				wrong++
			}
		}
	}
	if correct+wrong > 0 && float64(correct)/float64(correct+wrong) < 0.6 {
		t.Errorf("learned hints mostly wrong: %d correct, %d wrong", correct, wrong)
	}
	// Noise suffixes must not yield usable NCs.
	for suffix, nc := range res.NCs {
		if strings.HasPrefix(suffix, "noise") && nc.Class.Usable() {
			t.Errorf("noise suffix %s classified %s", suffix, nc.Class)
		}
	}
}

func TestStyleStrings(t *testing.T) {
	for s := StyleIATA; s < numStyles; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "style(") {
			t.Errorf("style %d has no name", s)
		}
		if s.HintType() == geodict.HintNone {
			t.Errorf("style %s has no hint type", s)
		}
	}
}

func TestWorldFeedsNamesAndASNLearning(t *testing.T) {
	w, err := Generate(smallParams(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ASNs) == 0 {
		t.Fatal("generator produced no interconnect ASN ground truth")
	}
	// The ASN capability learns from the interconnect hostnames.
	asnConvs := asn.Learn(w.Corpus, w.PSL, asn.AddrMap(w.ASNs), asn.DefaultConfig())
	if len(asnConvs) == 0 {
		t.Error("no ASN conventions learned from the synthetic world")
	}
	for _, c := range asnConvs {
		if c.PPV() < 0.9 {
			t.Errorf("%s: ASN PPV %.2f below threshold", c.Suffix, c.PPV())
		}
	}
	// The router-name capability learns from multi-hostname routers.
	nameConvs := names.Learn(w.Corpus, w.PSL, 3)
	if len(nameConvs) == 0 {
		t.Error("no router-name conventions learned from the synthetic world")
	}
}
