package synth

import (
	"fmt"
	"net/netip"

	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
)

var ifcPool = []string{
	"ae-1", "ae-2", "ae-11", "xe-0-0-0", "xe-1-2-0", "ge-0-1", "te0-0-2",
	"0", "po-3", "hu0-0-0-1", "et-2-1-0", "100ge3-1", "be-33",
}

var rolePool = []string{"cr", "br", "gw", "core", "edge", "ar", "mpr", "bcr"}

var noiseWords = []string{"static", "cust", "mgmt", "loop", "dsl", "dhcp", "pool", "ptr"}

var customerNames = []string{"acme", "initech", "umbrella", "globex", "hooli", "stark", "wayne", "tyrell"}

// nextAddr allocates a unique synthetic address.
func (g *generator) nextAddr(ipv6 bool) netip.Addr {
	g.ipN++
	if ipv6 {
		return netip.MustParseAddr(fmt.Sprintf("2001:db8:%x:%x::1", g.ipN>>16, g.ipN&0xffff))
	}
	// 10.x.y.z gives us ~16M unique addresses.
	return netip.MustParseAddr(fmt.Sprintf("10.%d.%d.%d",
		(g.ipN>>16)&0xff, (g.ipN>>8)&0xff, g.ipN&0xff))
}

// emitOperator creates the routers and hostnames for one operator.
func (g *generator) emitOperator(w *World, spec *OperatorSpec) {
	hints := w.TruthHints[spec.Suffix]
	if hints == nil {
		hints = make(map[string]*geodict.Location)
		w.TruthHints[spec.Suffix] = hints
	}
	for _, site := range spec.Sites {
		hints[site.Code] = site.Loc
	}

	routerN := 0
	siteRouters := make([][]string, len(spec.Sites))
	for si, site := range spec.Sites {
		// Between 2 and 2*RoutersPerSite-2 routers per PoP; real PoPs
		// hold several devices, which also gives stage 4 the congruent
		// routers it needs.
		n := 2 + g.rng.Intn(spec.RoutersPerSite*2-3)
		for i := 0; i < n; i++ {
			routerN++
			id := fmt.Sprintf("%s-N%d", spec.Suffix, routerN)
			r := &itdk.Router{
				ID: id,
				Truth: &itdk.GroundTruth{
					City: site.Loc.City, Region: site.Loc.Region,
					Country: site.Loc.Country, Pos: site.Loc.Pos,
				},
			}
			w.TruthRouter[id] = site.Loc

			// Each router has a stable device name ("cr2") shared by
			// all its hostnames — the router-name signal of Hoiho's
			// IMC 2019 work.
			role := rolePool[g.rng.Intn(len(rolePool))]
			rn := 1 + g.rng.Intn(4)

			hostname := ""
			named := false
			if g.rng.Float64() < spec.HostnameRate {
				named = true
				switch {
				case g.rng.Float64() > spec.ConsistencyRate:
					hostname = g.noiseHostname(spec.Suffix)
				case g.rng.Float64() < spec.StaleRate && len(spec.Sites) > 1:
					// Stale hostname: another site's code.
					other := spec.Sites[(si+1+g.rng.Intn(len(spec.Sites)-1))%len(spec.Sites)]
					hostname = g.renderHostname(spec, other, i, role, rn)
					w.HintHostnames[hostname] = spec.Suffix
				default:
					hostname = g.renderHostname(spec, site, i, role, rn)
					w.HintHostnames[hostname] = spec.Suffix
				}
			}
			nIfc := 1 + g.rng.Intn(2)
			for k := 0; k < nIfc; k++ {
				ifc := itdk.Interface{Addr: g.nextAddr(w.Corpus.IPv6)}
				if k == 0 {
					ifc.Hostname = hostname
					// Some interfaces face a customer: the hostname
					// gains an interconnect label embedding the
					// customer's ASN (Hoiho's IMC 2020 signal).
					if named && !spec.Sloppy && hostname != "" &&
						g.rng.Float64() < 0.12 {
						custASN := uint32(64000 + g.rng.Intn(1500))
						cust := customerNames[g.rng.Intn(len(customerNames))]
						ifc.Hostname = fmt.Sprintf("as%d-%s.%s", custASN, cust, hostname)
						delete(w.HintHostnames, hostname)
						w.HintHostnames[ifc.Hostname] = spec.Suffix
						w.ASNs[ifc.Addr] = custASN
					}
				} else if named && !spec.Sloppy && hostname != "" && g.rng.Float64() < 0.5 {
					// Additional interface on the same device: same
					// router name, different interface prefix.
					ifc.Hostname = g.renderHostname(spec, site, i, role, rn)
					if ifc.Hostname != "" {
						w.HintHostnames[ifc.Hostname] = spec.Suffix
					}
				}
				r.Interfaces = append(r.Interfaces, ifc)
			}
			if err := w.Corpus.Add(r); err != nil {
				panic(err) // IDs are unique by construction
			}
			siteRouters[si] = append(siteRouters[si], id)
		}
	}
	// Intra-operator topology: routers within a PoP form a chain, and
	// the first router of each PoP links to the next PoP's — the
	// router-level adjacencies TBG exploits.
	for si, ids := range siteRouters {
		for k := 1; k < len(ids); k++ {
			mustLink(w, ids[k-1], ids[k])
		}
		if si > 0 && len(siteRouters[si-1]) > 0 && len(ids) > 0 {
			mustLink(w, siteRouters[si-1][0], ids[0])
		}
	}
}

func mustLink(w *World, a, b string) {
	if err := w.Corpus.AddLink(a, b); err != nil {
		panic(err)
	}
}

// renderHostname renders a router hostname per the operator's style.
// Roughly 40% of hostnames omit the site-number digits after the code
// ("lhr" instead of "lhr2") — real operators do both, which is what
// drives the \d+ → \d* merging of appendix A phase 2 and what DRoP's
// rigid whole-segment rules can only partially match (paper fig. 2).
func (g *generator) renderHostname(spec *OperatorSpec, site Site, idx int, role string, rn int) string {
	ifc := ifcPool[g.rng.Intn(len(ifcPool))]
	code := site.Code
	// ~40% of hostnames append a site number to the code ("lhr2"); the
	// rest embed it bare ("lhr"). The mix drives appendix A's \d+ → \d*
	// merging, and bounds what DRoP's digit-blind whole-segment rules
	// can match (paper fig. 2).
	if g.rng.Float64() >= 0.6 {
		code = fmt.Sprintf("%s%d", code, 1+idx%4)
	}
	if spec.Sloppy {
		// No stable convention: the code wanders across positions and
		// delimiters, one template drawn per hostname.
		switch g.rng.Intn(5) {
		case 0: // code as its own leading label
			return fmt.Sprintf("%s.%s%d.%s", code, role, rn, spec.Suffix)
		case 1: // code fused with the role by a dash
			return fmt.Sprintf("%s%d-%s.%s.%s", role, rn, code, ifc, spec.Suffix)
		case 2: // code in the middle with a trailing role label
			return fmt.Sprintf("%s.%s.%s%d.%s", ifc, code, role, rn, spec.Suffix)
		case 3: // noise word between code and suffix
			return fmt.Sprintf("%s.%s.%s.%s", role, code,
				noiseWords[g.rng.Intn(len(noiseWords))], spec.Suffix)
		default: // the operator's nominal style
		}
	}
	switch spec.Style {
	case StyleIATA:
		return fmt.Sprintf("%s.%s%d.%s.%s", ifc, role, rn, code, spec.Suffix)
	case StyleIATACC:
		return fmt.Sprintf("%s.%s%d.%s.%s.%s", ifc, role, rn, code, site.CC, spec.Suffix)
	case StyleCLLI:
		return fmt.Sprintf("%s.r%02d.%s.%s.bb.%s", ifc, rn, code, site.CC, spec.Suffix)
	case StyleSplitCLLI:
		return fmt.Sprintf("%s.%s%d.%s-%s.%s", ifc, role, rn, site.Code[:4], site.Code[4:], spec.Suffix)
	case StyleLocode:
		return fmt.Sprintf("%s.%s%d.%s.%s", ifc, role, rn, code, spec.Suffix)
	case StyleCity:
		return fmt.Sprintf("%s.%s.%s.%s", ifc, code, site.CC, spec.Suffix)
	case StyleCityState:
		return fmt.Sprintf("%s.%s.%s.%s.%s", ifc, code, site.Loc.Region, site.CC, spec.Suffix)
	case StyleFacility:
		return fmt.Sprintf("%s.%s.%s.%s", ifc, site.Code, site.Loc.Country, spec.Suffix)
	}
	return ""
}

// noiseHostname renders a hostname with no geohint.
func (g *generator) noiseHostname(suffix string) string {
	w1 := noiseWords[g.rng.Intn(len(noiseWords))]
	return fmt.Sprintf("%s-%d.%s", w1, g.rng.Intn(1000), suffix)
}

// emitNoiseOperator creates an operator whose hostnames never contain
// geohints, exercising the pipeline's rejection path.
func (g *generator) emitNoiseOperator(w *World, i int, hostnameRate float64, meanRouters int) {
	suffix := fmt.Sprintf("noise%02d.%s", i, tlds[g.rng.Intn(len(tlds))])
	n := 1 + g.rng.Intn(2*meanRouters)
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("%s-N%d", suffix, k)
		loc := g.rev.cities[g.rng.Intn(len(g.rev.cities))]
		r := &itdk.Router{
			ID: id,
			Truth: &itdk.GroundTruth{
				City: loc.City, Region: loc.Region, Country: loc.Country, Pos: loc.Pos,
			},
		}
		w.TruthRouter[id] = loc
		ifc := itdk.Interface{Addr: g.nextAddr(w.Corpus.IPv6)}
		// Noise networks name nearly everything (access ISPs with
		// auto-generated PTR records).
		if g.rng.Float64() < hostnameRate+0.35 {
			ifc.Hostname = g.noiseHostname(suffix)
		}
		r.Interfaces = append(r.Interfaces, ifc)
		if err := w.Corpus.Add(r); err != nil {
			panic(err)
		}
	}
}

// emitAnonymous creates routers with no PTR records at all, modelling
// the networks that do not name their infrastructure (the bulk of the
// ITDK's unnamed ~45% of IPv4 routers).
func (g *generator) emitAnonymous(w *World, count int) {
	for k := 0; k < count; k++ {
		id := fmt.Sprintf("anon-N%d", k)
		loc := g.rev.cities[g.rng.Intn(len(g.rev.cities))]
		r := &itdk.Router{
			ID: id,
			Truth: &itdk.GroundTruth{
				City: loc.City, Region: loc.Region, Country: loc.Country, Pos: loc.Pos,
			},
			Interfaces: []itdk.Interface{{Addr: g.nextAddr(w.Corpus.IPv6)}},
		}
		w.TruthRouter[id] = loc
		if err := w.Corpus.Add(r); err != nil {
			panic(err)
		}
	}
}

// measure runs the probe campaign: every router is probed from every VP
// (ping) and observed in traceroute by a small random subset of VPs.
func (g *generator) measure(w *World) {
	dm := g.p.Delay
	vps := w.Matrix.VPs()
	for _, r := range w.Corpus.Routers {
		loc := w.TruthRouter[r.ID]
		if loc == nil {
			continue
		}
		resp := dm.DrawResponsiveness(g.rng)
		for _, vp := range vps {
			if s, ok := dm.Probe(g.rng, vp, loc.Pos, resp); ok {
				if err := w.Matrix.SetPing(r.ID, vp.Name, s); err != nil {
					panic(err)
				}
			}
		}
		// Traceroute observations: 1..TracedVPsMax VPs, weighted toward
		// one (paper fig. 5b: 35.8% observed by a single VP).
		nTrace := 1
		for nTrace < g.p.TracedVPsMax && g.rng.Float64() < 0.45 {
			nTrace++
		}
		perm := g.rng.Perm(len(vps))
		for _, vi := range perm[:nTrace] {
			vp := vps[vi]
			s := dm.TraceObservation(g.rng, vp, loc.Pos)
			if err := w.Matrix.SetTrace(r.ID, vp.Name, s); err != nil {
				panic(err)
			}
		}
	}
}
