// Package synth generates synthetic Internet topology corpora in the
// shape of CAIDA's ITDK, substituting for the proprietary measurement
// infrastructure the paper used (see DESIGN.md §1). A generated World
// contains:
//
//   - operators (domain suffixes), each with a naming convention drawn
//     from the styles the paper documents (§2): IATA codes, CLLI
//     prefixes (whole or split), LOCODEs, city names, facility street
//     addresses — optionally annotated with state/country codes, with
//     configurable rates of operator-invented custom geohints, stale
//     hostnames, and convention-breaking noise;
//   - routers placed in real dictionary cities, with PTR hostnames
//     rendered from the operator's convention;
//   - a vantage-point set and a simulated probe campaign (ICMP/UDP/TCP,
//     min-of-three) producing the ping and traceroute RTT matrices,
//     including TCP-spoofing access routers;
//   - retained ground truth: each router's true location and each
//     custom geohint's true meaning, standing in for the operator
//     emails the paper validated against.
//
// All generation is driven by a seeded PRNG and fully deterministic.
package synth

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"hoiho/internal/abbrev"
	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// Style is a hostname convention family.
type Style int

// Convention styles observed in the wild (paper §2, fig. 6).
const (
	StyleIATA      Style = iota // cr1.lhr15.example.net
	StyleIATACC                 // mpr1.lhr15.uk.example.net
	StyleCLLI                   // r20.snjsca04.us.bb.example.net
	StyleSplitCLLI              // agr2.mtgm-al.example.net
	StyleLocode                 // core1.nlams2.example.net
	StyleCity                   // pos-1.munich3.de.example.net
	StyleCityState              // ae-1.dallas2.tx.us.example.net (the paper's xo.net form)
	StyleFacility               // be-33.529bryant.ca.example.net
	numStyles
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleIATA:
		return "iata"
	case StyleIATACC:
		return "iata+cc"
	case StyleCLLI:
		return "clli"
	case StyleSplitCLLI:
		return "split-clli"
	case StyleLocode:
		return "locode"
	case StyleCity:
		return "city"
	case StyleCityState:
		return "city+state"
	case StyleFacility:
		return "facility"
	}
	return fmt.Sprintf("style(%d)", int(s))
}

// HintType returns the geodict hint type a style embeds.
func (s Style) HintType() geodict.HintType {
	switch s {
	case StyleIATA, StyleIATACC:
		return geodict.HintIATA
	case StyleCLLI, StyleSplitCLLI:
		return geodict.HintCLLI
	case StyleLocode:
		return geodict.HintLocode
	case StyleCity, StyleCityState:
		return geodict.HintPlace
	case StyleFacility:
		return geodict.HintFacility
	}
	return geodict.HintNone
}

// Site is one operator presence: a city and the code the operator uses
// for it.
type Site struct {
	Loc    *geodict.Location
	Code   string // the embedded geohint ("lhr", "snjsca", "munich", ...)
	CC     string // country annotation token, when the style uses one
	Custom bool   // the code is operator-invented (not dictionary-consistent)
}

// OperatorSpec describes one operator's convention.
type OperatorSpec struct {
	Suffix          string
	Style           Style
	Sites           []Site
	RoutersPerSite  int     // mean routers per site
	CustomHintRate  float64 // fraction of sites given invented codes
	StaleRate       float64 // hostnames carrying another site's code
	ConsistencyRate float64 // fraction of hostnames following the convention
	HostnameRate    float64 // fraction of routers with PTR records
	// Sloppy operators embed their geohint at an unstable position,
	// drawing a different hostname template per router — the paper's
	// above.net/aorta.net cases that defeat regex learning.
	Sloppy bool
}

// World is a generated corpus with its measurement plane and retained
// ground truth.
type World struct {
	Name   string
	Corpus *itdk.Corpus
	Matrix *rtt.Matrix
	Dict   *geodict.Dictionary
	PSL    *psl.List
	Specs  []*OperatorSpec

	// TruthHints records the intended meaning of every embedded code:
	// suffix -> code -> location. Custom codes appear here with
	// Custom=true in their Site.
	TruthHints map[string]map[string]*geodict.Location

	// TruthRouter maps router ID to its true location.
	TruthRouter map[string]*geodict.Location

	// HintHostnames maps every hostname rendered from a convention
	// (i.e. known to carry a geohint, including stale ones) to its
	// suffix — the "hostnames we knew from operator feedback contained
	// geohints" set that figure 9 evaluates over.
	HintHostnames map[string]string

	// ASNs maps interconnect interface addresses to the customer ASN
	// embedded in their hostnames — the IP-to-AS ground truth for the
	// ASN-extraction capability.
	ASNs map[netip.Addr]uint32
}

// Inputs assembles the world into pipeline inputs.
func (w *World) Inputs() core.Inputs {
	return core.Inputs{Dict: w.Dict, PSL: w.PSL, Corpus: w.Corpus, RTT: w.Matrix}
}

// Params configures world generation.
type Params struct {
	Name      string
	IPv6      bool
	Seed      int64
	Operators int // operators with geohint conventions
	Tiny      int // tiny operators: 1-2 sites, too small to learn from
	Noise     int // operators with no geohints at all
	VPs       int
	SpoofVPs  int // VPs whose access router spoofs TCP resets
	// HostnameRate is the default fraction of routers with PTR records
	// (the paper: ~55% IPv4, ~16% IPv6).
	HostnameRate float64
	// AnonymousFrac is the fraction of the corpus made of routers with
	// no PTR records at all (networks that do not name infrastructure),
	// which drives the corpus-level hostname coverage toward the
	// paper's Table 1 rates.
	AnonymousFrac float64
	Delay         rtt.DelayModel
	// TracedVPsMax bounds how many VPs observe each router in
	// traceroute (the paper: 35.8% observed by just one VP).
	TracedVPsMax int
	// NoiseRouters is the mean router count per noise operator; noise
	// networks dominate the named-but-geohint-free population, which
	// sets the corpus-level apparent-geohint rate (paper Table 2).
	NoiseRouters int
}

// ITDKPreset returns parameters shaped like one of the paper's four
// ITDKs, scaled ~1000x down for laptop-scale runs. Valid names:
// "ipv4-aug2020", "ipv4-mar2021", "ipv6-nov2020", "ipv6-mar2021".
func ITDKPreset(name string) (Params, error) {
	switch name {
	case "ipv4-aug2020":
		return Params{Name: name, Seed: 20200801, Operators: 42, Noise: 30,
			Tiny: 40, VPs: 28, SpoofVPs: 2, HostnameRate: 0.55, AnonymousFrac: 0.35,
			Delay: rtt.DefaultDelayModel(), TracedVPsMax: 3, NoiseRouters: 45}, nil
	case "ipv4-mar2021":
		return Params{Name: name, Seed: 20210301, Operators: 41, Noise: 30,
			Tiny: 38, VPs: 26, SpoofVPs: 2, HostnameRate: 0.54, AnonymousFrac: 0.35,
			Delay: rtt.DefaultDelayModel(), TracedVPsMax: 3, NoiseRouters: 45}, nil
	case "ipv6-nov2020":
		p := Params{Name: name, IPv6: true, Seed: 20201101, Operators: 14,
			Tiny: 12, Noise: 8, VPs: 13, SpoofVPs: 1, HostnameRate: 0.15,
			AnonymousFrac: 0.6, Delay: rtt.DefaultDelayModel(), TracedVPsMax: 2,
			NoiseRouters: 14}
		p.Delay.RespondICMP = 0.40 // ~46% of IPv6 routers respond
		p.Delay.RespondUDP = 0.08
		p.Delay.RespondTCP = 0.10
		return p, nil
	case "ipv6-mar2021":
		p := Params{Name: name, IPv6: true, Seed: 20210302, Operators: 13,
			Tiny: 11, Noise: 8, VPs: 11, SpoofVPs: 1, HostnameRate: 0.16,
			AnonymousFrac: 0.6, Delay: rtt.DefaultDelayModel(), TracedVPsMax: 2,
			NoiseRouters: 14}
		p.Delay.RespondICMP = 0.38
		p.Delay.RespondUDP = 0.08
		p.Delay.RespondTCP = 0.10
		return p, nil
	}
	return Params{}, fmt.Errorf("synth: unknown preset %q", name)
}

// Generate builds a world from parameters.
func Generate(p Params) (*World, error) {
	dict, err := geodict.Default()
	if err != nil {
		return nil, err
	}
	list, err := psl.Default()
	if err != nil {
		return nil, err
	}
	if p.Operators <= 0 || p.VPs <= 0 {
		return nil, fmt.Errorf("synth: need operators and VPs")
	}
	if p.TracedVPsMax < 1 {
		p.TracedVPsMax = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &generator{p: p, rng: rng, dict: dict, rev: buildReverse(dict)}

	w := &World{
		Name:          p.Name,
		Corpus:        itdk.NewCorpus(p.Name, p.IPv6),
		Dict:          dict,
		PSL:           list,
		TruthHints:    make(map[string]map[string]*geodict.Location),
		TruthRouter:   make(map[string]*geodict.Location),
		HintHostnames: make(map[string]string),
		ASNs:          make(map[netip.Addr]uint32),
	}

	// Vantage points at airport cities; the first SpoofVPs spoof TCP.
	vps := g.makeVPs(p.VPs, p.SpoofVPs)
	w.Matrix = rtt.NewMatrix(vps)

	// Operators.
	for i := 0; i < p.Operators; i++ {
		spec := g.makeOperator(i, p.HostnameRate)
		w.Specs = append(w.Specs, spec)
		g.emitOperator(w, spec)
	}
	// Tiny operators: one or two sites, a handful of routers — the long
	// tail of real suffixes, which dominates the paper's "poor" NC
	// classifications (too few unique hints to learn from).
	for i := 0; i < p.Tiny; i++ {
		spec := g.makeTinyOperator(i, p.HostnameRate)
		w.Specs = append(w.Specs, spec)
		g.emitOperator(w, spec)
	}
	noiseRouters := p.NoiseRouters
	if noiseRouters < 1 {
		noiseRouters = 8
	}
	for i := 0; i < p.Noise; i++ {
		g.emitNoiseOperator(w, i, p.HostnameRate, noiseRouters)
	}
	if p.AnonymousFrac > 0 && p.AnonymousFrac < 1 {
		named := w.Corpus.Len()
		extra := int(float64(named) * p.AnonymousFrac / (1 - p.AnonymousFrac))
		g.emitAnonymous(w, extra)
	}

	// Measurement campaign.
	g.measure(w)
	return w, nil
}

// CleanSpoofers applies the paper's hygiene step: detect VPs spoofing
// TCP resets and drop their TCP samples. Returns the flagged VP names.
func (w *World) CleanSpoofers() []string {
	spoofers := w.Matrix.DetectTCPSpoofers(20)
	w.Matrix.DropTCPFrom(spoofers)
	return spoofers
}

// generator carries generation state.
type generator struct {
	p    Params
	rng  *rand.Rand
	dict *geodict.Dictionary
	rev  *reverse
	ipN  int
}

// reverse indexes dictionary codes by city, and the city pools eligible
// for each convention style. The real code dictionaries (UN/LOCODE,
// iconectiv CLLI) cover essentially every city an operator deploys in,
// so site selection draws from cities that HAVE the style's code —
// operator-invented codes appear only at the spec's custom-hint rate.
type reverse struct {
	iata   map[string]string // city key -> IATA code
	clli   map[string]string
	locode map[string]string
	cities []*geodict.Location // all places, stable order
	fac    []*geodict.Facility

	iataCities   []*geodict.Location // cities with an IATA code
	clliCities   []*geodict.Location
	locodeCities []*geodict.Location
	stateCities  []*geodict.Location // cities with a state/province code
}

func buildReverse(d *geodict.Dictionary) *reverse {
	r := &reverse{
		iata:   make(map[string]string),
		clli:   make(map[string]string),
		locode: make(map[string]string),
	}
	for _, a := range d.Airports() {
		key := a.Loc.Key()
		if _, ok := r.iata[key]; !ok {
			r.iata[key] = a.IATA
		}
	}
	for _, c := range d.CLLIs() {
		key := c.Loc.Key()
		if _, ok := r.clli[key]; !ok {
			r.clli[key] = c.Code
		}
	}
	for _, c := range d.Locodes() {
		key := c.Loc.Key()
		if _, ok := r.locode[key]; !ok {
			r.locode[key] = c.Code
		}
	}
	r.cities = d.Places()
	r.fac = d.Facilities()
	for _, loc := range r.cities {
		key := loc.Key()
		if _, ok := r.iata[key]; ok {
			r.iataCities = append(r.iataCities, loc)
		}
		if _, ok := r.clli[key]; ok {
			r.clliCities = append(r.clliCities, loc)
		}
		if _, ok := r.locode[key]; ok {
			r.locodeCities = append(r.locodeCities, loc)
		}
		if loc.Region != "" {
			r.stateCities = append(r.stateCities, loc)
		}
	}
	return r
}

// sitePool returns the cities eligible for a convention style.
func (r *reverse) sitePool(style Style) []*geodict.Location {
	switch style {
	case StyleIATA, StyleIATACC:
		return r.iataCities
	case StyleCLLI, StyleSplitCLLI:
		return r.clliCities
	case StyleLocode:
		return r.locodeCities
	case StyleCityState:
		return r.stateCities
	default:
		return r.cities
	}
}

// makeVPs places VPs at distinct airport cities.
func (g *generator) makeVPs(n, spoof int) []*rtt.VP {
	airports := g.dict.Airports()
	// Stable shuffle over a copy.
	idx := g.rng.Perm(len(airports))
	var vps []*rtt.VP
	seen := make(map[string]bool)
	for _, i := range idx {
		a := airports[i]
		if a.ICAO == "" { // skip metro codes; use real airports
			continue
		}
		if seen[a.Loc.Key()] {
			continue
		}
		seen[a.Loc.Key()] = true
		vp := &rtt.VP{
			Name:    fmt.Sprintf("%s-%s", a.IATA, a.Loc.Country),
			City:    a.Loc.City,
			Country: a.Loc.Country,
			Pos:     a.Loc.Pos,
		}
		if len(vps) < spoof {
			vp.SpoofTCP = true
		}
		vps = append(vps, vp)
		if len(vps) == n {
			break
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i].Name < vps[j].Name })
	return vps
}

var operatorNames = []string{
	"transitnet", "coreband", "fiberlink", "netspan", "routeworks",
	"backhaul", "interpath", "lightwave", "peergrid", "carriernet",
	"globalhop", "swiftroute", "densewave", "metrolink", "longhaulnet",
	"packetline", "opticore", "spanfiber", "hopmatrix", "trunknet",
	"edgeflow", "midhaul", "crosswave", "netarc", "pathbend",
	"linkforge", "wavecrest", "gridpath", "farspan", "nodeline",
	"corepulse", "fastlane", "routemesh", "beamnet", "transarc",
	"skyfiber", "duskwave", "polarnet", "zonalink", "arcspan",
	"tidenet", "vastpath", "keenroute", "plexwave", "orbitlink",
	"haloband", "driftnet", "crestpath", "fluxspan", "primehop",
}

var tlds = []string{"net", "com", "net.au", "co.uk", "de", "net", "com", "io", "net", "jp"}

// makeTinyOperator draws a long-tail operator: one or two sites, a
// couple of routers, otherwise following a normal convention.
func (g *generator) makeTinyOperator(i int, hostnameRate float64) *OperatorSpec {
	style := Style(g.rng.Intn(int(numStyles)))
	spec := &OperatorSpec{
		Suffix:          fmt.Sprintf("isp%02d.%s", i, tlds[g.rng.Intn(len(tlds))]),
		Style:           style,
		RoutersPerSite:  2,
		StaleRate:       0.01,
		ConsistencyRate: 0.95,
		HostnameRate:    hostnameRate + 0.3,
	}
	if spec.HostnameRate > 1 {
		spec.HostnameRate = 1
	}
	spec.Sites = g.makeSites(spec, 1+g.rng.Intn(2))
	return spec
}

// makeOperator draws a convention spec.
func (g *generator) makeOperator(i int, hostnameRate float64) *OperatorSpec {
	style := Style(g.rng.Intn(int(numStyles)))
	if i == 0 {
		// The first large ISP is always an IATA+country operator so the
		// flagship custom codes below appear in every world.
		style = StyleIATACC
	}
	name := operatorNames[i%len(operatorNames)]
	if i >= len(operatorNames) {
		name = fmt.Sprintf("%s%d", name, i/len(operatorNames)+1)
	}
	suffix := name + "." + tlds[g.rng.Intn(len(tlds))]
	spec := &OperatorSpec{
		Suffix:          suffix,
		Style:           style,
		RoutersPerSite:  3 + g.rng.Intn(3),
		CustomHintRate:  0,
		StaleRate:       0.01,
		ConsistencyRate: 0.9 + g.rng.Float64()*0.1,
		HostnameRate:    hostnameRate + 0.3, // operators that name routers name most of them
	}
	// A quarter of operators are sloppy: they embed geohints at an
	// unstable position and skip them in some hostnames — the paper's
	// above.net / aorta.net cases, and the reason roughly half of
	// real-world NCs classify as poor.
	if g.rng.Float64() < 0.25 {
		spec.Sloppy = true
		spec.ConsistencyRate = 0.5 + g.rng.Float64()*0.3
	}
	if spec.HostnameRate > 1 {
		spec.HostnameRate = 1
	}
	// ~40% of IATA conventions include custom hints (paper: 38.2% of
	// usable IATA regexes had at least one non-IATA hint); other styles
	// less often.
	switch style {
	case StyleIATA, StyleIATACC:
		if g.rng.Float64() < 0.4 {
			spec.CustomHintRate = 0.2 + g.rng.Float64()*0.25
		}
	case StyleCLLI, StyleSplitCLLI, StyleLocode:
		if g.rng.Float64() < 0.2 {
			spec.CustomHintRate = 0.1 + g.rng.Float64()*0.15
		}
	}
	// The first few operators are large ISPs with deep footprints — the
	// paper's ntt.net / retn.net scale, where most custom geohints live.
	nSites := 4 + g.rng.Intn(9)
	if i < 5 {
		nSites = 20 + g.rng.Intn(16)
		spec.Sloppy = false
		spec.ConsistencyRate = 0.95
		if spec.CustomHintRate < 0.25 {
			spec.CustomHintRate = 0.25
		}
	}
	spec.Sites = g.makeSites(spec, nSites)
	// The first large ISP uses the wild's flagship custom codes — the
	// paper's table 5 set: "ash" for Ashburn (IATA: Nashua), "tor" for
	// Toronto (IATA: Torrington), "tok" for Tokyo (IATA: Torokina),
	// "ldn" for London (IATA: Lamidanda). Every one collides with a real
	// airport code, which is what figure 10b measures.
	if i == 0 {
		spec.Sites = append(g.flagshipSites(spec), spec.Sites...)
	}
	return spec
}

// flagshipSites returns the paper's well-known custom-code sites, for
// cities present in the dictionary.
func (g *generator) flagshipSites(spec *OperatorSpec) []Site {
	var out []Site
	for _, f := range []struct {
		code, city, region, country string
	}{
		{"ash", "ashburn", "va", "us"},
		{"tor", "toronto", "on", "ca"},
		{"tok", "tokyo", "", "jp"},
		{"ldn", "london", "", "gb"},
	} {
		for _, loc := range g.rev.cities {
			if loc.City == f.city && loc.Region == f.region && loc.Country == f.country {
				out = append(out, Site{
					Loc: loc, Code: f.code,
					CC: countryToken(g.rng, loc), Custom: true,
				})
			}
		}
	}
	return out
}

// makeSites selects cities and codes for an operator.
func (g *generator) makeSites(spec *OperatorSpec, n int) []Site {
	var sites []Site
	seen := make(map[string]bool)
	attempts := 0
	for len(sites) < n && attempts < 400 {
		attempts++
		var site Site
		ok := false
		switch spec.Style {
		case StyleFacility:
			f := g.rev.fac[g.rng.Intn(len(g.rev.fac))]
			loc := f.Loc
			site = Site{Loc: &loc, Code: geodict.NormalizeName(f.Address)}
			ok = site.Code != "" && hasDigit(site.Code)
		default:
			pool := g.rev.sitePool(spec.Style)
			loc := pool[g.rng.Intn(len(pool))]
			site = g.codeSite(spec, loc)
			ok = site.Code != ""
		}
		if !ok || seen[site.Code] {
			continue
		}
		seen[site.Code] = true
		sites = append(sites, site)
	}
	return sites
}

// codeSite derives the code an operator uses for a city: the dictionary
// code, or — at the spec's custom rate — an invented abbreviation.
func (g *generator) codeSite(spec *OperatorSpec, loc *geodict.Location) Site {
	key := loc.Key()
	cc := countryToken(g.rng, loc)
	wantCustom := g.rng.Float64() < spec.CustomHintRate

	switch spec.Style {
	case StyleIATA, StyleIATACC:
		dictCode := g.rev.iata[key]
		if wantCustom {
			if code := customIATA(g.dict, loc); code != "" {
				return Site{Loc: loc, Code: code, CC: cc, Custom: true}
			}
		}
		if dictCode != "" {
			return Site{Loc: loc, Code: dictCode, CC: cc}
		}
		if code := customIATA(g.dict, loc); code != "" {
			return Site{Loc: loc, Code: code, CC: cc, Custom: true}
		}
	case StyleCLLI, StyleSplitCLLI:
		dictCode := g.rev.clli[key]
		if wantCustom || dictCode == "" {
			if code := customCLLI(g.dict, loc); code != "" {
				return Site{Loc: loc, Code: code, CC: cc, Custom: code != dictCode}
			}
		}
		if dictCode != "" {
			return Site{Loc: loc, Code: dictCode, CC: cc}
		}
	case StyleLocode:
		dictCode := g.rev.locode[key]
		if wantCustom || dictCode == "" {
			if code := customLocode(g.dict, loc); code != "" {
				return Site{Loc: loc, Code: code, CC: cc, Custom: code != dictCode}
			}
		}
		if dictCode != "" {
			return Site{Loc: loc, Code: dictCode, CC: cc}
		}
	case StyleCity, StyleCityState:
		return Site{Loc: loc, Code: geodict.NormalizeName(loc.City), CC: cc}
	}
	return Site{}
}

// countryToken picks the annotation token for a country ("uk" for gb
// half the time, matching operator practice).
func countryToken(rng *rand.Rand, loc *geodict.Location) string {
	if loc.Country == "gb" && rng.Intn(2) == 0 {
		return "uk"
	}
	return loc.Country
}

func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// consonantSkeleton derives up to n letters: the first letter then
// consonants, padding with remaining letters.
func consonantSkeleton(city string, n int) string {
	name := geodict.NormalizeName(city)
	if len(name) < n {
		return ""
	}
	out := []byte{name[0]}
	for i := 1; i < len(name) && len(out) < n; i++ {
		switch name[i] {
		case 'a', 'e', 'i', 'o', 'u':
		default:
			out = append(out, name[i])
		}
	}
	for i := 1; i < len(name) && len(out) < n; i++ {
		if !containsByte(out, name[i]) {
			out = append(out, name[i])
		}
	}
	if len(out) < n {
		return ""
	}
	return string(out)
}

func containsByte(b []byte, c byte) bool {
	for _, x := range b {
		if x == c {
			return true
		}
	}
	return false
}

// customIATA invents a 3-letter code for a city that is a learnable
// abbreviation and does not already denote the city in the dictionary.
func customIATA(d *geodict.Dictionary, loc *geodict.Location) string {
	name := geodict.NormalizeName(loc.City)
	cands := []string{}
	if len(name) >= 3 {
		cands = append(cands, name[:3])
	}
	if sk := consonantSkeleton(loc.City, 3); sk != "" {
		cands = append(cands, sk)
	}
	for _, code := range cands {
		if !abbrev.Matches(code, loc.City) {
			continue
		}
		mapsHere := false
		for _, a := range d.IATA(code) {
			if a.Loc.SameCity(loc) {
				mapsHere = true
			}
		}
		if !mapsHere {
			return code
		}
	}
	return ""
}

// customCLLI invents a 6-letter CLLI-shaped code: 4 city letters plus a
// state (US/CA) or country code.
func customCLLI(d *geodict.Dictionary, loc *geodict.Location) string {
	reg := loc.Region
	if reg == "" {
		reg = loc.Country
	}
	if loc.Country == "gb" {
		reg = "en"
	}
	if len(reg) != 2 {
		return ""
	}
	for _, city4 := range []string{consonantSkeleton(loc.City, 4), prefix4(loc.City)} {
		if city4 == "" || !abbrev.Matches(city4, loc.City) {
			continue
		}
		code := city4 + reg
		if c := d.CLLI(code); c != nil && c.Loc.SameCity(loc) {
			continue // that's the dictionary code, not custom
		}
		return code
	}
	return ""
}

func prefix4(city string) string {
	n := geodict.NormalizeName(city)
	if len(n) < 4 {
		return ""
	}
	return n[:4]
}

// customLocode invents a LOCODE-shaped code: country + 3-letter skeleton.
func customLocode(d *geodict.Dictionary, loc *geodict.Location) string {
	if len(loc.Country) != 2 {
		return ""
	}
	for _, rest := range []string{consonantSkeleton(loc.City, 3), prefix3(loc.City)} {
		if rest == "" || !abbrev.Matches(rest, loc.City) {
			continue
		}
		code := loc.Country + rest
		if c := d.Locode(code); c != nil && c.Loc.SameCity(loc) {
			continue
		}
		return code
	}
	return ""
}

func prefix3(city string) string {
	n := geodict.NormalizeName(city)
	if len(n) < 3 {
		return ""
	}
	return n[:3]
}
