package rex

import (
	"testing"

	"hoiho/internal/geodict"
)

// FuzzParsePattern feeds arbitrary patterns to the published-format
// parser: it must never panic, and anything it accepts must round-trip
// through String() and compile.
func FuzzParsePattern(f *testing.F) {
	f.Add(`^.+\.([a-z]{3})\d+\.alter\.net$`)
	f.Add(`^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$`)
	f.Add(`^\d+\.[a-z]+\d+\.([a-z]{6})[a-z\d]+-x\.alter\.net$`)
	f.Add(`^(((`)
	f.Add(`^$`)
	f.Add(``)
	f.Add(`^([a-z]{999999})$`)
	f.Fuzz(func(t *testing.T, pattern string) {
		roles := []Role{RoleHint}
		r, err := ParsePattern(geodict.HintIATA, pattern, roles)
		if err != nil {
			return
		}
		if r.String() != pattern {
			t.Fatalf("accepted pattern does not round-trip: %q -> %q", pattern, r.String())
		}
		if _, err := r.Compile(); err != nil {
			t.Fatalf("accepted pattern does not compile: %q: %v", pattern, err)
		}
	})
}

// FuzzMatch feeds arbitrary hostnames to a fixed regex: no panics, and
// every reported extraction must be a substring of the input.
func FuzzMatch(f *testing.F) {
	re := alterIATA()
	f.Add("0.xe-10-0-0.gw1.sfo16.alter.net")
	f.Add("")
	f.Add(".")
	f.Add("a.b.c.alter.net")
	f.Fuzz(func(t *testing.T, host string) {
		ext, ok := re.Match(host)
		if !ok {
			return
		}
		if len(ext.Hint) != 3 {
			t.Fatalf("IATA extraction %q has wrong width", ext.Hint)
		}
	})
}
