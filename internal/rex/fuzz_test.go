package rex

import (
	"regexp"
	"testing"

	"hoiho/internal/geodict"
	"hoiho/internal/rexmatch"
)

// FuzzParsePattern feeds arbitrary patterns to the published-format
// parser: it must never panic, and anything it accepts must round-trip
// through String() and compile.
func FuzzParsePattern(f *testing.F) {
	f.Add(`^.+\.([a-z]{3})\d+\.alter\.net$`)
	f.Add(`^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$`)
	f.Add(`^\d+\.[a-z]+\d+\.([a-z]{6})[a-z\d]+-x\.alter\.net$`)
	f.Add(`^(((`)
	f.Add(`^$`)
	f.Add(``)
	f.Add(`^([a-z]{999999})$`)
	f.Fuzz(func(t *testing.T, pattern string) {
		roles := []Role{RoleHint}
		r, err := ParsePattern(geodict.HintIATA, pattern, roles)
		if err != nil {
			return
		}
		if r.String() != pattern {
			t.Fatalf("accepted pattern does not round-trip: %q -> %q", pattern, r.String())
		}
		if _, err := r.Compile(); err != nil {
			t.Fatalf("accepted pattern does not compile: %q: %v", pattern, err)
		}
	})
}

// fuzzLiterals is the literal-text table FuzzRegexRender draws from:
// grammar-alphabet text plus metacharacters QuoteMeta escapes, so the
// renderer's escaping path is exercised.
var fuzzLiterals = []string{"a", "ge", "xe0", "alter", "_", ".", "+", "net"}

// FuzzRegexRender drives the component-level round trip that
// FuzzParsePattern drives from the string side: arbitrary bytes are
// decoded into a component sequence, and every sequence that passes
// Validate must render to a pattern that reparses (with the same
// roles), re-renders byte-identically, and compiles.
func FuzzRegexRender(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x06, 0x03})                         // ([a-z]{N}) hint capture
	f.Add([]byte{0x03, 0x00, 0x01, 0x00, 0x07, 0x03}) // .+ \. ([a-z]+)
	f.Add([]byte{0x06, 0x05, 0x02, 0x00, 0x06, 0x07}) // split-CLLI pair
	f.Add([]byte{0x00, 0x0a, 0x01, 0x00, 0x00, 0x06})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := decodeRegex(data)
		if err := r.Validate(); err != nil {
			return
		}
		pattern := r.String()
		parsed, err := ParsePattern(r.Hint, pattern, r.Roles())
		if err != nil {
			t.Fatalf("valid regex %q does not reparse: %v", pattern, err)
		}
		if parsed.String() != pattern {
			t.Fatalf("round trip changed rendering: %q -> %q", pattern, parsed.String())
		}
		if len(parsed.Roles()) != len(r.Roles()) {
			t.Fatalf("round trip changed capture count: %q", pattern)
		}
		if _, err := r.Compile(); err != nil {
			t.Fatalf("valid regex %q does not compile: %v", pattern, err)
		}
	})
}

// decodeRegex deterministically maps fuzz bytes onto a component
// sequence: two bytes per component select the kind and the
// capture/role/repeat/literal parameters, constrained to the values the
// emitted grammar can express (repeat counts 1..63, literal text from
// fuzzLiterals).
func decodeRegex(data []byte) *Regex {
	var comps []Component
	for i := 0; i+1 < len(data); i += 2 {
		kind := Kind(data[i] % 11)
		p := data[i+1]
		c := Component{Kind: kind}
		if p&1 == 1 {
			c.Capture = true
			c.Role = Role(1 + (p>>1)%5)
		}
		switch kind {
		case KindAlphaFixed:
			c.N = 1 + int(p>>2)%63
		case KindLiteral:
			c.Lit = fuzzLiterals[int(p>>1)%len(fuzzLiterals)]
		}
		comps = append(comps, c)
	}
	return New(geodict.HintIATA, comps...)
}

// FuzzMatch feeds arbitrary hostnames to a fixed regex: no panics, and
// every reported extraction must be a substring of the input.
func FuzzMatch(f *testing.F) {
	re := alterIATA()
	f.Add("0.xe-10-0-0.gw1.sfo16.alter.net")
	f.Add("")
	f.Add(".")
	f.Add("a.b.c.alter.net")
	f.Fuzz(func(t *testing.T, host string) {
		ext, ok := re.Match(host)
		if !ok {
			return
		}
		if len(ext.Hint) != 3 {
			t.Fatalf("IATA extraction %q has wrong width", ext.Hint)
		}
	})
}

// FuzzRexmatchVsStdlib is the differential oracle for the specialized
// matcher: arbitrary bytes decode into a component sequence, the
// sequence renders to the stdlib pattern, and both engines run the
// same hostname. The match verdict and every capture group must agree
// byte for byte — rexmatch implements leftmost-first submatch
// semantics, so any divergence is a bug in the specialized engine (or
// in the dialect translation), never an acceptable approximation. The
// checked-in seed corpus pins the two component shapes whose parsing
// PR 3 fixed: multi-character literal captures, and a plain literal
// followed by a captured literal (coalescing across the capture
// boundary).
func FuzzRexmatchVsStdlib(f *testing.F) {
	// {0x00, 0x33}: captured multi-char literal `^(ge)$` (RoleHint).
	f.Add([]byte{0x00, 0x33}, "ge")
	// {0x00, 0x02, 0x00, 0x33}: plain literal then captured literal,
	// `^ge(ge)$` — the coalescing shape.
	f.Add([]byte{0x00, 0x02, 0x00, 0x33}, "gege")
	// Greedy give-back across adjacent repetitions.
	f.Add([]byte{0x03, 0x00, 0x01, 0x00, 0x06, 0x07, 0x08, 0x00}, "xe-1.gw2.sfo12.net")
	f.Add([]byte{0x06, 0x05, 0x02, 0x00, 0x06, 0x07}, "abcd-ef")
	f.Add([]byte{0x00, 0x0a, 0x01, 0x00, 0x00, 0x06}, ".alter.")
	f.Add([]byte{}, "")
	f.Fuzz(func(t *testing.T, data []byte, host string) {
		r := decodeRegex(data)
		if err := r.Validate(); err != nil {
			return
		}
		prog, err := rexmatch.Compile(matcherSpecs(r.Comps))
		if err != nil {
			// Out of dialect: the production path falls back to stdlib,
			// so there is no specialized behaviour to compare.
			return
		}
		std, err := regexp.Compile(r.String())
		if err != nil {
			t.Fatalf("valid regex %q does not compile: %v", r.String(), err)
		}
		want := std.FindStringSubmatch(host)
		var res rexmatch.Result
		got := prog.Run(host, &res)
		if (want != nil) != got {
			t.Fatalf("verdict differs for %q on %q: stdlib=%v rexmatch=%v",
				r.String(), host, want != nil, got)
		}
		if !got {
			return
		}
		caps := res.Captures(nil)
		if len(caps) != len(want)-1 {
			t.Fatalf("capture count differs for %q on %q: stdlib=%d rexmatch=%d",
				r.String(), host, len(want)-1, len(caps))
		}
		for i, c := range caps {
			if c != want[i+1] {
				t.Fatalf("capture %d differs for %q on %q: stdlib=%q rexmatch=%q",
					i+1, r.String(), host, want[i+1], c)
			}
		}
	})
}
