// Package rex implements the regex-construction engine behind Hoiho's
// geolocation conventions (paper appendix A). Candidate regexes are
// represented as sequences of typed components — literals, punctuation
// separators, punctuation-excluding wildcards, character classes, and
// capture groups annotated with the geographic role of the captured
// string. The representation supports the four construction phases:
// base generation, digit-merge, character-class embedding, and regex-set
// assembly into naming conventions.
package rex

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"hoiho/internal/geodict"
)

// Kind enumerates component types.
type Kind uint8

// Component kinds, mirroring the regex fragments the paper's builder
// emits.
const (
	KindLiteral    Kind = iota // fixed text, escaped on render
	KindDot                    // literal '.'
	KindDash                   // literal '-'
	KindAny                    // .+   (at most one per regex)
	KindNotDot                 // [^\.]+
	KindNotDash                // [^-]+
	KindAlphaFixed             // [a-z]{N}
	KindAlpha                  // [a-z]+
	KindDigits                 // \d+
	KindDigitsOpt              // \d*
	KindAlnum                  // [a-z\d]+
)

// Role describes what a capture group extracts.
type Role uint8

// Capture roles. RoleHint captures the geohint string interpreted by the
// regex's hint type; RoleCLLI4 and RoleCLLI2 capture the split halves of
// a CLLI prefix (paper fig. 6e); RoleState and RoleCountry capture
// annotation codes that accompany the geohint.
const (
	RoleNone Role = iota
	RoleHint
	RoleCLLI4
	RoleCLLI2
	RoleState
	RoleCountry
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleHint:
		return "hint"
	case RoleCLLI4:
		return "clli4"
	case RoleCLLI2:
		return "clli2"
	case RoleState:
		return "state"
	case RoleCountry:
		return "country"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Component is one element of a regex.
type Component struct {
	Kind    Kind
	N       int    // repeat count for KindAlphaFixed
	Capture bool   // whether the component is a capture group
	Role    Role   // meaning of the capture (RoleNone if not captured)
	Lit     string // text for KindLiteral
}

// render writes the component's regex fragment.
func (c Component) render(b *strings.Builder) {
	if c.Capture {
		b.WriteByte('(')
	}
	switch c.Kind {
	case KindLiteral:
		b.WriteString(regexp.QuoteMeta(c.Lit))
	case KindDot:
		b.WriteString(`\.`)
	case KindDash:
		b.WriteString(`-`)
	case KindAny:
		b.WriteString(`.+`)
	case KindNotDot:
		b.WriteString(`[^\.]+`)
	case KindNotDash:
		b.WriteString(`[^-]+`)
	case KindAlphaFixed:
		fmt.Fprintf(b, `[a-z]{%d}`, c.N)
	case KindAlpha:
		b.WriteString(`[a-z]+`)
	case KindDigits:
		b.WriteString(`\d+`)
	case KindDigitsOpt:
		b.WriteString(`\d*`)
	case KindAlnum:
		b.WriteString(`[a-z\d]+`)
	}
	if c.Capture {
		b.WriteByte(')')
	}
}

// equal reports whether two components are identical.
func (c Component) equal(o Component) bool { return c == o }

// Regex is a candidate geohint-extraction regex: an anchored sequence of
// components ending in the suffix literal, plus the plan for decoding
// the captures.
//
// The render/compile caches are guarded by sync.Once, so a shared
// *Regex — e.g. one inside a published NamingConvention applied by
// concurrent Geolocate callers, or candidates evaluated by the parallel
// pipeline — is safe for concurrent use. Comps must not be mutated
// after the first String, Compile, Match, or ComponentMatches call;
// Clone returns a mutable copy with cold caches.
type Regex struct {
	Comps []Component
	Hint  geodict.HintType // dictionary that interprets the RoleHint capture

	renderOnce  sync.Once
	rendering   string
	compileOnce sync.Once
	compiled    *regexp.Regexp
	compileErr  error
	probeOnce   sync.Once
	probe       *regexp.Regexp // every component captured, for specialization
	probeErr    error
}

// New assembles a regex from components. The component list should
// cover the entire hostname (the caller appends the suffix literal).
func New(hint geodict.HintType, comps ...Component) *Regex {
	return &Regex{Comps: comps, Hint: hint}
}

// Clone returns a deep copy with cleared caches.
func (r *Regex) Clone() *Regex {
	c := &Regex{Hint: r.Hint}
	c.Comps = append([]Component(nil), r.Comps...)
	return c
}

// Validate checks structural invariants: at most one KindAny component,
// at most one RoleHint capture, captures only on capturable kinds, and a
// decodable capture plan.
func (r *Regex) Validate() error {
	anies, hints := 0, 0
	for _, c := range r.Comps {
		if c.Kind == KindAny {
			anies++
			if c.Capture {
				return fmt.Errorf("rex: .+ cannot be captured")
			}
		}
		if c.Capture {
			if c.Role == RoleNone {
				return fmt.Errorf("rex: capture without role")
			}
			if c.Role == RoleHint {
				hints++
			}
		} else if c.Role != RoleNone {
			return fmt.Errorf("rex: role %v on non-capture component", c.Role)
		}
	}
	if anies > 1 {
		return fmt.Errorf("rex: more than one .+ component")
	}
	roles := r.Roles()
	hasCLLIPair := containsRole(roles, RoleCLLI4) && containsRole(roles, RoleCLLI2)
	if hints == 0 && !hasCLLIPair {
		return fmt.Errorf("rex: no geohint capture")
	}
	if hints > 1 {
		return fmt.Errorf("rex: multiple geohint captures")
	}
	if hints == 1 && (containsRole(roles, RoleCLLI4) || containsRole(roles, RoleCLLI2)) {
		return fmt.Errorf("rex: mixed hint and split-CLLI captures")
	}
	return nil
}

// Roles returns the roles of the capture groups, in order.
func (r *Regex) Roles() []Role {
	var out []Role
	for _, c := range r.Comps {
		if c.Capture {
			out = append(out, c.Role)
		}
	}
	return out
}

func containsRole(roles []Role, want Role) bool {
	for _, r := range roles {
		if r == want {
			return true
		}
	}
	return false
}

// String renders the full anchored regex (paper notation, e.g.
// `^.+\.([a-z]{3})\d+\.alter\.net$`).
func (r *Regex) String() string {
	r.renderOnce.Do(func() {
		var b strings.Builder
		b.WriteByte('^')
		for _, c := range r.Comps {
			c.render(&b)
		}
		b.WriteByte('$')
		r.rendering = b.String()
	})
	return r.rendering
}

// Compile returns the compiled regex, caching the result.
func (r *Regex) Compile() (*regexp.Regexp, error) {
	r.compileOnce.Do(func() {
		compiledTotal.Add(1)
		re, err := regexp.Compile(r.String())
		if err != nil {
			r.compileErr = fmt.Errorf("rex: compile %q: %w", r.String(), err)
			return
		}
		r.compiled = re
	})
	return r.compiled, r.compileErr
}

// Extraction is the decoded result of matching a hostname.
type Extraction struct {
	Hint    string           // the geohint string ("lhr", or joined CLLI halves)
	Type    geodict.HintType // dictionary to interpret Hint
	State   string           // captured state code, if any
	Country string           // captured country code, if any
}

// Match applies the regex to a full hostname and decodes the captures
// into an Extraction. ok is false when the hostname does not match.
func (r *Regex) Match(hostname string) (Extraction, bool) {
	re, err := r.Compile()
	if err != nil {
		return Extraction{}, false
	}
	m := re.FindStringSubmatch(hostname)
	if m == nil {
		return Extraction{}, false
	}
	ext := Extraction{Type: r.Hint}
	var clli4, clli2 string
	i := 0
	for _, c := range r.Comps {
		if !c.Capture {
			continue
		}
		i++
		switch c.Role {
		case RoleHint:
			ext.Hint = m[i]
		case RoleCLLI4:
			clli4 = m[i]
		case RoleCLLI2:
			clli2 = m[i]
		case RoleState:
			ext.State = m[i]
		case RoleCountry:
			ext.Country = m[i]
		}
	}
	if clli4 != "" && clli2 != "" {
		ext.Hint = clli4 + clli2
	}
	return ext, true
}

// probeRegexp renders a variant where every component is captured, used
// to recover which substring each component matched (phase 3).
func (r *Regex) probeRegexp() (*regexp.Regexp, error) {
	r.probeOnce.Do(func() {
		var b strings.Builder
		b.WriteByte('^')
		for _, c := range r.Comps {
			pc := c
			pc.Capture = true
			// render adds parens for Capture; for components that were
			// already captures this just re-wraps identically.
			pc.render(&b)
		}
		b.WriteByte('$')
		probedTotal.Add(1)
		re, err := regexp.Compile(b.String())
		if err != nil {
			r.probeErr = fmt.Errorf("rex: compile probe %q: %w", b.String(), err)
			return
		}
		r.probe = re
	})
	return r.probe, r.probeErr
}

// ComponentMatches returns the substring each component matched against
// the hostname, or ok=false if the hostname does not match.
func (r *Regex) ComponentMatches(hostname string) ([]string, bool) {
	re, err := r.probeRegexp()
	if err != nil {
		return nil, false
	}
	m := re.FindStringSubmatch(hostname)
	if m == nil {
		return nil, false
	}
	return m[1:], true
}

// Equal reports whether two regexes render identically and share a hint
// type.
func (r *Regex) Equal(o *Regex) bool {
	return r.Hint == o.Hint && r.String() == o.String()
}

// Key returns a dedup key combining hint type and rendering.
func (r *Regex) Key() string {
	return fmt.Sprintf("%d|%s", r.Hint, r.String())
}
