// Package rex implements the regex-construction engine behind Hoiho's
// geolocation conventions (paper appendix A). Candidate regexes are
// represented as sequences of typed components — literals, punctuation
// separators, punctuation-excluding wildcards, character classes, and
// capture groups annotated with the geographic role of the captured
// string. The representation supports the four construction phases:
// base generation, digit-merge, character-class embedding, and regex-set
// assembly into naming conventions.
package rex

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"hoiho/internal/geodict"
	"hoiho/internal/rexmatch"
)

// Kind enumerates component types.
type Kind uint8

// Component kinds, mirroring the regex fragments the paper's builder
// emits.
const (
	KindLiteral    Kind = iota // fixed text, escaped on render
	KindDot                    // literal '.'
	KindDash                   // literal '-'
	KindAny                    // .+   (at most one per regex)
	KindNotDot                 // [^\.]+
	KindNotDash                // [^-]+
	KindAlphaFixed             // [a-z]{N}
	KindAlpha                  // [a-z]+
	KindDigits                 // \d+
	KindDigitsOpt              // \d*
	KindAlnum                  // [a-z\d]+
)

// Role describes what a capture group extracts.
type Role uint8

// Capture roles. RoleHint captures the geohint string interpreted by the
// regex's hint type; RoleCLLI4 and RoleCLLI2 capture the split halves of
// a CLLI prefix (paper fig. 6e); RoleState and RoleCountry capture
// annotation codes that accompany the geohint.
const (
	RoleNone Role = iota
	RoleHint
	RoleCLLI4
	RoleCLLI2
	RoleState
	RoleCountry
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleHint:
		return "hint"
	case RoleCLLI4:
		return "clli4"
	case RoleCLLI2:
		return "clli2"
	case RoleState:
		return "state"
	case RoleCountry:
		return "country"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Component is one element of a regex.
type Component struct {
	Kind    Kind
	N       int    // repeat count for KindAlphaFixed
	Capture bool   // whether the component is a capture group
	Role    Role   // meaning of the capture (RoleNone if not captured)
	Lit     string // text for KindLiteral
}

// render writes the component's regex fragment.
func (c Component) render(b *strings.Builder) {
	if c.Capture {
		b.WriteByte('(')
	}
	switch c.Kind {
	case KindLiteral:
		b.WriteString(regexp.QuoteMeta(c.Lit))
	case KindDot:
		b.WriteString(`\.`)
	case KindDash:
		b.WriteString(`-`)
	case KindAny:
		b.WriteString(`.+`)
	case KindNotDot:
		b.WriteString(`[^\.]+`)
	case KindNotDash:
		b.WriteString(`[^-]+`)
	case KindAlphaFixed:
		fmt.Fprintf(b, `[a-z]{%d}`, c.N)
	case KindAlpha:
		b.WriteString(`[a-z]+`)
	case KindDigits:
		b.WriteString(`\d+`)
	case KindDigitsOpt:
		b.WriteString(`\d*`)
	case KindAlnum:
		b.WriteString(`[a-z\d]+`)
	}
	if c.Capture {
		b.WriteByte(')')
	}
}

// equal reports whether two components are identical.
func (c Component) equal(o Component) bool { return c == o }

// Regex is a candidate geohint-extraction regex: an anchored sequence of
// components ending in the suffix literal, plus the plan for decoding
// the captures.
//
// The render/compile caches are guarded by sync.Once, so a shared
// *Regex — e.g. one inside a published NamingConvention applied by
// concurrent Geolocate callers, or candidates evaluated by the parallel
// pipeline — is safe for concurrent use. Comps must not be mutated
// after the first String, Compile, Match, or ComponentMatches call;
// Clone returns a mutable copy with cold caches.
type Regex struct {
	Comps []Component
	Hint  geodict.HintType // dictionary that interprets the RoleHint capture

	renderOnce  sync.Once
	rendering   string
	compileOnce sync.Once
	compiled    *regexp.Regexp
	compileErr  error
	probeOnce   sync.Once
	probe       *regexp.Regexp // every component captured, for specialization
	probeErr    error
	matcherOnce sync.Once
	matcher     *rexmatch.Prog // specialized engine; nil when declined
}

// New assembles a regex from components. The component list should
// cover the entire hostname (the caller appends the suffix literal).
func New(hint geodict.HintType, comps ...Component) *Regex {
	return &Regex{Comps: comps, Hint: hint}
}

// Clone returns a deep copy with cleared caches.
func (r *Regex) Clone() *Regex {
	c := &Regex{Hint: r.Hint}
	c.Comps = append([]Component(nil), r.Comps...)
	return c
}

// Validate checks structural invariants: at most one KindAny component,
// at most one RoleHint capture, captures only on capturable kinds, and a
// decodable capture plan.
func (r *Regex) Validate() error {
	anies, hints := 0, 0
	for _, c := range r.Comps {
		if c.Kind == KindAny {
			anies++
			if c.Capture {
				return fmt.Errorf("rex: .+ cannot be captured")
			}
		}
		if c.Capture {
			if c.Role == RoleNone {
				return fmt.Errorf("rex: capture without role")
			}
			if c.Role == RoleHint {
				hints++
			}
		} else if c.Role != RoleNone {
			return fmt.Errorf("rex: role %v on non-capture component", c.Role)
		}
	}
	if anies > 1 {
		return fmt.Errorf("rex: more than one .+ component")
	}
	roles := r.Roles()
	hasCLLIPair := containsRole(roles, RoleCLLI4) && containsRole(roles, RoleCLLI2)
	if hints == 0 && !hasCLLIPair {
		return fmt.Errorf("rex: no geohint capture")
	}
	if hints > 1 {
		return fmt.Errorf("rex: multiple geohint captures")
	}
	if hints == 1 && (containsRole(roles, RoleCLLI4) || containsRole(roles, RoleCLLI2)) {
		return fmt.Errorf("rex: mixed hint and split-CLLI captures")
	}
	return nil
}

// Roles returns the roles of the capture groups, in order.
func (r *Regex) Roles() []Role {
	var out []Role
	for _, c := range r.Comps {
		if c.Capture {
			out = append(out, c.Role)
		}
	}
	return out
}

func containsRole(roles []Role, want Role) bool {
	for _, r := range roles {
		if r == want {
			return true
		}
	}
	return false
}

// String renders the full anchored regex (paper notation, e.g.
// `^.+\.([a-z]{3})\d+\.alter\.net$`).
func (r *Regex) String() string {
	r.renderOnce.Do(func() {
		var b strings.Builder
		b.WriteByte('^')
		for _, c := range r.Comps {
			c.render(&b)
		}
		b.WriteByte('$')
		r.rendering = b.String()
	})
	return r.rendering
}

// Compile returns the compiled regex, caching the result.
func (r *Regex) Compile() (*regexp.Regexp, error) {
	r.compileOnce.Do(func() {
		compiledTotal.Add(1)
		re, err := regexp.Compile(r.String())
		if err != nil {
			r.compileErr = fmt.Errorf("rex: compile %q: %w", r.String(), err)
			return
		}
		r.compiled = re
	})
	return r.compiled, r.compileErr
}

// matcherSpecs translates the component AST into the rexmatch dialect.
// Every component kind has a direct translation; an unknown kind maps
// to an op rexmatch.Compile rejects, which routes the regex to the
// stdlib fallback.
func matcherSpecs(comps []Component) []rexmatch.Spec {
	specs := make([]rexmatch.Spec, len(comps))
	for i, c := range comps {
		s := rexmatch.Spec{Capture: c.Capture}
		switch c.Kind {
		case KindLiteral:
			s.Op, s.Lit = rexmatch.OpLit, c.Lit
		case KindDot:
			s.Op, s.Lit = rexmatch.OpLit, "."
		case KindDash:
			s.Op, s.Lit = rexmatch.OpLit, "-"
		case KindAny:
			s.Op = rexmatch.OpAny
		case KindNotDot:
			s.Op = rexmatch.OpNotDot
		case KindNotDash:
			s.Op = rexmatch.OpNotDash
		case KindAlphaFixed:
			s.Op, s.N = rexmatch.OpAlphaFixed, c.N
		case KindAlpha:
			s.Op = rexmatch.OpAlpha
		case KindDigits:
			s.Op = rexmatch.OpDigits
		case KindDigitsOpt:
			s.Op = rexmatch.OpDigitsOpt
		case KindAlnum:
			s.Op = rexmatch.OpAlnum
		default:
			s.Op = rexmatch.Op(255)
		}
		specs[i] = s
	}
	return specs
}

// matcherProg returns the specialized one-pass matcher for the
// component sequence, built on first use, or nil when the sequence is
// outside the rexmatch dialect (the caller then uses the stdlib
// engine). One program serves both Match and ComponentMatches — it
// records the span of every component, captured or not.
func (r *Regex) matcherProg() *rexmatch.Prog {
	r.matcherOnce.Do(func() {
		p, err := rexmatch.Compile(matcherSpecs(r.Comps))
		if err != nil {
			matcherFallbacks.Add(1)
			return
		}
		matchersBuilt.Add(1)
		r.matcher = p
	})
	return r.matcher
}

// resultPool recycles rexmatch scratch state across Match and
// ComponentMatches calls; a steady-state candidate probe allocates
// nothing.
var resultPool = sync.Pool{New: func() any { return new(rexmatch.Result) }}

// Prepare readies the regex for matching without running it: it builds
// the specialized matcher, falling back to compiling the stdlib form
// when the component sequence is outside the rexmatch dialect. The
// returned error is the stdlib compile error of an invalid pattern —
// the check index builds rely on.
func (r *Regex) Prepare() error {
	if r.matcherProg() != nil {
		return nil
	}
	_, err := r.Compile()
	return err
}

// Extraction is the decoded result of matching a hostname.
type Extraction struct {
	Hint    string           // the geohint string ("lhr", or joined CLLI halves)
	Type    geodict.HintType // dictionary to interpret Hint
	State   string           // captured state code, if any
	Country string           // captured country code, if any
}

// Match applies the regex to a full hostname and decodes the captures
// into an Extraction. ok is false when the hostname does not match.
// The candidate-probe hot path: the specialized rexmatch engine runs
// the match allocation-free; regexes outside its dialect fall back to
// the stdlib engine with identical semantics.
func (r *Regex) Match(hostname string) (Extraction, bool) {
	if p := r.matcherProg(); p != nil {
		res := resultPool.Get().(*rexmatch.Result)
		ok := p.Run(hostname, res)
		var ext Extraction
		if ok {
			ext = r.decodeParts(res)
		}
		resultPool.Put(res)
		return ext, ok
	}
	re, err := r.Compile()
	if err != nil {
		return Extraction{}, false
	}
	m := re.FindStringSubmatch(hostname)
	if m == nil {
		return Extraction{}, false
	}
	ext := Extraction{Type: r.Hint}
	var clli4, clli2 string
	i := 0
	for _, c := range r.Comps {
		if !c.Capture {
			continue
		}
		i++
		switch c.Role {
		case RoleHint:
			ext.Hint = m[i]
		case RoleCLLI4:
			clli4 = m[i]
		case RoleCLLI2:
			clli2 = m[i]
		case RoleState:
			ext.State = m[i]
		case RoleCountry:
			ext.Country = m[i]
		}
	}
	if clli4 != "" && clli2 != "" {
		ext.Hint = clli4 + clli2
	}
	return ext, true
}

// decodeParts maps a successful rexmatch run onto an Extraction; part
// indices align 1:1 with components.
func (r *Regex) decodeParts(res *rexmatch.Result) Extraction {
	ext := Extraction{Type: r.Hint}
	var clli4, clli2 string
	for i := range r.Comps {
		c := &r.Comps[i]
		if !c.Capture {
			continue
		}
		switch c.Role {
		case RoleHint:
			ext.Hint = res.Part(i)
		case RoleCLLI4:
			clli4 = res.Part(i)
		case RoleCLLI2:
			clli2 = res.Part(i)
		case RoleState:
			ext.State = res.Part(i)
		case RoleCountry:
			ext.Country = res.Part(i)
		}
	}
	if clli4 != "" && clli2 != "" {
		ext.Hint = clli4 + clli2
	}
	return ext
}

// probeRegexp renders a variant where every component is captured, used
// to recover which substring each component matched (phase 3).
func (r *Regex) probeRegexp() (*regexp.Regexp, error) {
	r.probeOnce.Do(func() {
		var b strings.Builder
		b.WriteByte('^')
		for _, c := range r.Comps {
			pc := c
			pc.Capture = true
			// render adds parens for Capture; for components that were
			// already captures this just re-wraps identically.
			pc.render(&b)
		}
		b.WriteByte('$')
		probedTotal.Add(1)
		re, err := regexp.Compile(b.String())
		if err != nil {
			r.probeErr = fmt.Errorf("rex: compile probe %q: %w", b.String(), err)
			return
		}
		r.probe = re
	})
	return r.probe, r.probeErr
}

// ComponentMatches returns the substring each component matched against
// the hostname, or ok=false if the hostname does not match. The
// specialized matcher already tracks every component's span, so the
// probe path shares the Match program; only out-of-dialect regexes
// compile the all-captures probe variant.
func (r *Regex) ComponentMatches(hostname string) ([]string, bool) {
	if p := r.matcherProg(); p != nil {
		res := resultPool.Get().(*rexmatch.Result)
		var parts []string
		ok := p.Run(hostname, res)
		if ok {
			parts = res.Parts(make([]string, 0, len(r.Comps)))
		}
		resultPool.Put(res)
		return parts, ok
	}
	re, err := r.probeRegexp()
	if err != nil {
		return nil, false
	}
	m := re.FindStringSubmatch(hostname)
	if m == nil {
		return nil, false
	}
	return m[1:], true
}

// Equal reports whether two regexes render identically and share a hint
// type.
func (r *Regex) Equal(o *Regex) bool {
	return r.Hint == o.Hint && r.String() == o.String()
}

// Key returns a dedup key combining hint type and rendering.
func (r *Regex) Key() string {
	return fmt.Sprintf("%d|%s", r.Hint, r.String())
}
