package rex

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"hoiho/internal/geodict"
)

// ParsePattern parses a regex in the closed grammar this package emits
// (the published-regex format) back into a component AST, attaching the
// given roles to the capture groups in order. It round-trips exactly
// with String(): ParsePattern(h, r.String(), roles(r)) reconstructs r.
//
// Grammar: '^' body '$', where body is a sequence of
//
//	\.          literal dot          -           literal dash
//	.+          any                  [^\.]+      not-dot
//	[^-]+       not-dash             [a-z]{n}    fixed alpha
//	[a-z]+      alpha                [a-z\d]+    alnum
//	\d+         digits               \d*         optional digits
//	(X)         capture of X         other text  literal (possibly \-escaped)
func ParsePattern(hint geodict.HintType, pattern string, roles []Role) (*Regex, error) {
	if !strings.HasPrefix(pattern, "^") || !strings.HasSuffix(pattern, "$") {
		return nil, fmt.Errorf("rex: pattern %q must be anchored with ^...$", pattern)
	}
	body := pattern[1 : len(pattern)-1]
	r := &Regex{Hint: hint}
	ri := 0
	i := 0
	for i < len(body) {
		var c Component
		var n int
		var err error
		if body[i] == '(' {
			end := strings.IndexByte(body[i:], ')')
			if end < 0 {
				return nil, fmt.Errorf("rex: unterminated capture in %q", pattern)
			}
			inner := body[i+1 : i+end]
			c, err = parseCapture(inner)
			if err != nil {
				return nil, err
			}
			if ri >= len(roles) {
				return nil, fmt.Errorf("rex: pattern %q has more captures than roles", pattern)
			}
			c.Capture = true
			c.Role = roles[ri]
			ri++
			i += end + 1
		} else {
			c, n, err = parseOne(body[i:])
			if err != nil {
				return nil, err
			}
			i += n
		}
		// Coalesce adjacent plain literals (never into or out of a
		// capture: `a(a)` is a literal followed by a captured literal).
		if c.Kind == KindLiteral && !c.Capture && len(r.Comps) > 0 {
			last := &r.Comps[len(r.Comps)-1]
			if last.Kind == KindLiteral && !last.Capture {
				last.Lit += c.Lit
				continue
			}
		}
		r.Comps = append(r.Comps, c)
	}
	if ri != len(roles) {
		return nil, fmt.Errorf("rex: pattern %q has %d captures, %d roles given", pattern, ri, len(roles))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// parseCapture parses the inside of a capture group, which must be a
// single component. Literal text spanning several parseOne tokens
// ("xe0", "\+x") coalesces into one literal component, mirroring the
// renderer, so captured literals of any length round-trip.
func parseCapture(inner string) (Component, error) {
	var out Component
	parsed := false
	i := 0
	for i < len(inner) {
		c, n, err := parseOne(inner[i:])
		if err != nil {
			return Component{}, err
		}
		i += n
		if parsed && out.Kind == KindLiteral && c.Kind == KindLiteral {
			out.Lit += c.Lit
			continue
		}
		if parsed {
			return Component{}, fmt.Errorf("rex: capture %q is not a single component", inner)
		}
		out = c
		parsed = true
	}
	if !parsed {
		return Component{}, fmt.Errorf("rex: empty capture")
	}
	return out, nil
}

// parseOne parses a single component at the head of s, returning it and
// the number of bytes consumed.
func parseOne(s string) (Component, int, error) {
	if s == "" {
		return Component{}, 0, fmt.Errorf("rex: empty component")
	}
	switch {
	case strings.HasPrefix(s, `\.`):
		return Component{Kind: KindDot}, 2, nil
	case strings.HasPrefix(s, `.+`):
		return Component{Kind: KindAny}, 2, nil
	case strings.HasPrefix(s, `[^\.]+`):
		return Component{Kind: KindNotDot}, 6, nil
	case strings.HasPrefix(s, `[^-]+`):
		return Component{Kind: KindNotDash}, 5, nil
	case strings.HasPrefix(s, `[a-z\d]+`):
		return Component{Kind: KindAlnum}, 8, nil
	case strings.HasPrefix(s, `[a-z]+`):
		return Component{Kind: KindAlpha}, 6, nil
	case strings.HasPrefix(s, `[a-z]{`):
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return Component{}, 0, fmt.Errorf("rex: unterminated repeat in %q", s)
		}
		n, err := strconv.Atoi(s[len(`[a-z]{`):end])
		// DNS labels are at most 63 bytes, so larger repeats cannot
		// occur in a hostname regex (and RE2 rejects huge counts).
		if err != nil || n < 1 || n > 63 {
			return Component{}, 0, fmt.Errorf("rex: bad repeat count in %q", s)
		}
		return Component{Kind: KindAlphaFixed, N: n}, end + 1, nil
	case strings.HasPrefix(s, `\d+`):
		return Component{Kind: KindDigits}, 3, nil
	case strings.HasPrefix(s, `\d*`):
		return Component{Kind: KindDigitsOpt}, 3, nil
	case s[0] == '-':
		return Component{Kind: KindDash}, 1, nil
	case s[0] == '\\' && len(s) >= 2 &&
		regexp.QuoteMeta(string(s[1])) == s[:2]:
		// Escaped literal character, exactly as QuoteMeta would emit it
		// (anything else would not round-trip through String()).
		return Component{Kind: KindLiteral, Lit: string(s[1])}, 2, nil
	case isPlainLiteral(s[0]):
		return Component{Kind: KindLiteral, Lit: string(s[0])}, 1, nil
	default:
		return Component{}, 0, fmt.Errorf("rex: cannot parse component at %q", s)
	}
}

// isPlainLiteral reports whether b can appear unescaped as literal text
// in the emitted grammar.
func isPlainLiteral(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= '0' && b <= '9':
		return true
	case b == '_':
		return true
	default:
		return false
	}
}

// RoleNames maps role names to values for the published format.
var roleNames = map[string]Role{
	"hint": RoleHint, "clli4": RoleCLLI4, "clli2": RoleCLLI2,
	"state": RoleState, "country": RoleCountry,
}

// ParseRole resolves a role name from the published format.
func ParseRole(name string) (Role, error) {
	if r, ok := roleNames[name]; ok {
		return r, nil
	}
	return RoleNone, fmt.Errorf("rex: unknown role %q", name)
}

// ParseHintType resolves a hint-type name from the published format.
func ParseHintType(name string) (geodict.HintType, error) {
	for _, t := range []geodict.HintType{
		geodict.HintIATA, geodict.HintICAO, geodict.HintLocode,
		geodict.HintCLLI, geodict.HintPlace, geodict.HintFacility,
	} {
		if t.String() == name {
			return t, nil
		}
	}
	return geodict.HintNone, fmt.Errorf("rex: unknown hint type %q", name)
}
