package rex

import "sync/atomic"

// Package-wide compile counters. Regex caches its compiled forms behind
// sync.Once, so each counter increments at most once per Regex value —
// the counts measure real regexp.Compile work, not Match calls. The
// observability layer reads these as deltas around a pipeline run;
// being process-global, deltas overlap when runs execute concurrently.
var (
	compiledTotal    atomic.Int64
	probedTotal      atomic.Int64
	matchersBuilt    atomic.Int64
	matcherFallbacks atomic.Int64
)

// CompileCounts returns how many match regexes and probe regexes have
// been compiled process-wide since start. From the rexmatch
// integration on, these count only the stdlib-fallback path; the
// specialized engine's builds are reported separately by
// MatcherCounts, so the two families remain comparable across bench
// records.
func CompileCounts() (compiled, probed int64) {
	return compiledTotal.Load(), probedTotal.Load()
}

// MatcherCounts returns how many specialized rexmatch programs have
// been built process-wide, and how many regexes declined
// specialization and will use the stdlib engine instead. Like
// CompileCounts, each Regex value contributes at most once (the build
// sits behind sync.Once), so the counts measure distinct candidate
// regexes prepared, not Match calls.
func MatcherCounts() (specialized, fallback int64) {
	return matchersBuilt.Load(), matcherFallbacks.Load()
}
