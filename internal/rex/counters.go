package rex

import "sync/atomic"

// Package-wide compile counters. Regex caches its compiled forms behind
// sync.Once, so each counter increments at most once per Regex value —
// the counts measure real regexp.Compile work, not Match calls. The
// observability layer reads these as deltas around a pipeline run;
// being process-global, deltas overlap when runs execute concurrently.
var (
	compiledTotal atomic.Int64
	probedTotal   atomic.Int64
)

// CompileCounts returns how many match regexes and probe regexes have
// been compiled process-wide since start.
func CompileCounts() (compiled, probed int64) {
	return compiledTotal.Load(), probedTotal.Load()
}
