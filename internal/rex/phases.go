package rex

import (
	"sort"
	"strings"
)

// MergeDigits implements phase 2 of the builder (paper appendix A): when
// two regexes differ only because one contains a \d+ component that the
// other lacks — or one has \d+ where the other has \d* — they merge into
// a single regex with \d* at that position, increasing coverage. It
// returns the merged regex and true, or nil and false when the regexes
// are not mergeable.
func MergeDigits(a, b *Regex) (*Regex, bool) {
	if a.Hint != b.Hint {
		return nil, false
	}
	// Same length: allow exactly one position where the pair is
	// {\d+,\d*} in either order; all other components must be equal.
	if len(a.Comps) == len(b.Comps) {
		diff := -1
		for i := range a.Comps {
			if a.Comps[i].equal(b.Comps[i]) {
				continue
			}
			if diff >= 0 {
				return nil, false
			}
			if !digitPair(a.Comps[i], b.Comps[i]) {
				return nil, false
			}
			diff = i
		}
		if diff < 0 {
			return nil, false // identical; nothing to merge
		}
		m := a.Clone()
		m.Comps[diff] = Component{Kind: KindDigitsOpt}
		return m, true
	}
	// Length differs by one: the longer regex must equal the shorter
	// with a single \d+ (or \d*) inserted.
	long, short := a, b
	if len(long.Comps) < len(short.Comps) {
		long, short = short, long
	}
	if len(long.Comps) != len(short.Comps)+1 {
		return nil, false
	}
	for pos := 0; pos < len(long.Comps); pos++ {
		c := long.Comps[pos]
		if c.Kind != KindDigits && c.Kind != KindDigitsOpt {
			continue
		}
		if c.Capture {
			continue
		}
		if prefixEqual(long.Comps[:pos], short.Comps[:pos]) &&
			suffixEqual(long.Comps[pos+1:], short.Comps[pos:]) {
			m := long.Clone()
			m.Comps[pos] = Component{Kind: KindDigitsOpt}
			return m, true
		}
	}
	return nil, false
}

func digitPair(a, b Component) bool {
	if a.Capture || b.Capture {
		return false
	}
	isDigitish := func(c Component) bool {
		return c.Kind == KindDigits || c.Kind == KindDigitsOpt
	}
	return isDigitish(a) && isDigitish(b)
}

func prefixEqual(a, b []Component) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].equal(b[i]) {
			return false
		}
	}
	return true
}

func suffixEqual(a, b []Component) bool { return prefixEqual(a, b) }

// Specialize implements phase 3: replace punctuation-excluding wildcard
// components ([^\.]+, [^-]+, .+) with character-class components that
// describe what the regex actually matched across the hostnames it
// matches. For example a [^\.]+ that always matched digits becomes \d+;
// one that always matched letters-then-digits becomes [a-z]+\d+; one
// that always matched a fixed-width alphabetic string becomes [a-z]{k}.
// Components that matched heterogeneous content are left unchanged. The
// result is a new regex; hostnames that do not match are ignored. If no
// hostname matches, the original regex is returned unchanged.
func Specialize(r *Regex, hostnames []string) *Regex {
	// Gather per-component matched substrings.
	perComp := make([][]string, len(r.Comps))
	matched := 0
	for _, hn := range hostnames {
		parts, ok := r.ComponentMatches(hn)
		if !ok {
			continue
		}
		matched++
		for i, p := range parts {
			perComp[i] = append(perComp[i], p)
		}
	}
	if matched == 0 {
		return r
	}
	out := &Regex{Hint: r.Hint}
	for i, c := range r.Comps {
		if c.Capture || (c.Kind != KindNotDot && c.Kind != KindNotDash && c.Kind != KindAny) {
			out.Comps = append(out.Comps, c)
			continue
		}
		out.Comps = append(out.Comps, classify(c, perComp[i])...)
	}
	return out
}

// classify maps a wildcard component and its observed matches onto one
// or two character-class components, or returns the original.
func classify(c Component, matches []string) []Component {
	if len(matches) == 0 {
		return []Component{c}
	}
	allDigits, allAlpha := true, true
	allAlphaDigit := true // ^[a-z]+\d+$
	allAlnum := true
	fixedLen := len(matches[0])
	for _, m := range matches {
		if m == "" {
			return []Component{c}
		}
		if !isAllOf(m, isDigitByte) {
			allDigits = false
		}
		if !isAllOf(m, isAlphaByte) {
			allAlpha = false
		}
		if !isAlphaThenDigit(m) {
			allAlphaDigit = false
		}
		if !isAllOf(m, func(b byte) bool { return isAlphaByte(b) || isDigitByte(b) }) {
			allAlnum = false
		}
		if len(m) != fixedLen {
			fixedLen = -1
		}
	}
	switch {
	case allDigits:
		return []Component{{Kind: KindDigits}}
	case allAlpha && fixedLen > 0:
		return []Component{{Kind: KindAlphaFixed, N: fixedLen}}
	case allAlpha:
		return []Component{{Kind: KindAlpha}}
	case allAlphaDigit:
		return []Component{{Kind: KindAlpha}, {Kind: KindDigits}}
	case allAlnum:
		return []Component{{Kind: KindAlnum}}
	default:
		return []Component{c}
	}
}

func isAllOf(s string, pred func(byte) bool) bool {
	for i := 0; i < len(s); i++ {
		if !pred(s[i]) {
			return false
		}
	}
	return true
}

func isAlphaByte(b byte) bool { return b >= 'a' && b <= 'z' }
func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

// isAlphaThenDigit reports whether s is one or more letters followed by
// one or more digits ("ae" false, "ae1" true, "1a" false).
func isAlphaThenDigit(s string) bool {
	i := 0
	for i < len(s) && isAlphaByte(s[i]) {
		i++
	}
	if i == 0 || i == len(s) {
		return false
	}
	for ; i < len(s); i++ {
		if !isDigitByte(s[i]) {
			return false
		}
	}
	return true
}

// Dedupe removes regexes with identical keys, preserving first
// occurrence order.
func Dedupe(res []*Regex) []*Regex {
	seen := make(map[string]bool, len(res))
	out := res[:0]
	for _, r := range res {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// SortStable sorts regexes by rendering for deterministic output.
func SortStable(res []*Regex) {
	sort.SliceStable(res, func(i, j int) bool {
		if res[i].Hint != res[j].Hint {
			return res[i].Hint < res[j].Hint
		}
		return strings.Compare(res[i].String(), res[j].String()) < 0
	})
}
