package rex

import (
	"reflect"
	"testing"

	"hoiho/internal/geodict"
)

// alterIATA builds the paper's regex #1 for alter.net:
// ^.+\.([a-z]{3})\d+\.alter\.net$
func alterIATA() *Regex {
	return New(geodict.HintIATA,
		Component{Kind: KindAny},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 3, Capture: true, Role: RoleHint},
		Component{Kind: KindDigits},
		Component{Kind: KindLiteral, Lit: ".alter.net"},
	)
}

// alterCity builds the paper's regex #5 for alter.net:
// ^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$
func alterCity() *Regex {
	return New(geodict.HintPlace,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlpha, Capture: true, Role: RoleHint},
		Component{Kind: KindDigitsOpt},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
		Component{Kind: KindLiteral, Lit: ".alter.net"},
	)
}

func TestRenderPaperRegexes(t *testing.T) {
	if got := alterIATA().String(); got != `^.+\.([a-z]{3})\d+\.alter\.net$` {
		t.Errorf("render = %s", got)
	}
	if got := alterCity().String(); got != `^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$` {
		t.Errorf("render = %s", got)
	}
}

func TestMatchIATA(t *testing.T) {
	r := alterIATA()
	ext, ok := r.Match("0.xe-10-0-0.gw1.sfo16.alter.net")
	if !ok {
		t.Fatal("should match paper hostname (a)")
	}
	if ext.Hint != "sfo" || ext.Type != geodict.HintIATA {
		t.Errorf("ext = %+v", ext)
	}
	// Hostname (g) has a 6-letter CLLI label; [a-z]{3}\d+ cannot match.
	if _, ok := r.Match("0.af0.rcmdva83-mse01-a-ie1.alter.net"); ok {
		t.Error("IATA regex should not match CLLI-form hostname")
	}
}

func TestMatchCityWithCountry(t *testing.T) {
	r := alterCity()
	ext, ok := r.Match("gi0-0-0.munich.de.alter.net")
	if !ok {
		t.Fatal("should match city-form hostname")
	}
	if ext.Hint != "munich" || ext.Country != "de" || ext.Type != geodict.HintPlace {
		t.Errorf("ext = %+v", ext)
	}
	// Digit-optional: matches both with and without trailing digits.
	ext, ok = r.Match("pos1.stuttgart2.de.alter.net")
	if !ok || ext.Hint != "stuttgart" {
		t.Errorf("digit-optional match failed: %+v %v", ext, ok)
	}
}

func TestSplitCLLIMatch(t *testing.T) {
	// Windstream-style: ^.+\.([a-z]{4})\d*-([a-z]{2})\.windstream\.net$
	r := New(geodict.HintCLLI,
		Component{Kind: KindAny},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 4, Capture: true, Role: RoleCLLI4},
		Component{Kind: KindDigitsOpt},
		Component{Kind: KindDash},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCLLI2},
		Component{Kind: KindLiteral, Lit: ".windstream.net"},
	)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	ext, ok := r.Match("ae2-0.agr2.mtgm-al.windstream.net")
	if !ok {
		t.Fatal("split CLLI should match")
	}
	if ext.Hint != "mtgmal" {
		t.Errorf("joined CLLI = %q, want mtgmal", ext.Hint)
	}
}

func TestValidate(t *testing.T) {
	// Two .+ components: invalid.
	bad := New(geodict.HintIATA,
		Component{Kind: KindAny},
		Component{Kind: KindAny},
		Component{Kind: KindAlphaFixed, N: 3, Capture: true, Role: RoleHint},
	)
	if err := bad.Validate(); err == nil {
		t.Error("two .+ should be invalid")
	}
	// No geohint capture: invalid.
	bad2 := New(geodict.HintIATA,
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
	)
	if err := bad2.Validate(); err == nil {
		t.Error("regex without hint capture should be invalid")
	}
	// Capture without role: invalid.
	bad3 := New(geodict.HintIATA,
		Component{Kind: KindAlphaFixed, N: 3, Capture: true},
	)
	if err := bad3.Validate(); err == nil {
		t.Error("capture without role should be invalid")
	}
	// Role on non-capture: invalid.
	bad4 := New(geodict.HintIATA,
		Component{Kind: KindAlphaFixed, N: 3, Role: RoleHint},
	)
	if err := bad4.Validate(); err == nil {
		t.Error("role without capture should be invalid")
	}
	// Two hints: invalid.
	bad5 := New(geodict.HintIATA,
		Component{Kind: KindAlphaFixed, N: 3, Capture: true, Role: RoleHint},
		Component{Kind: KindAlphaFixed, N: 3, Capture: true, Role: RoleHint},
	)
	if err := bad5.Validate(); err == nil {
		t.Error("two hint captures should be invalid")
	}
	// Hint + split CLLI: invalid.
	bad6 := New(geodict.HintCLLI,
		Component{Kind: KindAlphaFixed, N: 6, Capture: true, Role: RoleHint},
		Component{Kind: KindAlphaFixed, N: 4, Capture: true, Role: RoleCLLI4},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCLLI2},
	)
	if err := bad6.Validate(); err == nil {
		t.Error("mixed hint and split CLLI should be invalid")
	}
	// Valid one passes.
	if err := alterCity().Validate(); err != nil {
		t.Errorf("valid regex rejected: %v", err)
	}
}

func TestMergeDigitsSameLength(t *testing.T) {
	// Regexes #3 and #4 of fig. 13 differ by \d+ vs nothing; model the
	// same-length variant with \d+ vs \d*.
	a := alterCity()
	b := alterCity()
	b.Comps[3] = Component{Kind: KindDigits}
	m, ok := MergeDigits(a, b)
	if !ok {
		t.Fatal("should merge \\d* with \\d+")
	}
	if m.Comps[3].Kind != KindDigitsOpt {
		t.Errorf("merged component = %+v", m.Comps[3])
	}
}

func TestMergeDigitsInsertion(t *testing.T) {
	// Fig. 13 phase 2: #3 has \d+ where #4 has nothing; merge to \d*.
	withDigits := New(geodict.HintPlace,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlpha, Capture: true, Role: RoleHint},
		Component{Kind: KindDigits},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
		Component{Kind: KindLiteral, Lit: ".alter.net"},
	)
	without := New(geodict.HintPlace,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlpha, Capture: true, Role: RoleHint},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
		Component{Kind: KindLiteral, Lit: ".alter.net"},
	)
	m, ok := MergeDigits(withDigits, without)
	if !ok {
		t.Fatal("insertion merge should succeed")
	}
	want := `^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$`
	if m.String() != want {
		t.Errorf("merged = %s, want %s", m.String(), want)
	}
	// Merged regex matches hostnames i, j (digits) and k, l (no digits).
	for _, hn := range []string{
		"pos-00008.munich1.de.alter.net",
		"ckh.dresden.de.alter.net",
	} {
		if _, ok := m.Match(hn); !ok {
			t.Errorf("merged regex should match %s", hn)
		}
	}
	// Order-independence.
	m2, ok := MergeDigits(without, withDigits)
	if !ok || m2.String() != want {
		t.Errorf("reverse merge = %v %v", m2, ok)
	}
}

func TestMergeDigitsRejects(t *testing.T) {
	a := alterIATA()
	b := alterCity()
	if _, ok := MergeDigits(a, b); ok {
		t.Error("different hints should not merge")
	}
	// Identical regexes: nothing to merge.
	if _, ok := MergeDigits(alterIATA(), alterIATA()); ok {
		t.Error("identical regexes should not merge")
	}
	// Two differing positions: reject.
	c := alterCity()
	c.Comps[0] = Component{Kind: KindAny}
	c.Comps[3] = Component{Kind: KindDigits}
	if _, ok := MergeDigits(alterCity(), c); ok {
		t.Error("two differences should not merge")
	}
	// Length difference of 2: reject.
	d := alterCity()
	d.Comps = append(d.Comps[:3:3], append([]Component{{Kind: KindDigits}, {Kind: KindDigits}}, d.Comps[3:]...)...)
	if _, ok := MergeDigits(alterCity(), d); ok {
		t.Error("length difference of 2 should not merge")
	}
}

func TestSpecialize(t *testing.T) {
	// ^[^\.]+\.[^\.]+\.([a-z]{6})[^-]+\.alter\.net$ (fig. 13 regex #2);
	// the first [^\.]+ matches digits, the second matches alpha+digits.
	r := New(geodict.HintCLLI,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 6, Capture: true, Role: RoleHint},
		Component{Kind: KindNotDash},
		Component{Kind: KindLiteral, Lit: "-mse01-a-ie1.alter.net"},
	)
	hosts := []string{
		"0.af0.rcmdva83-mse01-a-ie1.alter.net",
		"0.csi1.nwrknj12-mse01-a-ie1.alter.net",
	}
	s := Specialize(r, hosts)
	// First [^\.]+ matched "0" twice -> \d+; second matched "af0","csi1"
	// -> [a-z]+\d+ (non-capturing); [^-]+ matched "83","12" -> \d+.
	if got := s.String(); got != `^\d+\.[a-z]+\d+\.([a-z]{6})\d+-mse01-a-ie1\.alter\.net$` {
		t.Errorf("specialized = %s", got)
	}
	// Specialized regex still matches the hostnames.
	for _, hn := range hosts {
		if _, ok := s.Match(hn); !ok {
			t.Errorf("specialized regex should match %s", hn)
		}
	}
	// And the capture plan is preserved.
	ext, _ := s.Match(hosts[0])
	if ext.Hint != "rcmdva" {
		t.Errorf("hint = %q", ext.Hint)
	}
}

func TestSpecializeFixedWidth(t *testing.T) {
	// A [^\.]+ that always matches a 2-letter string becomes [a-z]{2}
	// (the paper's "bb"/"ce"/"ra" NTT case).
	r := New(geodict.HintCLLI,
		Component{Kind: KindAny},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 6, Capture: true, Role: RoleHint},
		Component{Kind: KindDigits},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
		Component{Kind: KindDot},
		Component{Kind: KindNotDot},
		Component{Kind: KindLiteral, Lit: ".gin.ntt.net"},
	)
	hosts := []string{
		"ae-2.r20.snjsca04.us.bb.gin.ntt.net",
		"xe-0.a02.sttlwa01.us.ce.gin.ntt.net",
		"ae-7.r02.mlanit02.it.ra.gin.ntt.net",
	}
	s := Specialize(r, hosts)
	if got := s.String(); got != `^.+\.([a-z]{6})\d+\.([a-z]{2})\.[a-z]{2}\.gin\.ntt\.net$` {
		t.Errorf("specialized = %s", got)
	}
}

func TestSpecializeNoMatchesReturnsOriginal(t *testing.T) {
	r := alterIATA()
	s := Specialize(r, []string{"nomatch.example.com"})
	if s != r {
		t.Error("no matches should return original regex")
	}
}

func TestSpecializeHeterogeneousKept(t *testing.T) {
	r := New(geodict.HintIATA,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 3, Capture: true, Role: RoleHint},
		Component{Kind: KindLiteral, Lit: ".example.net"},
	)
	// First component matches "xe-1" (contains dash) and "ae1": mixed,
	// cannot be classified to a narrower class; stays [^\.]+.
	s := Specialize(r, []string{"xe-1.sfo.example.net", "ae1.lax.example.net"})
	if s.Comps[0].Kind != KindNotDot {
		t.Errorf("heterogeneous component changed: %+v", s.Comps[0])
	}
}

func TestCloneIndependent(t *testing.T) {
	a := alterIATA()
	b := a.Clone()
	b.Comps[0] = Component{Kind: KindNotDot}
	if a.Comps[0].Kind != KindAny {
		t.Error("clone mutated original")
	}
	if a.Equal(b) {
		t.Error("modified clone should not equal original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("fresh clone should equal original")
	}
}

func TestDedupe(t *testing.T) {
	rs := []*Regex{alterIATA(), alterCity(), alterIATA()}
	out := Dedupe(rs)
	if len(out) != 2 {
		t.Errorf("dedupe = %d, want 2", len(out))
	}
}

func TestSortStable(t *testing.T) {
	rs := []*Regex{alterCity(), alterIATA()}
	SortStable(rs)
	if rs[0].Hint != geodict.HintIATA {
		t.Error("sort should order by hint type first")
	}
}

func TestComponentMatches(t *testing.T) {
	r := alterIATA()
	parts, ok := r.ComponentMatches("0.xe-10-0-0.gw1.sfo16.alter.net")
	if !ok {
		t.Fatal("probe should match")
	}
	want := []string{"0.xe-10-0-0.gw1", ".", "sfo", "16", ".alter.net"}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("parts = %v, want %v", parts, want)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleNone: "none", RoleHint: "hint", RoleCLLI4: "clli4",
		RoleCLLI2: "clli2", RoleState: "state", RoleCountry: "country",
	} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q", r, r.String())
		}
	}
}

func TestMatchNonMatching(t *testing.T) {
	r := alterIATA()
	if _, ok := r.Match("completely.different.example.org"); ok {
		t.Error("should not match foreign hostname")
	}
}

func TestComcastFacilityRegex(t *testing.T) {
	// Fig. 7f: ^[^\.]+\.(\d+[a-z]+)\.([a-z]{2})\.[a-z]+\.comcast\.net$ —
	// model the address capture with an Alnum capture; we use a literal
	// digit+alpha pattern via KindAlnum for the address.
	r := New(geodict.HintFacility,
		Component{Kind: KindNotDot},
		Component{Kind: KindDot},
		Component{Kind: KindAlnum, Capture: true, Role: RoleHint},
		Component{Kind: KindDot},
		Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleState},
		Component{Kind: KindDot},
		Component{Kind: KindAlpha},
		Component{Kind: KindLiteral, Lit: ".comcast.net"},
	)
	ext, ok := r.Match("be-33.1118thave.ny.newyork.comcast.net")
	if !ok {
		t.Fatal("facility regex should match")
	}
	if ext.Hint != "1118thave" || ext.State != "ny" {
		t.Errorf("ext = %+v", ext)
	}
}
