package rex

import (
	"sync"
	"testing"
)

// TestRegexConcurrentCaches hammers one shared *Regex from many
// goroutines. The render, compile, and probe caches populate lazily, so
// this locks in their sync.Once guards — a published NamingConvention's
// regexes are shared by concurrent Geolocate callers, and the parallel
// pipeline evaluates shared candidates the same way. Run with -race.
func TestRegexConcurrentCaches(t *testing.T) {
	regexes := []*Regex{alterIATA(), alterCity()}
	hosts := []string{
		"0.xe-10-0-0.gw1.sfo16.alter.net",
		"pos-1.munich3.de.alter.net",
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for ri, r := range regexes {
					if r.String() == "" {
						t.Error("empty rendering")
					}
					if _, err := r.Compile(); err != nil {
						t.Error(err)
					}
					if _, ok := r.Match(hosts[ri]); !ok {
						t.Errorf("regex %d failed to match %s", ri, hosts[ri])
					}
					if _, ok := r.ComponentMatches(hosts[ri]); !ok {
						t.Errorf("regex %d probe failed on %s", ri, hosts[ri])
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestRegexConcurrentCompileError checks that a compile failure is also
// cached race-free and returned consistently to every caller.
func TestRegexConcurrentCompileError(t *testing.T) {
	// A fixed-count component beyond regexp's 1000-repeat limit renders
	// `[a-z]{100000}`, which regexp.Compile rejects.
	r := New(0, Component{Kind: KindAlphaFixed, N: 100000, Capture: true, Role: RoleHint})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := r.Compile(); err == nil {
					t.Error("invalid pattern compiled")
				}
				if _, ok := r.Match("x"); ok {
					t.Error("invalid pattern matched")
				}
			}
		}()
	}
	wg.Wait()
}
