package rex

import (
	"strings"
	"testing"

	"hoiho/internal/geodict"
)

func TestParsePatternRoundTrip(t *testing.T) {
	regexes := []*Regex{
		alterIATA(),
		alterCity(),
		New(geodict.HintCLLI,
			Component{Kind: KindAny},
			Component{Kind: KindDot},
			Component{Kind: KindAlphaFixed, N: 6, Capture: true, Role: RoleHint},
			Component{Kind: KindDigits},
			Component{Kind: KindDot},
			Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCountry},
			Component{Kind: KindDot},
			Component{Kind: KindAlphaFixed, N: 2},
			Component{Kind: KindLiteral, Lit: ".gin.ntt.net"},
		),
		New(geodict.HintCLLI,
			Component{Kind: KindNotDot},
			Component{Kind: KindDot},
			Component{Kind: KindAlphaFixed, N: 4, Capture: true, Role: RoleCLLI4},
			Component{Kind: KindDash},
			Component{Kind: KindAlphaFixed, N: 2, Capture: true, Role: RoleCLLI2},
			Component{Kind: KindLiteral, Lit: ".windstream.net"},
		),
		New(geodict.HintFacility,
			Component{Kind: KindNotDash},
			Component{Kind: KindDot},
			Component{Kind: KindAlnum, Capture: true, Role: RoleHint},
			Component{Kind: KindDigitsOpt},
			Component{Kind: KindLiteral, Lit: ".comcast.net"},
		),
	}
	for _, want := range regexes {
		got, err := ParsePattern(want.Hint, want.String(), want.Roles())
		if err != nil {
			t.Fatalf("ParsePattern(%s): %v", want.String(), err)
		}
		if !got.Equal(want) {
			t.Errorf("round trip:\n got %s\nwant %s", got.String(), want.String())
		}
		// Matching behaviour also round-trips.
		if want.Hint == geodict.HintIATA {
			e1, ok1 := want.Match("0.xe-1.gw1.sfo16.alter.net")
			e2, ok2 := got.Match("0.xe-1.gw1.sfo16.alter.net")
			if ok1 != ok2 || e1 != e2 {
				t.Errorf("match mismatch after round trip")
			}
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	cases := []struct {
		pattern string
		roles   []Role
	}{
		{`no-anchors`, nil},
		{`^([a-z]{3})$`, nil},                   // more captures than roles
		{`^[a-z]{3}$`, []Role{RoleHint}},        // fewer captures than roles
		{`^([a-z]{3)$`, []Role{RoleHint}},       // unterminated repeat
		{`^([a-z]{x})$`, []Role{RoleHint}},      // bad repeat count
		{`^(([a-z]{3}))$`, []Role{RoleHint}},    // nested capture
		{`^([a-z]{3})[A-Z]$`, []Role{RoleHint}}, // unknown construct
		{`^([a-z]{3}\d+)$`, []Role{RoleHint}},   // multi-component capture
		{`^(\d+$`, []Role{RoleHint}},            // unterminated capture
	}
	for _, c := range cases {
		if _, err := ParsePattern(geodict.HintIATA, c.pattern, c.roles); err == nil {
			t.Errorf("pattern %q should fail", c.pattern)
		}
	}
}

func TestParsePatternLiteralCoalescing(t *testing.T) {
	r, err := ParsePattern(geodict.HintIATA, `^([a-z]{3})\.alter\.net$`, []Role{RoleHint})
	if err != nil {
		t.Fatal(err)
	}
	// "\.alter\.net" parses into dot + literals; rendering matches.
	if got := r.String(); got != `^([a-z]{3})\.alter\.net$` {
		t.Errorf("render = %s", got)
	}
	ext, ok := r.Match("sfo.alter.net")
	if !ok || ext.Hint != "sfo" {
		t.Errorf("match = %+v %v", ext, ok)
	}
}

func TestParseRoleAndHintType(t *testing.T) {
	for _, name := range []string{"hint", "clli4", "clli2", "state", "country"} {
		if _, err := ParseRole(name); err != nil {
			t.Errorf("ParseRole(%s): %v", name, err)
		}
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Error("unknown role should fail")
	}
	for _, name := range []string{"iata", "icao", "locode", "clli", "place", "facility"} {
		ht, err := ParseHintType(name)
		if err != nil || ht.String() != name {
			t.Errorf("ParseHintType(%s) = %v, %v", name, ht, err)
		}
	}
	if _, err := ParseHintType("bogus"); err == nil {
		t.Error("unknown hint type should fail")
	}
}

func TestParsePatternAllGeneratedForms(t *testing.T) {
	// Every grammar production must round-trip.
	patterns := []struct {
		pattern string
		roles   []Role
	}{
		{`^.+\.([a-z]{3})\d+\.x\.net$`, []Role{RoleHint}},
		{`^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.x\.net$`, []Role{RoleHint, RoleCountry}},
		{`^[^-]+-([a-z]{5})\.x\.net$`, []Role{RoleHint}},
		{`^\d+\.[a-z]+\d+\.([a-z]{6})[a-z\d]+\.x\.net$`, []Role{RoleHint}},
		{`^([a-z\d]+)\.([a-z]{2})\.x\.net$`, []Role{RoleHint, RoleState}},
	}
	for _, p := range patterns {
		r, err := ParsePattern(geodict.HintIATA, p.pattern, p.roles)
		if err != nil {
			t.Errorf("ParsePattern(%s): %v", p.pattern, err)
			continue
		}
		if r.String() != p.pattern {
			t.Errorf("round trip: got %s want %s", r.String(), p.pattern)
		}
	}
}

func TestParsePatternRejectsForeignRegex(t *testing.T) {
	// Arbitrary regexes outside the emitted grammar are rejected rather
	// than mis-parsed.
	for _, p := range []string{
		`^(?:abc)$`, `^[abc]+$`, `^a{2,3}$`, `^a|b$`,
	} {
		if _, err := ParsePattern(geodict.HintIATA, p, nil); err == nil {
			t.Errorf("foreign pattern %q should be rejected", p)
		}
	}
	_ = strings.TrimSpace("")
}
