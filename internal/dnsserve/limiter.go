// Package dnsserve is the DNS-native serving layer under cmd/geodns:
// a query handler over a live geoloc index plus the UDP and TCP loops
// that carry it. It lives outside the command so tests and geobench
// can drive the handler without sockets.
package dnsserve

import (
	"net/netip"
	"sync"
	"time"
)

// limiterCap bounds the bucket map. A source address only gets state
// while it is actively querying; when the map fills, the next miss
// sweeps out every bucket that has fully refilled (an idle source is
// indistinguishable from an unseen one). The cap is generous: 64k
// entries is ~4MB, and a flood from more sources than that degrades to
// per-sweep work, not unbounded memory.
const limiterCap = 65536

// limiter is a per-source-IP token bucket. Each source spends one
// token per query and accrues rate tokens per second up to burst. A
// nil *limiter allows everything (rate limiting disabled), and an
// invalid source address is allowed too — the limiter fails open,
// because dropping legitimate queries is worse than metering an
// unattributable one.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity, also the initial balance

	now func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[netip.Addr]*bucket
	evicted uint64 // buckets dropped by capacity sweeps, lifetime
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter; rate <= 0 returns nil (disabled).
func newLimiter(rate, burst float64) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[netip.Addr]*bucket),
	}
}

// allow reports whether src may send one more query, spending a token
// when it may.
func (l *limiter) allow(src netip.Addr) bool {
	if l == nil || !src.IsValid() {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[src]
	if b == nil {
		if len(l.buckets) >= limiterCap {
			l.sweep(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[src] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweep drops every bucket that would be full if refilled at now —
// sources idle long enough to be fresh again. Called with mu held.
func (l *limiter) sweep(now time.Time) {
	for src, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, src)
			l.evicted++
		}
	}
}

// evictions reports buckets dropped by sweeps so far; nil-safe, so a
// disabled limiter reads as zero.
func (l *limiter) evictions() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}
