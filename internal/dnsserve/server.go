package dnsserve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"hoiho/internal/dnswire"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
)

// Wire limits and loop timings. The read deadlines exist so the serve
// loops notice context cancellation; they are polls, not per-client
// timeouts.
const (
	minUDPSize       = 512  // RFC 1035 floor; never negotiate below
	defaultUDPSize   = 1232 // fits any unfragmented path, EDNS default
	pollInterval     = 250 * time.Millisecond
	tcpIdleTimeout   = 10 * time.Second // per-read deadline on an open TCP conn
	spotCheckSamples = 16
)

// queryStage is the tracer stage every handled packet records under;
// Stats reads its counters back.
const queryStage = "dnsquery"

// Config tunes a Server. The zero value serves with defaults: TTL 300,
// UDP payload 1232, rate limiting off.
type Config struct {
	// TTL is the time-to-live stamped on every answer record.
	TTL uint32
	// UDPSize is the largest UDP payload the server is willing to
	// send; the effective limit per query also honors what the client
	// advertised (never below the 512-byte RFC 1035 floor).
	UDPSize uint16
	// Rate and Burst meter queries per source address: Rate tokens per
	// second with Burst headroom. Rate 0 disables limiting.
	Rate  float64
	Burst float64
	// Tracer records per-query spans and counters; nil is inert.
	Tracer *obs.Tracer
	// Source and IndexOpts feed Reload; a nil Source makes Reload an
	// error, matching a daemon started without a reloadable input.
	Source    *geoloc.Source
	IndexOpts geoloc.Options
}

var errNoReloadSource = errors.New("dnsserve: no source configured for reload")

// Server answers DNS queries about router hostnames from a live geoloc
// index. One Server may serve UDP and TCP concurrently; every packet
// is handled against a single index generation even while Reload swaps
// a new one in.
type Server struct {
	cfg     Config
	live    *geoloc.Live
	limiter *limiter
	tracer  *obs.Tracer

	reloadMu sync.Mutex
}

// New builds a Server over the given index.
func New(ix *geoloc.Index, cfg Config) *Server {
	if cfg.TTL == 0 {
		cfg.TTL = 300
	}
	if cfg.UDPSize == 0 {
		cfg.UDPSize = defaultUDPSize
	}
	if cfg.UDPSize < minUDPSize {
		cfg.UDPSize = minUDPSize
	}
	return &Server{
		cfg:     cfg,
		live:    geoloc.NewLive(ix),
		limiter: newLimiter(cfg.Rate, cfg.Burst),
		tracer:  cfg.Tracer,
	}
}

// Generation exposes the live index generation (for status lines).
func (s *Server) Generation() uint64 { return s.live.Generation() }

// Stats snapshots the per-query counters accumulated so far.
func (s *Server) Stats() map[string]int64 { return s.tracer.StageCounters(queryStage) }

// Reload resolves the configured source again, spot-checks the new
// index against the live one, and swaps it in. Mirrors the geoserve
// /v1/reload lifecycle: concurrent reloads serialize, in-flight
// queries keep the generation they started with.
func (s *Server) Reload() (gen uint64, suffixes int, err error) {
	if s.cfg.Source == nil {
		return 0, 0, errNoReloadSource
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sp := s.tracer.Start("reload")
	defer sp.End()
	resolved, err := s.cfg.Source.Resolve(s.cfg.IndexOpts)
	if err != nil {
		sp.Count("failures", 1)
		return 0, 0, err
	}
	if err := geoloc.SpotCheck(s.live.Index(), resolved.Index, spotCheckSamples); err != nil {
		sp.Count("failures", 1)
		return 0, 0, err
	}
	_, gen = s.live.Swap(resolved.Index)
	sp.Count("suffixes", int64(resolved.Index.Len()))
	return gen, resolved.Index.Len(), nil
}

// HandlePacket answers one DNS message and returns the response frame,
// or nil when the input merits no reply (a frame too short to echo, or
// an inbound response message). src meters the rate limit; tcp lifts
// the UDP size limit. It never panics: a handler bug maps to SERVFAIL,
// mirroring the HTTP front end's 500 envelope.
func (s *Server) HandlePacket(pkt []byte, src netip.Addr, tcp bool) (out []byte) {
	sp := s.tracer.Start(queryStage)
	defer sp.End()
	sp.Count("queries", 1)
	defer func() {
		if recover() != nil {
			sp.Count("servfail", 1)
			out = rawReply(pkt, dnswire.RCodeServFail)
		}
	}()

	// Rate limiting happens before parsing: shedding load must not
	// cost a message decode per flooded packet.
	if !s.limiter.allow(src) {
		sp.Count("refused", 1)
		return rawReply(pkt, dnswire.RCodeRefused)
	}

	q, err := dnswire.Unpack(pkt)
	if err != nil {
		sp.Count("formerr", 1)
		return rawReply(pkt, dnswire.RCodeFormErr)
	}
	if q.Response {
		sp.Count("dropped", 1)
		return nil // a response sent at a server is noise, not a query
	}

	r := dnswire.Reply(q)
	r.Authoritative = true
	if q.EDNS != nil {
		r.EDNS = &dnswire.EDNS{UDPSize: s.cfg.UDPSize}
	}

	switch {
	case q.Opcode != dnswire.OpcodeQuery:
		sp.Count("notimp", 1)
		r.RCode = dnswire.RCodeNotImp
	case q.EDNS != nil && q.EDNS.Version > 0:
		sp.Count("badvers", 1)
		r.RCode = dnswire.RCodeBadVers
	case len(q.Questions) != 1:
		sp.Count("formerr", 1)
		r.RCode = dnswire.RCodeFormErr
	case q.Questions[0].Class != dnswire.ClassINET && q.Questions[0].Class != dnswire.ClassANY:
		sp.Count("notimp", 1)
		r.RCode = dnswire.RCodeNotImp
	default:
		s.answer(r, q.Questions[0], sp)
	}

	limit := dnswire.MaxMessageLen
	if !tcp {
		limit = s.udpLimit(q)
	}
	out, err = r.PackTruncated(limit)
	if err != nil {
		// The question alone does not fit the negotiated size; answer
		// with a header-only SERVFAIL rather than silence.
		sp.Count("servfail", 1)
		return rawReply(pkt, dnswire.RCodeServFail)
	}
	return out
}

// udpLimit negotiates the response size: the smaller of what the
// client advertised and what the server allows, never below 512.
func (s *Server) udpLimit(q *dnswire.Message) int {
	limit := int(s.cfg.UDPSize)
	if q.EDNS != nil && int(q.EDNS.UDPSize) < limit {
		limit = int(q.EDNS.UDPSize)
	}
	if limit < minUDPSize {
		limit = minUDPSize
	}
	return limit
}

// answer resolves one question against the live index and fills the
// response: TXT carries the key=value geolocation detail, PTR a
// location-encoding target name, LOC the coordinates, ANY all of
// them. A located name asked an unsupported type gets an empty
// authoritative NOERROR (NODATA); an unlocated name gets NXDOMAIN.
func (s *Server) answer(r *dnswire.Message, question dnswire.Question, sp *obs.Span) {
	sp.SetKey(question.Type.String())
	g, ok := s.live.Index().Lookup(question.Name)
	if !ok || g.Loc == nil {
		sp.Count("nxdomain", 1)
		r.RCode = dnswire.RCodeNXDomain
		return
	}
	wantAll := question.Type == dnswire.TypeANY
	add := func(data dnswire.RData) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name:  question.Name,
			Class: dnswire.ClassINET,
			TTL:   s.cfg.TTL,
			Data:  data,
		})
	}
	if wantAll || question.Type == dnswire.TypeTXT {
		add(dnswire.TXT(geoloc.AnswerStrings(g)))
	}
	if wantAll || question.Type == dnswire.TypePTR {
		add(dnswire.PTR(geoloc.PTRTarget(g)))
	}
	if (wantAll || question.Type == dnswire.TypeLOC) && g.Loc.Pos.Valid() {
		add(dnswire.NewLOC(g.Loc.Pos.Lat, g.Loc.Pos.Long))
	}
	if len(r.Answers) == 0 {
		sp.Count("nodata", 1) // located name, unsupported type
		return
	}
	sp.Count("noerror", 1)
}

// rawReply builds a header-only response from the raw bytes of a
// request that may not parse: ID echoed, QR set, opcode and RD bits
// carried over, all counts zero. Frames too short to even echo an ID
// get no reply at all.
func rawReply(pkt []byte, rcode dnswire.RCode) []byte {
	if len(pkt) < 4 {
		return nil
	}
	h := make([]byte, 12)
	h[0], h[1] = pkt[0], pkt[1]
	h[2] = 0x80 | pkt[2]&0x79 // QR | opcode | RD
	h[3] = byte(rcode & 0xF)
	return h
}

// ServeUDP answers queries on conn until ctx is canceled. Packets are
// handled inline — a lookup is microseconds, so per-packet goroutines
// would cost more than they buy.
func (s *Server) ServeUDP(ctx context.Context, conn *net.UDPConn) error {
	buf := make([]byte, 65536)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(pollInterval)); err != nil {
			return err
		}
		n, addr, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if resp := s.HandlePacket(buf[:n], addr.Addr(), false); resp != nil {
			if _, err := conn.WriteToUDPAddrPort(resp, addr); err != nil && ctx.Err() != nil {
				return nil
			}
		}
	}
}

// ServeTCP answers queries on ln until ctx is canceled, then waits for
// every open connection to drain before returning.
func (s *Server) ServeTCP(ctx context.Context, ln *net.TCPListener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		if err := ln.SetDeadline(time.Now().Add(pollInterval)); err != nil {
			return err
		}
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(ctx, conn)
		}()
	}
}

// serveConn handles one TCP connection: two-byte length-prefixed
// frames (RFC 1035 §4.2.2) until the peer closes, errs, idles past
// the deadline, or the server drains.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer func() {
		// A failed close on a drained conn is not actionable, but it is
		// countable: surface it in the query-stage counters.
		if err := conn.Close(); err != nil {
			sp := s.tracer.Start(queryStage)
			sp.Count("close_errors", 1)
			sp.End()
		}
	}()
	src := netip.Addr{}
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		src = ap.Addr()
	}
	var lenbuf [2]byte
	for ctx.Err() == nil {
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		frame := make([]byte, binary.BigEndian.Uint16(lenbuf[:]))
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		resp := s.HandlePacket(frame, src, true)
		if resp == nil {
			continue
		}
		binary.BigEndian.PutUint16(lenbuf[:], uint16(len(resp)))
		if _, err := conn.Write(lenbuf[:]); err != nil {
			return
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}
