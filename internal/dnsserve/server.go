package dnsserve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"hoiho/internal/dnswire"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/qlog"
)

// Wire limits and loop timings. The read deadlines exist so the serve
// loops notice context cancellation; they are polls, not per-client
// timeouts.
const (
	minUDPSize       = 512  // RFC 1035 floor; never negotiate below
	defaultUDPSize   = 1232 // fits any unfragmented path, EDNS default
	pollInterval     = 250 * time.Millisecond
	tcpIdleTimeout   = 10 * time.Second // per-read deadline on an open TCP conn
	spotCheckSamples = 16
)

// queryStage is the tracer stage every handled packet records under;
// Stats reads its counters back.
const queryStage = "dnsquery"

// Config tunes a Server. The zero value serves with defaults: TTL 300,
// UDP payload 1232, rate limiting off.
type Config struct {
	// TTL is the time-to-live stamped on every answer record.
	TTL uint32
	// UDPSize is the largest UDP payload the server is willing to
	// send; the effective limit per query also honors what the client
	// advertised (never below the 512-byte RFC 1035 floor).
	UDPSize uint16
	// Rate and Burst meter queries per source address: Rate tokens per
	// second with Burst headroom. Rate 0 disables limiting.
	Rate  float64
	Burst float64
	// Tracer records per-query spans and counters; nil is inert.
	Tracer *obs.Tracer
	// QueryLog, when non-nil, receives one sampled JSONL record per
	// handled packet; its request id is also stamped on the query span.
	// Nil (the zero value) disables logging at zero cost.
	QueryLog *qlog.Logger
	// Source and IndexOpts feed Reload; a nil Source makes Reload an
	// error, matching a daemon started without a reloadable input.
	Source    *geoloc.Source
	IndexOpts geoloc.Options
}

// ednsBounds are the histogram bands for negotiated UDP response
// limits: the RFC 1035 floor, the unfragmented-path EDNS default, and
// a large-advertisement band; sizes above fall in +Inf. An array, not
// a slice, so the Server's counter block can size itself from it.
var ednsBounds = [3]float64{512, 1232, 4096}

var errNoReloadSource = errors.New("dnsserve: no source configured for reload")

// Server answers DNS queries about router hostnames from a live geoloc
// index. One Server may serve UDP and TCP concurrently; every packet
// is handled against a single index generation even while Reload swaps
// a new one in.
type Server struct {
	cfg     Config
	live    *geoloc.Live
	limiter *limiter
	tracer  *obs.Tracer
	qlog    *qlog.Logger

	// Reload lifecycle, mirroring geoserve's: outcome counters plus the
	// build/swap latencies of the last successful swap.
	reloadMu       sync.Mutex
	reloads        atomic.Int64
	reloadFailures atomic.Int64
	lastBuildUS    atomic.Int64
	lastSwapUS     atomic.Int64

	// Negotiated UDP response-size histogram: per-band observation
	// counts over ednsBounds (last slot is +Inf) and a byte sum.
	ednsCounts [len(ednsBounds) + 1]atomic.Int64
	ednsSum    atomic.Int64
}

// New builds a Server over the given index.
func New(ix *geoloc.Index, cfg Config) *Server {
	if cfg.TTL == 0 {
		cfg.TTL = 300
	}
	if cfg.UDPSize == 0 {
		cfg.UDPSize = defaultUDPSize
	}
	if cfg.UDPSize < minUDPSize {
		cfg.UDPSize = minUDPSize
	}
	return &Server{
		cfg:     cfg,
		live:    geoloc.NewLive(ix),
		limiter: newLimiter(cfg.Rate, cfg.Burst),
		tracer:  cfg.Tracer,
		qlog:    cfg.QueryLog,
	}
}

// Generation exposes the live index generation (for status lines).
func (s *Server) Generation() uint64 { return s.live.Generation() }

// Suffixes reports how many convention suffixes the live index serves.
func (s *Server) Suffixes() int { return s.live.Index().Len() }

// Stats snapshots the per-query counters accumulated so far.
func (s *Server) Stats() map[string]int64 { return s.tracer.StageCounters(queryStage) }

// IndexStats snapshots the live index's lookup counters. The counters
// belong to the current generation: a reload swaps in a fresh index
// whose counters start at zero.
func (s *Server) IndexStats() geoloc.Stats { return s.live.Index().Stats() }

// LimiterEvictions reports buckets dropped by capacity sweeps; zero
// when rate limiting is disabled.
func (s *Server) LimiterEvictions() uint64 { return s.limiter.evictions() }

// ReloadStats is the reload-lifecycle snapshot the admin plane exports.
type ReloadStats struct {
	Generation  uint64
	Reloads     int64
	Failures    int64
	LastBuildUS int64
	LastSwapUS  int64
}

// ReloadStats snapshots the reload lifecycle counters.
func (s *Server) ReloadStats() ReloadStats {
	return ReloadStats{
		Generation:  s.live.Generation(),
		Reloads:     s.reloads.Load(),
		Failures:    s.reloadFailures.Load(),
		LastBuildUS: s.lastBuildUS.Load(),
		LastSwapUS:  s.lastSwapUS.Load(),
	}
}

// EDNSSizes snapshots the negotiated UDP response-size histogram:
// per-band observation counts over bounds (one extra +Inf band at the
// end) and the cumulative byte sum. TCP queries are not observed —
// they carry no negotiated limit.
func (s *Server) EDNSSizes() (bounds []float64, counts []int64, sumBytes int64) {
	counts = make([]int64, len(s.ednsCounts))
	for i := range s.ednsCounts {
		counts[i] = s.ednsCounts[i].Load()
	}
	return ednsBounds[:], counts, s.ednsSum.Load()
}

// observeUDPLimit records one negotiated response limit.
func (s *Server) observeUDPLimit(limit int) {
	band := len(ednsBounds)
	for i, b := range ednsBounds {
		if float64(limit) <= b {
			band = i
			break
		}
	}
	s.ednsCounts[band].Add(1)
	s.ednsSum.Add(int64(limit))
}

// Reload resolves the configured source again, spot-checks the new
// index against the live one, and swaps it in. Mirrors the geoserve
// /v1/reload lifecycle: concurrent reloads serialize, in-flight
// queries keep the generation they started with.
func (s *Server) Reload() (gen uint64, suffixes int, err error) {
	if s.cfg.Source == nil {
		return 0, 0, errNoReloadSource
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sp := s.tracer.Start("reload")
	defer sp.End()
	t0 := time.Now()
	resolved, err := s.cfg.Source.Resolve(s.cfg.IndexOpts)
	if err != nil {
		s.reloadFailures.Add(1)
		sp.Count("failures", 1)
		return 0, 0, err
	}
	buildUS := int64(time.Since(t0) / time.Microsecond)
	t1 := time.Now()
	if err := geoloc.SpotCheck(s.live.Index(), resolved.Index, spotCheckSamples); err != nil {
		s.reloadFailures.Add(1)
		sp.Count("failures", 1)
		return 0, 0, err
	}
	_, gen = s.live.Swap(resolved.Index)
	s.reloads.Add(1)
	s.lastBuildUS.Store(buildUS)
	s.lastSwapUS.Store(int64(time.Since(t1) / time.Microsecond))
	sp.Count("suffixes", int64(resolved.Index.Len()))
	return gen, resolved.Index.Len(), nil
}

// HandlePacket answers one DNS message and returns the response frame,
// or nil when the input merits no reply (a frame too short to echo, or
// an inbound response message). src meters the rate limit; tcp lifts
// the UDP size limit. It never panics: a handler bug maps to SERVFAIL,
// mirroring the HTTP front end's 500 envelope.
func (s *Server) HandlePacket(pkt []byte, src netip.Addr, tcp bool) (out []byte) {
	sp := s.tracer.Start(queryStage)
	defer sp.End()
	sp.Count("queries", 1)

	// Query-log setup. A nil logger returns an empty id, and the whole
	// record path stays allocation-free; with logging on, the record is
	// filled as the outcome is decided and written by the same deferred
	// function that converts panics to SERVFAIL, so a crashed handler
	// still logs its query.
	qr := qlog.Record{Front: "dns"}
	var t0 time.Time
	if id := s.qlog.NextID(); id != "" {
		qr.ID = id
		sp.SetAttr("request_id", id)
		if src.IsValid() {
			qr.Source = src.String()
		}
		t0 = time.Now()
	}
	defer func() {
		if recover() != nil {
			sp.Count("servfail", 1)
			qr.Outcome = "servfail"
			qr.Status = int(dnswire.RCodeServFail)
			out = rawReply(pkt, dnswire.RCodeServFail)
		}
		if qr.ID != "" {
			qr.DurUS = int64(time.Since(t0) / time.Microsecond)
			qr.Generation = s.live.Generation()
			s.qlog.Log(qr)
		}
	}()

	// Rate limiting happens before parsing: shedding load must not
	// cost a message decode per flooded packet.
	if !s.limiter.allow(src) {
		sp.Count("refused", 1)
		qr.Outcome = "refused"
		qr.Status = int(dnswire.RCodeRefused)
		return rawReply(pkt, dnswire.RCodeRefused)
	}

	q, err := dnswire.Unpack(pkt)
	if err != nil {
		sp.Count("formerr", 1)
		qr.Outcome = "formerr"
		qr.Status = int(dnswire.RCodeFormErr)
		return rawReply(pkt, dnswire.RCodeFormErr)
	}
	if q.Response {
		sp.Count("dropped", 1)
		qr.Outcome = "dropped"
		return nil // a response sent at a server is noise, not a query
	}
	if qr.ID != "" && len(q.Questions) > 0 {
		qr.Hostname = q.Questions[0].Name
		qr.Op = q.Questions[0].Type.String()
	}

	r := dnswire.Reply(q)
	r.Authoritative = true
	if q.EDNS != nil {
		r.EDNS = &dnswire.EDNS{UDPSize: s.cfg.UDPSize}
	}

	switch {
	case q.Opcode != dnswire.OpcodeQuery:
		sp.Count("notimp", 1)
		qr.Outcome = "notimp"
		r.RCode = dnswire.RCodeNotImp
	case q.EDNS != nil && q.EDNS.Version > 0:
		sp.Count("badvers", 1)
		qr.Outcome = "badvers"
		r.RCode = dnswire.RCodeBadVers
	case len(q.Questions) != 1:
		sp.Count("formerr", 1)
		qr.Outcome = "formerr"
		r.RCode = dnswire.RCodeFormErr
	case q.Questions[0].Class != dnswire.ClassINET && q.Questions[0].Class != dnswire.ClassANY:
		sp.Count("notimp", 1)
		qr.Outcome = "notimp"
		r.RCode = dnswire.RCodeNotImp
	default:
		qr.Outcome = s.answer(r, q.Questions[0], sp)
	}
	qr.Status = int(r.RCode)

	limit := dnswire.MaxMessageLen
	if !tcp {
		limit = s.udpLimit(q)
		s.observeUDPLimit(limit)
	}
	out, err = r.PackTruncated(limit)
	if err != nil {
		// The question alone does not fit the negotiated size; answer
		// with a header-only SERVFAIL rather than silence.
		sp.Count("servfail", 1)
		qr.Outcome = "servfail"
		qr.Status = int(dnswire.RCodeServFail)
		return rawReply(pkt, dnswire.RCodeServFail)
	}
	return out
}

// udpLimit negotiates the response size: the smaller of what the
// client advertised and what the server allows, never below 512.
func (s *Server) udpLimit(q *dnswire.Message) int {
	limit := int(s.cfg.UDPSize)
	if q.EDNS != nil && int(q.EDNS.UDPSize) < limit {
		limit = int(q.EDNS.UDPSize)
	}
	if limit < minUDPSize {
		limit = minUDPSize
	}
	return limit
}

// answer resolves one question against the live index and fills the
// response: TXT carries the key=value geolocation detail, PTR a
// location-encoding target name, LOC the coordinates, ANY all of
// them. A located name asked an unsupported type gets an empty
// authoritative NOERROR (NODATA); an unlocated name gets NXDOMAIN.
// The returned outcome names the counter it incremented, for the
// query-log record.
func (s *Server) answer(r *dnswire.Message, question dnswire.Question, sp *obs.Span) string {
	sp.SetKey(question.Type.String())
	g, ok := s.live.Index().Lookup(question.Name)
	if !ok || g.Loc == nil {
		sp.Count("nxdomain", 1)
		r.RCode = dnswire.RCodeNXDomain
		return "nxdomain"
	}
	wantAll := question.Type == dnswire.TypeANY
	add := func(data dnswire.RData) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name:  question.Name,
			Class: dnswire.ClassINET,
			TTL:   s.cfg.TTL,
			Data:  data,
		})
	}
	if wantAll || question.Type == dnswire.TypeTXT {
		add(dnswire.TXT(geoloc.AnswerStrings(g)))
	}
	if wantAll || question.Type == dnswire.TypePTR {
		add(dnswire.PTR(geoloc.PTRTarget(g)))
	}
	if (wantAll || question.Type == dnswire.TypeLOC) && g.Loc.Pos.Valid() {
		add(dnswire.NewLOC(g.Loc.Pos.Lat, g.Loc.Pos.Long))
	}
	if len(r.Answers) == 0 {
		sp.Count("nodata", 1) // located name, unsupported type
		return "nodata"
	}
	sp.Count("noerror", 1)
	return "noerror"
}

// rawReply builds a header-only response from the raw bytes of a
// request that may not parse: ID echoed, QR set, opcode and RD bits
// carried over, all counts zero. Frames too short to even echo an ID
// get no reply at all.
func rawReply(pkt []byte, rcode dnswire.RCode) []byte {
	if len(pkt) < 4 {
		return nil
	}
	h := make([]byte, 12)
	h[0], h[1] = pkt[0], pkt[1]
	h[2] = 0x80 | pkt[2]&0x79 // QR | opcode | RD
	h[3] = byte(rcode & 0xF)
	return h
}

// ServeUDP answers queries on conn until ctx is canceled. Packets are
// handled inline — a lookup is microseconds, so per-packet goroutines
// would cost more than they buy.
func (s *Server) ServeUDP(ctx context.Context, conn *net.UDPConn) error {
	buf := make([]byte, 65536)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(pollInterval)); err != nil {
			return err
		}
		n, addr, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if resp := s.HandlePacket(buf[:n], addr.Addr(), false); resp != nil {
			if _, err := conn.WriteToUDPAddrPort(resp, addr); err != nil && ctx.Err() != nil {
				return nil
			}
		}
	}
}

// ServeTCP answers queries on ln until ctx is canceled, then waits for
// every open connection to drain before returning.
func (s *Server) ServeTCP(ctx context.Context, ln *net.TCPListener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		if err := ln.SetDeadline(time.Now().Add(pollInterval)); err != nil {
			return err
		}
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(ctx, conn)
		}()
	}
}

// serveConn handles one TCP connection: two-byte length-prefixed
// frames (RFC 1035 §4.2.2) until the peer closes, errs, idles past
// the deadline, or the server drains.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer func() {
		// A failed close on a drained conn is not actionable, but it is
		// countable: surface it in the query-stage counters.
		if err := conn.Close(); err != nil {
			sp := s.tracer.Start(queryStage)
			sp.Count("close_errors", 1)
			sp.End()
		}
	}()
	src := netip.Addr{}
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		src = ap.Addr()
	}
	var lenbuf [2]byte
	for ctx.Err() == nil {
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		frame := make([]byte, binary.BigEndian.Uint16(lenbuf[:]))
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		resp := s.HandlePacket(frame, src, true)
		if resp == nil {
			continue
		}
		binary.BigEndian.PutUint16(lenbuf[:], uint16(len(resp)))
		if _, err := conn.Write(lenbuf[:]); err != nil {
			return
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}
