package dnsserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"hoiho/internal/dnswire"
	"hoiho/internal/obs"
	"hoiho/internal/qlog"
)

// TestEDNSSizeHistogram pins the negotiated-limit accounting: each UDP
// query lands in the band of its negotiated response limit, TCP
// queries are never observed, and the byte sum tracks the limits.
func TestEDNSSizeHistogram(t *testing.T) {
	s := New(testIndex(t), Config{UDPSize: 8192, Tracer: obs.New(obs.Options{})})
	send := func(udpSize uint16, tcp bool) {
		m := q(locatedName, dnswire.TypeTXT)
		if udpSize == 0 {
			m.EDNS = nil
		} else {
			m.EDNS.UDPSize = udpSize
		}
		pkt, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if s.HandlePacket(pkt, testSrc, tcp) == nil {
			t.Fatal("no response")
		}
	}
	send(512, false)  // min(512, 8192) = 512 → band 0
	send(1232, false) // 1232 → band 1
	send(4096, false) // 4096 → band 2
	send(9000, false) // min(9000, 8192) = 8192 → +Inf band
	send(0, false)    // no EDNS: server default 8192 → +Inf band
	send(512, true)   // TCP: no negotiated limit, not observed

	bounds, counts, sum := s.EDNSSizes()
	if want := []float64{512, 1232, 4096}; fmt.Sprint(bounds) != fmt.Sprint(want) {
		t.Errorf("bounds = %v, want %v", bounds, want)
	}
	if want := []int64{1, 1, 1, 2}; fmt.Sprint(counts) != fmt.Sprint(want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
	if want := int64(512 + 1232 + 4096 + 8192 + 8192); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

// TestLimiterEvictions: capacity sweeps count the buckets they drop,
// and a disabled limiter reads zero through the Server accessor.
func TestLimiterEvictions(t *testing.T) {
	l, clk := testLimiter(1, 1)
	for i := 0; i < limiterCap; i++ {
		l.allow(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	}
	if got := l.evictions(); got != 0 {
		t.Fatalf("evictions before sweep = %d, want 0", got)
	}
	clk.advance(time.Hour) // every bucket refills → all sweepable
	l.allow(netip.MustParseAddr("192.0.2.99"))
	if got := l.evictions(); got != limiterCap {
		t.Errorf("evictions = %d, want %d", got, limiterCap)
	}
	if got := testServer(t).LimiterEvictions(); got != 0 {
		t.Errorf("disabled limiter evictions = %d, want 0", got)
	}
}

// TestReloadTimings: a successful reload stores its build and swap
// latencies and bumps the outcome counters.
func TestReloadTimings(t *testing.T) {
	src := writeTestSnapshot(t, t.TempDir())
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(resolved.Index, Config{Tracer: obs.New(obs.Options{}), Source: src, IndexOpts: opts})
	if rs := s.ReloadStats(); rs.Reloads != 0 || rs.Generation != 1 {
		t.Fatalf("boot reload stats = %+v", rs)
	}
	if _, _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	rs := s.ReloadStats()
	if rs.Reloads != 1 || rs.Failures != 0 || rs.Generation != 2 {
		t.Errorf("reload stats = %+v, want 1 reload at generation 2", rs)
	}
	if rs.LastBuildUS <= 0 {
		t.Errorf("LastBuildUS = %d, want > 0", rs.LastBuildUS)
	}
	if rs.LastSwapUS < 0 {
		t.Errorf("LastSwapUS = %d", rs.LastSwapUS)
	}
}

// TestQueryLogWiring runs the handler with a buffered query log on a
// frozen clock and pins the records: one per handled packet, outcome
// matching the counter taxonomy, hostname and qtype on parsed queries.
func TestQueryLogWiring(t *testing.T) {
	var buf bytes.Buffer
	ql, err := qlog.New(qlog.Options{W: &buf, Clock: func() time.Time { return time.UnixMicro(7) }})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testIndex(t), Config{Tracer: obs.New(obs.Options{}), QueryLog: ql})

	pack := func(m *dnswire.Message) []byte {
		t.Helper()
		pkt, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	s.HandlePacket(pack(q(locatedName, dnswire.TypeTXT)), testSrc, false)
	s.HandlePacket(pack(q(unlocatedName, dnswire.TypePTR)), testSrc, false)
	noise := q(locatedName, dnswire.TypeTXT)
	noise.Response = true
	s.HandlePacket(pack(noise), testSrc, false) // dropped, no reply — still logged

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("qlog has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	type rec struct {
		TS         int64  `json:"ts_us"`
		ID         string `json:"id"`
		Front      string `json:"front"`
		Op         string `json:"op"`
		Hostname   string `json:"hostname"`
		Source     string `json:"source"`
		Status     int    `json:"status"`
		Outcome    string `json:"outcome"`
		Generation uint64 `json:"generation"`
	}
	recs := make([]rec, len(lines))
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &recs[i]); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if r := recs[0]; r.TS != 7 || r.ID != "q1" || r.Front != "dns" || r.Op != "TXT" ||
		r.Hostname != locatedName || r.Source != testSrc.String() ||
		r.Status != int(dnswire.RCodeNoError) || r.Outcome != "noerror" || r.Generation != 1 {
		t.Errorf("located record = %+v", r)
	}
	if r := recs[1]; r.Op != "PTR" || r.Outcome != "nxdomain" ||
		r.Status != int(dnswire.RCodeNXDomain) {
		t.Errorf("miss record = %+v", r)
	}
	if r := recs[2]; r.Outcome != "dropped" || r.Status != 0 {
		t.Errorf("dropped record = %+v", r)
	}
}
