package dnsserve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/dnswire"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
)

func testOptions() geoloc.Options {
	return geoloc.Options{Dict: geodict.MustDefault(), PSL: psl.MustDefault()}
}

// writeTestSnapshot compiles testConventions into a snapshot file and
// returns a Source that serves (and reloads) from it.
func writeTestSnapshot(t *testing.T, dir string) *geoloc.Source {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := geoloc.Save(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "index.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return &geoloc.Source{Snapshot: path}
}

func TestReloadNoSource(t *testing.T) {
	s := testServer(t)
	if _, _, err := s.Reload(); !errors.Is(err, errNoReloadSource) {
		t.Errorf("Reload error = %v, want errNoReloadSource", err)
	}
}

func TestReloadSwapsGeneration(t *testing.T) {
	src := writeTestSnapshot(t, t.TempDir())
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(resolved.Index, Config{Tracer: obs.New(obs.Options{}), Source: src, IndexOpts: opts})
	gen0 := s.Generation()
	gen, suffixes, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if gen <= gen0 || suffixes == 0 {
		t.Errorf("Reload = (gen %d, suffixes %d), want gen > %d", gen, suffixes, gen0)
	}
}

// TestReloadUnderQuery mirrors geoserve's TestReloadUnderLoad for the
// DNS path: concurrent clients hammer the handler while reloads swap
// the index underneath them. Every query must keep answering NOERROR
// with a full answer — no empty index windows, no errors, no panics.
func TestReloadUnderQuery(t *testing.T) {
	src := writeTestSnapshot(t, t.TempDir())
	opts := testOptions()
	resolved, err := src.Resolve(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(resolved.Index, Config{Tracer: obs.New(obs.Options{}), Source: src, IndexOpts: opts})
	pkt, err := q(locatedName, dnswire.TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	var queries, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				queries.Add(1)
				resp := s.HandlePacket(pkt, testSrc, false)
				r, err := dnswire.Unpack(resp)
				if err != nil || r.RCode != dnswire.RCodeNoError || len(r.Answers) != 1 {
					failures.Add(1)
				}
			}
		}()
	}

	const reloads = 20
	gen0 := s.Generation()
	for i := 0; i < reloads; i++ {
		if _, _, err := s.Reload(); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := s.Generation(); got != gen0+reloads {
		t.Errorf("generation = %d, want %d", got, gen0+reloads)
	}
	if failures.Load() != 0 {
		t.Errorf("%d of %d queries failed during reloads", failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Error("no queries ran")
	}
}
