package dnsserve

import (
	"testing"

	"hoiho/internal/dnswire"
)

// BenchmarkGeoDNSQuery measures the socketless serving path: one
// pre-packed TXT query through HandlePacket — decode, rate-limit
// check, index lookup, answer build, encode. This is the CI bench
// smoke target for the DNS front end.
func BenchmarkGeoDNSQuery(b *testing.B) {
	s := New(testIndex(b), Config{})
	pkt, err := q(locatedName, dnswire.TypeTXT).Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.HandlePacket(pkt, testSrc, false); resp == nil {
			b.Fatal("no response")
		}
	}
}
