package dnsserve

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"hoiho/internal/dnswire"
	"hoiho/internal/obs"
)

// fakeClock drives a limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testLimiter(rate, burst float64) (*limiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l := newLimiter(rate, burst)
	l.now = clk.now
	return l, clk
}

func TestLimiterBurstAndRefill(t *testing.T) {
	l, clk := testLimiter(2, 3) // 2 tokens/sec, burst 3
	src := netip.MustParseAddr("192.0.2.7")
	for i := 0; i < 3; i++ {
		if !l.allow(src) {
			t.Fatalf("query %d inside burst refused", i)
		}
	}
	if l.allow(src) {
		t.Fatal("query beyond burst allowed")
	}
	clk.advance(500 * time.Millisecond) // refills one token
	if !l.allow(src) {
		t.Fatal("refilled token refused")
	}
	if l.allow(src) {
		t.Fatal("second query after single refill allowed")
	}
	clk.advance(time.Hour) // refill caps at burst, not rate*3600
	for i := 0; i < 3; i++ {
		if !l.allow(src) {
			t.Fatalf("query %d after long idle refused", i)
		}
	}
	if l.allow(src) {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestLimiterPerSourceIsolation(t *testing.T) {
	l, _ := testLimiter(1, 1)
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	if !l.allow(a) {
		t.Fatal("first query from a refused")
	}
	if l.allow(a) {
		t.Fatal("second query from a allowed")
	}
	if !l.allow(b) {
		t.Fatal("exhausting a's bucket starved b")
	}
}

func TestLimiterFailOpen(t *testing.T) {
	var nilLimiter *limiter
	if !nilLimiter.allow(netip.MustParseAddr("192.0.2.1")) {
		t.Error("nil limiter must allow")
	}
	if newLimiter(0, 10) != nil {
		t.Error("rate 0 should disable the limiter")
	}
	l, _ := testLimiter(1, 1)
	if !l.allow(netip.Addr{}) {
		t.Error("invalid source address must be allowed")
	}
}

func TestLimiterEviction(t *testing.T) {
	l, clk := testLimiter(1000, 1)
	// Fill the map to the cap with distinct sources.
	for i := 0; i < limiterCap; i++ {
		l.allow(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	}
	if got := len(l.buckets); got != limiterCap {
		t.Fatalf("buckets = %d, want %d", got, limiterCap)
	}
	// After every bucket has refilled, one more source sweeps them out.
	clk.advance(time.Second)
	if !l.allow(netip.MustParseAddr("192.0.2.99")) {
		t.Fatal("fresh source refused at cap")
	}
	if got := len(l.buckets); got >= limiterCap {
		t.Fatalf("sweep kept %d buckets", got)
	}
}

// TestRefusedAccounting runs the limiter through the full handler:
// queries over budget get REFUSED and the refused counter moves.
func TestRefusedAccounting(t *testing.T) {
	s := New(testIndex(t), Config{Rate: 1, Burst: 2, Tracer: obs.New(obs.Options{})})
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.limiter.now = clk.now
	pkt, err := q(locatedName, dnswire.TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}
	var rcodes []dnswire.RCode
	for i := 0; i < 4; i++ {
		resp := s.HandlePacket(pkt, testSrc, false)
		r, err := dnswire.Unpack(resp)
		if err != nil {
			t.Fatal(err)
		}
		rcodes = append(rcodes, r.RCode)
	}
	want := []dnswire.RCode{dnswire.RCodeNoError, dnswire.RCodeNoError,
		dnswire.RCodeRefused, dnswire.RCodeRefused}
	if fmt.Sprint(rcodes) != fmt.Sprint(want) {
		t.Errorf("rcodes = %v, want %v", rcodes, want)
	}
	stats := s.Stats()
	if stats["refused"] != 2 || stats["queries"] != 4 {
		t.Errorf("Stats = %v", stats)
	}
	// A REFUSED reply is header-only and echoes the query ID.
	resp := s.HandlePacket(pkt, testSrc, false)
	if len(resp) != 12 || resp[0] != pkt[0] || resp[1] != pkt[1] {
		t.Errorf("REFUSED reply = %x", resp)
	}
}
