package dnsserve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"io"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/dnswire"
	"hoiho/internal/geodict"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
)

// testConventions matches the geoserve test fixture: a dictionary IATA
// convention for he.net plus a stage-4 learned overlay for "ash".
const testConventions = `# test conventions
suffix he.net good tp=16 fp=0 fn=0 unk=0 hints=5
regex iata hint ^.+\.core\d+\.([a-z]{3})\d+\.he\.net$
learned iata ash 39.0437 -77.4875 ashburn|va|us tp=4 fp=0 collide=false
`

const (
	locatedName   = "xe-1.core9.ash1.he.net."
	unlocatedName = "nothing.example.com."
)

func testIndex(t testing.TB) *geoloc.Index {
	t.Helper()
	res, err := core.ReadConventions(strings.NewReader(testConventions))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{
		Dict: geodict.MustDefault(), PSL: psl.MustDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func testServer(t testing.TB) *Server {
	t.Helper()
	return New(testIndex(t), Config{Tracer: obs.New(obs.Options{})})
}

var testSrc = netip.MustParseAddr("192.0.2.1")

// q builds a one-question query with EDNS.
func q(name string, typ dnswire.Type) *dnswire.Message {
	return &dnswire.Message{
		ID:               0x4242,
		RecursionDesired: true,
		Questions:        []dnswire.Question{{Name: name, Type: typ, Class: dnswire.ClassINET}},
		EDNS:             &dnswire.EDNS{UDPSize: 1232},
	}
}

// ask packs the query, runs it through the handler, and decodes the
// response.
func ask(t *testing.T, s *Server, m *dnswire.Message) *dnswire.Message {
	t.Helper()
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp := s.HandlePacket(pkt, testSrc, false)
	if resp == nil {
		t.Fatal("no response")
	}
	r, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatalf("response does not decode: %v", err)
	}
	return r
}

// TestRCodeMapping pins the query-validation policy: each malformed or
// unsupported query shape maps to the same taxonomy the /v1 error
// envelope uses on the HTTP side.
func TestRCodeMapping(t *testing.T) {
	s := testServer(t)
	multi := q(locatedName, dnswire.TypeTXT)
	multi.Questions = append(multi.Questions, multi.Questions[0])
	notify := q(locatedName, dnswire.TypeTXT)
	notify.Opcode = dnswire.OpcodeNotify
	chaos := q(locatedName, dnswire.TypeTXT)
	chaos.Questions[0].Class = dnswire.Class(3)
	badvers := q(locatedName, dnswire.TypeTXT)
	badvers.EDNS.Version = 1

	cases := []struct {
		name string
		m    *dnswire.Message
		want dnswire.RCode
	}{
		{"located", q(locatedName, dnswire.TypeTXT), dnswire.RCodeNoError},
		{"miss", q(unlocatedName, dnswire.TypeTXT), dnswire.RCodeNXDomain},
		{"two questions", multi, dnswire.RCodeFormErr},
		{"notify opcode", notify, dnswire.RCodeNotImp},
		{"chaos class", chaos, dnswire.RCodeNotImp},
		{"edns version 1", badvers, dnswire.RCodeBadVers},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := ask(t, s, tc.m)
			if r.RCode != tc.want {
				t.Errorf("rcode = %v, want %v", r.RCode, tc.want)
			}
			if !r.Response || r.ID != tc.m.ID {
				t.Errorf("response header not echoed: %+v", r)
			}
			if tc.want == dnswire.RCodeNXDomain && !r.Authoritative {
				t.Error("NXDOMAIN must be authoritative")
			}
		})
	}
}

// TestUnparseablePacket covers the pre-parse paths: garbage gets a
// header-only FORMERR, a stub too short to echo gets nothing, and an
// inbound response message is dropped.
func TestUnparseablePacket(t *testing.T) {
	s := testServer(t)
	resp := s.HandlePacket([]byte{0xAB, 0xCD, 0x01, 0x00, 0xFF}, testSrc, false)
	if len(resp) != 12 {
		t.Fatalf("FORMERR reply length = %d, want 12", len(resp))
	}
	r, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.RCode != dnswire.RCodeFormErr || !r.Response || r.ID != 0xABCD {
		t.Errorf("reply = %+v", r)
	}
	if got := s.HandlePacket([]byte{0xAB}, testSrc, false); got != nil {
		t.Errorf("sub-header frame got a %d-byte reply", len(got))
	}
	pong, err := q(locatedName, dnswire.TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}
	pong[2] |= 0x80 // QR: make it a response
	if got := s.HandlePacket(pong, testSrc, false); got != nil {
		t.Error("inbound response message must be dropped, not answered")
	}
}

// TestAnswers checks each record type against the index the handler
// serves from, so the DNS answers can never drift from Lookup.
func TestAnswers(t *testing.T) {
	s := testServer(t)
	g, ok := testIndex(t).Lookup(locatedName)
	if !ok {
		t.Fatal("fixture hostname does not locate")
	}

	r := ask(t, s, q(locatedName, dnswire.TypeTXT))
	if len(r.Answers) != 1 {
		t.Fatalf("TXT answers = %d, want 1", len(r.Answers))
	}
	txt, ok := r.Answers[0].Data.(dnswire.TXT)
	if !ok {
		t.Fatalf("answer is %T, want TXT", r.Answers[0].Data)
	}
	if want := geoloc.AnswerStrings(g); !reflect.DeepEqual([]string(txt), want) {
		t.Errorf("TXT = %v, want %v", txt, want)
	}
	if r.Answers[0].Name != locatedName || r.Answers[0].TTL != 300 {
		t.Errorf("answer RR = %+v", r.Answers[0])
	}

	r = ask(t, s, q(locatedName, dnswire.TypePTR))
	ptr, ok := r.Answers[0].Data.(dnswire.PTR)
	if !ok || string(ptr) != geoloc.PTRTarget(g) {
		t.Errorf("PTR = %v, want %q", r.Answers[0].Data, geoloc.PTRTarget(g))
	}

	r = ask(t, s, q(locatedName, dnswire.TypeLOC))
	loc, ok := r.Answers[0].Data.(dnswire.LOC)
	if !ok {
		t.Fatalf("answer is %T, want LOC", r.Answers[0].Data)
	}
	lat, long := loc.LatLong()
	if dLat, dLong := lat-g.Loc.Pos.Lat, long-g.Loc.Pos.Long; dLat > 1e-6 || dLat < -1e-6 || dLong > 1e-6 || dLong < -1e-6 {
		t.Errorf("LOC = (%v, %v), want (%v, %v)", lat, long, g.Loc.Pos.Lat, g.Loc.Pos.Long)
	}

	r = ask(t, s, q(locatedName, dnswire.TypeANY))
	if len(r.Answers) != 3 {
		t.Errorf("ANY answers = %d, want 3 (TXT, PTR, LOC)", len(r.Answers))
	}

	// A located name asked a type geodns does not serve: NODATA, the
	// authoritative empty NOERROR.
	r = ask(t, s, q(locatedName, dnswire.TypeA))
	if r.RCode != dnswire.RCodeNoError || len(r.Answers) != 0 || !r.Authoritative {
		t.Errorf("NODATA response = %+v", r)
	}
}

// TestMalformedCorpusNoPanic replays the dnswire golden corpus — every
// hand-corrupted frame included — through the full handler. The
// assertion is the absence of a panic plus a well-formed verdict:
// either silence or a frame that decodes.
func TestMalformedCorpusNoPanic(t *testing.T) {
	s := testServer(t)
	files, err := filepath.Glob(filepath.Join("..", "dnswire", "testdata", "frames", "*.hex"))
	if err != nil || len(files) == 0 {
		t.Fatalf("golden corpus not found: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".hex")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, line := range strings.Split(string(raw), "\n") {
				if i := strings.IndexByte(line, '#'); i >= 0 {
					line = line[:i]
				}
				sb.WriteString(strings.Join(strings.Fields(line), ""))
			}
			pkt, err := hex.DecodeString(sb.String())
			if err != nil {
				t.Fatal(err)
			}
			resp := s.HandlePacket(pkt, testSrc, false)
			if resp == nil {
				return // dropped: fine for sub-header or response frames
			}
			if _, err := dnswire.Unpack(resp); err != nil {
				t.Errorf("handler emitted an undecodable reply: %v", err)
			}
		})
	}
}

// TestUDPTruncation drives a response past a tiny negotiated payload
// size and checks the TC contract: the reply fits, TC is set, and the
// same query over TCP returns the full answer set.
func TestUDPTruncation(t *testing.T) {
	s := testServer(t)
	m := q(locatedName, dnswire.TypeANY)
	m.EDNS.UDPSize = 80 // below the 512 floor; the floor must win
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp := s.HandlePacket(pkt, testSrc, false)
	if len(resp) > 512 {
		t.Errorf("UDP reply = %d bytes, above the 512-byte floor", len(resp))
	}

	// Over TCP the same query is not size-limited.
	tcpResp := s.HandlePacket(pkt, testSrc, true)
	r, err := dnswire.Unpack(tcpResp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated || len(r.Answers) != 3 {
		t.Errorf("TCP reply truncated=%v answers=%d, want full 3", r.Truncated, len(r.Answers))
	}
}

// TestServeUDPAndTCPByteIdentical runs the real serve loops on
// loopback and asserts the two transports return byte-identical
// frames for the same query.
func TestServeUDPAndTCPByteIdentical(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())

	uconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 2)
	go func() { _ = s.ServeUDP(ctx, uconn); done <- struct{}{} }()
	go func() { _ = s.ServeTCP(ctx, ln); done <- struct{}{} }()
	defer func() {
		cancel()
		<-done
		<-done
		if err := uconn.Close(); err != nil {
			t.Error(err)
		}
		if err := ln.Close(); err != nil {
			t.Error(err)
		}
	}()

	pkt, err := q(locatedName, dnswire.TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}

	udpResp := exchangeUDP(t, uconn.LocalAddr().String(), pkt)
	tcpResp := exchangeTCP(t, ln.Addr().String(), pkt)
	if !bytes.Equal(udpResp, tcpResp) {
		t.Errorf("transports disagree:\n udp %x\n tcp %x", udpResp, tcpResp)
	}
	r, err := dnswire.Unpack(udpResp)
	if err != nil {
		t.Fatal(err)
	}
	if r.RCode != dnswire.RCodeNoError || len(r.Answers) != 1 {
		t.Errorf("served answer = %+v", r)
	}
}

func exchangeUDP(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	c, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func exchangeTCP(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var lenbuf [2]byte
	binary.BigEndian.PutUint16(lenbuf[:], uint16(len(pkt)))
	if _, err := c.Write(append(lenbuf[:], pkt...)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, lenbuf[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint16(lenbuf[:]))
	if _, err := io.ReadFull(c, resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStats checks the counter plumbing end to end: handled queries
// show up in Stats by outcome.
func TestStats(t *testing.T) {
	s := testServer(t)
	ask(t, s, q(locatedName, dnswire.TypeTXT))
	ask(t, s, q(unlocatedName, dnswire.TypeTXT))
	got := s.Stats()
	if got["queries"] != 2 || got["noerror"] != 1 || got["nxdomain"] != 1 {
		t.Errorf("Stats = %v", got)
	}
}
