package buildinfo

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestRead: the go version always comes from the runtime; the commit
// never renders empty (it is "unknown" outside a VCS build — the test
// binary's own case).
func TestRead(t *testing.T) {
	info := Read()
	if info.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.Commit == "" {
		t.Error("Commit is empty, want a revision or \"unknown\"")
	}
}

// TestPrint pins the -version line shape shared by every binary.
func TestPrint(t *testing.T) {
	var buf bytes.Buffer
	Print(&buf, "geoserve")
	out := buf.String()
	if !strings.HasPrefix(out, "geoserve version commit ") {
		t.Errorf("Print = %q", out)
	}
	if !strings.Contains(out, runtime.Version()) {
		t.Errorf("Print omits go version: %q", out)
	}
	if !strings.HasSuffix(out, ")\n") {
		t.Errorf("Print not newline-terminated: %q", out)
	}
}
