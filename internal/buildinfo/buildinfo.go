// Package buildinfo reads the binary's own build provenance — VCS
// commit, dirty flag, go toolchain version — from the metadata the go
// tool already embeds (debug.ReadBuildInfo). Every cmd/ binary prints
// it under -version, and the daemons stamp it into /healthz so an
// operator can tell which build answered without shelling into the
// host. No build-time ldflags are involved: the zero-configuration
// path works for `go build`, `go run`, and `go test` alike.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the provenance snapshot of the running binary.
type Info struct {
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"go_version"`
	// Commit is the VCS revision, or "unknown" when the binary was built
	// outside a checkout (or with -buildvcs=false).
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Module is the main module path ("hoiho").
	Module string `json:"module,omitempty"`
}

// Read assembles the Info for the current binary. It never fails: when
// build metadata is unavailable the commit reads "unknown" and the go
// version still comes from the runtime.
func Read() Info {
	info := Info{GoVersion: runtime.Version(), Commit: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Commit = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// Print writes the one-line -version output every cmd/ binary shares:
//
//	hoiho version commit 3a33fd0... (go1.22.0)
func Print(w io.Writer, binary string) {
	info := Read()
	commit := info.Commit
	if info.Dirty {
		commit += "+dirty"
	}
	fmt.Fprintf(w, "%s version commit %s (%s)\n", binary, commit, info.GoVersion)
}
