package webgen

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/rex"
)

func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	re, err := rex.ParsePattern(geodict.HintIATA,
		`^.+\.([a-z]{3})\d+\.he\.net$`, []rex.Role{rex.RoleHint})
	if err != nil {
		t.Fatal(err)
	}
	nc := &core.NamingConvention{
		Suffix:  "he.net",
		Regexes: []*rex.Regex{re},
		Class:   core.Good,
		Tally:   core.Tally{TP: 12, FP: 1, UniqueHints: 5},
		Learned: []*core.LearnedHint{{
			Suffix: "he.net", Hint: "ash", Type: geodict.HintIATA,
			Loc: &geodict.Location{City: "ashburn", Region: "va", Country: "us",
				Pos: geo.LatLong{Lat: 39.04, Long: -77.49}},
			TP: 4, Collide: true,
		}},
	}
	poor := &core.NamingConvention{
		Suffix: "messy.net", Class: core.Poor,
		Regexes: []*rex.Regex{re},
		Tally:   core.Tally{TP: 2, FP: 3, UniqueHints: 2},
	}
	return &core.Result{NCs: map[string]*core.NamingConvention{
		"he.net": nc, "messy.net": poor,
	}}
}

func TestNewSiteOrdering(t *testing.T) {
	s := NewSite("test", sampleResult(t))
	if len(s.NCs) != 2 {
		t.Fatalf("NCs = %d", len(s.NCs))
	}
	if s.NCs[0].Suffix != "he.net" {
		t.Errorf("good NC should sort first, got %s", s.NCs[0].Suffix)
	}
}

func TestWriteIndex(t *testing.T) {
	s := NewSite("Hoiho conventions", sampleResult(t))
	var buf bytes.Buffer
	if err := s.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"Hoiho conventions", "he.net", "messy.net", "he_net.html",
		`class="good"`, `class="poor"`, "92.3%",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestWriteSuffix(t *testing.T) {
	s := NewSite("t", sampleResult(t))
	var buf bytes.Buffer
	if err := s.WriteSuffix(&buf, s.NCs[0]); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"he.net",
		// Regex rendered HTML-escaped inside <code>.
		"([a-z]{3})",
		"Learned custom geohints",
		"ash", "Ashburn, VA, US", "yes", // collide column
	} {
		if !strings.Contains(html, want) {
			t.Errorf("suffix page missing %q\n%s", want, html)
		}
	}
}

func TestGenerate(t *testing.T) {
	dir := t.TempDir()
	s := NewSite("t", sampleResult(t))
	pages, err := s.Generate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 3 {
		t.Errorf("pages = %d, want 3", pages)
	}
	for _, name := range []string{"index.html", "he_net.html", "messy_net.html"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestPageName(t *testing.T) {
	if got := PageName("ccnw.net.au"); got != "ccnw_net_au.html" {
		t.Errorf("PageName = %s", got)
	}
}
