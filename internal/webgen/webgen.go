// Package webgen renders learned naming conventions as a static website
// — the paper's third artifact: "a public web site of inferred regexes
// and geohints [that] served as a conduit to facilitate ground truth
// validation from operators, who could easily verify or correct our
// inferences" (§8).
//
// The site is self-contained HTML: an index ranking suffixes by
// classification and coverage, and one page per suffix showing its
// regexes, learned custom geohints, and evaluation tallies.
package webgen

import (
	"fmt"
	"html/template"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hoiho/internal/core"
)

// Site prepares a result for rendering.
type Site struct {
	Title string
	NCs   []*core.NamingConvention
}

// NewSite builds a Site from a pipeline result, ordered by
// classification (good first), then by true positives, then by suffix.
// The suffixes are collected in sorted order before ranking so the
// rendered site is byte-identical across runs regardless of NCs map
// iteration order.
func NewSite(title string, res *core.Result) *Site {
	s := &Site{Title: title}
	suffixes := make([]string, 0, len(res.NCs))
	for suffix := range res.NCs {
		suffixes = append(suffixes, suffix)
	}
	sort.Strings(suffixes)
	for _, suffix := range suffixes {
		s.NCs = append(s.NCs, res.NCs[suffix])
	}
	sort.SliceStable(s.NCs, func(i, j int) bool {
		a, b := s.NCs[i], s.NCs[j]
		if a.Class != b.Class {
			return a.Class > b.Class
		}
		if a.Tally.TP != b.Tally.TP {
			return a.Tally.TP > b.Tally.TP
		}
		return a.Suffix < b.Suffix
	})
	return s
}

// PageName returns the file name for a suffix's page.
func PageName(suffix string) string {
	return strings.ReplaceAll(suffix, ".", "_") + ".html"
}

var funcs = template.FuncMap{
	"page": PageName,
	"pct":  func(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) },
}

var indexTmpl = template.Must(template.New("index").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
.good { background: #e6f4e6; } .promising { background: #fdf6e3; } .poor { background: #fbeaea; }
code { background: #f4f4f4; padding: 1px 4px; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{len .NCs}} suffixes with learned naming conventions.</p>
<table>
<tr><th>suffix</th><th>class</th><th>TP</th><th>FP</th><th>PPV</th><th>unique hints</th><th>learned hints</th></tr>
{{range .NCs}}<tr class="{{.Class}}">
<td><a href="{{page .Suffix}}">{{.Suffix}}</a></td>
<td>{{.Class}}</td><td>{{.Tally.TP}}</td><td>{{.Tally.FP}}</td>
<td>{{pct .Tally.PPV}}</td><td>{{.Tally.UniqueHints}}</td><td>{{len .Learned}}</td>
</tr>{{end}}
</table>
</body></html>
`))

var suffixTmpl = template.Must(template.New("suffix").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Suffix}} — naming convention</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
code { background: #f4f4f4; padding: 1px 4px; }
</style></head><body>
<p><a href="index.html">&larr; all suffixes</a></p>
<h1>{{.Suffix}}</h1>
<p>Classification: <b>{{.Class}}</b> —
TP {{.Tally.TP}}, FP {{.Tally.FP}}, FN {{.Tally.FN}}, UNK {{.Tally.UNK}},
PPV {{pct .Tally.PPV}}, {{.Tally.UniqueHints}} unique geohints.</p>
<h2>Regexes</h2>
<table><tr><th>dictionary</th><th>regex</th></tr>
{{range .Regexes}}<tr><td>{{.Hint}}</td><td><code>{{.String}}</code></td></tr>{{end}}
</table>
{{if .Learned}}<h2>Learned custom geohints</h2>
<p>Codes this operator uses that deviate from the public dictionaries.</p>
<table><tr><th>code</th><th>dictionary</th><th>meaning</th><th>congruent routers</th><th>collides</th></tr>
{{range .Learned}}<tr><td><code>{{.Hint}}</code></td><td>{{.Type}}</td>
<td>{{.Loc.String}} ({{.Loc.Pos.String}})</td><td>{{.TP}}</td>
<td>{{if .Collide}}yes{{else}}no{{end}}</td></tr>{{end}}
</table>{{end}}
</body></html>
`))

// WriteIndex renders the index page.
func (s *Site) WriteIndex(w io.Writer) error {
	return indexTmpl.Execute(w, s)
}

// WriteSuffix renders one suffix page.
func (s *Site) WriteSuffix(w io.Writer, nc *core.NamingConvention) error {
	return suffixTmpl.Execute(w, nc)
}

// Generate writes the complete site into dir, creating it if needed.
// It returns the number of pages written (index included).
func (s *Site) Generate(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	pages := 0
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		pages++
		return f.Close()
	}
	if err := write("index.html", s.WriteIndex); err != nil {
		return pages, err
	}
	for _, nc := range s.NCs {
		nc := nc
		if err := write(PageName(nc.Suffix), func(w io.Writer) error {
			return s.WriteSuffix(w, nc)
		}); err != nil {
			return pages, err
		}
	}
	return pages, nil
}
