// Package names implements the original Hoiho capability the geolocation
// paper builds on (§3.4; Luckie et al., IMC 2019): learning per-suffix
// regexes that extract the *router name* — the hostname substring shared
// by all interfaces of one alias-resolved router, distinct across
// routers ("xe-0-0-ash1-bcr1.bb.example.com" and
// "xe-0-1-ash1-bcr1.bb.example.com" share the router name "ash1-bcr1").
//
// Training uses the alias-resolution signal already present in an ITDK
// corpus: interfaces grouped onto routers. A candidate regex scores a
// true positive when every hostname of a multi-hostname router extracts
// the same name, a collision when two different routers extract the
// same name, and a miss when it fails to cover a multi-hostname
// router's hostnames. Candidates are ranked by the same
// absolute-true-positive metric the geolocation pipeline uses.
package names

import (
	"regexp"
	"sort"
	"strings"

	"hoiho/internal/itdk"
	"hoiho/internal/psl"
)

// Convention is a learned router-name convention for a suffix.
type Convention struct {
	Suffix  string
	Pattern string
	re      *regexp.Regexp

	// Routers is the number of multi-hostname routers whose hostnames
	// all extracted the same name.
	Routers int
	// Collisions counts extra routers sharing an already-claimed name.
	Collisions int
	// Missed is the number of multi-hostname routers the regex did not
	// consistently cover.
	Missed int
}

// ATP is the convention's absolute-true-positive score.
func (c *Convention) ATP() int { return c.Routers - c.Collisions - c.Missed }

// ExtractName applies the convention to a hostname. The compiled regex
// is the suffix-stripped template, so the hostname's suffix is cut
// first; a hostname outside the suffix never matches, exactly as the
// full pattern (which ends in the literal suffix) would fail.
func (c *Convention) ExtractName(host string) (string, bool) {
	u, ok := strings.CutSuffix(strings.ToLower(host), c.Suffix)
	if !ok {
		return "", false
	}
	m := c.re.FindStringSubmatch(u)
	if m == nil || m[1] == "" {
		return "", false
	}
	return m[1], true
}

// SameRouter reports whether two hostnames extract the same router name
// under the convention — the alias signal downstream tools consume.
func (c *Convention) SameRouter(hostA, hostB string) bool {
	a, okA := c.ExtractName(hostA)
	b, okB := c.ExtractName(hostB)
	return okA && okB && a == b
}

// Learn infers router-name conventions for every suffix in the corpus
// with at least minRouters multi-hostname routers, sorted by suffix.
func Learn(corpus *itdk.Corpus, list *psl.List, minRouters int) []*Convention {
	if minRouters < 2 {
		minRouters = 2
	}
	var out []*Convention
	for _, group := range corpus.GroupBySuffix(list) {
		if c := learnSuffix(group, minRouters); c != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suffix < out[j].Suffix })
	return out
}

// template pairs a candidate pattern shape with its compiled form.
// Every shape ends in the literal `<sfx>$`, so matching decomposes
// exactly: the full pattern matches a hostname iff the hostname ends
// with the suffix and the suffix-stripped pattern matches the rest,
// with identical submatches. That lets the regexes compile once at
// package init instead of once per suffix per Learn call.
type template struct {
	pattern string         // published shape, with the <sfx> placeholder
	re      *regexp.Regexp // compiled with <sfx> removed
}

// candidateTemplates is the template family evaluated per suffix; <sfx>
// is the escaped suffix. The shapes cover the conventions the IMC 2019
// paper reports: the name as the trailing label(s) before the suffix,
// everything after an interface label, and dash-embedded names.
var candidateTemplates = []template{
	// name = last label ("ae1.cr1-lhr1.example.net" -> "cr1-lhr1")
	{`^.+\.([^\.]+)\.<sfx>$`, regexp.MustCompile(`^.+\.([^\.]+)\.$`)},
	// name = last two labels ("ae1.cr1.lhr1.example.net" -> "cr1.lhr1")
	{`^.+\.([^\.]+\.[^\.]+)\.<sfx>$`, regexp.MustCompile(`^.+\.([^\.]+\.[^\.]+)\.$`)},
	// name = everything after the interface label
	{`^[^\.]+\.(.+)\.<sfx>$`, regexp.MustCompile(`^[^\.]+\.(.+)\.$`)},
	// name = trailing two dash components of the first label
	// ("xe-0-0-ash1-bcr1.bb.example.com" -> "ash1-bcr1")
	{`^[^\.]+?-([a-z\d]+-[a-z\d]+)\.(?:[^\.]+\.)?<sfx>$`, regexp.MustCompile(`^[^\.]+?-([a-z\d]+-[a-z\d]+)\.(?:[^\.]+\.)?$`)},
	// name = second label, with a constant tail label
	// ("ae1.cr1-lhr.bb.example.net" -> "cr1-lhr")
	{`^[^\.]+\.([^\.]+)\.[^\.]+\.<sfx>$`, regexp.MustCompile(`^[^\.]+\.([^\.]+)\.[^\.]+\.$`)},
}

func learnSuffix(group *itdk.SuffixGroup, minRouters int) *Convention {
	byRouter := make(map[string][]string)
	for _, rh := range group.Hosts {
		byRouter[rh.Router.ID] = append(byRouter[rh.Router.ID], strings.ToLower(rh.Hostname))
	}
	multi := 0
	for _, hs := range byRouter {
		if len(hs) >= 2 {
			multi++
		}
	}
	if multi < minRouters {
		return nil
	}

	sfx := regexp.QuoteMeta(group.Suffix)
	var best *Convention
	for _, tmpl := range candidateTemplates {
		pattern := strings.ReplaceAll(tmpl.pattern, "<sfx>", sfx)
		c := evaluate(group.Suffix, pattern, tmpl.re, byRouter)
		if best == nil || c.ATP() > best.ATP() {
			best = c
		}
	}
	if best == nil || best.Routers < minRouters || best.ATP() <= 0 {
		return nil
	}
	return best
}

// evaluate scores a candidate over a suffix's routers.
func evaluate(suffix, pattern string, re *regexp.Regexp, byRouter map[string][]string) *Convention {
	c := &Convention{Suffix: suffix, Pattern: pattern, re: re}
	nameOwners := make(map[string]int) // extracted name -> routers claiming it
	var order []string
	for rid := range byRouter {
		order = append(order, rid)
	}
	sort.Strings(order)
	for _, rid := range order {
		hs := byRouter[rid]
		if len(hs) < 2 {
			continue
		}
		name := ""
		consistent := true
		for _, h := range hs {
			n, ok := c.ExtractName(h)
			if !ok {
				consistent = false
				break
			}
			if name == "" {
				name = n
			} else if name != n {
				consistent = false
				break
			}
		}
		if !consistent {
			c.Missed++
			continue
		}
		c.Routers++
		nameOwners[name]++
	}
	for _, owners := range nameOwners {
		if owners > 1 {
			c.Collisions += owners - 1
		}
	}
	return c
}
