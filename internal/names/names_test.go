package names

import (
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/itdk"
	"hoiho/internal/psl"
)

// buildCorpus creates routers whose interfaces share a router name.
func buildCorpus(t *testing.T, style string) *itdk.Corpus {
	t.Helper()
	c := itdk.NewCorpus("names", false)
	ip := 0
	addRouter := func(id string, hostnames ...string) {
		r := &itdk.Router{ID: id}
		for _, hn := range hostnames {
			ip++
			r.Interfaces = append(r.Interfaces, itdk.Interface{
				Addr:     netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", ip)),
				Hostname: hn,
			})
		}
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	switch style {
	case "label":
		// Router name is the label before the suffix.
		for i, name := range []string{"cr1-lhr1", "cr2-lhr1", "br1-fra2", "gw3-ams1"} {
			addRouter(fmt.Sprintf("N%d", i),
				fmt.Sprintf("ae-1.%s.example.net", name),
				fmt.Sprintf("ae-2.%s.example.net", name),
				fmt.Sprintf("xe-0-1-0.%s.example.net", name),
			)
		}
	case "dash":
		// ebay-style: name embedded in the first label after the ifc.
		for i, name := range []string{"ash1-bcr1", "ash1-bcr2", "lvs1-bcr2", "fra4-ccr1"} {
			addRouter(fmt.Sprintf("N%d", i),
				fmt.Sprintf("xe-0-0-%s.bb.ebay.com", name),
				fmt.Sprintf("xe-0-1-%s.bb.ebay.com", name),
			)
		}
	case "twolabel":
		// Name spans two labels: device.pop.
		for i, pair := range [][2]string{{"cr1", "lhr1"}, {"cr2", "lhr1"}, {"cr1", "fra2"}, {"gw1", "ams3"}} {
			addRouter(fmt.Sprintf("N%d", i),
				fmt.Sprintf("ae-1.%s.%s.example.net", pair[0], pair[1]),
				fmt.Sprintf("ae-2.%s.%s.example.net", pair[0], pair[1]),
			)
		}
	}
	return c
}

func TestLearnLabelStyle(t *testing.T) {
	c := buildCorpus(t, "label")
	convs := Learn(c, psl.MustDefault(), 2)
	if len(convs) != 1 {
		t.Fatalf("conventions = %d, want 1", len(convs))
	}
	conv := convs[0]
	if conv.Suffix != "example.net" {
		t.Errorf("suffix = %s", conv.Suffix)
	}
	if conv.Routers != 4 || conv.Collisions != 0 || conv.Missed != 0 {
		t.Errorf("scores = %+v", conv)
	}
	name, ok := conv.ExtractName("ge-9.cr1-lhr1.example.net")
	if !ok || name != "cr1-lhr1" {
		t.Errorf("ExtractName = %q, %v", name, ok)
	}
	if !conv.SameRouter("ae-1.cr1-lhr1.example.net", "ae-9.cr1-lhr1.example.net") {
		t.Error("interfaces of the same router should match")
	}
	if conv.SameRouter("ae-1.cr1-lhr1.example.net", "ae-1.cr2-lhr1.example.net") {
		t.Error("different routers should not match")
	}
}

func TestLearnDashStyle(t *testing.T) {
	c := buildCorpus(t, "dash")
	convs := Learn(c, psl.MustDefault(), 2)
	if len(convs) != 1 {
		t.Fatalf("conventions = %d, want 1", len(convs))
	}
	conv := convs[0]
	if conv.Routers != 4 || conv.ATP() != 4 {
		t.Errorf("scores = %+v", conv)
	}
	name, ok := conv.ExtractName("xe-1-2-ash1-bcr1.bb.ebay.com")
	if !ok || name != "ash1-bcr1" {
		t.Errorf("ExtractName = %q, %v (pattern %s)", name, ok, conv.Pattern)
	}
}

func TestLearnTwoLabelStyle(t *testing.T) {
	c := buildCorpus(t, "twolabel")
	convs := Learn(c, psl.MustDefault(), 2)
	if len(convs) != 1 {
		t.Fatalf("conventions = %d, want 1", len(convs))
	}
	conv := convs[0]
	// The single-label pattern collides (cr1.lhr1 vs cr1.fra2 both
	// extract differently... cr1 repeated across pops would collide);
	// the two-label pattern separates all four routers.
	if conv.Collisions != 0 || conv.Routers != 4 {
		t.Errorf("scores = %+v (pattern %s)", conv, conv.Pattern)
	}
	name, _ := conv.ExtractName("ae-1.cr1.lhr1.example.net")
	if name != "cr1.lhr1" {
		t.Errorf("name = %q (pattern %s)", name, conv.Pattern)
	}
}

func TestLearnRequiresMultiHostnameRouters(t *testing.T) {
	c := itdk.NewCorpus("sparse", false)
	r := &itdk.Router{ID: "N1", Interfaces: []itdk.Interface{{
		Addr: netip.MustParseAddr("192.0.2.1"), Hostname: "a.cr1.example.net"}}}
	_ = c.Add(r)
	if convs := Learn(c, psl.MustDefault(), 2); len(convs) != 0 {
		t.Errorf("single-hostname corpus should learn nothing: %+v", convs)
	}
}

func TestLearnRejectsInconsistentNaming(t *testing.T) {
	// Hostnames of one router share nothing: no convention should
	// survive (every candidate misses or collides).
	c := itdk.NewCorpus("mess", false)
	ip := 0
	for i := 0; i < 4; i++ {
		r := &itdk.Router{ID: fmt.Sprintf("N%d", i)}
		for j := 0; j < 2; j++ {
			ip++
			r.Interfaces = append(r.Interfaces, itdk.Interface{
				Addr:     netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", ip)),
				Hostname: fmt.Sprintf("host%d.example.net", ip),
			})
		}
		_ = c.Add(r)
	}
	if convs := Learn(c, psl.MustDefault(), 2); len(convs) != 0 {
		t.Errorf("inconsistent corpus should learn nothing, got %+v", convs)
	}
}

func TestExtractNameNoMatch(t *testing.T) {
	c := buildCorpus(t, "label")
	conv := Learn(c, psl.MustDefault(), 2)[0]
	if _, ok := conv.ExtractName("unrelated.example.org"); ok {
		t.Error("foreign hostname should not extract")
	}
}
