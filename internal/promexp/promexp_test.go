package promexp

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriterRendering pins the exact bytes of each primitive: the
// HELP/TYPE pair, unlabeled and labeled samples, and value formatting.
func TestWriterRendering(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Counter("t_requests_total", "Requests received.", 5)
	w.Gauge("t_generation", "Serving generation.", 3)
	w.Family("t_matches_total", "Matches per suffix.", "counter")
	w.Sample("t_matches_total", Labels("suffix", "he.net"), 2)
	w.Sample("t_matches_total", Labels("suffix", `we"ird\net`+"\n"), 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP t_requests_total Requests received.",
		"# TYPE t_requests_total counter",
		"t_requests_total 5",
		"# HELP t_generation Serving generation.",
		"# TYPE t_generation gauge",
		"t_generation 3",
		"# HELP t_matches_total Matches per suffix.",
		"# TYPE t_matches_total counter",
		`t_matches_total{suffix="he.net"} 2`,
		`t_matches_total{suffix="we\"ird\\net\n"} 1`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("rendering:\n got: %q\nwant: %q", got, want)
	}
	if err := Conform(buf.Bytes()); err != nil {
		t.Errorf("Conform rejects Writer output: %v", err)
	}
}

// TestHistogram: per-band counts in, cumulative monotone series out,
// with _count equal to the +Inf bucket.
func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Histogram("t_latency_seconds", "Latency.", []float64{0.001, 0.01}, []int64{3, 2, 1}, 0.042)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP t_latency_seconds Latency.",
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{le="0.001"} 3`,
		`t_latency_seconds_bucket{le="0.01"} 5`,
		`t_latency_seconds_bucket{le="+Inf"} 6`,
		"t_latency_seconds_sum 0.042",
		"t_latency_seconds_count 6",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("histogram:\n got: %q\nwant: %q", got, want)
	}
	if err := Conform(buf.Bytes()); err != nil {
		t.Errorf("Conform rejects histogram: %v", err)
	}
}

// TestHistogramShapePanics: a count slice that does not cover every
// band is a programming error, caught loudly.
func TestHistogramShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched counts did not panic")
		}
	}()
	NewWriter(&bytes.Buffer{}).Histogram("t_h", "h", []float64{1}, []int64{1}, 0)
}

// TestLabelsPanicsOnOddArgs: static call-site shapes only.
func TestLabelsPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd Labels arity did not panic")
		}
	}()
	Labels("route")
}

// TestRegistryServeHTTP: collectors render in registration order with
// the exposition content type.
func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Register(
		func(w *Writer) { w.Counter("t_first_total", "First.", 1) },
		func(w *Writer) { w.Counter("t_second_total", "Second.", 2) },
	)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	body := rec.Body.String()
	if first, second := strings.Index(body, "t_first_total"), strings.Index(body, "t_second_total"); first < 0 || second < 0 || second < first {
		t.Errorf("collectors out of registration order:\n%s", body)
	}
	if err := Conform(rec.Body.Bytes()); err != nil {
		t.Errorf("Conform rejects registry output: %v", err)
	}
}

// TestConformRejects tables the malformation classes the checker must
// catch — each one a way a future hand-rolled emitter could drift.
func TestConformRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"sample without type", "t_x 1\n", "no TYPE"},
		{"type before help", "# TYPE t_x counter\nt_x 1\n", "before its HELP"},
		{"blank line", "# HELP t_x x\n# TYPE t_x counter\n\nt_x 1\n", "blank line"},
		{"unknown type", "# HELP t_x x\n# TYPE t_x summary\nt_x 1\n", "unknown type"},
		{"duplicate type", "# HELP t_x x\n# TYPE t_x counter\n# TYPE t_x counter\nt_x 1\n", "duplicate TYPE"},
		{"malformed sample", "# HELP t_x x\n# TYPE t_x counter\nt_x{bad 1\n", "malformed sample"},
		{
			"descending le",
			"# HELP t_h h\n# TYPE t_h histogram\n" +
				`t_h_bucket{le="0.01"} 1` + "\n" + `t_h_bucket{le="0.001"} 2` + "\n" +
				`t_h_bucket{le="+Inf"} 3` + "\nt_h_sum 0\nt_h_count 3\n",
			"not ascending",
		},
		{
			"non-monotone buckets",
			"# HELP t_h h\n# TYPE t_h histogram\n" +
				`t_h_bucket{le="0.001"} 5` + "\n" + `t_h_bucket{le="+Inf"} 3` + "\nt_h_sum 0\nt_h_count 3\n",
			"counts decrease",
		},
		{
			"missing +Inf",
			"# HELP t_h h\n# TYPE t_h histogram\n" +
				`t_h_bucket{le="0.001"} 1` + "\n" + `t_h_bucket{le="0.01"} 2` + "\nt_h_sum 0\nt_h_count 2\n",
			"does not end at +Inf",
		},
		{
			"count disagrees",
			"# HELP t_h h\n# TYPE t_h histogram\n" +
				`t_h_bucket{le="0.001"} 1` + "\n" + `t_h_bucket{le="+Inf"} 2` + "\nt_h_sum 0\nt_h_count 7\n",
			"_count 7",
		},
	}
	for _, tc := range cases {
		err := Conform([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestConformAcceptsEmpty: a daemon with nothing registered serves an
// empty (but valid) document.
func TestConformAcceptsEmpty(t *testing.T) {
	if err := Conform(nil); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}
