package promexp

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// sampleLine matches one exposition sample: metric name, optional
// well-formed label set, and a float value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
		`(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"` + // first label
		`(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*")*\})?` + // more labels
		` ([0-9.eE+-]+|\+Inf|NaN)$`)

// leLabelPat extracts the le label value from a bucket sample line.
var leLabelPat = regexp.MustCompile(`le="([^"]*)"`)

// Conform validates an exposition document against the invariants this
// package promises: every sample's family is announced by HELP then
// TYPE (each exactly once), sample lines and label escaping parse,
// histogram bucket series ascend to +Inf with monotone cumulative
// counts, and each histogram's _count equals its +Inf bucket. It is
// the single format gate both geoserve's and geodns' endpoint tests
// run, so the daemons cannot drift into different dialects.
func Conform(body []byte) error {
	helped := map[string]bool{}
	typed := map[string]string{}
	type bucket struct {
		le  float64
		val float64
	}
	buckets := map[string][]bucket{} // histogram family -> ordered buckets
	counts := map[string]float64{}   // histogram family -> _count value

	trimmed := strings.TrimRight(string(body), "\n")
	if trimmed == "" {
		return nil // nothing exposed is trivially conformant
	}
	for ln, line := range strings.Split(trimmed, "\n") {
		if line == "" {
			return fmt.Errorf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				return fmt.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return fmt.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			if !helped[name] {
				return fmt.Errorf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", ln+1, line)
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		typ, ok := typed[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE", ln+1, name)
		}
		val, err := strconv.ParseFloat(m[2], 64)
		if err != nil && m[2] != "+Inf" {
			return fmt.Errorf("line %d: bad value %q", ln+1, m[2])
		}
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			lm := leLabelPat.FindStringSubmatch(line)
			if lm == nil {
				return fmt.Errorf("line %d: bucket sample without le label: %q", ln+1, line)
			}
			le := math.Inf(1)
			if lm[1] != "+Inf" {
				if le, err = strconv.ParseFloat(lm[1], 64); err != nil {
					return fmt.Errorf("line %d: bad le %q", ln+1, lm[1])
				}
			}
			buckets[family] = append(buckets[family], bucket{le, val})
		}
		if typ == "histogram" && strings.HasSuffix(name, "_count") {
			counts[family] = val
		}
	}

	for _, family := range SortedKeys(buckets) {
		bs := buckets[family]
		if len(bs) < 2 {
			return fmt.Errorf("%s: only %d buckets", family, len(bs))
		}
		if !math.IsInf(bs[len(bs)-1].le, 1) {
			return fmt.Errorf("%s: bucket series does not end at +Inf", family)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				return fmt.Errorf("%s: le bounds not ascending: %v then %v", family, bs[i-1].le, bs[i].le)
			}
			if bs[i].val < bs[i-1].val {
				return fmt.Errorf("%s: cumulative counts decrease: %v then %v", family, bs[i-1].val, bs[i].val)
			}
		}
		if got := counts[family]; got != bs[len(bs)-1].val {
			return fmt.Errorf("%s: _count %v != +Inf bucket %v", family, got, bs[len(bs)-1].val)
		}
	}
	return nil
}
