// Package promexp is the shared Prometheus text-exposition layer
// behind every daemon's /metrics/prom endpoint. It grew out of the
// hand-rolled renderer in cmd/geoserve and exists so geoserve and
// geodns (and any future front end) emit the same dialect with the
// same invariants, checked by one conformance test (Conform).
//
// The package renders exposition format version 0.0.4: `# HELP` and
// `# TYPE` headers announcing each family before its samples, escaped
// label values, and cumulative `le`-bucketed histogram series that
// ascend to +Inf with _sum and _count rows. It deliberately implements
// nothing else — no client_golang-style instrument registry with
// lifecycle and gather locking, just a Writer that makes the format
// hard to emit wrong and a Registry that turns collector functions
// into an http.Handler.
//
// Invariants the layer guarantees (and Conform enforces):
//
//   - Every sample belongs to a family whose HELP and TYPE lines were
//     written first, HELP before TYPE, each exactly once.
//   - Histogram bucket series have strictly ascending le bounds, end
//     at +Inf, carry monotonically non-decreasing cumulative counts,
//     and agree with the family's _count row.
//   - Label values are escaped (backslash, double quote, newline) so
//     arbitrary suffix strings cannot corrupt the exposition.
package promexp

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the exposition content type all handlers serve.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label [2]string

// Labels builds a label list from alternating name, value arguments —
// Labels("route", "/v1/geolocate", "class", "2xx"). It panics on an
// odd argument count: label shapes are static at every call site, so
// an imbalance is a programming error, not input.
func Labels(nv ...string) []Label {
	if len(nv)%2 != 0 {
		panic("promexp: Labels takes name/value pairs")
	}
	ls := make([]Label, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		ls = append(ls, Label{nv[i], nv[i+1]})
	}
	return ls
}

// Writer emits exposition-format lines. Build one with NewWriter; the
// caller must Flush when done (an http handler should funnel the Flush
// error into its own accounting — the scraper may hang up mid-body).
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w for exposition output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Family writes the HELP/TYPE header announcing a metric family. typ
// must be one of "counter", "gauge", or "histogram".
func (p *Writer) Family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line with optional labels.
func (p *Writer) Sample(name string, lbls []Label, value float64) {
	p.w.WriteString(name)
	if len(lbls) > 0 {
		p.w.WriteByte('{')
		for i, l := range lbls {
			if i > 0 {
				p.w.WriteByte(',')
			}
			fmt.Fprintf(p.w, `%s="%s"`, l[0], EscapeLabel(l[1]))
		}
		p.w.WriteByte('}')
	}
	fmt.Fprintf(p.w, " %s\n", strconv.FormatFloat(value, 'g', -1, 64))
}

// Counter writes a complete single-sample counter family: header plus
// one unlabeled sample. The common shape of daemon totals.
func (p *Writer) Counter(name, help string, value float64) {
	p.Family(name, help, "counter")
	p.Sample(name, nil, value)
}

// Gauge writes a complete single-sample gauge family.
func (p *Writer) Gauge(name, help string, value float64) {
	p.Family(name, help, "gauge")
	p.Sample(name, nil, value)
}

// Histogram writes a complete histogram family from per-band (non-
// cumulative) observation counts. bounds are the ascending le upper
// bounds; counts must have len(bounds)+1 entries, the last being the
// overflow band that only feeds the +Inf bucket. sum is the total of
// all observed values in the metric's unit. The cumulative running
// totals, the +Inf bucket, and the _sum/_count rows are derived here
// so a caller cannot emit a non-monotone series.
func (p *Writer) Histogram(name, help string, bounds []float64, counts []int64, sum float64) {
	if len(counts) != len(bounds)+1 {
		panic(fmt.Sprintf("promexp: histogram %s: %d counts for %d bounds (want bounds+1)",
			name, len(counts), len(bounds)))
	}
	p.Family(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		p.Sample(name+"_bucket", Labels("le", le), float64(cum))
	}
	cum += counts[len(bounds)]
	p.Sample(name+"_bucket", Labels("le", "+Inf"), float64(cum))
	p.Sample(name+"_sum", nil, sum)
	p.Sample(name+"_count", nil, float64(cum))
}

// Flush drains the buffered output, surfacing the first write error.
func (p *Writer) Flush() error {
	return p.w.Flush()
}

// Collector renders one section of an exposition document.
type Collector func(*Writer)

// Registry is an ordered list of collectors rendered per scrape. The
// order is registration order, so a daemon's exposition is stable
// across scrapes (sections never shuffle) without any sorting here.
// Registration happens at daemon construction; rendering may happen
// from any goroutine, so collectors must read only concurrency-safe
// state (atomics, mutex-guarded snapshots) — the same rule the expvar
// handlers already follow.
type Registry struct {
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Register appends collectors to the scrape order.
func (r *Registry) Register(cs ...Collector) {
	r.collectors = append(r.collectors, cs...)
}

// Render writes every collector into w and flushes, returning the
// first write error.
func (r *Registry) Render(w io.Writer) error {
	pw := NewWriter(w)
	for _, c := range r.collectors {
		c(pw)
	}
	return pw.Flush()
}

// ServeHTTP renders the registry as an exposition response.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	// A write error here means the scraper hung up mid-response; there
	// is no one left to report it to.
	//lint:ignore droppederr client gone mid-scrape; a failed exposition write has no one left to tell
	r.Render(w)
}

// EscapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// SortedKeys returns m's keys sorted — the deterministic iteration
// order every labeled-series loop needs.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
