// Package hostname tokenizes router hostnames for geohint analysis.
//
// The Hoiho method (paper §5.2) inspects the portion of a hostname before
// its registrable domain suffix, considering each punctuation-delimited
// string — and each maximal alphabetic run inside those strings — as a
// candidate geohint. For zayo-ntt.mpr1.lhr15.uk.zip.zayo.com with suffix
// zayo.com, the candidates are "zayo", "ntt", "mpr", "lhr", "uk", "zip".
package hostname

import (
	"fmt"
	"strings"
)

// Run is a maximal alphabetic run within a span ("lhr" within "lhr15").
type Run struct {
	Text  string
	Start int // byte offset within the span
}

// Span is a punctuation-delimited string within a hostname label.
// Hyphens and underscores delimit spans; digits do not ("lhr15" is one
// span with a digit tail).
type Span struct {
	Text  string
	Label int   // index of the containing dot-separated label, 0 = leftmost
	Start int   // byte offset within the hostname prefix
	Runs  []Run // maximal alphabetic runs, in order
}

// HasDigit reports whether the span contains a decimal digit.
func (s *Span) HasDigit() bool {
	for i := 0; i < len(s.Text); i++ {
		if isDigit(s.Text[i]) {
			return true
		}
	}
	return false
}

// AllAlpha reports whether the span is purely alphabetic.
func (s *Span) AllAlpha() bool {
	return len(s.Runs) == 1 && len(s.Runs[0].Text) == len(s.Text)
}

// Hostname is a tokenized router hostname.
type Hostname struct {
	Full   string   // complete lower-case hostname
	Suffix string   // registrable domain suffix ("ntt.net")
	Prefix string   // portion before the suffix, without the joining dot
	Labels []string // dot-separated labels of the prefix, left to right
	Spans  []Span   // punctuation-delimited spans across all labels
}

// Parse tokenizes a hostname whose registrable suffix is already known
// (from the public suffix list). It returns an error when the hostname
// does not end with the suffix or when the prefix is empty — a hostname
// equal to its suffix has no geohint-bearing portion.
func Parse(full, suffix string) (*Hostname, error) {
	full = strings.ToLower(strings.TrimSuffix(full, "."))
	suffix = strings.ToLower(strings.Trim(suffix, "."))
	if suffix == "" {
		return nil, fmt.Errorf("hostname: empty suffix for %q", full)
	}
	if full == suffix {
		return nil, fmt.Errorf("hostname: %q has no prefix before suffix", full)
	}
	if !strings.HasSuffix(full, "."+suffix) {
		return nil, fmt.Errorf("hostname: %q does not end in suffix %q", full, suffix)
	}
	prefix := strings.TrimSuffix(full, "."+suffix)
	h := &Hostname{Full: full, Suffix: suffix, Prefix: prefix}
	h.Labels = strings.Split(prefix, ".")

	offset := 0
	for li, label := range h.Labels {
		spans := splitSpans(label)
		for _, sp := range spans {
			sp.Label = li
			sp.Start += offset
			h.Spans = append(h.Spans, sp)
		}
		offset += len(label) + 1 // +1 for the dot
	}
	return h, nil
}

// splitSpans splits a label on hyphens and underscores into spans and
// computes the alphabetic runs within each.
func splitSpans(label string) []Span {
	var spans []Span
	start := 0
	flush := func(end int) {
		if end > start {
			text := label[start:end]
			spans = append(spans, Span{Text: text, Start: start, Runs: alphaRuns(text)})
		}
		start = end + 1
	}
	for i := 0; i < len(label); i++ {
		if label[i] == '-' || label[i] == '_' {
			flush(i)
		}
	}
	flush(len(label))
	return spans
}

// alphaRuns returns the maximal alphabetic runs within s, in order.
func alphaRuns(s string) []Run {
	var runs []Run
	i := 0
	for i < len(s) {
		if isAlpha(s[i]) {
			j := i
			for j < len(s) && isAlpha(s[j]) {
				j++
			}
			runs = append(runs, Run{Text: s[i:j], Start: i})
			i = j
		} else {
			i++
		}
	}
	return runs
}

// AlphaStrings returns every maximal alphabetic run across the hostname's
// spans, in left-to-right order — the candidate geohint strings of §5.2.
func (h *Hostname) AlphaStrings() []string {
	var out []string
	for i := range h.Spans {
		for _, r := range h.Spans[i].Runs {
			out = append(out, r.Text)
		}
	}
	return out
}

// AdjacentRunPairs returns pairs of alphabetic runs that appear in
// consecutive spans (split by punctuation) — used to detect split CLLI
// prefixes like "mtgm"+"al" (paper fig. 6e, Windstream splitting a
// 6-letter CLLI prefix into its 4- and 2-letter components).
func (h *Hostname) AdjacentRunPairs() [][2]string {
	var out [][2]string
	var prev *Run
	prevSpan := -1
	for i := range h.Spans {
		for j := range h.Spans[i].Runs {
			r := &h.Spans[i].Runs[j]
			if prev != nil && prevSpan == i-1 && j == 0 {
				out = append(out, [2]string{prev.Text, r.Text})
			}
			prev, prevSpan = r, i
		}
	}
	return out
}

func isAlpha(b byte) bool { return b >= 'a' && b <= 'z' }
func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// StripDigits returns s with all decimal digits removed.
func StripDigits(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// IsAlnum reports whether s consists solely of lower-case letters and
// digits (the character set of hostname spans).
func IsAlnum(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isAlpha(s[i]) && !isDigit(s[i]) {
			return false
		}
	}
	return true
}
