package hostname

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseZayoExample(t *testing.T) {
	// Paper fig. 6a.
	h, err := Parse("zayo-ntt.mpr1.lhr15.uk.zip.zayo.com", "zayo.com")
	if err != nil {
		t.Fatal(err)
	}
	if h.Prefix != "zayo-ntt.mpr1.lhr15.uk.zip" {
		t.Errorf("Prefix = %q", h.Prefix)
	}
	wantLabels := []string{"zayo-ntt", "mpr1", "lhr15", "uk", "zip"}
	if !reflect.DeepEqual(h.Labels, wantLabels) {
		t.Errorf("Labels = %v", h.Labels)
	}
	want := []string{"zayo", "ntt", "mpr", "lhr", "uk", "zip"}
	if got := h.AlphaStrings(); !reflect.DeepEqual(got, want) {
		t.Errorf("AlphaStrings = %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("ntt.net", "ntt.net"); err == nil {
		t.Error("hostname equal to suffix should error")
	}
	if _, err := Parse("foo.example.com", "ntt.net"); err == nil {
		t.Error("suffix mismatch should error")
	}
	if _, err := Parse("foo.example.com", ""); err == nil {
		t.Error("empty suffix should error")
	}
}

func TestParseCaseAndTrailingDot(t *testing.T) {
	h, err := Parse("Core1.LHR1.Example.COM.", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if h.Full != "core1.lhr1.example.com" {
		t.Errorf("Full = %q", h.Full)
	}
}

func TestSpansWindstreamSplitCLLI(t *testing.T) {
	// Paper fig. 6e: Windstream splits a CLLI prefix across punctuation.
	h, err := Parse("ae2-0.agr2.mtgm-al.windstream.net", "windstream.net")
	if err != nil {
		t.Fatal(err)
	}
	pairs := h.AdjacentRunPairs()
	found := false
	for _, p := range pairs {
		if p[0] == "mtgm" && p[1] == "al" {
			found = true
		}
	}
	if !found {
		t.Errorf("AdjacentRunPairs = %v, want to include [mtgm al]", pairs)
	}
}

func TestSpanOffsets(t *testing.T) {
	h, err := Parse("ab-cd1.ef.example.com", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Spans) != 3 {
		t.Fatalf("Spans = %d, want 3", len(h.Spans))
	}
	// Verify offsets point at the right text within the prefix.
	for _, sp := range h.Spans {
		if got := h.Prefix[sp.Start : sp.Start+len(sp.Text)]; got != sp.Text {
			t.Errorf("span %q offset %d points at %q", sp.Text, sp.Start, got)
		}
	}
	if h.Spans[0].Label != 0 || h.Spans[1].Label != 0 || h.Spans[2].Label != 1 {
		t.Errorf("label indices wrong: %+v", h.Spans)
	}
}

func TestSpanFlags(t *testing.T) {
	h, err := Parse("lhr15.abc.example.com", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Spans[0].HasDigit() {
		t.Error("lhr15 should have a digit")
	}
	if h.Spans[0].AllAlpha() {
		t.Error("lhr15 is not all-alpha")
	}
	if !h.Spans[1].AllAlpha() {
		t.Error("abc should be all-alpha")
	}
}

func TestAlphaRunsInterleaved(t *testing.T) {
	// Facility street addresses interleave digits and letters.
	h, err := Parse("be-33.529bryant.example.com", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	var spans []string
	for _, sp := range h.Spans {
		spans = append(spans, sp.Text)
	}
	if !reflect.DeepEqual(spans, []string{"be", "33", "529bryant"}) {
		t.Errorf("spans = %v", spans)
	}
	last := h.Spans[2]
	if len(last.Runs) != 1 || last.Runs[0].Text != "bryant" || last.Runs[0].Start != 3 {
		t.Errorf("runs of 529bryant = %+v", last.Runs)
	}
}

func TestConsecutiveDelimiters(t *testing.T) {
	h, err := Parse("a--b.example.com", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Spans) != 2 || h.Spans[0].Text != "a" || h.Spans[1].Text != "b" {
		t.Errorf("spans = %+v", h.Spans)
	}
}

func TestAdjacentRunPairsOnlyCrossesOneBoundary(t *testing.T) {
	h, err := Parse("aaaa-bb-cc.example.com", "example.com")
	if err != nil {
		t.Fatal(err)
	}
	pairs := h.AdjacentRunPairs()
	want := [][2]string{{"aaaa", "bb"}, {"bb", "cc"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestStripDigits(t *testing.T) {
	cases := map[string]string{
		"lhr15":  "lhr",
		"rd3tx":  "rdtx",
		"123":    "",
		"abc":    "abc",
		"":       "",
		"a1b2c3": "abc",
	}
	for in, want := range cases {
		if got := StripDigits(in); got != want {
			t.Errorf("StripDigits(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsAlnum(t *testing.T) {
	if !IsAlnum("abc123") {
		t.Error("abc123 should be alnum")
	}
	if IsAlnum("") || IsAlnum("a-b") || IsAlnum("A") {
		t.Error("empty, punctuated, and upper-case strings are not alnum")
	}
}

func TestParseProperty(t *testing.T) {
	// For any prefix assembled from safe label characters, parsing
	// prefix+".example.com" round-trips: joining labels with dots
	// reconstructs the prefix, and every span text appears in the prefix.
	f := func(parts []uint8) bool {
		alphabet := []string{"ae", "cr1", "lhr", "xe-0-1", "bb", "gw", "core2", "10ge"}
		if len(parts) == 0 {
			return true
		}
		if len(parts) > 6 {
			parts = parts[:6]
		}
		var labels []string
		for _, p := range parts {
			labels = append(labels, alphabet[int(p)%len(alphabet)])
		}
		prefix := strings.Join(labels, ".")
		h, err := Parse(prefix+".example.com", "example.com")
		if err != nil {
			return false
		}
		if strings.Join(h.Labels, ".") != prefix {
			return false
		}
		for _, sp := range h.Spans {
			if h.Prefix[sp.Start:sp.Start+len(sp.Text)] != sp.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
