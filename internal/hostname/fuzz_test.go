package hostname

import (
	"strings"
	"testing"
)

// FuzzParseHostname feeds arbitrary hostname/suffix pairs to Parse: it
// must never panic, and every accepted hostname must satisfy the
// tokenization invariants — the prefix/suffix split reconstructs the
// normalized input, every span is a faithful slice of the prefix, and
// every run is a purely alphabetic slice of its span.
func FuzzParseHostname(f *testing.F) {
	f.Add("0.xe-10-0-0.gw1.sfo16.alter.net", "alter.net")
	f.Add("zayo-ntt.mpr1.lhr15.uk.zip.zayo.com", "zayo.com")
	f.Add("ae-2.r01.nycmny01.us.bb.gin.ntt.net", "ntt.net")
	f.Add("UPPER-Case.Mixed.Example.NET.", "example.net")
	f.Add("a..b.example.org", "example.org")
	f.Add("_tcp.-x-.9.example.org", "example.org")
	f.Add("example.org", "example.org")
	f.Add("", "")
	f.Add("host.net", "xnet")
	f.Fuzz(func(t *testing.T, full, suffix string) {
		h, err := Parse(full, suffix)
		if err != nil {
			return
		}
		if h.Full != strings.ToLower(strings.TrimSuffix(full, ".")) {
			t.Fatalf("Full %q is not the normalized input %q", h.Full, full)
		}
		if !strings.HasSuffix(h.Full, "."+h.Suffix) {
			t.Fatalf("Full %q does not end in .%s", h.Full, h.Suffix)
		}
		if h.Prefix+"."+h.Suffix != h.Full {
			t.Fatalf("prefix %q + suffix %q does not reconstruct %q", h.Prefix, h.Suffix, h.Full)
		}
		if strings.Join(h.Labels, ".") != h.Prefix {
			t.Fatalf("labels %v do not reconstruct prefix %q", h.Labels, h.Prefix)
		}
		for i := range h.Spans {
			sp := &h.Spans[i]
			if sp.Label < 0 || sp.Label >= len(h.Labels) {
				t.Fatalf("span %q has label index %d out of range", sp.Text, sp.Label)
			}
			if sp.Start < 0 || sp.Start+len(sp.Text) > len(h.Prefix) {
				t.Fatalf("span %q at %d overruns prefix %q", sp.Text, sp.Start, h.Prefix)
			}
			if got := h.Prefix[sp.Start : sp.Start+len(sp.Text)]; got != sp.Text {
				t.Fatalf("span %q at %d does not slice prefix %q (got %q)", sp.Text, sp.Start, h.Prefix, got)
			}
			for _, r := range sp.Runs {
				if r.Start < 0 || r.Start+len(r.Text) > len(sp.Text) {
					t.Fatalf("run %q at %d overruns span %q", r.Text, r.Start, sp.Text)
				}
				if got := sp.Text[r.Start : r.Start+len(r.Text)]; got != r.Text {
					t.Fatalf("run %q at %d does not slice span %q", r.Text, r.Start, sp.Text)
				}
				if r.Text == "" {
					t.Fatalf("empty run in span %q", sp.Text)
				}
				for j := 0; j < len(r.Text); j++ {
					if !isAlpha(r.Text[j]) {
						t.Fatalf("run %q in span %q contains non-alpha byte", r.Text, sp.Text)
					}
				}
			}
		}
		for _, s := range h.AlphaStrings() {
			if s == "" || !IsAlnum(s) {
				t.Fatalf("AlphaStrings returned invalid candidate %q", s)
			}
		}
		for _, pair := range h.AdjacentRunPairs() {
			if pair[0] == "" || pair[1] == "" {
				t.Fatalf("AdjacentRunPairs returned empty run: %v", pair)
			}
		}
	})
}
