package benchrec

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Verdict classifies one benchmark's movement between two records.
type Verdict string

// Verdicts. Regression and Faster both require the change to clear the
// relative threshold and the noise bound; Ok covers everything within
// them. Added/Removed mark suite membership changes, which never fail a
// comparison on their own (the suite evolves PR over PR) but are
// reported so a silently dropped benchmark is visible.
const (
	Ok         Verdict = "ok"
	Faster     Verdict = "faster"
	Regression Verdict = "REGRESSION"
	Added      Verdict = "added"
	Removed    Verdict = "removed"
)

// Delta is one benchmark's comparison row.
type Delta struct {
	Name    string
	Base    float64 // baseline median ns/op (0 for Added)
	Cand    float64 // candidate median ns/op (0 for Removed)
	Ratio   float64 // Cand/Base (0 when either side is missing)
	NoiseNs float64 // combined noise bound, ns
	Verdict Verdict
	// Notes describes ReportMetric extras (see Benchmark.Metrics):
	// per-metric movement between the two records, informational only —
	// a note never makes the verdict a Regression, because extras carry
	// no per-repeat samples and so no noise bound to gate against.
	Notes []string
}

// DefaultThreshold is the relative slowdown that counts as a
// regression: a candidate median more than 30% over baseline (and past
// the noise bound) fails. Generous on purpose — shared CI machines are
// noisy, and the MAD gate below only models run-to-run variance within
// one record, not machine-to-machine drift.
const DefaultThreshold = 0.30

// noiseK scales the combined MAD into the noise bound. 3 MADs ≈ 2σ for
// Gaussian noise — movements within it are indistinguishable from
// scheduler jitter regardless of the relative threshold.
const noiseK = 3.0

// Compare evaluates candidate against baseline benchmark-by-benchmark.
// It returns one Delta per benchmark name (union of both records,
// sorted by name) and whether any verdict is a Regression.
func Compare(baseline, candidate *File, threshold float64) ([]Delta, bool) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	base := make(map[string]Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	cand := make(map[string]Benchmark, len(candidate.Benchmarks))
	for _, b := range candidate.Benchmarks {
		cand[b.Name] = b
	}
	var names []string
	for _, b := range baseline.Benchmarks {
		names = append(names, b.Name)
	}
	for _, b := range candidate.Benchmarks {
		if _, ok := base[b.Name]; !ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)

	var deltas []Delta
	regressed := false
	for _, name := range names {
		b, inBase := base[name]
		c, inCand := cand[name]
		d := Delta{Name: name}
		switch {
		case !inBase:
			d.Cand = c.NsPerOp
			d.Verdict = Added
		case !inCand:
			d.Base = b.NsPerOp
			d.Verdict = Removed
		default:
			d.Base, d.Cand = b.NsPerOp, c.NsPerOp
			d.NoiseNs = noiseK * (b.MADNs + c.MADNs)
			if d.Base > 0 {
				d.Ratio = d.Cand / d.Base
			}
			d.Verdict = verdict(d, threshold)
			if d.Verdict == Regression {
				regressed = true
			}
			d.Notes = metricNotes(b.Metrics, c.Metrics)
		}
		deltas = append(deltas, d)
	}
	return deltas, regressed
}

// metricNotes renders the movement of ReportMetric extras between two
// records, sorted by metric name. Extras present on only one side are
// noted as added or removed; shared extras get their relative change.
// These notes are deliberately advisory — see Benchmark.Metrics.
func metricNotes(base, cand map[string]float64) []string {
	if len(base) == 0 && len(cand) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(base)+len(cand))
	var keys []string
	for k := range base {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range cand {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	notes := make([]string, 0, len(keys))
	for _, k := range keys {
		bv, inBase := base[k]
		cv, inCand := cand[k]
		switch {
		case !inBase:
			notes = append(notes, fmt.Sprintf("%s: added (%g)", k, cv))
		case !inCand:
			notes = append(notes, fmt.Sprintf("%s: removed (was %g)", k, bv))
		case bv == cv:
			notes = append(notes, fmt.Sprintf("%s: %g (unchanged)", k, bv))
		case bv != 0:
			notes = append(notes, fmt.Sprintf("%s: %g -> %g (%+.1f%%)", k, bv, cv, 100*(cv-bv)/bv))
		default:
			notes = append(notes, fmt.Sprintf("%s: %g -> %g", k, bv, cv))
		}
	}
	return notes
}

// verdict applies the two-gate rule: relative threshold AND noise bound.
func verdict(d Delta, threshold float64) Verdict {
	if d.Base <= 0 {
		return Ok
	}
	diff := d.Cand - d.Base
	switch {
	case diff > threshold*d.Base && diff > d.NoiseNs:
		return Regression
	case -diff > threshold*d.Base && -diff > d.NoiseNs:
		return Faster
	default:
		return Ok
	}
}

// FormatDeltas renders the comparison as an aligned table.
func FormatDeltas(w io.Writer, deltas []Delta) error {
	nameW := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n",
		nameW, "benchmark", "base", "candidate", "delta", "verdict"); err != nil {
		return err
	}
	for _, d := range deltas {
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%+.1f%%", 100*(d.Ratio-1))
		}
		if _, err := fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n",
			nameW, d.Name, fmtNs(d.Base), fmtNs(d.Cand), ratio, d.Verdict); err != nil {
			return err
		}
		for _, note := range d.Notes {
			if _, err := fmt.Fprintf(w, "%-*s    metric %s\n", nameW, "", note); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtNs(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond / 10).String()
}
