package benchrec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleFile(scale float64) *File {
	f := NewFile("2026-08-06T00:00:00Z", "abc1234", true)
	f.Benchmarks = []Benchmark{
		{Name: "CoreRunParallel", Samples: []float64{1000 * scale, 1100 * scale, 1050 * scale},
			NsPerOp: 1050 * scale, MADNs: 50 * scale, AllocsPerOp: 10, BytesPerOp: 2048},
		{Name: "GeolocBatchCached", Samples: []float64{200 * scale},
			NsPerOp: 200 * scale, MADNs: 0},
	}
	f.Counters = map[string]int64{"rex_compiled": 42}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile(1)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Commit != "abc1234" || !got.Quick {
		t.Fatalf("header drifted: %+v", got)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks[0].Name != "CoreRunParallel" {
		t.Fatalf("benchmarks drifted: %+v", got.Benchmarks)
	}
	if got.Benchmarks[0].MADNs != 50 || got.Counters["rex_compiled"] != 42 {
		t.Fatalf("stats drifted: %+v", got)
	}
}

func TestReadRejectsFutureSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema": 99}`)); err == nil {
		t.Fatal("schema 99 accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema": 0}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema": 1, "bogus_field": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestCompareSelf: a record compared against itself reports no
// regressions — geobench -against's exit-0 case.
func TestCompareSelf(t *testing.T) {
	f := sampleFile(1)
	deltas, regressed := Compare(f, f, DefaultThreshold)
	if regressed {
		t.Fatalf("self-compare regressed: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Verdict != Ok {
			t.Errorf("%s: verdict %s on identical records", d.Name, d.Verdict)
		}
		if d.Ratio != 1 {
			t.Errorf("%s: ratio = %v, want 1", d.Name, d.Ratio)
		}
	}
}

// TestCompareInjectedRegression: a synthetic 2x-slower candidate must
// fail the comparison — geobench -against's nonzero-exit case.
func TestCompareInjectedRegression(t *testing.T) {
	base := sampleFile(1)
	slow := sampleFile(2) // every sample and MAD doubled
	deltas, regressed := Compare(base, slow, DefaultThreshold)
	if !regressed {
		t.Fatalf("2x-slower candidate passed: %+v", deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["CoreRunParallel"]; d.Verdict != Regression || d.Ratio != 2 {
		t.Errorf("CoreRunParallel = %+v, want 2x REGRESSION", d)
	}
	// And the mirror image reports an improvement, not a failure.
	deltas, regressed = Compare(slow, base, DefaultThreshold)
	if regressed {
		t.Fatalf("2x-faster candidate flagged as regression: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Verdict != Faster {
			t.Errorf("%s: verdict %s, want faster", d.Name, d.Verdict)
		}
	}
}

// TestCompareNoiseBound: a delta past the relative threshold but inside
// the combined MAD-based noise bound is not a regression — the gate
// that keeps noisy repeat runs from failing CI.
func TestCompareNoiseBound(t *testing.T) {
	base := NewFile("", "", false)
	base.Benchmarks = []Benchmark{{Name: "Noisy", NsPerOp: 1000, MADNs: 400}}
	cand := NewFile("", "", false)
	cand.Benchmarks = []Benchmark{{Name: "Noisy", NsPerOp: 1500, MADNs: 400}}
	// +50% > 30% threshold, but noise bound = 3*(400+400) = 2400ns > 500ns delta.
	deltas, regressed := Compare(base, cand, DefaultThreshold)
	if regressed || deltas[0].Verdict != Ok {
		t.Fatalf("noise-bounded delta flagged: %+v", deltas)
	}
	// Same medians with tight MADs do regress.
	base.Benchmarks[0].MADNs = 10
	cand.Benchmarks[0].MADNs = 10
	if _, regressed := Compare(base, cand, DefaultThreshold); !regressed {
		t.Fatal("tight-noise +50% delta not flagged")
	}
}

// TestCompareMembershipChanges: added/removed benchmarks are reported
// but never fail the run.
func TestCompareMembershipChanges(t *testing.T) {
	base := NewFile("", "", false)
	base.Benchmarks = []Benchmark{{Name: "Old", NsPerOp: 100}}
	cand := NewFile("", "", false)
	cand.Benchmarks = []Benchmark{{Name: "New", NsPerOp: 100}}
	deltas, regressed := Compare(base, cand, DefaultThreshold)
	if regressed {
		t.Fatal("membership change failed the comparison")
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want one added and one removed", deltas)
	}
	verdicts := map[string]Verdict{}
	for _, d := range deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["Old"] != Removed || verdicts["New"] != Added {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	xs := []float64{1, 2, 3, 100}
	med := Median(xs)
	if got := MAD(xs, med); got != 1 {
		t.Errorf("MAD = %v, want 1 (outlier-immune)", got)
	}
}

func TestRecordFromBenchmarkResults(t *testing.T) {
	f := NewFile("", "", false)
	results := []testing.BenchmarkResult{
		{N: 10, T: 10 * time.Microsecond},
		{N: 10, T: 30 * time.Microsecond},
		{N: 10, T: 20 * time.Microsecond, Extra: map[string]float64{"workers": 4}},
	}
	f.Record("Example", results)
	b := f.Benchmarks[0]
	if b.NsPerOp != 2000 {
		t.Errorf("median ns/op = %v, want 2000", b.NsPerOp)
	}
	if b.MADNs != 1000 {
		t.Errorf("MAD = %v, want 1000", b.MADNs)
	}
	if b.Metrics["workers"] != 4 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if len(b.Samples) != 3 {
		t.Errorf("samples = %v", b.Samples)
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if got, err := Latest(dir); err != nil || got != "" {
		t.Fatalf("Latest(empty) = %q, %v", got, err)
	}
	for _, name := range []string{"BENCH_0004.json", "BENCH_0005.json", "BENCH_003.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0005.json" {
		t.Fatalf("Latest = %q, want BENCH_0005.json", got)
	}
}

func TestFormatDeltas(t *testing.T) {
	deltas := []Delta{
		{Name: "A", Base: 1000, Cand: 2500, Ratio: 2.5, Verdict: Regression},
		{Name: "B", Cand: 100, Verdict: Added},
	}
	var buf bytes.Buffer
	if err := FormatDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "+150.0%", "added", "benchmark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestCompareMetricExtrasNeverGate pins the extras policy documented on
// Benchmark.Metrics: a ReportMetric value moving arbitrarily — even a
// 10x p99_us blowup — surfaces as an informational note, never as a
// Regression verdict; one-sided extras are noted as added or removed.
func TestCompareMetricExtrasNeverGate(t *testing.T) {
	base := sampleFile(1)
	base.Benchmarks[0].Metrics = map[string]float64{"p99_us": 100, "workers": 4, "gone": 1}
	cand := sampleFile(1)
	cand.Benchmarks[0].Metrics = map[string]float64{"p99_us": 1000, "workers": 4, "fresh": 2}

	deltas, regressed := Compare(base, cand, 0)
	if regressed {
		t.Fatal("metric extras must never produce a Regression verdict")
	}
	var d *Delta
	for i := range deltas {
		if deltas[i].Name == "CoreRunParallel" {
			d = &deltas[i]
		}
	}
	if d == nil || d.Verdict != Ok {
		t.Fatalf("deltas = %+v", deltas)
	}
	want := []string{
		"fresh: added (2)",
		"gone: removed (was 1)",
		"p99_us: 100 -> 1000 (+900.0%)",
		"workers: 4 (unchanged)",
	}
	if len(d.Notes) != len(want) {
		t.Fatalf("notes = %v, want %v", d.Notes, want)
	}
	for i, n := range want {
		if d.Notes[i] != n {
			t.Errorf("note %d = %q, want %q", i, d.Notes[i], n)
		}
	}

	// The notes ride along in the rendered table, indented under their
	// benchmark's row.
	var buf bytes.Buffer
	if err := FormatDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "metric p99_us: 100 -> 1000 (+900.0%)") {
		t.Errorf("formatted deltas missing metric note:\n%s", buf.String())
	}
}
