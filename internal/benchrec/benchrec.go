// Package benchrec records and compares benchmark trajectories: the
// schema behind the repo's committed BENCH_NNNN.json files and the
// regression verdicts cmd/geobench computes between them.
//
// A File is one recorded run of the benchmark suite on one machine —
// env-, commit-, and date-stamped, with every benchmark measured over
// several repeat runs so a later comparison can separate real
// regressions from scheduler noise. The statistics are deliberately
// robust: the point estimate is the median across repeats and the noise
// scale is the median absolute deviation (MAD), both immune to the
// single-outlier runs that plague CI machines. Compare flags a
// candidate benchmark only when it is past the relative threshold AND
// outside the combined noise bound of both records, so a noisy pair of
// runs cannot fabricate a regression verdict.
//
// The package is stdlib-only and knows nothing about which benchmarks
// exist; cmd/geobench owns the suite and feeds testing.Benchmark
// results in through Record.
package benchrec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
)

// SchemaVersion stamps every File; readers reject files from a future
// schema instead of misinterpreting them.
const SchemaVersion = 1

// File is one recorded benchmark-suite run.
type File struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at"` // RFC3339 UTC
	Commit    string `json:"commit,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Quick marks a reduced-benchtime run (CI smoke); trajectories
	// should compare quick against quick and full against full.
	Quick      bool        `json:"quick,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Counters are suite-wide observability totals captured around the
	// run: rex compile counts, obs span aggregates, and friends.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Benchmark is one suite entry: the per-repeat samples plus the robust
// statistics Compare consumes.
type Benchmark struct {
	Name string `json:"name"`
	// Samples are ns/op per repeat run, in run order.
	Samples []float64 `json:"samples_ns_per_op"`
	// NsPerOp is the median of Samples.
	NsPerOp float64 `json:"ns_per_op"`
	// MADNs is the median absolute deviation of Samples around NsPerOp.
	MADNs float64 `json:"mad_ns"`
	// AllocsPerOp and BytesPerOp come from the last repeat (allocation
	// counts are deterministic per iteration, unlike wall time).
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Metrics carries testing.B.ReportMetric extras (workers, hostnames,
	// p99_us, ...). Comparison policy: extras are context, not gates —
	// Compare reports their movement as informational notes on the
	// benchmark's Delta but never turns one into a Regression verdict,
	// because extras have no per-repeat samples (only the last repeat's
	// value survives) and so no noise model to gate against.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewFile returns an env-stamped empty record. createdAt is RFC3339;
// the caller stamps it (and the commit) so this package stays clock-free.
func NewFile(createdAt, commit string, quick bool) *File {
	return &File{
		Schema:    SchemaVersion,
		CreatedAt: createdAt,
		Commit:    commit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Quick:     quick,
	}
}

// Record folds repeat runs of one benchmark into the file. results must
// be non-empty and ordered as run.
func (f *File) Record(name string, results []testing.BenchmarkResult) {
	samples := make([]float64, len(results))
	for i, r := range results {
		n := r.N
		if n <= 0 {
			n = 1
		}
		samples[i] = float64(r.T.Nanoseconds()) / float64(n)
	}
	med := Median(samples)
	b := Benchmark{
		Name:    name,
		Samples: samples,
		NsPerOp: med,
		MADNs:   MAD(samples, med),
	}
	if len(results) > 0 {
		last := results[len(results)-1]
		b.AllocsPerOp = int64(last.AllocsPerOp())
		b.BytesPerOp = int64(last.AllocedBytesPerOp())
		if len(last.Extra) > 0 {
			b.Metrics = make(map[string]float64, len(last.Extra))
			for k, v := range last.Extra {
				b.Metrics[k] = v
			}
		}
	}
	f.Benchmarks = append(f.Benchmarks, b)
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation of xs around med.
func MAD(xs []float64, med float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// Write serializes the file as indented JSON. Benchmarks are sorted by
// name first so a committed record diffs cleanly between PRs.
func (f *File) Write(w io.Writer) error {
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrec: marshal: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	return nil
}

// WriteFile writes the record to path via Write.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read parses and validates one record.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchrec: parse: %w", err)
	}
	if f.Schema <= 0 || f.Schema > SchemaVersion {
		return nil, fmt.Errorf("benchrec: unsupported schema %d (this build reads <= %d)", f.Schema, SchemaVersion)
	}
	return &f, nil
}

// ReadFile reads a record from path via Read.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Read(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// benchFilePat matches the repo's trajectory files: BENCH_NNNN.json.
var benchFilePat = regexp.MustCompile(`^BENCH_(\d{4})\.json$`)

// Latest returns the highest-numbered BENCH_NNNN.json in dir ("" when
// the trajectory is empty).
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue // unreachable: the pattern admits only digits
		}
		if n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	return best, nil
}
