package geoloc

import (
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/rex"
)

// benchHosts mix repeated, unseen-but-matching, and non-matching
// hostnames — the shape of measurement traffic.
var benchHosts = []string{
	"100ge1-1.core1.sjc1.he.net",
	"te0-0-0.core7.lhr1.he.net",
	"gcr-company.ve42.core9.ash1.he.net",
	"pos-0.munich0.de.alter.net",
	"totally-unconventional.he.net",
	"core1.sjc1.example-no-convention.com",
}

// BenchmarkIndexLookup is the serving hot path: compiled index, warm
// cache. Zero regex compilations happen per request — every pattern was
// compiled in New — so the steady state is a cache probe.
func BenchmarkIndexLookup(b *testing.B) {
	ix := newTestIndex(b, Options{})
	for _, h := range benchHosts {
		ix.Lookup(h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(benchHosts[i%len(benchHosts)])
	}
}

// BenchmarkIndexLookupUncached measures the full dispatch + match +
// resolve path with the cache disabled (every request misses).
func BenchmarkIndexLookupUncached(b *testing.B) {
	ix := newTestIndex(b, Options{CacheSize: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(benchHosts[i%len(benchHosts)])
	}
}

// BenchmarkIndexLookupParallel drives the shared index from all procs,
// the daemon's concurrency shape.
func BenchmarkIndexLookupParallel(b *testing.B) {
	ix := newTestIndex(b, Options{})
	for _, h := range benchHosts {
		ix.Lookup(h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ix.Lookup(benchHosts[i%len(benchHosts)])
			i++
		}
	})
}

// BenchmarkIndexLookupBatch is the batch API over a 1k-hostname slice.
func BenchmarkIndexLookupBatch(b *testing.B) {
	ix := newTestIndex(b, Options{})
	hosts := make([]string, 1000)
	for i := range hosts {
		hosts[i] = benchHosts[i%len(benchHosts)]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LookupBatch(hosts)
	}
}

// BenchmarkPerCallLookupWarm is the pre-index apply path in its best
// case: psl dispatch plus core.Geolocate against conventions whose
// regex caches are already warm, with the linear learned-hint scan on
// every call.
func BenchmarkPerCallLookupWarm(b *testing.B) {
	res, dict, list := learnFixture(b)
	for s, nc := range res.NCs {
		core.Geolocate(nc, dict, "warm.core1.sjc1."+s) // warm the compile caches
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := benchHosts[i%len(benchHosts)]
		core.Geolocate(res.NCs[list.RegistrableDomain(host)], dict, host)
	}
}

// BenchmarkPerCallLookupColdCompile is what the pre-index path actually
// paid per process (and what compile-on-demand costs per request when
// conventions are reloaded): every regex cache is cold, so matching
// compiles. The compiled Index never does this after New.
func BenchmarkPerCallLookupColdCompile(b *testing.B) {
	res, dict, list := learnFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := benchHosts[i%len(benchHosts)]
		nc := res.NCs[list.RegistrableDomain(host)]
		if nc == nil {
			continue
		}
		cold := &core.NamingConvention{
			Suffix: nc.Suffix, Learned: nc.Learned, Class: nc.Class,
			Regexes: make([]*rex.Regex, len(nc.Regexes)),
		}
		for j, r := range nc.Regexes {
			cold.Regexes[j] = r.Clone()
		}
		core.Geolocate(cold, dict, host)
	}
}

// BenchmarkIndexBuild measures New over an already-learned result; the
// shared regex caches are warm after the first build, so this isolates
// dispatch-map and learned-overlay construction.
func BenchmarkIndexBuild(b *testing.B) {
	res, dict, list := learnFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(res, Options{Dict: dict, PSL: list}); err != nil {
			b.Fatal(err)
		}
	}
}
